(* tpptrace: a traceroute built on TPPs.

   Spins up a simulated switch chain under configurable background
   load, sends probes carrying a (possibly user-supplied) program, and
   prints the per-hop values — the interactive version of the paper's
   Figure 1.

   $ tpptrace --switches 5 --load 80
   $ tpptrace --program my.tpp --words-per-hop 3
*)

open Cmdliner
open Tpp

let default_program = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n"

let run switches load program_file probes words_per_hop pcap_out =
  let source =
    match program_file with
    | None -> default_program
    | Some path ->
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      s
  in
  if load < 0 || load > 100 then begin
    Printf.eprintf "tpptrace: --load must be 0..100\n";
    exit 1
  end;
  let eng = Engine.create () in
  let link_bps = 100_000_000 in
  let chain =
    Topology.chain eng ~num_switches:switches ~hosts_per_switch:2 ~bps:link_bps
      ~delay:(Time_ns.us 100) ()
  in
  let net = chain.Topology.net in
  Net.start_utilization_updates net ~period:(Time_ns.ms 10)
    ~until:(Time_ns.sec (probes + 1));
  (* Background traffic: every switch's second host sends toward the
     last switch's second host, loading the shared spine. *)
  (if load > 0 then
     let rate = link_bps * load / 100 / max 1 (switches - 1) in
     for i = 0 to switches - 2 do
       let src = Stack.create net chain.Topology.hosts.(i).(1) in
       let dst_host = chain.Topology.hosts.(switches - 1).(1) in
       let dst = Stack.create net dst_host in
       let _sink = Flow.Sink.attach dst ~port:9000 in
       let flow =
         Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:1000
           ~rate_bps:(max 100_000 rate)
       in
       Flow.start flow ()
     done);
  let src = Stack.create net chain.Topology.hosts.(0).(0) in
  let dst_host = chain.Topology.hosts.(switches - 1).(0) in
  let dst = Stack.create net dst_host in
  Probe.install_echo dst;
  let capture =
    Option.map
      (fun _ ->
        let cap = Pcap.create () in
        (* Both ends: the executed probes arriving at the destination and
           the echoes arriving back at the source. *)
        Pcap.tap_host cap net dst_host;
        Pcap.tap_host cap net chain.Topology.hosts.(0).(0);
        cap)
      pcap_out
  in
  match Asm.to_tpp ~mem_len:(4 * words_per_hop * (switches + 2)) source with
  | Error e ->
    Printf.eprintf "tpptrace: %s\n" e;
    exit 1
  | Ok tpp ->
    Printf.printf "tpptrace: %d switches, %d%% background load, program:\n%s\n"
      switches load (Asm.disassemble tpp);
    Probe.install_reply_handler src (fun ~now ~seq tpp ->
        Printf.printf "probe %d (t=%.1fms): %d hops" seq (Time_ns.to_ms_f now)
          tpp.Prog.hop;
        if tpp.Prog.faulted then Printf.printf " [FAULTED]";
        print_newline ();
        let values = Prog.stack_values tpp in
        let rec rows hop = function
          | [] -> ()
          | rest ->
            let take = min words_per_hop (List.length rest) in
            let row = List.filteri (fun i _ -> i < take) rest in
            let rest = List.filteri (fun i _ -> i >= take) rest in
            Printf.printf "  hop %d: %s\n" hop
              (String.concat "  " (List.map (Printf.sprintf "%10d") row));
            rows (hop + 1) rest
        in
        rows 1 values);
    for i = 1 to probes do
      Engine.at eng (Time_ns.ms (100 * i)) (fun () ->
          Probe.send src ~dst:dst_host ~tpp ~seq:i)
    done;
    Engine.run eng ~until:(Time_ns.ms ((100 * probes) + 500));
    (match (capture, pcap_out) with
    | Some cap, Some path ->
      Pcap.write_file cap path;
      Printf.printf "wrote %d captured frames to %s\n" (Pcap.length cap) path
    | _ -> ());
    0

let switches_arg =
  Arg.(value & opt int 3 & info [ "switches"; "s" ] ~docv:"N" ~doc:"Chain length.")

let load_arg =
  Arg.(value & opt int 60 & info [ "load"; "l" ] ~docv:"PCT"
         ~doc:"Background load as a percentage of link capacity.")

let program_arg =
  Arg.(value & opt (some file) None & info [ "program"; "p" ] ~docv:"FILE"
         ~doc:"TPP assembly to run (default: switch id + queue size).")

let probes_arg =
  Arg.(value & opt int 3 & info [ "probes"; "n" ] ~docv:"N"
         ~doc:"Number of probes, 100 ms apart.")

let words_arg =
  Arg.(value & opt int 2 & info [ "words-per-hop" ] ~docv:"N"
         ~doc:"How many words the program pushes per hop (display grouping).")

let pcap_arg =
  Arg.(value & opt (some string) None & info [ "pcap" ] ~docv:"FILE"
         ~doc:"Capture probe and echo frames at both end hosts into a \
               Wireshark-compatible pcap file.")

let cmd =
  let doc = "traceroute with tiny packet programs, on a simulated chain" in
  Cmd.v
    (Cmd.info "tpptrace" ~version ~doc)
    Term.(
      const run $ switches_arg $ load_arg $ program_arg $ probes_arg $ words_arg
      $ pcap_arg)

let () = exit (Cmd.eval' cmd)
