(* tppasm: assemble TPP programs to their wire encoding, and back.

   $ tppasm program.tpp --mem-len 64
   $ echo 'PUSH [Queue:QueueSize]' | tppasm -
   $ tppasm --disassemble 01001000...   (hex of a TPP section)
*)

open Cmdliner
open Tpp

let read_input = function
  | "-" ->
    let buf = Buffer.create 256 in
    (try
       let rec go () =
         Buffer.add_channel buf stdin 1;
         go ()
       in
       go ()
     with End_of_file -> ());
    Buffer.contents buf
  | path ->
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s

let hex_of_bytes b =
  String.concat "" (List.map (Printf.sprintf "%02x") (List.map Char.code (List.init (Bytes.length b) (Bytes.get b))))

let bytes_of_hex s =
  let s = String.trim s in
  if String.length s mod 2 <> 0 then Error "odd-length hex string"
  else
    try
      Ok
        (Bytes.init (String.length s / 2) (fun i ->
             Char.chr (int_of_string ("0x" ^ String.sub s (2 * i) 2))))
    with _ -> Error "invalid hex digit"

let parse_define s =
  match String.index_opt s '=' with
  | None -> Error (`Msg "expected NAME=ADDR")
  | Some i ->
    let name = String.sub s 0 i in
    let addr = String.sub s (i + 1) (String.length s - i - 1) in
    (match int_of_string_opt addr with
    | Some a when a >= 0 && a < Vaddr.limit -> Ok (name, a)
    | _ -> Error (`Msg (Printf.sprintf "bad address %S" addr)))

let define_conv = Arg.conv (parse_define, fun fmt (n, a) -> Format.fprintf fmt "%s=0x%x" n a)

let dump_header tpp =
  Printf.printf "version 1, %s mode, %d instructions, %d bytes packet memory\n"
    (match tpp.Prog.addr_mode with Prog.Stack -> "stack" | Prog.Hop_addressed -> "hop")
    (Array.length tpp.Prog.program)
    (Bytes.length tpp.Prog.memory);
  Printf.printf "sp=%d hop=%d base=%d perhop=%d%s\n" tpp.Prog.sp tpp.Prog.hop
    tpp.Prog.base tpp.Prog.perhop_len
    (if tpp.Prog.faulted then " FAULTED" else "");
  Printf.printf "section: %d bytes on the wire\n" (Prog.section_size tpp)

(* --run: execute the program against a mock one-switch dataplane and
   show what it did — a debugger for TPP authors. *)
let run_program tpp =
  let st = Tpp_asic.State.create ~switch_id:3 ~num_ports:4 () in
  Tpp_asic.State.force_queue_depth st ~port:1 ~bytes:12_345;
  (Tpp_asic.State.port st 1).Tpp_asic.State.Port.capacity_bps <- 10_000_000;
  (Tpp_asic.State.port st 1).Tpp_asic.State.Port.util_ppm <- 420_000;
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Tpp_isa.Meta.out_port <- 1;
  frame.Frame.meta.Tpp_isa.Meta.in_port <- 0;
  frame.Frame.meta.Tpp_isa.Meta.matched_entry <- 7;
  frame.Frame.meta.Tpp_isa.Meta.matched_version <- 1;
  match Tpp_asic.Tcpu.execute st ~now:123_456_789 ~frame with
  | None -> prerr_endline "tppasm: no TPP on frame (internal error)"
  | Some result ->
    let tpp = Option.get frame.Frame.tpp in
    Printf.printf
      "\nexecuted on a mock switch (id 3, out-port queue 12345B, util 42%%):\n";
    Printf.printf "  %d instruction(s) ran, %d cycles%s%s\n" result.Tpp_asic.Tcpu.executed
      result.Tpp_asic.Tcpu.cycles
      (if result.Tpp_asic.Tcpu.stopped_by_cexec then ", stopped by CEXEC" else "")
      (match result.Tpp_asic.Tcpu.fault with
      | Some f -> ", FAULT: " ^ Tpp_asic.Tcpu.fault_message f
      | None -> "");
    Printf.printf "  sp=%d hop=%d\n" tpp.Prog.sp tpp.Prog.hop;
    (match Prog.stack_values tpp with
    | [] -> ()
    | values ->
      Printf.printf "  stack:";
      List.iter (Printf.printf " %d") values;
      print_newline ());
    print_endline "  packet memory:";
    List.iteri
      (fun i w -> if w <> 0 || 4 * i < tpp.Prog.sp then
          Printf.printf "    [%3d] 0x%08x (%d)\n" (4 * i) w w)
      (Prog.words tpp)

let assemble_cmd input mem_len hop perhop defines emit_hex run =
  let source = read_input input in
  let addr_mode = if hop then Some Prog.Hop_addressed else None in
  let perhop_len = if perhop > 0 then Some perhop else None in
  match Asm.to_tpp ~defines ?addr_mode ?perhop_len ~mem_len source with
  | Error e ->
    Printf.eprintf "tppasm: %s\n" e;
    exit 1
  | Ok tpp when run ->
    dump_header tpp;
    run_program tpp;
    0
  | Ok tpp ->
    if emit_hex then begin
      let w = Buf.Writer.create () in
      Prog.write w tpp;
      print_endline (hex_of_bytes (Buf.Writer.contents w))
    end
    else begin
      dump_header tpp;
      print_endline "listing:";
      Array.iteri
        (fun i instr ->
          Format.printf "  %2d: %08lx  %a@." i (Instr.encode instr) Instr.pp instr)
        tpp.Prog.program;
      if tpp.Prog.base > 0 then begin
        print_endline "constant pool:";
        let rec pool off =
          if off < tpp.Prog.base then begin
            Printf.printf "  [Packet:%d] = 0x%08x\n" off (Prog.mem_get tpp off);
            pool (off + 4)
          end
        in
        pool 0
      end
    end;
    0

let disassemble_cmd hex =
  match bytes_of_hex hex with
  | Error e ->
    Printf.eprintf "tppasm: %s\n" e;
    exit 1
  | Ok raw -> (
    match Prog.read (Buf.Reader.of_bytes raw) with
    | Error e ->
      Printf.eprintf "tppasm: cannot parse TPP section: %s\n" e;
      exit 1
    | Ok tpp ->
      dump_header tpp;
      print_endline (Asm.disassemble tpp);
      0)

let input_arg =
  Arg.(value & pos 0 string "-" & info [] ~docv:"FILE" ~doc:"Source file, or - for stdin.")

let mem_len_arg =
  Arg.(value & opt int 64 & info [ "mem-len" ] ~docv:"BYTES"
         ~doc:"Packet memory for the stack / hop blocks (word multiple).")

let hop_arg =
  Arg.(value & flag & info [ "hop" ] ~doc:"Hop-addressed packet memory (paper §3.2.2).")

let perhop_arg =
  Arg.(value & opt int 0 & info [ "perhop" ] ~docv:"BYTES"
         ~doc:"Per-hop block size in hop mode.")

let defines_arg =
  Arg.(value & opt_all define_conv [] & info [ "D"; "define" ] ~docv:"NAME=ADDR"
         ~doc:"Extra statistic name, e.g. Link:RCP-RateRegister=0x180.")

let hex_arg =
  Arg.(value & flag & info [ "hex" ] ~doc:"Emit the encoded section as hex.")

let disasm_arg =
  Arg.(value & opt (some string) None & info [ "disassemble"; "d" ] ~docv:"HEX"
         ~doc:"Decode a hex-encoded TPP section instead of assembling.")

let run_arg =
  Arg.(value & flag & info [ "run" ]
         ~doc:"Execute the assembled program on a mock one-switch dataplane and \
               dump the resulting packet memory.")

let programs_arg =
  Arg.(value & flag & info [ "programs" ]
         ~doc:"List the canned program library and exit.")

let canned_arg =
  Arg.(value & opt (some string) None & info [ "canned"; "c" ] ~docv:"NAME"
         ~doc:"Use a canned program (see --programs) as the source.")

let list_programs () =
  List.iter
    (fun (name, source) ->
      Printf.printf "--- %s (%d words/hop) ---\n%s\n" name
        (Programs.words_per_hop source) source)
    Programs.all;
  Printf.printf
    "--- folds (one word total: accumulator at [Packet:0]) ---\n%s%s%s" Programs.max_queue
    Programs.sum_queues Programs.min_capacity;
  0

let canned_source name =
  match List.assoc_opt name Programs.all with
  | Some source -> source
  | None ->
    Printf.eprintf "tppasm: unknown canned program %S (try --programs)\n" name;
    exit 2

let main input mem_len hop perhop defines hex disasm run programs canned =
  if programs then list_programs ()
  else
    match (disasm, canned) with
    | Some h, _ -> disassemble_cmd h
    | None, Some name ->
      let tmp = Filename.temp_file "tppasm" ".tpp" in
      let oc = open_out tmp in
      output_string oc (canned_source name);
      close_out oc;
      let code = assemble_cmd tmp mem_len hop perhop defines hex run in
      Sys.remove tmp;
      code
    | None, None -> assemble_cmd input mem_len hop perhop defines hex run

let cmd =
  let doc = "assemble, disassemble and dry-run tiny packet programs" in
  Cmd.v
    (Cmd.info "tppasm" ~version ~doc)
    Term.(
      const main $ input_arg $ mem_len_arg $ hop_arg $ perhop_arg $ defines_arg
      $ hex_arg $ disasm_arg $ run_arg $ programs_arg $ canned_arg)

let () = exit (Cmd.eval' cmd)
