bin/tpptrace.ml: Arg Array Asm Cmd Cmdliner Engine Flow List Net Option Pcap Printf Probe Prog Stack String Term Time_ns Topology Tpp
