bin/tppasm.mli:
