bin/tppasm.ml: Arg Array Asm Buf Buffer Bytes Char Cmd Cmdliner Filename Format Frame Instr Ipv4 List Mac Option Printf Prog Programs String Sys Term Tpp Tpp_asic Tpp_isa Vaddr
