bin/tpptrace.mli:
