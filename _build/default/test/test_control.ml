(* Control-plane agent tests: network-wide SRAM task allocation,
   version management, staged updates, and the E12 transient. *)

open Tpp
module State = Tpp_asic.State

let check = Alcotest.check
let mbps x = x * 1_000_000

let small_net () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:1 ~bps:(mbps 100)
      ~delay:(Time_ns.us 10) ()
  in
  (eng, chain)

let test_create_installs_v1 () =
  let _, chain = small_net () in
  let ctl = Controller.create chain.Topology.net in
  check Alcotest.int "version" 1 (Controller.version ctl);
  List.iter
    (fun (_, sw) ->
      check Alcotest.int "switch stamped" 1 (Switch.state sw).State.version)
    (Net.switches chain.Topology.net)

let test_task_registration () =
  let _, chain = small_net () in
  let ctl = Controller.create chain.Topology.net in
  let rcp =
    Result.get_ok (Controller.register_task ctl ~name:"rcp" ~link_slot:true ())
  in
  let ndb =
    Result.get_ok (Controller.register_task ctl ~name:"ndb" ~sram_words:8 ())
  in
  check (Alcotest.option Alcotest.int) "rcp slot" (Some 0) rcp.Controller.link_slot;
  check Alcotest.bool "ndb words allocated" true (Option.is_some ndb.Controller.word_base);
  check Alcotest.int "two tasks" 2 (List.length (Controller.tasks ctl));
  check Alcotest.bool "duplicate rejected" true
    (Result.is_error (Controller.register_task ctl ~name:"rcp" ()));
  (* The allocations on distinct switches must not collide: the ndb words
     cannot overlap the rcp slot's backing words on any switch. *)
  let slot = Option.get rcp.Controller.link_slot in
  let base = Option.get ndb.Controller.word_base in
  List.iter
    (fun (_, sw) ->
      let nports = Switch.num_ports sw in
      check Alcotest.bool "disjoint on every switch" true
        (base >= (slot + 1) * nports || base + 8 <= slot * nports))
    (Net.switches chain.Topology.net)

let test_defines_resolve () =
  let _, chain = small_net () in
  let ctl = Controller.create chain.Topology.net in
  let task =
    Result.get_ok
      (Controller.register_task ctl ~name:"acct" ~link_slot:true ~sram_words:2 ())
  in
  let defines = Controller.defines_for task in
  check Alcotest.int "three names" 3 (List.length defines);
  (* They assemble. *)
  let src = "PUSH [acct:LinkReg]\nADD [acct:Word0], 1\nPUSH [acct:Word1]\n" in
  match Asm.to_tpp ~defines ~mem_len:32 src with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let test_task_accounting_end_to_end () =
  (* A task counts its packets per switch with ADD on its own register. *)
  let eng, chain = small_net () in
  let net = chain.Topology.net in
  let ctl = Controller.create net in
  let task =
    Result.get_ok (Controller.register_task ctl ~name:"acct" ~sram_words:1 ())
  in
  let defines = Controller.defines_for task in
  let tpp = Result.get_ok (Asm.to_tpp ~defines ~mem_len:0 "ADD [acct:Word0], 1\n") in
  let src = Stack.create net chain.Topology.hosts.(0).(0) in
  let dst = chain.Topology.hosts.(2).(0) in
  let _sb = Stack.create net dst in
  for i = 1 to 5 do
    Engine.at eng (Time_ns.ms i) (fun () -> Probe.send src ~dst ~tpp ~seq:i)
  done;
  Engine.run eng ~until:(Time_ns.ms 50);
  let base = Option.get task.Controller.word_base in
  List.iter
    (fun (_, sw) ->
      check (Alcotest.option Alcotest.int)
        (Printf.sprintf "switch %d counted every packet" (Switch.id sw))
        (Some 5)
        (State.sram_get (Switch.state sw) base))
    (Net.switches net)

let test_reinstall_bumps_version () =
  let _, chain = small_net () in
  let ctl = Controller.create chain.Topology.net in
  Controller.reinstall_routes ctl;
  check Alcotest.int "v2" 2 (Controller.version ctl);
  List.iter
    (fun (_, sw) ->
      check Alcotest.int "switch at v2" 2 (Switch.state sw).State.version)
    (Net.switches chain.Topology.net)

let test_staged_update_transient () =
  let eng, chain = small_net () in
  let ctl = Controller.create chain.Topology.net in
  Controller.staged_route_update ctl ~gap:(Time_ns.ms 10);
  check Alcotest.bool "in progress" true (Controller.update_in_progress ctl);
  Engine.run eng ~until:(Time_ns.ms 15);
  (* One switch updated, others still old. *)
  let versions =
    List.map (fun (_, sw) -> (Switch.state sw).State.version)
      (Net.switches chain.Topology.net)
  in
  check Alcotest.bool "mixed mid-update" true
    (List.mem 1 versions && List.mem 2 versions);
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.bool "done" false (Controller.update_in_progress ctl);
  List.iter
    (fun (_, sw) -> check Alcotest.int "all at v2" 2 (Switch.state sw).State.version)
    (Net.switches chain.Topology.net)

let test_tcam_interposition () =
  let eng, chain = small_net () in
  let net = chain.Topology.net in
  let ctl = Controller.create net in
  let dst = chain.Topology.hosts.(2).(0) in
  let id =
    Controller.install_tcam ctl ~switch_node:chain.Topology.switch_ids.(0)
      { Tables.Tcam.any with
        Tables.Tcam.priority = 9; dst_ip = Some (dst.Net.ip, 0xFFFFFFFF) }
      (Tables.Forward 1)
  in
  check Alcotest.bool "unique high id" true (id > 10_000);
  (* A traced packet reports the stamped id and current version. *)
  let src = chain.Topology.hosts.(0).(0) in
  let seen = ref None in
  dst.Net.receive <- (fun ~now:_ frame ->
      match frame.Frame.tpp with
      | Some tpp -> seen := Some (Trace.parse tpp)
      | None -> ());
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  Net.host_send net src (Trace.attach frame ~max_hops:5);
  Engine.run eng ~until:(Time_ns.ms 50);
  (match !seen with
  | Some (first :: _) ->
    check Alcotest.int "stamped id on the packet" id first.Trace.matched_entry;
    check Alcotest.int "stamped version" 1 first.Trace.matched_version
  | _ -> Alcotest.fail "no trace");
  Controller.remove_tcam ctl ~switch_node:chain.Topology.switch_ids.(0) ~entry_id:id

let test_consistent_experiment_smoke () =
  let r = Consistent.run () in
  check Alcotest.bool "packets flowed" true (r.Consistent.total > 200);
  check Alcotest.bool "straddlers found" true (r.Consistent.mixed > 0);
  check Alcotest.int "conservation" r.Consistent.total
    (r.Consistent.pure_old + r.Consistent.pure_new + r.Consistent.mixed);
  check Alcotest.int "attribution exact" r.Consistent.mixed
    r.Consistent.mixed_during_window

let suite =
  [
    Alcotest.test_case "create installs v1" `Quick test_create_installs_v1;
    Alcotest.test_case "task registration" `Quick test_task_registration;
    Alcotest.test_case "defines resolve" `Quick test_defines_resolve;
    Alcotest.test_case "task accounting end-to-end" `Quick
      test_task_accounting_end_to_end;
    Alcotest.test_case "reinstall bumps version" `Quick test_reinstall_bumps_version;
    Alcotest.test_case "staged update transient" `Quick test_staged_update_transient;
    Alcotest.test_case "tcam interposition" `Quick test_tcam_interposition;
    Alcotest.test_case "consistent experiment" `Slow test_consistent_experiment_smoke;
  ]
