test/test_golden.ml: Alcotest Asm Buf Bytes Char Frame Instr Ipv4 List Mac Option Printf Prog Result String Tpp Vaddr
