test/test_util.ml: Alcotest Array Buf Buffer Bytes Char Format Gen Int List Printf QCheck QCheck_alcotest Rng Series Stats String Time_ns Tpp Tpp_util
