test/test_packet.ml: Alcotest Buf Bytes Ethernet Format Ipv4 Mac QCheck QCheck_alcotest Tpp Udp
