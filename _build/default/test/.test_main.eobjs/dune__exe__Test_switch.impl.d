test/test_switch.ml: Alcotest Asm Bytes Ethernet Frame Ipv4 List Mac Meta Option Prog Switch Tables Tpp Tpp_asic Vaddr
