test/test_tables.ml: Alcotest Format Ipv4 List Mac Option QCheck QCheck_alcotest String Tables Tpp
