test/test_asm.ml: Alcotest Array Asm Buf Bytes Frame Instr Ipv4 List Mac Meta Printf Prog QCheck QCheck_alcotest Result String Tpp Tpp_asic Vaddr
