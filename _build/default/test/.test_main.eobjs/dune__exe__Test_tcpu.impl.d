test/test_tcpu.ml: Alcotest Asm Bytes Frame Instr Ipv4 Mac Meta Option Printf Prog Tpp Tpp_asic
