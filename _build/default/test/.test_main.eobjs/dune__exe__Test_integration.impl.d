test/test_integration.ml: Alcotest Array Asm Bytes Engine Flow Frame List Microburst Net Option Printf Probe Prog Rcp_star Result Stack Switch Tables Time_ns Topology Tpp Tpp_asic Trace Verify
