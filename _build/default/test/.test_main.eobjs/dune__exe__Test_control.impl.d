test/test_control.ml: Alcotest Array Asm Bytes Consistent Controller Engine Frame List Net Option Printf Probe Result Stack Switch Tables Time_ns Topology Tpp Tpp_asic Trace
