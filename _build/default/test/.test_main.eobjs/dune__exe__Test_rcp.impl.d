test/test_rcp.ml: Alcotest Array Engine Flow List Printf Rcp Stack Time_ns Topology Tpp
