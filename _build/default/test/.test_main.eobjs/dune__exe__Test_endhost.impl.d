test/test_endhost.ml: Alcotest Array Asm Bytes Engine Float Flow Gen List Microburst Net Probe Prog QCheck QCheck_alcotest Rcp_star Result Stack String Time_ns Token_bucket Topology Tpp Tpp_util
