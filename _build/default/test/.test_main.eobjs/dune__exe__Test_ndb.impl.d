test/test_ndb.ml: Alcotest Array Bytes Engine Frame Ipv4 List Mac Net Option Postcard Prog Switch Tables Time_ns Topology Tpp Trace Verify
