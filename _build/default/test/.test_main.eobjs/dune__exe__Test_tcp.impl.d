test/test_tcp.ml: Alcotest Array Engine List Net Option Printf Stack Switch Time_ns Topology Tpp Tpp_asic Tpp_rcp Vaddr
