test/test_asic.ml: Alcotest Gen List Meta QCheck QCheck_alcotest Result Tpp Tpp_asic Vaddr
