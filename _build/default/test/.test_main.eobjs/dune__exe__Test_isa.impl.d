test/test_isa.ml: Alcotest Array Buf Bytes Ethernet Format Frame Instr Ipv4 List Mac Option Printf Prog QCheck QCheck_alcotest Result Tpp Udp Vaddr
