test/test_fuzz.ml: Array Asm Bytes Engine Format Frame Gen Instr Ipv4 List Mac Meta Net Option Prog QCheck QCheck_alcotest Result String Switch Topology Tpp Tpp_asic Tpp_isa Vaddr Verify
