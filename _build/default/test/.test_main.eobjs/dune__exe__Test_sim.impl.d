test/test_sim.ml: Alcotest Array Asm Bytes Engine Frame List Net Option Prog Result Switch Time_ns Topology Tpp Tpp_asic Tpp_util Vaddr
