(* The Reno-style reliable transport: exact delivery on clean and lossy
   paths, congestion window dynamics, retransmission machinery. *)

open Tpp
module Tcp = Tpp_rcp.Tcp

let check = Alcotest.check
let mbps x = x * 1_000_000

let two_hosts ?(core_bps = mbps 100) ?(delay = Time_ns.ms 1) () =
  let eng = Engine.create () in
  let bell = Topology.dumbbell eng ~pairs:1 ~core_bps ~edge_bps:(mbps 100) ~delay () in
  let net = bell.Topology.d_net in
  let sa = Stack.create net bell.Topology.senders.(0) in
  let sb = Stack.create net bell.Topology.receivers.(0) in
  (eng, net, bell, sa, sb)

let test_clean_transfer () =
  let eng, _, bell, sa, sb = two_hosts () in
  let rx = Tcp.Receiver.attach sb ~port:5001 in
  let completed = ref None in
  let tx =
    Tcp.Transfer.start ~src:sa ~dst:bell.Topology.receivers.(0) ~port:5001
      ~total_bytes:500_000
      ~on_complete:(fun ~now -> completed := Some now)
      ()
  in
  Engine.run eng ~until:(Time_ns.sec 10);
  check Alcotest.bool "done" true (Tcp.Transfer.is_done tx);
  check Alcotest.bool "completion reported" true (Option.is_some !completed);
  check Alcotest.int "every byte delivered in order" 500_000
    (Tcp.Receiver.bytes_delivered rx);
  check Alcotest.int "acked" 500_000 (Tcp.Transfer.bytes_acked tx);
  check Alcotest.int "no reassembly debris" 0 (Tcp.Receiver.out_of_order_held rx);
  check Alcotest.int "no loss, no retransmits" 0 (Tcp.Transfer.retransmits tx);
  check Alcotest.bool "rtt estimated" true (Tcp.Transfer.srtt_ns tx > 0);
  check Alcotest.bool "window grew past IW" true (Tcp.Transfer.cwnd_segments tx > 4.0)

let test_lossy_transfer_still_exact () =
  (* A 5 Mb/s bottleneck with a tiny 8 kB buffer guarantees drops as
     slow start overshoots; reliability must hide every one of them. *)
  let eng, net, bell, sa, sb = two_hosts ~core_bps:(mbps 5) () in
  Switch.set_queue_limit (Net.switch net bell.Topology.left_switch) ~port:0
    ~bytes:8_000;
  let rx = Tcp.Receiver.attach sb ~port:5001 in
  let tx =
    Tcp.Transfer.start ~src:sa ~dst:bell.Topology.receivers.(0) ~port:5001
      ~total_bytes:400_000 ()
  in
  Engine.run eng ~until:(Time_ns.sec 30);
  check Alcotest.bool "done despite loss" true (Tcp.Transfer.is_done tx);
  check Alcotest.int "exact delivery" 400_000 (Tcp.Receiver.bytes_delivered rx);
  check Alcotest.bool "losses actually happened" true (Tcp.Transfer.retransmits tx > 0);
  let drops =
    Tpp_asic.State.port_stat
      (Switch.state (Net.switch net bell.Topology.left_switch))
      ~port:0 Vaddr.Port_stat.Drops
  in
  check Alcotest.bool "bottleneck dropped packets" true (drops > 0)

let test_completion_time_reasonable () =
  (* 1 MB at 100 Mb/s with ~6 ms RTT: slow start dominated; anything
     under a second is sane, under 100 ms is expected. *)
  let eng, _, bell, sa, sb = two_hosts () in
  let _rx = Tcp.Receiver.attach sb ~port:5001 in
  let done_at = ref None in
  let _tx =
    Tcp.Transfer.start ~src:sa ~dst:bell.Topology.receivers.(0) ~port:5001
      ~total_bytes:1_000_000
      ~on_complete:(fun ~now -> done_at := Some now)
      ()
  in
  Engine.run eng ~until:(Time_ns.sec 5);
  match !done_at with
  | None -> Alcotest.fail "did not finish"
  | Some t ->
    check Alcotest.bool
      (Printf.sprintf "finished in %.1f ms" (Time_ns.to_ms_f t))
      true
      (t < Time_ns.ms 500)

let test_rto_recovers_from_blackout () =
  (* Kill the path mid-transfer, restore it: the RTO must resume and
     finish the transfer. *)
  let eng, net, bell, sa, sb = two_hosts () in
  let rx = Tcp.Receiver.attach sb ~port:5001 in
  let tx =
    Tcp.Transfer.start ~src:sa ~dst:bell.Topology.receivers.(0) ~port:5001
      ~total_bytes:2_000_000 ()
  in
  let core = (bell.Topology.left_switch, 0) in
  Engine.at eng (Time_ns.ms 20) (fun () -> Net.set_link_up net core false);
  Engine.at eng (Time_ns.ms 600) (fun () -> Net.set_link_up net core true);
  Engine.run eng ~until:(Time_ns.sec 30);
  check Alcotest.bool "finished after blackout" true (Tcp.Transfer.is_done tx);
  check Alcotest.int "exact delivery" 2_000_000 (Tcp.Receiver.bytes_delivered rx);
  check Alcotest.bool "timeouts fired" true (Tcp.Transfer.timeouts tx > 0)

let test_two_transfers_share () =
  (* Two Renos on one 10 Mb/s bottleneck: both finish, and the slower
     one is within a small factor of the faster (rough fairness). *)
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:2 ~core_bps:(mbps 10) ~edge_bps:(mbps 100)
      ~delay:(Time_ns.ms 1) ()
  in
  let net = bell.Topology.d_net in
  ignore net;
  let times = Array.make 2 None in
  let txs =
    List.init 2 (fun i ->
        let sa = Stack.create net bell.Topology.senders.(i) in
        let sb = Stack.create net bell.Topology.receivers.(i) in
        let _rx = Tcp.Receiver.attach sb ~port:5001 in
        Tcp.Transfer.start ~src:sa ~dst:bell.Topology.receivers.(i) ~port:5001
          ~total_bytes:1_000_000
          ~on_complete:(fun ~now -> times.(i) <- Some now)
          ())
  in
  Engine.run eng ~until:(Time_ns.sec 30);
  List.iter (fun tx -> check Alcotest.bool "done" true (Tcp.Transfer.is_done tx)) txs;
  match (times.(0), times.(1)) with
  | Some a, Some b ->
    let slow = float_of_int (max a b) and fast = float_of_int (min a b) in
    check Alcotest.bool
      (Printf.sprintf "finish times within 4x (%.0f vs %.0f ms)"
         (slow /. 1e6) (fast /. 1e6))
      true
      (slow /. fast < 4.0)
  | _ -> Alcotest.fail "missing completion time"

let suite =
  [
    Alcotest.test_case "clean transfer" `Quick test_clean_transfer;
    Alcotest.test_case "lossy transfer exact" `Quick test_lossy_transfer_still_exact;
    Alcotest.test_case "completion time" `Quick test_completion_time_reasonable;
    Alcotest.test_case "rto recovers from blackout" `Quick test_rto_recovers_from_blackout;
    Alcotest.test_case "two transfers share" `Slow test_two_transfers_share;
  ]
