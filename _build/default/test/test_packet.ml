(* Wire-format tests: addresses, Ethernet/IPv4/UDP headers, checksums. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

(* --- MAC ------------------------------------------------------------ *)

let test_mac_string () =
  let m = Mac.of_host_id 42 in
  let s = Mac.to_string m in
  check Alcotest.string "format" "02:00:00:10:00:2a" s;
  check Alcotest.bool "parses back" true (Mac.equal m (Mac.of_string s))

let test_mac_bad_string () =
  Alcotest.check_raises "five octets"
    (Invalid_argument "Mac.of_string: need 6 octets") (fun () ->
      ignore (Mac.of_string "01:02:03:04:05"));
  Alcotest.check_raises "bad hex" (Invalid_argument "Mac.of_string: bad octet")
    (fun () -> ignore (Mac.of_string "01:02:03:04:05:zz"))

let test_mac_distinct () =
  check Alcotest.bool "hosts and switches disjoint" false
    (Mac.equal (Mac.of_host_id 3) (Mac.of_switch_id 3));
  check Alcotest.bool "broadcast" true
    (Mac.equal Mac.broadcast (Mac.of_string "ff:ff:ff:ff:ff:ff"))

let prop_mac_string_roundtrip =
  QCheck.Test.make ~name:"mac string roundtrip" ~count:200
    QCheck.(int_bound 0xFFFFFF)
    (fun v ->
      let m = Mac.of_int v in
      Mac.equal m (Mac.of_string (Mac.to_string m)))

(* --- IPv4 addresses and prefixes ------------------------------------ *)

let test_ipv4_addr () =
  let a = Ipv4.Addr.of_string "10.1.2.3" in
  check Alcotest.string "roundtrip" "10.1.2.3" (Ipv4.Addr.to_string a);
  check Alcotest.int "to_int" 0x0A010203 (Ipv4.Addr.to_int a);
  Alcotest.check_raises "octet range"
    (Invalid_argument "Ipv4.Addr.of_string: bad octet") (fun () ->
      ignore (Ipv4.Addr.of_string "1.2.3.256"))

let test_prefix_matching () =
  let p = Ipv4.Prefix.of_string "10.0.0.0/8" in
  check Alcotest.bool "inside" true (Ipv4.Prefix.matches p (Ipv4.Addr.of_string "10.9.8.7"));
  check Alcotest.bool "outside" false (Ipv4.Prefix.matches p (Ipv4.Addr.of_string "11.0.0.1"));
  let default = Ipv4.Prefix.of_string "0.0.0.0/0" in
  check Alcotest.bool "default matches all" true
    (Ipv4.Prefix.matches default (Ipv4.Addr.of_string "203.0.113.7"));
  let host = Ipv4.Prefix.host (Ipv4.Addr.of_string "10.0.0.1") in
  check Alcotest.int "host length" 32 (Ipv4.Prefix.length host);
  check Alcotest.bool "host matches self" true
    (Ipv4.Prefix.matches host (Ipv4.Addr.of_string "10.0.0.1"));
  check Alcotest.bool "host rejects sibling" false
    (Ipv4.Prefix.matches host (Ipv4.Addr.of_string "10.0.0.2"))

let test_prefix_normalises_host_bits () =
  let p = Ipv4.Prefix.make (Ipv4.Addr.of_string "10.1.2.3") 16 in
  check Alcotest.string "host bits zeroed" "10.1.0.0/16"
    (Format.asprintf "%a" Ipv4.Prefix.pp p)

let prop_prefix_self_match =
  QCheck.Test.make ~name:"prefix made from an address matches it" ~count:200
    QCheck.(pair (int_bound 0xFFFFFFF) (int_range 0 32))
    (fun (v, len) ->
      let a = Ipv4.Addr.of_int v in
      Ipv4.Prefix.matches (Ipv4.Prefix.make a len) a)

(* --- Internet checksum ---------------------------------------------- *)

let test_checksum_zero_over_valid () =
  (* A header serialised by us must checksum to zero when re-summed. *)
  let w = Buf.Writer.create () in
  let hdr =
    { Ipv4.Header.src = Ipv4.Addr.of_string "10.0.0.1";
      dst = Ipv4.Addr.of_string "10.0.0.2"; proto = 17; ttl = 64; dscp = 0; ecn = 0;
      ident = 99 }
  in
  Ipv4.Header.write w hdr ~payload_len:100;
  let b = Buf.Writer.contents w in
  check Alcotest.int "fold to zero" 0 (Ipv4.checksum b ~pos:0 ~len:20)

let test_checksum_known_vector () =
  (* Example from RFC 1071 §3: words 0x0001 0xf203 0xf4f5 0xf6f7. *)
  let b = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  check Alcotest.int "rfc1071" (lnot 0xddf2 land 0xFFFF)
    (Ipv4.checksum b ~pos:0 ~len:8)

let test_checksum_odd_length () =
  let b = Bytes.of_string "\x01\x02\x03" in
  (* 0x0102 + 0x0300 = 0x0402 -> complement *)
  check Alcotest.int "odd tail padded" (lnot 0x0402 land 0xFFFF)
    (Ipv4.checksum b ~pos:0 ~len:3)

(* --- IPv4 header ----------------------------------------------------- *)

let roundtrip_header hdr payload_len =
  let w = Buf.Writer.create () in
  Ipv4.Header.write w hdr ~payload_len;
  Ipv4.Header.read (Buf.Reader.of_bytes (Buf.Writer.contents w))

let test_ipv4_header_roundtrip () =
  let hdr =
    { Ipv4.Header.src = Ipv4.Addr.of_string "10.0.0.1";
      dst = Ipv4.Addr.of_string "10.255.0.2"; proto = 17; ttl = 3; dscp = 9;
      ecn = Ipv4.Header.ecn_ce; ident = 0xBEEF }
  in
  let got, payload_len = roundtrip_header hdr 321 in
  check Alcotest.int "payload len" 321 payload_len;
  check Alcotest.int "ecn" Ipv4.Header.ecn_ce got.Ipv4.Header.ecn;
  check Alcotest.bool "src" true (Ipv4.Addr.equal hdr.Ipv4.Header.src got.Ipv4.Header.src);
  check Alcotest.bool "dst" true (Ipv4.Addr.equal hdr.Ipv4.Header.dst got.Ipv4.Header.dst);
  check Alcotest.int "proto" 17 got.Ipv4.Header.proto;
  check Alcotest.int "ttl" 3 got.Ipv4.Header.ttl;
  check Alcotest.int "dscp" 9 got.Ipv4.Header.dscp;
  check Alcotest.int "ident" 0xBEEF got.Ipv4.Header.ident

let test_ipv4_header_corruption_detected () =
  let hdr =
    { Ipv4.Header.src = Ipv4.Addr.of_string "10.0.0.1";
      dst = Ipv4.Addr.of_string "10.0.0.2"; proto = 17; ttl = 64; dscp = 0; ecn = 0;
      ident = 1 }
  in
  let w = Buf.Writer.create () in
  Ipv4.Header.write w hdr ~payload_len:0;
  let b = Buf.Writer.contents w in
  Bytes.set_uint8 b 8 99 (* flip the TTL without fixing the checksum *);
  Alcotest.check_raises "checksum failure"
    (Invalid_argument "Ipv4.Header.read: checksum") (fun () ->
      ignore (Ipv4.Header.read (Buf.Reader.of_bytes b)))

let prop_ipv4_header_roundtrip =
  QCheck.Test.make ~name:"ipv4 header roundtrip" ~count:200
    QCheck.(quad (int_bound 0xFFFFFF) (int_bound 0xFFFFFF) (int_range 1 255)
              (int_bound 0xFFFF))
    (fun (src, dst, ttl, ident) ->
      let hdr =
        { Ipv4.Header.src = Ipv4.Addr.of_int src; dst = Ipv4.Addr.of_int dst;
          proto = 17; ttl; dscp = 0; ecn = 0; ident }
      in
      let got, _ = roundtrip_header hdr 42 in
      got = hdr)

(* --- UDP -------------------------------------------------------------- *)

let test_udp_roundtrip () =
  let w = Buf.Writer.create () in
  Udp.write w { Udp.src_port = 7777; dst_port = 53 } ~payload_len:11;
  let got, len = Udp.read (Buf.Reader.of_bytes (Buf.Writer.contents w)) in
  check Alcotest.int "src" 7777 got.Udp.src_port;
  check Alcotest.int "dst" 53 got.Udp.dst_port;
  check Alcotest.int "payload" 11 len

let test_udp_bad_length () =
  let b = Bytes.make 8 '\000' in
  Bytes.set_uint16_be b 4 3 (* length below header size *);
  Alcotest.check_raises "short length" (Invalid_argument "Udp.read: length")
    (fun () -> ignore (Udp.read (Buf.Reader.of_bytes b)))

(* --- Ethernet --------------------------------------------------------- *)

let test_ethernet_roundtrip () =
  let eth =
    { Ethernet.dst = Mac.of_host_id 1; src = Mac.of_host_id 2;
      ethertype = Ethernet.ethertype_tpp }
  in
  let w = Buf.Writer.create () in
  Ethernet.write w eth;
  check Alcotest.int "size" Ethernet.size (Buf.Writer.length w);
  let got = Ethernet.read (Buf.Reader.of_bytes (Buf.Writer.contents w)) in
  check Alcotest.bool "equal" true (got = eth)

let suite =
  [
    Alcotest.test_case "mac of/to string" `Quick test_mac_string;
    Alcotest.test_case "mac bad string" `Quick test_mac_bad_string;
    Alcotest.test_case "mac namespaces" `Quick test_mac_distinct;
    qtest prop_mac_string_roundtrip;
    Alcotest.test_case "ipv4 addr" `Quick test_ipv4_addr;
    Alcotest.test_case "prefix matching" `Quick test_prefix_matching;
    Alcotest.test_case "prefix normalisation" `Quick test_prefix_normalises_host_bits;
    qtest prop_prefix_self_match;
    Alcotest.test_case "checksum of valid header" `Quick test_checksum_zero_over_valid;
    Alcotest.test_case "checksum rfc vector" `Quick test_checksum_known_vector;
    Alcotest.test_case "checksum odd length" `Quick test_checksum_odd_length;
    Alcotest.test_case "ipv4 header roundtrip" `Quick test_ipv4_header_roundtrip;
    Alcotest.test_case "ipv4 corruption detected" `Quick
      test_ipv4_header_corruption_detected;
    qtest prop_ipv4_header_roundtrip;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp bad length" `Quick test_udp_bad_length;
    Alcotest.test_case "ethernet roundtrip" `Quick test_ethernet_roundtrip;
  ]
