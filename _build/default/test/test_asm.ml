(* Assembler tests: syntax, the constant pool for 3-operand sugar,
   relocation of user packet offsets, and the disassembler fixpoint. *)

open Tpp

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let assemble_ok ?defines src =
  match Asm.assemble ?defines src with
  | Ok p -> p
  | Error e -> Alcotest.failf "assembly failed: %s" e

let assemble_err ?defines src =
  match Asm.assemble ?defines src with
  | Ok _ -> Alcotest.fail "assembly unexpectedly succeeded"
  | Error e -> e

let test_basic_program () =
  let p =
    assemble_ok
      "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n; a comment\nHALT\n"
  in
  check Alcotest.int "three instructions" 3 (List.length p.Asm.instrs);
  check Alcotest.int "no pool" 0 (Bytes.length p.Asm.pool);
  match p.Asm.instrs with
  | [ Instr.Push (Instr.Sw 0x000); Instr.Push (Instr.Sw 0x140); Instr.Halt ] -> ()
  | _ -> Alcotest.fail "unexpected instruction forms"

let test_comments_and_blank_lines () =
  let p = assemble_ok "\n  ; full line comment\n# hash comment\n\nNOP # trailing\n" in
  check Alcotest.int "one instruction" 1 (List.length p.Asm.instrs)

let test_case_insensitive_mnemonics () =
  let p = assemble_ok "push [Switch:SwitchID]\nhalt\n" in
  check Alcotest.int "parsed" 2 (List.length p.Asm.instrs)

let test_all_mnemonics () =
  let src =
    "NOP\n\
     PUSH [Switch:SwitchID]\n\
     POP [Sram:0]\n\
     LOAD [Link:QueueSize], [Packet:0]\n\
     STORE [Sram:1], [Packet:4]\n\
     MOV [Packet:0], 42\n\
     ADD [Packet:0], 1\n\
     SUB [Packet:0], 1\n\
     AND [Packet:0], 255\n\
     OR [Packet:0], 16\n\
     MIN [Packet:0], [Packet:4]\n\
     MAX [Packet:0], [Packet:4]\n\
     CSTORE [Sram:2], [Packet:8]\n\
     CEXEC [Switch:SwitchID], [Packet:8]\n\
     HALT\n"
  in
  let p = assemble_ok src in
  check Alcotest.int "all fifteen" 15 (List.length p.Asm.instrs)

let test_sugar_builds_pool () =
  let p =
    assemble_ok "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7\nCSTORE [Sram:0], 5, 9\n"
  in
  check Alcotest.int "pool holds four words" 16 (Bytes.length p.Asm.pool);
  check Alcotest.int "mask" 0xFFFFFFFF (Buf.get_u32i p.Asm.pool 0);
  check Alcotest.int "value" 7 (Buf.get_u32i p.Asm.pool 4);
  check Alcotest.int "cond" 5 (Buf.get_u32i p.Asm.pool 8);
  check Alcotest.int "new" 9 (Buf.get_u32i p.Asm.pool 12);
  match p.Asm.instrs with
  | [ Instr.Cexec (Instr.Sw 0, Instr.Pkt 0); Instr.Cstore (Instr.Sw 0x880, Instr.Pkt 8) ]
    -> ()
  | _ -> Alcotest.fail "pool offsets not encoded as expected"

let test_user_offsets_relocated_past_pool () =
  let p = assemble_ok "CEXEC [Switch:SwitchID], 1, 1\nLOAD [Switch:SwitchID], [Packet:0]\n" in
  match p.Asm.instrs with
  | [ _; Instr.Load (_, Instr.Pkt 8) ] -> ()
  | _ -> Alcotest.fail "user offset should shift by the 8-byte pool"

let test_hop_operands () =
  let p = assemble_ok "LOAD [Switch:SwitchID], [Packet:Hop[2]]\n" in
  match p.Asm.instrs with
  | [ Instr.Load (Instr.Sw 0, Instr.Hop 2) ] -> ()
  | _ -> Alcotest.fail "hop operand"

let test_defines () =
  let defines = [ ("Link:RCP-RateRegister", Vaddr.encode (Vaddr.Link_sram 0)) ] in
  let p = assemble_ok ~defines "PUSH [Link:RCP-RateRegister]\n" in
  match p.Asm.instrs with
  | [ Instr.Push (Instr.Sw 0x180) ] -> ()
  | _ -> Alcotest.fail "define resolution"

let contains s sub =
  let n = String.length sub in
  let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_errors_carry_line_numbers () =
  let e = assemble_err "NOP\nFROB [Switch:SwitchID]\n" in
  check Alcotest.bool "line 2 reported" true (contains e "line 2");
  check Alcotest.bool "mnemonic named" true (contains e "FROB")

let test_error_cases () =
  let err src = ignore (assemble_err src) in
  err "PUSH\n" (* missing operand *);
  err "PUSH [Switch:SwitchID], [Packet:0]\n" (* too many operands *);
  err "PUSH [Nonsense:Stat]\n";
  err "LOAD [Switch:SwitchID], [Packet:3]\n" (* misaligned offset *);
  err "LOAD [Switch:SwitchID], [Packet:banana]\n";
  err "CEXEC [Switch:SwitchID], 0x1FFFFFFFF, 1\n" (* 33-bit constant *);
  err "MOV [Packet:0], 99999\n" (* immediate beyond 12 bits *);
  err "PUSH [Sram:-1]\n"

let test_word_directive () =
  let p = assemble_ok "STORE [Sram:0], [Packet:0]\n.WORD 0xDEADBEEF\n.WORD 7\n" in
  check (Alcotest.list Alcotest.int) "init words" [ 0xDEADBEEF; 7 ] p.Asm.user_init;
  match Asm.to_tpp ~mem_len:8 "STORE [Sram:0], [Packet:0]\n.WORD 0xDEADBEEF\n.WORD 7\n" with
  | Error e -> Alcotest.fail e
  | Ok tpp ->
    check Alcotest.int "word 0 initialised" 0xDEADBEEF (Prog.mem_get tpp tpp.Prog.base);
    check Alcotest.int "word 1 initialised" 7 (Prog.mem_get tpp (tpp.Prog.base + 4));
    check Alcotest.int "sp skips initialisers" (tpp.Prog.base + 8) tpp.Prog.sp

let test_word_directive_grows_memory () =
  (* mem_len 0 still fits the initialisers. *)
  match Asm.to_tpp ~mem_len:0 "STORE [Sram:0], [Packet:0]\n.WORD 5\n" with
  | Error e -> Alcotest.fail e
  | Ok tpp -> check Alcotest.int "word present" 5 (Prog.mem_get tpp tpp.Prog.base)

let test_word_directive_executes () =
  (* End-to-end: the initialised word lands in switch SRAM. *)
  let st = Tpp_asic.State.create ~switch_id:1 ~num_ports:2 () in
  let tpp =
    Result.get_ok (Asm.to_tpp ~mem_len:0 "STORE [Sram:9], [Packet:0]\n.WORD 4242\n")
  in
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Meta.out_port <- 0;
  ignore (Tpp_asic.Tcpu.execute st ~now:0 ~frame);
  check (Alcotest.option Alcotest.int) "stored" (Some 4242)
    (Tpp_asic.State.sram_get st 9)

let test_word_directive_errors () =
  ignore (assemble_err ".WORD\n");
  ignore (assemble_err ".WORD 1, 2\n");
  ignore (assemble_err ".WORD banana\n");
  ignore (assemble_err ".WORD 0x1FFFFFFFF\n")

let test_to_tpp_packaging () =
  match Asm.to_tpp ~mem_len:16 "CEXEC [Switch:SwitchID], 3, 1\nPUSH [Switch:SwitchID]\n" with
  | Error e -> Alcotest.fail e
  | Ok tpp ->
    check Alcotest.int "base = pool bytes" 8 tpp.Prog.base;
    check Alcotest.int "sp starts at base" 8 tpp.Prog.sp;
    check Alcotest.int "total memory" 24 (Bytes.length tpp.Prog.memory);
    check Alcotest.int "pool initialised" 3 (Prog.mem_get tpp 0)

let test_disassemble_fixpoint () =
  let src =
    "PUSH [Switch:SwitchID]\n\
     LOAD [Link:QueueSize], [Packet:0]\n\
     CSTORE [Sram:2], 5, 9\n\
     CEXEC [Switch:SwitchID], 0xFFFFFFFF, 7\n\
     HALT\n"
  in
  match Asm.to_tpp ~mem_len:32 src with
  | Error e -> Alcotest.fail e
  | Ok tpp -> (
    let listing = Asm.disassemble tpp in
    (* Reassembling the listing must reproduce the program: the listing
       uses raw pool operands, so no new pool is created and offsets
       stay put. *)
    match Asm.assemble listing with
    | Error e -> Alcotest.failf "listing did not reassemble: %s\n%s" e listing
    | Ok p ->
      check Alcotest.bool "identical instructions" true
        (Array.to_list tpp.Prog.program = p.Asm.instrs))

let prop_roundtrip_simple_pushes =
  (* Any sequence of PUSHes over the named statistics assembles, and
     the disassembly reassembles to the same thing. *)
  let name_gen = QCheck.Gen.oneofl (List.map fst (Vaddr.all_named ())) in
  QCheck.Test.make ~name:"push listing roundtrip" ~count:100
    (QCheck.make QCheck.Gen.(list_size (1 -- 10) name_gen))
    (fun names ->
      let src = String.concat "" (List.map (Printf.sprintf "PUSH [%s]\n") names) in
      match Asm.assemble src with
      | Error _ -> false
      | Ok p -> (
        let tpp = Prog.make ~program:p.Asm.instrs ~mem_len:64 () in
        match Asm.assemble (Asm.disassemble tpp) with
        | Error _ -> false
        | Ok q -> p.Asm.instrs = q.Asm.instrs))

let suite =
  [
    Alcotest.test_case "basic program" `Quick test_basic_program;
    Alcotest.test_case "comments and blanks" `Quick test_comments_and_blank_lines;
    Alcotest.test_case "case-insensitive mnemonics" `Quick test_case_insensitive_mnemonics;
    Alcotest.test_case "all mnemonics" `Quick test_all_mnemonics;
    Alcotest.test_case "sugar builds pool" `Quick test_sugar_builds_pool;
    Alcotest.test_case "user offsets relocated" `Quick test_user_offsets_relocated_past_pool;
    Alcotest.test_case "hop operands" `Quick test_hop_operands;
    Alcotest.test_case "defines" `Quick test_defines;
    Alcotest.test_case "errors carry line numbers" `Quick test_errors_carry_line_numbers;
    Alcotest.test_case "error cases" `Quick test_error_cases;
    Alcotest.test_case "to_tpp packaging" `Quick test_to_tpp_packaging;
    Alcotest.test_case ".word directive" `Quick test_word_directive;
    Alcotest.test_case ".word grows memory" `Quick test_word_directive_grows_memory;
    Alcotest.test_case ".word executes" `Quick test_word_directive_executes;
    Alcotest.test_case ".word errors" `Quick test_word_directive_errors;
    Alcotest.test_case "disassemble fixpoint" `Quick test_disassemble_fixpoint;
    qtest prop_roundtrip_simple_pushes;
  ]
