(* ASIC state tests: registers, utilisation windows, the SRAM
   allocator, and MMU address translation / access control. *)

open Tpp
module State = Tpp_asic.State
module Alloc = Tpp_asic.Alloc
module Mmu = Tpp_asic.Mmu

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let mk ?(num_ports = 4) () = State.create ~switch_id:7 ~num_ports ()

(* --- State ------------------------------------------------------------- *)

let test_state_stats () =
  let st = mk () in
  st.State.packets_seen <- 5;
  st.State.bytes_seen <- 5000;
  check Alcotest.int "switch id" 7
    (State.switch_stat st ~now:0 Vaddr.Switch_stat.Switch_id);
  check Alcotest.int "packets" 5
    (State.switch_stat st ~now:0 Vaddr.Switch_stat.Packets_seen);
  check Alcotest.int "num ports" 4
    (State.switch_stat st ~now:0 Vaddr.Switch_stat.Num_ports);
  check Alcotest.int "clock low bits" 0x1234
    (State.switch_stat st ~now:0x1234 Vaddr.Switch_stat.Clock_ns);
  State.force_queue_depth st ~port:2 ~bytes:777;
  check Alcotest.int "port stat" 777 (State.port_stat st ~port:2 Vaddr.Port_stat.Queue_bytes)

let test_state_port_bounds () =
  let st = mk () in
  Alcotest.check_raises "port range" (Invalid_argument "State.port: out of range")
    (fun () -> ignore (State.port st 4))

let test_state_counters_mask_to_32_bits () =
  let st = mk () in
  st.State.bytes_seen <- 0x1_2345_6789;
  check Alcotest.int "wraps at 32 bits" 0x2345_6789
    (State.switch_stat st ~now:0 Vaddr.Switch_stat.Bytes_seen)

let test_utilization_window () =
  let st = mk () in
  let p = State.port st 1 in
  p.State.Port.capacity_bps <- 10_000_000;
  (* 5000 bytes offered over a 10 ms window on a 10 Mb/s link = 40% . *)
  p.State.Port.window_rx_bytes <- 5000;
  State.update_utilization st ~window_ns:10_000_000;
  check Alcotest.int "ppm" 400_000 (State.port_stat st ~port:1 Vaddr.Port_stat.Rx_util);
  check Alcotest.int "window reset" 0 p.State.Port.window_rx_bytes;
  (* An idle second window decays the reading to zero. *)
  State.update_utilization st ~window_ns:10_000_000;
  check Alcotest.int "idle window" 0 (State.port_stat st ~port:1 Vaddr.Port_stat.Rx_util)

let test_sram_accessors () =
  let st = mk () in
  check Alcotest.bool "set" true (State.sram_set st 0 0xFFFF_FFFF);
  check (Alcotest.option Alcotest.int) "get" (Some 0xFFFF_FFFF) (State.sram_get st 0);
  check Alcotest.bool "set masks" true (State.sram_set st 1 0x1_0000_0002);
  check (Alcotest.option Alcotest.int) "masked" (Some 2) (State.sram_get st 1);
  check Alcotest.bool "oob set" false (State.sram_set st Vaddr.sram_words 1);
  check (Alcotest.option Alcotest.int) "oob get" None (State.sram_get st (-1))

let test_link_sram_index () =
  let st = mk ~num_ports:4 () in
  check (Alcotest.option Alcotest.int) "slot 0 port 0" (Some 0)
    (State.link_sram_index st ~slot:0 ~port:0);
  check (Alcotest.option Alcotest.int) "slot 2 port 3" (Some 11)
    (State.link_sram_index st ~slot:2 ~port:3);
  check (Alcotest.option Alcotest.int) "port oob" None
    (State.link_sram_index st ~slot:0 ~port:4);
  check (Alcotest.option Alcotest.int) "slot oob" None
    (State.link_sram_index st ~slot:Vaddr.link_sram_slots ~port:0)

(* --- Alloc -------------------------------------------------------------- *)

let test_alloc_words () =
  let st = mk () in
  let a = Alloc.for_state st in
  let w1 = Result.get_ok (Alloc.alloc_words a ~task:"x" ~count:10) in
  let w2 = Result.get_ok (Alloc.alloc_words a ~task:"y" ~count:5) in
  check Alcotest.bool "disjoint" true (w2 >= w1 + 10 || w1 >= w2 + 5);
  check Alcotest.int "free accounting" (Vaddr.sram_words - 15) (Alloc.free_words a)

let test_alloc_exhaustion () =
  let st = mk () in
  let a = Alloc.for_state st in
  check Alcotest.bool "too big" true
    (Result.is_error (Alloc.alloc_words a ~task:"x" ~count:(Vaddr.sram_words + 1)));
  let _ = Alloc.alloc_words a ~task:"x" ~count:Vaddr.sram_words in
  check Alcotest.bool "full" true
    (Result.is_error (Alloc.alloc_words a ~task:"y" ~count:1))

let test_alloc_link_slots () =
  let st = mk ~num_ports:4 () in
  let a = Alloc.for_state st in
  let s0 = Result.get_ok (Alloc.alloc_link_slot a ~task:"rcp") in
  let s1 = Result.get_ok (Alloc.alloc_link_slot a ~task:"ndb") in
  check Alcotest.int "first slot" 0 s0;
  check Alcotest.int "second slot" 1 s1;
  (* Their backing words are what link_sram_index reports. *)
  check (Alcotest.option Alcotest.int) "backing" (Some 4)
    (State.link_sram_index st ~slot:1 ~port:0)

let test_alloc_mixed_no_overlap () =
  let st = mk ~num_ports:4 () in
  let a = Alloc.for_state st in
  let _ = Alloc.alloc_words a ~task:"blob" ~count:3 in
  let slot = Result.get_ok (Alloc.alloc_link_slot a ~task:"rcp") in
  (* Slot 0 backs words 0-3 which overlap the 3-word blob, so the
     allocator must have skipped to slot 1. *)
  check Alcotest.int "skipped occupied slot" 1 slot

let prop_alloc_regions_disjoint =
  QCheck.Test.make ~name:"allocator never hands out overlapping words" ~count:100
    QCheck.(make Gen.(list_size (1 -- 20) (int_range 1 200)))
    (fun counts ->
      let st = State.create ~switch_id:1 ~num_ports:8 () in
      let a = Alloc.for_state st in
      List.iter
        (fun c -> ignore (Alloc.alloc_words a ~task:"t" ~count:c))
        counts;
      let regions = Alloc.regions a in
      let rec disjoint = function
        | (_, f1, c1) :: ((_, f2, _) :: _ as rest) ->
          f1 + c1 <= f2 && disjoint rest
        | _ -> true
      in
      disjoint regions)

(* --- Mmu ---------------------------------------------------------------- *)

let meta_with ~out_port =
  let m = Meta.create () in
  m.Meta.out_port <- out_port;
  m.Meta.in_port <- 1;
  m.Meta.matched_entry <- 42;
  m

let test_mmu_reads () =
  let st = mk () in
  let meta = meta_with ~out_port:2 in
  State.force_queue_depth st ~port:2 ~bytes:1234;
  (State.port st 3).State.Port.tx_bytes <- 999;
  let read a = Result.get_ok (Mmu.read st ~meta ~now:5 a) in
  check Alcotest.int "switch id" 7 (read 0x000);
  check Alcotest.int "contextual queue" 1234 (read 0x100);
  check Alcotest.int "absolute port stat" 999 (read (0x200 + (16 * 3) + 3));
  check Alcotest.int "meta in port" 1 (read 0x800);
  check Alcotest.int "meta entry" 42 (read 0x802);
  ignore (State.sram_set st 5 77);
  check Alcotest.int "sram" 77 (read (0x880 + 5))

let test_mmu_contextual_sram () =
  let st = mk ~num_ports:4 () in
  let meta = meta_with ~out_port:3 in
  (* LinkSram slot 1 of port 3 backs raw SRAM word 1*4+3 = 7. *)
  check Alcotest.bool "write" true (Result.is_ok (Mmu.write st ~meta (0x180 + 1) 555));
  check (Alcotest.option Alcotest.int) "lands in word 7" (Some 555) (State.sram_get st 7);
  check Alcotest.int "reads back" 555
    (Result.get_ok (Mmu.read st ~meta ~now:0 (0x180 + 1)))

let test_mmu_write_protection () =
  let st = mk () in
  let meta = meta_with ~out_port:0 in
  let expect_read_only a =
    match Mmu.write st ~meta a 1 with
    | Error (Mmu.Read_only _) -> ()
    | _ -> Alcotest.failf "address 0x%03x should be read-only" a
  in
  expect_read_only 0x000 (* switch stat *);
  expect_read_only 0x100 (* link stat *);
  expect_read_only 0x210 (* port stat *);
  expect_read_only 0x800 (* metadata *)

let test_mmu_bad_addresses () =
  let st = mk () in
  let meta = meta_with ~out_port:0 in
  (match Mmu.read st ~meta ~now:0 0x050 with
  | Error (Mmu.Bad_address _) -> ()
  | _ -> Alcotest.fail "hole should fault");
  match Mmu.read st ~meta ~now:0 (0x200 + (16 * 90)) with
  | Error (Mmu.Port_out_of_range 90) -> ()
  | _ -> Alcotest.fail "port 90 of a 4-port switch should fault"

let test_mmu_read_absolute () =
  let st = mk () in
  check Alcotest.int "switch stat" 7 (Result.get_ok (Mmu.read_absolute st ~now:0 0x000));
  check Alcotest.bool "contextual faults" true
    (Result.is_error (Mmu.read_absolute st ~now:0 0x100));
  check Alcotest.bool "metadata faults" true
    (Result.is_error (Mmu.read_absolute st ~now:0 0x800))

let suite =
  [
    Alcotest.test_case "state stats" `Quick test_state_stats;
    Alcotest.test_case "state port bounds" `Quick test_state_port_bounds;
    Alcotest.test_case "32-bit counter masking" `Quick test_state_counters_mask_to_32_bits;
    Alcotest.test_case "utilization window" `Quick test_utilization_window;
    Alcotest.test_case "sram accessors" `Quick test_sram_accessors;
    Alcotest.test_case "link sram indexing" `Quick test_link_sram_index;
    Alcotest.test_case "alloc words" `Quick test_alloc_words;
    Alcotest.test_case "alloc exhaustion" `Quick test_alloc_exhaustion;
    Alcotest.test_case "alloc link slots" `Quick test_alloc_link_slots;
    Alcotest.test_case "alloc mixed no overlap" `Quick test_alloc_mixed_no_overlap;
    qtest prop_alloc_regions_disjoint;
    Alcotest.test_case "mmu reads" `Quick test_mmu_reads;
    Alcotest.test_case "mmu contextual sram" `Quick test_mmu_contextual_sram;
    Alcotest.test_case "mmu write protection" `Quick test_mmu_write_protection;
    Alcotest.test_case "mmu bad addresses" `Quick test_mmu_bad_addresses;
    Alcotest.test_case "mmu read absolute" `Quick test_mmu_read_absolute;
  ]
