(* Forwarding-plane debugger tests: the trace TPP, control-path
   computation, mismatch detection, and the postcard baseline. *)

open Tpp

let check = Alcotest.check

let diamond () =
  let eng = Engine.create () in
  let dia =
    Topology.diamond eng ~hosts_per_side:1 ~bps:100_000_000 ~delay:(Time_ns.us 100) ()
  in
  (eng, dia)

let traced_frame src dst =
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:9000 ~dst_port:9000 ~payload:(Bytes.create 64) ()
  in
  Trace.attach frame ~max_hops:6

let collect_one_trace eng dia =
  let net = dia.Topology.m_net in
  let src = dia.Topology.src_hosts.(0) in
  let dst = dia.Topology.dst_hosts.(0) in
  let traces = ref [] in
  dst.Net.receive <- (fun ~now:_ frame ->
      match frame.Frame.tpp with
      | Some tpp -> traces := Trace.parse tpp :: !traces
      | None -> ());
  Net.host_send net src (traced_frame src dst);
  Engine.run eng ~until:(Time_ns.ms 50);
  match !traces with
  | [ t ] -> t
  | other -> Alcotest.failf "expected one trace, got %d" (List.length other)

let test_trace_records_intended_path () =
  let eng, dia = diamond () in
  let trace = collect_one_trace eng dia in
  let ids = List.map (fun h -> h.Trace.switch_id) trace in
  check (Alcotest.list Alcotest.int) "A-B-D" [ 1; 2; 4 ] ids;
  List.iter
    (fun h ->
      check Alcotest.bool "entry recorded" true (h.Trace.matched_entry > 0);
      check Alcotest.int "version 1" 1 h.Trace.matched_version)
    trace;
  (* The first hop entered from the source host's access port (2). *)
  (match trace with
  | first :: _ -> check Alcotest.int "in port" 2 first.Trace.in_port
  | [] -> Alcotest.fail "empty trace");
  let expected = Verify.control_path dia.Topology.m_net ~src:dia.Topology.src_hosts.(0)
      ~dst:dia.Topology.dst_hosts.(0) in
  check (Alcotest.list Alcotest.int) "matches control path" expected ids;
  check Alcotest.int "no mismatch" 0
    (List.length (Verify.check ~expected ~expected_version:1 ~trace))

let test_trace_detects_divergence () =
  let eng, dia = diamond () in
  let ingress = Net.switch dia.Topology.m_net dia.Topology.ingress in
  Switch.install_tcam ingress
    { Tables.Tcam.any with
      Tables.Tcam.priority = 50;
      dst_ip = Some (dia.Topology.dst_hosts.(0).Net.ip, 0xFFFFFFFF) }
    { Tables.action = Tables.Forward 1; entry_id = 999; version = 0 };
  let trace = collect_one_trace eng dia in
  let ids = List.map (fun h -> h.Trace.switch_id) trace in
  check (Alcotest.list Alcotest.int) "went A-C-D" [ 1; 3; 4 ] ids;
  (match trace with
  | first :: _ ->
    check Alcotest.int "culprit entry visible" 999 first.Trace.matched_entry
  | [] -> Alcotest.fail "empty trace");
  let expected =
    Verify.control_path dia.Topology.m_net ~src:dia.Topology.src_hosts.(0)
      ~dst:dia.Topology.dst_hosts.(0)
  in
  let issues = Verify.check ~expected ~expected_version:1 ~trace in
  check Alcotest.bool "wrong switch flagged" true
    (List.exists
       (function
         | Verify.Wrong_switch { hop = 1; expected = 2; got = 3 } -> true
         | _ -> false)
       issues)

let test_verify_check_cases () =
  let hop ?(version = 1) switch_id =
    { Trace.switch_id; matched_entry = 1; matched_version = version; in_port = 0;
      out_port = 1 }
  in
  check Alcotest.int "identical paths pass" 0
    (List.length (Verify.check ~expected:[ 1; 2 ] ~expected_version:1
                    ~trace:[ hop 1; hop 2 ]));
  (match Verify.check ~expected:[ 1; 2; 3 ] ~expected_version:1 ~trace:[ hop 1 ] with
  | [ Verify.Path_too_short _ ] -> ()
  | _ -> Alcotest.fail "short path");
  (match Verify.check ~expected:[ 1 ] ~expected_version:1 ~trace:[ hop 1; hop 2 ] with
  | [ Verify.Path_too_long _ ] -> ()
  | _ -> Alcotest.fail "long path");
  match Verify.check ~expected:[ 1 ] ~expected_version:2 ~trace:[ hop ~version:1 1 ] with
  | [ Verify.Stale_version { switch_id = 1; expected = 2; got = 1 } ] -> ()
  | _ -> Alcotest.fail "stale version"

let test_trace_attach_rules () =
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~payload:Bytes.empty ()
  in
  let traced = Trace.attach frame ~max_hops:4 in
  check Alcotest.bool "tpp added" true (Option.is_some traced.Frame.tpp);
  Alcotest.check_raises "double attach"
    (Invalid_argument "Trace.attach: frame already carries a TPP") (fun () ->
      ignore (Trace.attach traced ~max_hops:4))

let test_trace_parse_stops_at_unwritten_blocks () =
  let tpp = Trace.make ~max_hops:4 in
  (* Simulate execution on one switch only. *)
  Prog.mem_set tpp 0 7 (* switch id *);
  Prog.mem_set tpp 4 1;
  Prog.mem_set tpp 8 1;
  tpp.Prog.hop <- 3 (* two further hops executed nothing, e.g. CEXEC-gated *);
  let trace = Trace.parse tpp in
  check Alcotest.int "only the written hop" 1 (List.length trace)

let test_postcards () =
  let eng, dia = diamond () in
  let net = dia.Topology.m_net in
  let collector = Postcard.deploy net in
  let src = dia.Topology.src_hosts.(0) in
  let dst = dia.Topology.dst_hosts.(0) in
  let sent_ids = ref [] in
  (* Send two plain frames; each crosses 3 switches. *)
  for _ = 1 to 2 do
    let frame =
      Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
    in
    Net.host_send net src frame
  done;
  Net.on_host_deliver net (fun _ frame -> sent_ids := frame.Frame.id :: !sent_ids);
  Engine.run eng ~until:(Time_ns.ms 50);
  check Alcotest.int "3 postcards per packet" 6 (Postcard.postcards collector);
  check Alcotest.int "overhead bytes" (6 * 64) (Postcard.overhead_bytes collector);
  check Alcotest.int "two distinct frames" 2 (Postcard.distinct_frames collector);
  (match !sent_ids with
  | id :: _ ->
    let path = Postcard.path_of collector ~frame_id:id in
    check (Alcotest.list Alcotest.int) "reassembled path" [ 1; 2; 4 ]
      (List.map (fun c -> c.Postcard.switch_id) path)
  | [] -> Alcotest.fail "no frames delivered");
  Postcard.undeploy collector;
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  Net.host_send net src frame;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.int "undeployed taps are silent" 6 (Postcard.postcards collector)

let test_control_path_on_chain () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:1 ~bps:1_000_000
      ~delay:0 ()
  in
  let path =
    Verify.control_path chain.Topology.net ~src:chain.Topology.hosts.(0).(0)
      ~dst:chain.Topology.hosts.(2).(0)
  in
  check (Alcotest.list Alcotest.int) "full chain" [ 1; 2; 3 ] path

let suite =
  [
    Alcotest.test_case "trace records intended path" `Quick
      test_trace_records_intended_path;
    Alcotest.test_case "trace detects divergence" `Quick test_trace_detects_divergence;
    Alcotest.test_case "verify check cases" `Quick test_verify_check_cases;
    Alcotest.test_case "trace attach rules" `Quick test_trace_attach_rules;
    Alcotest.test_case "trace parse partial" `Quick
      test_trace_parse_stops_at_unwritten_blocks;
    Alcotest.test_case "postcards" `Quick test_postcards;
    Alcotest.test_case "control path on chain" `Quick test_control_path_on_chain;
  ]
