(* End-to-end integration: scaled-down versions of the paper's three
   tasks running on the full stack (assembler -> wire format -> switch
   pipeline -> TCPU -> end-host applications). *)

open Tpp

let check = Alcotest.check
let mbps x = x * 1_000_000

(* --- Figure 2, miniature: RCP* fair share ------------------------------- *)

let test_rcp_star_two_flows_fair_share () =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:2 ~core_bps:(mbps 10) ~edge_bps:(mbps 100)
      ~delay:(Time_ns.ms 2) ()
  in
  let net = bell.Topology.d_net in
  let slot = Result.get_ok (Rcp_star.setup_network net) in
  let config = Rcp_star.default_config ~slot in
  Net.start_utilization_updates net ~period:config.Rcp_star.period_ns
    ~until:(Time_ns.sec 6);
  let controllers =
    List.init 2 (fun i ->
        let src = Stack.create net bell.Topology.senders.(i) in
        let dst_host = bell.Topology.receivers.(i) in
        let dst = Stack.create net dst_host in
        Probe.install_echo dst;
        let _sink = Flow.Sink.attach dst ~port:9000 in
        let flow =
          Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:954
            ~rate_bps:(mbps 10)
        in
        let ctl = Rcp_star.create src config ~flow ~dst:dst_host in
        Engine.at eng (Time_ns.sec i) (fun () ->
            Flow.start flow ();
            Rcp_star.start ctl ());
        ctl)
  in
  Engine.run eng ~until:(Time_ns.sec 6);
  let sw = Net.switch net bell.Topology.left_switch in
  let r_over_c =
    float_of_int (Option.get (Rcp_star.read_rate_kbps sw ~slot ~port:0))
    *. 1000.0 /. float_of_int (mbps 10)
  in
  check Alcotest.bool
    (Printf.sprintf "bottleneck register near fair share (R/C = %.3f)" r_over_c)
    true
    (r_over_c > 0.3 && r_over_c < 0.7);
  List.iter
    (fun ctl ->
      check Alcotest.bool "controller probing" true (Rcp_star.probes_sent ctl > 100);
      check Alcotest.bool "controller updating" true (Rcp_star.updates_sent ctl > 100);
      let rate = float_of_int (Rcp_star.current_rate_bps ctl) /. float_of_int (mbps 10) in
      check Alcotest.bool
        (Printf.sprintf "flow rate near fair share (%.3f)" rate)
        true
        (rate > 0.25 && rate < 0.75))
    controllers

let test_rcp_star_cstore_prevents_lost_updates () =
  (* With CSTORE, an update whose condition is stale is rejected, and
     the controller can tell: updates_won < updates_sent under
     contention, while a single writer wins everything. *)
  let run ~flows =
    let eng = Engine.create () in
    let bell =
      Topology.dumbbell eng ~pairs:flows ~core_bps:(mbps 10) ~edge_bps:(mbps 100)
        ~delay:(Time_ns.ms 2) ()
    in
    let net = bell.Topology.d_net in
    let slot = Result.get_ok (Rcp_star.setup_network net) in
    (* T > RTT so a lone controller's update lands before its next
       read; otherwise it races itself, which would mask the
       contention signal this test is about. *)
    let config =
      { (Rcp_star.default_config ~slot) with Rcp_star.period_ns = Time_ns.ms 40 }
    in
    Net.start_utilization_updates net ~period:config.Rcp_star.period_ns
      ~until:(Time_ns.sec 3);
    let controllers =
      List.init flows (fun i ->
          let src = Stack.create net bell.Topology.senders.(i) in
          let dst_host = bell.Topology.receivers.(i) in
          let dst = Stack.create net dst_host in
          Probe.install_echo dst;
          let _sink = Flow.Sink.attach dst ~port:9000 in
          let flow =
            Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:954
              ~rate_bps:(mbps 10)
          in
          let ctl = Rcp_star.create src config ~flow ~dst:dst_host in
          Flow.start flow ();
          Rcp_star.start ctl ();
          ctl)
    in
    Engine.run eng ~until:(Time_ns.sec 3);
    let sent = List.fold_left (fun a c -> a + Rcp_star.updates_sent c) 0 controllers in
    let won = List.fold_left (fun a c -> a + Rcp_star.updates_won c) 0 controllers in
    (sent, won)
  in
  let sent1, won1 = run ~flows:1 in
  check Alcotest.bool
    (Printf.sprintf "single writer mostly wins (%d of %d)" won1 sent1)
    true
    (won1 * 10 > sent1 * 6);
  let sent3, won3 = run ~flows:3 in
  check Alcotest.bool
    (Printf.sprintf "contention visible to CSTORE (%d of %d)" won3 sent3)
    true (won3 < sent3);
  check Alcotest.bool "some updates still land" true (won3 > 0);
  check Alcotest.bool "contended win rate below solo win rate" true
    (won3 * sent1 < won1 * sent3)

let test_rcp_star_piggyback_mode () =
  (* Phase-1 collects riding the data packets themselves: convergence
     without any separate collect probes. *)
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:2 ~core_bps:(mbps 10) ~edge_bps:(mbps 100)
      ~delay:(Time_ns.ms 2) ()
  in
  let net = bell.Topology.d_net in
  let slot = Result.get_ok (Rcp_star.setup_network net) in
  let config =
    { (Rcp_star.default_config ~slot) with Rcp_star.piggyback_every = Some 5 }
  in
  Net.start_utilization_updates net ~period:config.Rcp_star.period_ns
    ~until:(Time_ns.sec 5);
  let flows =
    List.init 2 (fun i ->
        let src = Stack.create net bell.Topology.senders.(i) in
        let dst_host = bell.Topology.receivers.(i) in
        let dst = Stack.create net dst_host in
        let _sink = Flow.Sink.attach dst ~port:9000 in
        Probe.install_echo dst;
        Probe.install_echo_on_port dst ~port:9000;
        let flow =
          Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:954
            ~rate_bps:(mbps 10)
        in
        let ctl = Rcp_star.create src config ~flow ~dst:dst_host in
        Flow.start flow ();
        Rcp_star.start ctl ();
        (flow, ctl))
  in
  Engine.run eng ~until:(Time_ns.sec 5);
  let sw = Net.switch net bell.Topology.left_switch in
  let r_over_c =
    float_of_int (Option.get (Rcp_star.read_rate_kbps sw ~slot ~port:0))
    *. 1000.0 /. float_of_int (mbps 10)
  in
  check Alcotest.bool
    (Printf.sprintf "piggyback converges to fair share (R/C=%.3f)" r_over_c)
    true
    (r_over_c > 0.3 && r_over_c < 0.7);
  List.iter
    (fun (flow, ctl) ->
      check Alcotest.bool "TPPs rode the data" true (Flow.tpp_carried flow > 100);
      check Alcotest.bool "collects processed" true (Rcp_star.probes_sent ctl > 50);
      check Alcotest.bool "updates still flowed" true (Rcp_star.updates_sent ctl > 50))
    flows

(* --- §2.1 miniature: micro-burst visibility ------------------------------ *)

let test_microburst_tpp_vs_polling () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:3 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in
  List.iter
    (fun (s, d, period) ->
      let src = Stack.create net (host 0 s) in
      let dst = Stack.create net (host 2 d) in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let flow =
        Flow.bursts ~src ~dst:(host 2 d) ~dst_port:9000 ~payload_bytes:1400
          ~burst_pkts:30 ~period
      in
      Flow.start flow ())
    [ (1, 1, Time_ns.ms 21); (2, 2, Time_ns.ms 24) ];
  let mon_src = Stack.create net (host 0 0) in
  let mon_dst = Stack.create net (host 2 0) in
  Probe.install_echo mon_dst;
  let monitor =
    Microburst.create ~src:mon_src ~dst:(host 2 0) ~period:(Time_ns.ms 1)
      ~threshold_bytes:15_000
  in
  Microburst.start monitor ();
  let sw0 = Net.switch net chain.Topology.switch_ids.(0) in
  let oracle = Microburst.Episode.create ~threshold:15_000 in
  let poller = Microburst.Episode.create ~threshold:15_000 in
  let until = Time_ns.sec 5 in
  Engine.every eng ~period:(Time_ns.us 50) ~until (fun () ->
      Microburst.Episode.feed oracle (Switch.queue_bytes sw0 ~port:1));
  Engine.every eng ~period:(Time_ns.sec 1) ~until (fun () ->
      Microburst.Episode.feed poller (Switch.queue_bytes sw0 ~port:1));
  Engine.run eng ~until;
  let truth = Microburst.Episode.count oracle in
  let tpp =
    match List.assoc_opt (Switch.id sw0) (Microburst.hops monitor) with
    | Some e -> Microburst.Episode.count e
    | None -> 0
  in
  let polled = Microburst.Episode.count poller in
  check Alcotest.bool (Printf.sprintf "bursts happened (%d)" truth) true (truth > 5);
  check Alcotest.bool
    (Printf.sprintf "TPP sees most bursts (%d of %d)" tpp truth)
    true
    (float_of_int tpp >= 0.8 *. float_of_int truth);
  check Alcotest.bool
    (Printf.sprintf "polling misses almost all (%d of %d)" polled truth)
    true
    (float_of_int polled <= 0.2 *. float_of_int truth)

(* --- §2.3 miniature: debugger localises a planted fault ------------------- *)

let test_ndb_localises_planted_rule () =
  let eng = Engine.create () in
  let dia =
    Topology.diamond eng ~hosts_per_side:1 ~bps:(mbps 100) ~delay:(Time_ns.us 100) ()
  in
  let net = dia.Topology.m_net in
  let src = dia.Topology.src_hosts.(0) in
  let dst = dia.Topology.dst_hosts.(0) in
  Switch.install_tcam
    (Net.switch net dia.Topology.ingress)
    { Tables.Tcam.any with
      Tables.Tcam.priority = 50; dst_ip = Some (dst.Net.ip, 0xFFFFFFFF) }
    { Tables.action = Tables.Forward 1; entry_id = 999; version = 0 };
  let mismatches = ref [] in
  dst.Net.receive <- (fun ~now:_ frame ->
      match frame.Frame.tpp with
      | Some tpp ->
        let expected = Verify.control_path net ~src ~dst in
        mismatches := Verify.check ~expected ~expected_version:1 ~trace:(Trace.parse tpp)
                      :: !mismatches
      | None -> ());
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
  in
  Net.host_send net src (Trace.attach frame ~max_hops:6);
  Engine.run eng ~until:(Time_ns.ms 50);
  match !mismatches with
  | [ issues ] ->
    check Alcotest.bool "one packet suffices to localise the fault" true
      (List.exists
         (function Verify.Wrong_switch { hop = 1; _ } -> true | _ -> false)
         issues)
  | other -> Alcotest.failf "expected one verdict, got %d" (List.length other)

(* --- §4: the edge strips untrusted TPPs ----------------------------------- *)

let test_edge_strips_untrusted_tpp () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:2 ~hosts_per_switch:1 ~bps:(mbps 100)
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  let src = chain.Topology.hosts.(0).(0) in
  let dst = chain.Topology.hosts.(1).(0) in
  (* The tenant-facing port of the first switch strips TPPs. *)
  Switch.set_strip_tpp (Net.switch net chain.Topology.switch_ids.(0)) ~port:2 true;
  let got = ref None in
  dst.Net.receive <- (fun ~now:_ frame -> got := Some (Option.is_some frame.Frame.tpp));
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:16 "PUSH [Switch:SwitchID]\n") in
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~tpp ~payload:(Bytes.create 32) ()
  in
  Net.host_send net src frame;
  Engine.run eng ~until:(Time_ns.ms 10);
  check (Alcotest.option Alcotest.bool) "delivered without its TPP" (Some false) !got

(* --- §3.2: concurrent tasks get disjoint SRAM ------------------------------ *)

let test_multi_task_sram_isolation () =
  let sw = Switch.create ~id:1 ~num_ports:8 () in
  let alloc = Switch.alloc sw in
  let rcp_slot = Result.get_ok (Tpp_asic.Alloc.alloc_link_slot alloc ~task:"rcp") in
  let ndb_words = Result.get_ok (Tpp_asic.Alloc.alloc_words alloc ~task:"ndb" ~count:32) in
  let regions = Tpp_asic.Alloc.regions alloc in
  check Alcotest.int "two regions" 2 (List.length regions);
  (* The RCP slot's backing words and the ndb block must not intersect. *)
  let rcp_first = rcp_slot * 8 and rcp_count = 8 in
  check Alcotest.bool "disjoint" true
    (ndb_words >= rcp_first + rcp_count || rcp_first >= ndb_words + 32)

(* --- Faulty TPPs cross the network without harming it ----------------------- *)

let test_faulting_tpp_still_delivered () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:1 ~bps:(mbps 100)
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  let src = chain.Topology.hosts.(0).(0) in
  let dst = chain.Topology.hosts.(2).(0) in
  let got = ref None in
  dst.Net.receive <- (fun ~now:_ frame ->
      got := Option.map (fun t -> t.Prog.faulted) frame.Frame.tpp);
  (* Writing a read-only statistic faults at the first switch. *)
  let tpp =
    Result.get_ok
      (Asm.to_tpp ~mem_len:16 "MOV [Packet:0], 1\nSTORE [Queue:QueueSize], [Packet:0]\n")
  in
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  Net.host_send net src frame;
  Engine.run eng ~until:(Time_ns.ms 10);
  check (Alcotest.option Alcotest.bool) "arrived, flagged faulted" (Some true) !got;
  let sw1 = Net.switch net chain.Topology.switch_ids.(0) in
  check Alcotest.int "first switch counted the fault" 1
    (Switch.state sw1).Tpp_asic.State.tpp_faults;
  let sw2 = Net.switch net chain.Topology.switch_ids.(1) in
  check Alcotest.int "later switches left it inert" 0
    (Switch.state sw2).Tpp_asic.State.tpp_faults

let suite =
  [
    Alcotest.test_case "rcp* fair share (mini fig 2)" `Slow
      test_rcp_star_two_flows_fair_share;
    Alcotest.test_case "cstore prevents lost updates" `Slow
      test_rcp_star_cstore_prevents_lost_updates;
    Alcotest.test_case "rcp* piggyback mode" `Slow test_rcp_star_piggyback_mode;
    Alcotest.test_case "microburst tpp vs polling" `Slow test_microburst_tpp_vs_polling;
    Alcotest.test_case "ndb localises planted rule" `Quick test_ndb_localises_planted_rule;
    Alcotest.test_case "edge strips untrusted tpp" `Quick test_edge_strips_untrusted_tpp;
    Alcotest.test_case "multi-task sram isolation" `Quick test_multi_task_sram_isolation;
    Alcotest.test_case "faulting tpp still delivered" `Quick
      test_faulting_tpp_still_delivered;
  ]
