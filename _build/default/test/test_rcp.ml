(* In-network RCP baseline: router dynamics and flow controllers on a
   live simulated bottleneck. *)

open Tpp

let check = Alcotest.check

let dumbbell () =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:2 ~core_bps:10_000_000 ~edge_bps:100_000_000
      ~delay:(Time_ns.ms 2) ()
  in
  (eng, bell)

let mk_flow net bell i ~rate =
  let src = Stack.create net bell.Topology.senders.(i) in
  let dst_host = bell.Topology.receivers.(i) in
  let dst = Stack.create net dst_host in
  let sink = Flow.Sink.attach dst ~port:9000 in
  let flow = Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:954 ~rate_bps:rate in
  (flow, sink)

let test_router_idle_stays_at_capacity () =
  let eng, bell = dumbbell () in
  let net = bell.Topology.d_net in
  let router =
    Rcp.Router.attach net Rcp.default_config ~switch_node:bell.Topology.left_switch
      ~port:0
  in
  Engine.run eng ~until:(Time_ns.sec 1);
  check (Alcotest.float 1.0) "R stays at C with no load" 10_000_000.0
    (Rcp.Router.rate_bps router);
  check Alcotest.int "capacity" 10_000_000 (Rcp.Router.capacity_bps router)

let test_router_reacts_to_overload () =
  let eng, bell = dumbbell () in
  let net = bell.Topology.d_net in
  let router =
    Rcp.Router.attach net Rcp.default_config ~switch_node:bell.Topology.left_switch
      ~port:0
  in
  (* Two uncontrolled 10 Mb/s flows overload the 10 Mb/s core. *)
  let f0, _ = mk_flow net bell 0 ~rate:10_000_000 in
  let f1, _ = mk_flow net bell 1 ~rate:10_000_000 in
  Flow.start f0 ();
  Flow.start f1 ();
  Engine.run eng ~until:(Time_ns.sec 1);
  check Alcotest.bool "R dropped well below C" true
    (Rcp.Router.rate_bps router < 8_000_000.0)

let test_controller_follows_min_rate () =
  let eng, bell = dumbbell () in
  let net = bell.Topology.d_net in
  let config = Rcp.default_config in
  let core = Rcp.Router.attach net config ~switch_node:bell.Topology.left_switch ~port:0 in
  let edge =
    Rcp.Router.attach net config ~switch_node:bell.Topology.right_switch ~port:1
  in
  let f0, sink = mk_flow net bell 0 ~rate:1_000_000 in
  let f1, _ = mk_flow net bell 1 ~rate:10_000_000 in
  let ctl = Rcp.Controller.create net config ~flow:f0 ~path:[ core; edge ] in
  Flow.start f0 ();
  Flow.start f1 ();
  Rcp.Controller.start ctl ();
  Engine.run eng ~until:(Time_ns.sec 2);
  (* With both flows controlled by R at the core, flow 0's rate must
     track the router's shared rate, not its initial 1 Mb/s. *)
  let r = float_of_int (Rcp.Controller.current_rate_bps ctl) in
  check (Alcotest.float 1.0) "flow rate = router rate" (Rcp.Router.rate_bps core) r;
  check Alcotest.bool "flow actually sped up" true (Flow.Sink.rx_pkts sink > 0)

let test_two_controlled_flows_converge_to_fair_share () =
  let eng, bell = dumbbell () in
  let net = bell.Topology.d_net in
  let config = Rcp.default_config in
  let core = Rcp.Router.attach net config ~switch_node:bell.Topology.left_switch ~port:0 in
  let flows =
    List.init 2 (fun i ->
        let edge =
          Rcp.Router.attach net config ~switch_node:bell.Topology.right_switch
            ~port:(1 + i)
        in
        let flow, sink = mk_flow net bell i ~rate:10_000_000 in
        let ctl = Rcp.Controller.create net config ~flow ~path:[ core; edge ] in
        Flow.start flow ();
        Rcp.Controller.start ctl ();
        (flow, sink))
  in
  Engine.run eng ~until:(Time_ns.sec 5);
  let r_over_c = Rcp.Router.rate_bps core /. 10_000_000.0 in
  check Alcotest.bool
    (Printf.sprintf "R/C near 1/2 (got %.3f)" r_over_c)
    true
    (r_over_c > 0.35 && r_over_c < 0.65);
  (* Both flows got meaningful goodput. *)
  List.iter
    (fun (_, sink) ->
      let mbps =
        float_of_int (Flow.Sink.rx_bytes sink) *. 8.0 /. 5.0 /. 1e6
      in
      check Alcotest.bool (Printf.sprintf "goodput %.2f in [3,6.5]" mbps) true
        (mbps > 3.0 && mbps < 6.5))
    flows

let test_empty_path_rejected () =
  let eng, bell = dumbbell () in
  let net = bell.Topology.d_net in
  let f, _ = mk_flow net bell 0 ~rate:1_000_000 in
  ignore eng;
  Alcotest.check_raises "empty path"
    (Invalid_argument "Rcp.Controller.create: empty path") (fun () ->
      ignore (Rcp.Controller.create net Rcp.default_config ~flow:f ~path:[]))

let suite =
  [
    Alcotest.test_case "router idle at capacity" `Quick test_router_idle_stays_at_capacity;
    Alcotest.test_case "router reacts to overload" `Quick test_router_reacts_to_overload;
    Alcotest.test_case "controller follows min rate" `Quick test_controller_follows_min_rate;
    Alcotest.test_case "two flows reach fair share" `Slow
      test_two_controlled_flows_converge_to_fair_share;
    Alcotest.test_case "empty path rejected" `Quick test_empty_path_rejected;
  ]
