(* Tests for the extension features: fat-tree fabrics, TPP piggybacking
   on data flows, finite transfers, the AIMD baseline and the FCT
   workload. *)

open Tpp

let check = Alcotest.check
let mbps x = x * 1_000_000

(* --- fat-tree -------------------------------------------------------------- *)

let test_fat_tree_shape () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:(mbps 100) ~delay:(Time_ns.us 10) () in
  check Alcotest.int "cores" 4 (Array.length ft.Topology.core_ids);
  check Alcotest.int "pods" 4 (Array.length ft.Topology.agg_ids);
  check Alcotest.int "hosts" 16 (Array.length ft.Topology.f_hosts);
  check Alcotest.int "switch count" 20 (List.length (Net.switches ft.Topology.f_net))

let path_hops net src dst =
  (* Count switches on the intended path. *)
  List.length (Verify.control_path net ~src ~dst)

let test_fat_tree_path_lengths () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:(mbps 100) ~delay:(Time_ns.us 10) () in
  let net = ft.Topology.f_net in
  let host = ft.Topology.f_hosts in
  (* Same edge: hosts 0 and 1. Same pod: 0 and 2 (different edges).
     Cross pod: 0 and 15. *)
  check Alcotest.int "same edge: 1 switch" 1 (path_hops net host.(0) host.(1));
  check Alcotest.int "same pod: 3 switches" 3 (path_hops net host.(0) host.(2));
  check Alcotest.int "cross pod: 5 switches" 5 (path_hops net host.(0) host.(15))

let test_fat_tree_end_to_end () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:(mbps 100) ~delay:(Time_ns.us 10) () in
  let net = ft.Topology.f_net in
  let src = ft.Topology.f_hosts.(0) and dst = ft.Topology.f_hosts.(15) in
  let hops = ref 0 in
  dst.Net.receive <- (fun ~now:_ frame ->
      match frame.Frame.tpp with Some t -> hops := t.Prog.hop | None -> ());
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:64 "PUSH [Switch:SwitchID]\n") in
  let frame =
    Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
      ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  Net.host_send net src frame;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.int "TPP executed on all 5 switches" 5 !hops

let test_fat_tree_all_pairs_reachable () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:(mbps 100) ~delay:(Time_ns.us 10) () in
  let net = ft.Topology.f_net in
  let hosts = ft.Topology.f_hosts in
  let received = ref 0 in
  Array.iter
    (fun h ->
      h.Net.receive <- (fun ~now:_ _ -> incr received))
    hosts;
  let sent = ref 0 in
  Array.iteri
    (fun i src ->
      let dst = hosts.((i + 5) mod Array.length hosts) in
      incr sent;
      let frame =
        Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
          ~dst_ip:dst.Net.ip ~src_port:1 ~dst_port:2 ~payload:Bytes.empty ()
      in
      Net.host_send net src frame)
    hosts;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.int "every pair delivered" !sent !received

let test_fat_tree_rejects_odd_k () =
  let eng = Engine.create () in
  Alcotest.check_raises "odd k"
    (Invalid_argument "Topology.fat_tree: k must be even, >= 2") (fun () ->
      ignore (Topology.fat_tree eng ~k:3 ~bps:1000 ~delay:0 ()))

(* --- ECMP ------------------------------------------------------------------- *)

let test_select_path () =
  let ports = [| 3; 5; 9 |] in
  check Alcotest.int "mod" 5 (Tables.select_path ports ~key:7);
  check Alcotest.int "wraps" 3 (Tables.select_path ports ~key:9);
  Alcotest.check_raises "empty" (Invalid_argument "Tables.select_path: no ports")
    (fun () -> ignore (Tables.select_path [||] ~key:0))

let test_flow_hash_stable_and_spreading () =
  let h = Frame.flow_hash_values ~src:1 ~dst:2 ~proto:17 ~src_port:10 ~dst_port:20 in
  let h' = Frame.flow_hash_values ~src:1 ~dst:2 ~proto:17 ~src_port:10 ~dst_port:20 in
  check Alcotest.int "deterministic" h h';
  check Alcotest.bool "non-negative" true (h >= 0);
  (* Consecutive ports should not all land in the same 2-way group. *)
  let groups =
    List.init 16 (fun i ->
        Frame.flow_hash_values ~src:1 ~dst:2 ~proto:17 ~src_port:(1000 + i)
          ~dst_port:20
        mod 2)
  in
  check Alcotest.bool "both groups used" true
    (List.mem 0 groups && List.mem 1 groups)

let test_multipath_pins_flows () =
  let sw = Switch.create ~id:1 ~num_ports:4 () in
  let dst = Ipv4.Addr.of_host_id 2 in
  Switch.install_multipath_route sw (Ipv4.Prefix.host dst) ~ports:[ 1; 2 ]
    ~entry_id:1 ~version:1;
  let frame ~src_port =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:dst ~src_port ~dst_port:9
      ~payload:Bytes.empty ()
  in
  let out ~src_port =
    match Switch.handle_ingress sw ~now:0 ~in_port:0 (frame ~src_port) with
    | Switch.Queued [ p ] -> p
    | _ -> Alcotest.fail "not forwarded"
  in
  (* Same 5-tuple always takes the same port. *)
  let first = out ~src_port:42 in
  for _ = 1 to 5 do
    check Alcotest.int "pinned" first (out ~src_port:42)
  done;
  (* Across many flows, both ports get used. *)
  let ports = List.init 32 (fun i -> out ~src_port:(100 + i)) in
  check Alcotest.bool "spread across group" true
    (List.mem 1 ports && List.mem 2 ports);
  match Switch.route_action sw dst with
  | Some (Tables.Multipath [| 1; 2 |]) -> ()
  | _ -> Alcotest.fail "route_action should expose the ECMP group"

let test_ecmp_diamond_uses_both_paths () =
  let eng = Engine.create () in
  let dia =
    Topology.diamond eng ~hosts_per_side:1 ~bps:(mbps 100) ~delay:(Time_ns.us 10) ()
  in
  let net = dia.Topology.m_net in
  (* Re-install with ECMP on top of the default routes. *)
  Topology.install_routes ~ecmp:true net;
  let src = dia.Topology.src_hosts.(0) and dst = dia.Topology.dst_hosts.(0) in
  for i = 1 to 40 do
    let frame =
      Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(5000 + i) ~dst_port:9 ~payload:Bytes.empty ()
    in
    Net.host_send net src frame
  done;
  Engine.run eng ~until:(Time_ns.ms 100);
  let seen node = (Switch.state (Net.switch net node)).Tpp_asic.State.packets_seen in
  check Alcotest.bool "upper path used" true (seen dia.Topology.upper > 0);
  check Alcotest.bool "lower path used" true (seen dia.Topology.lower > 0);
  check Alcotest.int "nothing lost" 40 (seen dia.Topology.upper + seen dia.Topology.lower)

let test_control_route_predicts_ecmp_paths () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:(mbps 100) ~delay:(Time_ns.us 10) () in
  let net = ft.Topology.f_net in
  let hosts = ft.Topology.f_hosts in
  let results = ref [] in
  Array.iteri
    (fun i h ->
      h.Net.receive <- (fun ~now:_ frame ->
          match frame.Frame.tpp with
          | Some tpp -> results := (i, Trace.parse tpp) :: !results
          | None -> ()))
    hosts;
  let pairs = List.init 10 (fun i -> (i, (i + 7) mod 16)) in
  List.iter
    (fun (s, d) ->
      let frame =
        Frame.udp_frame ~src_mac:hosts.(s).Net.mac ~dst_mac:hosts.(d).Net.mac
          ~src_ip:hosts.(s).Net.ip ~dst_ip:hosts.(d).Net.ip ~src_port:(6000 + s)
          ~dst_port:6100 ~payload:Bytes.empty ()
      in
      Net.host_send net hosts.(s) (Trace.attach frame ~max_hops:6))
    pairs;
  Engine.run eng ~until:(Time_ns.ms 100);
  check Alcotest.int "all arrived" (List.length pairs) (List.length !results);
  List.iter
    (fun (s, d) ->
      let trace = List.assoc d !results in
      let expected =
        Verify.control_route ~src_port:(6000 + s) ~dst_port:6100 net ~src:hosts.(s)
          ~dst:hosts.(d)
      in
      check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
        (Printf.sprintf "exact (switch, port) prediction for %d->%d" s d)
        expected
        (List.map (fun h -> (h.Trace.switch_id, h.Trace.out_port)) trace))
    pairs

(* --- piggybacked TPPs -------------------------------------------------------- *)

let two_hosts () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:2 ~hosts_per_switch:1 ~bps:(mbps 100)
      ~delay:(Time_ns.us 100) ()
  in
  (eng, chain.Topology.net, chain.Topology.hosts.(0).(0), chain.Topology.hosts.(1).(0))

let test_piggyback_carries_and_echoes () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let sink = Flow.Sink.attach sb ~port:9000 in
  Probe.install_echo_on_port sb ~port:9000;
  let flow =
    Flow.cbr ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:954 ~rate_bps:(mbps 10)
  in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:32 "PUSH [Queue:QueueSize]\n") in
  Flow.carry_tpp flow ~every:3 tpp;
  let samples = ref 0 in
  Probe.install_reply_handler sa (fun ~now:_ ~seq:_ tpp ->
      if tpp.Prog.hop = 2 then incr samples);
  Flow.start flow ();
  Engine.at eng (Time_ns.ms 400) (fun () -> Flow.stop flow);
  Engine.run eng ~until:(Time_ns.ms 500);
  let carried = Flow.tpp_carried flow in
  check Alcotest.bool "some packets carried TPPs" true (carried > 10);
  check Alcotest.int "1 in 3 packets instrumented"
    ((Flow.tx_pkts flow + 2) / 3) carried;
  check Alcotest.int "every carried TPP echoed back" carried !samples;
  check Alcotest.int "data still delivered" (Flow.tx_pkts flow) (Flow.Sink.rx_pkts sink)

let test_piggyback_data_intact () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let sink = Flow.Sink.attach sb ~port:9000 in
  Probe.install_echo_on_port sb ~port:9000;
  let flow =
    Flow.cbr ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:954 ~rate_bps:(mbps 10)
  in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:32 "PUSH [Switch:SwitchID]\n") in
  Flow.carry_tpp flow ~every:1 tpp;
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.ms 200);
  Flow.stop flow;
  check Alcotest.int "no reordering" 0 (Flow.Sink.reordered sink);
  check Alcotest.int "no holes" 0 (Flow.Sink.holes sink);
  check Alcotest.bool "latency still measured" true
    (Tpp_util.Stats.count (Flow.Sink.latency sink) > 0)

(* --- transfers ---------------------------------------------------------------- *)

let test_transfer_stops_at_size () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let sink = Flow.Sink.attach sb ~port:9000 in
  let flow =
    Flow.transfer ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:1000
      ~rate_bps:(mbps 10) ~total_bytes:25_000
  in
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.sec 1);
  check Alcotest.bool "done" true (Flow.is_done flow);
  check Alcotest.int "sent exactly 25 packets" 25 (Flow.tx_pkts flow);
  check Alcotest.int "payload budget met" 25_000 (Flow.payload_sent flow);
  check Alcotest.int "receiver got it all" 25_000 (Flow.Sink.rx_payload_bytes sink);
  (* Restarting a finished transfer is a no-op. *)
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.sec 2);
  check Alcotest.int "no extra packets" 25 (Flow.tx_pkts flow)

let test_sink_tap_fires () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let taps = ref 0 in
  let _sink = Flow.Sink.attach ~tap:(fun ~now:_ -> incr taps) sb ~port:9000 in
  let flow =
    Flow.transfer ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:1000
      ~rate_bps:(mbps 10) ~total_bytes:5_000
  in
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.sec 1);
  check Alcotest.int "tap per packet" 5 !taps

(* --- stack multi-handler -------------------------------------------------------- *)

let test_on_udp_add_multiplexes () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let first = ref 0 and second = ref 0 in
  Stack.on_udp sb ~port:700 (fun ~now:_ _ -> incr first);
  Stack.on_udp_add sb ~port:700 (fun ~now:_ _ -> incr second);
  Stack.send_udp sa ~dst:b ~src_port:1 ~dst_port:700 ~payload:Bytes.empty ();
  Engine.run eng ~until:(Time_ns.ms 10);
  check Alcotest.int "first handler" 1 !first;
  check Alcotest.int "second handler" 1 !second;
  (* A plain on_udp replaces the whole set again. *)
  Stack.on_udp sb ~port:700 (fun ~now:_ _ -> ());
  Stack.send_udp sa ~dst:b ~src_port:1 ~dst_port:700 ~payload:Bytes.empty ();
  Engine.run eng ~until:(Time_ns.ms 20);
  check Alcotest.int "replaced" 1 !first

(* --- AIMD ------------------------------------------------------------------------ *)

let test_aimd_additive_increase () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  let sink = Flow.Sink.attach sb ~port:9000 in
  let flow =
    Flow.cbr ~src:sa ~dst:b ~dst_port:9000 ~payload_bytes:954 ~rate_bps:(mbps 1)
  in
  let config = Aimd.default_config ~max_rate_bps:(mbps 100) in
  let ctl = Aimd.create sa config ~flow ~report_port:9100 in
  let receiver =
    Aimd.Receiver.attach sb ~sink ~report_to:a ~report_port:9100
      ~period:config.Aimd.report_period_ns
  in
  Aimd.start ctl;
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.sec 2);
  Aimd.Receiver.stop receiver;
  (* No losses on an uncongested path: rate must have climbed. *)
  check Alcotest.bool "rate grew" true
    (Aimd.current_rate_bps ctl > config.Aimd.initial_rate_bps);
  check Alcotest.int "no losses" 0 (Aimd.losses_seen ctl);
  check Alcotest.bool "reports flowed" true (Aimd.reports_received ctl > 10)

let test_aimd_backs_off_on_loss () =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:1 ~core_bps:(mbps 5) ~edge_bps:(mbps 100)
      ~delay:(Time_ns.ms 2) ()
  in
  let net = bell.Topology.d_net in
  (* A tiny bottleneck queue forces drops as AIMD overshoots. *)
  Switch.set_queue_limit (Net.switch net bell.Topology.left_switch) ~port:0
    ~bytes:10_000;
  let sa = Stack.create net bell.Topology.senders.(0) in
  let sb = Stack.create net bell.Topology.receivers.(0) in
  let sink = Flow.Sink.attach sb ~port:9000 in
  let flow =
    Flow.cbr ~src:sa ~dst:bell.Topology.receivers.(0) ~dst_port:9000
      ~payload_bytes:954 ~rate_bps:(mbps 1)
  in
  let config = Aimd.default_config ~max_rate_bps:(mbps 100) in
  let ctl = Aimd.create sa config ~flow ~report_port:9100 in
  let _receiver =
    Aimd.Receiver.attach sb ~sink ~report_to:bell.Topology.senders.(0)
      ~report_port:9100 ~period:config.Aimd.report_period_ns
  in
  Aimd.start ctl;
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.sec 10);
  check Alcotest.bool "losses detected" true (Aimd.losses_seen ctl > 0);
  (* The sawtooth hovers around capacity, not at the configured max. *)
  check Alcotest.bool "rate bounded by congestion" true
    (Aimd.current_rate_bps ctl < mbps 20);
  let goodput = float_of_int (Flow.Sink.rx_bytes sink) *. 8.0 /. 10.0 in
  check Alcotest.bool
    (Printf.sprintf "goodput %.2f Mb/s within (2.5, 5.2)" (goodput /. 1e6))
    true
    (goodput > 2.5e6 && goodput < 5.2e6)

(* --- program library -------------------------------------------------------- *)

let test_programs_assemble_and_run () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  Probe.install_echo sb;
  let outcomes = ref [] in
  Probe.install_reply_handler sa (fun ~now:_ ~seq tpp ->
      outcomes := (seq, Prog.stack_values tpp) :: !outcomes);
  List.iteri
    (fun i (_, source) ->
      let tpp = Result.get_ok (Programs.build source) in
      Probe.send sa ~dst:b ~tpp ~seq:i)
    Programs.all;
  Engine.run eng ~until:(Time_ns.ms 50);
  check Alcotest.int "all canned programs echoed" (List.length Programs.all)
    (List.length !outcomes);
  List.iteri
    (fun i (name, source) ->
      let values = List.assoc i !outcomes in
      check Alcotest.int
        (name ^ ": words for two hops")
        (2 * Programs.words_per_hop source)
        (List.length values))
    Programs.all

let test_record_route_matches_control_route () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  Probe.install_echo sb;
  let got = ref [] in
  Probe.install_reply_handler sa (fun ~now:_ ~seq:_ tpp ->
      let rec pairs = function
        | sw :: port :: rest -> (sw, port) :: pairs rest
        | _ -> []
      in
      got := pairs (Prog.stack_values tpp));
  let tpp = Result.get_ok (Programs.build Programs.record_route) in
  Probe.send sa ~dst:b ~tpp ~seq:1;
  Engine.run eng ~until:(Time_ns.ms 50);
  (* The probe's 5-tuple is (7777, 7777); the predictor must use it. *)
  let expected =
    Verify.control_route ~src_port:Probe.request_port ~dst_port:Probe.request_port
      net ~src:a ~dst:b
  in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "record route = control route" expected !got

let test_hop_timestamps_monotone () =
  let eng, net, a, b = two_hosts () in
  let sa = Stack.create net a in
  let sb = Stack.create net b in
  Probe.install_echo sb;
  let clocks = ref [] in
  Probe.install_reply_handler sa (fun ~now:_ ~seq:_ tpp ->
      let rec every_other = function
        | _ :: ts :: rest -> ts :: every_other rest
        | _ -> []
      in
      clocks := every_other (Prog.stack_values tpp));
  let tpp = Result.get_ok (Programs.build Programs.hop_timestamps) in
  Engine.at eng (Time_ns.ms 5) (fun () -> Probe.send sa ~dst:b ~tpp ~seq:1);
  Engine.run eng ~until:(Time_ns.ms 50);
  match !clocks with
  | [ t1; t2 ] ->
    check Alcotest.bool "clocks increase along the path" true (t2 > t1);
    check Alcotest.bool "after send time" true (t1 > Time_ns.ms 5)
  | other -> Alcotest.failf "expected 2 timestamps, got %d" (List.length other)

let test_fold_programs () =
  (* Build a 3-switch chain with a known standing queue at switch 2 and
     check the folds compute max/sum/min in one packet-memory word. *)
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:2 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in
  List.iter
    (fun (si, sj) ->
      let src = Stack.create net (host si sj) in
      let dst = Stack.create net (host 2 sj) in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let f =
        Flow.cbr ~src ~dst:(host 2 sj) ~dst_port:9000 ~payload_bytes:1000
          ~rate_bps:(mbps 60)
      in
      Flow.start f ())
    [ (0, 1); (1, 1) ];
  let sa = Stack.create net (host 0 0) in
  let sb = Stack.create net (host 2 0) in
  Probe.install_echo sb;
  let results = Hashtbl.create 4 in
  Probe.install_reply_handler sa (fun ~now:_ ~seq tpp ->
      Hashtbl.replace results seq (Programs.fold_result tpp));
  let send seq source =
    Probe.send sa ~dst:(host 2 0) ~tpp:(Result.get_ok (Programs.build_fold source)) ~seq
  in
  Engine.at eng (Time_ns.ms 50) (fun () ->
      send 1 Programs.max_queue;
      send 2 Programs.sum_queues;
      send 3 Programs.min_capacity);
  Engine.run eng ~until:(Time_ns.ms 80);
  let get seq = Hashtbl.find results seq in
  check Alcotest.bool "max queue sees the backlog" true (get 1 > 10_000);
  check Alcotest.bool "sum >= max" true (get 2 >= get 1);
  check Alcotest.int "bottleneck capacity" 100_000 (get 3);
  (* The fold probe's memory is one word regardless of path length. *)
  let tpp = Result.get_ok (Programs.build_fold Programs.max_queue) in
  check Alcotest.int "constant memory" (Prog.section_size tpp) (16 + 4 + 4)

(* --- sweep ----------------------------------------------------------------------- *)

let test_sweep_aggregates_per_switch () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:1 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let stacks = Array.map (fun hs -> Stack.create net hs.(0)) chain.Topology.hosts in
  Array.iter Probe.install_echo stacks;
  let circuits =
    [ { Sweep.src = stacks.(0); dst = chain.Topology.hosts.(2).(0) };
      { Sweep.src = stacks.(2); dst = chain.Topology.hosts.(0).(0) } ]
  in
  let sweep = Sweep.create ~circuits ~period:(Time_ns.ms 10) in
  Sweep.start sweep ();
  Engine.run eng ~until:(Time_ns.ms 500);
  Sweep.stop sweep;
  let views = Sweep.views sweep in
  check Alcotest.int "all three switches observed" 3 (List.length views);
  List.iter
    (fun v ->
      check Alcotest.bool
        (Printf.sprintf "sw%d sampled from both directions" v.Sweep.v_switch_id)
        true (v.Sweep.samples > 50))
    views;
  check Alcotest.bool "replies flowed" true (Sweep.replies_received sweep > 80);
  (* Switch ids ordered. *)
  check (Alcotest.list Alcotest.int) "ordered ids" [ 1; 2; 3 ]
    (List.map (fun v -> v.Sweep.v_switch_id) views)

let test_sweep_sees_congestion () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:2 ~hosts_per_switch:3 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in
  let mon_src = Stack.create net (host 0 0) in
  let mon_dst = Stack.create net (host 1 0) in
  Probe.install_echo mon_dst;
  (* Two 60 Mb/s sources converge on the 100 Mb/s spine link. *)
  List.iter
    (fun j ->
      let bg_src = Stack.create net (host 0 j) in
      let bg_dst = Stack.create net (host 1 j) in
      let _sink = Flow.Sink.attach bg_dst ~port:9000 in
      let f =
        Flow.cbr ~src:bg_src ~dst:(host 1 j) ~dst_port:9000 ~payload_bytes:1000
          ~rate_bps:(mbps 60)
      in
      Flow.start f ())
    [ 1; 2 ];
  let sweep =
    Sweep.create
      ~circuits:[ { Sweep.src = mon_src; dst = host 1 0 } ]
      ~period:(Time_ns.ms 5)
  in
  Sweep.start sweep ~at:(Time_ns.ms 100) ();
  Engine.run eng ~until:(Time_ns.sec 2);
  match Sweep.view sweep ~switch_id:1 with
  | None -> Alcotest.fail "first switch unobserved"
  | Some v ->
    check Alcotest.bool "queue pressure visible" true
      (Tpp_util.Stats.max v.Sweep.queue > 1000.0)

(* --- FCT workload ------------------------------------------------------------------ *)

let test_fct_smoke () =
  let p =
    { Fct.default with
      Fct.arrivals_per_sec = 6.0;
      duration = Time_ns.sec 8;
      mean_flow_bytes = 30_000.0 }
  in
  let star = Fct.run Fct.Rcp_star_ctl p in
  let aimd = Fct.run Fct.Aimd_ctl p in
  check Alcotest.bool "flows started" true (star.Fct.started > 10);
  check Alcotest.int "same schedule both runs" star.Fct.started aimd.Fct.started;
  check Alcotest.bool "most complete under RCP*" true
    (10 * star.Fct.completed >= 8 * star.Fct.started);
  check Alcotest.bool "rcp* short flows not slower" true
    (Tpp_util.Stats.mean star.Fct.short_fct
     <= Tpp_util.Stats.mean aimd.Fct.short_fct +. 0.01)

let suite =
  [
    Alcotest.test_case "fat-tree shape" `Quick test_fat_tree_shape;
    Alcotest.test_case "fat-tree path lengths" `Quick test_fat_tree_path_lengths;
    Alcotest.test_case "fat-tree end to end" `Quick test_fat_tree_end_to_end;
    Alcotest.test_case "fat-tree all pairs" `Quick test_fat_tree_all_pairs_reachable;
    Alcotest.test_case "fat-tree odd k" `Quick test_fat_tree_rejects_odd_k;
    Alcotest.test_case "ecmp select_path" `Quick test_select_path;
    Alcotest.test_case "ecmp flow hash" `Quick test_flow_hash_stable_and_spreading;
    Alcotest.test_case "ecmp pins flows" `Quick test_multipath_pins_flows;
    Alcotest.test_case "ecmp diamond both paths" `Quick test_ecmp_diamond_uses_both_paths;
    Alcotest.test_case "ecmp control-route prediction" `Quick
      test_control_route_predicts_ecmp_paths;
    Alcotest.test_case "piggyback carries+echoes" `Quick test_piggyback_carries_and_echoes;
    Alcotest.test_case "piggyback data intact" `Quick test_piggyback_data_intact;
    Alcotest.test_case "transfer stops at size" `Quick test_transfer_stops_at_size;
    Alcotest.test_case "sink tap" `Quick test_sink_tap_fires;
    Alcotest.test_case "on_udp_add multiplexes" `Quick test_on_udp_add_multiplexes;
    Alcotest.test_case "canned programs run" `Quick test_programs_assemble_and_run;
    Alcotest.test_case "record route = control route" `Quick
      test_record_route_matches_control_route;
    Alcotest.test_case "hop timestamps monotone" `Quick test_hop_timestamps_monotone;
    Alcotest.test_case "fold programs aggregate in-dataplane" `Quick test_fold_programs;
    Alcotest.test_case "sweep aggregates per switch" `Quick
      test_sweep_aggregates_per_switch;
    Alcotest.test_case "sweep sees congestion" `Quick test_sweep_sees_congestion;
    Alcotest.test_case "aimd additive increase" `Quick test_aimd_additive_increase;
    Alcotest.test_case "aimd backs off on loss" `Slow test_aimd_backs_off_on_loss;
    Alcotest.test_case "fct smoke" `Slow test_fct_smoke;
  ]
