module Frame = Tpp_isa.Frame
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4
module Time_ns = Tpp_util.Time_ns

type host = {
  host_name : string;
  node_id : int;
  mac : Mac.t;
  ip : Ipv4.Addr.t;
  mutable receive : now:Time_ns.t -> Frame.t -> unit;
}

type attachment = {
  mutable peer : (int * int) option;
  mutable bps : int;
  mutable delay : Time_ns.span;
  mutable tx_busy : bool;
  mutable up : bool;
  nic_queue : Frame.t Queue.t;  (* hosts only; switches queue in the ASIC *)
}

type node_impl = Switch_n of Switch.t | Host_n of host

type node_rec = { impl : node_impl; ports : attachment array }

type t = {
  eng : Engine.t;
  wire_check : bool;
  mutable nodes : node_rec list;  (* reverse insertion order *)
  mutable node_count : int;
  mutable host_counter : int;
  mutable delivered : int;
  mutable deliver_hooks : (host -> Frame.t -> unit) list;
}

let create ?(wire_check = true) eng =
  {
    eng;
    wire_check;
    nodes = [];
    node_count = 0;
    host_counter = 0;
    delivered = 0;
    deliver_hooks = [];
  }

let engine t = t.eng

let new_attachment () =
  { peer = None; bps = 0; delay = 0; tx_busy = false; up = true;
    nic_queue = Queue.create () }

let node t id =
  let idx = t.node_count - 1 - id in
  match List.nth_opt t.nodes idx with
  | Some n -> n
  | None -> invalid_arg "Net: unknown node id"

let register t impl ~ports =
  let id = t.node_count in
  t.nodes <- { impl; ports = Array.init ports (fun _ -> new_attachment ()) } :: t.nodes;
  t.node_count <- id + 1;
  id

let add_switch t sw = register t (Switch_n sw) ~ports:(Switch.num_ports sw)

let add_host t ~name =
  t.host_counter <- t.host_counter + 1;
  let n = t.host_counter in
  let id = t.node_count in
  let host =
    {
      host_name = name;
      node_id = id;
      mac = Mac.of_host_id n;
      ip = Ipv4.Addr.of_host_id n;
      receive = (fun ~now:_ _ -> ());
    }
  in
  let registered = register t (Host_n host) ~ports:1 in
  assert (registered = id);
  host

let switch t id =
  match (node t id).impl with
  | Switch_n sw -> sw
  | Host_n _ -> invalid_arg "Net.switch: node is a host"

let host_of t id =
  match (node t id).impl with
  | Host_n h -> h
  | Switch_n _ -> invalid_arg "Net.host_of: node is a switch"

let node_count t = t.node_count

let hosts t =
  List.rev_map (fun n -> n.impl) t.nodes
  |> List.filter_map (function Host_n h -> Some h | Switch_n _ -> None)

let switches t =
  let rec go id acc = function
    | [] -> acc
    | { impl = Switch_n sw; _ } :: rest -> go (id - 1) ((id, sw) :: acc) rest
    | { impl = Host_n _; _ } :: rest -> go (id - 1) acc rest
  in
  go (t.node_count - 1) [] t.nodes

let attachment t (id, port) =
  let n = node t id in
  if port < 0 || port >= Array.length n.ports then
    invalid_arg "Net: port out of range";
  n.ports.(port)

let connect t (a, pa) (b, pb) ~bps ~delay =
  if bps <= 0 then invalid_arg "Net.connect: rate";
  let ea = attachment t (a, pa) and eb = attachment t (b, pb) in
  if Option.is_some ea.peer || Option.is_some eb.peer then
    invalid_arg "Net.connect: port already linked";
  ea.peer <- Some (b, pb);
  ea.bps <- bps;
  ea.delay <- delay;
  eb.peer <- Some (a, pa);
  eb.bps <- bps;
  eb.delay <- delay;
  (match (node t a).impl with
  | Switch_n sw -> Switch.set_port_capacity sw ~port:pa ~bps
  | Host_n _ -> ());
  match (node t b).impl with
  | Switch_n sw -> Switch.set_port_capacity sw ~port:pb ~bps
  | Host_n _ -> ()

let neighbors t id =
  let n = node t id in
  Array.to_list n.ports
  |> List.mapi (fun port a -> (port, a.peer))
  |> List.filter_map (fun (port, peer) ->
       match peer with Some (pn, pp) -> Some (port, pn, pp) | None -> None)

let tx_time_ns ~bps frame =
  let bits = Frame.wire_size frame * 8 in
  (* ceil(bits * 1e9 / bps) without overflow for realistic rates *)
  int_of_float (ceil (float_of_int bits *. 1e9 /. float_of_int bps))

(* Pulls the next frame to transmit from a node's egress at [port]. *)
let next_frame t id port =
  let n = node t id in
  match n.impl with
  | Switch_n sw -> Switch.dequeue sw ~port
  | Host_n _ -> Queue.take_opt n.ports.(port).nic_queue

let rec deliver t (id, port) frame =
  let n = node t id in
  match n.impl with
  | Host_n h ->
    t.delivered <- t.delivered + 1;
    List.iter (fun hook -> hook h frame) t.deliver_hooks;
    h.receive ~now:(Engine.now t.eng) frame
  | Switch_n sw -> (
    match Switch.handle_ingress sw ~now:(Engine.now t.eng) ~in_port:port frame with
    | Switch.Dropped _ -> ()
    | Switch.Queued out_ports -> List.iter (fun p -> maybe_start_tx t id p) out_ports)

and maybe_start_tx t id port =
  let a = attachment t (id, port) in
  match a.peer with
  | None -> ()
  | Some peer ->
    if not a.tx_busy then begin
      match next_frame t id port with
      | None -> ()
      | Some frame ->
        a.tx_busy <- true;
        let tx = tx_time_ns ~bps:a.bps frame in
        Engine.after t.eng tx (fun () ->
            a.tx_busy <- false;
            (* A frame finishing serialisation onto a dark link is lost. *)
            if a.up then
              Engine.after t.eng a.delay (fun () -> deliver t peer frame);
            maybe_start_tx t id port)
    end

let host_send t host frame =
  let frame =
    if t.wire_check then begin
      match Frame.parse (Frame.serialize frame) with
      | Ok f -> f
      | Error e -> failwith ("Net.host_send: frame failed wire round-trip: " ^ e)
    end
    else frame
  in
  let a = attachment t (host.node_id, 0) in
  Queue.push frame a.nic_queue;
  maybe_start_tx t host.node_id 0

let set_link_up t (id, port) up =
  let a = attachment t (id, port) in
  (match a.peer with
  | None -> invalid_arg "Net.set_link_up: port has no link"
  | Some (pid, pport) ->
    let b = attachment t (pid, pport) in
    a.up <- up;
    b.up <- up;
    if up then begin
      maybe_start_tx t id port;
      maybe_start_tx t pid pport
    end)

let link_up t (id, port) = (attachment t (id, port)).up

let start_utilization_updates t ~period ~until =
  Engine.every t.eng ~period ~until (fun () ->
      List.iter
        (fun (_, sw) -> State.update_utilization (Switch.state sw) ~window_ns:period)
        (switches t))

let frames_delivered t = t.delivered

let on_host_deliver t hook = t.deliver_hooks <- t.deliver_hooks @ [ hook ]
