module Frame = Tpp_isa.Frame
module Time_ns = Tpp_util.Time_ns

type record = { ts_ns : Time_ns.t; data : bytes }

type t = {
  snaplen : int;
  mutable entries : record list;  (* reverse capture order *)
  mutable count : int;
}

let magic = 0xA1B2C3D4
let linktype_ethernet = 1

let create ?(snaplen = 65_535) () =
  if snaplen <= 0 then invalid_arg "Pcap.create: snaplen";
  { snaplen; entries = []; count = 0 }

let record t ~now frame =
  let data = Frame.serialize frame in
  let data =
    if Bytes.length data > t.snaplen then Bytes.sub data 0 t.snaplen else data
  in
  t.entries <- { ts_ns = now; data } :: t.entries;
  t.count <- t.count + 1

let records t = List.rev t.entries
let length t = t.count

let tap_host t net host =
  let previous = host.Net.receive in
  host.Net.receive <-
    (fun ~now frame ->
      record t ~now frame;
      previous ~now frame);
  ignore net

(* Little-endian primitives over a Buffer. *)
let le16 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF))

let le32 buf v =
  le16 buf (v land 0xFFFF);
  le16 buf ((v lsr 16) land 0xFFFF)

let to_bytes t =
  let buf = Buffer.create (1024 + (t.count * 96)) in
  le32 buf magic;
  le16 buf 2;
  le16 buf 4;
  le32 buf 0 (* thiszone *);
  le32 buf 0 (* sigfigs *);
  le32 buf t.snaplen;
  le32 buf linktype_ethernet;
  List.iter
    (fun { ts_ns; data } ->
      le32 buf (ts_ns / 1_000_000_000);
      le32 buf (ts_ns mod 1_000_000_000 / 1_000);
      le32 buf (Bytes.length data);
      le32 buf (Bytes.length data);
      Buffer.add_bytes buf data)
    (records t);
  Buffer.to_bytes buf

let write_file t path =
  let oc = open_out_bin path in
  output_bytes oc (to_bytes t);
  close_out oc

let rd16 b off = Bytes.get_uint16_le b off
let rd32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFF_FFFF

let parse b =
  let len = Bytes.length b in
  if len < 24 then Error "pcap too short for global header"
  else if rd32 b 0 <> magic then Error "bad pcap magic (expected little-endian classic)"
  else if rd16 b 4 <> 2 || rd16 b 6 <> 4 then Error "unsupported pcap version"
  else if rd32 b 20 <> linktype_ethernet then Error "unsupported link type"
  else begin
    let rec go off acc =
      if off = len then Ok (List.rev acc)
      else if off + 16 > len then Error "truncated record header"
      else begin
        let sec = rd32 b off in
        let usec = rd32 b (off + 4) in
        let incl = rd32 b (off + 8) in
        if off + 16 + incl > len then Error "truncated record body"
        else
          go
            (off + 16 + incl)
            ({ ts_ns = (sec * 1_000_000_000) + (usec * 1_000);
               data = Bytes.sub b (off + 16) incl }
            :: acc)
      end
    in
    go 24 []
  end
