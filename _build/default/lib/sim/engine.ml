module Time_ns = Tpp_util.Time_ns
module Heap = Tpp_util.Heap

type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : Time_ns.t;
  mutable processed : int;
}

let create () = { queue = Heap.create (); clock = 0; processed = 0 }

let now t = t.clock

let at t time callback =
  if time < t.clock then invalid_arg "Engine.at: scheduling in the past";
  Heap.push t.queue ~prio:time callback

let after t span callback = at t (Time_ns.add t.clock span) callback

let every t ?start ~period ~until callback =
  if period <= 0 then invalid_arg "Engine.every: period";
  let start = match start with Some s -> s | None -> Time_ns.add t.clock period in
  let rec tick time () =
    if time <= until then begin
      callback ();
      let next = Time_ns.add time period in
      if next <= until then at t next (tick next)
    end
  in
  if start <= until then at t start (tick start)

let run t ~until =
  let rec loop () =
    match Tpp_util.Heap.peek_prio t.queue with
    | Some time when time <= until -> (
      match Heap.pop t.queue with
      | Some (time, callback) ->
        t.clock <- time;
        t.processed <- t.processed + 1;
        callback ();
        loop ()
      | None -> ())
    | Some _ | None -> ()
  in
  loop ();
  if until > t.clock then t.clock <- until

let events_processed t = t.processed
