lib/sim/topology.mli: Engine Net Tpp_util
