lib/sim/engine.mli: Tpp_util
