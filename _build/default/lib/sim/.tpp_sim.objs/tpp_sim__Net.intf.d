lib/sim/net.mli: Engine Tpp_asic Tpp_isa Tpp_packet Tpp_util
