lib/sim/topology.ml: Array Hashtbl Int List Net Printf Queue Tpp_asic Tpp_packet Tpp_util
