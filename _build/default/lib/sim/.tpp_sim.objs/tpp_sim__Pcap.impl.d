lib/sim/pcap.ml: Buffer Bytes Char Int32 List Net Tpp_isa Tpp_util
