lib/sim/net.ml: Array Engine List Option Queue Tpp_asic Tpp_isa Tpp_packet Tpp_util
