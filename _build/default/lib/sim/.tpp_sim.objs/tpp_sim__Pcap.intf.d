lib/sim/pcap.mli: Net Tpp_isa Tpp_util
