lib/sim/engine.ml: Tpp_util
