lib/rcp/rcp.ml: Float List Tpp_asic Tpp_endhost Tpp_sim
