lib/rcp/rcp.mli: Tpp_asic Tpp_endhost Tpp_sim
