lib/rcp/tcp.ml: Bytes Float Hashtbl Tpp_endhost Tpp_isa Tpp_packet Tpp_sim Tpp_util
