lib/rcp/dctcp.mli: Tpp_endhost Tpp_sim
