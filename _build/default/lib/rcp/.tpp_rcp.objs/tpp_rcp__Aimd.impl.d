lib/rcp/aimd.ml: Bytes Tpp_endhost Tpp_isa Tpp_sim Tpp_util
