lib/rcp/aimd.mli: Tpp_endhost Tpp_sim
