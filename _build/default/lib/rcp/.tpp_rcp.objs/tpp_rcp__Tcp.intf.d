lib/rcp/tcp.mli: Tpp_endhost Tpp_sim
