(** A compact TCP-Reno-style reliable transport — the paper's literal
    status quo ("TCP and its variants still remain the dominant
    congestion control algorithms", §2.2).

    Packet-granularity Reno over the simulator's UDP frames: MSS-sized
    segments, cumulative ACKs, slow start and congestion avoidance,
    fast retransmit on three duplicate ACKs, an RFC 6298-style RTO with
    exponential backoff, and ack-clocked transmission (no pacing). It
    needs nothing from the dataplane, which is the point of comparing
    it with RCP*: it discovers capacity by filling buffers and losing
    packets.

    One {!Transfer} moves [total_bytes] from a sender stack to a
    receiver; create the {!Receiver} side first. *)

module Stack = Tpp_endhost.Stack
module Net = Tpp_sim.Net

type config = {
  mss : int;                (** segment payload bytes *)
  initial_window : int;     (** IW, segments *)
  initial_ssthresh : int;   (** segments *)
  min_rto_ns : int;
  max_rto_ns : int;
}

val default_config : config
(** MSS 1000, IW 4, ssthresh 64, RTO in [200 ms, 5 s]. *)

module Receiver : sig
  type t

  val attach : Stack.t -> port:int -> t
  (** Accepts segments on [port], ACKs every arrival, reassembles
      in-order delivery. One receiver per port. *)

  val bytes_delivered : t -> int
  (** In-order bytes handed to the application so far. *)

  val out_of_order_held : t -> int
  (** Segments buffered above the reassembly point right now. *)
end

module Transfer : sig
  type t

  val start :
    ?config:config ->
    ?on_complete:(now:int -> unit) ->
    src:Stack.t ->
    dst:Net.host ->
    port:int ->
    total_bytes:int ->
    unit ->
    t

  val is_done : t -> bool
  val completed_at : t -> int option
  val bytes_acked : t -> int
  val retransmits : t -> int
  val timeouts : t -> int
  val cwnd_segments : t -> float
  val srtt_ns : t -> int
  (** Smoothed RTT estimate; 0 before the first sample. *)
end
