module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Flow = Tpp_endhost.Flow

type config = {
  period_ns : int;
  rtt_ns : int;
  alpha : float;
  beta : float;
  min_rate_bps : int;
}

let default_config =
  { period_ns = 10_000_000; rtt_ns = 50_000_000; alpha = 0.5; beta = 1.0;
    min_rate_bps = 50_000 }

module Router = struct
  type t = {
    config : config;
    port : State.Port.t;
    mutable rate : float;          (* bps *)
    mutable last_offered : int;    (* cumulative bytes at last update *)
  }

  let update t =
    let c = float_of_int t.port.State.Port.capacity_bps in
    if c > 0.0 then begin
      let offered = t.port.State.Port.offered_bytes in
      let y =
        float_of_int (offered - t.last_offered)
        *. 8.0 /. (float_of_int t.config.period_ns /. 1e9)
      in
      t.last_offered <- offered;
      let q = float_of_int t.port.State.Port.queue_bytes in
      let d = float_of_int t.config.rtt_ns /. 1e9 in
      let t_over_d = float_of_int t.config.period_ns /. float_of_int t.config.rtt_ns in
      let feedback = ((t.config.alpha *. (y -. c)) +. (t.config.beta *. q *. 8.0 /. d)) /. c in
      let r_new = t.rate *. (1.0 -. (t_over_d *. feedback)) in
      t.rate <- Float.max (float_of_int t.config.min_rate_bps) (Float.min c r_new)
    end

  let attach net config ~switch_node ~port =
    let sw = Net.switch net switch_node in
    let p = State.port (Switch.state sw) port in
    let t =
      { config; port = p; rate = float_of_int p.State.Port.capacity_bps;
        last_offered = p.State.Port.offered_bytes }
    in
    let eng = Net.engine net in
    Engine.every eng ~period:config.period_ns ~until:max_int (fun () -> update t);
    t

  let rate_bps t = t.rate
  let capacity_bps t = t.port.State.Port.capacity_bps
end

module Controller = struct
  type t = {
    net : Net.t;
    config : config;
    flow : Flow.t;
    path : Router.t list;
    mutable running : bool;
    mutable epoch : int;
  }

  let create net config ~flow ~path =
    if path = [] then invalid_arg "Rcp.Controller.create: empty path";
    { net; config; flow; path; running = false; epoch = 0 }

  let rec tick t epoch () =
    if t.running && t.epoch = epoch then begin
      let r =
        List.fold_left (fun acc router -> Float.min acc (Router.rate_bps router))
          infinity t.path
      in
      let rate = max t.config.min_rate_bps (int_of_float r) in
      Flow.set_rate t.flow ~rate_bps:rate;
      Engine.after (Net.engine t.net) t.config.period_ns (tick t epoch)
    end

  let start t ?at () =
    if not t.running then begin
      t.running <- true;
      t.epoch <- t.epoch + 1;
      let eng = Net.engine t.net in
      let begin_at =
        match at with Some time -> max time (Engine.now eng) | None -> Engine.now eng
      in
      Engine.at eng begin_at (tick t t.epoch)
    end

  let stop t =
    t.running <- false;
    t.epoch <- t.epoch + 1

  let current_rate_bps t = Flow.rate_bps t.flow
end
