(** In-network RCP: the baseline the paper compares RCP* against
    ("RCP: simulation", Figure 2).

    Each router (switch egress link) natively maintains the fair-share
    rate R(t), recomputed every period T from the offered load y(t) and
    queue q(t) of that link:

    R(t+T) = R(t) (1 - (T/d) (a (y(t) - C) + b q(t)/d) / C)

    In real RCP, routers stamp min(R) into a packet header and senders
    read it from ACKs. The simulator shortcut — senders query their
    path's routers directly each period — preserves exactly the same
    information flow at the same timescale and matches how the paper's
    own comparator (the ns2 RCP module) reports rates to sources.
    Packet-level traffic still crosses the real simulated queues, so
    y(t) and q(t) are measured, not assumed. *)

module Net = Tpp_sim.Net
module Switch = Tpp_asic.Switch

type config = {
  period_ns : int;
  rtt_ns : int;
  alpha : float;
  beta : float;
  min_rate_bps : int;
}

val default_config : config
(** Matches {!Tpp_endhost.Rcp_star.default_config}: T = 10 ms,
    d = 50 ms, alpha = 0.5, beta = 1.0. *)

(** One RCP-enabled link. *)
module Router : sig
  type t

  val attach : Net.t -> config -> switch_node:int -> port:int -> t
  (** Starts the periodic R(t) recomputation on the given egress link;
      R(0) = C. Runs until the simulation ends. *)

  val rate_bps : t -> float
  val capacity_bps : t -> int
end

(** Per-flow rate controller: follows min R(t) along the path. *)
module Controller : sig
  type t

  val create :
    Net.t -> config -> flow:Tpp_endhost.Flow.t -> path:Router.t list -> t

  val start : t -> ?at:int -> unit -> unit
  val stop : t -> unit
  val current_rate_bps : t -> int
end
