(** Exponentially-weighted moving average.

    The ASIC model uses EWMAs for the per-port utilisation and average
    queue registers an RCP router consumes (q(t), y(t) in the control
    equation). *)

type t

val create : alpha:float -> t
(** [alpha] in (0, 1]: weight of each new observation. *)

val update : t -> float -> unit

val value : t -> float
(** Current average; 0.0 before the first observation. *)

val reset : t -> unit
