(** Simulation time, in integer nanoseconds.

    All simulator clocks and event timestamps use this module. Using an
    integer representation keeps event ordering exact and the simulation
    deterministic (no floating point drift between platforms). *)

type t = int
(** An absolute instant, in nanoseconds since simulation start. *)

type span = int
(** A duration in nanoseconds. *)

val zero : t

val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span

val of_sec_f : float -> span
(** [of_sec_f s] converts a duration in (possibly fractional) seconds. *)

val to_sec_f : t -> float
(** [to_sec_f t] is [t] expressed in seconds, for reporting. *)

val to_us_f : t -> float
val to_ms_f : t -> float

val add : t -> span -> t
val diff : t -> t -> span

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints a human-friendly rendering, e.g. ["1.250ms"]. *)
