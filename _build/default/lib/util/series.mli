(** Time series of (time, value) points.

    Experiments record the evolution of quantities (e.g. R(t)/C for
    Figure 2) and print them as aligned rows or downsampled summaries. *)

type t

val create : name:string -> t

val name : t -> string

val add : t -> time:Time_ns.t -> float -> unit

val length : t -> int

val points : t -> (Time_ns.t * float) array

val value_at : t -> Time_ns.t -> float option
(** Last recorded value at or before the given time (step semantics). *)

val downsample : t -> bucket:Time_ns.span -> (Time_ns.t * float) array
(** Mean of the values in each [bucket]-wide window, indexed by window
    start time. Empty windows are omitted. *)

val print_table : ?out:Format.formatter -> t list -> bucket:Time_ns.span -> unit
(** Prints aligned columns [time, s1, s2, ...] with one row per bucket;
    a series missing a bucket prints its previous value (step-hold). *)
