type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { arr = [||]; len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* [a] orders before [b] when its priority is smaller, or on ties when it
   was inserted earlier. *)
let before a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let ensure t =
  if t.len >= Array.length t.arr then begin
    let dummy = if t.len = 0 then None else Some t.arr.(0) in
    match dummy with
    | None -> ()
    | Some d ->
      let arr = Array.make (max 8 (2 * Array.length t.arr)) d in
      Array.blit t.arr 0 arr 0 t.len;
      t.arr <- arr
  end

let push t ~prio value =
  let e = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.arr = 0 then t.arr <- Array.make 8 e;
  ensure t;
  t.arr.(t.len) <- e;
  t.len <- t.len + 1;
  (* Sift up. *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before t.arr.(i) t.arr.(parent) then begin
        let tmp = t.arr.(i) in
        t.arr.(i) <- t.arr.(parent);
        t.arr.(parent) <- tmp;
        up parent
      end
    end
  in
  up (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.arr.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.arr.(0) <- t.arr.(t.len);
      (* Sift down. *)
      let rec down i =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let smallest = ref i in
        if l < t.len && before t.arr.(l) t.arr.(!smallest) then smallest := l;
        if r < t.len && before t.arr.(r) t.arr.(!smallest) then smallest := r;
        if !smallest <> i then begin
          let tmp = t.arr.(i) in
          t.arr.(i) <- t.arr.(!smallest);
          t.arr.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.prio, top.value)
  end

let peek_prio t = if t.len = 0 then None else Some t.arr.(0).prio

let clear t =
  t.len <- 0;
  t.next_seq <- 0
