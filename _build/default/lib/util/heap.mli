(** Stable binary min-heap.

    The event queue of the discrete-event simulator. Entries with equal
    priority pop in insertion order, which makes simulations with
    simultaneous events deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum-priority entry (ties: FIFO). *)

val peek_prio : 'a t -> int option

val clear : 'a t -> unit
