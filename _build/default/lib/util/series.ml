type t = {
  series_name : string;
  mutable times : int array;
  mutable values : float array;
  mutable len : int;
}

let create ~name = { series_name = name; times = [||]; values = [||]; len = 0 }

let name t = t.series_name

let add t ~time v =
  if t.len >= Array.length t.times then begin
    let cap = max 16 (2 * Array.length t.times) in
    let times = Array.make cap 0 and values = Array.make cap 0.0 in
    Array.blit t.times 0 times 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.times <- times;
    t.values <- values
  end;
  t.times.(t.len) <- time;
  t.values.(t.len) <- v;
  t.len <- t.len + 1

let length t = t.len

let points t = Array.init t.len (fun i -> (t.times.(i), t.values.(i)))

let value_at t time =
  (* Points are appended in time order; scan backwards for the last one
     at or before [time]. *)
  let rec find i =
    if i < 0 then None
    else if t.times.(i) <= time then Some t.values.(i)
    else find (i - 1)
  in
  find (t.len - 1)

let downsample t ~bucket =
  if bucket <= 0 then invalid_arg "Series.downsample: bucket";
  let tbl = Hashtbl.create 64 in
  for i = 0 to t.len - 1 do
    let b = t.times.(i) / bucket in
    let sum, n = match Hashtbl.find_opt tbl b with Some x -> x | None -> (0.0, 0) in
    Hashtbl.replace tbl b (sum +. t.values.(i), n + 1)
  done;
  let rows =
    Hashtbl.fold (fun b (sum, n) acc -> (b * bucket, sum /. float_of_int n) :: acc) tbl []
  in
  let arr = Array.of_list rows in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
  arr

let print_table ?(out = Format.std_formatter) series ~bucket =
  if bucket <= 0 then invalid_arg "Series.print_table: bucket";
  let sampled = List.map (fun s -> (s, downsample s ~bucket)) series in
  let last_time =
    List.fold_left
      (fun acc (_, rows) ->
        if Array.length rows = 0 then acc else max acc (fst rows.(Array.length rows - 1)))
      0 sampled
  in
  Format.fprintf out "%-12s" "time(s)";
  List.iter (fun s -> Format.fprintf out " %14s" (name s)) series;
  Format.fprintf out "@.";
  let holds = Hashtbl.create 8 in
  let rec row t =
    if t <= last_time then begin
      Format.fprintf out "%-12.3f" (Time_ns.to_sec_f t);
      List.iter
        (fun (s, rows) ->
          let v =
            match Array.find_opt (fun (bt, _) -> bt = t) rows with
            | Some (_, v) ->
              Hashtbl.replace holds (name s) v;
              v
            | None -> ( match Hashtbl.find_opt holds (name s) with Some v -> v | None -> 0.0)
          in
          Format.fprintf out " %14.4f" v)
        sampled;
      Format.fprintf out "@.";
      row (t + bucket)
    end
  in
  row 0
