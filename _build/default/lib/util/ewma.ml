type t = { alpha : float; mutable avg : float; mutable initialized : bool }

let create ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha";
  { alpha; avg = 0.0; initialized = false }

let update t x =
  if t.initialized then t.avg <- t.avg +. (t.alpha *. (x -. t.avg))
  else begin
    t.avg <- x;
    t.initialized <- true
  end

let value t = t.avg

let reset t =
  t.avg <- 0.0;
  t.initialized <- false
