lib/util/heap.mli:
