lib/util/stats.mli:
