lib/util/rng.mli:
