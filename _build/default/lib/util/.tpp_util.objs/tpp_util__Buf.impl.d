lib/util/buf.ml: Bytes Int32 String
