lib/util/series.ml: Array Format Hashtbl Int List Time_ns
