lib/util/series.mli: Format Time_ns
