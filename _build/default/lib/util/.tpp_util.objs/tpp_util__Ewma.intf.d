lib/util/ewma.mli:
