lib/util/time_ns.ml: Format Int
