lib/util/buf.mli:
