lib/util/ewma.ml:
