(** Deterministic pseudo-random numbers (splitmix64).

    Every workload generator takes an explicit [Rng.t] so that each
    experiment is reproducible from its seed, independent of any global
    state. *)

type t

val create : seed:int -> t

val split : t -> t
(** A new generator whose stream is independent of the parent's. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample; used for Poisson arrivals. *)

val pareto : t -> shape:float -> scale:float -> float
(** Heavy-tailed sample; used for flow-size distributions. *)

val bits64 : t -> int64
