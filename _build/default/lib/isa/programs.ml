let record_route = "PUSH [Switch:SwitchID]\nPUSH [PacketMetadata:OutputPort]\n"

let queue_snapshot = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n"

let hop_timestamps = "PUSH [Switch:SwitchID]\nPUSH [Switch:ClockNs]\n"

let link_stats =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Queue:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:Drops]\n"

let congestion_probe =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Queue:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:CapacityKbps]\n"

let words_per_hop source =
  String.split_on_char '\n' source
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

let build ?(max_hops = 8) source =
  Asm.to_tpp ~mem_len:(4 * words_per_hop source * max_hops) source

let all =
  [
    ("record_route", record_route);
    ("queue_snapshot", queue_snapshot);
    ("hop_timestamps", hop_timestamps);
    ("link_stats", link_stats);
    ("congestion_probe", congestion_probe);
  ]

let max_queue = "MAX [Packet:0], [Queue:QueueSize]\n"
let sum_queues = "ADD [Packet:0], [Queue:QueueSize]\n"
let min_capacity = "MIN [Packet:0], [Link:CapacityKbps]\n"

(* MIN folds need an all-ones accumulator; MAX/ADD start at zero. *)
let fold_seed source =
  if String.length source >= 3 && String.sub source 0 3 = "MIN" then 0xFFFF_FFFF else 0

let build_fold source =
  match Asm.to_tpp ~mem_len:4 source with
  | Error e -> Error e
  | Ok tpp ->
    Tpp.mem_set tpp tpp.Tpp.base (fold_seed source);
    Ok tpp

let fold_result tpp = Tpp.mem_get tpp tpp.Tpp.base
