(** Two-pass assembler for the x86-like TPP assembly of the paper.

    Example accepted source (comments start with [;] or [#]):
    {v
    PUSH [Switch:SwitchID]
    PUSH [Link:QueueSize]
    LOAD [Link:RxUtilization], [Packet:Hop[1]]
    CEXEC [Switch:SwitchID], 0xFFFFFFFF, 2
    STORE [Link:RCP-RateRegister], [Packet:0]
    CSTORE [Sram:16], 5, 7
    v}

    Three-operand [CEXEC reg, mask, value] and [CSTORE dst, cond, new]
    are sugar: the assembler places the 32-bit immediates into a
    constant pool at the front of packet memory and encodes the pool
    offset, keeping every instruction exactly 4 bytes on the wire.
    User-written [\[Packet:n\]] offsets address the region {e after} the
    pool; the assembler relocates them. After a [CSTORE] executes, the
    first pool word of that instruction holds the old value of the
    destination, so callers can tell whether the store took effect.

    Task-specific statistic names (e.g. the paper's
    [\[Link:RCP-RateRegister\]]) come from [defines], mapping the name to
    the address the control plane allocated.

    A [.WORD <const32>] directive line initialises the next word of
    user packet memory, so a program that STOREs a value into the
    network can carry it without the caller poking bytes:
    {v
    STORE [Link:RCP-RateRegister], [Packet:0]
    .WORD 2000
    v} *)

type program = {
  instrs : Instr.t list;
  pool : bytes;  (** constant pool, word aligned *)
  user_init : int list;
      (** [.WORD] directive values, placed at the start of user packet
          memory (offsets [\[Packet:0\]], [\[Packet:4\]], ...) *)
}

val assemble :
  ?defines:(string * int) list -> string -> (program, string) result
(** Errors carry the 1-based source line. *)

val to_tpp :
  ?defines:(string * int) list ->
  ?addr_mode:Tpp.addr_mode ->
  ?perhop_len:int ->
  ?inner_ethertype:int ->
  mem_len:int ->
  string ->
  (Tpp.t, string) result
(** Assembles and packages: packet memory is the pool, then the [.WORD]
    initialisers, then user data/stack space ([mem_len] covers
    initialisers + stack; it grows if the initialisers alone need
    more). The stack pointer starts after the initialised words so
    PUSHes cannot clobber them. *)

val disassemble : Tpp.t -> string
(** One instruction per line, with symbolic statistic names. *)
