type program = { instrs : Instr.t list; pool : bytes; user_init : int list }

(* Operands after pass 1: either already final, a user packet offset that
   must be relocated past the pool, or a reference to a pool word. *)
type pre_operand =
  | Final of Instr.operand
  | User_pkt of int
  | Pool_ref of int

type pre_instr =
  | P_nop
  | P_halt
  | P_push of pre_operand
  | P_pop of pre_operand
  | P_load of pre_operand * pre_operand
  | P_store of pre_operand * pre_operand
  | P_mov of pre_operand * pre_operand
  | P_binop of Instr.binop * pre_operand * pre_operand
  | P_cstore of pre_operand * pre_operand
  | P_cexec of pre_operand * pre_operand

let ( let* ) = Result.bind

let err line msg = Error (Printf.sprintf "line %d: %s" line msg)

let strip_comment line =
  let cut c s = match String.index_opt s c with Some i -> String.sub s 0 i | None -> s in
  cut ';' (cut '#' line)

let parse_int s =
  match int_of_string_opt (String.trim s) with
  | Some v when v >= 0 -> Some v
  | _ -> None

(* Parses one operand token (already trimmed). *)
let parse_operand ~defines ~line tok =
  let n = String.length tok in
  if n >= 2 && tok.[0] = '[' && tok.[n - 1] = ']' then begin
    let inside = String.trim (String.sub tok 1 (n - 2)) in
    let hop_prefix = "Packet:Hop[" in
    if String.length inside > String.length hop_prefix
       && String.sub inside 0 (String.length hop_prefix) = hop_prefix
       && inside.[String.length inside - 1] = ']'
    then begin
      let idx_str =
        String.sub inside (String.length hop_prefix)
          (String.length inside - String.length hop_prefix - 1)
      in
      match parse_int idx_str with
      | Some k when k <= 0xFFF -> Ok (Final (Instr.Hop k))
      | Some _ -> err line "hop index exceeds 12 bits"
      | None -> err line (Printf.sprintf "bad hop index in %s" tok)
    end
    else if String.length inside > 7 && String.sub inside 0 7 = "Packet:" then begin
      let off_str = String.sub inside 7 (String.length inside - 7) in
      match parse_int off_str with
      | Some off when off mod 4 = 0 -> Ok (User_pkt off)
      | Some _ -> err line "packet offset must be word aligned"
      | None -> err line (Printf.sprintf "bad packet offset in %s" tok)
    end
    else begin
      match Vaddr.of_name ~defines inside with
      | Ok a -> Ok (Final (Instr.Sw a))
      | Error e -> err line e
    end
  end
  else begin
    match parse_int tok with
    | Some v when v <= 0xFFF -> Ok (Final (Instr.Imm v))
    | Some _ ->
      err line
        "immediate exceeds 12 bits (wide constants are only available through the \
         CSTORE/CEXEC pool forms)"
    | None -> err line (Printf.sprintf "cannot parse operand %S" tok)
  end

(* Parses a bare 32-bit constant (used by the 3-operand sugar). *)
let parse_const ~line tok =
  match parse_int tok with
  | Some v when v <= 0xFFFF_FFFF -> Ok v
  | Some _ -> err line "constant exceeds 32 bits"
  | None -> err line (Printf.sprintf "expected a numeric constant, got %S" tok)

let split_operands rest =
  rest |> String.split_on_char ',' |> List.map String.trim
  |> List.filter (fun s -> s <> "")

let pass1 ~defines src =
  let pool = ref [] in
  let pool_words = ref 0 in
  let user_init = ref [] in
  let add_pool_pair a b =
    let idx = !pool_words in
    pool := b :: a :: !pool;
    pool_words := idx + 2;
    Pool_ref idx
  in
  let lines = String.split_on_char '\n' src in
  let rec go line_no lines acc =
    match lines with
    | [] -> Ok (List.rev acc)
    | raw :: rest_lines ->
      let line = String.trim (strip_comment raw) in
      if line = "" then go (line_no + 1) rest_lines acc
      else begin
        let mnemonic, rest =
          match String.index_opt line ' ' with
          | None -> (line, "")
          | Some i ->
            (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))
        in
        let mnemonic = String.uppercase_ascii mnemonic in
        let ops = split_operands rest in
        let operand tok = parse_operand ~defines ~line:line_no tok in
        if mnemonic = ".WORD" then begin
          match ops with
          | [ tok ] -> (
            match parse_const ~line:line_no tok with
            | Ok v ->
              user_init := v :: !user_init;
              go (line_no + 1) rest_lines acc
            | Error e -> Error e)
          | _ -> err line_no ".WORD takes one constant"
        end
        else begin
        let result =
          match (mnemonic, ops) with
          | "NOP", [] -> Ok P_nop
          | "HALT", [] -> Ok P_halt
          | "PUSH", [ a ] ->
            let* a = operand a in
            Ok (P_push a)
          | "POP", [ a ] ->
            let* a = operand a in
            Ok (P_pop a)
          | "LOAD", [ a; b ] ->
            let* a = operand a in
            let* b = operand b in
            Ok (P_load (a, b))
          | "STORE", [ a; b ] ->
            let* a = operand a in
            let* b = operand b in
            Ok (P_store (a, b))
          | "MOV", [ a; b ] ->
            let* a = operand a in
            let* b = operand b in
            Ok (P_mov (a, b))
          | ("ADD" | "SUB" | "AND" | "OR" | "MIN" | "MAX"), [ a; b ] ->
            let op =
              match mnemonic with
              | "ADD" -> Instr.Add
              | "SUB" -> Instr.Sub
              | "AND" -> Instr.And
              | "OR" -> Instr.Or
              | "MIN" -> Instr.Min
              | _ -> Instr.Max
            in
            let* a = operand a in
            let* b = operand b in
            Ok (P_binop (op, a, b))
          | "CSTORE", [ a; b ] ->
            let* a = operand a in
            let* b = operand b in
            Ok (P_cstore (a, b))
          | "CSTORE", [ a; cond; nv ] ->
            let* a = operand a in
            let* cond = parse_const ~line:line_no cond in
            let* nv = parse_const ~line:line_no nv in
            Ok (P_cstore (a, add_pool_pair cond nv))
          | "CEXEC", [ a; b ] ->
            let* a = operand a in
            let* b = operand b in
            Ok (P_cexec (a, b))
          | "CEXEC", [ a; mask; v ] ->
            let* a = operand a in
            let* mask = parse_const ~line:line_no mask in
            let* v = parse_const ~line:line_no v in
            Ok (P_cexec (a, add_pool_pair mask v))
          | ("NOP" | "HALT" | "PUSH" | "POP" | "LOAD" | "STORE" | "MOV" | "ADD" | "SUB"
            | "AND" | "OR" | "MIN" | "MAX" | "CSTORE" | "CEXEC"), _ ->
            err line_no (Printf.sprintf "wrong operand count for %s" mnemonic)
          | _, _ -> err line_no (Printf.sprintf "unknown mnemonic %S" mnemonic)
        in
        match result with
        | Error e -> Error e
        | Ok pre -> go (line_no + 1) rest_lines (pre :: acc)
        end
      end
  in
  let* pre = go 1 lines [] in
  Ok (pre, List.rev !pool, List.rev !user_init)

let relocate ~pool_len op =
  match op with
  | Final o -> Ok o
  | Pool_ref w -> Ok (Instr.Pkt (4 * w))
  | User_pkt off ->
    let off = pool_len + off in
    if off > 0xFFF then Error "packet offset exceeds 12 bits after pool relocation"
    else Ok (Instr.Pkt off)

let pass2 ~pool_len pre =
  let reloc = relocate ~pool_len in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest ->
      let* instr =
        match p with
        | P_nop -> Ok Instr.Nop
        | P_halt -> Ok Instr.Halt
        | P_push a ->
          let* a = reloc a in
          Ok (Instr.Push a)
        | P_pop a ->
          let* a = reloc a in
          Ok (Instr.Pop a)
        | P_load (a, b) ->
          let* a = reloc a in
          let* b = reloc b in
          Ok (Instr.Load (a, b))
        | P_store (a, b) ->
          let* a = reloc a in
          let* b = reloc b in
          Ok (Instr.Store (a, b))
        | P_mov (a, b) ->
          let* a = reloc a in
          let* b = reloc b in
          Ok (Instr.Mov (a, b))
        | P_binop (op, a, b) ->
          let* a = reloc a in
          let* b = reloc b in
          Ok (Instr.Binop (op, a, b))
        | P_cstore (a, b) ->
          let* a = reloc a in
          let* b = reloc b in
          Ok (Instr.Cstore (a, b))
        | P_cexec (a, b) ->
          let* a = reloc a in
          let* b = reloc b in
          Ok (Instr.Cexec (a, b))
      in
      go (instr :: acc) rest
  in
  go [] pre

let assemble ?(defines = []) src =
  let* pre, pool_words, user_init = pass1 ~defines src in
  let pool_len = 4 * List.length pool_words in
  let* instrs = pass2 ~pool_len pre in
  let pool = Bytes.create pool_len in
  List.iteri (fun i v -> Tpp_util.Buf.set_u32i pool (4 * i) v) pool_words;
  Ok { instrs; pool; user_init }

let to_tpp ?defines ?addr_mode ?perhop_len ?inner_ethertype ~mem_len src =
  let* { instrs; pool; user_init } = assemble ?defines src in
  (* .WORD directives may themselves require memory beyond mem_len. *)
  let mem_len = max mem_len (4 * List.length user_init) in
  try
    let tpp =
      Tpp.make ?addr_mode ?perhop_len ~pool ?inner_ethertype ~program:instrs
        ~mem_len ()
    in
    List.iteri (fun i v -> Tpp.mem_set tpp (tpp.Tpp.base + (4 * i)) v) user_init;
    (* The stack must not clobber the initialised words. *)
    tpp.Tpp.sp <- tpp.Tpp.base + (4 * List.length user_init);
    Ok tpp
  with Invalid_argument e -> Error e

let disassemble tpp =
  tpp.Tpp.program |> Array.to_list
  |> List.map (Format.asprintf "%a" Instr.pp)
  |> String.concat "\n"
