lib/isa/meta.ml: Vaddr
