lib/isa/instr.mli: Format Tpp_util
