lib/isa/instr.ml: Format Int32 Printf Tpp_util Vaddr
