lib/isa/programs.ml: Asm List String Tpp
