lib/isa/frame.ml: Bytes Format Int64 Meta Option Tpp Tpp_packet Tpp_util
