lib/isa/programs.mli: Tpp
