lib/isa/frame.mli: Format Meta Tpp Tpp_packet
