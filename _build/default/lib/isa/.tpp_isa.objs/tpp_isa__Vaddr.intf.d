lib/isa/vaddr.mli:
