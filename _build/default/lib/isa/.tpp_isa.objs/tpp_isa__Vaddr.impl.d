lib/isa/vaddr.ml: List Printf String
