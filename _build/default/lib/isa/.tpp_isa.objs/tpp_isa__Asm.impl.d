lib/isa/asm.ml: Array Bytes Format Instr List Printf Result String Tpp Tpp_util Vaddr
