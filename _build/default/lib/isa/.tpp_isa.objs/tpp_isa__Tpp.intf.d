lib/isa/tpp.mli: Format Instr Tpp_util
