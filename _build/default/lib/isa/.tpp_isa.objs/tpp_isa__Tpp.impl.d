lib/isa/tpp.ml: Array Bytes Format Instr List Printf Tpp_util
