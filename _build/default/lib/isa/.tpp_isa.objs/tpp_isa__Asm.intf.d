lib/isa/asm.mli: Instr Tpp
