lib/isa/meta.mli: Vaddr
