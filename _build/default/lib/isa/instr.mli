(** The TPP instruction set (paper Table 1) and its 4-byte encoding.

    Each instruction packs into one 32-bit word:
    [opcode:4 | operand1:14 | operand2:14], an operand being
    [space:2 | value:12]. Three-operand forms from the paper
    ([CSTORE dst,cond,src] and [CEXEC reg,mask,value]) are encoded with
    their wide immediates placed in a constant pool inside packet memory
    (see {!Asm}); the encoded instruction carries the pool offset. *)

(** Where an operand's value lives. *)
type operand =
  | Sw of int   (** switch virtual address, see {!Vaddr} *)
  | Pkt of int  (** packet-memory byte offset (word aligned) *)
  | Imm of int  (** 12-bit unsigned immediate *)
  | Hop of int  (** hop-relative packet word index (paper §3.2.2) *)

type binop = Add | Sub | And | Or | Min | Max

type t =
  | Nop
  | Push of operand          (** [PUSH src]: pkt\[sp\] <- src; sp += 4 *)
  | Pop of operand           (** [POP dst]: sp -= 4; dst <- pkt\[sp\] *)
  | Load of operand * operand   (** [LOAD src, dst]: dst(packet) <- src *)
  | Store of operand * operand  (** [STORE dst, src]: dst(switch) <- src *)
  | Mov of operand * operand    (** [MOV dst, src] *)
  | Binop of binop * operand * operand  (** [OP dst, src]: dst <- dst op src *)
  | Cstore of operand * operand
      (** [CSTORE dst, pool]: let cond = pkt\[pool\], new = pkt\[pool+4\];
          if dst = cond then dst <- new; pkt\[pool\] <- old value of dst.
          Linearizable conditional store (paper §2.2). *)
  | Cexec of operand * operand
      (** [CEXEC reg, pool]: let mask = pkt\[pool\], v = pkt\[pool+4\];
          unless (reg land mask) = v, stop executing this TPP here
          (paper §3.2.3: all following instructions are skipped). *)
  | Halt

val size : int
(** Encoded size of one instruction: 4 bytes. *)

val encode : t -> int32
val decode : int32 -> (t, string) result

val write : Tpp_util.Buf.Writer.t -> t -> unit
val read : Tpp_util.Buf.Reader.t -> (t, string) result

val binop_name : binop -> string

val pp_operand : Format.formatter -> operand -> unit
val pp : Format.formatter -> t -> unit
(** Symbolic rendering, e.g. [PUSH [Queue:QueueSize]]. *)

val equal : t -> t -> bool
