(** A small standard library of useful TPP programs.

    Each entry is assembly text for {!Asm}, plus a sized builder. They
    double as documentation: the first two reproduce, in one or two
    instructions, dataplane features that each took a standards effort
    (IP Record Route, per-hop timestamps) — the paper's §4 point about
    generic read access versus anticipating every requirement. *)

val record_route : string
(** [PUSH SwitchID; PUSH OutputPort] — IP Record Route, generalised:
    instead of interface addresses, the switch id and egress port at
    every hop (2 words/hop). *)

val queue_snapshot : string
(** [PUSH SwitchID; PUSH QueueSize] — the Figure 1 micro-burst probe
    (2 words/hop). *)

val hop_timestamps : string
(** [PUSH SwitchID; PUSH ClockNs] — switch-local nanosecond timestamps
    at each hop: per-hop one-way delay breakdowns from a single packet
    (2 words/hop). *)

val link_stats : string
(** [PUSH SwitchID; PUSH QueueSize; PUSH RxUtilization; PUSH Drops] —
    the sweep/monitoring program (4 words/hop). *)

val congestion_probe : string
(** The RCP* phase-1 collect shape without the task-specific register:
    switch id, queue, utilisation, capacity (4 words/hop). *)

val words_per_hop : string -> int
(** Number of PUSHes in one of the above programs = packet-memory words
    consumed per hop. *)

val build : ?max_hops:int -> string -> (Tpp.t, string) result
(** Assembles one of the above (or any pure-PUSH program) with packet
    memory sized for [max_hops] (default 8). *)

val all : (string * string) list
(** [(name, source)] for every canned per-hop (pure PUSH) program. *)

(** {2 In-dataplane aggregation}

    The arithmetic instructions let a probe {e fold} a statistic along
    its path instead of recording every hop: packet memory stays one
    word no matter how long the path — the cheapest possible telemetry.
    After the probe returns, word 0 of user memory holds the result. *)

val max_queue : string
(** [MAX \[Packet:0\], \[Queue:QueueSize\]] — the deepest queue on the
    path, in one word. *)

val sum_queues : string
(** [ADD \[Packet:0\], \[Queue:QueueSize\]] — total queued bytes along
    the path: the probe's total queueing exposure. *)

val min_capacity : string
(** MIN over [Link:CapacityKbps] — the path's bottleneck capacity.
    Word 0 must be initialised to 0xFFFFFFFF; {!build_fold} does it. *)

val build_fold : string -> (Tpp.t, string) result
(** Assembles a one-word fold program with correctly initialised
    accumulator (0 for MAX/ADD, all-ones for MIN). *)

val fold_result : Tpp.t -> int
(** The accumulator word of an executed fold probe. *)
