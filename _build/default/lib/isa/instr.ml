module Buf = Tpp_util.Buf

type operand = Sw of int | Pkt of int | Imm of int | Hop of int

type binop = Add | Sub | And | Or | Min | Max

type t =
  | Nop
  | Push of operand
  | Pop of operand
  | Load of operand * operand
  | Store of operand * operand
  | Mov of operand * operand
  | Binop of binop * operand * operand
  | Cstore of operand * operand
  | Cexec of operand * operand
  | Halt

let size = 4

let operand_bits = function
  | Sw v -> (0, v)
  | Pkt v -> (1, v)
  | Imm v -> (2, v)
  | Hop v -> (3, v)

let encode_operand op =
  let space, v = operand_bits op in
  if v < 0 || v > 0xFFF then invalid_arg "Instr.encode: operand value exceeds 12 bits";
  (space lsl 12) lor v

let decode_operand bits =
  let v = bits land 0xFFF in
  match (bits lsr 12) land 0x3 with
  | 0 -> Sw v
  | 1 -> Pkt v
  | 2 -> Imm v
  | _ -> Hop v

let opcode = function
  | Nop -> 0
  | Push _ -> 1
  | Pop _ -> 2
  | Load _ -> 3
  | Store _ -> 4
  | Mov _ -> 5
  | Binop (Add, _, _) -> 6
  | Binop (Sub, _, _) -> 7
  | Binop (And, _, _) -> 8
  | Binop (Or, _, _) -> 9
  | Binop (Min, _, _) -> 10
  | Binop (Max, _, _) -> 11
  | Cstore _ -> 12
  | Cexec _ -> 13
  | Halt -> 14

let operands = function
  | Nop | Halt -> (Imm 0, Imm 0)
  | Push a | Pop a -> (a, Imm 0)
  | Load (a, b)
  | Store (a, b)
  | Mov (a, b)
  | Binop (_, a, b)
  | Cstore (a, b)
  | Cexec (a, b) -> (a, b)

let encode t =
  let a, b = operands t in
  let word = (opcode t lsl 28) lor (encode_operand a lsl 14) lor encode_operand b in
  Int32.of_int word

let decode w =
  let word = Int32.to_int w land 0xFFFF_FFFF in
  let op = (word lsr 28) land 0xF in
  let a = decode_operand ((word lsr 14) land 0x3FFF) in
  let b = decode_operand (word land 0x3FFF) in
  match op with
  | 0 -> Ok Nop
  | 1 -> Ok (Push a)
  | 2 -> Ok (Pop a)
  | 3 -> Ok (Load (a, b))
  | 4 -> Ok (Store (a, b))
  | 5 -> Ok (Mov (a, b))
  | 6 -> Ok (Binop (Add, a, b))
  | 7 -> Ok (Binop (Sub, a, b))
  | 8 -> Ok (Binop (And, a, b))
  | 9 -> Ok (Binop (Or, a, b))
  | 10 -> Ok (Binop (Min, a, b))
  | 11 -> Ok (Binop (Max, a, b))
  | 12 -> Ok (Cstore (a, b))
  | 13 -> Ok (Cexec (a, b))
  | 14 -> Ok Halt
  | n -> Error (Printf.sprintf "unknown opcode %d" n)

let write w t = Buf.Writer.u32 w (encode t)

let read r = decode (Buf.Reader.u32 r)

let binop_name = function
  | Add -> "ADD"
  | Sub -> "SUB"
  | And -> "AND"
  | Or -> "OR"
  | Min -> "MIN"
  | Max -> "MAX"

let pp_operand fmt = function
  | Sw a -> Format.fprintf fmt "[%s]" (Vaddr.to_name a)
  | Pkt off -> Format.fprintf fmt "[Packet:%d]" off
  | Imm v -> Format.fprintf fmt "%d" v
  | Hop idx -> Format.fprintf fmt "[Packet:Hop[%d]]" idx

let pp fmt t =
  let two name a b =
    Format.fprintf fmt "%s %a, %a" name pp_operand a pp_operand b
  in
  match t with
  | Nop -> Format.pp_print_string fmt "NOP"
  | Halt -> Format.pp_print_string fmt "HALT"
  | Push a -> Format.fprintf fmt "PUSH %a" pp_operand a
  | Pop a -> Format.fprintf fmt "POP %a" pp_operand a
  | Load (a, b) -> two "LOAD" a b
  | Store (a, b) -> two "STORE" a b
  | Mov (a, b) -> two "MOV" a b
  | Binop (op, a, b) -> two (binop_name op) a b
  | Cstore (a, b) -> two "CSTORE" a b
  | Cexec (a, b) -> two "CEXEC" a b

let equal a b = a = b
