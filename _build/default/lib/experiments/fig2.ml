module Series = Tpp_util.Series
module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Flow = Tpp_endhost.Flow
module Rcp_star = Tpp_endhost.Rcp_star
module Rcp = Tpp_rcp.Rcp

type params = {
  core_bps : int;
  edge_bps : int;
  link_delay_ns : int;
  flow_starts_sec : int list;
  duration : int;
  sample_period : int;
  payload_bytes : int;
}

let default =
  {
    core_bps = 10_000_000;
    edge_bps = 100_000_000;
    link_delay_ns = Time_ns.ms 5;
    flow_starts_sec = [ 0; 10; 20 ];
    duration = Time_ns.sec 30;
    sample_period = Time_ns.ms 250;
    payload_bytes = 1000;
  }

type result = {
  series : Series.t;
  goodputs_bps : float list;
  drops : int;
  updates_sent : int;
  updates_won : int;
}

type flow_setup = {
  src_stack : Stack.t;
  dst_stack : Stack.t;
  dst_host : Net.host;
  flow : Flow.t;
  sink : Flow.Sink.t;
  start_sec : int;
}

let build_flows p bell =
  let net = bell.Topology.d_net in
  List.mapi
    (fun i start_sec ->
      let src_stack = Stack.create net bell.Topology.senders.(i) in
      let dst_host = bell.Topology.receivers.(i) in
      let dst_stack = Stack.create net dst_host in
      let sink = Flow.Sink.attach dst_stack ~port:9000 in
      let flow =
        Flow.cbr ~src:src_stack ~dst:dst_host ~dst_port:9000
          ~payload_bytes:p.payload_bytes ~rate_bps:p.core_bps
      in
      { src_stack; dst_stack; dst_host; flow; sink; start_sec })
    p.flow_starts_sec

let goodputs p flows =
  List.map
    (fun f ->
      let life =
        Time_ns.to_sec_f p.duration -. float_of_int f.start_sec
      in
      if life <= 0.0 then 0.0
      else float_of_int (Flow.Sink.rx_bytes f.sink) *. 8.0 /. life)
    flows

let bottleneck_drops bell =
  let sw = Net.switch bell.Topology.d_net bell.Topology.left_switch in
  State.port_stat (Switch.state sw) ~port:0 Tpp_isa.Vaddr.Port_stat.Drops

let dumbbell p eng =
  Topology.dumbbell eng
    ~pairs:(List.length p.flow_starts_sec)
    ~core_bps:p.core_bps ~edge_bps:p.edge_bps ~delay:p.link_delay_ns ()

let run_rcp_star ?(use_cstore = true) p =
  let eng = Engine.create () in
  let bell = dumbbell p eng in
  let net = bell.Topology.d_net in
  let slot =
    match Rcp_star.setup_network net with
    | Ok s -> s
    | Error e -> invalid_arg ("Fig2.run_rcp_star: " ^ e)
  in
  let config = { (Rcp_star.default_config ~slot) with Rcp_star.use_cstore } in
  Net.start_utilization_updates net ~period:config.Rcp_star.period_ns
    ~until:p.duration;
  let flows = build_flows p bell in
  let controllers =
    List.map
      (fun f ->
        Probe.install_echo f.dst_stack;
        let controller =
          Rcp_star.create f.src_stack config ~flow:f.flow ~dst:f.dst_host
        in
        Engine.at eng (Time_ns.sec f.start_sec) (fun () ->
            Flow.start f.flow ();
            Rcp_star.start controller ());
        controller)
      flows
  in
  let series = Series.create ~name:"RCP*(TPP)" in
  let bottleneck = Net.switch net bell.Topology.left_switch in
  Engine.every eng ~period:p.sample_period ~until:p.duration (fun () ->
      match Rcp_star.read_rate_kbps bottleneck ~slot ~port:0 with
      | Some kbps ->
        Series.add series ~time:(Engine.now eng)
          (float_of_int kbps *. 1000.0 /. float_of_int p.core_bps)
      | None -> ());
  Engine.run eng ~until:p.duration;
  {
    series;
    goodputs_bps = goodputs p flows;
    drops = bottleneck_drops bell;
    updates_sent =
      List.fold_left (fun a c -> a + Rcp_star.updates_sent c) 0 controllers;
    updates_won =
      List.fold_left (fun a c -> a + Rcp_star.updates_won c) 0 controllers;
  }

let run_rcp p =
  let eng = Engine.create () in
  let bell = dumbbell p eng in
  let net = bell.Topology.d_net in
  let config = Rcp.default_config in
  let core = Rcp.Router.attach net config ~switch_node:bell.Topology.left_switch ~port:0 in
  let flows = build_flows p bell in
  List.iteri
    (fun i f ->
      let edge =
        Rcp.Router.attach net config ~switch_node:bell.Topology.right_switch
          ~port:(1 + i)
      in
      let controller = Rcp.Controller.create net config ~flow:f.flow ~path:[ core; edge ] in
      Engine.at eng (Time_ns.sec f.start_sec) (fun () ->
          Flow.start f.flow ();
          Rcp.Controller.start controller ()))
    flows;
  let series = Series.create ~name:"RCP(sim)" in
  Engine.every eng ~period:p.sample_period ~until:p.duration (fun () ->
      Series.add series ~time:(Engine.now eng)
        (Rcp.Router.rate_bps core /. float_of_int p.core_bps));
  Engine.run eng ~until:p.duration;
  { series; goodputs_bps = goodputs p flows; drops = bottleneck_drops bell;
    updates_sent = 0; updates_won = 0 }

let mean_between series ~from_sec ~to_sec =
  let points = Series.points series in
  let from_ns = Time_ns.sec from_sec and to_ns = Time_ns.sec to_sec in
  let sum, n =
    Array.fold_left
      (fun (sum, n) (t, v) ->
        if t >= from_ns && t < to_ns then (sum +. v, n + 1) else (sum, n))
      (0.0, 0) points
  in
  if n = 0 then 0.0 else sum /. float_of_int n
