module Time_ns = Tpp_util.Time_ns
module Stats = Tpp_util.Stats
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Flow = Tpp_endhost.Flow
module Rcp_star = Tpp_endhost.Rcp_star
module Aimd = Tpp_rcp.Aimd
module Dctcp = Tpp_rcp.Dctcp

type outcome = {
  name : string;
  queue_mean : float;
  queue_p95 : float;
  goodput_bps : float;
  drops : int;
  latency_p95_ms : float;
  queue_series : Tpp_util.Series.t;
}

type result = { aimd : outcome; dctcp : outcome; rcp_star : outcome }

type controller = Aimd_cc | Dctcp_cc | Rcp_cc

let core_bps = 10_000_000
let edge_bps = 100_000_000
let flows = 3
let duration = Time_ns.sec 15
let converged_from = Time_ns.sec 5
let ecn_threshold = 30_000

let run_one controller name =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:flows ~core_bps ~edge_bps ~delay:(Time_ns.ms 2) ()
  in
  let net = bell.Topology.d_net in
  let bottleneck = Net.switch net bell.Topology.left_switch in
  Switch.set_ecn_threshold bottleneck ~port:0 (Some ecn_threshold);
  let slot =
    match controller with
    | Rcp_cc -> (
      match Rcp_star.setup_network net with
      | Ok s ->
        Net.start_utilization_updates net ~period:10_000_000 ~until:duration;
        Some s
      | Error e -> invalid_arg e)
    | Aimd_cc | Dctcp_cc -> None
  in
  let sinks =
    List.init flows (fun i ->
        let src = Stack.create net bell.Topology.senders.(i) in
        let dst_host = bell.Topology.receivers.(i) in
        let dst = Stack.create net dst_host in
        let sink = Flow.Sink.attach dst ~port:9000 in
        let flow =
          Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:954
            ~rate_bps:(core_bps / 10)
        in
        (match (controller, slot) with
        | Rcp_cc, Some slot ->
          Probe.install_echo dst;
          let ctl = Rcp_star.create src (Rcp_star.default_config ~slot) ~flow ~dst:dst_host in
          Rcp_star.start ctl ()
        | Aimd_cc, _ ->
          let config = Aimd.default_config ~max_rate_bps:core_bps in
          let ctl = Aimd.create src config ~flow ~report_port:9100 in
          let _ =
            Aimd.Receiver.attach dst ~sink ~report_to:bell.Topology.senders.(i)
              ~report_port:9100 ~period:config.Aimd.report_period_ns
          in
          Aimd.start ctl
        | Dctcp_cc, _ ->
          let config = Dctcp.default_config ~max_rate_bps:core_bps in
          let ctl = Dctcp.create src config ~flow ~report_port:9100 in
          let _ =
            Dctcp.Receiver.attach dst ~sink ~report_to:bell.Topology.senders.(i)
              ~report_port:9100 ~period:config.Dctcp.report_period_ns
          in
          Dctcp.start ctl
        | Rcp_cc, None -> assert false);
        Flow.start flow ~at:(Time_ns.ms (i * 100)) ();
        sink)
  in
  let queue = Stats.create () in
  let queue_series = Tpp_util.Series.create ~name in
  Engine.every eng ~period:(Time_ns.ms 10) ~until:duration (fun () ->
      let q = Switch.queue_bytes bottleneck ~port:0 in
      Tpp_util.Series.add queue_series ~time:(Engine.now eng) (float_of_int q);
      if Engine.now eng >= converged_from then Stats.add queue (float_of_int q));
  Engine.run eng ~until:duration;
  let goodput =
    List.fold_left (fun acc s -> acc + Flow.Sink.rx_bytes s) 0 sinks
    |> fun bytes -> float_of_int bytes *. 8.0 /. Time_ns.to_sec_f duration
  in
  {
    name;
    queue_mean = Stats.mean queue;
    queue_p95 = Stats.percentile queue 95.0;
    goodput_bps = goodput;
    drops = State.port_stat (Switch.state bottleneck) ~port:0 Tpp_isa.Vaddr.Port_stat.Drops;
    latency_p95_ms =
      (match sinks with
      | s :: _ -> Stats.percentile (Flow.Sink.latency s) 95.0 /. 1e6
      | [] -> 0.0);
    queue_series;
  }

let run () =
  {
    aimd = run_one Aimd_cc "AIMD (loss only)";
    dctcp = run_one Dctcp_cc "DCTCP (ECN bit)";
    rcp_star = run_one Rcp_cc "RCP* (TPP registers)";
  }
