(** Experiment E5 (paper §2.1): micro-burst detection.

    Two on/off senders share one uplink; their bursts occasionally
    overlap and congest the queue for a few milliseconds. The same
    queue is watched three ways: a 50 us control-plane oracle (ground
    truth), the per-RTT TPP monitor, and a slow management-plane
    poller. *)

type params = {
  link_bps : int;
  burst_pkts : int;
  burst_payload : int;
  periods_ns : int * int;     (** the two senders' burst periods *)
  probe_period_ns : int;
  poll_period_ns : int;
  oracle_period_ns : int;
  threshold_bytes : int;
  duration : int;
}

val default : params

type result = {
  oracle_episodes : int;
  oracle_max_queue : int;
  tpp_episodes : int;
  tpp_max_queue : int;
  probes_sent : int;
  probes_echoed : int;
  poll_episodes : int;
  poll_samples : int;
}

val run : params -> result
