lib/experiments/consistent.mli:
