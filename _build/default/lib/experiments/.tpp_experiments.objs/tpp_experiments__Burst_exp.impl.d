lib/experiments/burst_exp.ml: Array List Tpp_asic Tpp_endhost Tpp_sim Tpp_util
