lib/experiments/ablation.ml: Array Fig2 List Option Printf Tpp_asic Tpp_endhost Tpp_isa Tpp_sim Tpp_util
