lib/experiments/ablation.mli:
