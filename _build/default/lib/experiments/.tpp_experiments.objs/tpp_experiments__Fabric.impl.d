lib/experiments/fabric.ml: Array Bytes Float Hashtbl Int List Tpp_endhost Tpp_isa Tpp_ndb Tpp_packet Tpp_sim Tpp_util
