lib/experiments/burst_exp.mli:
