lib/experiments/fabric.mli:
