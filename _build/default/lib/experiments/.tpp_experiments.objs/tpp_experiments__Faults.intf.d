lib/experiments/faults.mli: Tpp_ndb
