lib/experiments/fct.mli: Tpp_util
