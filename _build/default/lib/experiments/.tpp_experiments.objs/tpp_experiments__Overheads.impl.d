lib/experiments/overheads.ml: List Tpp_asic Tpp_isa
