lib/experiments/cc_compare.mli: Tpp_util
