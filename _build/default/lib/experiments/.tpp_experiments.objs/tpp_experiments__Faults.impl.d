lib/experiments/faults.ml: Array Float List Tpp_asic Tpp_endhost Tpp_ndb Tpp_sim Tpp_util
