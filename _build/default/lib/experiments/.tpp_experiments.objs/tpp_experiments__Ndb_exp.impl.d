lib/experiments/ndb_exp.ml: Array Bytes List Option Tpp_asic Tpp_isa Tpp_ndb Tpp_sim Tpp_util
