lib/experiments/fig2.mli: Tpp_util
