lib/experiments/overheads.mli:
