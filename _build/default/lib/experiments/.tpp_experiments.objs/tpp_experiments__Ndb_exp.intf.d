lib/experiments/ndb_exp.mli: Tpp_ndb
