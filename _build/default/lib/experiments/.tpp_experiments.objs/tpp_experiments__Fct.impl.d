lib/experiments/fct.ml: Array List Option Tpp_asic Tpp_endhost Tpp_isa Tpp_rcp Tpp_sim Tpp_util
