lib/experiments/fig2.ml: Array List Tpp_asic Tpp_endhost Tpp_isa Tpp_rcp Tpp_sim Tpp_util
