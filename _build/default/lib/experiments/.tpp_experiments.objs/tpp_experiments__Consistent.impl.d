lib/experiments/consistent.ml: Array Bytes List Tpp_control Tpp_isa Tpp_ndb Tpp_sim Tpp_util
