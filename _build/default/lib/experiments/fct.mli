(** Experiment E9 (extension): flow completion times.

    The paper motivates RCP with flows "finishing quickly"; this
    experiment quantifies it on the workload the introduction implies:
    Poisson flow arrivals with heavy-tailed (Pareto) sizes crossing a
    shared bottleneck, driven either by RCP* (TPPs) or by a TCP-like
    AIMD controller that needs no dataplane support. Short flows are
    where the difference shows: AIMD spends their whole lifetime
    probing for bandwidth, while RCP* starts at the network's advertised
    fair rate within one control period. *)

type controller =
  | Rcp_star_ctl  (** TPP-driven RCP (paper §2.2) *)
  | Aimd_ctl      (** rate-based AIMD on loss reports *)
  | Tcp_ctl       (** the real thing: Reno-style reliable transport *)

type params = {
  core_bps : int;
  edge_bps : int;
  link_delay_ns : int;
  pairs : int;                (** sender/receiver host pairs *)
  arrivals_per_sec : float;
  mean_flow_bytes : float;
  pareto_shape : float;
  payload_bytes : int;
  duration : int;
  seed : int;
  short_threshold_bytes : int;
}

val default : params

type result = {
  started : int;
  completed : int;
  short_fct : Tpp_util.Stats.t;   (** seconds *)
  long_fct : Tpp_util.Stats.t;
  all_fct : Tpp_util.Stats.t;
  bottleneck_drops : int;
}

val run : controller -> params -> result
