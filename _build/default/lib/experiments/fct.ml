module Time_ns = Tpp_util.Time_ns
module Stats = Tpp_util.Stats
module Rng = Tpp_util.Rng
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Flow = Tpp_endhost.Flow
module Rcp_star = Tpp_endhost.Rcp_star
module Aimd = Tpp_rcp.Aimd

module Tcp = Tpp_rcp.Tcp

type controller = Rcp_star_ctl | Aimd_ctl | Tcp_ctl

type params = {
  core_bps : int;
  edge_bps : int;
  link_delay_ns : int;
  pairs : int;
  arrivals_per_sec : float;
  mean_flow_bytes : float;
  pareto_shape : float;
  payload_bytes : int;
  duration : int;
  seed : int;
  short_threshold_bytes : int;
}

let default =
  {
    core_bps = 10_000_000;
    edge_bps = 100_000_000;
    link_delay_ns = Time_ns.ms 5;
    pairs = 4;
    arrivals_per_sec = 8.0;
    mean_flow_bytes = 60_000.0;
    pareto_shape = 1.5;
    payload_bytes = 1000;
    duration = Time_ns.sec 30;
    seed = 7;
    short_threshold_bytes = 50_000;
  }

type result = {
  started : int;
  completed : int;
  short_fct : Stats.t;
  long_fct : Stats.t;
  all_fct : Stats.t;
  bottleneck_drops : int;
}

type pair = { src_stack : Stack.t; dst_stack : Stack.t; dst_host : Net.host }

(* Pre-draws the whole arrival schedule so both controllers run exactly
   the same workload. *)
let schedule p =
  let rng = Rng.create ~seed:p.seed in
  let scale = p.mean_flow_bytes *. (p.pareto_shape -. 1.0) /. p.pareto_shape in
  let rec go now acc =
    let gap = Rng.exponential rng ~mean:(1.0 /. p.arrivals_per_sec) in
    let now = now +. gap in
    if Time_ns.of_sec_f now >= p.duration then List.rev acc
    else begin
      let size =
        int_of_float (Rng.pareto rng ~shape:p.pareto_shape ~scale)
      in
      let size = max p.payload_bytes size in
      go now ((Time_ns.of_sec_f now, size) :: acc)
    end
  in
  go 0.0 []

let run controller p =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:p.pairs ~core_bps:p.core_bps ~edge_bps:p.edge_bps
      ~delay:p.link_delay_ns ()
  in
  let net = bell.Topology.d_net in
  let slot =
    match controller with
    | Rcp_star_ctl -> (
      match Rcp_star.setup_network net with
      | Ok s -> Some s
      | Error e -> invalid_arg ("Fct.run: " ^ e))
    | Aimd_ctl | Tcp_ctl -> None
  in
  (match slot with
  | Some _ ->
    Net.start_utilization_updates net ~period:10_000_000 ~until:p.duration
  | None -> ());
  let pairs =
    Array.init p.pairs (fun i ->
        let src_stack = Stack.create net bell.Topology.senders.(i) in
        let dst_host = bell.Topology.receivers.(i) in
        let dst_stack = Stack.create net dst_host in
        Probe.install_echo dst_stack;
        { src_stack; dst_stack; dst_host })
  in
  let short_fct = Stats.create () in
  let long_fct = Stats.create () in
  let all_fct = Stats.create () in
  let started = ref 0 in
  let completed = ref 0 in
  let record ~now ~at ~size =
    incr completed;
    let fct = Time_ns.to_sec_f (now - at) in
    Stats.add all_fct fct;
    if size <= p.short_threshold_bytes then Stats.add short_fct fct
    else Stats.add long_fct fct
  in
  let launch idx (at, size) =
    let pair = pairs.(idx mod p.pairs) in
    let port = 10_000 + idx in
    match controller with
    | Tcp_ctl ->
      Engine.at eng at (fun () ->
          incr started;
          let _rx = Tcp.Receiver.attach pair.dst_stack ~port in
          ignore
            (Tcp.Transfer.start ~src:pair.src_stack ~dst:pair.dst_host ~port
               ~total_bytes:size
               ~on_complete:(fun ~now -> record ~now ~at ~size)
               ()))
    | Rcp_star_ctl | Aimd_ctl ->
    Engine.at eng at (fun () ->
        incr started;
        let initial_rate = max 100_000 (p.core_bps / 10) in
        let flow =
          Flow.transfer ~src:pair.src_stack ~dst:pair.dst_host ~dst_port:port
            ~payload_bytes:p.payload_bytes ~rate_bps:initial_rate
            ~total_bytes:size
        in
        let finished = ref false in
        let stop_ctl = ref (fun () -> ()) in
        let sink = ref None in
        let tap ~now =
          match !sink with
          | Some s when (not !finished) && Flow.Sink.rx_payload_bytes s >= size ->
            finished := true;
            record ~now ~at ~size;
            Flow.stop flow;
            !stop_ctl ()
          | _ -> ()
        in
        sink := Some (Flow.Sink.attach ~tap pair.dst_stack ~port);
        (match (controller, slot) with
        | Rcp_star_ctl, Some slot ->
          (* A 3-hop path: small packet memory; 25 ms probe period keeps
             aggregate probe load under ~5% of the bottleneck. *)
          let config =
            { (Rcp_star.default_config ~slot) with
              Rcp_star.period_ns = Time_ns.ms 25;
              rtt_ns = Time_ns.ms 40;
              max_hops = 4 }
          in
          let ctl = Rcp_star.create pair.src_stack config ~flow ~dst:pair.dst_host in
          Rcp_star.start ctl ();
          stop_ctl := fun () -> Rcp_star.stop ctl
        | (Aimd_ctl | Tcp_ctl), _ | Rcp_star_ctl, None ->
          let config = Aimd.default_config ~max_rate_bps:p.core_bps in
          let ctl = Aimd.create pair.src_stack config ~flow ~report_port:port in
          let receiver =
            Aimd.Receiver.attach pair.dst_stack ~sink:(Option.get !sink)
              ~report_to:(Stack.host pair.src_stack) ~report_port:port
              ~period:config.Aimd.report_period_ns
          in
          Aimd.start ctl;
          stop_ctl :=
            fun () ->
              Aimd.stop ctl;
              Aimd.Receiver.stop receiver);
        Flow.start flow ())
  in
  List.iteri launch (schedule p);
  Engine.run eng ~until:p.duration;
  let bottleneck = Net.switch net bell.Topology.left_switch in
  {
    started = !started;
    completed = !completed;
    short_fct;
    long_fct;
    all_fct;
    bottleneck_drops =
      State.port_stat (Switch.state bottleneck) ~port:0
        Tpp_isa.Vaddr.Port_stat.Drops;
  }
