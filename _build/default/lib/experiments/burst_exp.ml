module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Flow = Tpp_endhost.Flow
module Microburst = Tpp_endhost.Microburst

type params = {
  link_bps : int;
  burst_pkts : int;
  burst_payload : int;
  periods_ns : int * int;
  probe_period_ns : int;
  poll_period_ns : int;
  oracle_period_ns : int;
  threshold_bytes : int;
  duration : int;
}

let default =
  {
    link_bps = 100_000_000;
    burst_pkts = 30;
    burst_payload = 1400;
    periods_ns = (Time_ns.ms 21, Time_ns.ms 24);
    probe_period_ns = Time_ns.ms 1;
    poll_period_ns = Time_ns.sec 1;
    oracle_period_ns = Time_ns.us 50;
    threshold_bytes = 15_000;
    duration = Time_ns.sec 20;
  }

type result = {
  oracle_episodes : int;
  oracle_max_queue : int;
  tpp_episodes : int;
  tpp_max_queue : int;
  probes_sent : int;
  probes_echoed : int;
  poll_episodes : int;
  poll_samples : int;
}

let run p =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:3 ~bps:p.link_bps
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in
  let period_a, period_b = p.periods_ns in
  List.iter
    (fun (src_idx, dst_idx, period) ->
      let src = Stack.create net (host 0 src_idx) in
      let dst = Stack.create net (host 2 dst_idx) in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let flow =
        Flow.bursts ~src ~dst:(host 2 dst_idx) ~dst_port:9000
          ~payload_bytes:p.burst_payload ~burst_pkts:p.burst_pkts ~period
      in
      Flow.start flow ())
    [ (1, 1, period_a); (2, 2, period_b) ];
  let mon_src = Stack.create net (host 0 0) in
  let mon_dst = Stack.create net (host 2 0) in
  Probe.install_echo mon_dst;
  let monitor =
    Microburst.create ~src:mon_src ~dst:(host 2 0) ~period:p.probe_period_ns
      ~threshold_bytes:p.threshold_bytes
  in
  Microburst.start monitor ();
  let sw0 = Net.switch net chain.Topology.switch_ids.(0) in
  let oracle = Microburst.Episode.create ~threshold:p.threshold_bytes in
  let poller = Microburst.Episode.create ~threshold:p.threshold_bytes in
  Engine.every eng ~period:p.oracle_period_ns ~until:p.duration (fun () ->
      Microburst.Episode.feed oracle (Switch.queue_bytes sw0 ~port:1));
  Engine.every eng ~period:p.poll_period_ns ~until:p.duration (fun () ->
      Microburst.Episode.feed poller (Switch.queue_bytes sw0 ~port:1));
  Engine.run eng ~until:p.duration;
  let tpp_episodes, tpp_max =
    match List.assoc_opt (Switch.id sw0) (Microburst.hops monitor) with
    | Some e -> (Microburst.Episode.count e, Microburst.Episode.max_seen e)
    | None -> (0, 0)
  in
  {
    oracle_episodes = Microburst.Episode.count oracle;
    oracle_max_queue = Microburst.Episode.max_seen oracle;
    tpp_episodes;
    tpp_max_queue = tpp_max;
    probes_sent = Microburst.probes_sent monitor;
    probes_echoed = Microburst.replies_received monitor;
    poll_episodes = Microburst.Episode.count poller;
    poll_samples = Microburst.Episode.samples poller;
  }
