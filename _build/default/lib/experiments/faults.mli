(** Experiment E13 (extension): end-host fault localisation at RTT
    timescales.

    The paper's first sentence promises "low-latency visibility" for
    "fault diagnosis". Here a fleet of 16 probe circuits covers a k=4
    ECMP fat-tree; at t = 1 s one aggregation-to-core link goes dark.
    Within a couple of probe periods some circuits stop echoing, and
    intersecting their predicted link sets (minus every healthy
    circuit's links) pins down the failed link — no switch support
    beyond the TPP echo, no control-plane liveness protocol. *)

type result = {
  circuits : int;
  failed_link : Tpp_ndb.Faultfind.link;   (** ground truth *)
  failing_circuits : int;                 (** circuits that lost echoes *)
  detection_ms : float;                   (** failure -> first circuit flagged *)
  suspects : Tpp_ndb.Faultfind.link list;
  true_link_in_suspects : bool;
}

val run : unit -> result
