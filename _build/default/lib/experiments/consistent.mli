(** Experiment E12 (extension): witnessing inconsistent forwarding
    during a routing update.

    The paper (§2.3) notes that "forwarding rules change constantly,
    and a network-wide consistent update is not a trivial task",
    citing the consistent-updates line of work — and argues per-packet
    dataplane visibility is what verification needs. This experiment
    reproduces the transient: a controller performs a realistic,
    staged (switch-at-a-time) route update while traced traffic flows.
    Every packet that crossed the network during the update window is
    individually identifiable: its trace mixes old- and new-version
    flow entries. Before and after, all traces are version-pure. *)

type result = {
  total : int;                 (** traced packets delivered *)
  pure_old : int;              (** all hops at the pre-update version *)
  pure_new : int;
  mixed : int;                 (** packets that straddled the update *)
  mixed_during_window : int;   (** of those, sent while the update ran *)
  example_mixture : int list;  (** versions seen by one straddler *)
  old_version : int;
  new_version : int;
}

val run : unit -> result
