(** Experiment E2: the paper's Figure 2.

    Three flows share a 10 Mb/s dumbbell bottleneck, joining at 0, 10
    and 20 seconds. {!run_rcp_star} drives them with the TPP-based
    end-host controller; {!run_rcp} with the in-network baseline. Both
    return the R(t)/C series at the bottleneck plus per-flow goodput. *)

type params = {
  core_bps : int;
  edge_bps : int;
  link_delay_ns : int;
  flow_starts_sec : int list;
  duration : int;          (** ns *)
  sample_period : int;     (** ns *)
  payload_bytes : int;
}

val default : params
(** The paper's setting: 10 Mb/s core, flows at t = 0, 10, 20 s,
    30-second run. *)

type result = {
  series : Tpp_util.Series.t;   (** R(t)/C at the bottleneck *)
  goodputs_bps : float list;    (** per flow, over its own lifetime *)
  drops : int;                  (** bottleneck tail drops *)
  updates_sent : int;           (** RCP* only: phase-3 TPPs sent *)
  updates_won : int;            (** RCP* only: CSTOREs whose condition held *)
}

val run_rcp_star : ?use_cstore:bool -> params -> result
(** [use_cstore:false] switches the phase-3 update to a plain STORE —
    the lost-update ablation (E8). *)

val run_rcp : params -> result

val mean_between : Tpp_util.Series.t -> from_sec:int -> to_sec:int -> float
(** Mean of the sampled values in a window; for paper-vs-measured rows. *)
