module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module Tables = Tpp_asic.Tables
module Frame = Tpp_isa.Frame
module Trace = Tpp_ndb.Trace
module Verify = Tpp_ndb.Verify
module Postcard = Tpp_ndb.Postcard

type params = {
  packets : int;
  payload_bytes : int;
  plant_stale_rule : bool;
  max_hops : int;
}

let default =
  { packets = 20; payload_bytes = 200; plant_stale_rule = true; max_hops = 6 }

type result = {
  expected_path : int list;
  observed_paths : int list list;
  mismatches : Verify.mismatch list;
  culprit_entry : int option;
  traced_packets : int;
  tpp_bytes_per_packet : int;
  postcards : int;
  postcard_bytes : int;
}

let run p =
  let eng = Engine.create () in
  let dia =
    Topology.diamond eng ~hosts_per_side:1 ~bps:100_000_000 ~delay:(Time_ns.us 500) ()
  in
  let net = dia.Topology.m_net in
  let src = dia.Topology.src_hosts.(0) in
  let dst = dia.Topology.dst_hosts.(0) in
  if p.plant_stale_rule then
    Switch.install_tcam
      (Net.switch net dia.Topology.ingress)
      { Tables.Tcam.any with
        Tables.Tcam.priority = 50; dst_ip = Some (dst.Net.ip, 0xFFFFFFFF) }
      { Tables.action = Tables.Forward 1; entry_id = 999; version = 0 };
  let collector = Postcard.deploy net in
  let traces = ref [] in
  dst.Net.receive <- (fun ~now:_ frame ->
      match frame.Frame.tpp with
      | Some tpp -> traces := Trace.parse tpp :: !traces
      | None -> ());
  for i = 1 to p.packets do
    Engine.at eng (Time_ns.ms i) (fun () ->
        let frame =
          Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac
            ~src_ip:src.Net.ip ~dst_ip:dst.Net.ip ~src_port:9000 ~dst_port:9000
            ~payload:(Bytes.create p.payload_bytes) ()
        in
        Net.host_send net src (Trace.attach frame ~max_hops:p.max_hops))
  done;
  Engine.run eng ~until:(Time_ns.ms (p.packets + 100));
  let traces = List.rev !traces in
  let expected_path = Verify.control_path net ~src ~dst in
  let observed_paths =
    List.map (fun t -> List.map (fun h -> h.Trace.switch_id) t) traces
  in
  let mismatches, culprit_entry =
    match traces with
    | [] -> ([], None)
    | trace :: _ ->
      let issues = Verify.check ~expected:expected_path ~expected_version:1 ~trace in
      (* A packet reaches the wrong switch at hop h because the entry
         matched at hop h-1 forwarded it there; that entry is the bug. *)
      let culprit =
        List.find_map
          (function
            | Verify.Wrong_switch { hop; _ } ->
              List.nth_opt trace (max 0 (hop - 1))
              |> Option.map (fun (h : Trace.hop) -> h.Trace.matched_entry)
            | _ -> None)
          issues
      in
      (issues, culprit)
  in
  {
    expected_path;
    observed_paths;
    mismatches;
    culprit_entry;
    traced_packets = List.length traces;
    tpp_bytes_per_packet = Tpp_isa.Tpp.section_size (Trace.make ~max_hops:p.max_hops);
    postcards = Postcard.postcards collector;
    postcard_bytes = Postcard.overhead_bytes collector;
  }
