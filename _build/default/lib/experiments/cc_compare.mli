(** Experiment E11 (extension): what the dataplane interface buys —
    congestion control with three levels of network visibility.

    Three controllers drive three flows over the same 10 Mb/s
    bottleneck (ECN marking at 30 kB in all runs, used only by DCTCP):

    - {b AIMD}: loss-only feedback (no dataplane support);
    - {b DCTCP}: 1 bit per packet from fixed-function ECN (paper §4's
      example of a baked-in feature);
    - {b RCP*}: whole registers per hop via TPPs.

    The interesting output is the standing queue each one needs: AIMD
    must fill the buffer to learn anything, DCTCP hovers at the marking
    threshold, RCP* drains the queue because it sees it directly. *)

type outcome = {
  name : string;
  queue_mean : float;     (** bottleneck queue, converged window, bytes *)
  queue_p95 : float;
  goodput_bps : float;    (** all flows, whole run *)
  drops : int;
  latency_p95_ms : float; (** per-packet one-way delay, flow 0 *)
  queue_series : Tpp_util.Series.t;  (** occupancy over the whole run *)
}

type result = { aimd : outcome; dctcp : outcome; rcp_star : outcome }

val run : unit -> result
