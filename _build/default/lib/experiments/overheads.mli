(** Experiment E7 (paper §3.3 "Overheads"): per-packet byte overhead of
    TPPs and the TCPU cycle budget of a line-rate ASIC. *)

type row = {
  instructions : int;
  instr_bytes : int;        (** 4 bytes per instruction *)
  header_bytes : int;
  perhop_memory_bytes : int;  (** packet memory consumed per hop *)
  section_bytes : int;        (** whole TPP section for a 5-hop path *)
  cycles : int;
  fits_budget : bool;         (** under the 300-cycle cut-through budget *)
}

val rows : hops:int -> int list -> row list
(** One row per instruction count: each instruction is a PUSH, so each
    consumes one packet-memory word per hop — the paper's measurement
    pattern. *)

type line_rate = {
  ports : int;
  port_gbps : int;
  min_frame_bytes : int;      (** 64B frame + 20B preamble/IFG = 84 *)
  packets_per_sec : float;
  tcpu_instr_per_sec : float; (** at 5 instructions per packet *)
  ns_per_packet : float;      (** time budget per packet per pipeline *)
}

val line_rate_analysis : unit -> line_rate
(** The paper's headline: a 64-port 10GbE switch must handle about a
    billion minimum-size packets per second. *)
