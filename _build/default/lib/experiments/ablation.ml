module Time_ns = Tpp_util.Time_ns
module Series = Tpp_util.Series
module Stats = Tpp_util.Stats
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module Vaddr = Tpp_isa.Vaddr
module Tpp = Tpp_isa.Tpp
module Asm = Tpp_isa.Asm
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Rcp_star = Tpp_endhost.Rcp_star

type cexec_row = {
  switch_id : int;
  capacity_kbps : int;
  targeted_kbps : int;
  broadcast_kbps : int;
}

let new_rate_kbps = 2_000
let target_switch_id = 2

(* Sends one update TPP from one end of a 3-switch chain to the other
   and returns each switch's fair-rate register on its forwarding port. *)
let run_one_update ~targeted =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:1 ~bps:100_000_000
      ~delay:(Time_ns.us 100) ()
  in
  let net = chain.Topology.net in
  let slot =
    match Rcp_star.setup_network net with
    | Ok s -> s
    | Error e -> invalid_arg ("Ablation: " ^ e)
  in
  let defines = [ ("Link:RCP-RateRegister", Vaddr.encode (Vaddr.Link_sram slot)) ] in
  let source =
    if targeted then
      Printf.sprintf
        "CEXEC [Switch:SwitchID], 0xFFFFFFFF, %d\n\
         CSTORE [Link:RCP-RateRegister], 100000, %d\n"
        target_switch_id new_rate_kbps
    else
      Printf.sprintf "STORE [Link:RCP-RateRegister], [Packet:0]\n.WORD %d\n"
        new_rate_kbps
  in
  let tpp =
    match Asm.to_tpp ~defines ~mem_len:4 source with
    | Ok tpp -> tpp
    | Error e -> invalid_arg ("Ablation: " ^ e)
  in
  let src = Stack.create net chain.Topology.hosts.(0).(0) in
  let dst = chain.Topology.hosts.(2).(0) in
  Probe.send src ~dst ~tpp ~seq:1;
  Engine.run eng ~until:(Time_ns.ms 50);
  (* Forwarding ports along the path: uplink (1) on the first two
     switches, the host access port (2) on the last. *)
  List.map2
    (fun node_id port ->
      let sw = Net.switch net node_id in
      ( Switch.id sw,
        (Tpp_asic.State.port (Switch.state sw) port).Tpp_asic.State.Port.capacity_bps
          / 1000,
        Option.value ~default:(-1) (Rcp_star.read_rate_kbps sw ~slot ~port) ))
    (Array.to_list chain.Topology.switch_ids)
    [ 1; 1; 2 ]

let cexec_targeting () =
  let targeted = run_one_update ~targeted:true in
  let broadcast = run_one_update ~targeted:false in
  List.map2
    (fun (switch_id, capacity_kbps, targeted_kbps) (_, _, broadcast_kbps) ->
      { switch_id; capacity_kbps; targeted_kbps; broadcast_kbps })
    targeted broadcast

type cstore_result = {
  with_cstore_stddev : float;
  without_cstore_stddev : float;
  with_cstore_mean : float;
  without_cstore_mean : float;
  updates_rejected_pct : float;
}

let converged_stats series ~from_sec ~to_sec =
  let stats = Stats.create () in
  Array.iter
    (fun (t, v) ->
      if t >= Time_ns.sec from_sec && t < Time_ns.sec to_sec then Stats.add stats v)
    (Series.points series);
  stats

let cstore_vs_store () =
  let params =
    { Fig2.default with
      Fig2.flow_starts_sec = [ 0; 0; 0 ];
      duration = Time_ns.sec 10;
      sample_period = Time_ns.ms 100 }
  in
  let with_cstore = Fig2.run_rcp_star ~use_cstore:true params in
  let without = Fig2.run_rcp_star ~use_cstore:false params in
  let s_with = converged_stats with_cstore.Fig2.series ~from_sec:5 ~to_sec:10 in
  let s_without = converged_stats without.Fig2.series ~from_sec:5 ~to_sec:10 in
  let rejected =
    let sent = with_cstore.Fig2.updates_sent in
    if sent = 0 then 0.0
    else
      100.0
      *. float_of_int (sent - with_cstore.Fig2.updates_won)
      /. float_of_int sent
  in
  {
    with_cstore_stddev = Stats.stddev s_with;
    without_cstore_stddev = Stats.stddev s_without;
    with_cstore_mean = Stats.mean s_with;
    without_cstore_mean = Stats.mean s_without;
    updates_rejected_pct = rejected;
  }
