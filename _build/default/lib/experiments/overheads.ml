module Tpp = Tpp_isa.Tpp
module Instr = Tpp_isa.Instr
module Tcpu = Tpp_asic.Tcpu

type row = {
  instructions : int;
  instr_bytes : int;
  header_bytes : int;
  perhop_memory_bytes : int;
  section_bytes : int;
  cycles : int;
  fits_budget : bool;
}

let rows ~hops counts =
  List.map
    (fun n ->
      let program = List.init n (fun _ -> Instr.Push (Instr.Sw 0x100)) in
      let perhop = 4 * n in
      let tpp = Tpp.make ~program ~mem_len:(perhop * hops) () in
      {
        instructions = n;
        instr_bytes = Instr.size * n;
        header_bytes = Tpp.header_size;
        perhop_memory_bytes = perhop;
        section_bytes = Tpp.section_size tpp;
        cycles = Tcpu.cycles_for n;
        fits_budget = Tcpu.cycles_for n <= Tcpu.cycle_budget;
      })
    counts

type line_rate = {
  ports : int;
  port_gbps : int;
  min_frame_bytes : int;
  packets_per_sec : float;
  tcpu_instr_per_sec : float;
  ns_per_packet : float;
}

let line_rate_analysis () =
  let ports = 64 and port_gbps = 10 in
  (* 64B minimum frame + 8B preamble + 12B inter-frame gap. *)
  let min_frame_bytes = 84 in
  let pps =
    float_of_int ports *. (float_of_int port_gbps *. 1e9)
    /. (float_of_int min_frame_bytes *. 8.0)
  in
  {
    ports;
    port_gbps;
    min_frame_bytes;
    packets_per_sec = pps;
    tcpu_instr_per_sec = 5.0 *. pps;
    (* One TCPU per ingress pipeline, i.e. per port. *)
    ns_per_packet = 1e9 /. (pps /. float_of_int ports);
  }
