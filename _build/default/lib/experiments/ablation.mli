(** Experiment E8: ablations of the two ISA design choices the examples
    lean on.

    (a) {b CEXEC targeting}: RCP*'s phase-3 update must touch only the
    bottleneck link. Dropping the CEXEC guard turns the update into a
    write at {e every} hop, clobbering healthy links' fair-rate
    registers with the bottleneck's rate.

    (b) {b CSTORE vs STORE}: with several concurrent writers, plain
    stores silently overwrite each other ("lost updates"); the
    conditional store rejects stale writers and also lets them observe
    the rejection. *)

type cexec_row = {
  switch_id : int;
  capacity_kbps : int;
  targeted_kbps : int;   (** register after a CEXEC-guarded update *)
  broadcast_kbps : int;  (** register after an unguarded update *)
}

val cexec_targeting : unit -> cexec_row list
(** A 3-switch chain, registers initialised to capacity, then one
    update (rate = 2 Mb/s, target = middle switch) sent both ways. *)

type cstore_result = {
  with_cstore_stddev : float;    (** R/C sample stddev once converged *)
  without_cstore_stddev : float;
  with_cstore_mean : float;
  without_cstore_mean : float;
  updates_rejected_pct : float;  (** share of CSTOREs that lost the race *)
}

val cstore_vs_store : unit -> cstore_result
(** Three simultaneous RCP* flows for 10 s; compares bottleneck register
    stability over the converged second half. *)
