(** Experiment E10 (extension): TPP tasks on a datacenter fabric.

    A k=4 fat-tree (20 switches, 16 hosts) with a deliberate hotspot:
    three 40 Mb/s flows from different pods converge toward one host,
    first sharing a 100 Mb/s link at the core — where the standing
    queue forms.
    Three TPP tasks run simultaneously on the shared fabric:

    - a {!Tpp_endhost.Sweep} fleet sampling queue/utilisation fabric-wide,
    - per-packet path tracing with verification against control intent,
    - the hotspot is localised from sweep data alone.

    This validates the paper's "datacenters are where this is deployable"
    claim beyond toy chains: the max path is 5 switches (the paper's
    "typically 5-7 hops"), and the probes' packet memory is sized for it. *)

type result = {
  switches_total : int;
  switches_observed : int;      (** distinct switch ids the sweep saw *)
  traced : int;
  verified : int;               (** traces matching the control path *)
  path_length_counts : (int * int) list;  (** (switches on path, packets) *)
  hotspot_expected : int;       (** switch id of the congested core *)
  hotspot_found : int;          (** switch with the highest mean queue *)
  hotspot_mean_queue : float;
  runner_up_mean_queue : float; (** next-busiest switch, for contrast *)
}

val run : unit -> result
