(** Experiment E6 (paper §2.3): the forwarding-plane debugger.

    A diamond topology with a stale high-priority TCAM rule planted on
    the ingress switch. Traced application packets reveal the
    divergence; the postcard baseline observes the same but at a
    per-packet-per-hop packet cost. *)

type params = {
  packets : int;
  payload_bytes : int;
  plant_stale_rule : bool;
  max_hops : int;
}

val default : params

type result = {
  expected_path : int list;
  observed_paths : int list list;      (** one per traced packet *)
  mismatches : Tpp_ndb.Verify.mismatch list;  (** from the first packet *)
  culprit_entry : int option;          (** entry id at the diverging hop *)
  traced_packets : int;
  tpp_bytes_per_packet : int;
  postcards : int;
  postcard_bytes : int;
}

val run : params -> result
