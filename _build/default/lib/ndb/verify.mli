(** Path verification: does the dataplane forward the way the control
    plane intends? (paper §2.3)

    The control-plane view is the shortest path {!Topology.install_routes}
    installed; the dataplane view is the TPP trace. A divergence —
    a different switch sequence, or an entry version older than the
    control plane's — localises the offending switch. *)

module Net = Tpp_sim.Net

val control_route :
  ?proto:int ->
  ?src_port:int ->
  ?dst_port:int ->
  Net.t ->
  src:Net.host ->
  dst:Net.host ->
  (int * int) list
(** [(switch_id, egress_port)] pairs on the intended path, in order —
    the same BFS the route installer used. Where several equal-cost
    ports exist, the predictor applies the {e same} flow hash the
    dataplane applies ({!Tpp_isa.Frame.flow_hash_values} over the given
    5-tuple; ports default to 0, proto to UDP), so with ECMP routing the
    prediction is exact per flow. *)

val control_path :
  ?proto:int -> ?src_port:int -> ?dst_port:int ->
  Net.t -> src:Net.host -> dst:Net.host -> int list
(** Just the switch ids of {!control_route}. *)

type mismatch =
  | Wrong_switch of { hop : int; expected : int; got : int }
  | Path_too_short of { expected : int list; got : int list }
  | Path_too_long of { expected : int list; got : int list }
  | Stale_version of { switch_id : int; expected : int; got : int }

val check :
  expected:int list ->
  expected_version:int ->
  trace:Trace.hop list ->
  mismatch list
(** Empty list = the packet forwarded exactly as intended. *)

val versions : Trace.hop list -> int list
(** Distinct table versions the packet's forwarding touched, ascending.
    More than one means the packet crossed the network during a
    non-atomic routing update (the paper's consistent-updates concern):
    part of its path ran old state, part new. *)

val pp_mismatch : Format.formatter -> mismatch -> unit
