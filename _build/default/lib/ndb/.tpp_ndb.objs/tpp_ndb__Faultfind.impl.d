lib/ndb/faultfind.ml: Array Format List Tpp_asic Tpp_endhost Tpp_isa Tpp_sim Verify
