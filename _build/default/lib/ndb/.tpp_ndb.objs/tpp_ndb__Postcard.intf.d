lib/ndb/postcard.mli: Tpp_sim
