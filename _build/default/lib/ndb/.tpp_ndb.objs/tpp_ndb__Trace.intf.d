lib/ndb/trace.mli: Format Tpp_isa
