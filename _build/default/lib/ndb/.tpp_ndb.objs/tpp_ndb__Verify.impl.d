lib/ndb/verify.ml: Array Format Int List Queue Tpp_asic Tpp_isa Tpp_packet Tpp_sim Trace
