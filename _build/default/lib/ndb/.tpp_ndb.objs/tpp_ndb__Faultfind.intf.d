lib/ndb/faultfind.mli: Format Tpp_endhost Tpp_sim
