lib/ndb/postcard.ml: Hashtbl Int List Tpp_asic Tpp_isa Tpp_sim
