lib/ndb/verify.mli: Format Tpp_sim Trace
