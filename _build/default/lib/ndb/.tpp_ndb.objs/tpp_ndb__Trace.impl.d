lib/ndb/trace.ml: Bytes Format List Tpp_isa Tpp_packet
