(** The TPP-based forwarding-plane debugger (paper §2.3).

    A trusted entity attaches this hop-addressed TPP to packets; at
    every switch it records which flow entry forwarded the packet,
    through which ports, under which table version — "an accurate view
    of the network forwarding state that affected the packet's
    forwarding, without requiring the network to create additional
    packet copies". *)

type hop = {
  switch_id : int;
  matched_entry : int;
  matched_version : int;
  in_port : int;
  out_port : int;
}

val source : string
(** The trace program: five hop-addressed LOADs. *)

val words_per_hop : int

val make : max_hops:int -> Tpp_isa.Tpp.t
(** A fresh trace TPP with room for [max_hops] hops, hop-addressed. *)

val attach : Tpp_isa.Frame.t -> max_hops:int -> Tpp_isa.Frame.t
(** Wraps an existing (non-TPP) frame with a trace TPP. *)

val parse : Tpp_isa.Tpp.t -> hop list
(** Hops recorded so far, in path order. A switch id of 0 ends the
    trace (unwritten blocks stay zero). *)

val pp_hop : Format.formatter -> hop -> unit
