module Net = Tpp_sim.Net
module Switch = Tpp_asic.Switch
module Frame = Tpp_isa.Frame
module Meta = Tpp_isa.Meta

type postcard = {
  time_ns : int;
  switch_id : int;
  frame_id : int;
  matched_entry : int;
  matched_version : int;
  in_port : int;
  out_port : int;
}

let postcard_bytes = 64

type t = {
  net : Net.t;
  mutable cards : postcard list;  (* reverse arrival order *)
  mutable count : int;
}

let deploy net =
  let t = { net; cards = []; count = 0 } in
  List.iter
    (fun (_, sw) ->
      let swid = Switch.id sw in
      Switch.set_tap sw
        (Some
           (fun ~now ~in_port ~out_port frame ->
             let meta = frame.Frame.meta in
             t.cards <-
               {
                 time_ns = now;
                 switch_id = swid;
                 frame_id = frame.Frame.id;
                 matched_entry = meta.Meta.matched_entry;
                 matched_version = meta.Meta.matched_version;
                 in_port;
                 out_port;
               }
               :: t.cards;
             t.count <- t.count + 1)))
    (Net.switches net);
  t

let undeploy t =
  List.iter (fun (_, sw) -> Switch.set_tap sw None) (Net.switches t.net)

let postcards t = t.count
let overhead_bytes t = t.count * postcard_bytes

let path_of t ~frame_id =
  t.cards
  |> List.filter (fun c -> c.frame_id = frame_id)
  |> List.sort (fun a b -> Int.compare a.time_ns b.time_ns)

let distinct_frames t =
  let tbl = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace tbl c.frame_id ()) t.cards;
  Hashtbl.length tbl
