module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Switch = Tpp_asic.Switch
module Programs = Tpp_isa.Programs

type link = { from_switch : int; egress_port : int }

(* A physical cable, canonically named by its two (node, port) ends. *)
type cable = (int * int) * (int * int)

type circuit = {
  src : Stack.t;
  dst : Net.host;
  forward : link list;
  cables : cable list;  (* forward + echo-return exposure, deduped *)
  mutable last_probe : int;
  mutable last_reply : int;
}

type t = {
  net : Net.t;
  circuits : circuit array;
  period : int;
  timeout : int;
  seq_base : int;
  probe : Tpp_isa.Tpp.t;
  mutable running : bool;
  mutable epoch : int;
  mutable round : int;
}

let seq_block = 1 lsl 20
let next_uid = ref 0

let node_of_switch_id net swid =
  match List.find_opt (fun (_, sw) -> Switch.id sw = swid) (Net.switches net) with
  | Some (node, _) -> Some node
  | None -> None

let cable_of net { from_switch; egress_port } =
  match node_of_switch_id net from_switch with
  | None -> None
  | Some node ->
    List.find_map
      (fun (port, peer, peer_port) ->
        if port = egress_port then
          Some (min (node, port) (peer, peer_port), max (node, port) (peer, peer_port))
        else None)
      (Net.neighbors net node)

let route_links net ~src ~dst ~src_port ~dst_port =
  Verify.control_route ~src_port ~dst_port net ~src ~dst
  |> List.map (fun (from_switch, egress_port) -> { from_switch; egress_port })

let create ~circuits ~period ~timeout =
  if circuits = [] then invalid_arg "Faultfind.create: no circuits";
  if period <= 0 || timeout <= period then
    invalid_arg "Faultfind.create: need timeout > period > 0";
  incr next_uid;
  let probe =
    match Programs.build ~max_hops:10 Programs.record_route with
    | Ok tpp -> tpp
    | Error e -> invalid_arg ("Faultfind.create: " ^ e)
  in
  let net = Stack.net (fst (List.hd circuits)) in
  let circuit_of (src, dst) =
    let forward =
      route_links net ~src:(Stack.host src) ~dst ~src_port:Probe.request_port
        ~dst_port:Probe.request_port
    in
    (* The echo returns dst -> src with ports (request_port, reply_port). *)
    let return_path =
      route_links net ~src:dst ~dst:(Stack.host src) ~src_port:Probe.request_port
        ~dst_port:Probe.reply_port
    in
    let cables =
      List.filter_map (cable_of net) (forward @ return_path)
      |> List.sort_uniq compare
    in
    { src; dst; forward; cables; last_probe = min_int; last_reply = min_int }
  in
  let circuits = Array.of_list (List.map circuit_of circuits) in
  let t =
    {
      net;
      circuits;
      period;
      timeout;
      seq_base = !next_uid * seq_block;
      probe;
      running = false;
      epoch = 0;
      round = 0;
    }
  in
  (* Replies are matched to circuits by sequence number. *)
  let n = Array.length circuits in
  let sources =
    Array.fold_left
      (fun acc c -> if List.memq c.src acc then acc else c.src :: acc)
      [] circuits
  in
  List.iter
    (fun stack ->
      Probe.install_reply_handler stack (fun ~now ~seq _tpp ->
          if seq >= t.seq_base && seq < t.seq_base + seq_block then begin
            let idx = (seq - t.seq_base) mod n in
            let c = t.circuits.(idx) in
            if c.src == stack then c.last_reply <- now
          end))
    sources;
  t

let engine t = Net.engine (Stack.net t.circuits.(0).src)

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    let n = Array.length t.circuits in
    let now = Engine.now (engine t) in
    Array.iteri
      (fun i c ->
        c.last_probe <- now;
        Probe.send c.src ~dst:c.dst ~tpp:t.probe
          ~seq:(t.seq_base + (t.round * n) + i))
      t.circuits;
    t.round <- t.round + 1;
    Engine.after (engine t) t.period (tick t epoch)
  end

let start t ?at () =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let eng = engine t in
    let begin_at =
      match at with Some time -> max time (Engine.now eng) | None -> Engine.now eng
    in
    (* Grant every circuit a grace reply at start so nothing counts as
       failing before it had a chance to answer. *)
    Array.iter (fun c -> c.last_reply <- max c.last_reply begin_at) t.circuits;
    Engine.at eng begin_at (tick t t.epoch)
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let circuit_healthy t ~now c =
  (* Healthy unless probing started and no echo arrived within the
     timeout (the start itself counts as a grace reply). *)
  c.last_probe = min_int || now - c.last_reply < t.timeout

let healthy t ~now =
  Array.to_list (Array.map (circuit_healthy t ~now) t.circuits)

(* Renders a cable back as a link endpoint, preferring a switch side. *)
let link_of_cable t ((node_a, port_a), (node_b, port_b)) =
  let switch_id node =
    List.find_map
      (fun (n, sw) -> if n = node then Some (Switch.id sw) else None)
      (Net.switches t.net)
  in
  match (switch_id node_a, switch_id node_b) with
  | Some swid, _ -> Some { from_switch = swid; egress_port = port_a }
  | None, Some swid -> Some { from_switch = swid; egress_port = port_b }
  | None, None -> None

let suspects t ~now =
  let failing, ok =
    Array.to_list t.circuits
    |> List.partition (fun c -> not (circuit_healthy t ~now c))
  in
  match failing with
  | [] -> []
  | first :: rest ->
    let mem cable c = List.mem cable c.cables in
    first.cables
    |> List.filter (fun cable -> List.for_all (mem cable) rest)
    |> List.filter (fun cable -> not (List.exists (mem cable) ok))
    |> List.filter_map (link_of_cable t)

let links_of_circuit t i = t.circuits.(i).forward

let same_cable t a b =
  match (cable_of t.net a, cable_of t.net b) with
  | Some ca, Some cb -> ca = cb
  | _ -> false

let pp_link fmt l = Format.fprintf fmt "sw%d.port%d" l.from_switch l.egress_port
