(** Network-wide statistics collection with fleets of TPPs.

    One TPP sees one path; a monitoring task that wants the whole
    fabric sends {e many} TPPs along covering paths (paper §3.2:
    "end-hosts can use multiple packets if a single packet is
    insufficient for a network task"). A sweep owns a set of probe
    circuits (source stack, destination host), fires the same program
    down every circuit each period, and aggregates the echoed per-hop
    samples into a per-switch view — a poor man's network telemetry
    pipeline, built purely from the read instructions.

    The default program samples, per hop: switch id, queue size, link
    utilisation and cumulative drops of the traversed egress link. *)

module Net = Tpp_sim.Net

type circuit = { src : Stack.t; dst : Net.host }

(** Aggregated per-switch view. *)
type view = {
  v_switch_id : int;
  samples : int;
  queue : Tpp_util.Stats.t;     (** bytes *)
  utilization : Tpp_util.Stats.t;  (** fraction of capacity, 0..1+ *)
  last_drops : int;             (** latest cumulative drop counter *)
}

type t

val create : circuits:circuit list -> period:int -> t
(** Echo handling must be installed on every destination stack
    ({!Probe.install_echo}). Raises [Invalid_argument] on an empty
    circuit list. *)

val start : t -> ?at:int -> unit -> unit
val stop : t -> unit

val probes_sent : t -> int
val replies_received : t -> int

val views : t -> view list
(** One entry per switch observed so far, ordered by switch id. *)

val view : t -> switch_id:int -> view option
