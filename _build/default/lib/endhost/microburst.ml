module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Tpp = Tpp_isa.Tpp
module Asm = Tpp_isa.Asm
module Stats = Tpp_util.Stats

module Episode = struct
  type t = {
    threshold : int;
    mutable above : bool;
    mutable episodes : int;
    mutable max_seen : int;
    mutable samples : int;
  }

  let create ~threshold =
    { threshold; above = false; episodes = 0; max_seen = 0; samples = 0 }

  let feed t v =
    t.samples <- t.samples + 1;
    if v > t.max_seen then t.max_seen <- v;
    if v >= t.threshold then begin
      if not t.above then begin
        t.above <- true;
        t.episodes <- t.episodes + 1
      end
    end
    else t.above <- false

  let count t = t.episodes
  let max_seen t = t.max_seen
  let samples t = t.samples
end

let source = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n"
let words_per_hop = 2
let max_hops = 10

type hop_state = { episode : Episode.t; queue_stats : Stats.t }

type t = {
  stack : Stack.t;
  dst : Net.host;
  period : int;
  threshold : int;
  tpp : Tpp.t;
  seq_base : int;
  mutable running : bool;
  mutable epoch : int;
  mutable seq : int;
  mutable sent : int;
  mutable received : int;
  mutable hop_order : int list;  (* switch ids in path order, reversed *)
  table : (int, hop_state) Hashtbl.t;
}

(* Monitors share the probe reply stream with other controllers on the
   same host; each owns a disjoint block of sequence numbers. *)
let seq_block = 1 lsl 20
let next_uid = ref 0

let hop_state t swid =
  match Hashtbl.find_opt t.table swid with
  | Some s -> s
  | None ->
    let s = { episode = Episode.create ~threshold:t.threshold; queue_stats = Stats.create () } in
    Hashtbl.replace t.table swid s;
    t.hop_order <- swid :: t.hop_order;
    s

let on_reply t tpp =
  t.received <- t.received + 1;
  let rec consume = function
    | swid :: q :: rest ->
      let s = hop_state t swid in
      Episode.feed s.episode q;
      Stats.add s.queue_stats (float_of_int q);
      consume rest
    | _ -> ()
  in
  consume (Tpp.stack_values tpp)

let create ~src ~dst ~period ~threshold_bytes =
  if period <= 0 then invalid_arg "Microburst.create: period";
  let tpp =
    match Asm.to_tpp ~mem_len:(4 * words_per_hop * max_hops) source with
    | Ok tpp -> tpp
    | Error e -> invalid_arg ("Microburst.create: " ^ e)
  in
  incr next_uid;
  let t =
    {
      stack = src;
      dst;
      period;
      threshold = threshold_bytes;
      tpp;
      seq_base = !next_uid * seq_block;
      running = false;
      epoch = 0;
      seq = 0;
      sent = 0;
      received = 0;
      hop_order = [];
      table = Hashtbl.create 8;
    }
  in
  Probe.install_reply_handler src (fun ~now:_ ~seq tpp ->
      if t.running && seq >= t.seq_base && seq < t.seq_base + seq_block then
        on_reply t tpp);
  t

let engine t = Net.engine (Stack.net t.stack)

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    t.seq <- t.seq + 1;
    t.sent <- t.sent + 1;
    Probe.send t.stack ~dst:t.dst ~tpp:t.tpp ~seq:(t.seq_base + t.seq);
    Engine.after (engine t) t.period (tick t epoch)
  end

let start t ?at () =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let eng = engine t in
    let begin_at =
      match at with Some time -> max time (Engine.now eng) | None -> Engine.now eng
    in
    Engine.at eng begin_at (tick t t.epoch)
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let probes_sent t = t.sent
let replies_received t = t.received

let hops t =
  List.rev_map (fun swid -> (swid, (Hashtbl.find t.table swid).episode)) t.hop_order

let total_episodes t =
  List.fold_left (fun acc (_, e) -> acc + Episode.count e) 0 (hops t)

let queue_samples t swid =
  Option.map (fun s -> s.queue_stats) (Hashtbl.find_opt t.table swid)
