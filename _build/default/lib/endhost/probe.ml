module Net = Tpp_sim.Net
module Frame = Tpp_isa.Frame
module Tpp = Tpp_isa.Tpp
module Buf = Tpp_util.Buf

let request_port = 7777
let reply_port = 7778

(* Echo payload: [seq:u32] followed by the serialised executed TPP. *)
let encode_echo ~seq tpp =
  let w = Buf.Writer.create ~capacity:64 () in
  Buf.Writer.u32i w seq;
  Tpp.write w tpp;
  Buf.Writer.contents w

let decode_echo payload =
  let r = Buf.Reader.of_bytes payload in
  match
    let seq = Buf.Reader.u32i r in
    (seq, Tpp.read r)
  with
  | seq, Ok tpp -> Some (seq, tpp)
  | _, Error _ -> None
  | exception Buf.Out_of_bounds _ -> None
  | exception Invalid_argument _ -> None

let echo_back stack ~now:_ frame =
  match (frame.Frame.tpp, frame.Frame.ip, frame.Frame.udp) with
  | Some tpp, Some ip, Some udp ->
    let seq =
      if Bytes.length frame.Frame.payload >= 4 then Buf.get_u32i frame.Frame.payload 0
      else 0
    in
    (* Reply straight to the requester's addresses; the echo is a
       plain datagram, so the TPP executes only on the forward path. *)
    let reply =
      Frame.udp_frame
        ~src_mac:(Stack.host stack).Net.mac
        ~dst_mac:frame.Frame.eth.Tpp_packet.Ethernet.src
        ~src_ip:ip.Tpp_packet.Ipv4.Header.dst
        ~dst_ip:ip.Tpp_packet.Ipv4.Header.src
        ~src_port:udp.Tpp_packet.Udp.dst_port ~dst_port:reply_port
        ~payload:(encode_echo ~seq tpp) ()
    in
    Net.host_send (Stack.net stack) (Stack.host stack) reply
  | _ -> ()

let install_echo stack =
  Stack.on_udp stack ~port:request_port (fun ~now frame -> echo_back stack ~now frame)

let install_echo_on_port stack ~port =
  Stack.on_udp_add stack ~port (fun ~now frame ->
      if Option.is_some frame.Frame.tpp then echo_back stack ~now frame)

let send stack ~dst ~tpp ~seq =
  let payload = Bytes.create 4 in
  Buf.set_u32i payload 0 seq;
  Stack.send_udp stack ~dst ~src_port:request_port ~dst_port:request_port
    ~tpp:(Tpp.copy tpp) ~payload ()

let install_reply_handler stack callback =
  Stack.on_udp_add stack ~port:reply_port (fun ~now frame ->
      match decode_echo frame.Frame.payload with
      | Some (seq, tpp) -> callback ~now ~seq tpp
      | None -> ())
