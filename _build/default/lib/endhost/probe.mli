(** TPP probe round-trips.

    The paper's measurement pattern (§2.2 phase 1): a sender attaches a
    TPP to a probe datagram; switches execute it on the way; "the
    receiver simply echoes a fully executed TPP back to the sender". The
    echo carries the executed TPP section as plain UDP payload — not as
    a live TPP — so it is not executed again on the return path. *)

module Net = Tpp_sim.Net
module Tpp = Tpp_isa.Tpp

val request_port : int
(** UDP port probe requests go to (7777). *)

val reply_port : int
(** UDP port echoes come back on (7778). *)

val install_echo : Stack.t -> unit
(** Makes this stack answer probe requests. *)

val install_echo_on_port : Stack.t -> port:int -> unit
(** Additionally echoes executed TPPs that arrive {e piggybacked} on
    application traffic at [port] (see {!Flow.carry_tpp}); added
    alongside the port's existing handler, so the application still
    receives the data. The echoed seq is the data packet's sequence
    number. *)

val send :
  Stack.t -> dst:Net.host -> tpp:Tpp.t -> seq:int -> unit
(** Sends a probe carrying a fresh copy of [tpp] and a sequence number. *)

val decode_echo : bytes -> (int * Tpp.t) option
(** Decodes an echo payload into (sequence number, executed TPP);
    building block for custom reply handling (e.g. piggybacked echoes
    demultiplexed by the data flow's port). *)

val install_reply_handler :
  Stack.t -> (now:int -> seq:int -> Tpp.t -> unit) -> unit
(** Calls back with the executed TPP from each echo. Handlers
    accumulate: every registered handler sees every echo, so concurrent
    controllers on one host must partition the sequence-number space
    (each built-in controller allocates a disjoint block). *)
