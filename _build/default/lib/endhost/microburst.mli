(** Micro-burst detection (paper §2.1).

    A monitor host sends per-RTT TPP probes whose program is
    [PUSH \[Switch:SwitchID\]; PUSH \[Queue:QueueSize\]]: each hop's
    instantaneous egress-queue occupancy is recorded the instant the
    probe traverses the switch — "not an average statistic". The
    monitor turns the per-hop samples into burst {e episodes}
    (occupancy crossing a threshold and later falling back), which is
    what an operator diagnosing latency spikes counts.

    The same episode counter consumes samples from any source, so the
    experiment can feed it a 50 us oracle (ground truth) and a
    10 s management-plane poller (today's monitoring, the paper's
    strawman) for comparison. *)

module Net = Tpp_sim.Net

(** Threshold-crossing episode counter. *)
module Episode : sig
  type t

  val create : threshold:int -> t
  val feed : t -> int -> unit
  val count : t -> int
  (** Completed below->above transitions. *)

  val max_seen : t -> int
  val samples : t -> int
end

type t

val create :
  src:Stack.t ->
  dst:Net.host ->
  period:int ->
  threshold_bytes:int ->
  t
(** Probes from [src] to [dst] every [period] ns. Requires
    {!Probe.install_echo} on the destination stack. *)

val start : t -> ?at:int -> unit -> unit
val stop : t -> unit

val probes_sent : t -> int
val replies_received : t -> int

val hops : t -> (int * Episode.t) list
(** Per-switch episode counters, keyed by switch id, in path order. *)

val total_episodes : t -> int
val queue_samples : t -> int -> Tpp_util.Stats.t option
(** All queue samples observed at the given switch id. *)
