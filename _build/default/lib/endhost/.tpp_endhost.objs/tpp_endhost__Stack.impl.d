lib/endhost/stack.ml: Hashtbl List Tpp_isa Tpp_packet Tpp_sim
