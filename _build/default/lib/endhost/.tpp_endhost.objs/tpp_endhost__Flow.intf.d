lib/endhost/flow.mli: Stack Tpp_isa Tpp_sim Tpp_util
