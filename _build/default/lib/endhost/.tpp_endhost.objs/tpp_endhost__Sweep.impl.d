lib/endhost/sweep.ml: Hashtbl Int List Option Probe Stack Tpp_isa Tpp_sim Tpp_util
