lib/endhost/flow.ml: Bytes Stack Tpp_isa Tpp_packet Tpp_sim Tpp_util
