lib/endhost/stack.mli: Tpp_isa Tpp_sim
