lib/endhost/rcp_star.mli: Flow Stack Tpp_asic Tpp_isa Tpp_sim
