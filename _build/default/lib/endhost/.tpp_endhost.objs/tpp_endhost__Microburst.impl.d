lib/endhost/microburst.ml: Hashtbl List Option Probe Stack Tpp_isa Tpp_sim Tpp_util
