lib/endhost/probe.ml: Bytes Option Stack Tpp_isa Tpp_packet Tpp_sim Tpp_util
