lib/endhost/probe.mli: Stack Tpp_isa Tpp_sim
