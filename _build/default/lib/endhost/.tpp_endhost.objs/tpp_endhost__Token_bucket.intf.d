lib/endhost/token_bucket.mli:
