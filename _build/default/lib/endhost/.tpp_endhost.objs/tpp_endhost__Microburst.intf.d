lib/endhost/microburst.mli: Stack Tpp_sim Tpp_util
