lib/endhost/token_bucket.ml: Float
