lib/endhost/rcp_star.ml: Float Flow Hashtbl List Printf Probe Stack Tpp_asic Tpp_isa Tpp_packet Tpp_sim
