lib/endhost/sweep.mli: Stack Tpp_sim Tpp_util
