(** RCP*: the paper's end-host implementation of the Rate Control
    Protocol (§2.2), refactored onto read/write TPPs.

    Per flow, every period T the controller runs three phases:

    - {b Collect}: a probe TPP pushes, per hop, the switch id, queue
      size, link utilisation, link capacity and the link's shared
      fair-rate register (SRAM allocated by the control plane). The
      receiver echoes the executed TPP.
    - {b Compute}: the sender evaluates the RCP control law per link:
      R <- R (1 - (T/d) (a (y - C) + b q/d) / C)
    - {b Update}: a second TPP executes only on the bottleneck switch
      (CEXEC on the switch id) and conditionally stores the new rate
      into that link's register (CSTORE, so a concurrent writer's
      update is not clobbered). The flow's token-bucket rate becomes
      the minimum fair rate across its path.

    The fair-rate registers hold {b kbps} so 32-bit words cover links
    past 4 Gb/s. *)

module Net = Tpp_sim.Net
module Switch = Tpp_asic.Switch

type config = {
  period_ns : int;      (** T: control interval *)
  rtt_ns : int;         (** d: RTT estimate used in the control law *)
  alpha : float;
  beta : float;
  slot : int;           (** LinkSram slot of the fair-rate register *)
  min_rate_bps : int;
  max_hops : int;       (** packet memory sized for this many hops *)
  use_cstore : bool;    (** [false] = plain STORE (ablation E8) *)
  piggyback_every : int option;
      (** [Some n]: phase 1 rides every n-th {e data} packet instead of
          separate probes (paper: "using the flow's packets"). The
          receiver needs {!Probe.install_echo_on_port} on the flow's
          port; collect processing is throttled to one per period. *)
}

val default_config : slot:int -> config
(** T = 10 ms, d = 50 ms, alpha = 0.5, beta = 1.0 (paper Figure 2),
    min rate 50 kb/s, 8 hops, CSTORE on. *)

val setup_network : Net.t -> (int, string) result
(** Control-plane side: allocates the same LinkSram slot on every
    switch and initialises each link's register to its capacity (paper
    footnote 3). Returns the slot. *)

val collect_source : slot:int -> string * (string * int) list
(** The phase-1 assembly and its defines, for display and tests. *)

(** One hop's worth of the values a collect probe gathers. *)
type link_sample = {
  switch_id : int;
  queue_bytes : int;
  util_ppm : int;
  capacity_kbps : int;
  rate_kbps : int;
}

val parse_hops : Tpp_isa.Tpp.t -> link_sample list
(** Decodes an executed collect probe's stack into per-hop samples. *)

val control_law : config -> link_sample -> float
(** R(t+T) in bps for one link, per the paper's §2.2 equation, clamped
    to [\[min_rate_bps, capacity\]]. *)

type t

val create : Stack.t -> config -> flow:Flow.t -> dst:Net.host -> t
(** The controller paces [flow] (a CBR flow from this stack's host to
    [dst]). Requires {!Probe.install_echo} on the receiver's stack. *)

val start : t -> ?at:int -> unit -> unit
val stop : t -> unit

val current_rate_bps : t -> int

val probes_sent : t -> int
val updates_sent : t -> int
val updates_won : t -> int
(** CSTOREs whose condition held (detected from the echoed pool word). *)

val read_rate_kbps : Switch.t -> slot:int -> port:int -> int option
(** Control-plane read of a link's fair-rate register, for plots. *)
