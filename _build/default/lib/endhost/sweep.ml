module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Tpp = Tpp_isa.Tpp
module Asm = Tpp_isa.Asm
module Stats = Tpp_util.Stats

type circuit = { src : Stack.t; dst : Net.host }

type view = {
  v_switch_id : int;
  samples : int;
  queue : Stats.t;
  utilization : Stats.t;
  last_drops : int;
}

type acc = {
  mutable acc_samples : int;
  acc_queue : Stats.t;
  acc_util : Stats.t;
  mutable acc_drops : int;
}

let source =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Queue:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:Drops]\n"

let words_per_hop = 4
let max_hops = 10

let seq_block = 1 lsl 20
let next_uid = ref 0

type t = {
  circuits : circuit list;
  period : int;
  tpp : Tpp.t;
  seq_base : int;
  mutable running : bool;
  mutable epoch : int;
  mutable seq : int;
  mutable sent : int;
  mutable received : int;
  table : (int, acc) Hashtbl.t;
}

let accumulate t tpp =
  t.received <- t.received + 1;
  let rec consume = function
    | swid :: q :: util :: drops :: rest ->
      let acc =
        match Hashtbl.find_opt t.table swid with
        | Some a -> a
        | None ->
          let a =
            { acc_samples = 0; acc_queue = Stats.create (); acc_util = Stats.create ();
              acc_drops = 0 }
          in
          Hashtbl.replace t.table swid a;
          a
      in
      acc.acc_samples <- acc.acc_samples + 1;
      Stats.add acc.acc_queue (float_of_int q);
      Stats.add acc.acc_util (float_of_int util /. 1e6);
      acc.acc_drops <- drops;
      consume rest
    | _ -> ()
  in
  consume (Tpp.stack_values tpp)

let create ~circuits ~period =
  if circuits = [] then invalid_arg "Sweep.create: no circuits";
  if period <= 0 then invalid_arg "Sweep.create: period";
  let tpp =
    match Asm.to_tpp ~mem_len:(4 * words_per_hop * max_hops) source with
    | Ok tpp -> tpp
    | Error e -> invalid_arg ("Sweep.create: " ^ e)
  in
  incr next_uid;
  let t =
    {
      circuits;
      period;
      tpp;
      seq_base = !next_uid * seq_block;
      running = false;
      epoch = 0;
      seq = 0;
      sent = 0;
      received = 0;
      table = Hashtbl.create 32;
    }
  in
  (* Replies come back to each circuit's source stack; register on the
     distinct ones. *)
  let sources =
    List.fold_left
      (fun acc c -> if List.memq c.src acc then acc else c.src :: acc)
      [] circuits
  in
  List.iter
    (fun stack ->
      Probe.install_reply_handler stack (fun ~now:_ ~seq tpp ->
          if t.running && seq >= t.seq_base && seq < t.seq_base + seq_block then
            accumulate t tpp))
    sources;
  t

let engine t =
  match t.circuits with
  | c :: _ -> Net.engine (Stack.net c.src)
  | [] -> assert false

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    List.iter
      (fun c ->
        t.seq <- t.seq + 1;
        t.sent <- t.sent + 1;
        Probe.send c.src ~dst:c.dst ~tpp:t.tpp ~seq:(t.seq_base + t.seq))
      t.circuits;
    Engine.after (engine t) t.period (tick t epoch)
  end

let start t ?at () =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let eng = engine t in
    let begin_at =
      match at with Some time -> max time (Engine.now eng) | None -> Engine.now eng
    in
    Engine.at eng begin_at (tick t t.epoch)
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let probes_sent t = t.sent
let replies_received t = t.received

let view_of swid acc =
  {
    v_switch_id = swid;
    samples = acc.acc_samples;
    queue = acc.acc_queue;
    utilization = acc.acc_util;
    last_drops = acc.acc_drops;
  }

let views t =
  Hashtbl.fold (fun swid acc l -> view_of swid acc :: l) t.table []
  |> List.sort (fun a b -> Int.compare a.v_switch_id b.v_switch_id)

let view t ~switch_id =
  Option.map (view_of switch_id) (Hashtbl.find_opt t.table switch_id)
