(** Address translation between TPP virtual addresses and switch state
    (paper §3.2.1, "Unified Memory-Mapped IO").

    Contextual [Link:*] and [LinkSram:*] addresses resolve against the
    output port the forwarding pipeline picked for the current packet,
    taken from the frame's metadata. *)

type fault =
  | Bad_address of int      (** hole in the map, or out of range *)
  | Read_only of int        (** write to a statistic/metadata address *)
  | Port_out_of_range of int

val fault_message : fault -> string

val read :
  State.t -> meta:Tpp_isa.Meta.t -> now:int -> int -> (int, fault) result
(** [read state ~meta ~now addr] is the 32-bit value at virtual word
    address [addr]. *)

val write :
  State.t -> meta:Tpp_isa.Meta.t -> int -> int -> (unit, fault) result
(** [write state ~meta addr v]; only SRAM regions accept writes. *)

val read_absolute : State.t -> now:int -> int -> (int, fault) result
(** Control-plane read: like {!read} but contextual regions fault, since
    there is no packet context. Used by experiment harnesses. *)
