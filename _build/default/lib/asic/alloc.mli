(** Control-plane partitioning of switch SRAM between network tasks
    (paper §3.2, "Multiple tasks").

    Concurrently deployed tasks (e.g. RCP and ndb) each get
    non-overlapping SRAM, so one task's TPPs can never corrupt
    another's state. The allocator hands out either raw word ranges or
    contextual per-link slots (one word per port, addressed through the
    [LinkSram] window relative to a packet's output port). *)

type t

val for_state : State.t -> t
(** An allocator managing [state]'s SRAM. At most one allocator should
    manage a given switch. *)

val alloc_words : t -> task:string -> count:int -> (int, string) result
(** Reserves [count] consecutive SRAM words; returns the first word's
    index (for [Sram:<i>] addressing). *)

val alloc_link_slot : t -> task:string -> (int, string) result
(** Reserves one contextual per-link slot: word [slot*num_ports + port]
    for every port. Returns the slot number (for [LinkSram:<slot>]
    addressing and {!Tpp_isa.Vaddr.Link_sram}). *)

val regions : t -> (string * int * int) list
(** [(task, first_word, count)] for every allocation, in address order. *)

val free_words : t -> int
