lib/asic/switch.ml: Alloc Array List Option Queue State Tables Tcpu Tpp_isa Tpp_packet
