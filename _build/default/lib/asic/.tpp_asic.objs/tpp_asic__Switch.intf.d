lib/asic/switch.mli: Alloc State Tables Tcpu Tpp_isa Tpp_packet
