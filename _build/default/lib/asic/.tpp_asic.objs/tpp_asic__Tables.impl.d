lib/asic/tables.ml: Array Hashtbl Int List Option Tpp_packet
