lib/asic/tcpu.ml: Array Bytes Mmu Printf Result State Tpp_isa
