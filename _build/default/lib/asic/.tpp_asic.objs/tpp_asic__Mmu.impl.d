lib/asic/mmu.ml: Array Printf State Tpp_isa
