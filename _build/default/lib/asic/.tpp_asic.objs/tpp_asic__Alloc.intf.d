lib/asic/alloc.mli: State
