lib/asic/tcpu.mli: Mmu State Tpp_isa
