lib/asic/state.ml: Array Queue Tpp_isa
