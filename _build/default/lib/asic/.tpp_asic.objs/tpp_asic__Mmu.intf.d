lib/asic/mmu.mli: State Tpp_isa
