lib/asic/state.mli: Queue Tpp_isa
