lib/asic/tables.mli: Tpp_packet
