lib/asic/alloc.ml: Array Int List Printf State Tpp_isa
