module Buf = Tpp_util.Buf

type t = { src_port : int; dst_port : int }

let size = 8

let write w t ~payload_len =
  Buf.Writer.u16 w t.src_port;
  Buf.Writer.u16 w t.dst_port;
  Buf.Writer.u16 w (size + payload_len);
  Buf.Writer.u16 w 0

let read r =
  let src_port = Buf.Reader.u16 r in
  let dst_port = Buf.Reader.u16 r in
  let len = Buf.Reader.u16 r in
  let _checksum = Buf.Reader.u16 r in
  if len < size then invalid_arg "Udp.read: length";
  ({ src_port; dst_port }, len - size)

let pp fmt t = Format.fprintf fmt "udp %d -> %d" t.src_port t.dst_port
