type t = int

let mask48 = 0xFFFF_FFFF_FFFF

let of_int x = x land mask48
let to_int t = t

let broadcast = mask48

(* 0x02 in the first octet marks a locally-administered unicast address,
   so synthetic addresses can never collide with real vendor OUIs. *)
let of_host_id i = of_int ((0x02_00_00_00_00_00 lor 0x10_00_00) lor (i land 0xFFFF))
let of_switch_id i = of_int ((0x02_00_00_00_00_00 lor 0x20_00_00) lor (i land 0xFFFF))

let of_string s =
  let parts = String.split_on_char ':' s in
  if List.length parts <> 6 then invalid_arg "Mac.of_string: need 6 octets";
  let octet p =
    match int_of_string_opt ("0x" ^ p) with
    | Some v when v >= 0 && v <= 0xFF -> v
    | _ -> invalid_arg "Mac.of_string: bad octet"
  in
  List.fold_left (fun acc p -> (acc lsl 8) lor octet p) 0 parts

let to_string t =
  Printf.sprintf "%02x:%02x:%02x:%02x:%02x:%02x"
    ((t lsr 40) land 0xFF) ((t lsr 32) land 0xFF) ((t lsr 24) land 0xFF)
    ((t lsr 16) land 0xFF) ((t lsr 8) land 0xFF) (t land 0xFF)

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash

let pp fmt t = Format.pp_print_string fmt (to_string t)
