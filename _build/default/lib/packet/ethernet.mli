(** Ethernet II header. *)

type t = { dst : Mac.t; src : Mac.t; ethertype : int }

val size : int
(** 14 bytes. *)

val ethertype_ipv4 : int
val ethertype_tpp : int
(** The experimental ethertype that identifies a TPP frame (the paper's
    "uniquely identifiable header"). *)

val write : Tpp_util.Buf.Writer.t -> t -> unit
val read : Tpp_util.Buf.Reader.t -> t

val pp : Format.formatter -> t -> unit
