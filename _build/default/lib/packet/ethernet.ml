module Buf = Tpp_util.Buf

type t = { dst : Mac.t; src : Mac.t; ethertype : int }

let size = 14

let ethertype_ipv4 = 0x0800

(* 0x88B5 is the IEEE "local experimental ethertype 1", the honest choice
   for a research encapsulation. *)
let ethertype_tpp = 0x88B5

let write_mac w m =
  let v = Mac.to_int m in
  Buf.Writer.u16 w (v lsr 32);
  Buf.Writer.u32i w (v land 0xFFFF_FFFF)

let read_mac r =
  let hi = Buf.Reader.u16 r in
  let lo = Buf.Reader.u32i r in
  Mac.of_int ((hi lsl 32) lor lo)

let write w t =
  write_mac w t.dst;
  write_mac w t.src;
  Buf.Writer.u16 w t.ethertype

let read r =
  let dst = read_mac r in
  let src = read_mac r in
  let ethertype = Buf.Reader.u16 r in
  { dst; src; ethertype }

let pp fmt t =
  Format.fprintf fmt "%a -> %a type=0x%04x" Mac.pp t.src Mac.pp t.dst t.ethertype
