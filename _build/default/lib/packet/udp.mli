(** UDP header. *)

type t = { src_port : int; dst_port : int }

val size : int
(** 8 bytes. *)

val write : Tpp_util.Buf.Writer.t -> t -> payload_len:int -> unit
(** Serialises the header. The checksum field is written as 0 (legal for
    UDP over IPv4); integrity in the simulator comes from the IPv4
    header checksum and bounds-checked parsing. *)

val read : Tpp_util.Buf.Reader.t -> t * int
(** Returns the header and the payload length it declares. *)

val pp : Format.formatter -> t -> unit
