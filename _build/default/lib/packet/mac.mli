(** 48-bit Ethernet MAC addresses. *)

type t = private int
(** Stored in the low 48 bits of a native int. *)

val of_int : int -> t
(** Masks the argument to 48 bits. *)

val to_int : t -> int

val broadcast : t

val of_host_id : int -> t
(** Deterministic unicast address for simulated host [i]
    (locally-administered OUI [02:tp:p0]). *)

val of_switch_id : int -> t
(** Deterministic unicast address for simulated switch [i]. *)

val of_string : string -> t
(** Parses ["aa:bb:cc:dd:ee:ff"]. Raises [Invalid_argument] on bad syntax. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
