lib/packet/ethernet.ml: Format Mac Tpp_util
