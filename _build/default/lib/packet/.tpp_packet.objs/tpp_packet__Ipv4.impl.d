lib/packet/ipv4.ml: Bytes Format Int List Printf String Tpp_util
