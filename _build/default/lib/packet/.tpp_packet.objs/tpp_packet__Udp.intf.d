lib/packet/udp.mli: Format Tpp_util
