lib/packet/udp.ml: Format Tpp_util
