lib/packet/ipv4.mli: Format Tpp_util
