lib/packet/ethernet.mli: Format Mac Tpp_util
