lib/packet/mac.ml: Format Hashtbl Int List Printf String
