lib/control/controller.mli: Tpp_asic Tpp_sim
