lib/control/controller.ml: List Printf Tpp_asic Tpp_isa Tpp_sim
