module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module Alloc = Tpp_asic.Alloc
module Vaddr = Tpp_isa.Vaddr

type task = {
  task_name : string;
  link_slot : int option;
  word_base : int option;
  word_count : int;
}

type t = {
  net : Net.t;
  ecmp : bool;
  mutable current_version : int;
  mutable task_list : task list;
  mutable updating : bool;
  mutable next_tcam_entry : int;
}

let create_with ?(ecmp = false) net =
  Topology.install_routes ~ecmp ~version:1 net;
  { net; ecmp; current_version = 1; task_list = []; updating = false;
    (* High base keeps controller-stamped TCAM ids visually distinct
       from the route installer's per-switch counters. *)
    next_tcam_entry = 10_000 }

let create net = create_with net

let version t = t.current_version

(* Performs [f] on every switch, insisting all agree on the result. *)
let allocate_everywhere t what f =
  let results =
    List.map (fun (_, sw) -> f (Switch.alloc sw)) (Net.switches t.net)
  in
  let rec unify acc = function
    | [] -> acc
    | Error e :: _ -> Error e
    | Ok v :: rest -> (
      match acc with
      | Ok None -> unify (Ok (Some v)) rest
      | Ok (Some prev) when prev = v -> unify acc rest
      | Ok (Some prev) ->
        Error
          (Printf.sprintf
             "%s allocation disagrees across switches (%d vs %d); register tasks \
              before any per-switch allocation"
             what prev v)
      | Error _ as e -> e)
  in
  match unify (Ok None) results with
  | Ok (Some v) -> Ok v
  | Ok None -> Error "no switches in the network"
  | Error e -> Error e

let register_task t ~name ?(link_slot = false) ?(sram_words = 0) () =
  if List.exists (fun task -> task.task_name = name) t.task_list then
    Error (Printf.sprintf "task %S already registered" name)
  else begin
    let slot =
      if link_slot then
        match allocate_everywhere t "link slot" (Alloc.alloc_link_slot ~task:name) with
        | Ok s -> Ok (Some s)
        | Error e -> Error e
      else Ok None
    in
    match slot with
    | Error e -> Error e
    | Ok link_slot -> (
      let base =
        if sram_words > 0 then
          match
            allocate_everywhere t "word range"
              (Alloc.alloc_words ~task:name ~count:sram_words)
          with
          | Ok b -> Ok (Some b)
          | Error e -> Error e
        else Ok None
      in
      match base with
      | Error e -> Error e
      | Ok word_base ->
        let task = { task_name = name; link_slot; word_base; word_count = sram_words } in
        t.task_list <- t.task_list @ [ task ];
        Ok task)
  end

let tasks t = t.task_list

let defines_for task =
  let slot =
    match task.link_slot with
    | Some s -> [ (task.task_name ^ ":LinkReg", Vaddr.encode (Vaddr.Link_sram s)) ]
    | None -> []
  in
  let words =
    match task.word_base with
    | Some base ->
      List.init task.word_count (fun i ->
          ( Printf.sprintf "%s:Word%d" task.task_name i,
            Vaddr.encode (Vaddr.Sram (base + i)) ))
    | None -> []
  in
  slot @ words

let install_tcam t ~switch_node rule action =
  t.next_tcam_entry <- t.next_tcam_entry + 1;
  let entry_id = t.next_tcam_entry in
  Switch.install_tcam
    (Net.switch t.net switch_node)
    rule
    { Tpp_asic.Tables.action; entry_id; version = t.current_version };
  entry_id

let remove_tcam t ~switch_node ~entry_id =
  Switch.remove_tcam (Net.switch t.net switch_node) ~entry_id

let reinstall_routes t =
  t.current_version <- t.current_version + 1;
  Topology.install_routes ~ecmp:t.ecmp ~version:t.current_version t.net

let staged_route_update t ~gap =
  if gap <= 0 then invalid_arg "Controller.staged_route_update: gap";
  t.current_version <- t.current_version + 1;
  t.updating <- true;
  let version = t.current_version in
  let eng = Net.engine t.net in
  let hosts = Net.hosts t.net in
  (* Next-hop sets computed now (the intent); applied switch by switch. *)
  let plans =
    List.map (fun dest -> (dest, Topology.next_hop_ports t.net ~dest)) hosts
  in
  let switches = List.sort compare (List.map fst (Net.switches t.net)) in
  List.iteri
    (fun i sid ->
      Engine.after eng (gap * (i + 1)) (fun () ->
          let entry_id = ref 0 in
          List.iter
            (fun (dest, plan) ->
              match List.assoc_opt sid plan with
              | Some ports ->
                incr entry_id;
                Topology.install_dest_on_switch t.net ~dest ~ecmp:t.ecmp ~version
                  ~entry_id:!entry_id sid ports
              | None -> ())
            plans;
          Switch.set_version (Net.switch t.net sid) version;
          if i = List.length switches - 1 then t.updating <- false))
    switches

let update_in_progress t = t.updating
