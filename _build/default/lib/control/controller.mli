(** The network's control-plane agent (paper §3.2 "Multiple tasks" and
    §2.3's versioned flow entries).

    One controller owns a network: it partitions SRAM between network
    tasks consistently across every switch, keeps the global forwarding
    table version, and performs routing updates — including the
    deliberately {e staged} update experiment E12 uses to reproduce the
    inconsistent-update window the paper cites ndb/[7] for. *)

module Net = Tpp_sim.Net

(** A task's network-wide SRAM allocation. *)
type task = {
  task_name : string;
  link_slot : int option;
      (** the contextual per-link slot, identical on every switch *)
  word_base : int option;
      (** base of the raw word range, identical on every switch *)
  word_count : int;
}

type t

val create : Net.t -> t
(** Takes over route installation: installs shortest paths at version 1.
    Use [ecmp] to spread flows over equal-cost paths. *)

val create_with : ?ecmp:bool -> Net.t -> t

val version : t -> int

val register_task :
  t -> name:string -> ?link_slot:bool -> ?sram_words:int -> unit ->
  (task, string) result
(** Allocates the requested resources on {e every} switch and verifies
    the addresses agree network-wide (TPPs compile one address for the
    whole path, so they must). Fails — without partial allocation
    visible to tasks — if any switch disagrees or is full. *)

val tasks : t -> task list

val defines_for : task -> (string * int) list
(** Assembler defines for the task's registers:
    ["<name>:LinkReg"] for the per-link slot and ["<name>:Word<i>"] for
    each raw word, resolvable on every switch. *)

val install_tcam :
  t -> switch_node:int -> Tpp_asic.Tables.Tcam.rule ->
  Tpp_asic.Tables.action -> int
(** The ndb interposition point (paper §2.3: "stamping each flow entry
    with a unique version number"): every rule the control plane
    installs gets a fresh network-unique entry id and the current table
    version. Returns the entry id, which traced packets will report in
    [PacketMetadata:MatchedEntryID]. *)

val remove_tcam : t -> switch_node:int -> entry_id:int -> unit

val reinstall_routes : t -> unit
(** Atomically (in simulation time) reinstalls all routes at a bumped
    version. *)

val staged_route_update : t -> gap:int -> unit
(** The realistic, {e non}-atomic variant: bumps the version, then
    updates one switch every [gap] nanoseconds (ascending switch id).
    While the update is in flight, different switches run different
    table versions — exactly the transient the TPP tracer exposes. *)

val update_in_progress : t -> bool
