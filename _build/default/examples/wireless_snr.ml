(* The paper's §2.3 closing remark: "TPPs are not just limited to wired
   networks; they can also be used in wireless networks where access
   points can annotate end-host packets with channel SNR which changes
   very quickly."

   We model an access point as a one-switch network whose control
   firmware tracks per-station SNR in an SRAM word, refreshed every
   millisecond with fast fading. A station's probes read the register
   in-band; a 1-second management poll reads it too. The probe stream
   tracks the fading process; the poll sees a meaningless snapshot. *)

open Tpp

let () =
  let eng = Engine.create () in
  let star =
    Topology.chain eng ~num_switches:1 ~hosts_per_switch:2 ~bps:(54 * 1_000_000)
      ~delay:(Time_ns.us 100) ()
  in
  let net = star.Topology.net in
  let ap = Net.switch net star.Topology.switch_ids.(0) in
  let station = star.Topology.hosts.(0).(0) in
  let peer = star.Topology.hosts.(0).(1) in

  (* The AP firmware allocates an SRAM word for the station's SNR. *)
  let snr_word =
    match Sram_alloc.alloc_words (Switch.alloc ap) ~task:"snr" ~count:1 with
    | Ok w -> w
    | Error e -> failwith e
  in
  let rng = Rng.create ~seed:42 in
  let fading () =
    (* Rayleigh-ish fading around 25 dB, scaled x10 (tenths of dB). *)
    let u = Rng.float rng 1.0 in
    let magnitude = sqrt (-2.0 *. log (Float.max 1e-9 u)) in
    int_of_float (Float.max 10.0 (250.0 *. magnitude /. 1.25))
  in
  Engine.every eng ~period:(Time_ns.ms 1) ~until:(Time_ns.sec 10) (fun () ->
      ignore (Tpp_asic.State.sram_set (Switch.state ap) snr_word (fading ())));

  let st_stack = Stack.create net station in
  let peer_stack = Stack.create net peer in
  Probe.install_echo peer_stack;

  let program = Printf.sprintf "PUSH [Sram:%d]\n" snr_word in
  let tpp =
    match Asm.to_tpp ~mem_len:16 program with Ok t -> t | Error e -> failwith e
  in
  let probe_snr = Stats.create () in
  Probe.install_reply_handler st_stack (fun ~now:_ ~seq:_ tpp ->
      match Prog.stack_values tpp with
      | snr :: _ -> Stats.add probe_snr (float_of_int snr /. 10.0)
      | [] -> ());
  Engine.every eng ~period:(Time_ns.ms 2) ~until:(Time_ns.sec 10) (fun () ->
      Probe.send st_stack ~dst:peer ~tpp ~seq:0);

  let poll_snr = Stats.create () in
  Engine.every eng ~period:(Time_ns.sec 1) ~until:(Time_ns.sec 10) (fun () ->
      match Tpp_asic.State.sram_get (Switch.state ap) snr_word with
      | Some v -> Stats.add poll_snr (float_of_int v /. 10.0)
      | None -> ());

  Engine.run eng ~until:(Time_ns.sec 10);

  let show name stats =
    Printf.printf "  %-18s %5d samples  mean %5.1f dB  p5 %5.1f  p95 %5.1f\n" name
      (Stats.count stats) (Stats.mean stats)
      (Stats.percentile stats 5.0)
      (Stats.percentile stats 95.0)
  in
  print_endline "per-station SNR as seen by:";
  show "TPP probes (2ms)" probe_snr;
  show "1s polling" poll_snr;
  Printf.printf
    "the probe stream resolves the fading distribution; %d poll samples cannot.\n"
    (Stats.count poll_snr)
