(* Per-hop latency breakdown from a single packet.

   The [hop_timestamps] program pushes each switch's nanosecond clock as
   the packet passes; combined with the queue-size program, one probe
   decomposes end-to-end latency into per-segment wire time and per-hop
   queueing — what today ships in silicon as in-band network telemetry
   (INT), here expressed as two TPP instructions. *)

open Tpp

let mbps x = x * 1_000_000

let () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:4 ~hosts_per_switch:2 ~bps:(mbps 100)
      ~delay:(Time_ns.us 200) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in

  (* Load two middle segments so the waterfall shows real queueing. *)
  List.iter
    (fun (src_i, rate) ->
      let src = Stack.create net (host src_i 1) in
      let dst = Stack.create net (host 3 1) in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let f =
        Flow.cbr ~src ~dst:(host 3 1) ~dst_port:9000 ~payload_bytes:1000
          ~rate_bps:rate
      in
      Flow.start f ())
    [ (0, mbps 55); (1, mbps 55) ];

  let src = Stack.create net (host 0 0) in
  let dst_stack = Stack.create net (host 3 0) in
  Probe.install_echo dst_stack;

  (* One probe carrying clock+queue per hop: 4 words per hop. *)
  let program =
    "PUSH [Switch:SwitchID]\n\
     PUSH [Switch:ClockNs]\n\
     PUSH [Queue:QueueSize]\n\
     PUSH [Link:CapacityKbps]\n"
  in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:(4 * 4 * 8) program) in

  Probe.install_reply_handler src (fun ~now ~seq:_ tpp ->
      let sent_ns = Time_ns.ms 60 in
      Printf.printf
        "probe sent t=%.3fms, echo received t=%.3fms (round trip %.3fms)\n\n"
        (Time_ns.to_ms_f sent_ns) (Time_ns.to_ms_f now)
        (Time_ns.to_ms_f (now - sent_ns));
      Printf.printf "  %-8s %12s %14s %14s %16s\n" "switch" "clock (ms)"
        "seg. delay" "queue (B)" "queue delay (ms)";
      let rec rows prev = function
        | swid :: clock :: qsize :: cap_kbps :: rest ->
          let seg =
            match prev with
            | Some p -> Printf.sprintf "%12.3f ms" (float_of_int (clock - p) /. 1e6)
            | None -> Printf.sprintf "%12.3f ms" (float_of_int (clock - sent_ns) /. 1e6)
          in
          Printf.printf "  sw%-6d %12.3f %14s %14d %16.3f\n" swid
            (float_of_int clock /. 1e6)
            seg qsize
            (float_of_int (qsize * 8) /. float_of_int (cap_kbps * 1000) *. 1e3);
          rows (Some clock) rest
        | _ -> ()
      in
      rows None (Prog.stack_values tpp);
      print_endline
        "\n  'seg. delay' = wire + upstream queueing between snapshots;\n\
        \  'queue delay' = what the snapshot queue costs at line rate.")
  ;
  Engine.at eng (Time_ns.ms 60) (fun () ->
      Probe.send src ~dst:(host 3 0) ~tpp ~seq:1);
  Engine.run eng ~until:(Time_ns.ms 120)
