(* Figure 2 of the paper: RCP* (TPP + end-host) against in-network RCP.

   A 10 Mb/s bottleneck is shared by three flows starting at t = 0 s,
   10 s and 20 s. Both implementations use alpha = 0.5, beta = 1. The
   program prints R(t)/C at the bottleneck for both, sampled every
   250 ms; both should step down to ~1, ~1/2, ~1/3 within a few RTTs of
   each arrival. *)

open Tpp

let sec = Time_ns.sec
let mbps x = x * 1_000_000
let core_bps = mbps 10
let edge_bps = mbps 100
let run_for = sec 30
let flow_starts = [ 0; 10; 20 ]

(* --- RCP*: end-hosts drive the control law through TPPs ------------- *)

let run_rcp_star series =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:3 ~core_bps ~edge_bps ~delay:(Time_ns.ms 5) ()
  in
  let net = bell.Topology.d_net in
  let slot =
    match Rcp_star.setup_network net with Ok s -> s | Error e -> failwith e
  in
  let config = Rcp_star.default_config ~slot in
  Net.start_utilization_updates net ~period:config.Rcp_star.period_ns ~until:run_for;
  List.iteri
    (fun i start_s ->
      let src = Stack.create net bell.Topology.senders.(i) in
      let dst_host = bell.Topology.receivers.(i) in
      let dst = Stack.create net dst_host in
      Probe.install_echo dst;
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let flow =
        Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:1000
          ~rate_bps:core_bps
      in
      let controller = Rcp_star.create src config ~flow ~dst:dst_host in
      Engine.at eng (sec start_s) (fun () ->
          Flow.start flow ();
          Rcp_star.start controller ()))
    flow_starts;
  let bottleneck = Net.switch net bell.Topology.left_switch in
  Engine.every eng ~period:(Time_ns.ms 250) ~until:run_for (fun () ->
      match Rcp_star.read_rate_kbps bottleneck ~slot ~port:0 with
      | Some kbps ->
        Series.add series ~time:(Engine.now eng)
          (float_of_int kbps *. 1000.0 /. float_of_int core_bps)
      | None -> ());
  Engine.run eng ~until:run_for

(* --- RCP: routers maintain R(t) natively (the ns2-style baseline) --- *)

let run_rcp series =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:3 ~core_bps ~edge_bps ~delay:(Time_ns.ms 5) ()
  in
  let net = bell.Topology.d_net in
  let config = Rcp.default_config in
  let core =
    Rcp.Router.attach net config ~switch_node:bell.Topology.left_switch ~port:0
  in
  List.iteri
    (fun i start_s ->
      let src = Stack.create net bell.Topology.senders.(i) in
      let dst_host = bell.Topology.receivers.(i) in
      let dst = Stack.create net dst_host in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let edge =
        Rcp.Router.attach net config ~switch_node:bell.Topology.right_switch
          ~port:(1 + i)
      in
      let flow =
        Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:1000
          ~rate_bps:core_bps
      in
      let controller = Rcp.Controller.create net config ~flow ~path:[ core; edge ] in
      Engine.at eng (sec start_s) (fun () ->
          Flow.start flow ();
          Rcp.Controller.start controller ()))
    flow_starts;
  Engine.every eng ~period:(Time_ns.ms 250) ~until:run_for (fun () ->
      Series.add series ~time:(Engine.now eng)
        (Rcp.Router.rate_bps core /. float_of_int core_bps));
  Engine.run eng ~until:run_for

let () =
  let star = Series.create ~name:"RCP*(TPP)" in
  let baseline = Series.create ~name:"RCP(sim)" in
  run_rcp_star star;
  run_rcp baseline;
  Printf.printf "R(t)/C at the 10 Mb/s bottleneck; flows join at t=0,10,20s\n\n";
  Series.print_table [ star; baseline ] ~bucket:(sec 1)
