(* Quickstart: the paper's Figure 1 end to end.

   Build a 3-switch chain, push background traffic through it so the
   queues are non-empty, then send one probe packet whose TPP is

     PUSH [Switch:SwitchID]
     PUSH [Queue:QueueSize]

   and print the per-hop queue snapshots the packet accumulated. *)

open Tpp

let ms = Time_ns.ms
let mbps x = x * 1_000_000

let () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:1 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let sender = chain.Topology.hosts.(0).(0) in
  let receiver = chain.Topology.hosts.(2).(0) in

  let src_stack = Stack.create net sender in
  let dst_stack = Stack.create net receiver in
  Probe.install_echo dst_stack;

  (* Background load: two 60 Mb/s flows (from the left host and the
     middle host) converge on the receiver's 100 Mb/s edge link, so the
     last switch's egress queue holds a standing backlog. *)
  let middle = chain.Topology.hosts.(1).(0) in
  let middle_stack = Stack.create net middle in
  let sink = Flow.Sink.attach dst_stack ~port:9000 in
  let load1 =
    Flow.cbr ~src:src_stack ~dst:receiver ~dst_port:9000 ~payload_bytes:1000
      ~rate_bps:(mbps 60)
  in
  let load2 =
    Flow.cbr ~src:middle_stack ~dst:receiver ~dst_port:9000 ~payload_bytes:1000
      ~rate_bps:(mbps 60)
  in
  Flow.start load1 ();
  Flow.start load2 ();

  (* The Figure 1 probe. *)
  let program = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n" in
  let tpp =
    match Asm.to_tpp ~mem_len:(4 * 2 * 8) program with
    | Ok tpp -> tpp
    | Error e -> failwith e
  in
  Printf.printf "Probe TPP (%d bytes on the wire):\n%s\n"
    (Prog.section_size tpp) (Asm.disassemble tpp);

  Probe.install_reply_handler src_stack (fun ~now ~seq tpp ->
      Printf.printf "t=%.3fms probe #%d executed on %d hops:\n"
        (Time_ns.to_ms_f now) seq tpp.Prog.hop;
      let rec show = function
        | swid :: qsize :: rest ->
          Printf.printf "  switch %d: queue %d bytes\n" swid qsize;
          show rest
        | _ -> ()
      in
      show (Prog.stack_values tpp));

  (* Let queues build, then probe a few times. *)
  List.iter
    (fun t -> Engine.at eng (ms t) (fun () -> Probe.send src_stack ~dst:receiver ~tpp ~seq:t))
    [ 20; 40; 60 ];

  Engine.run eng ~until:(ms 80);
  Printf.printf "\nbackground flow delivered %d packets (%.1f Mb/s goodput)\n"
    (Flow.Sink.rx_pkts sink)
    (float_of_int (Flow.Sink.rx_bytes sink) *. 8.0 /. 0.08 /. 1e6)
