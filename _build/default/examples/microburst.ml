(* Micro-burst detection (paper §2.1).

   Two on/off senders behind the same switch fire ~45 KB bursts with
   slightly different periods; only when bursts overlap does the shared
   uplink queue spike, for a few milliseconds — a classic micro-burst.
   Three observers watch the same queue:

   - oracle: 50 us control-plane sampling (ground truth);
   - TPP:    per-millisecond probes carrying PUSH [Queue:QueueSize];
   - poller: 1 s management-plane polling (today's monitoring, the
             paper's "10s of seconds at best" scaled down 10x so the
             run finishes quickly — it still misses nearly everything).

   The TPP monitor should count almost all oracle episodes; the poller
   almost none. *)

open Tpp

let ms = Time_ns.ms
let mbps x = x * 1_000_000
let run_for = Time_ns.sec 20
let threshold = 15_000 (* bytes *)

let () =
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:3 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in

  (* Burst sources: ports 2.. on switch 0 converge on its uplink (port 1). *)
  List.iter
    (fun (src_idx, dst_idx, period_ms) ->
      let src = Stack.create net (host 0 src_idx) in
      let dst = Stack.create net (host 2 dst_idx) in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let flow =
        Flow.bursts ~src ~dst:(host 2 dst_idx) ~dst_port:9000 ~payload_bytes:1400
          ~burst_pkts:30 ~period:(ms period_ms)
      in
      Flow.start flow ())
    [ (1, 1, 21); (2, 2, 24) ];

  (* TPP monitor: probes the same path once per millisecond. *)
  let mon_src = Stack.create net (host 0 0) in
  let mon_dst = Stack.create net (host 2 0) in
  Probe.install_echo mon_dst;
  let monitor =
    Microburst.create ~src:mon_src ~dst:(host 2 0) ~period:(ms 1)
      ~threshold_bytes:threshold
  in
  Microburst.start monitor ();

  (* Oracle and slow poller watch the contended queue directly. *)
  let sw0 = Net.switch net chain.Topology.switch_ids.(0) in
  let oracle = Microburst.Episode.create ~threshold in
  let poller = Microburst.Episode.create ~threshold in
  Engine.every eng ~period:(Time_ns.us 50) ~until:run_for (fun () ->
      Microburst.Episode.feed oracle (Switch.queue_bytes sw0 ~port:1));
  Engine.every eng ~period:(Time_ns.sec 1) ~until:run_for (fun () ->
      Microburst.Episode.feed poller (Switch.queue_bytes sw0 ~port:1));

  Engine.run eng ~until:run_for;

  let tpp_episodes =
    match List.assoc_opt (Switch.id sw0) (Microburst.hops monitor) with
    | Some e -> Microburst.Episode.count e
    | None -> 0
  in
  Printf.printf "micro-burst episodes over %.0fs (threshold %d bytes):\n"
    (Time_ns.to_sec_f run_for) threshold;
  Printf.printf "  ground truth (50us oracle) : %3d (max queue %6d B)\n"
    (Microburst.Episode.count oracle)
    (Microburst.Episode.max_seen oracle);
  Printf.printf "  TPP probes   (1ms, per-RTT): %3d (%d probes, %d echoed)\n"
    tpp_episodes
    (Microburst.probes_sent monitor)
    (Microburst.replies_received monitor);
  Printf.printf "  SNMP-style poll (1s)       : %3d (%d samples)\n"
    (Microburst.Episode.count poller)
    (Microburst.Episode.samples poller)
