(* Forwarding-plane debugger (paper §2.3).

   A diamond topology has two equal paths A-B-D and A-C-D; the control
   plane installed routes via B. We then plant a stale high-priority
   TCAM rule on A (left over from an old configuration, version 0) that
   silently steers the destination's traffic via C. The control plane's
   tables say everything is fine — only the dataplane knows.

   Packets carrying the 5-instruction trace TPP record, at each hop,
   the switch id, matched entry id + version, and ports. Comparing the
   trace against the intended path localises the bad rule to switch A
   in one packet. The postcard-based ndb baseline finds the same thing
   at the cost of one extra 64-byte packet per packet per hop. *)

open Tpp

let () =
  let eng = Engine.create () in
  let dia =
    Topology.diamond eng ~hosts_per_side:1 ~bps:(100 * 1_000_000)
      ~delay:(Time_ns.us 500) ()
  in
  let net = dia.Topology.m_net in
  let src = dia.Topology.src_hosts.(0) in
  let dst = dia.Topology.dst_hosts.(0) in

  (* The misconfiguration: switch A prefers port 1 (toward C) for the
     destination, via a stale rule the control plane forgot. *)
  let ingress = Net.switch net dia.Topology.ingress in
  Switch.install_tcam ingress
    { Tables.Tcam.any with
      Tables.Tcam.priority = 10;
      dst_ip = Some (dst.Net.ip, 0xFFFFFFFF) }
    { Tables.action = Tables.Forward 1; entry_id = 999; version = 0 };

  (* Both debuggers on. *)
  let postcards = Postcard.deploy net in

  let src_stack = Stack.create net src in
  let dst_stack = Stack.create net dst in
  let traces = ref [] in
  Stack.on_udp dst_stack ~port:9000 (fun ~now:_ frame ->
      match frame.Frame.tpp with
      | Some tpp -> traces := Trace.parse tpp :: !traces
      | None -> ());

  (* Application traffic, each packet wrapped with the trace TPP. *)
  let send_traced () =
    let frame =
      Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac ~src_ip:src.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:9000 ~dst_port:9000
        ~payload:(Bytes.create 200) ()
    in
    Net.host_send net (Stack.host src_stack) (Trace.attach frame ~max_hops:6)
  in
  for i = 1 to 10 do
    Engine.at eng (Time_ns.ms i) send_traced
  done;
  Engine.run eng ~until:(Time_ns.ms 50);

  let expected = Verify.control_path net ~src ~dst in
  Printf.printf "control-plane intended path: %s\n"
    (String.concat " -> " (List.map (Printf.sprintf "sw%d") expected));
  (match !traces with
  | [] -> print_endline "no traced packets arrived!"
  | trace :: _ ->
    Printf.printf "dataplane trace of one packet:\n";
    List.iter (fun h -> Format.printf "  %a@." Trace.pp_hop h) trace;
    let issues = Verify.check ~expected ~expected_version:1 ~trace in
    if issues = [] then print_endline "no mismatch (unexpected!)"
    else begin
      Printf.printf "mismatches found (%d packets traced):\n" (List.length !traces);
      List.iter (fun m -> Format.printf "  %a@." Verify.pp_mismatch m) issues
    end);
  Printf.printf
    "\noverhead: postcards %d packets / %d bytes; TPP %d extra bytes in-band per \
     packet, 0 extra packets\n"
    (Postcard.postcards postcards)
    (Postcard.overhead_bytes postcards)
    (Prog.section_size (Trace.make ~max_hops:6))
