examples/wireless_snr.mli:
