examples/ndb_trace.ml: Array Bytes Engine Format Frame List Net Postcard Printf Prog Stack String Switch Tables Time_ns Topology Tpp Trace Verify
