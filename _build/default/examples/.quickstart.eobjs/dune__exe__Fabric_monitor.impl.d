examples/fabric_monitor.ml: Array Engine Float Flow List Net Printf Probe Stack Stats Sweep Time_ns Topology Tpp
