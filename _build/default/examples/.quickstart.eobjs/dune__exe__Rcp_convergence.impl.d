examples/rcp_convergence.ml: Array Engine Flow List Net Printf Probe Rcp Rcp_star Series Stack Time_ns Topology Tpp
