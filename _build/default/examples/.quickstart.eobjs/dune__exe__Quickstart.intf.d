examples/quickstart.mli:
