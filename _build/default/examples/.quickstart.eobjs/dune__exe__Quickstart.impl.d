examples/quickstart.ml: Array Asm Engine Flow List Printf Probe Prog Stack Time_ns Topology Tpp
