examples/latency_breakdown.mli:
