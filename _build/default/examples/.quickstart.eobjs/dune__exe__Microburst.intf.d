examples/microburst.mli:
