examples/ndb_trace.mli:
