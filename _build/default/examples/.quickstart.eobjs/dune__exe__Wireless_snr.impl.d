examples/wireless_snr.ml: Array Asm Engine Float Net Printf Probe Prog Rng Sram_alloc Stack Stats Switch Time_ns Topology Tpp Tpp_asic
