examples/rcp_convergence.mli:
