examples/latency_breakdown.ml: Array Asm Engine Flow List Printf Probe Prog Result Stack Time_ns Topology Tpp
