examples/microburst.ml: Array Engine Flow List Microburst Net Printf Probe Stack Switch Time_ns Topology Tpp
