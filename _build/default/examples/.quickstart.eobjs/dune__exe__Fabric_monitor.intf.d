examples/fabric_monitor.mli:
