(* Fabric-wide monitoring with a fleet of TPPs.

   A single TPP sees one path, so a monitoring task covers the fabric
   with many (paper §3.2: end-hosts "can use multiple packets"). Every
   host in a k=4 fat-tree probes its neighbour one pod over, every
   20 ms; the collected per-hop samples become a live per-switch table
   of queue depth and link utilisation — enough to spot the planted
   core hotspot without touching any switch CLI. *)

open Tpp

let mbps x = x * 1_000_000

let () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:(mbps 100) ~delay:(Time_ns.us 20) () in
  let net = ft.Topology.f_net in
  let hosts = ft.Topology.f_hosts in
  let stacks = Array.map (Stack.create net) hosts in
  Array.iter Probe.install_echo stacks;
  Net.start_utilization_updates net ~period:(Time_ns.ms 20) ~until:(Time_ns.sec 3);

  (* Three flows from different pods converge toward host 13; their
     first shared 100 Mb/s link is at core switch 1. *)
  List.iter
    (fun src ->
      let _sink = Flow.Sink.attach stacks.(13) ~port:9000 in
      let flow =
        Flow.cbr ~src:stacks.(src) ~dst:hosts.(13) ~dst_port:9000
          ~payload_bytes:1000 ~rate_bps:(mbps 40)
      in
      Flow.start flow ())
    [ 1; 5; 9 ];

  let circuits =
    List.init (Array.length hosts) (fun i ->
        { Sweep.src = stacks.(i); dst = hosts.((i + 4) mod Array.length hosts) })
  in
  let sweep = Sweep.create ~circuits ~period:(Time_ns.ms 20) in
  Sweep.start sweep ~at:(Time_ns.ms 100) ();
  Engine.run eng ~until:(Time_ns.sec 3);

  Printf.printf "fabric view from %d probes (%d echoed):\n"
    (Sweep.probes_sent sweep)
    (Sweep.replies_received sweep);
  Printf.printf "  %-8s %8s %12s %12s %10s %8s\n" "switch" "samples" "q mean (B)"
    "q max (B)" "util mean" "drops";
  List.iter
    (fun v ->
      Printf.printf "  sw%-6d %8d %12.0f %12.0f %9.1f%% %8d\n" v.Sweep.v_switch_id
        v.Sweep.samples
        (Stats.mean v.Sweep.queue)
        (Stats.max v.Sweep.queue)
        (100.0 *. Stats.mean v.Sweep.utilization)
        v.Sweep.last_drops)
    (Sweep.views sweep);
  match
    List.sort
      (fun a b -> Float.compare (Stats.mean b.Sweep.queue) (Stats.mean a.Sweep.queue))
      (Sweep.views sweep)
  with
  | busiest :: _ ->
    Printf.printf "\nhotspot: switch %d (mean queue %.0f bytes)\n"
      busiest.Sweep.v_switch_id
      (Stats.mean busiest.Sweep.queue)
  | [] -> print_endline "no sweep data!"
