bench/demos.ml: Array Asm Bytes Engine Flow Frame Ipv4 List Mac Meta Net Option Printf Probe Prog Report Result Stack String Switch Time_ns Topology Tpp Tpp_asic Vaddr
