bench/main.mli:
