bench/report.ml: Array Filename Float List Printf String Sys Tpp_util
