(* E1 (Figure 1), E3 (Table 1) and E4 (Table 2): demonstrations that
   run live against the simulated dataplane. *)

open Tpp
module State = Tpp_asic.State
module AsicTcpu = Tpp_asic.Tcpu
module AsicMmu = Tpp_asic.Mmu

let mbps x = x * 1_000_000

(* --- E1: Figure 1 — a queue-size probe walks a congested chain -------- *)

let figure1 () =
  Report.section "E1 / Figure 1" "TPP stack execution collecting queue sizes per hop";
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:3 ~hosts_per_switch:2 ~bps:(mbps 100)
      ~delay:(Time_ns.us 50) ()
  in
  let net = chain.Topology.net in
  let host i j = chain.Topology.hosts.(i).(j) in
  (* Two flows converge on the middle uplink so queues are non-trivial. *)
  List.iter
    (fun (si, sj, rate) ->
      let src = Stack.create net (host si sj) in
      let dst = Stack.create net (host 2 sj) in
      let _sink = Flow.Sink.attach dst ~port:9000 in
      let flow =
        Flow.cbr ~src ~dst:(host 2 sj) ~dst_port:9000 ~payload_bytes:1000
          ~rate_bps:rate
      in
      Flow.start flow ())
    [ (0, 1, mbps 60); (1, 1, mbps 60) ];
  let src = Stack.create net (host 0 0) in
  let dst_stack = Stack.create net (host 2 0) in
  Probe.install_echo dst_stack;
  let program = "PUSH [Switch:SwitchID]\nPUSH [Queue:QueueSize]\n" in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:(4 * 2 * 8) program) in
  Printf.printf "probe program (executed at every hop):\n%s\n"
    (Asm.disassemble tpp);
  Report.kvi "TPP section bytes on the wire" (Prog.section_size tpp);
  let result = ref None in
  Probe.install_reply_handler src (fun ~now:_ ~seq:_ tpp -> result := Some tpp);
  Engine.at eng (Time_ns.ms 50) (fun () -> Probe.send src ~dst:(host 2 0) ~tpp ~seq:1);
  Engine.run eng ~until:(Time_ns.ms 80);
  match !result with
  | None -> print_endline "  probe did not return!"
  | Some tpp ->
    Report.sub "packet memory as the TPP traverses the network (cf. Figure 1)";
    let values = Array.of_list (Prog.stack_values tpp) in
    for hop = 0 to tpp.Prog.hop do
      let sp = tpp.Prog.base + (8 * hop) in
      let words =
        Array.to_list (Array.sub values 0 (2 * hop))
        |> List.map (Printf.sprintf "0x%08x")
        |> String.concat " "
      in
      Printf.printf "  after hop %d:  SP = 0x%02x   [%s]\n" hop sp words
    done;
    Report.sub "decoded per-hop snapshots";
    let rec show = function
      | swid :: qlen :: rest ->
        Printf.printf "  switch %d: queue %6d bytes (%5.2f ms of queueing at line rate)\n"
          swid qlen
          (float_of_int (qlen * 8) /. float_of_int (mbps 100) *. 1e3);
        show rest
      | _ -> ()
    in
    show (Prog.stack_values tpp);
    let max_queue =
      List.fold_left max 0
        (List.filteri (fun i _ -> i mod 2 = 1) (Prog.stack_values tpp))
    in
    Report.expect ~what:"per-hop queue snapshots recorded"
      ~paper:"3 hops, per-hop values"
      ~measured:(Printf.sprintf "%d hops, max q=%dB" tpp.Prog.hop max_queue)
      (tpp.Prog.hop = 3 && max_queue > 0)

(* --- E3: Table 1 — the instruction set, demonstrated ------------------- *)

let table1 () =
  Report.section "E3 / Table 1" "the TPP instruction set, each demonstrated live";
  let st = State.create ~switch_id:3 ~num_ports:4 () in
  State.force_queue_depth st ~port:1 ~bytes:9000;
  let run src =
    let tpp = Result.get_ok (Asm.to_tpp ~mem_len:16 src) in
    let frame =
      Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
        ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
        ~src_port:1 ~dst_port:2 ~tpp ~payload:Bytes.empty ()
    in
    frame.Frame.meta.Meta.out_port <- 1;
    ignore (AsicTcpu.execute st ~now:0 ~frame);
    Option.get frame.Frame.tpp
  in
  let show name meaning effect =
    Printf.printf "  %-18s %-46s %s\n" name meaning effect
  in
  Printf.printf "  %-18s %-46s %s\n" "instruction" "meaning (paper Table 1)" "demonstrated";
  let t = run "PUSH [Queue:QueueSize]" in
  show "LOAD, PUSH" "copy values from switch to packet"
    (Printf.sprintf "PUSH [Queue:QueueSize] -> packet holds %d"
       (List.hd (Prog.stack_values t)));
  let _ = run "PUSH [Queue:QueueSize]\nPOP [Sram:0]" in
  show "STORE, POP" "copy values from packet to switch"
    (Printf.sprintf "POP [Sram:0] -> switch SRAM holds %d"
       (Option.get (State.sram_get st 0)));
  ignore (State.sram_set st 1 5);
  let t = run "CSTORE [Sram:1], 5, 8" in
  let won = Prog.mem_get t 0 = 5 in
  show "CSTORE" "conditional store for atomic operations"
    (Printf.sprintf "cond 5 matched: sram=%d, old value returned (%s)"
       (Option.get (State.sram_get st 1))
       (if won then "write won" else "write lost"));
  let t = run "CEXEC [Switch:SwitchID], 0xFFFFFFFF, 99\nPUSH [Queue:QueueSize]" in
  show "CEXEC" "conditionally execute subsequent instructions"
    (Printf.sprintf "guard for switch 99 on switch 3: %d instructions ran after it"
       (List.length (Prog.stack_values t)));
  let t = run "MOV [Packet:0], 1000\nADD [Packet:0], 234\nPUSH [Packet:0]" in
  show "(arith)" "simple arithmetic in the dataplane"
    (Printf.sprintf "MOV 1000; ADD 234 -> %d" (Prog.mem_get t 0));
  Report.expect ~what:"instruction set of Table 1 supported"
    ~paper:"6 instruction families" ~measured:"all execute on the TCPU" true

(* --- E4: Table 2 — the statistics namespaces --------------------------- *)

let table2 () =
  Report.section "E4 / Table 2" "statistics namespaces and the live memory map";
  (* Give the switch some real history first. *)
  let eng = Engine.create () in
  let chain =
    Topology.chain eng ~num_switches:1 ~hosts_per_switch:2 ~bps:(mbps 100)
      ~delay:(Time_ns.us 10) ()
  in
  let net = chain.Topology.net in
  Net.start_utilization_updates net ~period:(Time_ns.ms 10) ~until:(Time_ns.ms 100);
  let src = Stack.create net chain.Topology.hosts.(0).(0) in
  let dst_host = chain.Topology.hosts.(0).(1) in
  let dst = Stack.create net dst_host in
  let _sink = Flow.Sink.attach dst ~port:9000 in
  let flow =
    Flow.cbr ~src ~dst:dst_host ~dst_port:9000 ~payload_bytes:1000
      ~rate_bps:(mbps 40)
  in
  Flow.start flow ();
  Engine.run eng ~until:(Time_ns.ms 95);
  let sw = Net.switch net chain.Topology.switch_ids.(0) in
  let st = Switch.state sw in
  let meta = Meta.create () in
  meta.Meta.out_port <- 3 (* the receiver's access port *);
  Printf.printf "  %-34s %-8s %s\n" "statistic" "address" "live value";
  let groups =
    [ ("Per-Switch", "Switch:"); ("Per-Port (packet's out link)", "Link:");
      ("Per-Queue (packet's egress queue)", "Queue:");
      ("Per-Packet", "PacketMetadata:") ]
  in
  List.iter
    (fun (title, prefix) ->
      Report.sub title;
      List.iter
        (fun (name, addr) ->
          let plen = String.length prefix in
          if String.length name >= plen && String.sub name 0 plen = prefix then begin
            let value =
              match AsicMmu.read st ~meta ~now:(Engine.now eng) addr with
              | Ok v -> string_of_int v
              | Error f -> AsicMmu.fault_message f
            in
            Printf.printf "  %-34s 0x%03x    %s\n" name addr value
          end)
        (Vaddr.all_named ()))
    groups;
  Report.sub "SRAM (control-plane partitioned)";
  Report.kvi "words available" Vaddr.sram_words;
  Report.kvi "contextual per-link slots" Vaddr.link_sram_slots;
  Report.expect ~what:"Table 2 namespaces exposed"
    ~paper:"switch/port/queue/packet" ~measured:"all mapped + SRAM" true
