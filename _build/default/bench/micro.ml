(* Bechamel microbenchmarks: host-side cost of each dataplane component
   of the model. These support E7: even in a discrete-event model, a
   5-instruction TPP execution is tens of nanoseconds of work — far
   below the packet arrival period of the simulated links — so the
   model itself never bottlenecks the experiments. *)

open Bechamel
open Toolkit
open Tpp
module State = Tpp_asic.State
module AsicTcpu = Tpp_asic.Tcpu

let collect_program =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Link:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:CapacityKbps]\n\
   PUSH [Link:Drops]\n"

let tcpu_exec_test =
  let st = State.create ~switch_id:1 ~num_ports:4 () in
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:64 collect_program) in
  let frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
      ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
      ~dst_port:2 ~tpp ~payload:Bytes.empty ()
  in
  frame.Frame.meta.Meta.out_port <- 1;
  let tpp = Option.get frame.Frame.tpp in
  Test.make ~name:"tcpu: execute 5-instruction TPP"
    (Staged.stage (fun () ->
         tpp.Prog.sp <- tpp.Prog.base;
         tpp.Prog.hop <- 0;
         ignore (AsicTcpu.execute st ~now:0 ~frame)))

let assemble_test =
  Test.make ~name:"asm: assemble 5-instruction program"
    (Staged.stage (fun () -> ignore (Asm.assemble collect_program)))

let frame_with_tpp () =
  let tpp = Result.get_ok (Asm.to_tpp ~mem_len:64 collect_program) in
  Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
    ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2) ~src_port:1
    ~dst_port:2 ~tpp ~payload:(Bytes.create 64) ()

let serialize_test =
  let frame = frame_with_tpp () in
  Test.make ~name:"frame: serialize (TPP frame)"
    (Staged.stage (fun () -> ignore (Frame.serialize frame)))

let parse_test =
  let bytes = Frame.serialize (frame_with_tpp ()) in
  Test.make ~name:"frame: parse (TPP frame)"
    (Staged.stage (fun () -> ignore (Frame.parse bytes)))

let pipeline_test =
  let sw = Switch.create ~id:1 ~num_ports:4 () in
  Switch.install_route sw
    (Ipv4.Prefix.host (Ipv4.Addr.of_host_id 2))
    ~port:2 ~entry_id:1 ~version:1;
  let frame = frame_with_tpp () in
  Test.make ~name:"switch: full pipeline (lookup+tcpu+queue)"
    (Staged.stage (fun () ->
         let tpp = Option.get frame.Frame.tpp in
         tpp.Prog.sp <- tpp.Prog.base;
         tpp.Prog.hop <- 0;
         ignore (Switch.handle_ingress sw ~now:0 ~in_port:0 frame);
         ignore (Switch.dequeue sw ~port:2)))

let instr_codec_test =
  let instr = Instr.Cstore (Instr.Sw 0x880, Instr.Pkt 8) in
  Test.make ~name:"instr: encode+decode"
    (Staged.stage (fun () -> ignore (Instr.decode (Instr.encode instr))))

let lpm_test =
  let table = Tables.L3.create () in
  let rng = Rng.create ~seed:1 in
  for i = 0 to 999 do
    let addr = Ipv4.Addr.of_int (Rng.int rng 0x7FFFFFFF) in
    Tables.L3.install table
      (Ipv4.Prefix.make addr (8 + Rng.int rng 25))
      { Tables.action = Tables.Forward (i mod 4); entry_id = i; version = 1 }
  done;
  let probe = Ipv4.Addr.of_int 0x0A0B0C0D in
  Test.make ~name:"l3: longest-prefix lookup (1k routes)"
    (Staged.stage (fun () -> ignore (Tables.L3.lookup table probe)))

(* Host-side cost scaling with program length, mirroring the 4+n cycle
   model: the per-instruction marginal cost should dominate at n=8. *)
let tcpu_scaling_tests =
  List.map
    (fun n ->
      let st = State.create ~switch_id:1 ~num_ports:4 () in
      let program = String.concat "" (List.init n (fun _ -> "PUSH [Queue:QueueSize]\n")) in
      let tpp = Result.get_ok (Asm.to_tpp ~mem_len:(4 * n) program) in
      let frame =
        Frame.udp_frame ~src_mac:(Mac.of_host_id 1) ~dst_mac:(Mac.of_host_id 2)
          ~src_ip:(Ipv4.Addr.of_host_id 1) ~dst_ip:(Ipv4.Addr.of_host_id 2)
          ~src_port:1 ~dst_port:2 ~tpp ~payload:Bytes.empty ()
      in
      frame.Frame.meta.Meta.out_port <- 1;
      let tpp = Option.get frame.Frame.tpp in
      Test.make ~name:(Printf.sprintf "tcpu: execute %d-instruction TPP" n)
        (Staged.stage (fun () ->
             tpp.Prog.sp <- tpp.Prog.base;
             tpp.Prog.hop <- 0;
             ignore (AsicTcpu.execute st ~now:0 ~frame))))
    [ 1; 2; 4; 8 ]

let all_tests =
  [ tcpu_exec_test; assemble_test; serialize_test; parse_test; pipeline_test;
    instr_codec_test; lpm_test ]
  @ tcpu_scaling_tests

let run () =
  Report.section "MICRO" "bechamel microbenchmarks (host-side model costs)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw =
    Benchmark.all cfg
      [ Instance.monotonic_clock ]
      (Test.make_grouped ~name:"tpp" ~fmt:"%s %s" all_tests)
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        match Analyze.OLS.estimates ols with
        | Some [ ns ] -> (name, ns) :: acc
        | _ -> acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Printf.printf "  %-48s %14s %16s\n" "operation" "ns/op" "ops/sec";
  List.iter
    (fun (name, ns) ->
      Printf.printf "  %-48s %14.1f %16.0f\n" name ns (1e9 /. ns))
    rows
