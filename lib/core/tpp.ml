(** Facade: one [open Tpp]-able entry point re-exporting the whole
    public API under short names.

    {v
    Tpp.Asm.to_tpp       assemble a tiny packet program
    Tpp.Switch           the TPP-capable switch ASIC model
    Tpp.Engine / Net     discrete-event network simulation
    Tpp.Rcp_star         end-host RCP via TPPs (paper S2.2)
    Tpp.Rcp              in-network RCP baseline
    Tpp.Trace / Verify   forwarding-plane debugger (paper S2.3)
    v} *)

let version = "1.0.0"

(* Substrate utilities *)
module Time_ns = Tpp_util.Time_ns
module Buf = Tpp_util.Buf
module Rng = Tpp_util.Rng
module Stats = Tpp_util.Stats
module Series = Tpp_util.Series
module Spsc = Tpp_util.Spsc
module Partition = Tpp_util.Partition
module Heap = Tpp_util.Heap
module Wheel = Tpp_util.Wheel

(* Wire formats *)
module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4
module Ethernet = Tpp_packet.Ethernet
module Udp = Tpp_packet.Udp

(* The TPP ISA (the paper's core contribution) *)
module Vaddr = Tpp_isa.Vaddr
module Instr = Tpp_isa.Instr
module Prog = Tpp_isa.Tpp
module Asm = Tpp_isa.Asm
module Programs = Tpp_isa.Programs
module Frame = Tpp_isa.Frame
module Meta = Tpp_isa.Meta

(* Switch ASIC model *)
module Switch = Tpp_asic.Switch
module Switch_state = Tpp_asic.State
module Tcpu = Tpp_asic.Tcpu
module Tcpu_compile = Tpp_asic.Compile
module Mmu = Tpp_asic.Mmu
module Tables = Tpp_asic.Tables
module Sram_alloc = Tpp_asic.Alloc

(* Simulation *)
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Pcap = Tpp_sim.Pcap
module Fault = Tpp_sim.Fault
module Parsim = Tpp_parsim.Parsim

(* End-host tasks *)
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Flow = Tpp_endhost.Flow
module Token_bucket = Tpp_endhost.Token_bucket
module Rcp_star = Tpp_endhost.Rcp_star
module Microburst = Tpp_endhost.Microburst
module Sweep = Tpp_endhost.Sweep

(* Streaming telemetry (binary postcards, sketches, reacting controller) *)
module Telemetry_wire = Tpp_telemetry.Wire
module Telemetry_sink = Tpp_telemetry.Sink
module Sketch = Tpp_telemetry.Sketch
module Collector = Tpp_telemetry.Collector
module React = Tpp_telemetry.React
module Telemetry_emit = Tpp_telemetry.Emit

(* Baselines and debugging *)
module Rcp = Tpp_rcp.Rcp
module Aimd = Tpp_rcp.Aimd
module Dctcp = Tpp_rcp.Dctcp
module Tcp = Tpp_rcp.Tcp
module Ndp = Tpp_rcp.Ndp
module Tpp_lb = Tpp_rcp.Tpp_lb
module Flowlet = Tpp_endhost.Flowlet
module Trace = Tpp_ndb.Trace
module Verify = Tpp_ndb.Verify
module Postcard = Tpp_ndb.Postcard
module Faultfind = Tpp_ndb.Faultfind

(* Paper experiments (tables and figures) *)
module Fig2 = Tpp_experiments.Fig2
module Burst_exp = Tpp_experiments.Burst_exp
module Ndb_exp = Tpp_experiments.Ndb_exp
module Overheads = Tpp_experiments.Overheads
module Ablation = Tpp_experiments.Ablation
module Fct = Tpp_experiments.Fct
module Fabric = Tpp_experiments.Fabric
module Workload = Tpp_experiments.Workload
module Cc_compare = Tpp_experiments.Cc_compare
module Consistent = Tpp_experiments.Consistent
module Faults = Tpp_experiments.Faults
module Telemetry_exp = Tpp_experiments.Telemetry_exp

(* Control plane *)
module Controller = Tpp_control.Controller
