module Time_ns = Tpp_util.Time_ns
module Switch = Tpp_asic.Switch
module Tables = Tpp_asic.Tables
module Ipv4 = Tpp_packet.Ipv4

let next_hop_ports net ~dest =
  (* BFS from the destination host over the whole node graph. *)
  let n = Net.node_count net in
  let dist = Array.make n max_int in
  dist.(dest.Net.node_id) <- 0;
  let q = Queue.create () in
  Queue.push dest.Net.node_id q;
  let rec bfs () =
    match Queue.take_opt q with
    | None -> ()
    | Some u ->
      List.iter
        (fun (_, v, _) ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v q
          end)
        (Net.neighbors net u);
      bfs ()
  in
  bfs ();
  List.filter_map
    (fun (sid, _) ->
      if dist.(sid) < max_int && dist.(sid) > 0 then begin
        (* All ports whose peer is strictly closer to the destination,
           in ascending port order. *)
        let candidates =
          List.filter_map
            (fun (port, peer, _) ->
              if dist.(peer) = dist.(sid) - 1 then Some port else None)
            (Net.neighbors net sid)
          |> List.sort Int.compare
        in
        if candidates = [] then None else Some (sid, candidates)
      end
      else None)
    (Net.switches net)

let install_dest_on_switch net ~dest ~ecmp ~version ~entry_id sid ports =
  let sw = Net.switch net sid in
  match ports with
  | [] -> ()
  | lowest :: _ ->
    (if ecmp then
       Switch.install_multipath_route sw
         (Ipv4.Prefix.host dest.Net.ip)
         ~ports ~entry_id ~version
     else
       Switch.install_route sw
         (Ipv4.Prefix.host dest.Net.ip)
         ~port:lowest ~entry_id ~version);
    Switch.install_l2 sw dest.Net.mac ~port:lowest ~entry_id ~version

(* Install order (hosts in creation order, switches in node-id order per
   host) and the per-switch entry-id counters reproduce exactly what a
   [next_hop_ports]-per-host loop would install — but the BFS runs once
   per {e attach switch}, not once per host, over preallocated scratch.
   The two views agree because a host hangs off exactly one switch:
   every distance the per-host BFS computes is the attach switch's
   distance plus one, so "peer one hop closer to the host" is "peer one
   hop closer to the attach switch" everywhere except at the attach
   switch itself, where the only candidate is the host's own port. *)
let install_routes ?(ecmp = false) ?(version = 1) net =
  let entry_counters = Hashtbl.create 8 in
  let next_entry_id sid =
    let c = match Hashtbl.find_opt entry_counters sid with Some c -> c | None -> 0 in
    Hashtbl.replace entry_counters sid (c + 1);
    c + 1
  in
  let n = Net.node_count net in
  let bfs_queue = Array.make (max n 1) 0 in
  let dist_cache : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let dist_from src =
    match Hashtbl.find_opt dist_cache src with
    | Some dist -> dist
    | None ->
      let dist = Array.make n max_int in
      dist.(src) <- 0;
      bfs_queue.(0) <- src;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let u = bfs_queue.(!head) in
        incr head;
        Net.iter_ports net u (fun ~port:_ ~peer ~peer_port:_ ->
            if dist.(peer) = max_int then begin
              dist.(peer) <- dist.(u) + 1;
              bfs_queue.(!tail) <- peer;
              incr tail
            end)
      done;
      Hashtbl.add dist_cache src dist;
      dist
  in
  let switches = Net.switches net in
  let candidates = ref [] in
  List.iter
    (fun dest ->
      match Net.neighbors net dest.Net.node_id with
      | [] -> () (* unattached host: nothing can route to it *)
      | (_, attach, attach_port) :: _ ->
        let dist = dist_from attach in
        List.iter
          (fun (sid, _) ->
            if sid = attach then
              install_dest_on_switch net ~dest ~ecmp ~version
                ~entry_id:(next_entry_id sid) sid [ attach_port ]
            else if dist.(sid) < max_int then begin
              let d = dist.(sid) in
              candidates := [];
              Net.iter_ports net sid (fun ~port ~peer ~peer_port:_ ->
                  if dist.(peer) = d - 1 then candidates := port :: !candidates);
              match List.rev !candidates with
              | [] -> ()
              | ports ->
                install_dest_on_switch net ~dest ~ecmp ~version
                  ~entry_id:(next_entry_id sid) sid ports
            end)
          switches)
    (Net.hosts net);
  List.iter (fun (_, sw) -> Switch.set_version sw version) switches

type chain = {
  net : Net.t;
  switch_ids : int array;
  hosts : Net.host array array;
}

let chain eng ?wire_check ~num_switches ~hosts_per_switch ~bps ~delay () =
  if num_switches < 1 then invalid_arg "Topology.chain: num_switches";
  let net = Net.create ?wire_check eng in
  let switch_ids =
    Array.init num_switches (fun i ->
        Net.add_switch net
          (Switch.create ~id:(i + 1) ~num_ports:(2 + hosts_per_switch) ()))
  in
  for i = 0 to num_switches - 2 do
    Net.connect net (switch_ids.(i), 1) (switch_ids.(i + 1), 0) ~bps ~delay
  done;
  let hosts =
    Array.init num_switches (fun i ->
        Array.init hosts_per_switch (fun j ->
            let h = Net.add_host net ~name:(Printf.sprintf "h%d_%d" i j) in
            Net.connect net (h.Net.node_id, 0) (switch_ids.(i), 2 + j) ~bps ~delay;
            h))
  in
  install_routes net;
  { net; switch_ids; hosts }

type dumbbell = {
  d_net : Net.t;
  left_switch : int;
  right_switch : int;
  senders : Net.host array;
  receivers : Net.host array;
}

let dumbbell eng ?wire_check ~pairs ~core_bps ~edge_bps ~delay () =
  if pairs < 1 then invalid_arg "Topology.dumbbell: pairs";
  let net = Net.create ?wire_check eng in
  let left = Net.add_switch net (Switch.create ~id:1 ~num_ports:(1 + pairs) ()) in
  let right = Net.add_switch net (Switch.create ~id:2 ~num_ports:(1 + pairs) ()) in
  Net.connect net (left, 0) (right, 0) ~bps:core_bps ~delay;
  let senders =
    Array.init pairs (fun i ->
        let h = Net.add_host net ~name:(Printf.sprintf "src%d" i) in
        Net.connect net (h.Net.node_id, 0) (left, 1 + i) ~bps:edge_bps ~delay;
        h)
  in
  let receivers =
    Array.init pairs (fun i ->
        let h = Net.add_host net ~name:(Printf.sprintf "dst%d" i) in
        Net.connect net (h.Net.node_id, 0) (right, 1 + i) ~bps:edge_bps ~delay;
        h)
  in
  install_routes net;
  { d_net = net; left_switch = left; right_switch = right; senders; receivers }

type diamond = {
  m_net : Net.t;
  ingress : int;
  upper : int;
  lower : int;
  egress : int;
  src_hosts : Net.host array;
  dst_hosts : Net.host array;
}

let diamond eng ?wire_check ~hosts_per_side ~bps ~delay () =
  if hosts_per_side < 1 then invalid_arg "Topology.diamond: hosts_per_side";
  let net = Net.create ?wire_check eng in
  let mk id = Net.add_switch net (Switch.create ~id ~num_ports:(2 + hosts_per_side) ()) in
  let a = mk 1 and b = mk 2 and c = mk 3 and d = mk 4 in
  (* A: port 0 -> B, port 1 -> C; D: port 0 -> B, port 1 -> C. *)
  Net.connect net (a, 0) (b, 0) ~bps ~delay;
  Net.connect net (a, 1) (c, 0) ~bps ~delay;
  Net.connect net (d, 0) (b, 1) ~bps ~delay;
  Net.connect net (d, 1) (c, 1) ~bps ~delay;
  let attach sw base prefix =
    Array.init hosts_per_side (fun i ->
        let h = Net.add_host net ~name:(Printf.sprintf "%s%d" prefix i) in
        Net.connect net (h.Net.node_id, 0) (sw, base + i) ~bps ~delay;
        h)
  in
  let src_hosts = attach a 2 "src" in
  let dst_hosts = attach d 2 "dst" in
  install_routes net;
  { m_net = net; ingress = a; upper = b; lower = c; egress = d; src_hosts; dst_hosts }

type random_topology = {
  r_net : Net.t;
  r_switch_ids : int array;
  r_hosts : Net.host array;
}

let random eng ?wire_check ~switches ~hosts ~extra_links ~seed ?(ecmp = false) ~bps ~delay () =
  if switches < 1 then invalid_arg "Topology.random: switches";
  if hosts < 2 then invalid_arg "Topology.random: need at least 2 hosts";
  let rng = Tpp_util.Rng.create ~seed in
  let net = Net.create ?wire_check eng in
  (* Port budget: spanning tree + extra links + attached hosts could all
     land on one switch; size generously. *)
  let num_ports = switches + extra_links + hosts + 1 in
  let switch_ids =
    Array.init switches (fun i ->
        Net.add_switch net (Switch.create ~id:(i + 1) ~num_ports ()))
  in
  let next_port = Array.make switches 0 in
  let take_port i =
    let p = next_port.(i) in
    next_port.(i) <- p + 1;
    p
  in
  let linked = Hashtbl.create 16 in
  let connect_switches a b =
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem linked key) then begin
      Hashtbl.replace linked key ();
      Net.connect net
        (switch_ids.(a), take_port a)
        (switch_ids.(b), take_port b)
        ~bps ~delay;
      true
    end
    else false
  in
  (* Random spanning tree: attach each new switch to a random earlier one. *)
  for i = 1 to switches - 1 do
    ignore (connect_switches i (Tpp_util.Rng.int rng i))
  done;
  (* Extra redundant links (skipped when the draw collides). *)
  if switches > 1 then
    for _ = 1 to extra_links do
      ignore
        (connect_switches
           (Tpp_util.Rng.int rng switches)
           (Tpp_util.Rng.int rng switches))
    done;
  let r_hosts =
    Array.init hosts (fun h ->
        let s = h mod switches in
        let host = Net.add_host net ~name:(Printf.sprintf "rh%d" h) in
        Net.connect net (host.Net.node_id, 0) (switch_ids.(s), take_port s) ~bps ~delay;
        host)
  in
  install_routes ~ecmp net;
  { r_net = net; r_switch_ids = switch_ids; r_hosts }

type fat_tree = {
  f_net : Net.t;
  k : int;
  core_ids : int array;
  agg_ids : int array array;
  edge_ids : int array array;
  f_hosts : Net.host array;
}

(* 10.pod.edge.(2 + slot): the Al-Fares fat-tree address plan. Each
   octet boundary is an aggregation boundary, which is what lets the
   aggregated FIB mode route with O(1) entries per switch. *)
let pod_ip ~pod ~edge ~slot =
  Ipv4.Addr.of_int (0x0A000000 lor (pod lsl 16) lor (edge lsl 8) lor (2 + slot))

let prefix_of ~base ~len = Ipv4.Prefix.make (Ipv4.Addr.of_int base) len

(* The two non-host entries of an aggregated switch: a Connected block
   route covering everything below it, and (unless it is a core switch,
   whose Connected route covers the world) a default route up. *)
let install_up sw ~ecmp ~half ~k =
  let ups = List.init (k - half) (fun i -> half + i) in
  if ecmp then
    Switch.install_multipath_route sw
      (prefix_of ~base:0 ~len:0)
      ~ports:ups ~entry_id:2 ~version:1
  else
    Switch.install_route sw (prefix_of ~base:0 ~len:0) ~port:half ~entry_id:2
      ~version:1

(* A distinct, well-mixed ECMP salt per switch (xorshift*-style mix of
   the node id, constants kept within 62 bits). Without one, every hop
   keys ECMP identically and the picks polarise: the flows an agg
   switch received *because* they hashed to index i all pick core
   uplink i too, oversubscribing it k/2-fold while its siblings idle.
   Replica fabrics (the /32 differential oracle, per-shard copies)
   assign identical node ids, so salted paths stay bit-identical. *)
let ecmp_salt_of node =
  let z = (node + 0x1234567) * 0x2545F4914F6CDD1D in
  let z = (z lxor (z lsr 29)) * 0x2545F4914F6CDD1D in
  (z lxor (z lsr 32)) land max_int

let fat_tree eng ?wire_check ?event_mode ?(ecmp = true) ?(addressing = `Counter)
    ?(fib = `Host32) ~k ~bps ~delay () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even, >= 2";
  if fib = `Aggregated && addressing <> `Pods then
    invalid_arg "Topology.fat_tree: aggregated FIBs need `Pods addressing";
  if addressing = `Pods && k > 256 then
    invalid_arg "Topology.fat_tree: `Pods addressing needs k <= 256";
  let half = k / 2 in
  (* (k^2 + k^2/4) k-port switches plus k^3/4 single-port hosts. *)
  let switches = (k * k) + (half * half) in
  let hosts = k * half * half in
  let net =
    Net.create ~nodes:(switches + hosts) ~ports:((switches * k) + hosts)
      ?wire_check ?event_mode eng
  in
  let next_switch_id = ref 0 in
  let mk ~num_ports =
    incr next_switch_id;
    let sw = Switch.create ~id:!next_switch_id ~num_ports () in
    let node = Net.add_switch net sw in
    Switch.set_ecmp_salt sw (ecmp_salt_of node);
    node
  in
  let core_ids = Array.init (half * half) (fun _ -> mk ~num_ports:k) in
  let agg_ids = Array.init k (fun _ -> Array.init half (fun _ -> mk ~num_ports:k)) in
  let edge_ids = Array.init k (fun _ -> Array.init half (fun _ -> mk ~num_ports:k)) in
  (* Hosts, pod-major: pod p, edge e, slot h. *)
  let f_hosts =
    Array.init (k * half * half) (fun i ->
        let pod = i / (half * half) in
        let rest = i mod (half * half) in
        let edge = rest / half and slot = rest mod half in
        let ip =
          match addressing with
          | `Counter -> None
          | `Pods -> Some (pod_ip ~pod ~edge ~slot)
        in
        let host =
          Net.add_host ?ip net ~name:(Printf.sprintf "h%d_%d_%d" pod edge slot)
        in
        Net.connect net (host.Net.node_id, 0) (edge_ids.(pod).(edge), slot) ~bps ~delay;
        host)
  in
  for pod = 0 to k - 1 do
    for edge = 0 to half - 1 do
      for agg = 0 to half - 1 do
        (* Edge uplink [half+agg] to aggregation switch [agg], which
           faces its pod's edges on its down ports. *)
        Net.connect net (edge_ids.(pod).(edge), half + agg) (agg_ids.(pod).(agg), edge)
          ~bps ~delay
      done
    done;
    for agg = 0 to half - 1 do
      for up = 0 to half - 1 do
        let core = (agg * half) + up in
        Net.connect net (agg_ids.(pod).(agg), half + up) (core_ids.(core), pod) ~bps
          ~delay
      done
    done
  done;
  (match fib with
  | `Host32 -> install_routes ~ecmp net
  | `Aggregated ->
    (* O(1) FIB entries per switch; forwarding is provably equivalent to
       the /32 oracle (same candidate port sets at every hop — DESIGN
       §15), which the scale bench and QCheck suite verify. *)
    for pod = 0 to k - 1 do
      for edge = 0 to half - 1 do
        let sw = Net.switch net edge_ids.(pod).(edge) in
        Switch.install_connected_route sw
          (prefix_of ~base:(0x0A000000 lor (pod lsl 16) lor (edge lsl 8)) ~len:24)
          ~connected:
            {
              Tables.c_base = 0x0A000000 lor (pod lsl 16) lor (edge lsl 8) lor 2;
              c_shift = 0;
              c_port_base = 0;
              c_count = half;
            }
          ~entry_id:1 ~version:1;
        install_up sw ~ecmp ~half ~k;
        Switch.set_version sw 1
      done;
      for agg = 0 to half - 1 do
        let sw = Net.switch net agg_ids.(pod).(agg) in
        Switch.install_connected_route sw
          (prefix_of ~base:(0x0A000000 lor (pod lsl 16)) ~len:16)
          ~connected:
            {
              Tables.c_base = 0x0A000000 lor (pod lsl 16);
              c_shift = 8;
              c_port_base = 0;
              c_count = half;
            }
          ~entry_id:1 ~version:1;
        install_up sw ~ecmp ~half ~k;
        Switch.set_version sw 1
      done
    done;
    Array.iter
      (fun cid ->
        let sw = Net.switch net cid in
        Switch.install_connected_route sw
          (prefix_of ~base:0x0A000000 ~len:8)
          ~connected:
            { Tables.c_base = 0x0A000000; c_shift = 16; c_port_base = 0; c_count = k }
          ~entry_id:1 ~version:1;
        Switch.set_version sw 1)
      core_ids);
  { f_net = net; k; core_ids; agg_ids; edge_ids; f_hosts }

type leaf_spine = {
  ls_net : Net.t;
  ls_leaf_ids : int array;
  ls_spine_ids : int array;
  ls_hosts : Net.host array;
  ls_leaves : int;
  ls_spines : int;
  ls_hosts_per_leaf : int;
}

let leaf_spine eng ?wire_check ?event_mode ?(ecmp = true) ~leaves ~spines
    ~hosts_per_leaf ~bps ~delay () =
  if leaves < 1 || leaves > 0x10000 then
    invalid_arg "Topology.leaf_spine: need 1 <= leaves <= 65536";
  if spines < 1 then invalid_arg "Topology.leaf_spine: spines";
  if hosts_per_leaf < 1 || hosts_per_leaf > 253 then
    invalid_arg "Topology.leaf_spine: need 1 <= hosts_per_leaf <= 253";
  let hosts = leaves * hosts_per_leaf in
  let net =
    Net.create
      ~nodes:(leaves + spines + hosts)
      ~ports:((leaves * (hosts_per_leaf + spines)) + (spines * leaves) + hosts)
      ?wire_check ?event_mode eng
  in
  let leaf_ids =
    Array.init leaves (fun l ->
        let sw = Switch.create ~id:(l + 1) ~num_ports:(hosts_per_leaf + spines) () in
        let node = Net.add_switch net sw in
        Switch.set_ecmp_salt sw (ecmp_salt_of node);
        node)
  in
  let spine_ids =
    Array.init spines (fun s ->
        Net.add_switch net (Switch.create ~id:(leaves + s + 1) ~num_ports:leaves ()))
  in
  (* 10.(leaf / 256).(leaf mod 256).(2 + slot): one /24 per leaf. *)
  let host_ip ~leaf ~slot = Ipv4.Addr.of_int (0x0A000000 lor (leaf lsl 8) lor (2 + slot)) in
  let ls_hosts =
    Array.init (leaves * hosts_per_leaf) (fun i ->
        let leaf = i / hosts_per_leaf and slot = i mod hosts_per_leaf in
        let host = Net.add_host net ~ip:(host_ip ~leaf ~slot) in
        Net.connect net (host.Net.node_id, 0) (leaf_ids.(leaf), slot) ~bps ~delay;
        host)
  in
  for leaf = 0 to leaves - 1 do
    for s = 0 to spines - 1 do
      Net.connect net (leaf_ids.(leaf), hosts_per_leaf + s) (spine_ids.(s), leaf) ~bps
        ~delay
    done
  done;
  Array.iteri
    (fun leaf lid ->
      let sw = Net.switch net lid in
      Switch.install_connected_route sw
        (prefix_of ~base:(0x0A000000 lor (leaf lsl 8)) ~len:24)
        ~connected:
          {
            Tables.c_base = 0x0A000000 lor (leaf lsl 8) lor 2;
            c_shift = 0;
            c_port_base = 0;
            c_count = hosts_per_leaf;
          }
        ~entry_id:1 ~version:1;
      let ups = List.init spines (fun s -> hosts_per_leaf + s) in
      (if ecmp then
         Switch.install_multipath_route sw (prefix_of ~base:0 ~len:0) ~ports:ups
           ~entry_id:2 ~version:1
       else
         Switch.install_route sw (prefix_of ~base:0 ~len:0) ~port:hosts_per_leaf
           ~entry_id:2 ~version:1);
      Switch.set_version sw 1)
    leaf_ids;
  Array.iter
    (fun sid ->
      let sw = Net.switch net sid in
      Switch.install_connected_route sw
        (prefix_of ~base:0x0A000000 ~len:8)
        ~connected:
          { Tables.c_base = 0x0A000000; c_shift = 8; c_port_base = 0; c_count = leaves }
        ~entry_id:1 ~version:1;
      Switch.set_version sw 1)
    spine_ids;
  {
    ls_net = net;
    ls_leaf_ids = leaf_ids;
    ls_spine_ids = spine_ids;
    ls_hosts;
    ls_leaves = leaves;
    ls_spines = spines;
    ls_hosts_per_leaf = hosts_per_leaf;
  }
