module Time_ns = Tpp_util.Time_ns
module Switch = Tpp_asic.Switch
module Ipv4 = Tpp_packet.Ipv4

let next_hop_ports net ~dest =
  (* BFS from the destination host over the whole node graph. *)
  let n = Net.node_count net in
  let dist = Array.make n max_int in
  dist.(dest.Net.node_id) <- 0;
  let q = Queue.create () in
  Queue.push dest.Net.node_id q;
  let rec bfs () =
    match Queue.take_opt q with
    | None -> ()
    | Some u ->
      List.iter
        (fun (_, v, _) ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v q
          end)
        (Net.neighbors net u);
      bfs ()
  in
  bfs ();
  List.filter_map
    (fun (sid, _) ->
      if dist.(sid) < max_int && dist.(sid) > 0 then begin
        (* All ports whose peer is strictly closer to the destination,
           in ascending port order. *)
        let candidates =
          List.filter_map
            (fun (port, peer, _) ->
              if dist.(peer) = dist.(sid) - 1 then Some port else None)
            (Net.neighbors net sid)
          |> List.sort Int.compare
        in
        if candidates = [] then None else Some (sid, candidates)
      end
      else None)
    (Net.switches net)

let install_dest_on_switch net ~dest ~ecmp ~version ~entry_id sid ports =
  let sw = Net.switch net sid in
  match ports with
  | [] -> ()
  | lowest :: _ ->
    (if ecmp then
       Switch.install_multipath_route sw
         (Ipv4.Prefix.host dest.Net.ip)
         ~ports ~entry_id ~version
     else
       Switch.install_route sw
         (Ipv4.Prefix.host dest.Net.ip)
         ~port:lowest ~entry_id ~version);
    Switch.install_l2 sw dest.Net.mac ~port:lowest ~entry_id ~version

let install_routes ?(ecmp = false) ?(version = 1) net =
  let entry_counters = Hashtbl.create 8 in
  let next_entry_id sid =
    let c = match Hashtbl.find_opt entry_counters sid with Some c -> c | None -> 0 in
    Hashtbl.replace entry_counters sid (c + 1);
    c + 1
  in
  List.iter
    (fun dest ->
      List.iter
        (fun (sid, ports) ->
          install_dest_on_switch net ~dest ~ecmp ~version ~entry_id:(next_entry_id sid)
            sid ports)
        (next_hop_ports net ~dest))
    (Net.hosts net);
  List.iter (fun (_, sw) -> Switch.set_version sw version) (Net.switches net)

type chain = {
  net : Net.t;
  switch_ids : int array;
  hosts : Net.host array array;
}

let chain eng ?wire_check ~num_switches ~hosts_per_switch ~bps ~delay () =
  if num_switches < 1 then invalid_arg "Topology.chain: num_switches";
  let net = Net.create ?wire_check eng in
  let switch_ids =
    Array.init num_switches (fun i ->
        Net.add_switch net
          (Switch.create ~id:(i + 1) ~num_ports:(2 + hosts_per_switch) ()))
  in
  for i = 0 to num_switches - 2 do
    Net.connect net (switch_ids.(i), 1) (switch_ids.(i + 1), 0) ~bps ~delay
  done;
  let hosts =
    Array.init num_switches (fun i ->
        Array.init hosts_per_switch (fun j ->
            let h = Net.add_host net ~name:(Printf.sprintf "h%d_%d" i j) in
            Net.connect net (h.Net.node_id, 0) (switch_ids.(i), 2 + j) ~bps ~delay;
            h))
  in
  install_routes net;
  { net; switch_ids; hosts }

type dumbbell = {
  d_net : Net.t;
  left_switch : int;
  right_switch : int;
  senders : Net.host array;
  receivers : Net.host array;
}

let dumbbell eng ?wire_check ~pairs ~core_bps ~edge_bps ~delay () =
  if pairs < 1 then invalid_arg "Topology.dumbbell: pairs";
  let net = Net.create ?wire_check eng in
  let left = Net.add_switch net (Switch.create ~id:1 ~num_ports:(1 + pairs) ()) in
  let right = Net.add_switch net (Switch.create ~id:2 ~num_ports:(1 + pairs) ()) in
  Net.connect net (left, 0) (right, 0) ~bps:core_bps ~delay;
  let senders =
    Array.init pairs (fun i ->
        let h = Net.add_host net ~name:(Printf.sprintf "src%d" i) in
        Net.connect net (h.Net.node_id, 0) (left, 1 + i) ~bps:edge_bps ~delay;
        h)
  in
  let receivers =
    Array.init pairs (fun i ->
        let h = Net.add_host net ~name:(Printf.sprintf "dst%d" i) in
        Net.connect net (h.Net.node_id, 0) (right, 1 + i) ~bps:edge_bps ~delay;
        h)
  in
  install_routes net;
  { d_net = net; left_switch = left; right_switch = right; senders; receivers }

type diamond = {
  m_net : Net.t;
  ingress : int;
  upper : int;
  lower : int;
  egress : int;
  src_hosts : Net.host array;
  dst_hosts : Net.host array;
}

let diamond eng ?wire_check ~hosts_per_side ~bps ~delay () =
  if hosts_per_side < 1 then invalid_arg "Topology.diamond: hosts_per_side";
  let net = Net.create ?wire_check eng in
  let mk id = Net.add_switch net (Switch.create ~id ~num_ports:(2 + hosts_per_side) ()) in
  let a = mk 1 and b = mk 2 and c = mk 3 and d = mk 4 in
  (* A: port 0 -> B, port 1 -> C; D: port 0 -> B, port 1 -> C. *)
  Net.connect net (a, 0) (b, 0) ~bps ~delay;
  Net.connect net (a, 1) (c, 0) ~bps ~delay;
  Net.connect net (d, 0) (b, 1) ~bps ~delay;
  Net.connect net (d, 1) (c, 1) ~bps ~delay;
  let attach sw base prefix =
    Array.init hosts_per_side (fun i ->
        let h = Net.add_host net ~name:(Printf.sprintf "%s%d" prefix i) in
        Net.connect net (h.Net.node_id, 0) (sw, base + i) ~bps ~delay;
        h)
  in
  let src_hosts = attach a 2 "src" in
  let dst_hosts = attach d 2 "dst" in
  install_routes net;
  { m_net = net; ingress = a; upper = b; lower = c; egress = d; src_hosts; dst_hosts }

type random_topology = {
  r_net : Net.t;
  r_switch_ids : int array;
  r_hosts : Net.host array;
}

let random eng ?wire_check ~switches ~hosts ~extra_links ~seed ?(ecmp = false) ~bps ~delay () =
  if switches < 1 then invalid_arg "Topology.random: switches";
  if hosts < 2 then invalid_arg "Topology.random: need at least 2 hosts";
  let rng = Tpp_util.Rng.create ~seed in
  let net = Net.create ?wire_check eng in
  (* Port budget: spanning tree + extra links + attached hosts could all
     land on one switch; size generously. *)
  let num_ports = switches + extra_links + hosts + 1 in
  let switch_ids =
    Array.init switches (fun i ->
        Net.add_switch net (Switch.create ~id:(i + 1) ~num_ports ()))
  in
  let next_port = Array.make switches 0 in
  let take_port i =
    let p = next_port.(i) in
    next_port.(i) <- p + 1;
    p
  in
  let linked = Hashtbl.create 16 in
  let connect_switches a b =
    let key = (min a b, max a b) in
    if a <> b && not (Hashtbl.mem linked key) then begin
      Hashtbl.replace linked key ();
      Net.connect net
        (switch_ids.(a), take_port a)
        (switch_ids.(b), take_port b)
        ~bps ~delay;
      true
    end
    else false
  in
  (* Random spanning tree: attach each new switch to a random earlier one. *)
  for i = 1 to switches - 1 do
    ignore (connect_switches i (Tpp_util.Rng.int rng i))
  done;
  (* Extra redundant links (skipped when the draw collides). *)
  if switches > 1 then
    for _ = 1 to extra_links do
      ignore
        (connect_switches
           (Tpp_util.Rng.int rng switches)
           (Tpp_util.Rng.int rng switches))
    done;
  let r_hosts =
    Array.init hosts (fun h ->
        let s = h mod switches in
        let host = Net.add_host net ~name:(Printf.sprintf "rh%d" h) in
        Net.connect net (host.Net.node_id, 0) (switch_ids.(s), take_port s) ~bps ~delay;
        host)
  in
  install_routes ~ecmp net;
  { r_net = net; r_switch_ids = switch_ids; r_hosts }

type fat_tree = {
  f_net : Net.t;
  k : int;
  core_ids : int array;
  agg_ids : int array array;
  edge_ids : int array array;
  f_hosts : Net.host array;
}

let fat_tree eng ?wire_check ?event_mode ?(ecmp = true) ~k ~bps ~delay () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even, >= 2";
  let half = k / 2 in
  let net = Net.create ?wire_check ?event_mode eng in
  let next_switch_id = ref 0 in
  let mk ~num_ports =
    incr next_switch_id;
    Net.add_switch net (Switch.create ~id:!next_switch_id ~num_ports ())
  in
  let core_ids = Array.init (half * half) (fun _ -> mk ~num_ports:k) in
  let agg_ids = Array.init k (fun _ -> Array.init half (fun _ -> mk ~num_ports:k)) in
  let edge_ids = Array.init k (fun _ -> Array.init half (fun _ -> mk ~num_ports:k)) in
  (* Hosts, pod-major: pod p, edge e, slot h. *)
  let f_hosts =
    Array.init (k * half * half) (fun i ->
        let pod = i / (half * half) in
        let rest = i mod (half * half) in
        let edge = rest / half and slot = rest mod half in
        let host = Net.add_host net ~name:(Printf.sprintf "h%d_%d_%d" pod edge slot) in
        Net.connect net (host.Net.node_id, 0) (edge_ids.(pod).(edge), slot) ~bps ~delay;
        host)
  in
  for pod = 0 to k - 1 do
    for edge = 0 to half - 1 do
      for agg = 0 to half - 1 do
        (* Edge uplink [half+agg] to aggregation switch [agg], which
           faces its pod's edges on its down ports. *)
        Net.connect net (edge_ids.(pod).(edge), half + agg) (agg_ids.(pod).(agg), edge)
          ~bps ~delay
      done
    done;
    for agg = 0 to half - 1 do
      for up = 0 to half - 1 do
        let core = (agg * half) + up in
        Net.connect net (agg_ids.(pod).(agg), half + up) (core_ids.(core), pod) ~bps
          ~delay
      done
    done
  done;
  install_routes ~ecmp net;
  { f_net = net; k; core_ids; agg_ids; edge_ids; f_hosts }
