module Frame = Tpp_isa.Frame
module State = Tpp_asic.State
module Switch = Tpp_asic.Switch
module Time_ns = Tpp_util.Time_ns
module Rng = Tpp_util.Rng

type link = int * int

(* Rules as recorded, before the topology resolves endpoints. *)
type flap_rule = {
  fl_from : Time_ns.t;
  fl_until : Time_ns.t;
  fl_period : Time_ns.span;
  fl_down : Time_ns.span;
}

type degrade_rule = {
  dg_from : Time_ns.t;
  dg_until : Time_ns.t;
  dg_factor : float;
  dg_extra : Time_ns.span;
}

type loss_rule = {
  ls_from : Time_ns.t;
  ls_until : Time_ns.t;
  ls_drop : float;
  ls_corrupt : float;
}

type rule =
  | R_set of { at : Time_ns.t; ends : link; up : bool }
  | R_flap of { ends : link; r : flap_rule }
  | R_degrade of { ends : link; r : degrade_rule }
  | R_lossy of { ends : link; r : loss_rule }
  | R_freeze of { node : int; from_ : Time_ns.t; until_ : Time_ns.t }

(* State shared by the two directions of a resolved cable. *)
type cable = {
  mutable transitions : (Time_ns.t * bool) array; (* sorted by time *)
  mutable flaps : flap_rule list;
  mutable degrades : degrade_rule list;
  mutable losses : loss_rule list;
}

type wire = { cable : cable; rng : Rng.t; draws : bool }

type cause =
  | Lost_down
  | Random_drop
  | Corrupt_header
  | Corrupt_fcs
  | Frozen_arrival
  | Restart

type t = {
  seed : int;
  mutable rules : rule list; (* reverse recording order *)
  mutable attached : bool;
  wires : (link, wire) Hashtbl.t; (* directed: keyed by sender endpoint *)
  mutable wire_slots : wire option array;
      (* the same directed wires, indexed by the net's dense global port
         slot ([Net.port_index]) — what the per-packet hooks read, so
         the fault-free majority of ports costs one array load and no
         hashing. Built at attach; [wires] stays as the by-endpoint
         view for control-plane queries ([up]). *)
  freezes : (int, (Time_ns.t * Time_ns.t) list) Hashtbl.t;
  mutable s_lost_down : int;
  mutable s_dropped : int;
  mutable s_corrupt_header : int;
  mutable s_corrupt_fcs : int;
  mutable s_frozen_arrivals : int;
  mutable s_restarts : int;
  mutable observer :
    (now:Time_ns.t -> cause:cause -> node:int -> port:int -> frame_id:int ->
     unit)
    option;
}

let create ~seed =
  {
    seed;
    rules = [];
    attached = false;
    wires = Hashtbl.create 64;
    wire_slots = [||];
    freezes = Hashtbl.create 8;
    s_lost_down = 0;
    s_dropped = 0;
    s_corrupt_header = 0;
    s_corrupt_fcs = 0;
    s_frozen_arrivals = 0;
    s_restarts = 0;
    observer = None;
  }

let set_observer t obs = t.observer <- obs

let no_port = 0xFFFF
(* Sentinel egress for events with no wire attribution (freezes). *)

let notify t ~now ~cause ~node ~port ~frame_id =
  match t.observer with
  | None -> ()
  | Some f -> f ~now ~cause ~node ~port ~frame_id

let record t r =
  if t.attached then invalid_arg "Fault: schedule already attached";
  t.rules <- r :: t.rules

let check_time name v = if v < 0 then invalid_arg ("Fault." ^ name ^ ": negative time")

let check_window name ~from_ ~until_ =
  check_time name from_;
  if until_ <= from_ then invalid_arg ("Fault." ^ name ^ ": empty window")

let link_down t ~at ends =
  check_time "link_down" at;
  record t (R_set { at; ends; up = false })

let link_up t ~at ends =
  check_time "link_up" at;
  record t (R_set { at; ends; up = true })

let flap t ~from_ ~until_ ~period ~down_for ends =
  check_window "flap" ~from_ ~until_;
  if period <= 0 then invalid_arg "Fault.flap: period must be positive";
  if down_for <= 0 || down_for > period then
    invalid_arg "Fault.flap: need 0 < down_for <= period";
  record t
    (R_flap
       { ends; r = { fl_from = from_; fl_until = until_; fl_period = period; fl_down = down_for } })

let degrade t ~from_ ~until_ ?(rate_factor = 1.0) ?(extra_delay = 0) ends =
  check_window "degrade" ~from_ ~until_;
  if not (rate_factor > 0.0 && rate_factor <= 1.0) then
    invalid_arg "Fault.degrade: rate_factor must be in (0, 1]";
  if extra_delay < 0 then invalid_arg "Fault.degrade: extra_delay must be >= 0";
  record t
    (R_degrade
       {
         ends;
         r = { dg_from = from_; dg_until = until_; dg_factor = rate_factor; dg_extra = extra_delay };
       })

let lossy t ~from_ ~until_ ?(drop = 0.0) ?(corrupt = 0.0) ends =
  check_window "lossy" ~from_ ~until_;
  let prob name p =
    if not (p >= 0.0 && p <= 1.0) then invalid_arg ("Fault.lossy: " ^ name ^ " must be in [0, 1]")
  in
  prob "drop" drop;
  prob "corrupt" corrupt;
  if drop +. corrupt > 1.0 then invalid_arg "Fault.lossy: drop + corrupt must be <= 1";
  record t
    (R_lossy { ends; r = { ls_from = from_; ls_until = until_; ls_drop = drop; ls_corrupt = corrupt } })

let freeze t ~from_ ~until_ node =
  check_window "freeze" ~from_ ~until_;
  record t (R_freeze { node; from_; until_ })

(* -- time functions ------------------------------------------------- *)

let in_window ~from_ ~until_ now = now >= from_ && now < until_

let permanent_up cable now =
  (* Latest transition at or before [now]; the array is sorted and tiny. *)
  let up = ref true in
  Array.iter (fun (at, v) -> if at <= now then up := v) cable.transitions;
  !up

let flapped_down cable now =
  List.exists
    (fun f ->
      in_window ~from_:f.fl_from ~until_:f.fl_until now
      && (now - f.fl_from) mod f.fl_period < f.fl_down)
    cable.flaps

let cable_up cable now = permanent_up cable now && not (flapped_down cable now)

let active_degrade cable now =
  List.find_opt (fun d -> in_window ~from_:d.dg_from ~until_:d.dg_until now) cable.degrades

let active_loss cable now =
  List.find_opt (fun l -> in_window ~from_:l.ls_from ~until_:l.ls_until now) cable.losses

let frozen t node ~now =
  match Hashtbl.find_opt t.freezes node with
  | None -> false
  | Some ws -> List.exists (fun (f, u) -> in_window ~from_:f ~until_:u now) ws

let up t (node, port) ~now =
  if not t.attached then invalid_arg "Fault.up: schedule not attached";
  match Hashtbl.find_opt t.wires (node, port) with
  | Some w -> cable_up w.cable now
  | None -> true

(* -- corruption ----------------------------------------------------- *)

(* Flip one random bit of the serialised frame and run it back through
   the real parser. A header/TPP/IPv4-checksum violation means the
   damage was caught structurally; a clean re-parse means it landed in
   bytes the headers don't cover, which is exactly what the Ethernet
   FCS exists for (the 4 FCS bytes are part of [Frame.wire_size] but
   carry no simulated payload). Either way the frame dies here. *)
let corrupt_frame t rng ~node ~port ~now frame =
  let bytes = Frame.serialize frame in
  let nbits = 8 * Bytes.length bytes in
  let bit = Rng.int rng nbits in
  let i = bit lsr 3 in
  Bytes.set bytes i (Char.chr (Char.code (Bytes.get bytes i) lxor (1 lsl (bit land 7))));
  let cause =
    match Frame.parse bytes with
    | Error _ -> Corrupt_header
    | Ok _ -> Corrupt_fcs
    | exception _ -> Corrupt_header
  in
  (match cause with
  | Corrupt_header -> t.s_corrupt_header <- t.s_corrupt_header + 1
  | _ -> t.s_corrupt_fcs <- t.s_corrupt_fcs + 1);
  notify t ~now ~cause ~node ~port ~frame_id:frame.Frame.id

(* -- hooks ---------------------------------------------------------- *)

let f_transit t w ~node ~port ~now frame =
  match w with
  | None -> true
  | Some w ->
    if not (cable_up w.cable now) then begin
      t.s_lost_down <- t.s_lost_down + 1;
      notify t ~now ~cause:Lost_down ~node ~port ~frame_id:frame.Frame.id;
      false
    end
    else if w.draws then begin
      (* One draw per frame whenever the wire has any loss rule, active
         or not, so the stream position depends only on the frame
         sequence — never on when windows open. *)
      let u = Rng.float w.rng 1.0 in
      match active_loss w.cable now with
      | None -> true
      | Some l ->
        if u < l.ls_drop then begin
          t.s_dropped <- t.s_dropped + 1;
          notify t ~now ~cause:Random_drop ~node ~port
            ~frame_id:frame.Frame.id;
          false
        end
        else if u < l.ls_drop +. l.ls_corrupt then begin
          corrupt_frame t w.rng ~node ~port ~now frame;
          false
        end
        else true
    end
    else true

let f_rate w ~now ~bps =
  match w with
  | None -> bps
  | Some w -> (
    match active_degrade w.cable now with
    | None -> bps
    | Some d ->
      let eff = int_of_float (float_of_int bps *. d.dg_factor) in
      if eff < 1 then 1 else eff)

let f_delay w ~now ~delay =
  match w with
  | None -> delay
  | Some w -> (
    match active_degrade w.cable now with None -> delay | Some d -> delay + d.dg_extra)

let f_ingress t ~node ~now =
  if frozen t node ~now then begin
    t.s_frozen_arrivals <- t.s_frozen_arrivals + 1;
    notify t ~now ~cause:Frozen_arrival ~node ~port:no_port ~frame_id:0;
    false
  end
  else true

(* -- attachment ----------------------------------------------------- *)

(* Private RNG stream for one directed wire: mix the schedule seed
   through splitmix64, fold in the sender endpoint, and mix again.
   Purely a function of (seed, node, port) — identical on every shard
   layout and platform. *)
let wire_rng seed (node, port) =
  let r = Rng.create ~seed in
  let mixed = Rng.bits64 r in
  let keyed = Int64.logxor mixed (Int64.of_int (((node + 1) * 1_000_003) + port)) in
  Rng.of_state (Rng.bits64 (Rng.of_state keyed))

let peer_of net (node, port) =
  let rec find = function
    | [] ->
      invalid_arg
        (Printf.sprintf "Fault.attach: node %d port %d has no link" node port)
    | (p, peer, peer_port) :: rest -> if p = port then (peer, peer_port) else find rest
  in
  find (Net.neighbors net node)

let canonical a b = if a <= b then (a, b) else (b, a)

let attach t net =
  if t.attached then invalid_arg "Fault.attach: schedule already attached";
  if Net.fault_hooks_installed net then
    invalid_arg "Fault.attach: net already has fault hooks";
  let cables : (link * link, cable) Hashtbl.t = Hashtbl.create 16 in
  let cable_of ends =
    let e1 = ends and e2 = peer_of net ends in
    let key = canonical e1 e2 in
    match Hashtbl.find_opt cables key with
    | Some c -> c
    | None ->
      let c = { transitions = [||]; flaps = []; degrades = []; losses = [] } in
      Hashtbl.add cables key c;
      c
  in
  let transitions : (link * link, (Time_ns.t * bool) list ref) Hashtbl.t = Hashtbl.create 16 in
  (* One handlers record serves every freeze rule of the schedule: the
     restart event carries only the node id through the engine's typed
     event slab (no per-rule closure). *)
  let restart_h =
    {
      Engine.on_deliver = (fun ~node:_ ~port:_ _ -> ());
      on_dequeue = (fun ~node:_ ~port:_ -> ());
      on_restart =
        (fun ~node ->
          let st = Switch.state (Net.switch net node) in
          Array.fill st.State.sram 0 (Array.length st.State.sram) 0;
          t.s_restarts <- t.s_restarts + 1;
          notify t ~now:(Engine.now (Net.engine net)) ~cause:Restart ~node
            ~port:no_port ~frame_id:0);
    }
  in
  (* Rules were recorded in reverse; walk oldest-first so overlapping
     rules resolve in insertion order. *)
  List.iter
    (fun rule ->
      match rule with
      | R_set { at; ends; up } ->
        let c = cable_of ends in
        ignore c;
        let key = canonical ends (peer_of net ends) in
        let l =
          match Hashtbl.find_opt transitions key with
          | Some l -> l
          | None ->
            let l = ref [] in
            Hashtbl.add transitions key l;
            l
        in
        l := (at, up) :: !l
      | R_flap { ends; r } ->
        let c = cable_of ends in
        c.flaps <- c.flaps @ [ r ]
      | R_degrade { ends; r } ->
        let c = cable_of ends in
        c.degrades <- c.degrades @ [ r ]
      | R_lossy { ends; r } ->
        let c = cable_of ends in
        c.losses <- c.losses @ [ r ]
      | R_freeze { node; from_; until_ } ->
        ignore (Net.switch net node);
        let prev = Option.value (Hashtbl.find_opt t.freezes node) ~default:[] in
        Hashtbl.replace t.freezes node (prev @ [ (from_, until_) ]);
        (* The restart wipe is the schedule's only engine event; gate it
           on ownership so sequential and sharded event counts agree
           (exactly one shard runs it). *)
        if Net.owns net node then begin
          let eng = Net.engine net in
          if until_ > Engine.now eng then
            Engine.restart_at eng until_ restart_h ~node
        end)
    (List.rev t.rules);
  Hashtbl.iter
    (fun key l ->
      let arr = Array.of_list (List.rev !l) in
      Array.stable_sort (fun (a, _) (b, _) -> compare a b) arr;
      (Hashtbl.find cables key).transitions <- arr)
    transitions;
  Hashtbl.iter
    (fun ((e1 : link), (e2 : link)) cable ->
      let draws = cable.losses <> [] in
      Hashtbl.replace t.wires e1 { cable; rng = wire_rng t.seed e1; draws };
      Hashtbl.replace t.wires e2 { cable; rng = wire_rng t.seed e2; draws })
    cables;
  let slots = Array.make (Net.port_count net) None in
  Hashtbl.iter
    (fun (node, port) w -> slots.(Net.port_index net node port) <- Some w)
    t.wires;
  t.wire_slots <- slots;
  t.attached <- true;
  let wire_at node port = Array.unsafe_get slots (Net.port_index net node port) in
  Net.set_fault_hooks net
    (Some
       {
         Net.f_transit =
           (fun ~node ~port ~now frame ->
             f_transit t (wire_at node port) ~node ~port ~now frame);
         f_rate = (fun ~node ~port ~now ~bps -> f_rate (wire_at node port) ~now ~bps);
         f_delay =
           (fun ~node ~port ~now ~delay -> f_delay (wire_at node port) ~now ~delay);
         f_ingress = (fun ~node ~now -> f_ingress t ~node ~now);
       })

(* -- accounting ----------------------------------------------------- *)

type stats = {
  lost_down : int;
  dropped : int;
  corrupt_header : int;
  corrupt_fcs : int;
  frozen_arrivals : int;
  restarts : int;
}

let stats t =
  {
    lost_down = t.s_lost_down;
    dropped = t.s_dropped;
    corrupt_header = t.s_corrupt_header;
    corrupt_fcs = t.s_corrupt_fcs;
    frozen_arrivals = t.s_frozen_arrivals;
    restarts = t.s_restarts;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "lost_down=%d dropped=%d corrupt_header=%d corrupt_fcs=%d frozen=%d restarts=%d" s.lost_down
    s.dropped s.corrupt_header s.corrupt_fcs s.frozen_arrivals s.restarts
