(** Deterministic, seeded fault injection for a simulated network.

    A [Fault.t] is a {e schedule}: a set of timed rules recorded up
    front and attached to a {!Net.t} before the run starts. It can

    - take a cable dark and bring it back ({!link_down}/{!link_up}),
      including periodic {!flap}s;
    - {!degrade} a link mid-run (slower rate, extra propagation delay);
    - make a wire {!lossy}: drop or bit-corrupt frames with given
      probabilities — corrupted frames are pushed through the real
      serialiser, a random bit is flipped, and the frame is dropped by
      the same wire checks every frame faces (header parse / IPv4
      checksum, or the Ethernet FCS when the damage lands in unchecked
      bytes). Corruption is never silently delivered;
    - {!freeze} a switch and restart it, wiping its TCPU-visible SRAM,
      to exercise TPP idempotence under switch reboots.

    {2 Determinism under sharding}

    Every rule is evaluated as a pure function of simulated time, and
    all randomness comes from private per-directed-wire splitmix64
    streams derived from the schedule seed and the wire's endpoint.
    Because the sequence of frames crossing a given wire is identical
    whatever the shard layout (each wire is driven entirely by the
    shard owning its transmitter), the nth frame on a wire always sees
    the nth draw of that wire's stream: a sequential run and a
    [--shards N] {!Tpp_parsim.Parsim} run produce bit-identical fault
    timelines, drop/corruption decisions, and final state. Cross-shard
    link faults need no coordination at all — both replicas evaluate
    the same time function; the loss decision is made once, on the
    transmitting side, before the frame enters the inter-shard channel
    at the YAWNS window boundary.

    The only engine events a schedule creates are the switch-restart
    wipes, and those are scheduled solely on the shard owning the
    switch — so event counts also match the sequential engine exactly.

    In a parallel run, build an identical schedule (same seed, same
    rules) inside [setup] on every shard and attach it to that shard's
    replica; a [Fault.t] must not be shared across domains. Aggregate
    {!stats} by summing the per-shard instances: every counter is
    incremented on exactly one shard. *)

module Time_ns = Tpp_util.Time_ns

type link = int * int
(** One endpoint ([node], [port]) of a full-duplex cable; either end
    names it. Rules apply to both directions. *)

type t

val create : seed:int -> t
(** An empty schedule. All drop/corruption randomness derives from
    [seed]; equal seeds and rules give bit-identical fault behavior. *)

(** {2 Rules} — record before {!attach}; raise [Invalid_argument] on
    nonsense (negative times, probabilities outside [0,1], ...). *)

val link_down : t -> at:Time_ns.t -> link -> unit
(** The cable goes dark at [at]: frames finishing serialisation onto it
    from then on are lost, as on a real dark fiber. *)

val link_up : t -> at:Time_ns.t -> link -> unit
(** Restores a cable downed by {!link_down}. *)

val flap :
  t ->
  from_:Time_ns.t ->
  until_:Time_ns.t ->
  period:Time_ns.span ->
  down_for:Time_ns.span ->
  link ->
  unit
(** Periodic flapping on [\[from_, until_)]: each [period] starts with
    [down_for] ns of darkness. [0 < down_for <= period]. Composes with
    permanent state: the cable is up only when both agree. *)

val degrade :
  t ->
  from_:Time_ns.t ->
  until_:Time_ns.t ->
  ?rate_factor:float ->
  ?extra_delay:Time_ns.span ->
  link ->
  unit
(** On [\[from_, until_)], transmissions start at
    [rate_factor * bps] (default 1.0, must be in (0, 1]) and arrivals
    take [extra_delay] additional ns of propagation (default 0, must be
    [>= 0]). Degradation only ever slows a link — it can never shrink a
    delay below the topology's, which is what keeps the conservative
    parallel lookahead sound. *)

val lossy :
  t ->
  from_:Time_ns.t ->
  until_:Time_ns.t ->
  ?drop:float ->
  ?corrupt:float ->
  link ->
  unit
(** On [\[from_, until_)], each frame crossing the wire is dropped with
    probability [drop], or bit-corrupted with probability [corrupt]
    (defaults 0; [drop +. corrupt <= 1.0]). Corrupted frames go through
    serialise → flip one random bit → re-parse: damage in checked bytes
    is caught by the header parse / IPv4 checksum, damage anywhere else
    by the frame check (FCS); either way the frame is counted and
    dropped, never delivered. *)

val freeze : t -> from_:Time_ns.t -> until_:Time_ns.t -> int -> unit
(** Switch node [id] freezes on [\[from_, until_)]: frames arriving at
    it vanish (a rebooting box). At [until_] it restarts with its
    TCPU-visible SRAM wiped to zero — TPP state built up by probes must
    be reconstructible. Raises at {!attach} when the node is a host. *)

(** {2 Attachment} *)

val attach : t -> Net.t -> unit
(** Resolves every rule against the topology, installs the injection
    hooks, and (on the owning shard only) schedules the switch-restart
    wipes. Call after the topology is wired (and after
    [Net.set_sharding] in a parallel run) but before the clock moves.
    One schedule per net, one net per schedule. Raises
    [Invalid_argument] when a rule names an unlinked port or a net that
    already has hooks. *)

val up : t -> link -> now:Time_ns.t -> bool
(** Whether the schedule considers the cable up at [now] (permanent
    state and flap phase combined). Only valid after {!attach}. *)

val frozen : t -> int -> now:Time_ns.t -> bool
(** Whether switch node [id] is inside a freeze window at [now]. *)

(** {2 Observation} *)

(** Why an injection fired; each constructor maps onto one {!stats}
    counter. *)
type cause =
  | Lost_down
  | Random_drop
  | Corrupt_header
  | Corrupt_fcs
  | Frozen_arrival
  | Restart

val set_observer :
  t ->
  (now:Time_ns.t -> cause:cause -> node:int -> port:int -> frame_id:int ->
   unit)
  option ->
  unit
(** Called at every injection, after the matching counter increments.
    [node]/[port] name the transmitting endpoint of the affected wire;
    events with no wire ([Frozen_arrival], [Restart]) carry the frozen
    switch's node and port 0xFFFF, and [frame_id] 0. The observer is
    shard-local (it sees exactly the injections this instance's
    counters count) and must not mutate simulation state — it exists
    so the streaming-telemetry layer can emit fault postcards. *)

(** {2 Accounting} — frames lost to this schedule, by cause. *)

type stats = {
  lost_down : int;     (** finished serialising onto a fault-dark wire *)
  dropped : int;       (** random loss *)
  corrupt_header : int;
      (** corrupted, caught by header parse / IPv4 checksum *)
  corrupt_fcs : int;
      (** corrupted in unchecked bytes, caught by the frame check *)
  frozen_arrivals : int;  (** arrived at a frozen switch *)
  restarts : int;         (** switch restart wipes executed *)
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
