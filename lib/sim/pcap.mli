(** Packet capture in standard pcap format.

    A capture taps host NIC traffic (everything sent or delivered at a
    set of hosts) and can be written as a classic little-endian pcap
    file (magic 0xa1b2c3d4, LINKTYPE_ETHERNET) that Wireshark & tcpdump
    open directly — handy for eyeballing TPP frames produced by the
    simulator. The writer/reader pair round-trips, which the tests
    verify without external tools. *)

module Frame = Tpp_isa.Frame
module Time_ns = Tpp_util.Time_ns

type record = {
  ts_ns : Time_ns.t;
  data : bytes;  (** the serialised frame *)
}

type t

val create : ?snaplen:int -> unit -> t
(** [snaplen] (default 65535) truncates captured frames. *)

val record : t -> now:Time_ns.t -> Frame.t -> unit
(** Serialises and stores one frame. *)

val records : t -> record list
(** In capture order. *)

val length : t -> int

val tap_host : t -> Net.t -> Net.host -> unit
(** Captures every frame delivered to this host from now on. (Sends are
    captured by calling {!record} where traffic originates, or simply
    by tapping the peer.) *)

val to_bytes : t -> bytes
(** The complete pcap file image, assembled in memory (tests diff it
    against {!parse}; prefer {!to_channel} for writing files). *)

val to_channel : t -> out_channel -> unit
(** Streams the capture into the channel record by record: constant
    scratch space (two small header buffers) regardless of capture
    size, byte-identical to {!to_bytes}. *)

val write_file : t -> string -> unit
(** Writes via {!to_channel}; closes the file even on error. *)

val parse : bytes -> (record list, string) result
(** Reads back a pcap image produced by {!to_bytes} (same endianness,
    microsecond resolution — sub-microsecond remainders are dropped). *)
