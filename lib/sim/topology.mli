(** Topology builders and control-plane route installation.

    Each builder wires a standard experiment topology and returns the
    pieces; {!install_routes} then plays the control plane: it computes
    shortest paths and installs per-host /32 L3 routes and L2 entries on
    every switch, stamping each entry with a unique id and version 1 —
    the state the forwarding-plane debugger (paper §2.3) inspects. *)

module Time_ns = Tpp_util.Time_ns

val next_hop_ports : Net.t -> dest:Net.host -> (int * int list) list
(** For every switch that can reach [dest]: its node id and the
    ascending list of equal-cost ports one hop closer to [dest] (BFS
    metric). The building block of both {!install_routes} and the
    control plane's staged updates. *)

val install_dest_on_switch :
  Net.t ->
  dest:Net.host ->
  ecmp:bool ->
  version:int ->
  entry_id:int ->
  int ->
  int list ->
  unit
(** [install_dest_on_switch net ~dest ~ecmp ~version ~entry_id sid ports]
    installs one switch's L3/L2 entries for [dest] given its candidate
    [ports] (from {!next_hop_ports}). Used by the control plane's staged
    updates. *)

val install_routes : ?ecmp:bool -> ?version:int -> Net.t -> unit
(** BFS shortest paths toward every host. Without [ecmp] (default) the
    lowest-numbered port breaks ties, deterministically; with [ecmp]
    every equal-cost port is installed as a multipath group and the
    switches spread flows by 5-tuple hash. Entries and switches are
    stamped with [version] (default 1). Must be called after all links
    exist. *)

type chain = {
  net : Net.t;
  switch_ids : int array;
  hosts : Net.host array array;  (** [hosts.(i)] = hosts on switch [i] *)
}

val chain :
  Engine.t ->
  ?wire_check:Net.wire_check ->
  num_switches:int ->
  hosts_per_switch:int ->
  bps:int ->
  delay:Time_ns.span ->
  unit ->
  chain
(** Switches in a line; switch [i] uses port 0 toward switch [i-1],
    port 1 toward switch [i+1], ports 2+ for its hosts. All links share
    [bps] and [delay]. Routes installed. *)

type dumbbell = {
  d_net : Net.t;
  left_switch : int;
  right_switch : int;
  senders : Net.host array;
  receivers : Net.host array;
}

val dumbbell :
  Engine.t ->
  ?wire_check:Net.wire_check ->
  pairs:int ->
  core_bps:int ->
  edge_bps:int ->
  delay:Time_ns.span ->
  unit ->
  dumbbell
(** [pairs] sender/receiver host pairs across a 2-switch bottleneck:
    the core link (port 0 on each switch) carries [core_bps]; host
    links carry [edge_bps]. Routes installed. *)

type diamond = {
  m_net : Net.t;
  ingress : int;       (** switch A *)
  upper : int;         (** switch B (A-B-D path) *)
  lower : int;         (** switch C (A-C-D path) *)
  egress : int;        (** switch D *)
  src_hosts : Net.host array;
  dst_hosts : Net.host array;
}

val diamond :
  Engine.t ->
  ?wire_check:Net.wire_check ->
  hosts_per_side:int ->
  bps:int ->
  delay:Time_ns.span ->
  unit ->
  diamond
(** Two equal-cost paths A-B-D and A-C-D; BFS prefers the lower port
    (via B). The ndb experiment then plants a divergent TCAM rule on A
    steering some traffic via C without the control plane knowing. *)

type fat_tree = {
  f_net : Net.t;
  k : int;
  core_ids : int array;          (** (k/2)^2 core switches *)
  agg_ids : int array array;     (** [pod].[i] *)
  edge_ids : int array array;    (** [pod].[i] *)
  f_hosts : Net.host array;      (** pod-major, k^3/4 hosts *)
}

type random_topology = {
  r_net : Net.t;
  r_switch_ids : int array;
  r_hosts : Net.host array;
}

val random :
  Engine.t ->
  ?wire_check:Net.wire_check ->
  switches:int ->
  hosts:int ->
  extra_links:int ->
  seed:int ->
  ?ecmp:bool ->
  bps:int ->
  delay:Time_ns.span ->
  unit ->
  random_topology
(** A random connected switch graph (a random spanning tree plus
    [extra_links] extra switch-switch links, no parallel links) with
    [hosts] hosts attached round-robin. Deterministic per [seed]; routes
    installed. The routing property tests fuzz the whole dataplane with
    these. *)

val fat_tree :
  Engine.t -> ?wire_check:Net.wire_check -> ?event_mode:Net.event_mode ->
  ?ecmp:bool -> ?addressing:[ `Counter | `Pods ] ->
  ?fib:[ `Host32 | `Aggregated ] -> k:int -> bps:int ->
  delay:Time_ns.span -> unit -> fat_tree
(** A k-ary fat-tree (k even, >= 2): k pods of k/2 edge and k/2
    aggregation switches, (k/2)^2 cores, k/2 hosts per edge switch —
    the datacenter fabric of the paper's motivating setting. Ports
    0..k/2-1 face down, k/2..k-1 face up; core port p faces pod p.
    Shortest-path routes installed; [ecmp] (default [true]) spreads
    flows across the equal-cost up-links by 5-tuple hash, the standard
    fabric practice. Paths stay deterministic per flow.

    [addressing] picks the host address plan: [`Counter] (default) keeps
    the flat per-net counter IPs; [`Pods] (k <= 256) assigns the
    hierarchical Al-Fares plan 10.pod.edge.(2+slot), where every octet
    boundary is an aggregation boundary.

    [fib] picks the route-installation strategy: [`Host32] (default)
    installs per-host /32s via {!install_routes} — the differential
    oracle; [`Aggregated] (requires [`Pods]) installs O(1) prefix
    entries per switch (a {!Tpp_asic.Tables.Connected} block route over
    everything below, plus an ECMP default up), forwarding every packet
    identically to the oracle with ~half * k^2 / 2 fewer FIB entries. *)

type leaf_spine = {
  ls_net : Net.t;
  ls_leaf_ids : int array;   (** leaf [l]: host ports 0..hpl-1, up ports hpl.. *)
  ls_spine_ids : int array;  (** spine [s]: port [l] faces leaf [l] *)
  ls_hosts : Net.host array; (** leaf-major *)
  ls_leaves : int;
  ls_spines : int;
  ls_hosts_per_leaf : int;
}

val leaf_spine :
  Engine.t -> ?wire_check:Net.wire_check -> ?event_mode:Net.event_mode ->
  ?ecmp:bool -> leaves:int -> spines:int -> hosts_per_leaf:int -> bps:int ->
  delay:Time_ns.span -> unit -> leaf_spine
(** A two-tier leaf-spine fabric: [leaves] (<= 65536) leaf switches of
    [hosts_per_leaf] (<= 253) hosts each, every leaf connected to every
    spine. Hosts get hierarchical addresses 10.(leaf/256).(leaf mod
    256).(2+slot) — one /24 per leaf — and routes are always
    aggregated: each leaf holds 2 FIB entries (its own subnet as a
    Connected block + an ECMP default up), each spine exactly 1 (a
    Connected route keyed by the leaf octets). FIB state is O(1) per
    switch at {e any} host count: the memory-scaling workhorse of the
    scale bench (100k hosts and beyond). *)
