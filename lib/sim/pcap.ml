module Frame = Tpp_isa.Frame
module Time_ns = Tpp_util.Time_ns

type record = { ts_ns : Time_ns.t; data : bytes }

type t = {
  snaplen : int;
  mutable entries : record list;  (* reverse capture order *)
  mutable count : int;
}

let magic = 0xA1B2C3D4
let linktype_ethernet = 1

let create ?(snaplen = 65_535) () =
  if snaplen <= 0 then invalid_arg "Pcap.create: snaplen";
  { snaplen; entries = []; count = 0 }

let record t ~now frame =
  let data = Frame.serialize frame in
  let data =
    if Bytes.length data > t.snaplen then Bytes.sub data 0 t.snaplen else data
  in
  t.entries <- { ts_ns = now; data } :: t.entries;
  t.count <- t.count + 1

let records t = List.rev t.entries
let length t = t.count

let tap_host t net host =
  let previous = host.Net.receive in
  host.Net.receive <-
    (fun ~now frame ->
      record t ~now frame;
      previous ~now frame);
  ignore net

(* Header encoders over little scratch buffers; both the streaming and
   the in-memory writers assemble the same images from these. *)
let w32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let fill_global b snaplen =
  w32 b 0 magic;
  Bytes.set_uint16_le b 4 2;
  Bytes.set_uint16_le b 6 4;
  w32 b 8 0 (* thiszone *);
  w32 b 12 0 (* sigfigs *);
  w32 b 16 snaplen;
  w32 b 20 linktype_ethernet

let fill_record_header b { ts_ns; data } =
  w32 b 0 (ts_ns / 1_000_000_000);
  w32 b 4 (ts_ns mod 1_000_000_000 / 1_000);
  w32 b 8 (Bytes.length data);
  w32 b 12 (Bytes.length data)

let to_channel t oc =
  (* Streams straight into the channel: one 24-byte and one reused
     16-byte scratch buffer regardless of capture size, instead of
     assembling the whole file in memory first. *)
  let gh = Bytes.create 24 in
  fill_global gh t.snaplen;
  output_bytes oc gh;
  let rh = Bytes.create 16 in
  List.iter
    (fun r ->
      fill_record_header rh r;
      output_bytes oc rh;
      output_bytes oc r.data)
    (records t)

let to_bytes t =
  let buf = Buffer.create (1024 + (t.count * 96)) in
  let gh = Bytes.create 24 in
  fill_global gh t.snaplen;
  Buffer.add_bytes buf gh;
  let rh = Bytes.create 16 in
  List.iter
    (fun r ->
      fill_record_header rh r;
      Buffer.add_bytes buf rh;
      Buffer.add_bytes buf r.data)
    (records t);
  Buffer.to_bytes buf

let write_file t path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> to_channel t oc)

let rd16 b off = Bytes.get_uint16_le b off
let rd32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFF_FFFF

let parse b =
  let len = Bytes.length b in
  if len < 24 then Error "pcap too short for global header"
  else if rd32 b 0 <> magic then Error "bad pcap magic (expected little-endian classic)"
  else if rd16 b 4 <> 2 || rd16 b 6 <> 4 then Error "unsupported pcap version"
  else if rd32 b 20 <> linktype_ethernet then Error "unsupported link type"
  else begin
    let rec go off acc =
      if off = len then Ok (List.rev acc)
      else if off + 16 > len then Error "truncated record header"
      else begin
        let sec = rd32 b off in
        let usec = rd32 b (off + 4) in
        let incl = rd32 b (off + 8) in
        if off + 16 + incl > len then Error "truncated record body"
        else
          go
            (off + 16 + incl)
            ({ ts_ns = (sec * 1_000_000_000) + (usec * 1_000);
               data = Bytes.sub b (off + 16) incl }
            :: acc)
      end
    in
    go 24 []
  end
