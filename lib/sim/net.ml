module Frame = Tpp_isa.Frame
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4
module Time_ns = Tpp_util.Time_ns
module Buf = Tpp_util.Buf
module Ring = Tpp_util.Ring
module Tpp = Tpp_isa.Tpp

type host = {
  host_name : string;
  node_id : int;
  mac : Mac.t;
  ip : Ipv4.Addr.t;
  mutable receive : now:Time_ns.t -> Frame.t -> unit;
  mutable nic_q : Frame.t Ring.t option;
      (* NIC transmit queue, materialized on the host's first send: an
         idle host in a million-host fabric carries a [None], not a
         ring. Switches queue in the ASIC and never use this. *)
}

type node_impl = Switch_n of Switch.t | Host_n of host

type wire_check = [ `Always | `Cached | `Off ]

type event_mode = [ `Typed | `Closure ]

(* When this net is one shard of a parallel run: which shard each node
   belongs to, which shard this instance executes, and how a frame whose
   link crosses into another shard leaves this one. *)
type sharding = {
  owner : int array;  (* node id -> owning shard *)
  shard : int;        (* the shard this Net instance runs *)
  emit :
    arrival:Time_ns.t -> emitted:Time_ns.t -> dst:int * int -> Frame.t -> unit;
}

(* Injection points for the fault subsystem ({!Fault}). Kept as a
   neutral record of closures so [Net] needs no knowledge of the
   schedule representation (and [Fault] can depend on [Net] without a
   cycle). All four are pure functions of simulated time plus per-wire
   private RNG streams, which is what keeps faulted runs bit-identical
   between the sequential engine and any shard count. *)
type fault_hooks = {
  f_transit : node:int -> port:int -> now:Time_ns.t -> Frame.t -> bool;
      (* Fate of a frame finishing serialisation onto the wire behind
         ([node], [port]) at [now]: [false] = lost (fault-downed link,
         random drop, or corruption caught by the wire checks). The
         hook does its own accounting. *)
  f_rate : node:int -> port:int -> now:Time_ns.t -> bps:int -> int;
      (* Effective transmit rate at transmission start. *)
  f_delay : node:int -> port:int -> now:Time_ns.t -> delay:Time_ns.span -> Time_ns.span;
      (* Effective propagation delay at transmission end. Must never
         return less than [delay]: the parallel scheduler's lookahead
         is computed from the undegraded delays. *)
  f_ingress : node:int -> now:Time_ns.t -> bool;
      (* [false] = the node is frozen; a frame arriving now vanishes. *)
}

(* Link/port state lives in structure-of-arrays form, indexed by a
   global port slot ([pbase.(node) + port]): one packed int for the
   peer endpoint, flat ints for rate and propagation delay, one Frame
   slot for the in-flight frame and one byte of flags per port. A port
   costs ~33 bytes instead of a boxed record + ring (~150 bytes), and
   — crucially for million-host fabrics — nothing here is a closure or
   per-link heap object. Fault state is keyed by the same slot index
   ({!port_index}), so the hot fault hooks are array lookups too. *)
type t = {
  eng : Engine.t;
  wire_check : wire_check;
  event_mode : event_mode;
  handlers : Engine.handlers;
      (* the net's one handlers record: every typed event carries it *)
  no_frame : Frame.t;  (* dummy parked in [in_flight] between txs *)
  mutable impls : node_impl array;  (* index = node id; first node_count live *)
  mutable pbase : int array;        (* node id -> first global port slot *)
  mutable np : int array;           (* node id -> number of ports *)
  mutable node_count : int;
  mutable port_count : int;         (* global port slots in use *)
  mutable lp_peer : int array;
      (* packed peer endpoint per slot: [(node lsl 21) lor port], -1 =
         unconnected. 21 bits of port leaves 41 bits of node id. *)
  mutable lp_bps : int array;
  mutable lp_delay : int array;     (* propagation delay, ns *)
  mutable lp_inflight : Frame.t array;
      (* the frame occupying the link while the busy flag is set; the
         per-net dummy otherwise, so a delivered frame is never pinned
         by its old port. A plain slot, not an option: the
         one-outstanding-tx-per-port invariant makes it unambiguous,
         and a [Some] per transmission would put an allocation back on
         the hot path. *)
  mutable lp_flags : Bytes.t;
      (* bit 0 = tx busy, bit 1 = link down ('\000' = idle and up,
         so freshly grown slots need no initialisation) *)
  mutable host_counter : int;
  mutable delivered : int;
  mutable deliver_hooks : (host -> Frame.t -> unit) array;
      (* registration order; rebuilt on (rare) registration *)
  mutable sharding : sharding option;  (* None = ordinary sequential net *)
  mutable fault : fault_hooks option;  (* None = fault-free: no per-packet cost *)
  node_hint : int;  (* expected node/port counts: builders that know the *)
  port_hint : int;  (* final size pass them so the arrays never over-grow *)
  checked_shapes : (int, unit) Hashtbl.t;
      (* header-layout keys already validated in [`Cached] mode *)
  scratch : Buf.Writer.t;  (* reused by the cached wire check *)
}

let engine t = t.eng

let max_port_bits = 21
let port_mask = (1 lsl max_port_bits) - 1
let[@inline] pack_peer node port = (node lsl max_port_bits) lor port
let[@inline] peer_node packed = packed lsr max_port_bits
let[@inline] peer_port packed = packed land port_mask

let[@inline] flag_busy f = f land 1 <> 0
let[@inline] flag_down f = f land 2 <> 0

let[@inline] flags t i = Char.code (Bytes.unsafe_get t.lp_flags i)
let[@inline] set_flags t i f = Bytes.unsafe_set t.lp_flags i (Char.unsafe_chr f)

let set_sharding t ~owner ~shard ~emit =
  if Array.length owner < t.node_count then
    invalid_arg "Net.set_sharding: owner array shorter than node table";
  if shard < 0 then invalid_arg "Net.set_sharding: shard";
  t.sharding <- Some { owner; shard; emit }

let owns t id =
  if id < 0 || id >= t.node_count then invalid_arg "Net.owns: unknown node id";
  match t.sharding with
  | None -> true
  | Some s -> Array.unsafe_get s.owner id = s.shard

let[@inline] impl t id =
  if id < 0 || id >= t.node_count then invalid_arg "Net: unknown node id";
  Array.unsafe_get t.impls id

(* Global port slot of (node, port), bounds-checked. *)
let[@inline] gp t id port =
  if id < 0 || id >= t.node_count then invalid_arg "Net: unknown node id";
  if port < 0 || port >= Array.unsafe_get t.np id then
    invalid_arg "Net: port out of range";
  Array.unsafe_get t.pbase id + port

(* Trusted variant for the dataplane cycle, where (node, port) pairs
   were validated when the event (or table entry) was created. *)
let[@inline] gp_trusted t id port = Array.unsafe_get t.pbase id + port

let port_index = gp
let port_count t = t.port_count
let num_ports t id =
  if id < 0 || id >= t.node_count then invalid_arg "Net: unknown node id";
  Array.unsafe_get t.np id

let register t i ~ports =
  let id = t.node_count in
  if id >= Array.length t.impls then begin
    let cap = max t.node_hint (max 8 (2 * Array.length t.impls)) in
    let impls = Array.make cap i in
    Array.blit t.impls 0 impls 0 id;
    t.impls <- impls;
    let pbase = Array.make cap 0 in
    Array.blit t.pbase 0 pbase 0 id;
    t.pbase <- pbase;
    let np = Array.make cap 0 in
    Array.blit t.np 0 np 0 id;
    t.np <- np
  end;
  t.impls.(id) <- i;
  t.pbase.(id) <- t.port_count;
  t.np.(id) <- ports;
  t.node_count <- id + 1;
  let needed = t.port_count + ports in
  if needed > Array.length t.lp_peer then begin
    let cap =
      max t.port_hint (max 16 (max needed (2 * Array.length t.lp_peer)))
    in
    let peer = Array.make cap (-1) in
    Array.blit t.lp_peer 0 peer 0 t.port_count;
    t.lp_peer <- peer;
    let bps = Array.make cap 0 in
    Array.blit t.lp_bps 0 bps 0 t.port_count;
    t.lp_bps <- bps;
    let delay = Array.make cap 0 in
    Array.blit t.lp_delay 0 delay 0 t.port_count;
    t.lp_delay <- delay;
    let inflight = Array.make cap t.no_frame in
    Array.blit t.lp_inflight 0 inflight 0 t.port_count;
    t.lp_inflight <- inflight;
    let fl = Bytes.make cap '\000' in
    Bytes.blit t.lp_flags 0 fl 0 t.port_count;
    t.lp_flags <- fl
  end
  else
    for s = t.port_count to needed - 1 do
      t.lp_peer.(s) <- -1;
      t.lp_bps.(s) <- 0;
      t.lp_delay.(s) <- 0;
      t.lp_inflight.(s) <- t.no_frame;
      Bytes.set t.lp_flags s '\000'
    done;
  t.port_count <- needed;
  id

let add_switch t sw = register t (Switch_n sw) ~ports:(Switch.num_ports sw)

(* One shared no-op so idle hosts don't each allocate a closure. *)
let default_receive ~now:_ _ = ()

let add_host ?name ?ip ?mac t =
  t.host_counter <- t.host_counter + 1;
  let n = t.host_counter in
  let id = t.node_count in
  let host =
    {
      host_name = (match name with Some s -> s | None -> "");
      node_id = id;
      mac = (match mac with Some m -> m | None -> Mac.of_host_id n);
      ip = (match ip with Some a -> a | None -> Ipv4.Addr.of_host_id n);
      receive = default_receive;
      nic_q = None;
    }
  in
  let registered = register t (Host_n host) ~ports:1 in
  assert (registered = id);
  host

let switch t id =
  match impl t id with
  | Switch_n sw -> sw
  | Host_n _ -> invalid_arg "Net.switch: node is a host"

let host_of t id =
  match impl t id with
  | Host_n h -> h
  | Switch_n _ -> invalid_arg "Net.host_of: node is a switch"

let node_count t = t.node_count

let hosts t =
  let acc = ref [] in
  for id = t.node_count - 1 downto 0 do
    match Array.unsafe_get t.impls id with
    | Host_n h -> acc := h :: !acc
    | Switch_n _ -> ()
  done;
  !acc

let switches t =
  let acc = ref [] in
  for id = t.node_count - 1 downto 0 do
    match Array.unsafe_get t.impls id with
    | Switch_n sw -> acc := (id, sw) :: !acc
    | Host_n _ -> ()
  done;
  !acc

let connect t (a, pa) (b, pb) ~bps ~delay =
  if bps <= 0 then invalid_arg "Net.connect: rate";
  let ia = gp t a pa and ib = gp t b pb in
  if t.lp_peer.(ia) >= 0 || t.lp_peer.(ib) >= 0 then
    invalid_arg "Net.connect: port already linked";
  if pa > port_mask || pb > port_mask then invalid_arg "Net.connect: port";
  t.lp_peer.(ia) <- pack_peer b pb;
  t.lp_bps.(ia) <- bps;
  t.lp_delay.(ia) <- delay;
  t.lp_peer.(ib) <- pack_peer a pa;
  t.lp_bps.(ib) <- bps;
  t.lp_delay.(ib) <- delay;
  (match Array.unsafe_get t.impls a with
  | Switch_n sw -> Switch.set_port_capacity sw ~port:pa ~bps
  | Host_n _ -> ());
  match Array.unsafe_get t.impls b with
  | Switch_n sw -> Switch.set_port_capacity sw ~port:pb ~bps
  | Host_n _ -> ()

let neighbors t id =
  let base = (ignore (impl t id); Array.unsafe_get t.pbase id) in
  let acc = ref [] in
  for port = Array.unsafe_get t.np id - 1 downto 0 do
    let pk = t.lp_peer.(base + port) in
    if pk >= 0 then acc := (port, peer_node pk, peer_port pk) :: !acc
  done;
  !acc

let iter_ports t id f =
  ignore (impl t id);
  let base = Array.unsafe_get t.pbase id in
  for port = 0 to Array.unsafe_get t.np id - 1 do
    let pk = Array.unsafe_get t.lp_peer (base + port) in
    if pk >= 0 then f ~port ~peer:(peer_node pk) ~peer_port:(peer_port pk)
  done

let iter_links t f =
  for id = 0 to t.node_count - 1 do
    let base = Array.unsafe_get t.pbase id in
    for port = 0 to Array.unsafe_get t.np id - 1 do
      let pk = Array.unsafe_get t.lp_peer (base + port) in
      if pk >= 0 then
        f ~node:id ~port ~peer:(peer_node pk) ~peer_port:(peer_port pk)
          ~bps:(Array.unsafe_get t.lp_bps (base + port))
          ~delay:(Array.unsafe_get t.lp_delay (base + port))
    done
  done

(* ceil(bits * 1e9 / bps) in exact integer arithmetic. The product
   overflows 63-bit ints only for frames beyond ~1.1 GB, where the float
   fallback's 52-bit mantissa error (sub-ppm) is irrelevant anyway. *)
let tx_time_of_bits ~bps bits =
  if bits < max_int / 1_000_000_000 then
    ((bits * 1_000_000_000) + bps - 1) / bps
  else int_of_float (ceil (float_of_int bits *. 1e9 /. float_of_int bps))

let tx_time_ns ~bps frame = tx_time_of_bits ~bps (Frame.wire_size frame * 8)

(* Pulls the next frame to transmit from a node's egress at [port];
   [t.no_frame] (compared physically) when the egress is empty, so the
   per-transmission path allocates no option box. *)
let next_frame t id port =
  match Array.unsafe_get t.impls id with
  | Switch_n sw -> Switch.dequeue_or sw ~port ~default:t.no_frame
  | Host_n h -> (
    match h.nic_q with
    | None -> t.no_frame
    | Some r -> Ring.take_or r ~default:t.no_frame)

(* The dataplane cycle — deliver, start transmissions, complete them —
   as mutually recursive functions over plain (node, port) ints. In
   [`Typed] mode each step schedules the next through the engine's
   event slab (the net's one [handlers] record dispatches back here),
   so a frame hop costs zero minor allocations in the engine; [`Closure]
   mode schedules the same steps at the same timestamps as closures,
   reproducing the old per-event allocation profile for A/B
   measurement. The event sequence — and therefore the simulation — is
   bit-identical either way. *)
let rec deliver t id port frame =
  let alive =
    match t.fault with
    | None -> true
    | Some h -> h.f_ingress ~node:id ~now:(Engine.now t.eng)
  in
  if alive then begin
    match Array.unsafe_get t.impls id with
    | Host_n h ->
      t.delivered <- t.delivered + 1;
      let hooks = t.deliver_hooks in
      for i = 0 to Array.length hooks - 1 do
        (Array.unsafe_get hooks i) h frame
      done;
      h.receive ~now:(Engine.now t.eng) frame;
      (* The frame reached its destination and every handler has run:
         if it came from a pool, its buffer is free for the next send.
         (No-op for unpooled frames, so receivers that retain frames —
         the tests do — are unaffected: they never see pooled ones.) *)
      Frame.recycle frame
    | Switch_n sw -> (
      match Switch.handle_ingress sw ~now:(Engine.now t.eng) ~in_port:port frame with
      | Switch.Dropped _ -> Frame.recycle frame
      | Switch.Queued out_ports -> List.iter (fun p -> maybe_start_tx t id p) out_ports)
  end
  else Frame.recycle frame (* frozen node: the frame vanishes *)

and maybe_start_tx t id port =
  let i = gp_trusted t id port in
  if Array.unsafe_get t.lp_peer i >= 0 && not (flag_busy (flags t i)) then begin
    let frame = next_frame t id port in
    if frame != t.no_frame then begin
      set_flags t i (flags t i lor 1);
      Array.unsafe_set t.lp_inflight i frame;
      let bps =
        let bps = Array.unsafe_get t.lp_bps i in
        match t.fault with
        | None -> bps
        | Some h -> h.f_rate ~node:id ~port ~now:(Engine.now t.eng) ~bps
      in
      let tx = tx_time_ns ~bps frame in
      let at = Time_ns.add (Engine.now t.eng) tx in
      match t.event_mode with
      | `Typed -> Engine.dequeue_at t.eng at t.handlers ~node:id ~port
      | `Closure -> Engine.at t.eng at (fun () -> tx_complete t id port)
    end
  end

(* A transmission finishes serialising onto the wire: the frame either
   dies (dark link, fault) or is scheduled to arrive at the peer after
   the propagation delay; then the port tries to start its next tx. *)
and tx_complete t id port =
  let i = gp_trusted t id port in
  let frame = Array.unsafe_get t.lp_inflight i in
  Array.unsafe_set t.lp_inflight i t.no_frame;
  let f = flags t i in
  set_flags t i (f land lnot 1);
  (* A frame finishing serialisation onto a dark link is lost; the
     fault schedule may also lose it (dark window, random drop,
     corruption caught by the wire checks). *)
  let survives =
    (not (flag_down f))
    && (match t.fault with
       | None -> true
       | Some h -> h.f_transit ~node:id ~port ~now:(Engine.now t.eng) frame)
  in
  if not survives then Frame.recycle frame;
  (if survives then begin
     let delay =
       let delay = Array.unsafe_get t.lp_delay i in
       match t.fault with
       | None -> delay
       | Some h -> h.f_delay ~node:id ~port ~now:(Engine.now t.eng) ~delay
     in
     let pk = Array.unsafe_get t.lp_peer i in
     if pk >= 0 then begin
       let pn = peer_node pk and pp = peer_port pk in
       match t.sharding with
       | None -> schedule_deliver t delay pn pp frame
       | Some s ->
         (* Shard-boundary link: the arrival belongs to the peer's
            owning shard. Hand the frame (with its absolute arrival
            time) to the inter-shard channel instead of the local
            event queue; the owner schedules the delivery when it
            drains its inbox. Same event count either way: one
            delivery event, on exactly one shard. *)
         if Array.unsafe_get s.owner pn = s.shard then
           schedule_deliver t delay pn pp frame
         else begin
           (* The emission time rides along so the owning shard can
              backdate the delivery's tie-break stamp: a local push at
              the same arrival nanosecond must order against this frame
              exactly as the sequential run would (by emission order),
              not by when the owner happens to drain its inbox.

              [emit] consumes the frame: the hook must copy whatever it
              needs (the boundary protocol blits the wire image into a
              chunk) and never retain the frame itself, because it is
              recycled into its local pool the moment the hook returns
              — the emitter-side half of the cross-domain leak fix. *)
           s.emit
             ~arrival:(Time_ns.add (Engine.now t.eng) delay)
             ~emitted:(Engine.now t.eng) ~dst:(pn, pp) frame;
           Frame.recycle frame
         end
     end
   end);
  maybe_start_tx t id port

and schedule_deliver t delay pn pp frame =
  let at = Time_ns.add (Engine.now t.eng) delay in
  match t.event_mode with
  | `Typed -> Engine.deliver_at t.eng at t.handlers ~node:pn ~port:pp frame
  | `Closure -> Engine.at t.eng at (fun () -> deliver t pn pp frame)

let create ?(nodes = 0) ?(ports = 0) ?(wire_check = `Always)
    ?(event_mode = `Typed) eng =
  let no_frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 0) ~dst_mac:(Mac.of_host_id 0)
      ~src_ip:(Ipv4.Addr.of_host_id 0) ~dst_ip:(Ipv4.Addr.of_host_id 0)
      ~src_port:0 ~dst_port:0 ~payload:Bytes.empty ()
  in
  let checked_shapes = Hashtbl.create 32 in
  let scratch = Buf.Writer.create ~capacity:256 () in
  (* The handlers close over the net they dispatch into, so the record
     and the net are built as one recursive value (allocated once per
     net, not per event). *)
  let rec t =
    {
      eng;
      wire_check;
      event_mode;
      handlers =
        {
          Engine.on_deliver = (fun ~node ~port frame -> deliver t node port frame);
          on_dequeue = (fun ~node ~port -> tx_complete t node port);
          on_restart = (fun ~node:_ -> ());
        };
      no_frame;
      impls = [||];
      pbase = [||];
      np = [||];
      node_count = 0;
      port_count = 0;
      lp_peer = [||];
      lp_bps = [||];
      lp_delay = [||];
      lp_inflight = [||];
      lp_flags = Bytes.empty;
      host_counter = 0;
      delivered = 0;
      deliver_hooks = [||];
      sharding = None;
      fault = None;
      node_hint = nodes;
      port_hint = ports;
      checked_shapes;
      scratch;
    }
  in
  t

let event_mode t = t.event_mode

let schedule_delivery ?emitted t ~arrival ~dst frame =
  let dn, dp = dst in
  ignore (gp t dn dp);
  match t.event_mode with
  | `Typed ->
    Engine.deliver_at ?emitted t.eng arrival t.handlers ~node:dn ~port:dp frame
  | `Closure ->
    Engine.at ?emitted t.eng arrival (fun () -> deliver t dn dp frame)

(* One key per header *layout*: two frames with the same key serialise
   through exactly the same write/parse paths and length computations,
   differing only in field values the codecs treat uniformly. splitmix64
   mixing (via [Frame.flow_hash_values]) keeps distinct layouts from
   colliding in practice; a collision merely skips a redundant check. *)
let shape_key (frame : Frame.t) =
  let tpp_key =
    match frame.Frame.tpp with
    | None -> 0
    | Some s ->
      1
      lor (Array.length s.Tpp.program lsl 1)
      lor (Tpp.mem_len s lsl 17)
      lor (s.Tpp.base lsl 33)
      lor ((match s.Tpp.addr_mode with Tpp.Stack -> 0 | Tpp.Hop_addressed -> 1)
           lsl 49)
      lor (s.Tpp.perhop_len lsl 50)
  in
  let l3_key =
    (if Frame.has_ip frame then 1 else 0)
    lor (if Frame.has_udp frame then 2 else 0)
    lor (Frame.payload_len frame lsl 2)
  in
  Frame.flow_hash_values ~src:(Frame.ethertype frame) ~dst:tpp_key
    ~proto:l3_key ~src_port:0 ~dst_port:0

let wire_check_fail e =
  failwith ("Net.host_send: frame failed wire round-trip: " ^ e)

let host_send t host frame =
  (match t.sharding with
  | Some s when Array.unsafe_get s.owner host.node_id <> s.shard ->
    invalid_arg "Net.host_send: host is owned by another shard"
  | _ -> ());
  let frame =
    match t.wire_check with
    | `Off -> frame
    | `Always -> (
      (* Full-strength: every packet becomes its wire image, so the
         receiver sees exactly what a byte-faithful network would carry. *)
      match Frame.parse (Frame.serialize frame) with
      | Ok f -> f
      | Error e -> wire_check_fail e)
    | `Cached ->
      (* Validate each distinct header layout once; frames of an
         already-validated shape forward structurally with no
         serialisation at all on the steady-state path. *)
      let key = shape_key frame in
      if not (Hashtbl.mem t.checked_shapes key) then begin
        Buf.Writer.reset t.scratch;
        Frame.serialize_into t.scratch frame;
        match
          Frame.parse ~len:(Buf.Writer.length t.scratch)
            (Buf.Writer.buffer t.scratch)
        with
        | Ok _ -> Hashtbl.replace t.checked_shapes key ()
        | Error e -> wire_check_fail e
      end;
      frame
  in
  let q =
    match host.nic_q with
    | Some r -> r
    | None ->
      let r = Ring.create ~dummy:t.no_frame () in
      host.nic_q <- Some r;
      r
  in
  Ring.push q frame;
  maybe_start_tx t host.node_id 0

let set_link_up t (id, port) up =
  let i = gp t id port in
  let pk = t.lp_peer.(i) in
  if pk < 0 then invalid_arg "Net.set_link_up: port has no link"
  else begin
    let pid = peer_node pk and pport = peer_port pk in
    let j = gp t pid pport in
    let set k =
      let f = flags t k in
      set_flags t k (if up then f land lnot 2 else f lor 2)
    in
    set i;
    set j;
    if up then begin
      maybe_start_tx t id port;
      maybe_start_tx t pid pport
    end
  end

let link_up t (id, port) = not (flag_down (flags t (gp t id port)))

let link_delay t (id, port) =
  let i = gp t id port in
  if t.lp_peer.(i) < 0 then invalid_arg "Net.link_delay: port has no link";
  t.lp_delay.(i)

let start_utilization_updates t ~period ~until =
  (* On a sharded net only the owned switches tick (each shard runs its
     own periodic event for its slice of the fabric). *)
  Engine.every t.eng ~period ~until (fun () ->
      List.iter
        (fun (id, sw) ->
          if owns t id then
            State.update_utilization (Switch.state sw) ~window_ns:period)
        (switches t))

(* NDP fabric support: every switch port gets a strict-priority control
   queue above the data queue, with a small dedicated budget, and
   payload trimming enabled. Setup-time only — [configure_queues]
   replaces (and discards) any queued frames, so this must run before
   traffic starts. Runs on every switch regardless of shard ownership:
   it is deterministic local configuration, identical on all shards. *)
let enable_trimming t ~keep ~data_limit ~ctrl_limit =
  List.iter
    (fun (_, sw) ->
      for port = 0 to Switch.num_ports sw - 1 do
        Switch.configure_queues sw ~port ~count:2;
        Switch.set_subqueue_limit sw ~port ~queue:0 ~bytes:data_limit;
        Switch.set_subqueue_limit sw ~port ~queue:1 ~bytes:ctrl_limit
      done;
      Switch.set_trim_keep sw ~keep)
    (switches t)

let frames_delivered t = t.delivered

let set_fault_hooks t hooks = t.fault <- hooks
let fault_hooks_installed t = Option.is_some t.fault

let on_host_deliver t hook =
  (* Registration is rare and the hook array is read on every delivery:
     rebuild the array (registration order preserved) instead of
     appending to a list quadratically. *)
  let n = Array.length t.deliver_hooks in
  let hooks = Array.make (n + 1) hook in
  Array.blit t.deliver_hooks 0 hooks 0 n;
  t.deliver_hooks <- hooks
