module Frame = Tpp_isa.Frame
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4
module Time_ns = Tpp_util.Time_ns
module Buf = Tpp_util.Buf
module Ring = Tpp_util.Ring
module Tpp = Tpp_isa.Tpp

type host = {
  host_name : string;
  node_id : int;
  mac : Mac.t;
  ip : Ipv4.Addr.t;
  mutable receive : now:Time_ns.t -> Frame.t -> unit;
}

type attachment = {
  mutable peer : (int * int) option;
  mutable bps : int;
  mutable delay : Time_ns.span;
  mutable tx_busy : bool;
  mutable up : bool;
  mutable in_flight : Frame.t;
      (* the frame occupying the link while [tx_busy]; the per-net dummy
         otherwise, so a delivered frame is never pinned by its old port.
         A plain field, not an option: the one-outstanding-tx-per-port
         invariant ([tx_busy]) makes it unambiguous, and a [Some] per
         transmission would put an allocation back on the hot path. *)
  nic_queue : Frame.t Ring.t;
      (* hosts only; switches queue in the ASIC. A preallocated ring:
         enqueueing a frame allocates nothing once the ring has grown
         to the host's in-flight window. *)
}

type node_impl = Switch_n of Switch.t | Host_n of host

type node_rec = { impl : node_impl; ports : attachment array }

type wire_check = [ `Always | `Cached | `Off ]

type event_mode = [ `Typed | `Closure ]

(* When this net is one shard of a parallel run: which shard each node
   belongs to, which shard this instance executes, and how a frame whose
   link crosses into another shard leaves this one. *)
type sharding = {
  owner : int array;  (* node id -> owning shard *)
  shard : int;        (* the shard this Net instance runs *)
  emit :
    arrival:Time_ns.t -> emitted:Time_ns.t -> dst:int * int -> Frame.t -> unit;
}

(* Injection points for the fault subsystem ({!Fault}). Kept as a
   neutral record of closures so [Net] needs no knowledge of the
   schedule representation (and [Fault] can depend on [Net] without a
   cycle). All four are pure functions of simulated time plus per-wire
   private RNG streams, which is what keeps faulted runs bit-identical
   between the sequential engine and any shard count. *)
type fault_hooks = {
  f_transit : node:int -> port:int -> now:Time_ns.t -> Frame.t -> bool;
      (* Fate of a frame finishing serialisation onto the wire behind
         ([node], [port]) at [now]: [false] = lost (fault-downed link,
         random drop, or corruption caught by the wire checks). The
         hook does its own accounting. *)
  f_rate : node:int -> port:int -> now:Time_ns.t -> bps:int -> int;
      (* Effective transmit rate at transmission start. *)
  f_delay : node:int -> port:int -> now:Time_ns.t -> delay:Time_ns.span -> Time_ns.span;
      (* Effective propagation delay at transmission end. Must never
         return less than [delay]: the parallel scheduler's lookahead
         is computed from the undegraded delays. *)
  f_ingress : node:int -> now:Time_ns.t -> bool;
      (* [false] = the node is frozen; a frame arriving now vanishes. *)
}

type t = {
  eng : Engine.t;
  wire_check : wire_check;
  event_mode : event_mode;
  handlers : Engine.handlers;
      (* the net's one handlers record: every typed event carries it *)
  no_frame : Frame.t;  (* dummy parked in [in_flight] between txs *)
  mutable nodes : node_rec array;  (* index = node id; first node_count live *)
  mutable node_count : int;
  mutable host_counter : int;
  mutable delivered : int;
  mutable deliver_hooks : (host -> Frame.t -> unit) array;
      (* registration order; rebuilt on (rare) registration *)
  mutable sharding : sharding option;  (* None = ordinary sequential net *)
  mutable fault : fault_hooks option;  (* None = fault-free: no per-packet cost *)
  checked_shapes : (int, unit) Hashtbl.t;
      (* header-layout keys already validated in [`Cached] mode *)
  scratch : Buf.Writer.t;  (* reused by the cached wire check *)
}

let engine t = t.eng

let set_sharding t ~owner ~shard ~emit =
  if Array.length owner < t.node_count then
    invalid_arg "Net.set_sharding: owner array shorter than node table";
  if shard < 0 then invalid_arg "Net.set_sharding: shard";
  t.sharding <- Some { owner; shard; emit }

let owns t id =
  if id < 0 || id >= t.node_count then invalid_arg "Net.owns: unknown node id";
  match t.sharding with
  | None -> true
  | Some s -> Array.unsafe_get s.owner id = s.shard

let new_attachment t =
  { peer = None; bps = 0; delay = 0; tx_busy = false; up = true;
    in_flight = t.no_frame; nic_queue = Ring.create ~dummy:t.no_frame () }

let node t id =
  if id < 0 || id >= t.node_count then invalid_arg "Net: unknown node id";
  Array.unsafe_get t.nodes id

let register t impl ~ports =
  let id = t.node_count in
  let n = { impl; ports = Array.init ports (fun _ -> new_attachment t) } in
  if id >= Array.length t.nodes then begin
    let grown = Array.make (max 8 (2 * Array.length t.nodes)) n in
    Array.blit t.nodes 0 grown 0 id;
    t.nodes <- grown
  end;
  t.nodes.(id) <- n;
  t.node_count <- id + 1;
  id

let add_switch t sw = register t (Switch_n sw) ~ports:(Switch.num_ports sw)

let add_host t ~name =
  t.host_counter <- t.host_counter + 1;
  let n = t.host_counter in
  let id = t.node_count in
  let host =
    {
      host_name = name;
      node_id = id;
      mac = Mac.of_host_id n;
      ip = Ipv4.Addr.of_host_id n;
      receive = (fun ~now:_ _ -> ());
    }
  in
  let registered = register t (Host_n host) ~ports:1 in
  assert (registered = id);
  host

let switch t id =
  match (node t id).impl with
  | Switch_n sw -> sw
  | Host_n _ -> invalid_arg "Net.switch: node is a host"

let host_of t id =
  match (node t id).impl with
  | Host_n h -> h
  | Switch_n _ -> invalid_arg "Net.host_of: node is a switch"

let node_count t = t.node_count

let hosts t =
  let acc = ref [] in
  for id = t.node_count - 1 downto 0 do
    match t.nodes.(id).impl with
    | Host_n h -> acc := h :: !acc
    | Switch_n _ -> ()
  done;
  !acc

let switches t =
  let acc = ref [] in
  for id = t.node_count - 1 downto 0 do
    match t.nodes.(id).impl with
    | Switch_n sw -> acc := (id, sw) :: !acc
    | Host_n _ -> ()
  done;
  !acc

(* Hot-path attachment lookup: no endpoint tuple. *)
let[@inline] port_attachment t id port =
  let n = node t id in
  if port < 0 || port >= Array.length n.ports then
    invalid_arg "Net: port out of range";
  Array.unsafe_get n.ports port

let attachment t (id, port) = port_attachment t id port

let connect t (a, pa) (b, pb) ~bps ~delay =
  if bps <= 0 then invalid_arg "Net.connect: rate";
  let ea = attachment t (a, pa) and eb = attachment t (b, pb) in
  if Option.is_some ea.peer || Option.is_some eb.peer then
    invalid_arg "Net.connect: port already linked";
  ea.peer <- Some (b, pb);
  ea.bps <- bps;
  ea.delay <- delay;
  eb.peer <- Some (a, pa);
  eb.bps <- bps;
  eb.delay <- delay;
  (match (node t a).impl with
  | Switch_n sw -> Switch.set_port_capacity sw ~port:pa ~bps
  | Host_n _ -> ());
  match (node t b).impl with
  | Switch_n sw -> Switch.set_port_capacity sw ~port:pb ~bps
  | Host_n _ -> ()

let neighbors t id =
  let n = node t id in
  Array.to_list n.ports
  |> List.mapi (fun port a -> (port, a.peer))
  |> List.filter_map (fun (port, peer) ->
       match peer with Some (pn, pp) -> Some (port, pn, pp) | None -> None)

(* ceil(bits * 1e9 / bps) in exact integer arithmetic. The product
   overflows 63-bit ints only for frames beyond ~1.1 GB, where the float
   fallback's 52-bit mantissa error (sub-ppm) is irrelevant anyway. *)
let tx_time_of_bits ~bps bits =
  if bits < max_int / 1_000_000_000 then
    ((bits * 1_000_000_000) + bps - 1) / bps
  else int_of_float (ceil (float_of_int bits *. 1e9 /. float_of_int bps))

let tx_time_ns ~bps frame = tx_time_of_bits ~bps (Frame.wire_size frame * 8)

(* Pulls the next frame to transmit from a node's egress at [port]. *)
let next_frame t id port =
  let n = node t id in
  match n.impl with
  | Switch_n sw -> Switch.dequeue sw ~port
  | Host_n _ -> Ring.take_opt n.ports.(port).nic_queue

(* The dataplane cycle — deliver, start transmissions, complete them —
   as mutually recursive functions over plain (node, port) ints. In
   [`Typed] mode each step schedules the next through the engine's
   event slab (the net's one [handlers] record dispatches back here),
   so a frame hop costs zero minor allocations in the engine; [`Closure]
   mode schedules the same steps at the same timestamps as closures,
   reproducing the old per-event allocation profile for A/B
   measurement. The event sequence — and therefore the simulation — is
   bit-identical either way. *)
let rec deliver t id port frame =
  let alive =
    match t.fault with
    | None -> true
    | Some h -> h.f_ingress ~node:id ~now:(Engine.now t.eng)
  in
  if alive then begin
    let n = node t id in
    match n.impl with
    | Host_n h ->
      t.delivered <- t.delivered + 1;
      let hooks = t.deliver_hooks in
      for i = 0 to Array.length hooks - 1 do
        (Array.unsafe_get hooks i) h frame
      done;
      h.receive ~now:(Engine.now t.eng) frame;
      (* The frame reached its destination and every handler has run:
         if it came from a pool, its buffer is free for the next send.
         (No-op for unpooled frames, so receivers that retain frames —
         the tests do — are unaffected: they never see pooled ones.) *)
      Frame.recycle frame
    | Switch_n sw -> (
      match Switch.handle_ingress sw ~now:(Engine.now t.eng) ~in_port:port frame with
      | Switch.Dropped _ -> Frame.recycle frame
      | Switch.Queued out_ports -> List.iter (fun p -> maybe_start_tx t id p) out_ports)
  end
  else Frame.recycle frame (* frozen node: the frame vanishes *)

and maybe_start_tx t id port =
  let a = port_attachment t id port in
  match a.peer with
  | None -> ()
  | Some _ ->
    if not a.tx_busy then begin
      match next_frame t id port with
      | None -> ()
      | Some frame ->
        a.tx_busy <- true;
        a.in_flight <- frame;
        let bps =
          match t.fault with
          | None -> a.bps
          | Some h -> h.f_rate ~node:id ~port ~now:(Engine.now t.eng) ~bps:a.bps
        in
        let tx = tx_time_ns ~bps frame in
        let at = Time_ns.add (Engine.now t.eng) tx in
        (match t.event_mode with
        | `Typed -> Engine.dequeue_at t.eng at t.handlers ~node:id ~port
        | `Closure -> Engine.at t.eng at (fun () -> tx_complete t id port))
    end

(* A transmission finishes serialising onto the wire: the frame either
   dies (dark link, fault) or is scheduled to arrive at the peer after
   the propagation delay; then the port tries to start its next tx. *)
and tx_complete t id port =
  let a = port_attachment t id port in
  let frame = a.in_flight in
  a.in_flight <- t.no_frame;
  a.tx_busy <- false;
  (* A frame finishing serialisation onto a dark link is lost; the
     fault schedule may also lose it (dark window, random drop,
     corruption caught by the wire checks). *)
  let survives =
    a.up
    && (match t.fault with
       | None -> true
       | Some h -> h.f_transit ~node:id ~port ~now:(Engine.now t.eng) frame)
  in
  if not survives then Frame.recycle frame;
  (if survives then begin
     let delay =
       match t.fault with
       | None -> a.delay
       | Some h -> h.f_delay ~node:id ~port ~now:(Engine.now t.eng) ~delay:a.delay
     in
     match a.peer with
     | None -> ()
     | Some ((pn, pp) as peer) -> (
       match t.sharding with
       | None -> schedule_deliver t delay pn pp frame
       | Some s ->
         (* Shard-boundary link: the arrival belongs to the peer's
            owning shard. Hand the frame (with its absolute arrival
            time) to the inter-shard channel instead of the local
            event queue; the owner schedules the delivery when it
            drains its inbox. Same event count either way: one
            delivery event, on exactly one shard. *)
         if Array.unsafe_get s.owner pn = s.shard then
           schedule_deliver t delay pn pp frame
         else begin
           (* The emission time rides along so the owning shard can
              backdate the delivery's tie-break stamp: a local push at
              the same arrival nanosecond must order against this frame
              exactly as the sequential run would (by emission order),
              not by when the owner happens to drain its inbox.

              [emit] consumes the frame: the hook must copy whatever it
              needs (the boundary protocol blits the wire image into a
              chunk) and never retain the frame itself, because it is
              recycled into its local pool the moment the hook returns
              — the emitter-side half of the cross-domain leak fix. *)
           s.emit
             ~arrival:(Time_ns.add (Engine.now t.eng) delay)
             ~emitted:(Engine.now t.eng) ~dst:peer frame;
           Frame.recycle frame
         end)
   end);
  maybe_start_tx t id port

and schedule_deliver t delay pn pp frame =
  let at = Time_ns.add (Engine.now t.eng) delay in
  match t.event_mode with
  | `Typed -> Engine.deliver_at t.eng at t.handlers ~node:pn ~port:pp frame
  | `Closure -> Engine.at t.eng at (fun () -> deliver t pn pp frame)

let create ?(wire_check = `Always) ?(event_mode = `Typed) eng =
  let no_frame =
    Frame.udp_frame ~src_mac:(Mac.of_host_id 0) ~dst_mac:(Mac.of_host_id 0)
      ~src_ip:(Ipv4.Addr.of_host_id 0) ~dst_ip:(Ipv4.Addr.of_host_id 0)
      ~src_port:0 ~dst_port:0 ~payload:Bytes.empty ()
  in
  let checked_shapes = Hashtbl.create 32 in
  let scratch = Buf.Writer.create ~capacity:256 () in
  (* The handlers close over the net they dispatch into, so the record
     and the net are built as one recursive value (allocated once per
     net, not per event). *)
  let rec t =
    {
      eng;
      wire_check;
      event_mode;
      handlers =
        {
          Engine.on_deliver = (fun ~node ~port frame -> deliver t node port frame);
          on_dequeue = (fun ~node ~port -> tx_complete t node port);
          on_restart = (fun ~node:_ -> ());
        };
      no_frame;
      nodes = [||];
      node_count = 0;
      host_counter = 0;
      delivered = 0;
      deliver_hooks = [||];
      sharding = None;
      fault = None;
      checked_shapes;
      scratch;
    }
  in
  t

let event_mode t = t.event_mode

let schedule_delivery ?emitted t ~arrival ~dst frame =
  ignore (attachment t dst);
  let dn, dp = dst in
  match t.event_mode with
  | `Typed ->
    Engine.deliver_at ?emitted t.eng arrival t.handlers ~node:dn ~port:dp frame
  | `Closure ->
    Engine.at ?emitted t.eng arrival (fun () -> deliver t dn dp frame)

(* One key per header *layout*: two frames with the same key serialise
   through exactly the same write/parse paths and length computations,
   differing only in field values the codecs treat uniformly. splitmix64
   mixing (via [Frame.flow_hash_values]) keeps distinct layouts from
   colliding in practice; a collision merely skips a redundant check. *)
let shape_key (frame : Frame.t) =
  let tpp_key =
    match frame.Frame.tpp with
    | None -> 0
    | Some s ->
      1
      lor (Array.length s.Tpp.program lsl 1)
      lor (Tpp.mem_len s lsl 17)
      lor (s.Tpp.base lsl 33)
      lor ((match s.Tpp.addr_mode with Tpp.Stack -> 0 | Tpp.Hop_addressed -> 1)
           lsl 49)
      lor (s.Tpp.perhop_len lsl 50)
  in
  let l3_key =
    (if Frame.has_ip frame then 1 else 0)
    lor (if Frame.has_udp frame then 2 else 0)
    lor (Frame.payload_len frame lsl 2)
  in
  Frame.flow_hash_values ~src:(Frame.ethertype frame) ~dst:tpp_key
    ~proto:l3_key ~src_port:0 ~dst_port:0

let wire_check_fail e =
  failwith ("Net.host_send: frame failed wire round-trip: " ^ e)

let host_send t host frame =
  (match t.sharding with
  | Some s when Array.unsafe_get s.owner host.node_id <> s.shard ->
    invalid_arg "Net.host_send: host is owned by another shard"
  | _ -> ());
  let frame =
    match t.wire_check with
    | `Off -> frame
    | `Always -> (
      (* Full-strength: every packet becomes its wire image, so the
         receiver sees exactly what a byte-faithful network would carry. *)
      match Frame.parse (Frame.serialize frame) with
      | Ok f -> f
      | Error e -> wire_check_fail e)
    | `Cached ->
      (* Validate each distinct header layout once; frames of an
         already-validated shape forward structurally with no
         serialisation at all on the steady-state path. *)
      let key = shape_key frame in
      if not (Hashtbl.mem t.checked_shapes key) then begin
        Buf.Writer.reset t.scratch;
        Frame.serialize_into t.scratch frame;
        match
          Frame.parse ~len:(Buf.Writer.length t.scratch)
            (Buf.Writer.buffer t.scratch)
        with
        | Ok _ -> Hashtbl.replace t.checked_shapes key ()
        | Error e -> wire_check_fail e
      end;
      frame
  in
  let a = port_attachment t host.node_id 0 in
  Ring.push a.nic_queue frame;
  maybe_start_tx t host.node_id 0

let set_link_up t (id, port) up =
  let a = attachment t (id, port) in
  (match a.peer with
  | None -> invalid_arg "Net.set_link_up: port has no link"
  | Some (pid, pport) ->
    let b = attachment t (pid, pport) in
    a.up <- up;
    b.up <- up;
    if up then begin
      maybe_start_tx t id port;
      maybe_start_tx t pid pport
    end)

let link_up t (id, port) = (attachment t (id, port)).up

let link_delay t (id, port) =
  let a = attachment t (id, port) in
  if Option.is_none a.peer then invalid_arg "Net.link_delay: port has no link";
  a.delay

let start_utilization_updates t ~period ~until =
  (* On a sharded net only the owned switches tick (each shard runs its
     own periodic event for its slice of the fabric). *)
  Engine.every t.eng ~period ~until (fun () ->
      List.iter
        (fun (id, sw) ->
          if owns t id then
            State.update_utilization (Switch.state sw) ~window_ns:period)
        (switches t))

(* NDP fabric support: every switch port gets a strict-priority control
   queue above the data queue, with a small dedicated budget, and
   payload trimming enabled. Setup-time only — [configure_queues]
   replaces (and discards) any queued frames, so this must run before
   traffic starts. Runs on every switch regardless of shard ownership:
   it is deterministic local configuration, identical on all shards. *)
let enable_trimming t ~keep ~data_limit ~ctrl_limit =
  List.iter
    (fun (_, sw) ->
      for port = 0 to Switch.num_ports sw - 1 do
        Switch.configure_queues sw ~port ~count:2;
        Switch.set_subqueue_limit sw ~port ~queue:0 ~bytes:data_limit;
        Switch.set_subqueue_limit sw ~port ~queue:1 ~bytes:ctrl_limit
      done;
      Switch.set_trim_keep sw ~keep)
    (switches t)

let frames_delivered t = t.delivered

let set_fault_hooks t hooks = t.fault <- hooks
let fault_hooks_installed t = Option.is_some t.fault

let on_host_deliver t hook =
  (* Registration is rare and the hook array is read on every delivery:
     rebuild the array (registration order preserved) instead of
     appending to a list quadratically. *)
  let n = Array.length t.deliver_hooks in
  let hooks = Array.make (n + 1) hook in
  Array.blit t.deliver_hooks 0 hooks 0 n;
  t.deliver_hooks <- hooks
