(** Discrete-event simulation engine.

    A stable min-heap of timestamped callbacks: events at the same
    instant fire in scheduling order, so runs are fully deterministic. *)

module Time_ns = Tpp_util.Time_ns

type t

val create : unit -> t

val now : t -> Time_ns.t

val at : t -> Time_ns.t -> (unit -> unit) -> unit
(** Schedules a callback at an absolute time, which must not be in the
    past (raises [Invalid_argument]). *)

val after : t -> Time_ns.span -> (unit -> unit) -> unit

val every :
  t -> ?start:Time_ns.t -> period:Time_ns.span -> until:Time_ns.t ->
  (unit -> unit) -> unit
(** Periodic callback from [start] (default one period from now) to
    [until] inclusive. An explicit [start] must lie strictly in the
    future (raises [Invalid_argument] "Engine.every: start in the
    past" when at or before the current clock). *)

val next_event_time : t -> Time_ns.t option
(** Timestamp of the earliest queued event, [None] when the queue is
    empty. The conservative parallel scheduler ({!Tpp_parsim.Parsim})
    uses this to agree on a safe execution window each round. *)

val run : t -> until:Time_ns.t -> unit
(** Processes events in time order until the queue drains or the next
    event lies beyond [until]; the clock ends at [until]. *)

val events_processed : t -> int
