(** Discrete-event engine with a typed, allocation-free dataplane core.

    Steady-state dataplane events — frame deliveries, port dequeues,
    fault restarts — are not closures. Their ingredients live in the
    engine's structure-of-arrays event slab (ints plus two object
    cells), the scheduler orders bare slot indices, and a single match
    in {!run} dispatches them through a {!handlers} record that the
    network allocates once. Scheduling and firing one of these events
    allocates zero minor words. Control-plane code (RCP ticks, probe
    timeouts, {!every}) keeps the closure-based {!at}/{!after} escape
    hatch — the [Thunk] case of {!event}.

    Two schedulers implement the same ordering contract (nondecreasing
    time; among equal timestamps, by emission stamp then scheduling
    order): the hierarchical timing {!Tpp_util.Wheel} (the default) and
    the stable binary {!Tpp_util.Heap}, kept as a differential oracle.
    Pop order is bit-identical between them, so the choice never
    changes simulation results.

    Every scheduled event is stamped with the engine clock at
    scheduling time; since the clock is monotone, sequential runs pop
    in plain (time, scheduling order). The [?emitted] override on
    {!at}/{!deliver_at} exists for the sharded simulator: backdating a
    delivery adopted from a peer shard to its original emission time
    reproduces the sequential push order among same-timestamp events,
    which inbox drain order alone cannot. *)

module Time_ns = Tpp_util.Time_ns
module Frame = Tpp_isa.Frame

type t

(** Callbacks for the typed event kinds. A dataplane allocates one of
    these per network (not per event) and passes it to every
    [schedule]; the engine stores it untyped in the slab and calls the
    matching field on dispatch. *)
type handlers = {
  on_deliver : node:int -> port:int -> Frame.t -> unit;
  on_dequeue : node:int -> port:int -> unit;
  on_restart : node:int -> unit;
}

(** The engine's event vocabulary. [Deliver], [Port_dequeue] and
    [Fault_restart] are stored flattened in the slab (allocation-free
    end to end); [Thunk] is the closure escape hatch. *)
type event =
  | Deliver of (int * int) * Frame.t  (** frame arrives at (node, port) *)
  | Port_dequeue of int * int         (** (node, port) finishes its tx *)
  | Fault_restart of int              (** frozen switch [node] restarts *)
  | Thunk of (unit -> unit)

type scheduler = [ `Wheel | `Heap ]

val create : ?scheduler:scheduler -> unit -> t
(** Fresh engine at time 0. [scheduler] defaults to [`Wheel]. *)

val scheduler : t -> scheduler

val now : t -> Time_ns.t

val schedule : t -> at:Time_ns.t -> handlers -> event -> unit
(** Schedules [event] at absolute time [at]. Raises [Invalid_argument]
    when [at] is in the past. [Deliver]/[Port_dequeue]/[Fault_restart]
    are destructured into the slab; prefer {!deliver_at} and friends on
    hot paths to skip constructing the variant at all. *)

val deliver_at :
  ?emitted:Time_ns.t ->
  t -> Time_ns.t -> handlers -> node:int -> port:int -> Frame.t -> unit
(** Allocation-free [schedule ... (Deliver ((node, port), frame))].
    [emitted] (default: the current clock) backdates the event's
    tie-break stamp — see the module comment. *)

val dequeue_at : t -> Time_ns.t -> handlers -> node:int -> port:int -> unit
(** Allocation-free [schedule ... (Port_dequeue (node, port))]. *)

val restart_at : t -> Time_ns.t -> handlers -> node:int -> unit
(** Allocation-free [schedule ... (Fault_restart node)]. *)

val at : ?emitted:Time_ns.t -> t -> Time_ns.t -> (unit -> unit) -> unit
(** Schedules a closure ([Thunk]) at an absolute time, which must not
    be in the past (raises [Invalid_argument]). [emitted] as in
    {!deliver_at}. *)

val after : t -> Time_ns.span -> (unit -> unit) -> unit

val every :
  t -> ?start:Time_ns.t -> period:Time_ns.span -> until:Time_ns.t ->
  (unit -> unit) -> unit
(** Periodic callback from [start] (default one period from now) to
    [until] inclusive. An explicit [start] must lie strictly in the
    future (raises [Invalid_argument] "Engine.every: start in the
    past" when at or before the current clock). *)

val next_event_time : t -> Time_ns.t option
(** Timestamp of the earliest queued event, [None] when the queue is
    empty. The conservative parallel scheduler ({!Tpp_parsim.Parsim})
    uses this to agree on a safe execution window each round. *)

val run : t -> until:Time_ns.t -> unit
(** Processes events in (time, schedule) order until the queue drains
    or the next event lies beyond [until]; the clock ends at [until].
    Emptiness is tested explicitly — never via a sentinel priority — so
    an event scheduled at [max_int] fires when [until] reaches it
    rather than being mistaken for an empty queue. *)

val events_processed : t -> int
