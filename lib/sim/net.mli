(** The simulated network: switches, hosts, full-duplex links, and the
    per-port transmitters that serialise frames onto links.

    Timing model per traversed link: a frame waits in the sender's
    egress queue (switch FIFO or host NIC queue), occupies the link for
    [wire_size * 8 / rate], then arrives after the propagation delay.
    Switch egress queues are byte-bounded with tail drop; host NIC
    queues are unbounded (hosts self-pace via {!Tpp_endhost} rate
    limiters).

    Link and port state is stored in structure-of-arrays form (flat int
    arrays over global port slots, DESIGN §15) so a fabric's footprint
    is dominated by its switches, not by per-link records: an idle host
    costs ~178 bytes, which is what lets a 100k-host leaf-spine fit
    comfortably in memory. *)

module Frame = Tpp_isa.Frame
module Switch = Tpp_asic.Switch
module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4
module Time_ns = Tpp_util.Time_ns
module Ring = Tpp_util.Ring

type t

type host = {
  host_name : string;
  node_id : int;
  mac : Mac.t;
  ip : Ipv4.Addr.t;
  mutable receive : now:Time_ns.t -> Frame.t -> unit;
  mutable nic_q : Frame.t Ring.t option;
      (** NIC transmit queue, materialized on the host's first send —
          idle hosts carry [None]. Managed by {!host_send}; read it for
          inspection, don't replace it. *)
}

type wire_check = [ `Always | `Cached | `Off ]
(** How [host_send] validates frames against the byte-level wire format:
    - [`Always] (the default): serialise and re-parse every frame, and
      forward the re-parsed copy, so every simulated transmission is
      byte-faithful. Full-strength checking — what the test suite uses.
    - [`Cached]: round-trip each distinct header {e layout} (ethertype,
      TPP section geometry, IP/UDP presence, payload length) once, then
      forward structurally with no per-packet serialisation. The
      steady-state fast path for throughput runs.
    - [`Off]: no checking. *)

type event_mode = [ `Typed | `Closure ]
(** How the dataplane schedules its own events:
    - [`Typed] (the default): deliveries, port dequeues and fault
      restarts go through {!Engine}'s flattened event slab and are
      dispatched via the net's single handlers record — zero minor
      allocations per steady-state event.
    - [`Closure]: the same events at the same timestamps, each as a
      captured closure — the pre-slab allocation profile, kept as the
      measurable baseline for [bench/perf.exe --engine].

    The event sequence is bit-identical between modes. *)

val create :
  ?nodes:int ->
  ?ports:int ->
  ?wire_check:wire_check ->
  ?event_mode:event_mode ->
  Engine.t ->
  t
(** [?nodes]/[?ports] are capacity hints: a builder that knows the final
    node and port counts (every topology builder does) passes them so
    the node and port arrays are allocated once at exactly that size —
    the amortised-doubling slack would otherwise cost a million-host
    fabric up to 2x its steady-state footprint. Registering past a hint
    is fine; growth just resumes doubling. *)

val event_mode : t -> event_mode

val engine : t -> Engine.t

val add_switch : t -> Switch.t -> int
(** Registers a switch; returns its node id. *)

val add_host : ?name:string -> ?ip:Ipv4.Addr.t -> ?mac:Mac.t -> t -> host
(** Creates a host. By default MAC/IP derive from a counter
    ([Mac.of_host_id] / [Ipv4.Addr.of_host_id]); topology builders pass
    [?ip] to give hosts hierarchical (aggregatable) addresses instead.
    [?name] defaults to [""] — a million hosts don't need a million
    strings. *)

val switch : t -> int -> Switch.t
(** The switch at a node id. Raises [Invalid_argument] for hosts. *)

val host_of : t -> int -> host

val node_count : t -> int

val hosts : t -> host list
val switches : t -> (int * Switch.t) list
(** All switches with their node ids, in insertion order. *)

val connect :
  t -> int * int -> int * int -> bps:int -> delay:Time_ns.span -> unit
(** [connect net (a, pa) (b, pb) ~bps ~delay] attaches a full-duplex
    link between port [pa] of node [a] and port [pb] of node [b]; both
    directions get rate [bps] and propagation [delay]. Sets switch port
    capacities. A port can hold one link (raises [Invalid_argument]). *)

val host_send : t -> host -> Frame.t -> unit
(** Queues a frame on the host's NIC for transmission. *)

val set_link_up : t -> int * int -> bool -> unit
(** Fails or restores the (full-duplex) link attached at this endpoint.
    Frames whose transmission completes while the link is down are lost
    in flight; queued frames keep draining into the void, as on a real
    dark fiber. Restoring the link kicks both transmitters. *)

val link_up : t -> int * int -> bool

val neighbors : t -> int -> (int * int * int) list
(** [(port, peer_node, peer_port)] for every connected port of a node. *)

val iter_ports :
  t -> int -> (port:int -> peer:int -> peer_port:int -> unit) -> unit
(** Allocation-free walk over a node's connected ports, in port order. *)

val iter_links :
  t ->
  (node:int -> port:int -> peer:int -> peer_port:int -> bps:int ->
   delay:Time_ns.span -> unit) ->
  unit
(** Allocation-free walk over every connected (node, port) endpoint in
    node/port order — each full-duplex link is visited once per
    direction. What the shard partitioner and {!Fault} build their
    adjacency from without materialising neighbor lists. *)

val port_index : t -> int -> int -> int
(** [port_index t node port] is the dense global slot of the port:
    stable, contiguous over all registered ports, suitable for keying
    side tables (the fault subsystem's per-wire state). Raises
    [Invalid_argument] for an unknown node or out-of-range port. *)

val port_count : t -> int
(** Total global port slots registered so far (the exclusive upper bound
    of {!port_index}). *)

val num_ports : t -> int -> int
(** Ports of one node. *)

val start_utilization_updates :
  t -> period:Time_ns.span -> until:Time_ns.t -> unit
(** Periodically recomputes every switch's utilisation registers (the
    windowed [Link:RxUtilization] values TPPs read). On a sharded net,
    only the switches this shard owns are updated. *)

val enable_trimming : t -> keep:int -> data_limit:int -> ctrl_limit:int -> unit
(** NDP fabric support: gives every switch port two strict-priority
    queues (a shallow [data_limit]-byte data queue below, control above
    with a [ctrl_limit]-byte budget) and enables payload trimming to
    [keep] bytes on data-queue overflow ({!Switch.set_trim_keep}). The
    data queue is deliberately shallow — NDP bounds latency by trimming
    early rather than buffering. Call at setup time, before any
    traffic: reconfiguring queues discards queued frames. *)

val frames_delivered : t -> int
(** Frames handed to host receive callbacks so far. *)

(** {2 Sharding hooks}

    Used by {!Tpp_parsim.Parsim} to run this net as one shard of a
    conservative parallel simulation. Every shard holds a structurally
    identical replica of the topology but executes events only for the
    nodes it owns; a frame whose link crosses into another shard leaves
    through [emit] instead of the local event heap. An ordinary
    sequential net never touches any of this. *)

val set_sharding :
  t ->
  owner:int array ->
  shard:int ->
  emit:
    (arrival:Time_ns.t -> emitted:Time_ns.t -> dst:int * int -> Frame.t ->
     unit) ->
  unit
(** Marks this net as shard [shard] of a partitioned run. [owner] maps
    node ids to shards; [emit] is called at link-transmission completion
    for frames bound for a foreign node, with the absolute [arrival]
    time (tx end + propagation delay), the emission time (the clock at
    the emitting shard — the receiver passes it back through
    {!schedule_delivery} so same-timestamp ordering matches the
    sequential run), and destination endpoint.

    [emit] {e consumes} the frame: it must copy what it needs (e.g.
    blit the wire image into a boundary chunk) and must not retain the
    frame, which is recycled into its local pool as soon as the hook
    returns. *)

val owns : t -> int -> bool
(** Whether this net instance executes events for the node: always true
    on an unsharded net. *)

val schedule_delivery :
  ?emitted:Time_ns.t ->
  t -> arrival:Time_ns.t -> dst:int * int -> Frame.t -> unit
(** Schedules a frame to arrive at endpoint [dst] at absolute time
    [arrival], exactly as if it had finished crossing the attached link:
    the receiving end of an inter-shard channel. [emitted] backdates the
    event's tie-break stamp to the frame's original emission time (from
    the [emit] hook), so arrivals in the same nanosecond order as the
    sequential run would — by emission order, not inbox drain order. *)

val link_delay : t -> int * int -> Time_ns.span
(** Propagation delay of the link attached at this endpoint (raises
    [Invalid_argument] when the port has no link). The partitioner reads
    these to compute the conservative lookahead. *)

val on_host_deliver : t -> (host -> Frame.t -> unit) -> unit
(** Tracing hook, called before each host receive callback. Hooks run in
    registration order. *)

(** {2 Fault-injection hooks}

    The seams {!Fault} installs itself through. A net without hooks
    (the default) pays a single [None] branch per touch point — no
    per-packet closure calls, allocation, or hashing. The hooks must be
    pure functions of simulated time (plus private per-wire RNG
    streams) so that faulted runs stay deterministic under sharding;
    use {!Fault} rather than installing ad-hoc hooks. *)

type fault_hooks = {
  f_transit : node:int -> port:int -> now:Time_ns.t -> Frame.t -> bool;
      (** Fate of a frame finishing serialisation onto the wire behind
          ([node], [port]) at [now]: [false] = lost in flight. *)
  f_rate : node:int -> port:int -> now:Time_ns.t -> bps:int -> int;
      (** Effective transmit rate at transmission start. *)
  f_delay :
    node:int -> port:int -> now:Time_ns.t -> delay:Time_ns.span -> Time_ns.span;
      (** Effective propagation delay at transmission end; must be
          [>= delay] (the parallel lookahead assumes it). *)
  f_ingress : node:int -> now:Time_ns.t -> bool;
      (** [false] = the node is frozen and the arriving frame vanishes. *)
}

val set_fault_hooks : t -> fault_hooks option -> unit

val fault_hooks_installed : t -> bool

val tx_time_of_bits : bps:int -> int -> Time_ns.span
(** [tx_time_of_bits ~bps bits] = ceil([bits] * 1e9 / [bps]) ns, exact
    integer arithmetic (overflow-guarded). Exposed for tests. *)
