module Time_ns = Tpp_util.Time_ns
module Heap = Tpp_util.Heap

type t = {
  queue : (unit -> unit) Heap.t;
  mutable clock : Time_ns.t;
  mutable processed : int;
}

let create () = { queue = Heap.create (); clock = 0; processed = 0 }

let now t = t.clock

let at t time callback =
  if time < t.clock then invalid_arg "Engine.at: scheduling in the past";
  Heap.push t.queue ~prio:time callback

let after t span callback = at t (Time_ns.add t.clock span) callback

let every t ?start ~period ~until callback =
  if period <= 0 then invalid_arg "Engine.every: period";
  let start =
    match start with
    | Some s ->
      (* Diagnose the caller's mistake here rather than letting [at]
         raise its generic message on the first tick. *)
      if s <= t.clock then invalid_arg "Engine.every: start in the past";
      s
    | None -> Time_ns.add t.clock period
  in
  let rec tick time () =
    if time <= until then begin
      callback ();
      let next = Time_ns.add time period in
      if next <= until then at t next (tick next)
    end
  in
  if start <= until then at t start (tick start)

let next_event_time t = Heap.peek_prio t.queue

let nothing () = ()

let run t ~until =
  (* Allocation-free dispatch loop: peek/pop work on the heap's unboxed
     key arrays, so draining an event costs no minor allocations beyond
     whatever the callback itself does. *)
  let queue = t.queue in
  let continue = ref true in
  while !continue do
    if Heap.is_empty queue then continue := false
    else begin
      let time = Heap.peek_prio_or queue ~default:max_int in
      if time > until then continue := false
      else begin
        let callback = Heap.pop_value queue ~default:nothing in
        t.clock <- time;
        t.processed <- t.processed + 1;
        callback ()
      end
    end
  done;
  if until > t.clock then t.clock <- until

let events_processed t = t.processed
