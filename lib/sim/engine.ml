module Time_ns = Tpp_util.Time_ns
module Heap = Tpp_util.Heap
module Wheel = Tpp_util.Wheel
module Frame = Tpp_isa.Frame

(* The dataplane's event vocabulary, dispatched by one match in [run].
   Steady-state events are not closures: their ingredients live in the
   engine's own structure-of-arrays slab (kind / node / port as unboxed
   ints, the handlers record and frame as two Obj.t cells), and the
   scheduler — wheel or heap — orders bare slab indices. Scheduling and
   firing a Deliver/Port_dequeue/Fault_restart therefore allocates zero
   minor words; only the Thunk escape hatch (control-plane timers,
   [every] ticks) still captures a closure. *)

type handlers = {
  on_deliver : node:int -> port:int -> Frame.t -> unit;
  on_dequeue : node:int -> port:int -> unit;
  on_restart : node:int -> unit;
}

type event =
  | Deliver of (int * int) * Frame.t
  | Port_dequeue of int * int
  | Fault_restart of int
  | Thunk of (unit -> unit)

type scheduler = [ `Wheel | `Heap ]

(* [`Wheel] is the production scheduler; the stable binary heap stays
   available as a differential oracle (same ordering contract). *)
type queue = Q_wheel of Wheel.t | Q_heap of int Heap.t

let kind_thunk = 0
let kind_deliver = 1
let kind_dequeue = 2
let kind_restart = 3

type t = {
  queue : queue;
  (* Event slab, indexed by the slot ints the scheduler carries.
     (kind, node, port) are packed into one int per slot — the same
     (kind << 40) | (node << 20) | port encoding as the canonical tie
     key below, so the tie is read straight from the slab — and the two
     pointer cells of a slot sit adjacent in [e_obj] (slot s -> indices
     2s, 2s+1). Scheduling or firing an event therefore touches two
     cache lines of slab instead of the five a parallel-arrays layout
     costs once a large fabric's slab falls out of L2. [e_meta] doubles
     as the free-list link. *)
  mutable e_meta : int array;
  mutable e_obj : Obj.t array;  (* 2s: handlers/thunk; 2s+1: Frame.t *)
  mutable free : int;
  mutable clock : Time_ns.t;
  mutable processed : int;
}

let hole = Obj.repr ()

let create ?(scheduler = `Wheel) () =
  {
    queue =
      (match scheduler with
      | `Wheel -> Q_wheel (Wheel.create ())
      | `Heap -> Q_heap (Heap.create ()));
    e_meta = [||];
    e_obj = [||];
    free = -1;
    clock = 0;
    processed = 0;
  }

let scheduler t = match t.queue with Q_wheel _ -> `Wheel | Q_heap _ -> `Heap

let now t = t.clock

let grow t =
  let old = Array.length t.e_meta in
  let cap = if old = 0 then 64 else 2 * old in
  let meta = Array.make cap 0 in
  Array.blit t.e_meta 0 meta 0 old;
  let obj = Array.make (2 * cap) hole in
  Array.blit t.e_obj 0 obj 0 (2 * old);
  t.e_meta <- meta;
  t.e_obj <- obj;
  for i = old to cap - 2 do
    t.e_meta.(i) <- i + 1
  done;
  t.e_meta.(cap - 1) <- t.free;
  t.free <- old

(* Every push is stamped with an emission time: the engine clock by
   default, which is monotone in push order. [?emitted] lets the
   sharded simulator backdate a delivery adopted from another shard to
   the time it was emitted there instead of inheriting this shard's
   (arbitrary) inbox drain time.

   The stamp alone is not enough for seq-vs-sharded bit-identity:
   arrival-clocked protocols (ack/pull/probe clocking) quantise their
   emissions to shared serialization lattices, so distinct frames
   routinely collide on (time, emitted) — and then insertion order
   would decide, which sharding cannot reproduce. The canonical tie
   key below — (kind, node, port) packed into one int — breaks those
   collisions by event content instead. It is a total order wherever
   order can matter: two deliveries can never complete on the same
   (node, port) in the same nanosecond (one link serializes), a port
   schedules at most one dequeue at a time, and the events left tied
   (thunk vs thunk, which all pack to 0) are scheduled shard-locally
   in identical relative order, so their seq fallback agrees with the
   sequential run. *)
let[@inline] tie_key ~kind ~node ~port =
  (kind lsl 40) lor (node lsl 20) lor port

let[@inline] schedule_slot ?emitted t time ~kind ~node ~port h frame =
  if time < t.clock then invalid_arg "Engine.at: scheduling in the past";
  let emitted = match emitted with None -> t.clock | Some e -> e in
  if t.free < 0 then grow t;
  let s = t.free in
  t.free <- Array.unsafe_get t.e_meta s;
  let meta = tie_key ~kind ~node ~port in
  t.e_meta.(s) <- meta;
  t.e_obj.(2 * s) <- h;
  t.e_obj.((2 * s) + 1) <- frame;
  match t.queue with
  | Q_wheel w -> Wheel.push_keyed w ~prio:time ~emitted ~tie:meta s
  | Q_heap q -> Heap.push_keyed q ~prio:time ~emitted ~tie:meta s

let at ?emitted t time callback =
  schedule_slot ?emitted t time ~kind:kind_thunk ~node:0 ~port:0
    (Obj.repr callback) hole

let deliver_at ?emitted t time h ~node ~port frame =
  schedule_slot ?emitted t time ~kind:kind_deliver ~node ~port (Obj.repr h)
    (Obj.repr frame)

let dequeue_at t time h ~node ~port =
  schedule_slot t time ~kind:kind_dequeue ~node ~port (Obj.repr h) hole

let restart_at t time h ~node =
  schedule_slot t time ~kind:kind_restart ~node ~port:0 (Obj.repr h) hole

let schedule t ~at:time h ev =
  match ev with
  | Thunk f -> at t time f
  | Deliver ((node, port), frame) -> deliver_at t time h ~node ~port frame
  | Port_dequeue (node, port) -> dequeue_at t time h ~node ~port
  | Fault_restart node -> restart_at t time h ~node

let after t span callback = at t (Time_ns.add t.clock span) callback

let every t ?start ~period ~until callback =
  if period <= 0 then invalid_arg "Engine.every: period";
  let start =
    match start with
    | Some s ->
      (* Diagnose the caller's mistake here rather than letting [at]
         raise its generic message on the first tick. *)
      if s <= t.clock then invalid_arg "Engine.every: start in the past";
      s
    | None -> Time_ns.add t.clock period
  in
  let rec tick time () =
    if time <= until then begin
      callback ();
      let next = Time_ns.add time period in
      if next <= until then at t next (tick next)
    end
  in
  if start <= until then at t start (tick start)

let next_event_time t =
  match t.queue with
  | Q_wheel w -> Wheel.peek_prio w
  | Q_heap q -> Heap.peek_prio q

(* Decodes and dispatches one slab slot. The slot is freed before the
   handler runs, so a handler can schedule (and reuse the slot)
   immediately; the Obj cells are blanked first so fired frames and
   thunks become garbage the moment they leave the queue. This is the
   single dispatch match of the engine. *)
let[@inline] fire t s =
  let meta = Array.unsafe_get t.e_meta s in
  let kind = meta lsr 40 in
  let node = (meta lsr 20) land 0xFFFFF in
  let port = meta land 0xFFFFF in
  let h = Array.unsafe_get t.e_obj (2 * s) in
  let fr = Array.unsafe_get t.e_obj ((2 * s) + 1) in
  Array.unsafe_set t.e_obj (2 * s) hole;
  Array.unsafe_set t.e_obj ((2 * s) + 1) hole;
  t.e_meta.(s) <- t.free;
  t.free <- s;
  match kind with
  | 0 (* kind_thunk *) -> (Obj.obj h : unit -> unit) ()
  | 1 (* kind_deliver *) ->
    (Obj.obj h : handlers).on_deliver ~node ~port (Obj.obj fr : Frame.t)
  | 2 (* kind_dequeue *) -> (Obj.obj h : handlers).on_dequeue ~node ~port
  | _ (* kind_restart *) -> (Obj.obj h : handlers).on_restart ~node

let run t ~until =
  (* Emptiness is decided explicitly (is_empty), never by a sentinel
     priority: an event legitimately scheduled at [max_int] is
     distinguishable from an empty queue and still fires when [until]
     reaches it. *)
  (match t.queue with
  | Q_wheel w ->
    let continue = ref true in
    while !continue do
      if Wheel.is_empty w then continue := false
      else begin
        let time = Wheel.peek_prio_or w ~default:0 in
        if time > until then continue := false
        else begin
          let s = Wheel.pop_value w ~default:(-1) in
          t.clock <- time;
          t.processed <- t.processed + 1;
          fire t s
        end
      end
    done
  | Q_heap q ->
    let continue = ref true in
    while !continue do
      if Heap.is_empty q then continue := false
      else begin
        let time = Heap.peek_prio_or q ~default:0 in
        if time > until then continue := false
        else begin
          let s = Heap.pop_value q ~default:(-1) in
          t.clock <- time;
          t.processed <- t.processed + 1;
          fire t s
        end
      end
    done);
  if until > t.clock then t.clock <- until

let events_processed t = t.processed
