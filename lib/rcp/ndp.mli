(** NDP-style receiver-driven transport (Handley et al., SIGCOMM 2017)
    over the testbed's trim-and-priority-queue switches.

    The sender sprays [window_pkts] packets unsolicited, then sends only
    when pulled; the receiver clocks one PULL per arrival, so the flow
    runs at exactly the bottleneck rate after the first RTT. A switch
    whose data queue overflows cuts the packet to its header
    ({!Tpp_isa.Frame.trim}) and forwards it on the top-priority queue,
    so the receiver NACKs the precise lost offset within one RTT
    instead of waiting out a retransmit timer. A per-message stall
    timer re-NACKs missing offsets, which also retries lost PULLs —
    together these guarantee every message completes under any random
    drop schedule the fault layer produces.

    One endpoint per host serves both roles on a single UDP port. All
    state is host-local and all timers are guarded self-rescheduling
    events, so endpoints are shard-safe and leave nothing on the wheel
    once idle. *)

module Net = Tpp_sim.Net
module Stack = Tpp_endhost.Stack
module Ipv4 = Tpp_packet.Ipv4

val header_bytes : int
(** Bytes of NDP header at the front of every payload (28); also the
    trim residue — a DATA frame whose payload is this short was
    trimmed in flight. *)

val ctrl_dscp : int
(** DSCP codepoint (63) that maps control packets and trimmed headers
    to the top-priority queue. *)

type config = {
  window_pkts : int;      (** unsolicited spray at message start *)
  payload_bytes : int;    (** data bytes per packet, beyond the header *)
  rtx_timeout_ns : int;   (** receiver stall timer *)
  nack_burst : int;       (** missing offsets re-requested per stall *)
  pull_gap_ns : int;      (** pull pacer: min spacing between pulls
                              leaving an endpoint, across all messages.
                              Set to one full-packet serialization time
                              on the access link; 0 disables pacing *)
  data_queue_bytes : int; (** shallow per-port data queue (trim point) *)
  ctrl_queue_bytes : int; (** top-priority queue budget per switch port *)
}

val default_config : config

val enable_network : Net.t -> config -> unit
(** Provisions the fabric: two strict-priority queues per switch port
    (a shallow [data_queue_bytes] data queue, a [ctrl_queue_bytes]
    budget on the top one) and trim-to-header on data-queue overflow.
    Call once at setup, before traffic. *)

type t

val create : ?config:config -> Stack.t -> port:int -> t
(** An endpoint on [stack] transacting on UDP [port]. All NDP traffic
    (data and control, both directions) shares this port. *)

val send : t -> dst:Net.host -> bytes:int -> int
(** Starts a message transfer; returns its message id. The first
    window goes out immediately; the rest is pull-clocked by [dst]. *)

val set_on_complete :
  t -> (now:int -> src:Ipv4.Addr.t -> bytes:int -> start_ns:int -> unit) -> unit
(** Receiver-side completion hook: fires when the last data packet of a
    message lands, with the message's sender-stamped start time — FCT
    is [now - start_ns], measured where sharding can record it
    locally. *)

type stats = {
  started : int;
  completed : int;     (** sender side: ACKs received *)
  rx_completed : int;  (** receiver side: messages fully assembled *)
  data_tx : int;
  data_rx : int;
  trimmed_rx : int;    (** trimmed headers that reached this endpoint *)
  pulls_tx : int;
  pulls_rx : int;
  nacks_tx : int;
  nacks_rx : int;
  acks_tx : int;
  acks_rx : int;
}

val stats : t -> stats

val invariants_ok : t -> bool
(** True while no state-machine invariant has ever been violated:
    every data send is backed by spray credit, a pull or an urgent
    stall NACK ("credit never leaks"), pull counters arrive strictly
    increasing, and the receiver never sends more pulls than it has
    seen arrivals. *)

val violations : t -> (string * int) list
(** The individual violation counters behind {!invariants_ok}. *)

val fold_rx_credit : t -> bool
(** Receiver-side credit audit: every tracked message has sent at most
    one pull per arrival, and its assembled-packet count is within the
    message total. *)

val outstanding : t -> int
(** Sender messages not yet ACKed. *)

val port : t -> int
