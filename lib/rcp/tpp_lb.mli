(** CONGA-flavored flowlet load balancer driven by TPP telemetry
    (Alizadeh et al., SIGCOMM 2014, expressed with tiny packet
    programs per the HotNets'13 paper's "task 4").

    The balancer owns one {!Tpp_endhost.Flow} and a set of candidate
    ECMP paths, one per candidate UDP source port. It round-robins a
    probe TPP over the candidates ([PUSH \[Switch:SwitchID\]; PUSH
    \[Link:QueueSize\]] at every hop), reads back the bottleneck queue
    of each path from the echoed program, and re-pins the flow — by
    rewriting its source port, which moves its ECMP hash everywhere —
    onto the least-loaded path. Steering happens only at flowlet
    boundaries ({!Tpp_endhost.Flowlet}), so a path change can never
    reorder a burst.

    The destination must run {!Tpp_endhost.Probe.install_echo_on_port}
    on the flow's port so probes (and optional piggybacked data TPPs)
    are executed and echoed back. *)

module Net = Tpp_sim.Net
module Stack = Tpp_endhost.Stack
module Flow = Tpp_endhost.Flow
module Flowlet = Tpp_endhost.Flowlet

type config = {
  probe_period_ns : int;
      (** one candidate path is probed per tick, round-robin *)
  flowlet_gap_ns : int;  (** idle gap that opens a steering boundary *)
  max_hops : int;        (** TPP memory sized for this many hops *)
  num_paths : int;       (** candidate paths (distinct source ports) *)
  port_stride : int;     (** spacing between candidate source ports *)
  piggyback_every : int option;
      (** when set, every nth data packet also carries the collect TPP
          and its echo refreshes the current path's load for free *)
}

val default_config : config
(** 500 µs probe period, 100 µs flowlet gap, 8 hops, 4 paths,
    stride 7, no piggyback. *)

val path_load : Tpp_isa.Tpp.t -> int
(** Bottleneck metric of an executed collect program: the maximum
    [Link:QueueSize] over its hops. *)

type t

val create : ?config:config -> Stack.t -> flow:Flow.t -> dst:Net.host -> t
(** Balances [flow] (whose destination is [dst]) from the sender's
    [stack]. Candidate source ports are [Flow.port flow + i * stride];
    path 0 is the flow's native port. *)

val start : t -> ?at:int -> unit -> unit
val stop : t -> unit

val current_path : t -> int
val current_src_port : t -> int

val path_loads : t -> int array
(** Latest sampled bottleneck load per candidate path. *)

val path_samples : t -> int array
(** Probe replies folded into each path's load so far. *)

val probes_sent : t -> int
val replies_seen : t -> int

val decisions : t -> int
(** Steering evaluations that ran at a flowlet boundary. *)

val moves : t -> int
(** Decisions that moved the flow to a different path. *)

val steer_fingerprint : t -> int
(** Order-sensitive hash over (time, chosen path) of every boundary
    decision — equal fingerprints mean bit-identical steering. *)

val flowlet : t -> Flowlet.t
