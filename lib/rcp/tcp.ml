module Stack = Tpp_endhost.Stack
module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Buf = Tpp_util.Buf
module Frame = Tpp_isa.Frame

type config = {
  mss : int;
  initial_window : int;
  initial_ssthresh : int;
  min_rto_ns : int;
  max_rto_ns : int;
}

let default_config =
  {
    mss = 1000;
    initial_window = 4;
    initial_ssthresh = 64;
    min_rto_ns = 200_000_000;
    max_rto_ns = 5_000_000_000;
  }

(* Segment wire format (UDP payload): [kind u32][seq u32][extra u32].
   kind 0 = data (seq = segment number, extra = send timestamp low bits
   used only for debugging), kind 1 = ack (seq = cumulative ack). Data
   segments pad to MSS. *)
let kind_data = 0
let kind_ack = 1

let encode ~kind ~seq ~len =
  let payload = Bytes.make (max 12 len) '\000' in
  Buf.set_u32i payload 0 kind;
  Buf.set_u32i payload 4 seq;
  payload

let decode payload =
  if Bytes.length payload < 8 then None
  else Some (Buf.get_u32i payload 0, Buf.get_u32i payload 4)

module Receiver = struct
  type t = {
    stack : Stack.t;
    port : int;
    mutable rcv_nxt : int;          (* next expected segment number *)
    ooo : (int, int) Hashtbl.t;     (* seq -> payload bytes held *)
    mutable delivered_bytes : int;
  }

  let attach stack ~port =
    let t =
      { stack; port; rcv_nxt = 0; ooo = Hashtbl.create 32; delivered_bytes = 0 }
    in
    Stack.on_udp stack ~port (fun ~now:_ frame ->
        match (decode (Frame.payload frame), Frame.ip frame) with
        | Some (kind, seq), Some ip when kind = kind_data ->
          let seg_bytes = Frame.payload_len frame in
          if seq >= t.rcv_nxt && not (Hashtbl.mem t.ooo seq) then
            Hashtbl.replace t.ooo seq seg_bytes;
          (* Advance the reassembly point over contiguous segments. *)
          let rec advance () =
            match Hashtbl.find_opt t.ooo t.rcv_nxt with
            | Some bytes ->
              Hashtbl.remove t.ooo t.rcv_nxt;
              t.delivered_bytes <- t.delivered_bytes + bytes;
              t.rcv_nxt <- t.rcv_nxt + 1;
              advance ()
            | None -> ()
          in
          advance ();
          (* Cumulative ACK for every arriving data segment. *)
          let ack = encode ~kind:kind_ack ~seq:t.rcv_nxt ~len:12 in
          let reply =
            Frame.udp_frame ~src_mac:(Stack.host stack).Net.mac
              ~dst_mac:(Frame.eth_src frame)
              ~src_ip:ip.Tpp_packet.Ipv4.Header.dst
              ~dst_ip:ip.Tpp_packet.Ipv4.Header.src ~src_port:t.port
              ~dst_port:t.port ~payload:ack ()
          in
          Net.host_send (Stack.net stack) (Stack.host stack) reply
        | _ -> ());
    t

  let bytes_delivered t = t.delivered_bytes
  let out_of_order_held t = Hashtbl.length t.ooo
end

module Transfer = struct
  type t = {
    config : config;
    stack : Stack.t;
    dst : Net.host;
    port : int;
    total_segments : int;
    total_bytes : int;
    on_complete : now:int -> unit;
    mutable snd_una : int;
    mutable snd_nxt : int;
    mutable cwnd : float;          (* segments *)
    mutable ssthresh : float;
    mutable dup_acks : int;
    mutable rto : int;
    mutable srtt : int;            (* 0 = no sample yet *)
    mutable rttvar : int;
    mutable timer_armed_una : int; (* -1 = no timer *)
    mutable recover : int;  (* NewReno: right edge of the loss window *)
    mutable rtt_probe : (int * int * int) option;
        (* (segment, sent_at, retransmit count at probe time) *)
    mutable retransmits : int;
    mutable timeouts : int;
    mutable done_ : bool;
    mutable completed_at : int option;
  }

  let engine t = Net.engine (Stack.net t.stack)

  let seg_len t seq =
    if seq = t.total_segments - 1 then
      let rem = t.total_bytes mod t.config.mss in
      if rem = 0 then t.config.mss else max 12 rem
    else t.config.mss

  let send_segment t seq ~retransmission =
    let payload = encode ~kind:kind_data ~seq ~len:(seg_len t seq) in
    Stack.send_udp t.stack ~dst:t.dst ~src_port:t.port ~dst_port:t.port ~payload ();
    if retransmission then t.retransmits <- t.retransmits + 1
    else if t.rtt_probe = None then
      t.rtt_probe <- Some (seq, Engine.now (engine t), t.retransmits)

  let update_rtt t sample =
    if t.srtt = 0 then begin
      t.srtt <- sample;
      t.rttvar <- sample / 2
    end
    else begin
      let diff = abs (t.srtt - sample) in
      t.rttvar <- ((3 * t.rttvar) + diff) / 4;
      t.srtt <- ((7 * t.srtt) + sample) / 8
    end;
    t.rto <-
      min t.config.max_rto_ns (max t.config.min_rto_ns (t.srtt + (4 * t.rttvar)))

  (* Sends whatever the window newly allows. *)
  let rec pump t =
    let window = int_of_float t.cwnd in
    if
      (not t.done_)
      && t.snd_nxt < t.total_segments
      && t.snd_nxt < t.snd_una + window
    then begin
      send_segment t t.snd_nxt ~retransmission:false;
      t.snd_nxt <- t.snd_nxt + 1;
      pump t
    end

  let rec arm_timer t =
    if (not t.done_) && t.snd_una < t.snd_nxt then begin
      let armed_una = t.snd_una in
      let armed_rto = t.rto in
      t.timer_armed_una <- armed_una;
      Engine.after (engine t) armed_rto (fun () ->
          if (not t.done_) && t.timer_armed_una = armed_una then begin
            if t.snd_una = armed_una then begin
              (* Retransmission timeout. *)
              t.timeouts <- t.timeouts + 1;
              t.ssthresh <- Float.max 2.0 (t.cwnd /. 2.0);
              t.cwnd <- 1.0;
              t.dup_acks <- 0;
              t.recover <- t.snd_nxt;
              t.rto <- min t.config.max_rto_ns (t.rto * 2);
              send_segment t t.snd_una ~retransmission:true
            end;
            arm_timer t
          end)
    end
    else t.timer_armed_una <- -1

  let on_ack t ~now ack =
    if (not t.done_) && ack > t.snd_una then begin
      (* Karn: only sample if no retransmission happened since the probe
         left — a cumulative jump over a repaired hole is not an RTT. *)
      (match t.rtt_probe with
      | Some (probe, sent_at, rtx) when ack > probe ->
        if t.retransmits = rtx then update_rtt t (now - sent_at);
        t.rtt_probe <- None
      | _ -> ());
      let newly = ack - t.snd_una in
      t.snd_una <- ack;
      t.dup_acks <- 0;
      if t.snd_una >= t.total_segments then begin
        t.done_ <- true;
        t.completed_at <- Some now;
        t.timer_armed_una <- -1;
        t.on_complete ~now
      end
      else if t.snd_una < t.recover then begin
        (* NewReno partial ACK: the loss window had more holes; plug the
           next one immediately instead of waiting for an RTO. *)
        send_segment t t.snd_una ~retransmission:true;
        pump t;
        arm_timer t
      end
      else begin
        (* Slow start below ssthresh, else additive increase. *)
        for _ = 1 to newly do
          if t.cwnd < t.ssthresh then t.cwnd <- t.cwnd +. 1.0
          else t.cwnd <- t.cwnd +. (1.0 /. t.cwnd)
        done;
        pump t;
        arm_timer t
      end
    end
    else if (not t.done_) && ack = t.snd_una && t.snd_una < t.snd_nxt then begin
      t.dup_acks <- t.dup_acks + 1;
      if t.dup_acks = 3 && t.snd_una >= t.recover then begin
        (* Fast retransmit / simplified recovery. *)
        t.ssthresh <- Float.max 2.0 (t.cwnd /. 2.0);
        t.cwnd <- t.ssthresh;
        t.recover <- t.snd_nxt;
        send_segment t t.snd_una ~retransmission:true
      end
    end

  let start ?(config = default_config) ?(on_complete = fun ~now:_ -> ()) ~src ~dst
      ~port ~total_bytes () =
    if total_bytes <= 0 then invalid_arg "Tcp.Transfer.start: total_bytes";
    let total_segments = (total_bytes + config.mss - 1) / config.mss in
    let t =
      {
        config;
        stack = src;
        dst;
        port;
        total_segments;
        total_bytes;
        on_complete;
        snd_una = 0;
        snd_nxt = 0;
        cwnd = float_of_int config.initial_window;
        ssthresh = float_of_int config.initial_ssthresh;
        dup_acks = 0;
        rto = config.min_rto_ns;
        srtt = 0;
        rttvar = 0;
        timer_armed_una = -1;
        recover = 0;
        rtt_probe = None;
        retransmits = 0;
        timeouts = 0;
        done_ = false;
        completed_at = None;
      }
    in
    (* ACKs come back on the same port. *)
    Stack.on_udp_add src ~port (fun ~now frame ->
        match decode (Frame.payload frame) with
        | Some (kind, ack) when kind = kind_ack -> on_ack t ~now ack
        | _ -> ());
    pump t;
    arm_timer t;
    t

  let is_done t = t.done_
  let completed_at t = t.completed_at
  let bytes_acked t = min t.total_bytes (t.snd_una * t.config.mss)
  let retransmits t = t.retransmits
  let timeouts t = t.timeouts
  let cwnd_segments t = t.cwnd
  let srtt_ns t = t.srtt
end
