module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Buf = Tpp_util.Buf
module Stack = Tpp_endhost.Stack
module Flow = Tpp_endhost.Flow

type config = {
  report_period_ns : int;
  rtt_ns : int;
  md_factor : float;
  min_rate_bps : int;
  max_rate_bps : int;
  initial_rate_bps : int;
}

let default_config ~max_rate_bps =
  {
    report_period_ns = 40_000_000;
    rtt_ns = 40_000_000;
    md_factor = 0.5;
    min_rate_bps = 50_000;
    max_rate_bps;
    initial_rate_bps = max 50_000 (max_rate_bps / 10);
  }

module Receiver = struct
  type t = { mutable running : bool }

  let attach stack ~sink ~report_to ~report_port ~period =
    let t = { running = true } in
    let eng = Net.engine (Stack.net stack) in
    (* Self-rescheduling (same fire times as [Engine.every]: first at
       now + period), so [stop] really cancels: a stopped receiver
       leaves nothing on the event wheel. *)
    let rec tick () =
      if t.running then begin
        let payload = Bytes.create 8 in
        Buf.set_u32i payload 0 (Flow.Sink.holes sink);
        Buf.set_u32i payload 4 (Flow.Sink.rx_payload_bytes sink land 0xFFFF_FFFF);
        Stack.send_udp stack ~dst:report_to ~src_port:report_port
          ~dst_port:report_port ~payload ();
        Engine.after eng period tick
      end
    in
    Engine.after eng period tick;
    t

  let stop t = t.running <- false
end

type t = {
  stack : Stack.t;
  config : config;
  flow : Flow.t;
  mutable running : bool;
  mutable last_holes : int;
  mutable losses : int;
  mutable reports : int;
}

let create stack config ~flow ~report_port =
  let t =
    { stack; config; flow; running = false; last_holes = 0; losses = 0; reports = 0 }
  in
  Stack.on_udp stack ~port:report_port (fun ~now:_ frame ->
      if t.running && Tpp_isa.Frame.payload_len frame >= 8 then begin
        t.reports <- t.reports + 1;
        let holes = Tpp_isa.Frame.payload_u32 frame 0 in
        let rate = Flow.rate_bps t.flow in
        let new_rate =
          if holes > t.last_holes then begin
            t.losses <- t.losses + (holes - t.last_holes);
            int_of_float (float_of_int rate *. t.config.md_factor)
          end
          else begin
            (* Additive increase: one packet's worth of bits per RTT. *)
            let add =
              Flow.wire_pkt_bytes t.flow * 8 * 1_000_000_000 / t.config.rtt_ns
            in
            rate + add
          end
        in
        t.last_holes <- holes;
        let clamped =
          max t.config.min_rate_bps (min t.config.max_rate_bps new_rate)
        in
        Flow.set_rate t.flow ~rate_bps:clamped
      end);
  t

let start t =
  t.running <- true;
  Flow.set_rate t.flow ~rate_bps:t.config.initial_rate_bps

let stop t = t.running <- false

let current_rate_bps t = Flow.rate_bps t.flow
let losses_seen t = t.losses
let reports_received t = t.reports
