(* NDP-style receiver-driven transport (Handley et al., SIGCOMM 2017)
   on the testbed's trim-and-priority-queue switches; the credit/pull/
   trim state machine follows the nanoPU-sim sketch the ROADMAP points
   at. The sender sprays an unsolicited window, then transmits only on
   receiver pulls; switches cut an overflowing data packet to its
   header instead of dropping it, so the receiver learns about every
   loss within one RTT and NACKs the exact offset. Control packets
   (PULL/NACK/ACK) and trimmed headers ride the fabric's top-priority
   queue (DSCP 63), which {!Net.enable_trimming} provisions.

   Every NDP packet carries a 7-word header in its UDP payload:

     word 0  kind        0=DATA 1=PULL 2=NACK 3=ACK
     word 1  msg_id      sender-local message id
     word 2  offset      DATA/NACK: packet offset; PULL: pull counter
     word 3  total_pkts
     word 4  msg_bytes
     word 5  ts_hi       message start time (receiver-side FCT)
     word 6  ts_lo

   DATA carries its chunk after the header; switches trim to exactly
   [header_bytes], so a DATA frame whose payload is that short is a
   trimmed header. One endpoint per host plays both roles: sender state
   is keyed by msg_id, receiver state by (source ip, msg_id). *)

module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Frame = Tpp_isa.Frame
module Buf = Tpp_util.Buf
module Ipv4 = Tpp_packet.Ipv4
module Stack = Tpp_endhost.Stack

let header_bytes = 28
let ctrl_dscp = 63

let kind_data = 0
let kind_pull = 1
let kind_nack = 2
let kind_ack = 3

type config = {
  window_pkts : int;      (* unsolicited spray at message start *)
  payload_bytes : int;    (* data bytes per packet, beyond the header *)
  rtx_timeout_ns : int;   (* receiver stall timer *)
  nack_burst : int;       (* missing offsets re-requested per stall *)
  pull_gap_ns : int;      (* min spacing between pulls; 0 = unpaced *)
  data_queue_bytes : int; (* shallow per-port data queue (trim point) *)
  ctrl_queue_bytes : int; (* top-priority queue budget per switch port *)
}

let default_config =
  {
    window_pkts = 8;
    payload_bytes = 1000;
    rtx_timeout_ns = 1_000_000;
    nack_burst = 8;
    pull_gap_ns = 0;
    data_queue_bytes = 9_000;
    ctrl_queue_bytes = 25_000;
  }

(* Fabric half of the protocol: two priority queues per port, a shallow
   data queue (NDP keeps latency low by trimming early, not by
   buffering), a small control budget, trim-to-header on data-queue
   overflow. *)
let enable_network net config =
  Net.enable_trimming net ~keep:header_bytes
    ~data_limit:config.data_queue_bytes ~ctrl_limit:config.ctrl_queue_bytes

type msg = {
  m_id : int;
  m_dst : Net.host;
  m_total : int;
  m_bytes : int;
  m_start : int;
  mutable m_sprayed : int;
  mutable m_next_new : int;  (* lowest offset never sent *)
  mutable m_data_sent : int;
  mutable m_pulls_rx : int;
  mutable m_nacks_rx : int;
  mutable m_urgent_rx : int;  (* urgent stall NACKs: may send unclocked *)
  m_rtx : int Queue.t;        (* NACKed offsets awaiting a pull *)
  m_rtx_pending : Bytes.t;    (* offset already queued for rtx *)
  m_sent_at : int array;      (* last transmission time per offset *)
  mutable m_pull_max : int;  (* highest pull counter seen *)
  mutable m_last_fb : int;   (* when feedback (pull/NACK) last arrived *)
  mutable m_acked : bool;
}

type rx = {
  r_src : Net.host;
  r_total : int;
  r_bytes : int;
  r_start : int;
  r_got : Bytes.t;  (* one byte per offset *)
  mutable r_got_count : int;
  mutable r_arrivals : int;  (* data + trimmed headers seen *)
  mutable r_pull_seq : int;
  mutable r_last_rx : int;
  mutable r_last_pull_tx : int;  (* when our pacer last pulled for it *)
  mutable r_complete : bool;
}

type stats = {
  started : int;
  completed : int;     (* sender side: ACKs received *)
  rx_completed : int;  (* receiver side: messages fully assembled *)
  data_tx : int;
  data_rx : int;
  trimmed_rx : int;    (* trimmed headers that reached the receiver *)
  pulls_tx : int;
  pulls_rx : int;
  nacks_tx : int;
  nacks_rx : int;
  acks_tx : int;
  acks_rx : int;
}

type t = {
  stack : Stack.t;
  config : config;
  port : int;
  by_ip : (int, Net.host) Hashtbl.t;  (* control replies need a host *)
  send_msgs : (int, msg) Hashtbl.t;
  rx_msgs : (int * int, rx) Hashtbl.t;  (* (src ip, msg_id) *)
  mutable next_msg_id : int;
  mutable next_pull_at : int;  (* pull pacer release time *)
  mutable on_complete :
    (now:int -> src:Ipv4.Addr.t -> bytes:int -> start_ns:int -> unit) option;
  (* counters — see [stats] *)
  mutable c_started : int;
  mutable c_completed : int;
  mutable c_rx_completed : int;
  mutable c_data_tx : int;
  mutable c_data_rx : int;
  mutable c_trimmed_rx : int;
  mutable c_pulls_tx : int;
  mutable c_pulls_rx : int;
  mutable c_nacks_tx : int;
  mutable c_nacks_rx : int;
  mutable c_acks_tx : int;
  mutable c_acks_rx : int;
  (* state-machine invariants, checked on the fly so the QCheck suite
     can assert them after arbitrary trim/drop schedules *)
  mutable v_credit : int;  (* data sends beyond spray + pulls + stalls *)
  mutable v_pull_order : int;  (* pull counters that went backwards *)
  mutable v_grant : int;  (* pulls sent without a matching arrival *)
}

let write_header b ~kind ~msg_id ~offset ~total ~bytes ~start_ns =
  Buf.set_u32i b 0 kind;
  Buf.set_u32i b 4 msg_id;
  Buf.set_u32i b 8 offset;
  Buf.set_u32i b 12 total;
  Buf.set_u32i b 16 bytes;
  Buf.set_u32i b 20 (start_ns lsr 32);
  Buf.set_u32i b 24 (start_ns land 0xFFFF_FFFF)

let send_ctrl t ~dst ~kind ~msg_id ~offset ~total ~bytes ~start_ns =
  let payload = Bytes.make header_bytes '\000' in
  write_header payload ~kind ~msg_id ~offset ~total ~bytes ~start_ns;
  Stack.send_udp t.stack ~dst ~src_port:t.port ~dst_port:t.port
    ~dscp:ctrl_dscp ~payload ()

let chunk_len t m offset =
  if offset < m.m_total - 1 then t.config.payload_bytes
  else m.m_bytes - ((m.m_total - 1) * t.config.payload_bytes)

(* Per-packet spraying: each data packet carries a src port derived
   from (msg_id, offset, attempt), so 5-tuple ECMP scatters a message
   across every equal-cost path instead of pinning it to one — that is
   NDP's core trick, and the reassembly bitmap is what makes the
   resulting reordering harmless. A retransmission changes its spray
   port ([m_data_sent] seeds the hash) so a congested path is not
   retried forever. Control stays on the fixed port: one path, FIFO
   priority queue, so pull counters arrive in order. *)
let send_data t m offset =
  m.m_data_sent <- m.m_data_sent + 1;
  if m.m_data_sent > m.m_sprayed + m.m_pulls_rx + m.m_urgent_rx then
    t.v_credit <- t.v_credit + 1;
  t.c_data_tx <- t.c_data_tx + 1;
  let spray =
    ((m.m_id * 131) + (offset * 37) + (m.m_data_sent * 13)) land 63
  in
  m.m_sent_at.(offset) <- Stack.now t.stack;
  let payload = Bytes.make (header_bytes + chunk_len t m offset) '\000' in
  write_header payload ~kind:kind_data ~msg_id:m.m_id ~offset ~total:m.m_total
    ~bytes:m.m_bytes ~start_ns:m.m_start;
  Stack.send_udp t.stack ~dst:m.m_dst ~src_port:(t.port + 1 + spray)
    ~dst_port:t.port ~payload ()

(* ---- sender-side control arrivals ---- *)

(* One pull = permission for one transmission: retransmissions first
   (a NACKed offset is a known hole), new data after. Keeping every
   retransmission pull-clocked is what stops trim storms from
   collapsing the fabric — in-flight per message never exceeds the
   spray window. *)
let serve_one t m =
  if not (Queue.is_empty m.m_rtx) then begin
    let offset = Queue.pop m.m_rtx in
    Bytes.set m.m_rtx_pending offset '\000';
    send_data t m offset
  end
  else if m.m_next_new < m.m_total then begin
    send_data t m m.m_next_new;
    m.m_next_new <- m.m_next_new + 1
  end

let on_pull t m ~offset =
  t.c_pulls_rx <- t.c_pulls_rx + 1;
  m.m_pulls_rx <- m.m_pulls_rx + 1;
  m.m_last_fb <- Stack.now t.stack;
  (* Same 5-tuple, same path, FIFO control queue: pull counters arrive
     strictly increasing (drops leave gaps, never reorderings). *)
  if offset <= m.m_pull_max then t.v_pull_order <- t.v_pull_order + 1
  else m.m_pull_max <- offset;
  serve_one t m

(* NACK flags, carried in the header's [bytes] word. *)
let nack_stall = 2  (* from the stall timer, not from a trimmed header *)
let nack_urgent = 1 (* the sender may answer without waiting for a pull *)

let on_nack t m ~offset ~flags =
  t.c_nacks_rx <- t.c_nacks_rx + 1;
  m.m_nacks_rx <- m.m_nacks_rx + 1;
  m.m_last_fb <- Stack.now t.stack;
  if offset >= 0 && offset < m.m_total then begin
    (* A trim NACK means the copy we sent is known dead: requeue it.
       A stall NACK is only the receiver guessing — if we transmitted
       that offset recently the copy is probably still in flight, and
       resending it is how stale NACKs snowball into duplicate storms.
       Guard stalls with a per-offset recent-send check. *)
    let guard = t.config.rtx_timeout_ns / 2 in
    let fresh =
      flags land nack_stall = 0
      || Stack.now t.stack - m.m_sent_at.(offset) >= guard
    in
    if fresh && Bytes.get m.m_rtx_pending offset = '\000' then begin
      Bytes.set m.m_rtx_pending offset '\001';
      Queue.push offset m.m_rtx
    end;
    (* An urgent NACK is the liveness path: the receiver's clock died
       (every in-flight packet or pull was lost outright), so one
       unclocked transmission restarts it. Urgent NACKs are paced by
       the receiver's stall timeout — at most one per message per
       timeout — so this cannot re-create the very overload trimming
       exists to absorb. *)
    if flags land nack_urgent <> 0 then begin
      m.m_urgent_rx <- m.m_urgent_rx + 1;
      serve_one t m
    end
  end

let on_ack t m =
  t.c_acks_rx <- t.c_acks_rx + 1;
  if not m.m_acked then begin
    m.m_acked <- true;
    t.c_completed <- t.c_completed + 1;
    Hashtbl.remove t.send_msgs m.m_id
  end

(* The sender's last-resort liveness timer. Loss recovery is
   receiver-driven (stall NACKs), which assumes the receiver both knows
   the message exists and can still reach us; neither holds when every
   unsolicited spray copy dies in flight (no receiver state, so no NACK
   will ever come) or when the final ACK is the packet that was lost
   (the receiver is done and its stall timer is off, so nothing will
   ever be resent). The timer stays armed until the ACK lands but acts
   only in those two states — before any feedback at all, or after
   every offset has been transmitted and the retransmit queue is empty
   — and only once the message has been quiet for a full timeout. Then
   it resprays one packet: an incomplete receiver counts the arrival
   and pulls, a complete one re-ACKs the duplicate. Mid-transfer
   stalls stay receiver-driven (stall NACKs are feedback and reset the
   quiet clock); resending on mere pull gaps there would duplicate
   data that is simply queued behind other messages' pulls. *)
let rec tx_timer t m () =
  if not m.m_acked then begin
    let quiet =
      Stack.now t.stack - max m.m_start m.m_last_fb
      >= t.config.rtx_timeout_ns
    in
    let never_heard = m.m_pulls_rx = 0 && m.m_nacks_rx = 0 in
    let fully_sent = m.m_next_new >= m.m_total && Queue.is_empty m.m_rtx in
    if quiet && (never_heard || fully_sent) then begin
      m.m_sprayed <- m.m_sprayed + 1;
      send_data t m 0
    end;
    Stack.after t.stack t.config.rtx_timeout_ns (tx_timer t m)
  end

(* ---- receiver side ---- *)

let rx_key frame ~msg_id = (Ipv4.Addr.to_int (Frame.ip_src frame), msg_id)

(* The stall timer: self-rescheduling and guarded by [r_complete], so a
   finished message schedules nothing further (the same cancellation
   discipline as [Dctcp.Receiver]). A message is stalled only when
   nothing has arrived for it AND our own pacer has not pulled for it
   within the timeout — a message whose pull is still queued behind
   other messages' pulls is waiting, not stalled. On a genuine stall it
   re-NACKs up to [nack_burst] missing offsets (retrying both lost data
   and lost pulls, which is what guarantees completion under random
   drops), and only the FIRST carries the urgent bit: one unclocked
   retransmission per stall restarts the clock without becoming an
   unclocked firehose when many messages stall at once. *)
let rec rx_timer t ~msg_id r () =
  if not r.r_complete then begin
    let now = Stack.now t.stack in
    let quiet = now - max r.r_last_rx r.r_last_pull_tx in
    if quiet >= t.config.rtx_timeout_ns then begin
      let sent = ref 0 in
      let o = ref 0 in
      while !sent < t.config.nack_burst && !o < r.r_total do
        if Bytes.get r.r_got !o = '\000' then begin
          incr sent;
          t.c_nacks_tx <- t.c_nacks_tx + 1;
          send_ctrl t ~dst:r.r_src ~kind:kind_nack ~msg_id ~offset:!o
            ~total:r.r_total
            ~bytes:(if !sent = 1 then nack_stall lor nack_urgent
                    else nack_stall)
            ~start_ns:0
        end;
        incr o
      done;
      r.r_last_rx <- now
    end;
    Stack.after t.stack t.config.rtx_timeout_ns (rx_timer t ~msg_id r)
  end

(* The pull pacer. Each arrival earns one pull, but pulls leave the
   endpoint no faster than one per [pull_gap_ns] — the serialization
   time of a full data packet on the access link — shared across every
   message being received. Without pacing, trimmed headers (which
   arrive at control-queue speed, far faster than the data queue
   drains) would each pull a retransmission straight back into the
   still-full data queue: a trim storm. Pacing makes the pull clock
   tick at the rate the receiver can actually absorb data.
   [pull_gap_ns = 0] disables pacing for tiny single-flow nets. *)
let fire_pull t r ~msg_id () =
  if not r.r_complete then begin
    r.r_last_pull_tx <- Stack.now t.stack;
    r.r_pull_seq <- r.r_pull_seq + 1;
    if r.r_pull_seq > r.r_arrivals then t.v_grant <- t.v_grant + 1;
    t.c_pulls_tx <- t.c_pulls_tx + 1;
    send_ctrl t ~dst:r.r_src ~kind:kind_pull ~msg_id ~offset:r.r_pull_seq
      ~total:r.r_total ~bytes:0 ~start_ns:0
  end

let schedule_pull t r ~msg_id =
  let gap = t.config.pull_gap_ns in
  if gap = 0 then fire_pull t r ~msg_id ()
  else begin
    let now = Stack.now t.stack in
    let at = if t.next_pull_at > now then t.next_pull_at else now in
    t.next_pull_at <- at + gap;
    if at = now then fire_pull t r ~msg_id ()
    else Stack.after t.stack (at - now) (fire_pull t r ~msg_id)
  end

let on_data t ~now frame ~msg_id ~offset ~total ~bytes ~start_ns =
  let key = rx_key frame ~msg_id in
  let r =
    match Hashtbl.find_opt t.rx_msgs key with
    | Some r -> r
    | None ->
      let src =
        match Hashtbl.find_opt t.by_ip (fst key) with
        | Some h -> h
        | None -> invalid_arg "Ndp: data from unknown host"
      in
      let r =
        {
          r_src = src;
          r_total = total;
          r_bytes = bytes;
          r_start = start_ns;
          r_got = Bytes.make total '\000';
          r_got_count = 0;
          r_arrivals = 0;
          r_pull_seq = 0;
          r_last_rx = now;
          r_last_pull_tx = now;
          r_complete = false;
        }
      in
      Hashtbl.replace t.rx_msgs key r;
      Stack.after t.stack t.config.rtx_timeout_ns (rx_timer t ~msg_id r);
      r
  in
  if r.r_complete then begin
    (* Duplicate after completion (our ACK may have been lost): just
       re-ACK. *)
    t.c_acks_tx <- t.c_acks_tx + 1;
    send_ctrl t ~dst:r.r_src ~kind:kind_ack ~msg_id ~offset:0 ~total:r.r_total
      ~bytes:0 ~start_ns:0
  end
  else begin
    r.r_last_rx <- now;
    r.r_arrivals <- r.r_arrivals + 1;
    let trimmed = Frame.payload_len frame <= header_bytes in
    if trimmed then begin
      t.c_trimmed_rx <- t.c_trimmed_rx + 1;
      (* NACK-on-trim: the switch already told us which packet lost its
         payload; queue it at the sender for pull-clocked resend. *)
      if offset >= 0 && offset < r.r_total && Bytes.get r.r_got offset = '\000'
      then begin
        t.c_nacks_tx <- t.c_nacks_tx + 1;
        send_ctrl t ~dst:r.r_src ~kind:kind_nack ~msg_id ~offset
          ~total:r.r_total ~bytes:0 ~start_ns:0
      end
    end
    else begin
      t.c_data_rx <- t.c_data_rx + 1;
      if offset >= 0 && offset < r.r_total && Bytes.get r.r_got offset = '\000'
      then begin
        Bytes.set r.r_got offset '\001';
        r.r_got_count <- r.r_got_count + 1
      end
    end;
    (* Every arrival — data or trimmed header — earns one credit until
       the message is whole; the pacer decides when the pull actually
       leaves, and the clock keeps running while retransmissions are
       outstanding. *)
    if r.r_got_count < r.r_total then schedule_pull t r ~msg_id;
    if r.r_got_count = r.r_total then begin
      r.r_complete <- true;
      t.c_rx_completed <- t.c_rx_completed + 1;
      t.c_acks_tx <- t.c_acks_tx + 1;
      send_ctrl t ~dst:r.r_src ~kind:kind_ack ~msg_id ~offset:0
        ~total:r.r_total ~bytes:0 ~start_ns:0;
      match t.on_complete with
      | Some f ->
        f ~now ~src:(Frame.ip_src frame) ~bytes:r.r_bytes ~start_ns:r.r_start
      | None -> ()
    end
  end

let handle t ~now frame =
  if Frame.payload_len frame >= header_bytes then begin
    let kind = Frame.payload_u32 frame 0 in
    let msg_id = Frame.payload_u32 frame 4 in
    let offset = Frame.payload_u32 frame 8 in
    if kind = kind_data then
      on_data t ~now frame ~msg_id ~offset ~total:(Frame.payload_u32 frame 12)
        ~bytes:(Frame.payload_u32 frame 16)
        ~start_ns:
          ((Frame.payload_u32 frame 20 lsl 32) lor Frame.payload_u32 frame 24)
    else
      match Hashtbl.find_opt t.send_msgs msg_id with
      | None -> ()  (* control for a message already ACKed and dropped *)
      | Some m ->
        if kind = kind_pull then on_pull t m ~offset
        else if kind = kind_nack then
          on_nack t m ~offset ~flags:(Frame.payload_u32 frame 16)
        else if kind = kind_ack then on_ack t m
  end

let create ?(config = default_config) stack ~port =
  if config.window_pkts <= 0 || config.payload_bytes <= 0 then
    invalid_arg "Ndp.create: config";
  let by_ip = Hashtbl.create 64 in
  List.iter
    (fun (h : Net.host) -> Hashtbl.replace by_ip (Ipv4.Addr.to_int h.Net.ip) h)
    (Net.hosts (Stack.net stack));
  let t =
    {
      stack;
      config;
      port;
      by_ip;
      send_msgs = Hashtbl.create 32;
      rx_msgs = Hashtbl.create 32;
      next_msg_id = 1;
      next_pull_at = 0;
      on_complete = None;
      c_started = 0;
      c_completed = 0;
      c_rx_completed = 0;
      c_data_tx = 0;
      c_data_rx = 0;
      c_trimmed_rx = 0;
      c_pulls_tx = 0;
      c_pulls_rx = 0;
      c_nacks_tx = 0;
      c_nacks_rx = 0;
      c_acks_tx = 0;
      c_acks_rx = 0;
      v_credit = 0;
      v_pull_order = 0;
      v_grant = 0;
    }
  in
  Stack.on_udp stack ~port (fun ~now frame -> handle t ~now frame);
  t

let set_on_complete t f = t.on_complete <- Some f

let send t ~dst ~bytes =
  if bytes <= 0 then invalid_arg "Ndp.send: bytes";
  let total = (bytes + t.config.payload_bytes - 1) / t.config.payload_bytes in
  let m =
    {
      m_id = t.next_msg_id;
      m_dst = dst;
      m_total = total;
      m_bytes = bytes;
      m_start = Stack.now t.stack;
      m_sprayed = 0;
      m_next_new = 0;
      m_data_sent = 0;
      m_pulls_rx = 0;
      m_nacks_rx = 0;
      m_urgent_rx = 0;
      m_rtx = Queue.create ();
      m_rtx_pending = Bytes.make total '\000';
      m_sent_at = Array.make total 0;
      m_pull_max = 0;
      m_last_fb = 0;
      m_acked = false;
    }
  in
  t.next_msg_id <- t.next_msg_id + 1;
  t.c_started <- t.c_started + 1;
  Hashtbl.replace t.send_msgs m.m_id m;
  (* Unsolicited spray: the first window goes out immediately (the NIC
     serialises it at line rate); everything after is pull-clocked. *)
  let w = min t.config.window_pkts total in
  m.m_sprayed <- w;
  for offset = 0 to w - 1 do
    send_data t m offset
  done;
  m.m_next_new <- w;
  Stack.after t.stack t.config.rtx_timeout_ns (tx_timer t m);
  m.m_id

let stats t =
  {
    started = t.c_started;
    completed = t.c_completed;
    rx_completed = t.c_rx_completed;
    data_tx = t.c_data_tx;
    data_rx = t.c_data_rx;
    trimmed_rx = t.c_trimmed_rx;
    pulls_tx = t.c_pulls_tx;
    pulls_rx = t.c_pulls_rx;
    nacks_tx = t.c_nacks_tx;
    nacks_rx = t.c_nacks_rx;
    acks_tx = t.c_acks_tx;
    acks_rx = t.c_acks_rx;
  }

let violations t =
  [
    ("credit", t.v_credit);
    ("pull_order", t.v_pull_order);
    ("grant", t.v_grant);
  ]

let invariants_ok t = t.v_credit = 0 && t.v_pull_order = 0 && t.v_grant = 0

(* Receiver-side credit audit for the property tests: pulls are clocked
   by arrivals (at most one per packet seen), and the assembled bitmap
   never claims more packets than the message has. *)
let fold_rx_credit t =
  Hashtbl.fold
    (fun _ r acc ->
      acc && r.r_pull_seq <= r.r_arrivals && r.r_got_count <= r.r_total)
    t.rx_msgs true

let outstanding t = Hashtbl.length t.send_msgs
let port t = t.port

