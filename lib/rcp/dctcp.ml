module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Buf = Tpp_util.Buf
module Stack = Tpp_endhost.Stack
module Flow = Tpp_endhost.Flow

type config = {
  report_period_ns : int;
  rtt_ns : int;
  gain : float;
  min_rate_bps : int;
  max_rate_bps : int;
  initial_rate_bps : int;
}

let default_config ~max_rate_bps =
  {
    report_period_ns = 40_000_000;
    rtt_ns = 40_000_000;
    gain = 1.0 /. 16.0;
    min_rate_bps = 50_000;
    max_rate_bps;
    initial_rate_bps = max 50_000 (max_rate_bps / 10);
  }

module Receiver = struct
  type t = { mutable running : bool }

  (* Self-rescheduling tick rather than [Engine.every ~until:max_int]:
     once [stop] clears [running] no further event is scheduled, so a
     finished flow leaves nothing ticking on the wheel for the rest of
     the simulation. *)
  let attach stack ~sink ~report_to ~report_port ~period =
    let t = { running = true } in
    let eng = Net.engine (Stack.net stack) in
    let rec tick () =
      if t.running then begin
        let payload = Bytes.create 8 in
        Buf.set_u32i payload 0 (Flow.Sink.rx_pkts sink);
        Buf.set_u32i payload 4 (Flow.Sink.ce_marked sink);
        Stack.send_udp stack ~dst:report_to ~src_port:report_port
          ~dst_port:report_port ~payload ();
        Engine.after eng period tick
      end
    in
    Engine.after eng period tick;
    t

  let stop t = t.running <- false
end

(* Receiver counters ride the wire as u32, so a long-lived flow wraps
   them after 2^32 packets; deltas must be computed modulo 2^32 or the
   [d_total > 0] guard below freezes the rate forever once [total]
   wraps below [last_total]. *)
let u32_delta ~last ~cur = (cur - last) land 0xFFFF_FFFF

type t = {
  stack : Stack.t;
  config : config;
  flow : Flow.t;
  mutable running : bool;
  mutable last_total : int;
  mutable last_marked : int;
  mutable alpha : float;
  mutable marked : int;
}

let create stack config ~flow ~report_port =
  let t =
    { stack; config; flow; running = false; last_total = 0; last_marked = 0;
      alpha = 0.0; marked = 0 }
  in
  Stack.on_udp stack ~port:report_port (fun ~now:_ frame ->
      if t.running && Tpp_isa.Frame.payload_len frame >= 8 then begin
        let total = Tpp_isa.Frame.payload_u32 frame 0 in
        let marked = Tpp_isa.Frame.payload_u32 frame 4 in
        let d_total = u32_delta ~last:t.last_total ~cur:total in
        let d_marked = u32_delta ~last:t.last_marked ~cur:marked in
        t.last_total <- total;
        t.last_marked <- marked;
        if d_total > 0 then begin
          t.marked <- t.marked + d_marked;
          let fraction = float_of_int d_marked /. float_of_int d_total in
          t.alpha <- ((1.0 -. t.config.gain) *. t.alpha) +. (t.config.gain *. fraction);
          let rate = Flow.rate_bps t.flow in
          let new_rate =
            if d_marked > 0 then
              int_of_float (float_of_int rate *. (1.0 -. (t.alpha /. 2.0)))
            else
              rate + (Flow.wire_pkt_bytes t.flow * 8 * 1_000_000_000 / t.config.rtt_ns)
          in
          Flow.set_rate t.flow
            ~rate_bps:(max t.config.min_rate_bps (min t.config.max_rate_bps new_rate))
        end
      end);
  t

let start t =
  t.running <- true;
  Flow.set_rate t.flow ~rate_bps:t.config.initial_rate_bps

let stop t = t.running <- false

let current_rate_bps t = Flow.rate_bps t.flow
let alpha t = t.alpha
let marked_seen t = t.marked
