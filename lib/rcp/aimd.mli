(** A TCP-like AIMD rate controller — the status-quo baseline the paper
    contrasts RCP with ("TCP and its variants still remain the dominant
    congestion control algorithms", §2.2).

    Rate-based additive-increase / multiplicative-decrease: the
    receiver reports its cumulative loss count (sequence holes) once
    per period; on a report showing new losses the sender halves its
    rate, otherwise it adds roughly one packet per RTT. No dataplane
    support is needed — which is exactly why it converges so much more
    slowly than RCP*, and why short flows suffer (experiment E9). *)

module Net = Tpp_sim.Net
module Stack = Tpp_endhost.Stack
module Flow = Tpp_endhost.Flow

type config = {
  report_period_ns : int;   (** receiver report interval (~1 RTT) *)
  rtt_ns : int;
  md_factor : float;        (** rate multiplier on loss (0.5) *)
  min_rate_bps : int;
  max_rate_bps : int;
  initial_rate_bps : int;   (** slow-start stand-in: start low *)
}

val default_config : max_rate_bps:int -> config

(** Receiver side: watches a {!Flow.Sink} and reports its loss count to
    the sender. *)
module Receiver : sig
  type t

  val attach :
    Stack.t ->
    sink:Flow.Sink.t ->
    report_to:Net.host ->
    report_port:int ->
    period:int ->
    t

  val stop : t -> unit
  (** Cancels the periodic report: no further timer event is scheduled
      once the current one fires. *)
end

type t

val create : Stack.t -> config -> flow:Flow.t -> report_port:int -> t
(** Listens for loss reports on [report_port] and paces [flow]. *)

val start : t -> unit
val stop : t -> unit

val current_rate_bps : t -> int
val losses_seen : t -> int
val reports_received : t -> int
