(* CONGA-flavored TPP load balancer (tentpole, with Flowlet): the
   sender probes each candidate ECMP path with a TPP that reads
   [Link:QueueSize] (the per-hop queued-bytes register) at every hop,
   and steers the flow onto the least-loaded path — but only at flowlet
   boundaries, so re-steering can never reorder a burst.

   Path choice is the flow's UDP source port: every switch hashes the
   5-tuple for ECMP, so rewriting [Flow.set_src_port] moves the flow to
   a different (deterministic) path. Probes share the flow's
   destination host and port but carry a candidate source port, so each
   probe measures exactly the path data would take with that port. The
   destination echoes TPP-carrying frames ({!Probe.install_echo_on_port}
   on the flow port); replies come back on {!Probe.reply_port} and are
   matched to candidates through the pending-sequence table.

   Everything is host-local state driven by packet arrivals and epoch-
   guarded timers, so steering decisions are bit-deterministic and
   shard-safe; [steer_fp] fingerprints the full decision sequence for
   the property tests. *)

module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Tpp = Tpp_isa.Tpp
module Asm = Tpp_isa.Asm
module Frame = Tpp_isa.Frame
module Udp = Tpp_packet.Udp
module Buf = Tpp_util.Buf
module Stack = Tpp_endhost.Stack
module Flow = Tpp_endhost.Flow
module Probe = Tpp_endhost.Probe
module Flowlet = Tpp_endhost.Flowlet

type config = {
  probe_period_ns : int;   (* one candidate is probed per tick *)
  flowlet_gap_ns : int;
  max_hops : int;
  num_paths : int;         (* candidate source ports *)
  port_stride : int;       (* spacing between candidate ports *)
  piggyback_every : int option;
      (* when set, every nth data packet also carries the collect TPP;
         its echo refreshes the current path's load for free *)
}

let default_config =
  {
    probe_period_ns = 500_000;
    flowlet_gap_ns = 100_000;
    max_hops = 8;
    num_paths = 4;
    port_stride = 7;
    piggyback_every = None;
  }

(* Two words per hop: who measured, and the queue behind the egress
   link the packet took there. *)
let collect_source = "PUSH [Switch:SwitchID]\nPUSH [Link:QueueSize]\n"
let words_per_hop = 2

(* Max queued bytes over the path — the bottleneck congestion metric.
   The echo executes hops on the forward (candidate) path; the reply
   itself is a plain datagram, so nothing is appended on the way
   back. *)
let path_load tpp =
  let rec go acc = function
    | _sw :: q :: rest -> go (max acc q) rest
    | _ -> acc
  in
  go 0 (Tpp.stack_values tpp)

(* Disjoint echo-sequence blocks per balancer, same scheme as
   [Probe.Reliable]: several controllers can share one host's reply
   stream. *)
let seq_block = 1 lsl 20
let next_uid = ref 0

type t = {
  stack : Stack.t;
  config : config;
  flow : Flow.t;
  dst : Net.host;
  collect_tpp : Tpp.t;
  ports : int array;    (* candidate source ports; index = path id *)
  loads : int array;    (* latest sampled load per path *)
  samples : int array;
  flowlet : Flowlet.t;
  pending : (int, int) Hashtbl.t;  (* probe seq -> path id *)
  seq_base : int;
  mutable seq : int;
  mutable rr : int;     (* next candidate to probe *)
  mutable current : int;
  mutable running : bool;
  mutable epoch : int;
  mutable probes_sent : int;
  mutable replies_seen : int;
  mutable decisions : int;  (* steering evaluations at a boundary *)
  mutable moves : int;      (* decisions that changed path *)
  mutable steer_fp : int;   (* order-sensitive decision fingerprint *)
}

let mix fp v = ((fp * 0x100_0193) lxor v) land max_int

let maybe_steer t ~now =
  if Flowlet.boundary t.flowlet ~last_tx:(Flow.last_tx_ns t.flow) ~now then begin
    t.decisions <- t.decisions + 1;
    let best = ref t.current in
    for i = 0 to t.config.num_paths - 1 do
      if t.loads.(i) < t.loads.(!best) then best := i
    done;
    if !best <> t.current then begin
      t.current <- !best;
      t.moves <- t.moves + 1;
      Flow.set_src_port t.flow t.ports.(!best)
    end;
    t.steer_fp <- mix (mix t.steer_fp now) t.current
  end

let on_reply t ~now seq tpp =
  if t.running then begin
    match Hashtbl.find_opt t.pending seq with
    | Some path ->
      Hashtbl.remove t.pending seq;
      t.replies_seen <- t.replies_seen + 1;
      t.loads.(path) <- path_load tpp;
      t.samples.(path) <- t.samples.(path) + 1;
      maybe_steer t ~now
    | None -> ()
  end

let next_seq t =
  t.seq <- t.seq + 1;
  t.seq_base + t.seq

let send_probe t path =
  let seq = next_seq t in
  Hashtbl.replace t.pending seq path;
  t.probes_sent <- t.probes_sent + 1;
  let payload = Bytes.create 4 in
  Buf.set_u32i payload 0 seq;
  Stack.send_udp t.stack ~dst:t.dst ~src_port:t.ports.(path)
    ~dst_port:(Flow.port t.flow) ~tpp:(Tpp.copy t.collect_tpp) ~payload ()

let engine t = Net.engine (Stack.net t.stack)

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    send_probe t t.rr;
    t.rr <- (t.rr + 1) mod t.config.num_paths;
    Engine.after (engine t) t.config.probe_period_ns (tick t epoch)
  end

let create ?(config = default_config) stack ~flow ~dst =
  if config.num_paths <= 0 then invalid_arg "Tpp_lb.create: num_paths";
  if config.port_stride <= 0 then invalid_arg "Tpp_lb.create: port_stride";
  let collect_tpp =
    match
      Asm.to_tpp ~defines:[]
        ~mem_len:(4 * words_per_hop * config.max_hops)
        collect_source
    with
    | Ok tpp -> tpp
    | Error e -> invalid_arg ("Tpp_lb.create: collect program: " ^ e)
  in
  incr next_uid;
  let t =
    {
      stack;
      config;
      flow;
      dst;
      collect_tpp;
      ports =
        Array.init config.num_paths (fun i ->
            Flow.port flow + (i * config.port_stride));
      loads = Array.make config.num_paths 0;
      samples = Array.make config.num_paths 0;
      flowlet = Flowlet.create ~gap_ns:config.flowlet_gap_ns;
      pending = Hashtbl.create 16;
      seq_base = !next_uid * seq_block;
      seq = 0;
      rr = 0;
      current = 0;
      running = false;
      epoch = 0;
      probes_sent = 0;
      replies_seen = 0;
      decisions = 0;
      moves = 0;
      steer_fp = 0;
    }
  in
  Probe.install_reply_handler stack (fun ~now ~seq tpp ->
      if seq > t.seq_base && seq <= t.seq_base + t.seq then
        on_reply t ~now seq tpp);
  (* Piggyback: data packets occasionally carry the collect TPP; their
     echoes come back with the data sequence number (outside our
     block) and the flow's port as echo source — attribute them to the
     path the flow is currently on. *)
  (match config.piggyback_every with
  | None -> ()
  | Some every ->
    Flow.carry_tpp flow ~every collect_tpp;
    let flow_port = Flow.port flow in
    Stack.on_udp_add stack ~port:Probe.reply_port (fun ~now frame ->
        if t.running then
          match Frame.udp frame with
          | Some u when u.Udp.src_port = flow_port -> (
            match Probe.decode_echo (Frame.payload frame) with
            | Some (seq, tpp)
              when seq < t.seq_base || seq > t.seq_base + seq_block ->
              t.replies_seen <- t.replies_seen + 1;
              t.loads.(t.current) <- path_load tpp;
              t.samples.(t.current) <- t.samples.(t.current) + 1;
              maybe_steer t ~now
            | Some _ | None -> ())
          | _ -> ()));
  t

let start t ?at () =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let eng = engine t in
    let begin_at =
      match at with
      | Some time -> max time (Engine.now eng)
      | None -> Engine.now eng
    in
    Engine.at eng begin_at (tick t t.epoch)
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let current_path t = t.current
let current_src_port t = t.ports.(t.current)
let path_loads t = Array.copy t.loads
let path_samples t = Array.copy t.samples
let probes_sent t = t.probes_sent
let replies_seen t = t.replies_seen
let decisions t = t.decisions
let moves t = t.moves
let steer_fingerprint t = t.steer_fp
let flowlet t = t.flowlet
