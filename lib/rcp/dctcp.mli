(** A DCTCP-style controller over fixed-function ECN — the second
    status-quo baseline.

    The paper's §4 names ECN as the archetypal baked-in dataplane
    feature ("a router stamps a bit ... whenever the egress queue
    occupancy exceeds a configurable threshold"); DCTCP is the best
    practice built on it. The receiver reports the cumulative count of
    CE-marked packets each period; the sender keeps an EWMA [alpha] of
    the marked fraction and scales its rate by [1 - alpha/2] per marked
    window, increasing additively otherwise.

    Compared in experiment E11 against RCP*: ECN delivers one bit of
    congestion information per packet, a TPP delivers the whole queue
    register — which is exactly the paper's generality argument. *)

module Stack = Tpp_endhost.Stack
module Flow = Tpp_endhost.Flow
module Net = Tpp_sim.Net

type config = {
  report_period_ns : int;
  rtt_ns : int;
  gain : float;             (** EWMA gain g (1/16) *)
  min_rate_bps : int;
  max_rate_bps : int;
  initial_rate_bps : int;
}

val default_config : max_rate_bps:int -> config

module Receiver : sig
  type t

  val attach :
    Stack.t ->
    sink:Flow.Sink.t ->
    report_to:Net.host ->
    report_port:int ->
    period:int ->
    t

  val stop : t -> unit
  (** Cancels the periodic report: no further timer event is scheduled
      once the current one fires, so stopped receivers leave nothing on
      the event wheel. *)
end

val u32_delta : last:int -> cur:int -> int
(** Wrap-aware u32 subtraction: [(cur - last) mod 2^32]. Receiver
    reports carry cumulative counters as u32, which wrap after 2^32
    packets. *)

type t

val create : Stack.t -> config -> flow:Flow.t -> report_port:int -> t
val start : t -> unit
val stop : t -> unit

val current_rate_bps : t -> int
val alpha : t -> float
(** The smoothed marked fraction. *)

val marked_seen : t -> int
