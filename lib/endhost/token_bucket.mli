(** Token-bucket rate limiter.

    The RCP* implementation (paper §2.2) needs "a rate limiter ... at
    end-hosts for every flow"; this is it. Tokens are bytes. *)

type t

val create : rate_bps:int -> burst_bytes:int -> now:int -> t

val set_rate : t -> now:int -> rate_bps:int -> unit
(** Accrues tokens at the old rate up to [now], then switches rate. *)

val rate_bps : t -> int

val take : t -> now:int -> bytes:int -> bool
(** [true] when [bytes] tokens were available (and are consumed). *)

val delay_until_ready : t -> now:int -> bytes:int -> int
(** Nanoseconds until [bytes] tokens will have accrued; 0 if ready.
    The returned delay is rounded up until the bucket's own accrual
    arithmetic provably covers [bytes], so [take] at [now + delay]
    always succeeds. Raises [Invalid_argument] when
    [bytes > burst_bytes]: the bucket caps at its burst size, so such a
    request could never be satisfied and a pacing loop would spin. *)
