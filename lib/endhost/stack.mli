(** A tiny UDP application stack on a simulated host.

    Demultiplexes received frames by UDP destination port so several
    applications (a flow sink, the probe echo server, an RCP*
    controller) can share one host. *)

module Net = Tpp_sim.Net
module Frame = Tpp_isa.Frame

type t

val create : Net.t -> Net.host -> t
(** Takes over the host's receive callback. One stack per host. *)

val net : t -> Net.t
val host : t -> Net.host
val now : t -> int

val at : t -> int -> (unit -> unit) -> unit
(** Schedules a callback on the host's engine at an absolute time —
    the stack-level timer facility, so applications (probe timeouts,
    controller ticks) never reach through [Net] for the engine. *)

val after : t -> int -> (unit -> unit) -> unit
(** [after t span f]: [f] runs [span] ns from now. *)

val on_udp : t -> port:int -> (now:int -> Frame.t -> unit) -> unit
(** Registers (or replaces) the handler for a UDP destination port. *)

val on_udp_add : t -> port:int -> (now:int -> Frame.t -> unit) -> unit
(** Adds a handler without displacing existing ones; every handler for
    the port sees every datagram (they filter their own traffic).
    Probe replies use this so several controllers can share a host. *)

val on_default : t -> (now:int -> Frame.t -> unit) -> unit
(** Handler for frames that are not UDP or have no registered port. *)

val send_udp :
  t ->
  dst:Net.host ->
  src_port:int ->
  dst_port:int ->
  ?dscp:int ->
  ?tpp:Tpp_isa.Tpp.t ->
  payload:bytes ->
  unit ->
  unit
(** Builds and transmits a UDP datagram to [dst]; with [tpp] the frame
    becomes a TPP frame encapsulating the datagram. [dscp] (default 0)
    marks the datagram for a switch priority queue — NDP control
    packets ride the top queue this way. *)

val udp_sent : t -> int
(** Datagrams transmitted through {!send_udp} so far. *)

val udp_received : t -> int
(** Frames delivered to this stack's dispatcher so far. Comparing with
    a peer's {!udp_sent} gives a loss count under fault injection. *)
