module Net = Tpp_sim.Net
module Frame = Tpp_isa.Frame
module Tpp = Tpp_isa.Tpp
module Buf = Tpp_util.Buf

let request_port = 7777
let reply_port = 7778

(* Echo payload: [seq:u32] followed by the serialised executed TPP. *)
let encode_echo ~seq tpp =
  let w = Buf.Writer.create ~capacity:64 () in
  Buf.Writer.u32i w seq;
  Tpp.write w tpp;
  Buf.Writer.contents w

let decode_echo payload =
  let r = Buf.Reader.of_bytes payload in
  match
    let seq = Buf.Reader.u32i r in
    (seq, Tpp.read r)
  with
  | seq, Ok tpp -> Some (seq, tpp)
  | _, Error _ -> None
  | exception Buf.Out_of_bounds _ -> None
  | exception Invalid_argument _ -> None

let echo_back stack ~now:_ frame =
  match frame.Frame.tpp with
  | Some tpp when Frame.has_ip frame && Frame.has_udp frame ->
    let seq =
      if Frame.payload_len frame >= 4 then Frame.payload_u32 frame 0 else 0
    in
    (* Reply straight to the requester's addresses; the echo is a
       plain datagram, so the TPP executes only on the forward path. *)
    let reply =
      Frame.udp_frame
        ~src_mac:(Stack.host stack).Net.mac
        ~dst_mac:(Frame.eth_src frame)
        ~src_ip:(Frame.ip_dst frame) ~dst_ip:(Frame.ip_src frame)
        ~src_port:(Frame.udp_dst_port frame) ~dst_port:reply_port
        ~payload:(encode_echo ~seq tpp) ()
    in
    Net.host_send (Stack.net stack) (Stack.host stack) reply
  | _ -> ()

let install_echo stack =
  Stack.on_udp stack ~port:request_port (fun ~now frame -> echo_back stack ~now frame)

let install_echo_on_port stack ~port =
  Stack.on_udp_add stack ~port (fun ~now frame ->
      if Option.is_some frame.Frame.tpp then echo_back stack ~now frame)

let send stack ~dst ~tpp ~seq =
  let payload = Bytes.create 4 in
  Buf.set_u32i payload 0 seq;
  Stack.send_udp stack ~dst ~src_port:request_port ~dst_port:request_port
    ~tpp:(Tpp.copy tpp) ~payload ()

let install_reply_handler stack callback =
  Stack.on_udp_add stack ~port:reply_port (fun ~now frame ->
      match decode_echo (Frame.payload frame) with
      | Some (seq, tpp) -> callback ~now ~seq tpp
      | None -> ())

module Reliable = struct
  module Engine = Tpp_sim.Engine

  type stats = {
    probes : int;
    transmissions : int;
    replies : int;
    late : int;
    failures : int;
  }

  type outstanding = {
    o_seq : int;
    o_dst : Net.host;
    o_tpp : Tpp.t;
    mutable o_attempts : int; (* transmissions so far *)
    mutable o_done : bool;
    o_on_reply : (now:int -> Tpp.t -> unit) option;
    o_on_fail : (now:int -> unit) option;
  }

  type event = Retry | Failure

  type t = {
    stack : Stack.t;
    timeout : int;
    retries : int;
    backoff : float;
    seq_base : int;
    mutable seq : int;
    pending : (int, outstanding) Hashtbl.t;
    mutable s_probes : int;
    mutable s_transmissions : int;
    mutable s_replies : int;
    mutable s_late : int;
    mutable s_failures : int;
    mutable observer :
      (now:int -> event:event -> seq:int -> attempts:int -> unit) option;
  }

  let set_observer t obs = t.observer <- obs

  let notify t ~now ~event ~seq ~attempts =
    match t.observer with
    | None -> ()
    | Some f -> f ~now ~event ~seq ~attempts

  let seq_block = 1 lsl 20
  let next_uid = ref 0

  (* Timeout for the nth (0-based) transmission; exponential backoff
     keeps retries of a congestion-dropped probe from feeding the
     congestion that dropped it. *)
  let timeout_for t attempt =
    int_of_float (float_of_int t.timeout *. (t.backoff ** float_of_int attempt))

  let transmit t o =
    o.o_attempts <- o.o_attempts + 1;
    t.s_transmissions <- t.s_transmissions + 1;
    send t.stack ~dst:o.o_dst ~tpp:o.o_tpp ~seq:o.o_seq

  let rec arm_timeout t o =
    let span = timeout_for t (o.o_attempts - 1) in
    Stack.after t.stack span
      (fun () ->
        if not o.o_done then begin
          if o.o_attempts <= t.retries then begin
            transmit t o;
            notify t ~now:(Stack.now t.stack) ~event:Retry ~seq:o.o_seq
              ~attempts:o.o_attempts;
            arm_timeout t o
          end
          else begin
            o.o_done <- true;
            Hashtbl.remove t.pending o.o_seq;
            t.s_failures <- t.s_failures + 1;
            notify t ~now:(Stack.now t.stack) ~event:Failure ~seq:o.o_seq
              ~attempts:o.o_attempts;
            match o.o_on_fail with
            | Some f -> f ~now:(Stack.now t.stack)
            | None -> ()
          end
        end)

  let on_echo t ~now ~seq tpp =
    if seq >= t.seq_base && seq < t.seq_base + seq_block then begin
      match Hashtbl.find_opt t.pending seq with
      | Some o ->
        o.o_done <- true;
        Hashtbl.remove t.pending seq;
        t.s_replies <- t.s_replies + 1;
        (match o.o_on_reply with Some f -> f ~now tpp | None -> ())
      | None ->
        (* A retransmission's echo after the first one answered, or an
           echo that beat its own timeout's failure call. *)
        t.s_late <- t.s_late + 1
    end

  let create ?(timeout = 1_000_000) ?(retries = 3) ?(backoff = 2.0) stack =
    if timeout <= 0 then invalid_arg "Probe.Reliable.create: timeout must be positive";
    if retries < 0 then invalid_arg "Probe.Reliable.create: retries must be >= 0";
    if backoff < 1.0 then invalid_arg "Probe.Reliable.create: backoff must be >= 1";
    incr next_uid;
    let t =
      {
        stack;
        timeout;
        retries;
        backoff;
        seq_base = !next_uid * seq_block;
        seq = 0;
        pending = Hashtbl.create 32;
        s_probes = 0;
        s_transmissions = 0;
        s_replies = 0;
        s_late = 0;
        s_failures = 0;
        observer = None;
      }
    in
    install_reply_handler stack (fun ~now ~seq tpp -> on_echo t ~now ~seq tpp);
    t

  let send t ~dst ~tpp ?on_reply ?on_fail () =
    let seq = t.seq_base + t.seq in
    t.seq <- (t.seq + 1) mod seq_block;
    t.s_probes <- t.s_probes + 1;
    let o =
      {
        o_seq = seq;
        o_dst = dst;
        o_tpp = tpp;
        o_attempts = 0;
        o_done = false;
        o_on_reply = on_reply;
        o_on_fail = on_fail;
      }
    in
    Hashtbl.replace t.pending seq o;
    transmit t o;
    arm_timeout t o;
    seq

  let outstanding t = Hashtbl.length t.pending

  let stats t =
    {
      probes = t.s_probes;
      transmissions = t.s_transmissions;
      replies = t.s_replies;
      late = t.s_late;
      failures = t.s_failures;
    }
end
