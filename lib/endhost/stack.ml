module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Frame = Tpp_isa.Frame
module Udp = Tpp_packet.Udp

type t = {
  net : Net.t;
  host : Net.host;
  handlers : (int, (now:int -> Frame.t -> unit) list) Hashtbl.t;
  mutable default : now:int -> Frame.t -> unit;
  mutable sent : int;
  mutable received : int;
}

let dispatch t ~now frame =
  t.received <- t.received + 1;
  let handled =
    Frame.has_udp frame
    && (match Hashtbl.find_opt t.handlers (Frame.udp_dst_port frame) with
       | Some handlers ->
         List.iter (fun handler -> handler ~now frame) handlers;
         true
       | None -> false)
  in
  if not handled then t.default ~now frame

let create net host =
  let t =
    {
      net;
      host;
      handlers = Hashtbl.create 8;
      default = (fun ~now:_ _ -> ());
      sent = 0;
      received = 0;
    }
  in
  host.Net.receive <- (fun ~now frame -> dispatch t ~now frame);
  t

let net t = t.net
let host t = t.host
let now t = Engine.now (Net.engine t.net)
let at t time f = Engine.at (Net.engine t.net) time f
let after t span f = Engine.after (Net.engine t.net) span f

let on_udp t ~port handler = Hashtbl.replace t.handlers port [ handler ]

let on_udp_add t ~port handler =
  let existing =
    match Hashtbl.find_opt t.handlers port with Some hs -> hs | None -> []
  in
  Hashtbl.replace t.handlers port (existing @ [ handler ])

let on_default t handler = t.default <- handler

let send_udp t ~dst ~src_port ~dst_port ?dscp ?tpp ~payload () =
  let frame =
    Frame.udp_frame ~src_mac:t.host.Net.mac ~dst_mac:dst.Net.mac
      ~src_ip:t.host.Net.ip ~dst_ip:dst.Net.ip ~src_port ~dst_port ?dscp ?tpp
      ~payload ()
  in
  t.sent <- t.sent + 1;
  Net.host_send t.net t.host frame

let udp_sent t = t.sent
let udp_received t = t.received
