module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Frame = Tpp_isa.Frame
module Buf = Tpp_util.Buf
module Stats = Tpp_util.Stats

module Sink = struct
  type t = {
    mutable rx_pkts : int;
    mutable rx_bytes : int;
    mutable rx_payload : int;
    mutable decoded : int;
    latency : Stats.t;
    mutable highest : int;
    mutable reordered : int;
    mutable ce : int;
  }

  let decode_payload payload =
    if Bytes.length payload >= 12 then
      let seq = Buf.get_u32i payload 0 in
      let ts_hi = Buf.get_u32i payload 4 in
      let ts_lo = Buf.get_u32i payload 8 in
      Some (seq, (ts_hi lsl 32) lor ts_lo)
    else None

  let attach ?tap stack ~port =
    let t =
      { rx_pkts = 0; rx_bytes = 0; rx_payload = 0; decoded = 0;
        latency = Stats.create (); highest = -1; reordered = 0; ce = 0 }
    in
    Stack.on_udp stack ~port (fun ~now frame ->
        t.rx_pkts <- t.rx_pkts + 1;
        t.rx_bytes <- t.rx_bytes + Frame.wire_size frame;
        t.rx_payload <- t.rx_payload + Frame.payload_len frame;
        if
          Frame.has_ip frame
          && Frame.ip_ecn frame = Tpp_packet.Ipv4.Header.ecn_ce
        then t.ce <- t.ce + 1;
        (match decode_payload (Frame.payload frame) with
        | Some (seq, sent_ns) ->
          t.decoded <- t.decoded + 1;
          Stats.add t.latency (float_of_int (now - sent_ns));
          if seq < t.highest then t.reordered <- t.reordered + 1
          else t.highest <- seq
        | None -> ());
        match tap with Some f -> f ~now | None -> ());
    t

  let rx_pkts t = t.rx_pkts
  let rx_bytes t = t.rx_bytes
  let rx_payload_bytes t = t.rx_payload
  let latency t = t.latency
  let reordered t = t.reordered
  let highest_seq t = t.highest

  let holes t = if t.highest < 0 then 0 else t.highest + 1 - t.decoded
  let ce_marked t = t.ce
end

type kind =
  | Cbr
  | Burst of { burst_pkts : int; period : int }
  | Transfer of { total_bytes : int }

type t = {
  src : Stack.t;
  dst : Net.host;
  dst_port : int;
  mutable src_port : int;
      (* defaults to [dst_port]; a load balancer re-steers the flow by
         rewriting it, which changes the 5-tuple hash and so the ECMP
         path every switch picks *)
  payload_bytes : int;
  kind : kind;
  mutable rate : int;
  mutable running : bool;
  mutable epoch : int;  (* invalidates stale scheduled sends *)
  mutable seq : int;
  mutable tx : int;
  mutable tx_payload : int;
  mutable last_tx_ns : int;  (* -1 before the first send; flowlet gaps *)
  mutable done_ : bool;
  mutable piggyback : (Tpp_isa.Tpp.t * int) option;  (* template, every *)
  mutable carried : int;
  wire_bytes : int;
}

let encode_payload t ~now =
  let payload = Bytes.make (max 12 t.payload_bytes) '\000' in
  Buf.set_u32i payload 0 t.seq;
  Buf.set_u32i payload 4 (now lsr 32);
  Buf.set_u32i payload 8 (now land 0xFFFF_FFFF);
  payload

let probe_wire_size ~src ~dst ~dst_port ~payload_bytes =
  let frame =
    Frame.udp_frame ~src_mac:(Stack.host src).Net.mac ~dst_mac:dst.Net.mac
      ~src_ip:(Stack.host src).Net.ip ~dst_ip:dst.Net.ip ~src_port:dst_port
      ~dst_port
      ~payload:(Bytes.create (max 12 payload_bytes))
      ()
  in
  Frame.wire_size frame

let make ~src ~dst ~dst_port ~payload_bytes ~rate kind =
  {
    src;
    dst;
    dst_port;
    src_port = dst_port;
    payload_bytes;
    kind;
    rate;
    running = false;
    epoch = 0;
    seq = 0;
    tx = 0;
    tx_payload = 0;
    last_tx_ns = -1;
    done_ = false;
    piggyback = None;
    carried = 0;
    wire_bytes = probe_wire_size ~src ~dst ~dst_port ~payload_bytes;
  }

let cbr ~src ~dst ~dst_port ~payload_bytes ~rate_bps =
  if rate_bps <= 0 then invalid_arg "Flow.cbr: rate";
  make ~src ~dst ~dst_port ~payload_bytes ~rate:rate_bps Cbr

let bursts ~src ~dst ~dst_port ~payload_bytes ~burst_pkts ~period =
  if burst_pkts <= 0 || period <= 0 then invalid_arg "Flow.bursts";
  make ~src ~dst ~dst_port ~payload_bytes ~rate:0 (Burst { burst_pkts; period })

let transfer ~src ~dst ~dst_port ~payload_bytes ~rate_bps ~total_bytes =
  if rate_bps <= 0 then invalid_arg "Flow.transfer: rate";
  if total_bytes <= 0 then invalid_arg "Flow.transfer: size";
  make ~src ~dst ~dst_port ~payload_bytes ~rate:rate_bps
    (Transfer { total_bytes })

let engine t = Net.engine (Stack.net t.src)

let send_one t =
  let now = Engine.now (engine t) in
  let payload = encode_payload t ~now in
  let tpp =
    match t.piggyback with
    | Some (template, every) when t.seq mod every = 0 ->
      t.carried <- t.carried + 1;
      Some (Tpp_isa.Tpp.copy template)
    | Some _ | None -> None
  in
  t.seq <- t.seq + 1;
  t.tx <- t.tx + 1;
  t.tx_payload <- t.tx_payload + Bytes.length payload;
  t.last_tx_ns <- now;
  Stack.send_udp t.src ~dst:t.dst ~src_port:t.src_port ~dst_port:t.dst_port ?tpp
    ~payload ()

let interval_ns t =
  int_of_float (ceil (float_of_int (t.wire_bytes * 8) *. 1e9 /. float_of_int t.rate))

let rec cbr_tick t epoch () =
  if t.running && t.epoch = epoch then begin
    let finished =
      match t.kind with
      | Transfer { total_bytes } -> t.tx_payload >= total_bytes
      | Cbr | Burst _ -> false
    in
    if finished then begin
      t.done_ <- true;
      t.running <- false
    end
    else begin
      send_one t;
      Engine.after (engine t) (interval_ns t) (cbr_tick t epoch)
    end
  end

let rec burst_tick t epoch ~burst_pkts ~period () =
  if t.running && t.epoch = epoch then begin
    for _ = 1 to burst_pkts do
      send_one t
    done;
    Engine.after (engine t) period (burst_tick t epoch ~burst_pkts ~period)
  end

let start t ?at () =
  if (not t.running) && not t.done_ then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let epoch = t.epoch in
    let eng = engine t in
    let begin_at = match at with Some time -> time | None -> Engine.now eng in
    let kick =
      match t.kind with
      | Cbr | Transfer _ -> cbr_tick t epoch
      | Burst { burst_pkts; period } -> burst_tick t epoch ~burst_pkts ~period
    in
    Engine.at eng (max begin_at (Engine.now eng)) kick
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let set_rate t ~rate_bps =
  if rate_bps <= 0 then invalid_arg "Flow.set_rate";
  match t.kind with
  | Cbr | Transfer _ -> t.rate <- rate_bps
  | Burst _ -> invalid_arg "Flow.set_rate: burst flows are not rate controlled"

let carry_tpp t ~every template =
  if every <= 0 then invalid_arg "Flow.carry_tpp: every";
  t.piggyback <- Some (template, every)

let tpp_carried t = t.carried

let rate_bps t = t.rate
let tx_pkts t = t.tx
let port t = t.dst_port
let src_port t = t.src_port
let set_src_port t p = t.src_port <- p
let last_tx_ns t = t.last_tx_ns
let wire_pkt_bytes t = t.wire_bytes
let is_done t = t.done_
let payload_sent t = t.tx_payload
