(** Flowlet detection (CONGA, Alizadeh et al. 2014): re-steer a flow
    only across an idle gap longer than the fabric's path skew, so a
    path change can never reorder packets within a burst.

    Pure arithmetic over the caller's clock — deterministic and
    shard-safe. The TPP load balancer ({!Tpp_rcp.Tpp_lb}) consults
    {!boundary} with the flow's [last_tx_ns] before every steering
    decision. *)

type t

val create : gap_ns:int -> t
(** [gap_ns] must be positive: the minimum idle gap that opens a
    flowlet boundary. *)

val gap_ns : t -> int

val boundary : t -> last_tx:int -> now:int -> bool
(** True when the flow is at a flowlet boundary: it has never sent
    ([last_tx < 0]) or has been idle for at least [gap_ns]. *)

val checks : t -> int
(** Boundary queries so far. *)

val boundaries : t -> int
(** Queries that answered [true]. *)

(** Fixed-size hashed flowlet table — the CONGA dataplane primitive.
    Each slot pins a flow-hash bucket to a path until the bucket goes
    idle for [gap_ns]; collisions merge flows into one flowlet, which
    is safe (no reordering) but less agile. *)
module Table : sig
  type t

  val create : ?size:int -> gap_ns:int -> unit -> t
  (** [size] (default 1024) must be a power of two. *)

  val decide : t -> key:int -> now:int -> best:int -> int
  (** The path to use now: [best] when the bucket's flowlet is stale
      (and the bucket rebinds to it), else the pinned path. Records
      [now] as the bucket's last activity. *)

  val rebinds : t -> int
  (** Boundary decisions that actually moved a bucket to a new path. *)
end
