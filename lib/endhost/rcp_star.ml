module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Alloc = Tpp_asic.Alloc
module Vaddr = Tpp_isa.Vaddr
module Tpp = Tpp_isa.Tpp
module Asm = Tpp_isa.Asm

type config = {
  period_ns : int;
  rtt_ns : int;
  alpha : float;
  beta : float;
  slot : int;
  min_rate_bps : int;
  max_hops : int;
  use_cstore : bool;
  piggyback_every : int option;
}

let default_config ~slot =
  {
    period_ns = 10_000_000;
    rtt_ns = 50_000_000;
    alpha = 0.5;
    beta = 1.0;
    slot;
    min_rate_bps = 50_000;
    max_hops = 8;
    use_cstore = true;
    piggyback_every = None;
  }

let rate_register_name = "Link:RCP-RateRegister"

let defines ~slot = [ (rate_register_name, Vaddr.encode (Vaddr.Link_sram slot)) ]

let collect_source ~slot =
  ( "PUSH [Switch:SwitchID]\n\
     PUSH [Link:QueueSize]\n\
     PUSH [Link:RxUtilization]\n\
     PUSH [Link:CapacityKbps]\n\
     PUSH [" ^ rate_register_name ^ "]\n",
    defines ~slot )

let words_per_hop = 5

let setup_network net =
  let switches = Net.switches net in
  let allocate (_, sw) = Alloc.alloc_link_slot (Switch.alloc sw) ~task:"rcp" in
  let rec alloc_all slot = function
    | [] -> Ok slot
    | sw :: rest -> (
      match allocate sw with
      | Error e -> Error e
      | Ok s -> (
        match slot with
        | None -> alloc_all (Some s) rest
        | Some expected when expected = s -> alloc_all slot rest
        | Some expected ->
          Error
            (Printf.sprintf
               "RCP slot mismatch: switch got slot %d, expected %d (allocate RCP \
                first on every switch)"
               s expected)))
  in
  match alloc_all None switches with
  | Error e -> Error e
  | Ok None -> Error "no switches in the network"
  | Ok (Some slot) ->
    List.iter
      (fun (_, sw) ->
        let st = Switch.state sw in
        for port = 0 to st.State.num_ports - 1 do
          match State.link_sram_index st ~slot ~port with
          | Some idx ->
            let kbps = (State.port st port).State.Port.capacity_bps / 1000 in
            ignore (State.sram_set st idx kbps)
          | None -> ()
        done)
      switches;
    Ok slot

let read_rate_kbps sw ~slot ~port =
  let st = Switch.state sw in
  match State.link_sram_index st ~slot ~port with
  | Some idx -> State.sram_get st idx
  | None -> None

type link_sample = {
  switch_id : int;
  queue_bytes : int;
  util_ppm : int;
  capacity_kbps : int;
  rate_kbps : int;
}

type t = {
  stack : Stack.t;
  config : config;
  flow : Flow.t;
  dst : Net.host;
  collect_tpp : Tpp.t;
  seq_base : int;  (* this controller's block of the echo seq space *)
  mutable running : bool;
  mutable epoch : int;
  mutable seq : int;
  mutable probes_sent : int;
  mutable updates_sent : int;
  mutable updates_won : int;
  mutable last_piggyback : int;  (* throttles piggybacked collect processing *)
  (* CSTORE condition of in-flight updates, keyed by probe seq. *)
  pending_updates : (int, int) Hashtbl.t;
}

(* Each controller owns a disjoint 2^20 block of probe sequence numbers
   so several controllers can share one host's reply stream. *)
let seq_block = 1 lsl 20
let next_uid = ref 0

(* Collect probes use even sequence numbers, updates odd ones. *)
let next_seq t =
  t.seq <- t.seq + 2;
  t.seq_base + t.seq

let parse_hops tpp =
  let values = Tpp.stack_values tpp in
  let rec chunk acc = function
    | sw :: q :: util :: cap :: rate :: rest ->
      chunk
        ({ switch_id = sw; queue_bytes = q; util_ppm = util; capacity_kbps = cap;
           rate_kbps = rate }
        :: acc)
        rest
    | _ -> List.rev acc
  in
  chunk [] values

(* The RCP control law (paper §2.2), computed in bps floats. *)
let control_law config sample =
  let c = float_of_int sample.capacity_kbps *. 1000.0 in
  if c <= 0.0 then float_of_int config.min_rate_bps
  else begin
    let r = float_of_int sample.rate_kbps *. 1000.0 in
    let r = if r <= 0.0 then c else r in
    let y = float_of_int sample.util_ppm /. 1e6 *. c in
    let d = float_of_int config.rtt_ns /. 1e9 in
    let t_over_d = float_of_int config.period_ns /. float_of_int config.rtt_ns in
    let q_bps = config.beta *. (float_of_int sample.queue_bytes *. 8.0) /. d in
    let feedback = ((config.alpha *. (y -. c)) +. q_bps) /. c in
    let r_new = r *. (1.0 -. (t_over_d *. feedback)) in
    Float.max (float_of_int config.min_rate_bps) (Float.min c r_new)
  end

let update_source ~use_cstore ~swid ~cond_kbps ~new_kbps =
  if use_cstore then
    Printf.sprintf
      "CEXEC [Switch:SwitchID], 0xFFFFFFFF, %d\nCSTORE [%s], %d, %d\n" swid
      rate_register_name cond_kbps new_kbps
  else
    (* Plain overwrite: the new rate rides in user packet memory. *)
    Printf.sprintf
      "CEXEC [Switch:SwitchID], 0xFFFFFFFF, %d\nSTORE [%s], [Packet:0]\n.WORD %d\n"
      swid rate_register_name new_kbps

let send_update t ~swid ~cond_kbps ~new_kbps =
  let source =
    update_source ~use_cstore:t.config.use_cstore ~swid ~cond_kbps ~new_kbps
  in
  match Asm.to_tpp ~defines:(defines ~slot:t.config.slot) ~mem_len:0 source with
  | Error e -> invalid_arg ("Rcp_star.send_update: " ^ e)
  | Ok tpp ->
    let seq = next_seq t + 1 in
    if t.config.use_cstore then Hashtbl.replace t.pending_updates seq cond_kbps;
    t.updates_sent <- t.updates_sent + 1;
    Probe.send t.stack ~dst:t.dst ~tpp ~seq

let on_collect_reply t tpp =
  match parse_hops tpp with
  | [] -> ()
  | hops ->
    let rated = List.map (fun h -> (h, control_law t.config h)) hops in
    let bottleneck =
      List.fold_left
        (fun acc entry ->
          match acc with
          | None -> Some entry
          | Some (_, best) -> if snd entry < best then Some entry else acc)
        None rated
    in
    (match bottleneck with
    | None -> ()
    | Some (sample, r_new) ->
      let new_kbps = max 1 (int_of_float (r_new /. 1000.0)) in
      send_update t ~swid:sample.switch_id ~cond_kbps:sample.rate_kbps ~new_kbps;
      let rate = max t.config.min_rate_bps (int_of_float r_new) in
      Flow.set_rate t.flow ~rate_bps:rate)

let on_update_reply t ~seq tpp =
  match Hashtbl.find_opt t.pending_updates seq with
  | None -> ()
  | Some cond_kbps ->
    Hashtbl.remove t.pending_updates seq;
    (* Pool layout: CEXEC pool words 0-1, CSTORE pool words 2-3; after a
       CSTORE ran, word 2 holds the register's old value. *)
    let old_value = Tpp.mem_get tpp 8 in
    if old_value = cond_kbps then t.updates_won <- t.updates_won + 1

let create stack config ~flow ~dst =
  let source, defs = collect_source ~slot:config.slot in
  let mem_len = 4 * words_per_hop * config.max_hops in
  let collect_tpp =
    match Asm.to_tpp ~defines:defs ~mem_len source with
    | Ok tpp -> tpp
    | Error e -> invalid_arg ("Rcp_star.create: collect program: " ^ e)
  in
  incr next_uid;
  let t =
    {
      stack;
      config;
      flow;
      dst;
      collect_tpp;
      seq_base = !next_uid * seq_block;
      running = false;
      epoch = 0;
      seq = 0;
      probes_sent = 0;
      updates_sent = 0;
      updates_won = 0;
      (* One period in the past, so the first piggybacked reply is
         processed immediately (min_int would overflow the subtraction). *)
      last_piggyback = -config.period_ns;
      pending_updates = Hashtbl.create 16;
    }
  in
  Probe.install_reply_handler stack (fun ~now:_ ~seq tpp ->
      if t.running && seq >= t.seq_base && seq < t.seq_base + seq_block then begin
        if seq land 1 = 0 then on_collect_reply t tpp else on_update_reply t ~seq tpp
      end);
  (* Piggyback mode (paper §2.2: phase 1 can use "the flow's packets"):
     collect programs ride data packets; their echoes come back with the
     data sequence number and the flow's port as the echo's source, which
     is how they are told apart from other controllers' traffic. *)
  (match config.piggyback_every with
  | None -> ()
  | Some every ->
    Flow.carry_tpp flow ~every collect_tpp;
    let flow_port = Flow.port flow in
    Stack.on_udp_add stack ~port:Probe.reply_port (fun ~now frame ->
        if t.running && now - t.last_piggyback >= t.config.period_ns then
          match Tpp_isa.Frame.udp frame with
          | Some u when u.Tpp_packet.Udp.src_port = flow_port -> (
            match Probe.decode_echo (Tpp_isa.Frame.payload frame) with
            | Some (_, tpp) ->
              t.last_piggyback <- now;
              t.probes_sent <- t.probes_sent + 1;
              on_collect_reply t tpp
            | None -> ())
          | _ -> ()));
  t

let engine t = Net.engine (Stack.net t.stack)

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    (* In piggyback mode the data packets carry the collect program; the
       periodic tick only keeps the epoch machinery alive. *)
    (match t.config.piggyback_every with
    | None ->
      let seq = next_seq t in
      t.probes_sent <- t.probes_sent + 1;
      Probe.send t.stack ~dst:t.dst ~tpp:t.collect_tpp ~seq
    | Some _ -> ());
    Engine.after (engine t) t.config.period_ns (tick t epoch)
  end

let start t ?at () =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let eng = engine t in
    let begin_at =
      match at with Some time -> max time (Engine.now eng) | None -> Engine.now eng
    in
    Engine.at eng begin_at (tick t t.epoch)
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let current_rate_bps t = Flow.rate_bps t.flow
let probes_sent t = t.probes_sent
let updates_sent t = t.updates_sent
let updates_won t = t.updates_won
