(** Application traffic generators and sinks.

    Two senders cover the paper's workloads: a constant-bit-rate flow
    whose rate a congestion controller (RCP star) adjusts at runtime, and an
    on/off burst source that creates the micro-bursts of §2.1. Packets
    carry a sequence number and send timestamp so sinks measure goodput,
    one-way latency and reordering. *)

module Net = Tpp_sim.Net

(** Receiving side: attach to a stack port, read counters afterwards. *)
module Sink : sig
  type t

  val attach : ?tap:(now:int -> unit) -> Stack.t -> port:int -> t
  (** [tap] fires after each delivered packet is accounted; transfer
      workloads use it to detect completion. *)

  val rx_pkts : t -> int
  val rx_bytes : t -> int
  (** Wire bytes of delivered frames. *)

  val rx_payload_bytes : t -> int
  (** Application payload bytes only. *)

  val highest_seq : t -> int
  (** Highest sequence number seen; -1 before any packet. *)

  val holes : t -> int
  (** Sequence numbers below {!highest_seq} never received so far —
      cumulative loss as the receiver can observe it. *)

  val ce_marked : t -> int
  (** Packets delivered carrying the ECN Congestion Experienced mark. *)

  val latency : t -> Tpp_util.Stats.t
  (** One-way delays, in nanoseconds. *)

  val reordered : t -> int
  (** Packets that arrived with a sequence number lower than a
      previously seen one. *)
end

type t

val cbr :
  src:Stack.t ->
  dst:Net.host ->
  dst_port:int ->
  payload_bytes:int ->
  rate_bps:int ->
  t
(** Paced sender: one packet every [wire_bits / rate]. *)

val bursts :
  src:Stack.t ->
  dst:Net.host ->
  dst_port:int ->
  payload_bytes:int ->
  burst_pkts:int ->
  period:int ->
  t
(** Every [period] ns, dumps [burst_pkts] packets into the NIC at once;
    the NIC drains them back-to-back at line rate. *)

val transfer :
  src:Stack.t ->
  dst:Net.host ->
  dst_port:int ->
  payload_bytes:int ->
  rate_bps:int ->
  total_bytes:int ->
  t
(** A finite transfer: paced like {!cbr} (and rate-controllable), but
    stops by itself once [total_bytes] of payload have been sent. The
    flow-completion-time workloads are built from these. *)

val is_done : t -> bool
(** Transfers only: all bytes sent. *)

val payload_sent : t -> int

val start : t -> ?at:int -> unit -> unit
(** Begins sending at absolute time [at] (default: now). *)

val stop : t -> unit

val set_rate : t -> rate_bps:int -> unit
(** CBR/transfer flows only; takes effect from the next packet. *)

val carry_tpp : t -> every:int -> Tpp_isa.Tpp.t -> unit
(** Piggybacking (paper §2.2: tasks can query the network "using the
    flow's packets"): every [every]-th data packet carries a fresh copy
    of the template TPP. Pair with {!Probe.install_echo_on_port} at the
    receiver so executed programs return to the sender. *)

val tpp_carried : t -> int
(** Data packets sent with a TPP aboard. *)

val rate_bps : t -> int
val tx_pkts : t -> int

val port : t -> int
(** The UDP destination port this flow sends to. *)

val src_port : t -> int
(** The UDP source port on outgoing packets (defaults to the
    destination port). *)

val set_src_port : t -> int -> unit
(** Rewrites the source port of subsequent packets. The 5-tuple — and
    with it every switch's ECMP hash — changes, so this is the flowlet
    steering knob: a TPP load balancer calls it only at flowlet
    boundaries to move the flow to another path without reordering. *)

val last_tx_ns : t -> int
(** Time of the most recent packet send; -1 before the first. The idle
    gap [now - last_tx_ns] defines flowlet boundaries. *)

val wire_pkt_bytes : t -> int
(** On-wire size of one of this flow's packets. *)
