type t = {
  mutable rate_bps : int;
  burst_bytes : int;
  mutable tokens : float;  (* bytes *)
  mutable updated : int;   (* ns *)
}

let create ~rate_bps ~burst_bytes ~now =
  if rate_bps <= 0 || burst_bytes <= 0 then invalid_arg "Token_bucket.create";
  { rate_bps; burst_bytes; tokens = float_of_int burst_bytes; updated = now }

let accrue t ~now =
  if now > t.updated then begin
    let dt = float_of_int (now - t.updated) /. 1e9 in
    let earned = dt *. float_of_int t.rate_bps /. 8.0 in
    t.tokens <- Float.min (float_of_int t.burst_bytes) (t.tokens +. earned);
    t.updated <- now
  end

let set_rate t ~now ~rate_bps =
  if rate_bps <= 0 then invalid_arg "Token_bucket.set_rate";
  accrue t ~now;
  t.rate_bps <- rate_bps

let rate_bps t = t.rate_bps

let take t ~now ~bytes =
  accrue t ~now;
  let need = float_of_int bytes in
  if t.tokens >= need then begin
    t.tokens <- t.tokens -. need;
    true
  end
  else false

(* Earnings over [d] ns, written to match [accrue]'s arithmetic
   expression for expression so the delay we promise is the delay that
   provably works. *)
let earned_after t d =
  float_of_int d /. 1e9 *. float_of_int t.rate_bps /. 8.0

(* A request larger than the bucket can ever hold is rejected rather
   than quoted a finite delay: [accrue] caps [tokens] at [burst_bytes],
   so [take] could never succeed and a pacing loop would retry forever. *)
let delay_until_ready t ~now ~bytes =
  if bytes > t.burst_bytes then
    invalid_arg "Token_bucket.delay_until_ready: bytes exceeds burst capacity";
  accrue t ~now;
  let need = float_of_int bytes -. t.tokens in
  if need <= 0.0 then 0
  else begin
    (* First guess from the closed form; then round up ns by ns until
       the exact float arithmetic [accrue] will perform at [now + d]
       covers [need] — [ceil] alone can land one ulp short, and a
       caller sleeping that delay would find [take] still failing. *)
    let d = ref (int_of_float (ceil (need *. 8.0 /. float_of_int t.rate_bps *. 1e9))) in
    while t.tokens +. earned_after t !d < float_of_int bytes do
      incr d
    done;
    !d
  end
