(** TPP probe round-trips.

    The paper's measurement pattern (§2.2 phase 1): a sender attaches a
    TPP to a probe datagram; switches execute it on the way; "the
    receiver simply echoes a fully executed TPP back to the sender". The
    echo carries the executed TPP section as plain UDP payload — not as
    a live TPP — so it is not executed again on the return path. *)

module Net = Tpp_sim.Net
module Tpp = Tpp_isa.Tpp

val request_port : int
(** UDP port probe requests go to (7777). *)

val reply_port : int
(** UDP port echoes come back on (7778). *)

val install_echo : Stack.t -> unit
(** Makes this stack answer probe requests. *)

val install_echo_on_port : Stack.t -> port:int -> unit
(** Additionally echoes executed TPPs that arrive {e piggybacked} on
    application traffic at [port] (see {!Flow.carry_tpp}); added
    alongside the port's existing handler, so the application still
    receives the data. The echoed seq is the data packet's sequence
    number. *)

val send :
  Stack.t -> dst:Net.host -> tpp:Tpp.t -> seq:int -> unit
(** Sends a probe carrying a fresh copy of [tpp] and a sequence number. *)

val decode_echo : bytes -> (int * Tpp.t) option
(** Decodes an echo payload into (sequence number, executed TPP);
    building block for custom reply handling (e.g. piggybacked echoes
    demultiplexed by the data flow's port). *)

val install_reply_handler :
  Stack.t -> (now:int -> seq:int -> Tpp.t -> unit) -> unit
(** Calls back with the executed TPP from each echo. Handlers
    accumulate: every registered handler sees every echo, so concurrent
    controllers on one host must partition the sequence-number space
    (each built-in controller allocates a disjoint block). *)

(** Probe round-trips hardened against loss: per-probe timeout, bounded
    retransmission with exponential backoff, and loss accounting. The
    paper's probes are idempotent reads, so a retry that races a slow
    echo is harmless — the first echo wins and later ones are counted
    as {!field:stats.late}.

    All timers run on the simulation engine, so retry behavior is
    deterministic and, in a sharded run, stays on the shard owning the
    probing host. *)
module Reliable : sig
  type t

  val create : ?timeout:int -> ?retries:int -> ?backoff:float -> Stack.t -> t
  (** [timeout] (ns, default 1ms) arms a timer per transmission;
      [retries] (default 3) is the number of {e re}transmissions after
      the first attempt; [backoff] (default 2.0, must be >= 1) scales
      the timeout by [backoff^n] for the nth retry. Allocates its own
      block of the echo sequence space. *)

  val send :
    t ->
    dst:Tpp_sim.Net.host ->
    tpp:Tpp_isa.Tpp.t ->
    ?on_reply:(now:int -> Tpp_isa.Tpp.t -> unit) ->
    ?on_fail:(now:int -> unit) ->
    unit ->
    int
  (** Sends a probe to [dst]; returns its sequence number. [on_reply]
      fires once with the first executed echo; [on_fail] fires once if
      all [1 + retries] transmissions time out unanswered. *)

  val outstanding : t -> int
  (** Probes still awaiting an echo or final timeout. *)

  (** Loss evidence as it happens, for telemetry: a retransmission
      fired, or a probe was abandoned. *)
  type event = Retry | Failure

  val set_observer :
    t ->
    (now:int -> event:event -> seq:int -> attempts:int -> unit) option ->
    unit
  (** Called at each retry (after the retransmission is queued) and at
      each final failure (before [on_fail]); [attempts] is the
      transmissions made so far. The streaming-telemetry layer turns
      these into [Probe_retry] / [Probe_failure] postcards. *)

  type stats = {
    probes : int;         (** {!send} calls *)
    transmissions : int;  (** frames sent, including retries *)
    replies : int;        (** probes answered (first echo only) *)
    late : int;           (** echoes after the probe was resolved *)
    failures : int;       (** probes abandoned after all retries *)
  }

  val stats : t -> stats
end
