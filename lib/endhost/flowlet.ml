(* Flowlet detection (CONGA): a flow may be re-steered onto a new path
   only at a flowlet boundary — an idle gap longer than the fabric's
   worst-case path-skew — so packets inside one burst can never be
   reordered by a path change. Pure integer arithmetic on the caller's
   clock; nothing here touches the engine, so the same decision
   sequence falls out on every shard. *)

type t = {
  gap_ns : int;
  mutable checks : int;
  mutable boundaries : int;
}

let create ~gap_ns =
  if gap_ns <= 0 then invalid_arg "Flowlet.create: gap_ns";
  { gap_ns; checks = 0; boundaries = 0 }

let gap_ns t = t.gap_ns

let boundary t ~last_tx ~now =
  t.checks <- t.checks + 1;
  let b = last_tx < 0 || now - last_tx >= t.gap_ns in
  if b then t.boundaries <- t.boundaries + 1;
  b

let checks t = t.checks
let boundaries t = t.boundaries

(* The switch/agent-side version: a fixed hashed table of flowlet
   entries, one slot per flow-hash bucket, each remembering the last
   activity time and the path the flowlet is pinned to. [decide] is the
   whole CONGA datapath primitive: stale entry -> take the best path
   now; live entry -> stay put. Collisions just merge two flows into
   one flowlet — safe (no reordering is introduced), merely less
   agile. *)
module Table = struct
  type entry = { mutable last_ns : int; mutable path : int }

  type nonrec t = {
    gap_ns : int;
    mask : int;
    slots : entry array;
    mutable rebinds : int;  (* boundary decisions that changed path *)
  }

  let create ?(size = 1024) ~gap_ns () =
    if gap_ns <= 0 then invalid_arg "Flowlet.Table.create: gap_ns";
    if size <= 0 || size land (size - 1) <> 0 then
      invalid_arg "Flowlet.Table.create: size must be a power of two";
    {
      gap_ns;
      mask = size - 1;
      slots = Array.init size (fun _ -> { last_ns = min_int / 2; path = 0 });
      rebinds = 0;
    }

  let decide t ~key ~now ~best =
    let e = t.slots.(key land t.mask) in
    let path =
      if now - e.last_ns >= t.gap_ns then begin
        if e.path <> best then t.rebinds <- t.rebinds + 1;
        e.path <- best;
        best
      end
      else e.path
    in
    e.last_ns <- now;
    path

  let rebinds t = t.rebinds
end
