module Buf = Tpp_util.Buf

type addr_mode = Stack | Hop_addressed

type compiled = ..
type compiled += Not_compiled

(* One cell per program "family": every [copy] shares it, so compiling
   any member (or even just computing the identity key) pays for all of
   them. The handle is atomic because frames — and therefore their TPPs
   — migrate between the domains of a sharded run; a stale read only
   costs a cache lookup, never correctness. *)
type exec_cache = {
  mutable key : string option;
  handle : compiled Atomic.t;
  mutable code : bytes option;  (* wire encoding of the program *)
}

(* Packet memory is a window [mem_off, mem_off + mem_len) of [memory]:
   a standalone TPP owns a private buffer at offset 0, while a TPP
   embedded in a flat frame aliases the frame's backing buffer, so a
   TCPU word store patches the wire image in place. [sp], [hop] and
   [faulted] stay authoritative in the record between hops; the frame
   layer flushes them into the serialized section header on export. *)
type t = {
  mutable faulted : bool;
  addr_mode : addr_mode;
  perhop_len : int;
  base : int;
  mutable sp : int;
  mutable hop : int;
  program : Instr.t array;
  mutable memory : bytes;
  mutable mem_off : int;
  mem_len : int;
  mutable inner_ethertype : int;
  cache : exec_cache;
}

let fresh_cache () = { key = None; handle = Atomic.make Not_compiled; code = None }

let header_size = 16

let mem_len t = t.mem_len

let section_size t = header_size + (Instr.size * Array.length t.program) + t.mem_len

let check_u16 what v =
  if v < 0 || v > 0xFFFF then invalid_arg (Printf.sprintf "Tpp.make: %s exceeds 16 bits" what)

let make ?(addr_mode = Stack) ?(perhop_len = 0) ?(pool = Bytes.empty)
    ?(inner_ethertype = 0) ~program ~mem_len () =
  let base = Bytes.length pool in
  if base mod 4 <> 0 then invalid_arg "Tpp.make: pool must be word aligned";
  if mem_len mod 4 <> 0 then invalid_arg "Tpp.make: mem_len must be word aligned";
  if perhop_len mod 4 <> 0 then invalid_arg "Tpp.make: perhop_len must be word aligned";
  if addr_mode = Hop_addressed && perhop_len = 0 then
    invalid_arg "Tpp.make: hop addressing needs perhop_len > 0";
  let total_mem = base + mem_len in
  check_u16 "memory length" total_mem;
  check_u16 "program length" (Instr.size * List.length program);
  check_u16 "perhop_len" perhop_len;
  let memory = Bytes.make total_mem '\000' in
  Bytes.blit pool 0 memory 0 base;
  {
    faulted = false;
    addr_mode;
    perhop_len;
    base;
    sp = base;
    hop = 0;
    program = Array.of_list program;
    memory;
    mem_off = 0;
    mem_len = total_mem;
    inner_ethertype;
    cache = fresh_cache ();
  }

(* Programs are immutable after construction, so copies share the
   instruction array and the compiled-code cell; only the packet memory
   (the mutable per-packet state) is duplicated — always into a private
   standalone buffer, even when the original aliases a frame. *)
let copy t =
  let m = Bytes.create t.mem_len in
  Bytes.blit t.memory t.mem_off m 0 t.mem_len;
  { t with memory = m; mem_off = 0 }

(* Fresh view over a different backing buffer whose bytes already hold
   this TPP's memory image at [mem_off] (frame cloning). Shares the
   program and compiled-code cell, snapshots sp/hop/faulted. *)
let reseat t ~memory ~mem_off = { t with memory; mem_off }

(* Moves this TPP's packet memory into [memory] at [mem_off], carrying
   the current contents along (frame embedding: subsequent mem stores
   land in the frame's backing buffer). *)
let rebase t ~memory ~mem_off =
  if mem_off < 0 || mem_off + t.mem_len > Bytes.length memory then
    invalid_arg "Tpp.rebase: window out of range";
  Bytes.blit t.memory t.mem_off memory mem_off t.mem_len;
  t.memory <- memory;
  t.mem_off <- mem_off

let program_key t =
  match t.cache.key with
  | Some k -> k
  | None ->
    let k =
      (* The canonical identity is the wire encoding of the program.
         Hand-built programs whose operands exceed the encodable 12-bit
         range cannot be encoded; fall back to a structural key. The
         leading tag keeps the two namespaces disjoint. *)
      try
        let w = Buf.Writer.create ~capacity:(4 + (Instr.size * Array.length t.program)) () in
        Array.iter (Instr.write w) t.program;
        "E" ^ Bytes.to_string (Buf.Writer.contents w)
      with Invalid_argument _ -> "M" ^ Marshal.to_string t.program []
    in
    t.cache.key <- Some k;
    k

(* Wire encoding of the instruction array, shared across the family.
   Raises [Invalid_argument] for unencodable hand-built programs, like
   {!write} always has. *)
let program_bytes t =
  match t.cache.code with
  | Some b -> b
  | None ->
    let w = Buf.Writer.create ~capacity:(max 8 (Instr.size * Array.length t.program)) () in
    Array.iter (Instr.write w) t.program;
    let b = Buf.Writer.contents w in
    t.cache.code <- Some b;
    b

let compiled_handle t = Atomic.get t.cache.handle
let set_compiled_handle t c = Atomic.set t.cache.handle c

let oob what = raise (Buf.Out_of_bounds what)

let mem_get t off =
  if off < 0 || off + 4 > t.mem_len then oob "Tpp.mem_get";
  Int32.to_int (Bytes.get_int32_be t.memory (t.mem_off + off)) land 0xFFFF_FFFF

let mem_set t off v =
  if off < 0 || off + 4 > t.mem_len then oob "Tpp.mem_set";
  Bytes.set_int32_be t.memory (t.mem_off + off) (Int32.of_int (v land 0xFFFF_FFFF))

let words t =
  let n = t.mem_len / 4 in
  List.init n (fun i -> mem_get t (4 * i))

let stack_values t =
  let n = (t.sp - t.base) / 4 in
  List.init (max 0 n) (fun i -> mem_get t (t.base + (4 * i)))

let hop_block t ~hop =
  let start = t.base + (hop * t.perhop_len) in
  let n = t.perhop_len / 4 in
  List.init n (fun i -> mem_get t (start + (4 * i)))

let flags_of t =
  (match t.addr_mode with Stack -> 0 | Hop_addressed -> 1)
  lor (if t.faulted then 2 else 0)

(* The 16-byte section header, written straight into a buffer. The
   frame layer uses this both to build sections and to flush the
   mutable header state (flags/sp/hop) before exporting wire bytes. *)
let write_header_into b ~off t =
  Bytes.set_uint8 b off 1;
  Bytes.set_uint8 b (off + 1) (flags_of t);
  Bytes.set_uint16_be b (off + 2) (Instr.size * Array.length t.program);
  Bytes.set_uint16_be b (off + 4) t.mem_len;
  Bytes.set_uint16_be b (off + 6) t.sp;
  Bytes.set_uint16_be b (off + 8) t.hop;
  Bytes.set_uint16_be b (off + 10) t.perhop_len;
  Bytes.set_uint16_be b (off + 12) t.inner_ethertype;
  Bytes.set_uint16_be b (off + 14) t.base

let write w t =
  Buf.Writer.u8 w 1;
  Buf.Writer.u8 w (flags_of t);
  Buf.Writer.u16 w (Instr.size * Array.length t.program);
  Buf.Writer.u16 w t.mem_len;
  Buf.Writer.u16 w t.sp;
  Buf.Writer.u16 w t.hop;
  Buf.Writer.u16 w t.perhop_len;
  Buf.Writer.u16 w t.inner_ethertype;
  Buf.Writer.u16 w t.base;
  Array.iter (Instr.write w) t.program;
  Buf.Writer.bytes_sub w t.memory ~pos:t.mem_off ~len:t.mem_len

let read r =
  try
    let version = Buf.Reader.u8 r in
    if version <> 1 then Error (Printf.sprintf "unsupported TPP version %d" version)
    else begin
      let flags = Buf.Reader.u8 r in
      let tpp_len = Buf.Reader.u16 r in
      let mem_len = Buf.Reader.u16 r in
      let sp = Buf.Reader.u16 r in
      let hop = Buf.Reader.u16 r in
      let perhop_len = Buf.Reader.u16 r in
      let inner_ethertype = Buf.Reader.u16 r in
      let base = Buf.Reader.u16 r in
      if tpp_len mod Instr.size <> 0 then Error "instruction bytes not word aligned"
      else if mem_len mod 4 <> 0 then Error "memory length not word aligned"
      else if base > mem_len then Error "pool base beyond memory"
      else if sp > mem_len then Error "stack pointer beyond memory"
      else begin
        let n = tpp_len / Instr.size in
        let rec read_program i acc =
          if i = n then Ok (List.rev acc)
          else
            match Instr.read r with
            | Ok instr -> read_program (i + 1) (instr :: acc)
            | Error e -> Error e
        in
        match read_program 0 [] with
        | Error e -> Error e
        | Ok program ->
          let memory = Buf.Reader.bytes r mem_len in
          let addr_mode = if flags land 1 = 1 then Hop_addressed else Stack in
          if addr_mode = Hop_addressed && perhop_len = 0 then
            Error "hop addressing with zero per-hop length"
          else
            Ok
              {
                faulted = flags land 2 <> 0;
                addr_mode;
                perhop_len;
                base;
                sp;
                hop;
                program = Array.of_list program;
                memory;
                mem_off = 0;
                mem_len;
                inner_ethertype;
                cache = fresh_cache ();
              }
      end
    end
  with Buf.Out_of_bounds _ -> Error "truncated TPP section"

let pp fmt t =
  let mode = match t.addr_mode with Stack -> "stack" | Hop_addressed -> "hop" in
  Format.fprintf fmt "@[<v>TPP %s sp=%d hop=%d mem=%dB%s@,%a@]" mode t.sp t.hop
    t.mem_len
    (if t.faulted then " FAULTED" else "")
    (Format.pp_print_list Instr.pp)
    (Array.to_list t.program)
