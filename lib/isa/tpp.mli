(** A tiny packet program: header, instructions, packet memory
    (paper Figure 4).

    The TPP section sits directly after the Ethernet header of a frame
    whose ethertype is {!Tpp_packet.Ethernet.ethertype_tpp}, and
    encapsulates the rest of the frame. The section never grows or
    shrinks inside the network: end-hosts preallocate all packet memory.

    Packet memory layout convention: the assembler's constant pool (wide
    immediates of CSTORE/CEXEC) occupies the front of packet memory; the
    stack (in stack addressing mode) or the hop-indexed blocks (in hop
    mode) start at {!base}, right after the pool.

    Packet memory is a window of a backing buffer. A standalone TPP owns
    a private buffer; a TPP embedded in a flat {!Frame} aliases the
    frame's wire buffer ({!rebase}), so every TCPU word store patches
    the wire image in place. *)

type addr_mode = Stack | Hop_addressed

type compiled = ..
(** Opaque slot for a lowered (compiled) form of the program. The ISA
    layer knows nothing about execution; the TCPU's compiler
    ({!Tpp_asic.Compile}) extends this type with its own constructor. *)

type compiled += Not_compiled

type exec_cache = {
  mutable key : string option;  (** memoized {!program_key} *)
  handle : compiled Atomic.t;   (** compiled form, shared across copies *)
  mutable code : bytes option;  (** memoized {!program_bytes} *)
}
(** Shared by every {!copy} of a TPP, so one compilation serves the
    whole family. Domain-safe: the handle is atomic and the key is
    idempotent to recompute. *)

type t = {
  mutable faulted : bool;
      (** Set by a TCPU when execution faulted; the packet still forwards. *)
  addr_mode : addr_mode;
  perhop_len : int;
      (** Bytes of per-hop data (hop mode only); word multiple. *)
  base : int;
      (** First byte of stack/hop data, i.e. the constant pool length. *)
  mutable sp : int;
      (** Stack pointer (byte offset into memory); stack mode only. *)
  mutable hop : int;
      (** Hop counter, incremented by every TCPU that runs the program. *)
  program : Instr.t array;
  mutable memory : bytes;
      (** Backing buffer; packet memory is the {!mem_off} window. *)
  mutable mem_off : int;
      (** Start of packet memory within {!memory}. *)
  mem_len : int;
      (** Packet memory length in bytes. *)
  mutable inner_ethertype : int;
      (** Ethertype of the encapsulated payload; 0 when raw/none. *)
  cache : exec_cache;
      (** Program-identity and compiled-code cell; never serialized. *)
}

val header_size : int
(** On-wire header bytes (16, keeping the section 4-byte aligned). *)

val mem_len : t -> int
(** Packet memory length in bytes (pool + stack/hop area). *)

val section_size : t -> int
(** Total on-wire bytes: header + instructions + memory. *)

val make :
  ?addr_mode:addr_mode ->
  ?perhop_len:int ->
  ?pool:bytes ->
  ?inner_ethertype:int ->
  program:Instr.t list ->
  mem_len:int ->
  unit ->
  t
(** [make ~program ~mem_len ()] builds a TPP whose packet memory is the
    [pool] (default empty) followed by [mem_len] zero bytes. [sp] starts
    at the pool length. Raises [Invalid_argument] if any size breaks the
    wire format's 16-bit fields or word alignment. *)

val copy : t -> t
(** Copy with fresh standalone packet memory; hosts use it to re-send a
    template. The (immutable) instruction array and the compiled-code
    cell are shared with the original, so a template's whole family
    compiles at most once. *)

val reseat : t -> memory:bytes -> mem_off:int -> t
(** Fresh view over a different backing buffer that already holds this
    TPP's memory image at [mem_off] (frame cloning). Shares the program
    and cache; snapshots the mutable header state. *)

val rebase : t -> memory:bytes -> mem_off:int -> unit
(** Moves this TPP's packet memory into [memory] at [mem_off], copying
    the current contents along, so subsequent {!mem_set}s write there
    (frame embedding). Raises [Invalid_argument] if the window does not
    fit. *)

val program_key : t -> string
(** Canonical identity of the instruction array: its wire encoding
    (tagged ["E"]), or a structural fallback (tagged ["M"]) for
    hand-built programs with unencodable operands. Memoized in the
    shared {!exec_cache}; equal keys imply identical programs. *)

val program_bytes : t -> bytes
(** The program's wire encoding, memoized in the shared cache. Raises
    [Invalid_argument] for hand-built programs with unencodable
    operands (exactly when {!write} would). Callers must not mutate. *)

val compiled_handle : t -> compiled
(** The family's compiled form ({!Not_compiled} until a TCPU first
    executes — and thereby compiles — any member). *)

val set_compiled_handle : t -> compiled -> unit

val mem_get : t -> int -> int
(** Word read at a byte offset within packet memory. Raises
    [Buf.Out_of_bounds]. *)

val mem_set : t -> int -> int -> unit

val words : t -> int list
(** All packet-memory words, front to back, for inspection in tests. *)

val stack_values : t -> int list
(** Words pushed so far (between [base] and [sp]), bottom first. *)

val hop_block : t -> hop:int -> int list
(** The words of hop [hop]'s block (hop mode). *)

val write_header_into : bytes -> off:int -> t -> unit
(** Writes the 16-byte section header at [off]; the frame layer uses it
    to flush the mutable header state (flags, sp, hop) into a wire
    image whose memory bytes are already in place. *)

val write : Tpp_util.Buf.Writer.t -> t -> unit

val read : Tpp_util.Buf.Reader.t -> (t, string) result
(** Parses a section; checks field sanity (lengths, alignment, opcode
    validity) so a malformed TPP is rejected before execution. The
    result owns standalone packet memory. *)

val pp : Format.formatter -> t -> unit
