(** Per-packet metadata the forwarding pipeline attaches to a packet at
    each switch (paper Table 2, "Per-Packet" namespace).

    The fields are scratch state valid only while the packet is inside
    one switch; the ingress pipeline overwrites them at every hop. TPPs
    read them through the [PacketMetadata:*] addresses. *)

type t = {
  mutable in_port : int;
  mutable out_port : int;
  mutable queue_id : int;        (** egress queue of [out_port] chosen *)
  mutable matched_entry : int;   (** id of the flow entry that matched *)
  mutable matched_version : int; (** version stamp of that entry *)
  mutable table_hit : int;       (** 0 miss/flood, 1 L2, 2 L3, 3 TCAM *)
  mutable arrival_ns : int;      (** switch-local arrival timestamp *)
  mutable hop_count : int;       (** hops traversed so far *)
}

val create : unit -> t

val reset : t -> unit
(** Clears everything except [hop_count] (which survives across hops). *)

val clear : t -> unit
(** Full reset, [hop_count] included — equivalent to a fresh {!create};
    used when a pooled frame is reborn as a new packet. *)

val get : t -> Vaddr.Pkt_meta.t -> int
