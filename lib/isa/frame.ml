module Buf = Tpp_util.Buf
module Ethernet = Tpp_packet.Ethernet
module Ipv4 = Tpp_packet.Ipv4
module Udp = Tpp_packet.Udp
module Mac = Tpp_packet.Mac

(* A frame is one contiguous buffer holding its wire encoding
   (Ethernet at 0, then an optional TPP section, then IPv4/UDP/payload)
   plus integer offsets into it, parsed once at construction or ingress.
   Header rewrites (TTL, ECN, TPP memory stores) patch the buffer in
   place — incremental checksum update for IPv4 — so a hop allocates no
   header records and serialization is a single blit of [buf].

   In-place-patch soundness: every field a switch rewrites in flight
   (TTL, ECN, TPP words, TPP sp/hop/flags) either sits under the IPv4
   incremental checksum discipline (RFC 1624 patches keep the stored
   checksum equal to a full recompute), or lives outside any checksum
   (Ethernet has none here, the TPP section is unchecksummed, UDP's
   checksum is transmitted as zero). With one documented exception, no
   rewrite changes any length field, so the offsets computed at parse
   time stay valid for the frame's whole lifetime: the only operations
   that change the layout ({!with_tpp}) build a fresh buffer. The
   exception is {!trim} (NDP-style packet trimming), which only ever
   shortens the payload tail in place — both length fields are patched
   consistently and every offset still points where it did.

   The TPP view in [tpp] aliases [buf]: its packet memory window points
   at the memory bytes of the serialized section, so TCPU word stores
   land directly in the wire image. The section header's mutable fields
   (flags/sp/hop) stay authoritative in the [Tpp.t] record between hops
   and are flushed by {!serialize}/{!serialize_into} before any byte
   export. *)
type t = {
  mutable id : int;
  mutable buf : bytes;  (* wire image in [0, len); may have spare room *)
  mutable len : int;
  mutable tpp : Tpp.t option;  (* view whose packet memory aliases [buf] *)
  mutable ip_off : int;        (* IPv4 header offset; -1 = absent *)
  mutable udp_off : int;       (* UDP header offset; -1 = absent *)
  mutable pay_off : int;       (* payload offset (== len when empty) *)
  meta : Meta.t;
  mutable flow_hash_cache : int;
      (* lazily memoized ([min_int] = unset). Sound because in-flight
         header rewrites (TTL, ECN) never touch the 5-tuple. *)
  mutable home : pool;         (* free-list this frame recycles into *)
  mutable in_free_list : bool;
}

(* A per-flow free list of fixed-capacity frames. Frames allocated from
   a pool return to it on delivery or drop ({!recycle}); steady-state
   traffic then reuses one buffer per in-flight packet instead of
   allocating ~1.5 kB of minor heap per send. Ownership rule: a pool
   belongs to the domain that created it, and a frame that crossed a
   shard boundary is recycled only by that domain — [recycle] from any
   other domain is a no-op, so cross-shard frames simply age out to the
   GC and determinism is unaffected. *)
and pool = {
  frame_bytes : int;  (* buffer capacity preallocated per frame *)
  pool_dom : int;     (* Domain.id of the owning domain *)
  mutable free : t array;
  mutable free_len : int;
  mutable p_created : int;  (* frames ever allocated fresh *)
  mutable p_reused : int;   (* takes served from the free list *)
}

let no_pool =
  { frame_bytes = 0; pool_dom = -1; free = [||]; free_len = 0;
    p_created = 0; p_reused = 0 }

(* Atomic: frames are created concurrently by the shards of a parallel
   run (ids stay unique; only tracing and the IP ident field see them,
   so cross-shard allocation order does not affect simulation state). *)
let next_id = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add next_id 1 + 1

(* ---- Cheap field views over the flat buffer ---- *)

let ethertype t = Ethernet.Flat.ethertype t.buf ~off:0
let eth_dst t = Ethernet.Flat.dst t.buf ~off:0
let eth_src t = Ethernet.Flat.src t.buf ~off:0

let eth t =
  { Ethernet.dst = eth_dst t; src = eth_src t; ethertype = ethertype t }

let has_ip t = t.ip_off >= 0

let[@inline] ip_exn t =
  if t.ip_off < 0 then invalid_arg "Frame: no IPv4 header";
  t.ip_off

let ip t =
  if t.ip_off < 0 then None
  else Some (Ipv4.Header.Flat.to_header t.buf ~off:t.ip_off)

let ip_src t = Ipv4.Header.Flat.src t.buf ~off:(ip_exn t)
let ip_dst t = Ipv4.Header.Flat.dst t.buf ~off:(ip_exn t)
let ip_proto t = Ipv4.Header.Flat.proto t.buf ~off:(ip_exn t)
let ip_ttl t = Ipv4.Header.Flat.ttl t.buf ~off:(ip_exn t)
let ip_dscp t = Ipv4.Header.Flat.dscp t.buf ~off:(ip_exn t)
let ip_ecn t = Ipv4.Header.Flat.ecn t.buf ~off:(ip_exn t)
let ip_ident t = Ipv4.Header.Flat.ident t.buf ~off:(ip_exn t)

let set_ip_ttl t v = Ipv4.Header.Flat.set_ttl t.buf ~off:(ip_exn t) v
let set_ip_ecn t v = Ipv4.Header.Flat.set_ecn t.buf ~off:(ip_exn t) v
let set_ip_dscp t v = Ipv4.Header.Flat.set_dscp t.buf ~off:(ip_exn t) v
let set_ip_ident t v = Ipv4.Header.Flat.set_ident t.buf ~off:(ip_exn t) v

let has_udp t = t.udp_off >= 0

let udp t =
  if t.udp_off < 0 then None
  else
    Some
      {
        Udp.src_port = Udp.Flat.src_port t.buf ~off:t.udp_off;
        dst_port = Udp.Flat.dst_port t.buf ~off:t.udp_off;
      }

let udp_src_port t =
  if t.udp_off < 0 then invalid_arg "Frame: no UDP header";
  Udp.Flat.src_port t.buf ~off:t.udp_off

let udp_dst_port t =
  if t.udp_off < 0 then invalid_arg "Frame: no UDP header";
  Udp.Flat.dst_port t.buf ~off:t.udp_off

let payload_len t = t.len - t.pay_off

let payload t = Bytes.sub t.buf t.pay_off (payload_len t)

let payload_u32 t off =
  if off < 0 || off + 4 > payload_len t then Buf.(raise (Out_of_bounds "Frame.payload_u32"));
  Buf.get_u32i t.buf (t.pay_off + off)

let blit_payload t ~src_pos dst ~dst_pos ~len =
  if src_pos < 0 || len < 0 || src_pos + len > payload_len t then
    Buf.(raise (Out_of_bounds "Frame.blit_payload"));
  Bytes.blit t.buf (t.pay_off + src_pos) dst dst_pos len

(* NDP-style packet trimming: cut the UDP payload down to its first
   [keep] bytes, in place. The payload is the tail of the wire image,
   so shrinking it leaves every parse-time offset valid; the IPv4 total
   length is patched under the incremental-checksum discipline and the
   UDP length directly (its checksum is transmitted as zero). The
   5-tuple is untouched, so [flow_hash_cache] stays valid. Zero
   allocation — this runs on the switch enqueue hot path. *)
let trim t ~keep =
  if t.udp_off < 0 then invalid_arg "Frame.trim: no UDP header";
  if keep < 0 then invalid_arg "Frame.trim: keep";
  let cut = payload_len t - keep in
  if cut > 0 then begin
    let total = Ipv4.Header.Flat.total_len t.buf ~off:t.ip_off in
    Ipv4.Header.Flat.set_total_len t.buf ~off:t.ip_off (total - cut);
    Udp.Flat.set_len t.buf ~off:t.udp_off (Udp.size + keep);
    t.len <- t.len - cut
  end

(* ---- Consistency checks (construction-time; same rules as the old
   record representation enforced) ---- *)

let check_consistent ~eth ~tpp ~ip ~udp =
  (match tpp with
  | Some t ->
    if eth.Ethernet.ethertype <> Ethernet.ethertype_tpp then
      invalid_arg "Frame.make: TPP section on non-TPP ethertype";
    let inner = t.Tpp.inner_ethertype in
    if Option.is_some ip && inner <> Ethernet.ethertype_ipv4 then
      invalid_arg "Frame.make: IPv4 under TPP needs inner_ethertype IPv4";
    if Option.is_none ip && inner = Ethernet.ethertype_ipv4 then
      invalid_arg "Frame.make: inner_ethertype IPv4 but no IPv4 header"
  | None ->
    if eth.Ethernet.ethertype = Ethernet.ethertype_tpp then
      invalid_arg "Frame.make: TPP ethertype without TPP section";
    if Option.is_some ip && eth.Ethernet.ethertype <> Ethernet.ethertype_ipv4 then
      invalid_arg "Frame.make: IPv4 header on non-IPv4 ethertype");
  if Option.is_some udp && Option.is_none ip then
    invalid_arg "Frame.make: UDP header without IPv4 header";
  match (ip, udp) with
  | Some h, Some _ when h.Ipv4.Header.proto <> Ipv4.proto_udp ->
    invalid_arg "Frame.make: UDP header but IPv4 proto is not UDP"
  | _ -> ()

(* ---- Construction: render the wire image into [t.buf] ---- *)

(* Writes the full stack and sets the offsets. [t.buf] is grown when the
   frame (pooled or reused) is too small for this packet. The given
   [tpp] is rebased onto the buffer, so the caller's handle keeps
   working and its stores hit the wire image. *)
let render t ?tpp ?ip ?udp ~payload ~eth () =
  (* Hand-built programs with unencodable operands still get a frame
     (the TCPU executes the instruction array, not the bytes): their
     program area is zero-filled and {!serialize} raises, exactly as
     the record writer did. *)
  let prog_bytes =
    match tpp with
    | Some s -> ( try Some (Tpp.program_bytes s) with Invalid_argument _ -> None)
    | None -> None
  in
  let prog =
    match tpp with
    | Some s -> Instr.size * Array.length s.Tpp.program
    | None -> 0
  in
  let sec = match tpp with Some s -> 16 + prog + s.Tpp.mem_len | None -> 0 in
  let pay = Bytes.length payload in
  let ip_len = match ip with Some _ -> Ipv4.Header.size | None -> 0 in
  let udp_len = match udp with Some _ -> Udp.size | None -> 0 in
  let len = Ethernet.size + sec + ip_len + udp_len + pay in
  if Bytes.length t.buf < len then t.buf <- Bytes.create len;
  let b = t.buf in
  Ethernet.Flat.write_into b ~off:0 eth;
  (match tpp with
  | Some s ->
    Tpp.write_header_into b ~off:Ethernet.size s;
    (match prog_bytes with
    | Some pb -> Bytes.blit pb 0 b (Ethernet.size + 16) prog
    | None -> Bytes.fill b (Ethernet.size + 16) prog '\000');
    Tpp.rebase s ~memory:b ~mem_off:(Ethernet.size + 16 + prog)
  | None -> ());
  let l3 = Ethernet.size + sec in
  (match ip with
  | Some h -> Ipv4.Header.Flat.write_into b ~off:l3 h ~payload_len:(udp_len + pay)
  | None -> ());
  (match udp with
  | Some u -> Udp.Flat.write_into b ~off:(l3 + ip_len) u ~payload_len:pay
  | None -> ());
  let pay_off = l3 + ip_len + udp_len in
  Bytes.blit payload 0 b pay_off pay;
  t.len <- len;
  t.tpp <- tpp;
  t.ip_off <- (match ip with Some _ -> l3 | None -> -1);
  t.udp_off <- (match udp with Some _ -> l3 + ip_len | None -> -1);
  t.pay_off <- pay_off;
  t.flow_hash_cache <- min_int

let make ?tpp ?ip ?udp ?(payload = Bytes.empty) ~eth () =
  check_consistent ~eth ~tpp ~ip ~udp;
  let t =
    {
      id = fresh_id ();
      buf = Bytes.empty;
      len = 0;
      tpp = None;
      ip_off = -1;
      udp_off = -1;
      pay_off = 0;
      meta = Meta.create ();
      flow_hash_cache = min_int;
      home = no_pool;
      in_free_list = false;
    }
  in
  render t ?tpp ?ip ?udp ~payload ~eth ();
  t

let build_udp t ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?(ttl = 64)
    ?(dscp = 0) ?tpp ~payload () =
  match tpp with
  | Some s ->
    (* A TPP wrapping an IPv4 datagram must declare it, or transit
       parsers could not find the routing header. *)
    s.Tpp.inner_ethertype <- Ethernet.ethertype_ipv4;
    let eth =
      { Ethernet.dst = dst_mac; src = src_mac;
        ethertype = Ethernet.ethertype_tpp }
    in
    let ip =
      {
        Ipv4.Header.src = src_ip;
        dst = dst_ip;
        proto = Ipv4.proto_udp;
        ttl;
        dscp;
        ecn = 0;
        ident = fresh_id () land 0xFFFF;
      }
    in
    let udp = { Udp.src_port; dst_port } in
    render t ~tpp:s ~ip ~udp ~payload ~eth ()
  | None ->
    (* Scalar fast path for plain datagrams — the steady-state pooled
       sender: headers are written straight into the buffer from the
       arguments, so constructing a packet materializes no record at
       all. Byte-identical to the record path ([write_into] delegates
       to the same [write_fields]). *)
    let pay = Bytes.length payload in
    let len = Ethernet.size + Ipv4.Header.size + Udp.size + pay in
    if Bytes.length t.buf < len then t.buf <- Bytes.create len;
    let b = t.buf in
    Ethernet.Flat.write_fields b ~off:0 ~dst:dst_mac ~src:src_mac
      ~ethertype:Ethernet.ethertype_ipv4;
    let l3 = Ethernet.size in
    Ipv4.Header.Flat.write_fields b ~off:l3 ~src:src_ip ~dst:dst_ip
      ~proto:Ipv4.proto_udp ~ttl ~dscp ~ecn:0
      ~ident:(fresh_id () land 0xFFFF) ~payload_len:(Udp.size + pay);
    Udp.Flat.write_fields b ~off:(l3 + Ipv4.Header.size) ~src_port ~dst_port
      ~payload_len:pay;
    let pay_off = l3 + Ipv4.Header.size + Udp.size in
    Bytes.blit payload 0 b pay_off pay;
    t.len <- len;
    t.tpp <- None;
    t.ip_off <- l3;
    t.udp_off <- l3 + Ipv4.Header.size;
    t.pay_off <- pay_off;
    t.flow_hash_cache <- min_int

let udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?ttl ?dscp
    ?tpp ~payload () =
  let t =
    {
      id = fresh_id ();
      buf = Bytes.empty;
      len = 0;
      tpp = None;
      ip_off = -1;
      udp_off = -1;
      pay_off = 0;
      meta = Meta.create ();
      flow_hash_cache = min_int;
      home = no_pool;
      in_free_list = false;
    }
  in
  build_udp t ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?ttl ?dscp
    ?tpp ~payload ();
  t

(* A minimal inert frame (Ethernet header only), for use as the dummy
   slot filler of rings and slabs. Never transmitted. *)
let placeholder () =
  make ~eth:{ Ethernet.dst = Mac.of_int 0; src = Mac.of_int 0; ethertype = 0 } ()

(* ---- Flow hash ---- *)

(* splitmix64-style finalizer: equal tuples hash equal, and nearby
   tuples (consecutive ports) spread uniformly across ECMP groups. *)
let mix z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land max_int

let flow_hash_values ~src ~dst ~proto ~src_port ~dst_port =
  mix (mix (mix (mix (mix src lxor dst) lxor proto) lxor src_port) lxor dst_port)

let compute_flow_hash t =
  if t.ip_off >= 0 then begin
    let src_port, dst_port =
      if t.udp_off >= 0 then (udp_src_port t, udp_dst_port t) else (0, 0)
    in
    flow_hash_values
      ~src:(Ipv4.Addr.to_int (ip_src t))
      ~dst:(Ipv4.Addr.to_int (ip_dst t))
      ~proto:(ip_proto t) ~src_port ~dst_port
  end
  else
    flow_hash_values ~src:(Mac.to_int (eth_src t)) ~dst:(Mac.to_int (eth_dst t))
      ~proto:0 ~src_port:0 ~dst_port:0

let flow_hash t =
  if t.flow_hash_cache <> min_int then t.flow_hash_cache
  else begin
    let h = compute_flow_hash t in
    t.flow_hash_cache <- h;
    h
  end

let wire_size t = max 64 (t.len + 4)

(* ---- Byte export ---- *)

(* Flushes the TPP view's mutable header state (flags/sp/hop) into the
   serialized section header; memory words are already in place because
   the view aliases [buf]. *)
let[@inline] sync_tpp t =
  match t.tpp with
  | Some s -> Tpp.write_header_into t.buf ~off:Ethernet.size s
  | None -> ()

(* A [cache.code = None] TPP on a rendered frame means the program was
   unencodable at render time (its area in [buf] is zeros): forcing
   {!Tpp.program_bytes} re-raises the encoder's [Invalid_argument], so
   exporting such a frame fails exactly as the record writer did. *)
let[@inline] check_encodable t =
  match t.tpp with
  | Some s when Option.is_none s.Tpp.cache.Tpp.code ->
    ignore (Tpp.program_bytes s)
  | _ -> ()

let serialize_into w t =
  check_encodable t;
  sync_tpp t;
  Buf.Writer.bytes_sub w t.buf ~pos:0 ~len:t.len

let serialize t =
  check_encodable t;
  sync_tpp t;
  Bytes.sub t.buf 0 t.len

(* ---- Parse: wire bytes -> flat frame (one copy, offsets computed
   while the record codecs validate each header) ---- *)

let parse ?len b =
  try
    let r = Buf.Reader.of_bytes ?len b in
    let eth = Ethernet.read r in
    let tpp_res =
      if eth.Ethernet.ethertype = Ethernet.ethertype_tpp then
        match Tpp.read r with
        | Error e -> Error ("bad TPP section: " ^ e)
        | Ok tpp -> Ok (Some tpp)
      else Ok None
    in
    match tpp_res with
    | Error e -> Error e
    | Ok tpp ->
      let l3_ethertype =
        match tpp with
        | Some s -> s.Tpp.inner_ethertype
        | None -> eth.Ethernet.ethertype
      in
      let l3 = Buf.Reader.pos r in
      let ip_off = ref (-1) and udp_off = ref (-1) in
      if l3_ethertype = Ethernet.ethertype_ipv4 then begin
        let ip, ip_payload = Ipv4.Header.read r in
        if Buf.Reader.remaining r < ip_payload then
          invalid_arg "Frame.parse: truncated IPv4";
        ip_off := l3;
        if ip.Ipv4.Header.proto = Ipv4.proto_udp then begin
          let _udp, udp_payload = Udp.read r in
          if udp_payload + Udp.size <> ip_payload then
            invalid_arg "Frame.parse: IPv4/UDP length mismatch";
          udp_off := l3 + Ipv4.Header.size;
          Buf.Reader.skip r udp_payload
        end
        else Buf.Reader.skip r ip_payload
      end
      else Buf.Reader.skip r (Buf.Reader.remaining r);
      let wire_len = Buf.Reader.pos r in
      let buf = Bytes.sub b 0 wire_len in
      (match tpp with
      | Some s ->
        let prog = Instr.size * Array.length s.Tpp.program in
        Tpp.rebase s ~memory:buf ~mem_off:(Ethernet.size + 16 + prog)
      | None -> ());
      let pay_off =
        if !udp_off >= 0 then !udp_off + Udp.size
        else if !ip_off >= 0 then !ip_off + Ipv4.Header.size
        else l3
      in
      Ok
        {
          id = fresh_id ();
          buf;
          len = wire_len;
          tpp;
          ip_off = !ip_off;
          udp_off = !udp_off;
          pay_off;
          meta = Meta.create ();
          flow_hash_cache = min_int;
          home = no_pool;
          in_free_list = false;
        }
  with
  | Buf.Out_of_bounds what -> Error ("truncated frame: " ^ what)
  | Invalid_argument what -> Error what

(* ---- Cross-domain wire transfer (shard boundaries) ----

   A frame crossing a shard boundary travels as its bare wire image
   inside a flat chunk buffer: [blit_wire] copies the image out on the
   emitting shard, [materialize] rebuilds a frame from it on the owning
   shard — from that shard's *own* pool, so the rebuilt frame recycles
   normally (the emitter recycles its original into its local pool the
   moment the blit returns). *)

let blit_wire t dst ~pos =
  check_encodable t;
  sync_tpp t;
  Bytes.blit t.buf 0 dst pos t.len;
  t.len

(* Offsets from a trusted wire image: the emitter rendered it with the
   same layout rules [parse] validates, so they are recomputed by pure
   arithmetic (no codec round-trip on the boundary hot path). The
   QCheck boundary-codec property pins this against [parse]. *)
let set_l3_offsets t ~l3 ~ethertype =
  if ethertype = Ethernet.ethertype_ipv4 then begin
    t.ip_off <- l3;
    if Ipv4.Header.Flat.proto t.buf ~off:l3 = Ipv4.proto_udp then begin
      t.udp_off <- l3 + Ipv4.Header.size;
      t.pay_off <- t.udp_off + Udp.size
    end
    else begin
      t.udp_off <- -1;
      t.pay_off <- l3 + Ipv4.Header.size
    end
  end
  else begin
    t.ip_off <- -1;
    t.udp_off <- -1;
    t.pay_off <- l3
  end

(* ---- Structural surgery (cold paths) ---- *)

let with_tpp t tpp =
  let l3_start = if t.ip_off >= 0 then t.ip_off else t.pay_off in
  let l3_len = t.len - l3_start in
  let new_ethertype =
    match tpp with
    | Some _ -> Ethernet.ethertype_tpp
    | None ->
      if t.ip_off >= 0 then Ethernet.ethertype_ipv4 else ethertype t
  in
  let sec = match tpp with Some s -> Tpp.section_size s | None -> 0 in
  let buf = Bytes.create (Ethernet.size + sec + l3_len) in
  Bytes.blit t.buf 0 buf 0 12;
  Ethernet.Flat.set_ethertype buf ~off:0 new_ethertype;
  (match tpp with
  | Some s ->
    Tpp.write_header_into buf ~off:Ethernet.size s;
    let prog = Tpp.program_bytes s in
    let prog_len = Bytes.length prog in
    Bytes.blit prog 0 buf (Ethernet.size + 16) prog_len;
    Tpp.rebase s ~memory:buf ~mem_off:(Ethernet.size + 16 + prog_len)
  | None -> ());
  Bytes.blit t.buf l3_start buf (Ethernet.size + sec) l3_len;
  let shift = Ethernet.size + sec - l3_start in
  (* The flow hash never covers the TPP section, so its cache survives. *)
  {
    t with
    buf;
    len = Ethernet.size + sec + l3_len;
    tpp;
    ip_off = (if t.ip_off >= 0 then t.ip_off + shift else -1);
    udp_off = (if t.udp_off >= 0 then t.udp_off + shift else -1);
    pay_off = t.pay_off + shift;
    home = no_pool;
    in_free_list = false;
  }

let clone t =
  sync_tpp t;
  let buf = Bytes.sub t.buf 0 t.len in
  let tpp =
    Option.map (fun s -> Tpp.reseat s ~memory:buf ~mem_off:s.Tpp.mem_off) t.tpp
  in
  {
    t with
    id = fresh_id ();
    buf;
    tpp;
    meta = Meta.create ();
    home = no_pool;
    in_free_list = false;
  }

(* ---- Frame pool ---- *)

module Pool = struct
  type frame = t

  type t = pool

  (* 2048 comfortably holds an MTU-sized datagram plus the largest TPP
     section the end-host stack emits. *)
  let default_frame_bytes = 2048

  let create ?(capacity = 256) ?(frame_bytes = default_frame_bytes) () =
    if capacity <= 0 then invalid_arg "Frame.Pool.create: capacity";
    if frame_bytes < Ethernet.size then invalid_arg "Frame.Pool.create: frame_bytes";
    {
      frame_bytes;
      pool_dom = (Domain.self () :> int);
      free = [||];
      free_len = 0;
      p_created = 0;
      p_reused = 0;
    }

  let take p =
    if p.free_len > 0 then begin
      p.free_len <- p.free_len - 1;
      let t = p.free.(p.free_len) in
      p.free.(p.free_len) <- Obj.magic 0;  (* never read: below free_len *)
      p.p_reused <- p.p_reused + 1;
      t.in_free_list <- false;
      t.id <- fresh_id ();
      Meta.clear t.meta;
      t
    end
    else begin
      p.p_created <- p.p_created + 1;
      {
        id = fresh_id ();
        buf = Bytes.create p.frame_bytes;
        len = 0;
        tpp = None;
        ip_off = -1;
        udp_off = -1;
        pay_off = 0;
        meta = Meta.create ();
        flow_hash_cache = min_int;
        home = p;
        in_free_list = false;
      }
    end

  let udp_frame p ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?ttl
      ?dscp ?tpp ~payload () =
    let t = take p in
    build_udp t ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?ttl ?dscp
      ?tpp ~payload ();
    t

  let outstanding p = p.p_created - p.free_len
  let created p = p.p_created
  let reused p = p.p_reused
end

let materialize ~pool ~id ~hop_count src ~pos ~len =
  let t = Pool.take pool in
  if Bytes.length t.buf < len then t.buf <- Bytes.create len;
  Bytes.blit src pos t.buf 0 len;
  t.id <- id;
  t.len <- len;
  t.flow_hash_cache <- min_int;
  t.meta.Meta.hop_count <- hop_count;
  let ety = Ethernet.Flat.ethertype t.buf ~off:0 in
  if ety = Ethernet.ethertype_tpp then begin
    (* The TPP view must be rebuilt (program array, compile cache,
       aliasing memory window); [Tpp.read] validates the section and
       the process-wide compile cache makes recompilation a lookup. *)
    let r =
      Buf.Reader.of_bytes ~pos:Ethernet.size ~len:(len - Ethernet.size) t.buf
    in
    match Tpp.read r with
    | Error e -> invalid_arg ("Frame.materialize: bad TPP section: " ^ e)
    | Ok s ->
      let prog = Instr.size * Array.length s.Tpp.program in
      Tpp.rebase s ~memory:t.buf ~mem_off:(Ethernet.size + 16 + prog);
      t.tpp <- Some s;
      set_l3_offsets t ~l3:(Ethernet.size + Buf.Reader.pos r)
        ~ethertype:s.Tpp.inner_ethertype
  end
  else begin
    t.tpp <- None;
    set_l3_offsets t ~l3:Ethernet.size ~ethertype:ety
  end;
  t

(* Returns a pooled frame to its free list. Safe to call on any frame:
   unpooled frames, frames already in their free list, and frames being
   recycled from a foreign domain are all left alone. After recycling,
   the caller must not touch the frame again — the pool will hand its
   buffer to a future packet. *)
let recycle t =
  let p = t.home in
  if
    p != no_pool
    && (not t.in_free_list)
    && (Domain.self () :> int) = p.pool_dom
  then begin
    t.in_free_list <- true;
    t.tpp <- None;
    if p.free_len = Array.length p.free then begin
      let grown = Array.make (max 16 (2 * Array.length p.free)) t in
      Array.blit p.free 0 grown 0 p.free_len;
      p.free <- grown
    end;
    p.free.(p.free_len) <- t;
    p.free_len <- p.free_len + 1
  end

let pp fmt t =
  Format.fprintf fmt "@[<v>frame #%d %a%s%a@]" t.id Ethernet.pp (eth t)
    (match t.tpp with Some _ -> " +TPP" | None -> "")
    (Format.pp_print_option
       (fun fmt h -> Format.fprintf fmt " %a" Ipv4.Header.pp h))
    (ip t)
