module Buf = Tpp_util.Buf
module Ethernet = Tpp_packet.Ethernet
module Ipv4 = Tpp_packet.Ipv4
module Udp = Tpp_packet.Udp
module Mac = Tpp_packet.Mac

type t = {
  id : int;
  eth : Ethernet.t;
  tpp : Tpp.t option;
  mutable ip : Ipv4.Header.t option;
  udp : Udp.t option;
  payload : bytes;
  meta : Meta.t;
  (* Lazily computed caches ([min_int] = unset). Sound because in-flight
     header rewrites (TTL, ECN) touch neither the 5-tuple nor any length. *)
  mutable flow_hash_cache : int;
  mutable wire_size_cache : int;
}

(* Atomic: frames are created concurrently by the shards of a parallel
   run (ids stay unique; only tracing and the IP ident field see them,
   so cross-shard allocation order does not affect simulation state). *)
let next_id = Atomic.make 0

let fresh_id () = Atomic.fetch_and_add next_id 1 + 1

let check_consistent ~eth ~tpp ~ip ~udp =
  (match tpp with
  | Some t ->
    if eth.Ethernet.ethertype <> Ethernet.ethertype_tpp then
      invalid_arg "Frame.make: TPP section on non-TPP ethertype";
    let inner = t.Tpp.inner_ethertype in
    if Option.is_some ip && inner <> Ethernet.ethertype_ipv4 then
      invalid_arg "Frame.make: IPv4 under TPP needs inner_ethertype IPv4";
    if Option.is_none ip && inner = Ethernet.ethertype_ipv4 then
      invalid_arg "Frame.make: inner_ethertype IPv4 but no IPv4 header"
  | None ->
    if eth.Ethernet.ethertype = Ethernet.ethertype_tpp then
      invalid_arg "Frame.make: TPP ethertype without TPP section";
    if Option.is_some ip && eth.Ethernet.ethertype <> Ethernet.ethertype_ipv4 then
      invalid_arg "Frame.make: IPv4 header on non-IPv4 ethertype");
  if Option.is_some udp && Option.is_none ip then
    invalid_arg "Frame.make: UDP header without IPv4 header";
  match (ip, udp) with
  | Some h, Some _ when h.Ipv4.Header.proto <> Ipv4.proto_udp ->
    invalid_arg "Frame.make: UDP header but IPv4 proto is not UDP"
  | _ -> ()

let make ?tpp ?ip ?udp ?(payload = Bytes.empty) ~eth () =
  check_consistent ~eth ~tpp ~ip ~udp;
  { id = fresh_id (); eth; tpp; ip; udp; payload; meta = Meta.create ();
    flow_hash_cache = min_int; wire_size_cache = min_int }

let udp_frame ~src_mac ~dst_mac ~src_ip ~dst_ip ~src_port ~dst_port ?(ttl = 64) ?tpp
    ~payload () =
  (* A TPP wrapping an IPv4 datagram must declare it, or transit parsers
     could not find the routing header. *)
  let tpp =
    Option.map (fun t -> { t with Tpp.inner_ethertype = Ethernet.ethertype_ipv4 }) tpp
  in
  let ethertype =
    match tpp with Some _ -> Ethernet.ethertype_tpp | None -> Ethernet.ethertype_ipv4
  in
  let eth = { Ethernet.dst = dst_mac; src = src_mac; ethertype } in
  let ip =
    {
      Ipv4.Header.src = src_ip;
      dst = dst_ip;
      proto = Ipv4.proto_udp;
      ttl;
      dscp = 0;
      ecn = 0;
      ident = fresh_id () land 0xFFFF;
    }
  in
  let udp = { Udp.src_port; dst_port } in
  make ?tpp ~ip ~udp ~payload ~eth ()

(* splitmix64-style finalizer: equal tuples hash equal, and nearby
   tuples (consecutive ports) spread uniformly across ECMP groups. *)
let mix z =
  let z = Int64.of_int z in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int z land max_int

let flow_hash_values ~src ~dst ~proto ~src_port ~dst_port =
  mix (mix (mix (mix (mix src lxor dst) lxor proto) lxor src_port) lxor dst_port)

let compute_flow_hash t =
  match t.ip with
  | Some ip ->
    let src_port, dst_port =
      match t.udp with
      | Some u -> (u.Udp.src_port, u.Udp.dst_port)
      | None -> (0, 0)
    in
    flow_hash_values
      ~src:(Ipv4.Addr.to_int ip.Ipv4.Header.src)
      ~dst:(Ipv4.Addr.to_int ip.Ipv4.Header.dst)
      ~proto:ip.Ipv4.Header.proto ~src_port ~dst_port
  | None ->
    flow_hash_values ~src:(Mac.to_int t.eth.Ethernet.src)
      ~dst:(Mac.to_int t.eth.Ethernet.dst) ~proto:0 ~src_port:0 ~dst_port:0

let flow_hash t =
  if t.flow_hash_cache <> min_int then t.flow_hash_cache
  else begin
    let h = compute_flow_hash t in
    t.flow_hash_cache <- h;
    h
  end

let l3_len t =
  match t.ip with
  | None -> Bytes.length t.payload
  | Some _ ->
    Ipv4.Header.size
    + (match t.udp with Some _ -> Udp.size | None -> 0)
    + Bytes.length t.payload

let wire_size t =
  if t.wire_size_cache <> min_int then t.wire_size_cache
  else begin
    let body =
      Ethernet.size
      + (match t.tpp with Some s -> Tpp.section_size s | None -> 0)
      + l3_len t
    in
    let size = max 64 (body + 4) in
    t.wire_size_cache <- size;
    size
  end

let serialize_into w t =
  Ethernet.write w t.eth;
  (match t.tpp with Some s -> Tpp.write w s | None -> ());
  (match t.ip with
  | Some ip ->
    let payload_len =
      (match t.udp with Some _ -> Udp.size | None -> 0) + Bytes.length t.payload
    in
    Ipv4.Header.write w ip ~payload_len;
    (match t.udp with
    | Some u -> Udp.write w u ~payload_len:(Bytes.length t.payload)
    | None -> ())
  | None -> ());
  Buf.Writer.bytes w t.payload

let serialize t =
  let w = Buf.Writer.create ~capacity:128 () in
  serialize_into w t;
  Buf.Writer.contents w

let parse_l3 r ethertype =
  if ethertype = Ethernet.ethertype_ipv4 then begin
    let ip, ip_payload = Ipv4.Header.read r in
    if Buf.Reader.remaining r < ip_payload then invalid_arg "Frame.parse: truncated IPv4";
    if ip.Ipv4.Header.proto = Ipv4.proto_udp then begin
      let udp, udp_payload = Udp.read r in
      if udp_payload + Udp.size <> ip_payload then
        invalid_arg "Frame.parse: IPv4/UDP length mismatch";
      let payload = Buf.Reader.bytes r udp_payload in
      (Some ip, Some udp, payload)
    end
    else begin
      let payload = Buf.Reader.bytes r ip_payload in
      (Some ip, None, payload)
    end
  end
  else begin
    let payload = Buf.Reader.bytes r (Buf.Reader.remaining r) in
    (None, None, payload)
  end

let parse ?len b =
  try
    let r = Buf.Reader.of_bytes ?len b in
    let eth = Ethernet.read r in
    if eth.Ethernet.ethertype = Ethernet.ethertype_tpp then begin
      match Tpp.read r with
      | Error e -> Error ("bad TPP section: " ^ e)
      | Ok tpp ->
        let ip, udp, payload = parse_l3 r tpp.Tpp.inner_ethertype in
        Ok
          {
            id = fresh_id ();
            eth;
            tpp = Some tpp;
            ip;
            udp;
            payload;
            meta = Meta.create ();
            flow_hash_cache = min_int;
            wire_size_cache = min_int;
          }
    end
    else begin
      let ip, udp, payload = parse_l3 r eth.Ethernet.ethertype in
      Ok
        { id = fresh_id (); eth; tpp = None; ip; udp; payload;
          meta = Meta.create (); flow_hash_cache = min_int;
          wire_size_cache = min_int }
    end
  with
  | Buf.Out_of_bounds what -> Error ("truncated frame: " ^ what)
  | Invalid_argument what -> Error what

let with_tpp t tpp =
  let eth =
    match tpp with
    | Some _ -> { t.eth with Ethernet.ethertype = Ethernet.ethertype_tpp }
    | None -> (
      match t.ip with
      | Some _ -> { t.eth with Ethernet.ethertype = Ethernet.ethertype_ipv4 }
      | None -> t.eth)
  in
  (* The flow hash never covers the TPP section, so its cache survives;
     the wire size does change with the section. *)
  { t with eth; tpp; wire_size_cache = min_int }

let clone t =
  { t with id = fresh_id (); tpp = Option.map Tpp.copy t.tpp; meta = Meta.create () }

let pp fmt t =
  Format.fprintf fmt "@[<v>frame #%d %a%s%a@]" t.id Ethernet.pp t.eth
    (match t.tpp with Some _ -> " +TPP" | None -> "")
    (Format.pp_print_option (fun fmt ip -> Format.fprintf fmt " %a" Ipv4.Header.pp ip))
    t.ip
