let limit = 0x1000

let switch_base = 0x000
let link_base = 0x100
let queue_base = 0x140
let link_sram_base = 0x180
let port_base = 0x200
let meta_base = 0x800
let sram_base = 0x880

let link_sram_slots = 0x80
let sram_words = limit - sram_base
let max_ports = (meta_base - port_base) / 16

module Port_stat = struct
  type t =
    | Queue_bytes
    | Queue_pkts
    | Rx_bytes
    | Tx_bytes
    | Rx_util
    | Drops
    | Queue_bytes_avg
    | Capacity_kbps
    | Tx_pkts
    | Rx_pkts
    | Queue_limit

  let index = function
    | Queue_bytes -> 0
    | Queue_pkts -> 1
    | Rx_bytes -> 2
    | Tx_bytes -> 3
    | Rx_util -> 4
    | Drops -> 5
    | Queue_bytes_avg -> 6
    | Capacity_kbps -> 7
    | Tx_pkts -> 8
    | Rx_pkts -> 9
    | Queue_limit -> 10

  let of_index = function
    | 0 -> Some Queue_bytes
    | 1 -> Some Queue_pkts
    | 2 -> Some Rx_bytes
    | 3 -> Some Tx_bytes
    | 4 -> Some Rx_util
    | 5 -> Some Drops
    | 6 -> Some Queue_bytes_avg
    | 7 -> Some Capacity_kbps
    | 8 -> Some Tx_pkts
    | 9 -> Some Rx_pkts
    | 10 -> Some Queue_limit
    | _ -> None

  let name = function
    | Queue_bytes -> "QueueSize"
    | Queue_pkts -> "QueuePackets"
    | Rx_bytes -> "RxBytes"
    | Tx_bytes -> "TxBytes"
    | Rx_util -> "RxUtilization"
    | Drops -> "Drops"
    | Queue_bytes_avg -> "AvgQueueSize"
    | Capacity_kbps -> "CapacityKbps"
    | Tx_pkts -> "TxPackets"
    | Rx_pkts -> "RxPackets"
    | Queue_limit -> "QueueLimit"

  let all =
    [ Queue_bytes; Queue_pkts; Rx_bytes; Tx_bytes; Rx_util; Drops; Queue_bytes_avg;
      Capacity_kbps; Tx_pkts; Rx_pkts; Queue_limit ]
end

module Switch_stat = struct
  type t =
    | Switch_id
    | Version
    | Packets_seen
    | Bytes_seen
    | Drops
    | Num_ports
    | Tpp_execs
    | Tpp_faults
    | Clock_ns
    | Tpp_compile_hits
    | Tpp_compile_misses

  let index = function
    | Switch_id -> 0
    | Version -> 1
    | Packets_seen -> 2
    | Bytes_seen -> 3
    | Drops -> 4
    | Num_ports -> 5
    | Tpp_execs -> 6
    | Tpp_faults -> 7
    | Clock_ns -> 8
    | Tpp_compile_hits -> 9
    | Tpp_compile_misses -> 10

  let of_index = function
    | 0 -> Some Switch_id
    | 1 -> Some Version
    | 2 -> Some Packets_seen
    | 3 -> Some Bytes_seen
    | 4 -> Some Drops
    | 5 -> Some Num_ports
    | 6 -> Some Tpp_execs
    | 7 -> Some Tpp_faults
    | 8 -> Some Clock_ns
    | 9 -> Some Tpp_compile_hits
    | 10 -> Some Tpp_compile_misses
    | _ -> None

  let name = function
    | Switch_id -> "SwitchID"
    | Version -> "Version"
    | Packets_seen -> "PacketsSeen"
    | Bytes_seen -> "BytesSeen"
    | Drops -> "Drops"
    | Num_ports -> "NumPorts"
    | Tpp_execs -> "TppExecs"
    | Tpp_faults -> "TppFaults"
    | Clock_ns -> "ClockNs"
    | Tpp_compile_hits -> "TppCompileHits"
    | Tpp_compile_misses -> "TppCompileMisses"

  let all =
    [ Switch_id; Version; Packets_seen; Bytes_seen; Drops; Num_ports; Tpp_execs;
      Tpp_faults; Clock_ns; Tpp_compile_hits; Tpp_compile_misses ]
end

module Queue_stat = struct
  type t = Q_bytes | Q_pkts | Q_enqueued | Q_dropped | Q_limit | Q_id

  let index = function
    | Q_bytes -> 0
    | Q_pkts -> 1
    | Q_enqueued -> 2
    | Q_dropped -> 3
    | Q_limit -> 4
    | Q_id -> 5

  let of_index = function
    | 0 -> Some Q_bytes
    | 1 -> Some Q_pkts
    | 2 -> Some Q_enqueued
    | 3 -> Some Q_dropped
    | 4 -> Some Q_limit
    | 5 -> Some Q_id
    | _ -> None

  let name = function
    | Q_bytes -> "QueueSize"
    | Q_pkts -> "QueuePackets"
    | Q_enqueued -> "BytesEnqueued"
    | Q_dropped -> "BytesDropped"
    | Q_limit -> "Limit"
    | Q_id -> "QueueID"

  let all = [ Q_bytes; Q_pkts; Q_enqueued; Q_dropped; Q_limit; Q_id ]
end

module Pkt_meta = struct
  type t =
    | Input_port
    | Output_port
    | Matched_entry
    | Matched_version
    | Hop_count
    | Table_hit
    | Arrival_ns

  let index = function
    | Input_port -> 0
    | Output_port -> 1
    | Matched_entry -> 2
    | Matched_version -> 3
    | Hop_count -> 4
    | Table_hit -> 5
    | Arrival_ns -> 6

  let of_index = function
    | 0 -> Some Input_port
    | 1 -> Some Output_port
    | 2 -> Some Matched_entry
    | 3 -> Some Matched_version
    | 4 -> Some Hop_count
    | 5 -> Some Table_hit
    | 6 -> Some Arrival_ns
    | _ -> None

  let name = function
    | Input_port -> "InputPort"
    | Output_port -> "OutputPort"
    | Matched_entry -> "MatchedEntryID"
    | Matched_version -> "MatchedVersion"
    | Hop_count -> "HopCount"
    | Table_hit -> "TableHit"
    | Arrival_ns -> "ArrivalNs"

  let all =
    [ Input_port; Output_port; Matched_entry; Matched_version; Hop_count; Table_hit;
      Arrival_ns ]
end

type region =
  | Switch of Switch_stat.t
  | Link of Port_stat.t
  | Queue of Queue_stat.t
  | Link_sram of int
  | Port of int * Port_stat.t
  | Meta of Pkt_meta.t
  | Sram of int

let classify a =
  if a < 0 || a >= limit then Error (Printf.sprintf "address 0x%03x out of range" a)
  else if a < link_base then
    match Switch_stat.of_index (a - switch_base) with
    | Some s -> Ok (Switch s)
    | None -> Error (Printf.sprintf "unmapped switch register 0x%03x" a)
  else if a < queue_base then
    match Port_stat.of_index (a - link_base) with
    | Some s -> Ok (Link s)
    | None -> Error (Printf.sprintf "unmapped link stat 0x%03x" a)
  else if a < link_sram_base then
    match Queue_stat.of_index (a - queue_base) with
    | Some s -> Ok (Queue s)
    | None -> Error (Printf.sprintf "unmapped queue stat 0x%03x" a)
  else if a < port_base then Ok (Link_sram (a - link_sram_base))
  else if a < meta_base then begin
    let off = a - port_base in
    let port = off / 16 and idx = off mod 16 in
    match Port_stat.of_index idx with
    | Some s -> Ok (Port (port, s))
    | None -> Error (Printf.sprintf "unmapped port stat 0x%03x" a)
  end
  else if a < sram_base then
    match Pkt_meta.of_index (a - meta_base) with
    | Some m -> Ok (Meta m)
    | None -> Error (Printf.sprintf "unmapped packet metadata 0x%03x" a)
  else Ok (Sram (a - sram_base))

let encode = function
  | Switch s -> switch_base + Switch_stat.index s
  | Link s -> link_base + Port_stat.index s
  | Queue s -> queue_base + Queue_stat.index s
  | Link_sram slot -> link_sram_base + slot
  | Port (p, s) -> port_base + (16 * p) + Port_stat.index s
  | Meta m -> meta_base + Pkt_meta.index m
  | Sram w -> sram_base + w

let writable = function
  | Sram _ | Link_sram _ -> true
  | Switch _ | Link _ | Queue _ | Port _ | Meta _ -> false

let builtin_names () =
  let switch =
    List.map
      (fun s -> ("Switch:" ^ Switch_stat.name s, encode (Switch s)))
      Switch_stat.all
  in
  let link =
    List.map (fun s -> ("Link:" ^ Port_stat.name s, encode (Link s))) Port_stat.all
  in
  let queue =
    List.map (fun s -> ("Queue:" ^ Queue_stat.name s, encode (Queue s))) Queue_stat.all
  in
  let meta =
    List.map
      (fun m -> ("PacketMetadata:" ^ Pkt_meta.name m, encode (Meta m)))
      Pkt_meta.all
  in
  switch @ link @ queue @ meta

let all_named = builtin_names

let parse_int s =
  match int_of_string_opt s with Some v -> Some v | None -> None

let of_name ?(defines = []) name =
  match List.assoc_opt name defines with
  | Some a -> Ok a
  | None -> (
    match List.assoc_opt name (builtin_names ()) with
    | Some a -> Ok a
    | None -> (
      match String.split_on_char ':' name with
      | [ "Sram"; n ] -> (
        match parse_int n with
        | Some w when w >= 0 && w < sram_words -> Ok (encode (Sram w))
        | Some _ -> Error (Printf.sprintf "Sram index out of range in %S" name)
        | None -> Error (Printf.sprintf "bad Sram index in %S" name))
      | [ "LinkSram"; n ] -> (
        match parse_int n with
        | Some s when s >= 0 && s < link_sram_slots -> Ok (encode (Link_sram s))
        | Some _ -> Error (Printf.sprintf "LinkSram slot out of range in %S" name)
        | None -> Error (Printf.sprintf "bad LinkSram slot in %S" name))
      | [ "Port"; p; stat ] -> (
        match parse_int p with
        | Some port when port >= 0 && port < max_ports -> (
          let found =
            List.find_opt (fun s -> String.equal (Port_stat.name s) stat) Port_stat.all
          in
          match found with
          | Some s -> Ok (encode (Port (port, s)))
          | None -> Error (Printf.sprintf "unknown port stat in %S" name))
        | _ -> Error (Printf.sprintf "bad port number in %S" name))
      | _ -> Error (Printf.sprintf "unknown statistic %S" name)))

let to_name a =
  match classify a with
  | Error _ -> Printf.sprintf "0x%03x" a
  | Ok (Switch s) -> "Switch:" ^ Switch_stat.name s
  | Ok (Link s) -> "Link:" ^ Port_stat.name s
  | Ok (Queue s) -> "Queue:" ^ Queue_stat.name s
  | Ok (Link_sram slot) -> Printf.sprintf "LinkSram:%d" slot
  | Ok (Port (p, s)) -> Printf.sprintf "Port:%d:%s" p (Port_stat.name s)
  | Ok (Meta m) -> "PacketMetadata:" ^ Pkt_meta.name m
  | Ok (Sram w) -> Printf.sprintf "Sram:%d" w
