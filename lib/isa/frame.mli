(** A simulated Ethernet frame, possibly carrying a TPP section.

    Zero-copy flat representation: a frame is one contiguous buffer
    holding its wire encoding (Ethernet at offset 0, then an optional
    TPP section, then IPv4/UDP/payload) plus integer offsets into it,
    computed once at construction or ingress {!parse}. Header reads are
    direct byte loads; in-flight rewrites (TTL, ECN, TPP memory words)
    patch the buffer in place — IPv4 via RFC 1624 incremental checksum
    update — so a switch hop allocates no header records, and
    {!serialize} is a single blit.

    The {!t.tpp} view aliases the frame's buffer: its packet memory
    window points at the memory bytes of the serialized section, so
    TCPU stores land directly in the wire image. The record codecs in
    [Tpp_packet] remain the validation and differential-testing oracle:
    {!parse} drives them to check every header, and the QCheck suite
    asserts flat and record serializations are byte-identical. *)

module Ethernet = Tpp_packet.Ethernet
module Ipv4 = Tpp_packet.Ipv4
module Udp = Tpp_packet.Udp

type t = {
  mutable id : int;  (** unique per simulation run, for tracing *)
  mutable buf : bytes;
      (** backing buffer; the wire image is [0, len) (pooled frames may
          have spare capacity beyond [len]) *)
  mutable len : int;
  mutable tpp : Tpp.t option;
      (** TPP view whose packet memory aliases [buf]; its mutable header
          state (flags/sp/hop) is flushed into [buf] on serialization *)
  mutable ip_off : int;   (** IPv4 header offset in [buf]; -1 = absent *)
  mutable udp_off : int;  (** UDP header offset in [buf]; -1 = absent *)
  mutable pay_off : int;  (** payload offset (= [len] when empty) *)
  meta : Meta.t;
  mutable flow_hash_cache : int;
      (** lazily memoized {!flow_hash} ([min_int] = not yet computed) *)
  mutable home : pool;
      (** free list this frame returns to on {!recycle} *)
  mutable in_free_list : bool;
}

and pool

val make :
  ?tpp:Tpp.t ->
  ?ip:Ipv4.Header.t ->
  ?udp:Udp.t ->
  ?payload:bytes ->
  eth:Ethernet.t ->
  unit ->
  t
(** Builds a frame with a fresh id, rendering the wire image
    immediately. Raises [Invalid_argument] when the header stack is
    inconsistent (e.g. a TPP on a non-TPP ethertype, or a UDP header
    without an IPv4 header), or when [tpp]'s program is unencodable.
    The [tpp] handle is rebased onto the frame's buffer: the caller's
    subsequent [Tpp.mem_set]s patch the frame in place. *)

val udp_frame :
  src_mac:Tpp_packet.Mac.t ->
  dst_mac:Tpp_packet.Mac.t ->
  src_ip:Ipv4.Addr.t ->
  dst_ip:Ipv4.Addr.t ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?dscp:int ->
  ?tpp:Tpp.t ->
  payload:bytes ->
  unit ->
  t
(** A UDP datagram; when [tpp] is given the frame becomes a TPP frame
    encapsulating the IPv4 packet (so it is routed like normal traffic,
    as the paper requires); [tpp.inner_ethertype] is set accordingly.
    [dscp] (default 0) sets the IPv4 DSCP codepoint, which switch queue
    classifiers map to a priority queue. *)

val placeholder : unit -> t
(** A minimal inert frame (Ethernet header only, zero MACs); rings and
    slabs use it as their dummy slot filler. Never transmitted. *)

(** {2 Field views}

    Reads decode straight out of the flat buffer. The [_exn] behaviour
    of layer-specific accessors on a frame lacking that layer is
    [Invalid_argument]; check {!has_ip}/{!has_udp} first on mixed
    traffic, or use the option-returning record getters. *)

val eth : t -> Ethernet.t
val ethertype : t -> int
val eth_src : t -> Tpp_packet.Mac.t
val eth_dst : t -> Tpp_packet.Mac.t

val has_ip : t -> bool

val ip : t -> Ipv4.Header.t option
(** Materializes the IPv4 header as a record (allocates); prefer the
    field accessors below on hot paths. *)

val ip_src : t -> Ipv4.Addr.t
val ip_dst : t -> Ipv4.Addr.t
val ip_proto : t -> int
val ip_ttl : t -> int
val ip_dscp : t -> int
val ip_ecn : t -> int
val ip_ident : t -> int

val set_ip_ttl : t -> int -> unit
(** In-place patch with incremental checksum update; the stored IPv4
    checksum remains equal to a full recompute. Likewise below. *)

val set_ip_ecn : t -> int -> unit
val set_ip_dscp : t -> int -> unit
val set_ip_ident : t -> int -> unit

val has_udp : t -> bool
val udp : t -> Udp.t option
val udp_src_port : t -> int
val udp_dst_port : t -> int

val payload_len : t -> int

val payload : t -> bytes
(** Copy of the payload bytes (allocates); hot paths should use
    {!payload_len}/{!payload_u32}/{!blit_payload}. *)

val payload_u32 : t -> int -> int
(** Big-endian 32-bit word at a byte offset within the payload. Raises
    [Buf.Out_of_bounds]. *)

val blit_payload : t -> src_pos:int -> bytes -> dst_pos:int -> len:int -> unit

val trim : t -> keep:int -> unit
(** NDP-style packet trimming: cuts the UDP payload to its first [keep]
    bytes in place (no-op when already that short). Patches the IPv4
    total length under the incremental-checksum discipline and the UDP
    length field; offsets and the memoized flow hash stay valid. Zero
    allocation. Raises [Invalid_argument] when the frame has no UDP
    header or [keep < 0]. *)

val flow_hash_values :
  src:int -> dst:int -> proto:int -> src_port:int -> dst_port:int -> int
(** Deterministic 5-tuple hash (ECMP path selection). Exposed so the
    control plane can predict the dataplane's choice exactly. *)

val flow_hash : t -> int
(** {!flow_hash_values} over this frame's headers: the IPv4/UDP fields
    when present, else the MAC addresses. Symmetric headers hash the
    same on every switch, so a flow pins to one path. Memoized; sound
    because in-flight rewrites never touch the 5-tuple. *)

val wire_size : t -> int
(** Bytes this frame occupies on a link, including the 4-byte FCS and
    the 64-byte Ethernet minimum. Queueing and transmission delays use
    this value. *)

val serialize : t -> bytes
(** The frame's wire image as fresh bytes (one blit, after flushing the
    TPP header state). *)

val serialize_into : Tpp_util.Buf.Writer.t -> t -> unit
(** {!serialize}, but appending into a caller-provided writer. *)

val parse : ?len:int -> bytes -> (t, string) result
(** [parse ?len b] decodes the first [len] bytes of [b] (default: all of
    it) — [len] lets a caller parse straight out of a reused scratch
    buffer without copying. Every header is validated by the record
    codecs; the resulting frame owns a private copy of the wire image
    with offsets precomputed, and is never pooled. *)

val with_tpp : t -> Tpp.t option -> t
(** Same frame (same id) with the TPP section replaced — the one
    layout-changing operation; builds a fresh buffer. [tpp] is rebased
    onto it. *)

val clone : t -> t
(** Independent copy with a fresh id, fresh metadata and a private
    buffer (the TPP view is reseated onto it, sharing the program and
    compiled-code cell); used when a switch floods a frame out of
    several ports. *)

(** {2 Frame pool}

    A per-flow free list of fixed-capacity frames: steady-state traffic
    reuses one buffer per in-flight packet instead of allocating per
    send. Ownership rule: a pool belongs to the domain that created it;
    {!recycle} from another domain is a no-op (the frame ages out to
    the GC), so pooling never breaks sharded determinism. *)

module Pool : sig
  type frame = t
  type t = pool

  val create : ?capacity:int -> ?frame_bytes:int -> unit -> t
  (** [frame_bytes] (default 2048) is the buffer capacity preallocated
      per frame — MTU-sized datagram plus TPP section headroom. *)

  val take : t -> frame
  (** A frame from the free list (buffer retained, fresh id, cleared
      metadata) or a newly allocated one. Its contents are unspecified
      until rendered by {!udp_frame}. *)

  val udp_frame :
    t ->
    src_mac:Tpp_packet.Mac.t ->
    dst_mac:Tpp_packet.Mac.t ->
    src_ip:Ipv4.Addr.t ->
    dst_ip:Ipv4.Addr.t ->
    src_port:int ->
    dst_port:int ->
    ?ttl:int ->
    ?dscp:int ->
    ?tpp:Tpp.t ->
    payload:bytes ->
    unit ->
    frame
  (** {!Frame.udp_frame} rendered into a pooled frame; allocation-free
      when the free list is non-empty and the packet fits
      [frame_bytes]. *)

  val outstanding : t -> int
  (** Frames taken and not yet recycled. *)

  val created : t -> int
  val reused : t -> int
end

(** {2 Cross-domain wire transfer}

    A frame crossing a shard boundary travels as its bare wire image
    inside a flat chunk buffer ({!Tpp_parsim.Parsim.Boundary}):
    {!blit_wire} copies the image out on the emitting shard, and
    {!materialize} rebuilds an equivalent frame on the owning shard from
    that shard's {e own} pool — so boundary frames recycle normally on
    both sides instead of aging out to the GC. *)

val blit_wire : t -> bytes -> pos:int -> int
(** [blit_wire t dst ~pos] flushes the TPP header state and copies the
    wire image into [dst] at [pos]; returns the number of bytes written
    ([t.len] — the caller must have ensured that much room). Same
    encodability requirement as {!serialize}: a hand-built TPP whose
    program cannot be encoded raises [Invalid_argument], so such frames
    cannot cross a shard boundary (exactly as they cannot be emitted
    under [wire_check:`Always]). *)

val materialize :
  pool:Pool.t -> id:int -> hop_count:int -> bytes -> pos:int -> len:int -> t
(** [materialize ~pool ~id ~hop_count src ~pos ~len] rebuilds a frame
    from the [len]-byte wire image at [src.(pos)] into a frame taken
    from [pool], preserving the original's [id] and [hop_count] (the
    only metadata that survives a hop). Offsets are recomputed by
    arithmetic on the trusted image (the emitter rendered it with the
    layout {!parse} validates); a TPP section is revalidated and its
    aliasing view rebuilt via the process-wide compile cache. *)

val recycle : t -> unit
(** Returns a pooled frame to its free list. Safe on any frame:
    unpooled frames, double recycles and foreign-domain recycles are
    no-ops. After a successful recycle the caller must not touch the
    frame again. *)

val pp : Format.formatter -> t -> unit
