(** A simulated Ethernet frame, possibly carrying a TPP section.

    The structured representation is what the simulator moves around;
    {!serialize} and {!parse} implement the real wire format and are
    exercised at host NIC boundaries and throughout the test suite, so
    the structured form is guaranteed to round-trip through bytes. *)

module Ethernet = Tpp_packet.Ethernet
module Ipv4 = Tpp_packet.Ipv4
module Udp = Tpp_packet.Udp

type t = {
  id : int;  (** unique per simulation run, for tracing *)
  eth : Ethernet.t;
  tpp : Tpp.t option;
  mutable ip : Ipv4.Header.t option;
      (** mutable: switches rewrite TTL and may set the ECN mark *)
  udp : Udp.t option;
  payload : bytes;
  meta : Meta.t;
  mutable flow_hash_cache : int;
      (** lazily memoized {!flow_hash} ([min_int] = not yet computed) *)
  mutable wire_size_cache : int;
      (** lazily memoized {!wire_size} ([min_int] = not yet computed) *)
}

val make :
  ?tpp:Tpp.t ->
  ?ip:Ipv4.Header.t ->
  ?udp:Udp.t ->
  ?payload:bytes ->
  eth:Ethernet.t ->
  unit ->
  t
(** Builds a frame with a fresh id. Raises [Invalid_argument] when the
    header stack is inconsistent (e.g. a TPP on a non-TPP ethertype, or
    a UDP header without an IPv4 header). *)

val udp_frame :
  src_mac:Tpp_packet.Mac.t ->
  dst_mac:Tpp_packet.Mac.t ->
  src_ip:Ipv4.Addr.t ->
  dst_ip:Ipv4.Addr.t ->
  src_port:int ->
  dst_port:int ->
  ?ttl:int ->
  ?tpp:Tpp.t ->
  payload:bytes ->
  unit ->
  t
(** A UDP datagram; when [tpp] is given the frame becomes a TPP frame
    encapsulating the IPv4 packet (so it is routed like normal traffic,
    as the paper requires). *)

val flow_hash_values :
  src:int -> dst:int -> proto:int -> src_port:int -> dst_port:int -> int
(** Deterministic 5-tuple hash (ECMP path selection). Exposed so the
    control plane can predict the dataplane's choice exactly. *)

val flow_hash : t -> int
(** {!flow_hash_values} over this frame's headers: the IPv4/UDP fields
    when present, else the MAC addresses. Symmetric headers hash the
    same on every switch, so a flow pins to one path. *)

val wire_size : t -> int
(** Bytes this frame occupies on a link, including the 4-byte FCS and
    the 64-byte Ethernet minimum. Queueing and transmission delays use
    this value. Memoized per frame: every hop asks several times. *)

val serialize : t -> bytes
(** The frame's wire image as fresh bytes. *)

(** {!serialize}, but appending into a caller-provided writer, so the
    steady-state path can reuse one scratch buffer instead of allocating
    per packet. *)
val serialize_into : Tpp_util.Buf.Writer.t -> t -> unit
val parse : ?len:int -> bytes -> (t, string) result
(** [parse ?len b] decodes the first [len] bytes of [b] (default: all of
    it) — [len] lets a caller parse straight out of a reused scratch
    buffer without copying. *)

val with_tpp : t -> Tpp.t option -> t
(** Same frame (same id) with the TPP section replaced. *)

val clone : t -> t
(** Independent copy with a fresh id, fresh metadata and deep-copied TPP
    memory; used when a switch floods a frame out of several ports. *)

val pp : Format.formatter -> t -> unit
