type t = {
  mutable in_port : int;
  mutable out_port : int;
  mutable queue_id : int;
  mutable matched_entry : int;
  mutable matched_version : int;
  mutable table_hit : int;
  mutable arrival_ns : int;
  mutable hop_count : int;
}

let create () =
  {
    in_port = 0;
    out_port = 0;
    queue_id = 0;
    matched_entry = 0;
    matched_version = 0;
    table_hit = 0;
    arrival_ns = 0;
    hop_count = 0;
  }

let reset t =
  t.in_port <- 0;
  t.out_port <- 0;
  t.queue_id <- 0;
  t.matched_entry <- 0;
  t.matched_version <- 0;
  t.table_hit <- 0;
  t.arrival_ns <- 0

let clear t =
  reset t;
  t.hop_count <- 0

let get t = function
  | Vaddr.Pkt_meta.Input_port -> t.in_port
  | Vaddr.Pkt_meta.Output_port -> t.out_port
  | Vaddr.Pkt_meta.Matched_entry -> t.matched_entry
  | Vaddr.Pkt_meta.Matched_version -> t.matched_version
  | Vaddr.Pkt_meta.Hop_count -> t.hop_count
  | Vaddr.Pkt_meta.Table_hit -> t.table_hit
  | Vaddr.Pkt_meta.Arrival_ns -> t.arrival_ns land 0xFFFF_FFFF
