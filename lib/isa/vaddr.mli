(** The unified switch virtual address space (paper §3.2.1, Table 2).

    Every dataplane statistic a TPP can touch lives at a 12-bit word
    address. The map groups statistics into the paper's namespaces:

    {v
    0x000-0x0FF  per-switch registers (SwitchID, version, counters)
    0x100-0x13F  contextual per-link stats of THIS packet's output port
    0x140-0x17F  contextual per-queue stats of THIS packet's queue
    0x180-0x1FF  contextual per-link SRAM window (slot s of out port)
    0x200-0x7FF  absolute per-port stat arrays (0x200 + 16*port + stat)
    0x800-0x87F  per-packet metadata (input port, matched entry, ...)
    0x880-0xFFF  switch SRAM words, partitioned by the control plane
    v}

    "Contextual" addresses resolve against the output port — and, for
    the [Queue:*] namespace, the egress queue — the forwarding pipeline
    chose for the packet, which is how the paper's
    [\[Queue:QueueSize\]] reads the queue the packet is about to join.
    On single-queue ports the port aggregate and queue 0 coincide. *)

val limit : int
(** Exclusive upper bound of the address space (4096). *)

(** Per-port statistic slots, shared by the contextual window at [0x100]
    and the absolute arrays at [0x200]. *)
module Port_stat : sig
  type t =
    | Queue_bytes
    | Queue_pkts
    | Rx_bytes
    | Tx_bytes
    | Rx_util        (** utilisation of link capacity, in parts-per-million *)
    | Drops
    | Queue_bytes_avg
    | Capacity_kbps
    | Tx_pkts
    | Rx_pkts
    | Queue_limit

  val index : t -> int
  val of_index : int -> t option
  val name : t -> string
end

(** Per-switch register slots at [0x000]. *)
module Switch_stat : sig
  type t =
    | Switch_id
    | Version        (** forwarding-table version, bumped by the control plane *)
    | Packets_seen
    | Bytes_seen
    | Drops
    | Num_ports
    | Tpp_execs
    | Tpp_faults
    | Clock_ns       (** low 32 bits of the switch clock *)
    | Tpp_compile_hits
        (** TPP executions served by an already-compiled program.
            Observability only: the split between hits and misses depends
            on shard layout, so it is excluded from determinism checks. *)
    | Tpp_compile_misses
        (** TPP executions that had to compile (or re-link) the program. *)

  val index : t -> int
  val of_index : int -> t option
  val name : t -> string
end

(** Per-queue statistic slots (Table 2 "Per-Queue": bytes enqueued,
    bytes dropped, plus occupancy), contextual at [0x140]. *)
module Queue_stat : sig
  type t =
    | Q_bytes          (** current occupancy, bytes *)
    | Q_pkts
    | Q_enqueued       (** cumulative bytes accepted *)
    | Q_dropped        (** cumulative bytes tail-dropped *)
    | Q_limit
    | Q_id             (** which queue of the port this packet uses *)

  val index : t -> int
  val of_index : int -> t option
  val name : t -> string
end

(** Per-packet metadata slots at [0x800]. *)
module Pkt_meta : sig
  type t =
    | Input_port
    | Output_port
    | Matched_entry
    | Matched_version
    | Hop_count
    | Table_hit      (** 0 = miss/flood, 1 = L2, 2 = L3, 3 = TCAM *)
    | Arrival_ns

  val index : t -> int
  val of_index : int -> t option
  val name : t -> string
end

(** A decoded address. *)
type region =
  | Switch of Switch_stat.t
  | Link of Port_stat.t                 (** contextual: this packet's out port *)
  | Queue of Queue_stat.t               (** contextual: this packet's queue *)
  | Link_sram of int                    (** contextual SRAM slot *)
  | Port of int * Port_stat.t           (** absolute port stat *)
  | Meta of Pkt_meta.t
  | Sram of int                         (** absolute SRAM word index *)

val classify : int -> (region, string) result
(** Decodes a word address; [Error] for holes in the map. *)

val encode : region -> int
(** Inverse of {!classify}. *)

val sram_words : int
(** Number of absolute SRAM words (address range [0x880-0xFFF]). *)

val link_sram_slots : int
(** Number of contextual per-link SRAM slots (128). *)

val max_ports : int
(** Ports addressable by the absolute per-port arrays (96). *)

val writable : region -> bool
(** TPPs may write only SRAM (absolute or contextual). Statistics and
    packet metadata are read-only, and forwarding tables are not mapped
    at all — the isolation argument of paper §4. *)

val of_name : ?defines:(string * int) list -> string -> (int, string) result
(** Resolves an assembler mnemonic like ["Queue:QueueSize"],
    ["Switch:SwitchID"], ["PacketMetadata:InputPort"], ["Port:3:TxBytes"],
    ["Sram:17"] or ["LinkSram:0"] to its address. [defines] adds
    task-specific names (e.g. ["Link:RCP-RateRegister"] for a contextual
    SRAM slot the control plane allocated to RCP). *)

val to_name : int -> string
(** Symbolic rendering for the disassembler; falls back to hex. *)

val all_named : unit -> (string * int) list
(** Every built-in mnemonic and its address — the Table 2 dump. *)
