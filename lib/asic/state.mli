(** Mutable per-switch dataplane state: the registers, counters, queues
    and SRAM that the memory map ({!Tpp_isa.Vaddr}) exposes.

    This module holds only state; the forwarding pipeline lives in
    {!Switch} and address translation in {!Mmu}. *)

module Frame = Tpp_isa.Frame

(** One egress queue of a port: the Table 2 "Per-Queue" namespace. *)
module Subqueue : sig
  type t = {
    mutable q_bytes : int;     (** current occupancy *)
    mutable q_enqueued : int;  (** cumulative bytes accepted *)
    mutable q_dropped : int;   (** cumulative bytes tail-dropped *)
    mutable q_limit : int;
    frames : Frame.t Tpp_util.Ring.t;
        (** allocation-free FIFO (preallocated ring) *)
  }

  val packets : t -> int
end

(** One egress port: statistics registers and its egress queues.
    Higher queue index = higher scheduling priority (strict). *)
module Port : sig
  type t = {
    mutable rx_bytes : int;
    mutable rx_pkts : int;
    mutable tx_bytes : int;
    mutable tx_pkts : int;
    mutable drops : int;
    mutable trims : int;
        (** frames whose payload was cut to header-only and enqueued in
            the top-priority queue instead of tail-dropped (NDP) *)
    mutable capacity_bps : int;
    mutable window_rx_bytes : int;
        (** bytes offered to this egress link since the last utilisation
            update (drops included — RCP's y(t) measures offered load) *)
    mutable offered_bytes : int;
        (** cumulative offered bytes, never reset; in-network RCP
            routers diff it across control periods *)
    mutable util_ppm : int;         (** last window's utilisation, ppm *)
    mutable queue_bytes : int;      (** aggregate over all queues *)
    mutable queue_limit : int;      (** per-queue tail-drop threshold *)
    mutable ecn_threshold : int option;
        (** when set, IPv4 frames enqueued while their queue's occupancy
            >= threshold get the CE mark (fixed-function ECN, paper §4) *)
    mutable queue_bytes_avg : float; (** EWMA of aggregate occupancy *)
    mutable queues : Subqueue.t array;
  }

  val total_packets : t -> int
end

type t = {
  switch_id : int;
  num_ports : int;
  queue_limit : int;
  mutable version : int;
  mutable packets_seen : int;
  mutable bytes_seen : int;
  mutable drops : int;
  mutable trims : int;
  mutable tpp_execs : int;
  mutable tpp_faults : int;
  mutable tpp_cycles : int;  (** total TCPU cycles spent (bench E7) *)
  mutable tpp_compile_hits : int;
      (** TPP executions that found the program already compiled.
          Observability only — hit/miss split varies with shard layout,
          so these two stay out of determinism fingerprints. *)
  mutable tpp_compile_misses : int;
  mutable sram : int array;
      (** [[||]] until the first SRAM write; an empty array reads as
          all-zero. Use {!sram_array} (or {!sram_set}) to materialize. *)
  mutable ports : Port.t array;
      (** [[||]] until the first per-port register access; an empty
          array means every port is still in its initial state. *)
  mutable capacities : int array;
      (** per-port link capacity in bps; the one per-port datum written
          during topology wiring, kept flat so [Net.connect] never
          materializes [ports] *)
}

val create : switch_id:int -> num_ports:int -> ?queue_limit:int -> unit -> t
(** [queue_limit] defaults to 150 KB per port (100 full-size frames). *)

val port : t -> int -> Port.t
(** Materializes the port array on first use.
    Raises [Invalid_argument] for an out-of-range port. *)

val ports_materialized : t -> bool
(** Whether any per-port register has been touched; fingerprinting code
    treats an unmaterialized array as [num_ports] all-zero ports. *)

val sram_array : t -> int array
(** The backing SRAM, materialized on first use (always
    [Tpp_isa.Vaddr.sram_words] long). *)

val set_capacity : t -> port:int -> bps:int -> unit
(** Records a port's link capacity without materializing [ports]. *)

val capacity : t -> port:int -> int

val port_stat : t -> port:int -> Tpp_isa.Vaddr.Port_stat.t -> int
(** Current value of one per-port statistic register. *)

val queue_stat : t -> port:int -> queue:int -> Tpp_isa.Vaddr.Queue_stat.t -> int option
(** One per-queue register; [None] when the queue doesn't exist. *)

val configure_queues : t -> port:int -> count:int -> unit
(** Replaces the port's queues with [count] fresh empty ones (each at
    the port's per-queue limit). Ports start with one queue. *)

val force_queue_depth : t -> port:int -> bytes:int -> unit
(** Testing/mock hook: makes queue 0 (and the port aggregate) report a
    standing occupancy without enqueueing frames. *)

val switch_stat : t -> now:int -> Tpp_isa.Vaddr.Switch_stat.t -> int

val sram_get : t -> int -> int option
val sram_set : t -> int -> int -> bool
(** [false] when the index is out of range. Values masked to 32 bits. *)

val link_sram_index : t -> slot:int -> port:int -> int option
(** SRAM word backing contextual slot [slot] of [port]:
    [slot * num_ports + port], when in range. *)

val update_utilization : t -> window_ns:int -> unit
(** Recomputes every port's [util_ppm] from the bytes received in the
    closing window and the port capacity, resets the window counters,
    and folds current queue occupancy into the queue-average EWMAs.
    Called periodically by the simulation driver. *)
