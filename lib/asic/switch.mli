(** The switch dataplane pipeline (paper Figure 3):

    {v
    ingress -> header parse -> L2/L3/TCAM lookup -> TCPU -> egress queue
    v}

    A switch is passive state plus per-packet logic; the discrete-event
    simulator drives it (delivers frames to {!handle_ingress}, drains
    queues with {!dequeue} at link rate, and calls
    {!State.update_utilization} periodically). *)

module Frame = Tpp_isa.Frame
module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4

type t

type verdict =
  | Queued of int list
      (** Ports the frame (or its flood copies) was enqueued on. *)
  | Dropped of string

val create :
  id:int -> num_ports:int -> ?queue_limit:int -> ?tcpu_enabled:bool -> unit -> t
(** [tcpu_enabled] defaults to [true]; a disabled TCPU forwards TPPs
    without executing them (a legacy, non-TPP switch). *)

val id : t -> int
val num_ports : t -> int
val state : t -> State.t
val alloc : t -> Alloc.t
(** The control-plane SRAM allocator of this switch. *)

val set_port_capacity : t -> port:int -> bps:int -> unit
val set_queue_limit : t -> port:int -> bytes:int -> unit

val configure_queues : t -> port:int -> count:int -> unit
(** Gives the egress port [count] queues (Fig. 3's "egress queues and
    scheduling"): strict priority, higher index first. Default 1. *)

val num_queues : t -> port:int -> int

val set_queue_classifier : t -> (Frame.t -> int) -> unit
(** Maps a frame to a 0..63 class (default: its DSCP); the pipeline
    scales the class to the out port's queue count. *)

(** Egress scheduling discipline. *)
type scheduler =
  | Strict          (** higher queue index always first (default) *)
  | Wrr of int array
      (** packet-based weighted round-robin; [weights.(q)] packets from
          queue [q] per cycle (0 = skip). Length must match the port's
          queue count when it dequeues. *)

val set_scheduler : t -> port:int -> scheduler -> unit

val set_ecn_threshold : t -> port:int -> int option -> unit
(** Fixed-function ECN marking for this egress queue: IPv4 frames
    enqueued while occupancy is at or above the threshold get the CE
    codepoint (the paper's §4 example of a baked-in point solution that
    TPPs generalise). [None] disables marking. *)

val set_ecmp_salt : t -> int -> unit
(** Salt XORed into the flow hash before every {!Tables.Multipath} pick.
    The default 0 keys all switches identically — textbook ECMP hash
    polarisation: once a layer has sorted flows by [hash mod n], the
    next layer's identical hash sends each group out a single uplink,
    oversubscribing it while its siblings idle. Topology builders give
    each switch a salt mixed from its node id; since replicas (the /32
    differential oracle, per-shard copies) assign identical node ids,
    salted paths stay bit-identical across them. *)

val ecmp_salt : t -> int

val set_trim_keep : t -> keep:int -> unit
(** NDP-style packet trimming: when [keep >= 0], a UDP data frame that
    would tail-drop on a non-top queue is instead cut to [keep] payload
    bytes in place, re-marked DSCP 63 and enqueued in the port's
    top-priority queue (where only a full top queue can still drop it).
    A negative [keep] disables trimming (the default). Ports need at
    least two queues ({!configure_queues}) for trimming to engage. *)

val trim_keep : t -> int

val set_subqueue_limit : t -> port:int -> queue:int -> bytes:int -> unit
(** Overrides one subqueue's tail-drop limit — NDP gives the trimmed-
    header/control queue a small dedicated budget so control traffic
    cannot build a deep standing queue. Raises [Invalid_argument] for a
    queue the port does not have. *)

val trims : t -> int
(** Frames trimmed (not dropped) by this switch so far. *)

val port_trims : t -> port:int -> int

val set_tcpu_enabled : t -> bool -> unit

val set_strip_tpp : t -> port:int -> bool -> unit
(** Edge security (paper §4): when set, TPP sections are stripped from
    frames arriving on [port] before any processing. *)

val install_l2 : t -> Mac.t -> port:int -> entry_id:int -> version:int -> unit
val install_route :
  t -> Ipv4.Prefix.t -> port:int -> entry_id:int -> version:int -> unit

val install_multipath_route :
  t -> Ipv4.Prefix.t -> ports:int list -> entry_id:int -> version:int -> unit
(** Equal-cost multipath: the pipeline spreads flows across [ports] by
    5-tuple hash ({!Tpp_isa.Frame.flow_hash}), so one flow stays on one
    path. A single port degenerates to {!install_route}. *)

val install_connected_route :
  t -> Ipv4.Prefix.t -> connected:Tables.connected -> entry_id:int -> version:int -> unit
(** Installs a {!Tables.Connected} block route under a covering prefix:
    the destination address itself selects the egress port. One entry
    stands in for a consecutive block of per-host or per-subnet routes
    (aggregated FIBs, DESIGN §15). *)

val l3_size : t -> int
(** Number of installed L3 entries (a {!Tables.Connected} block counts
    as one) — the FIB-size metric of the scale bench. *)

val install_tcam : t -> Tables.Tcam.rule -> Tables.entry -> unit
val remove_tcam : t -> entry_id:int -> unit
val set_version : t -> int -> unit
(** Control-plane table version, visible at [Switch:Version]. *)

val route_action : t -> Ipv4.Addr.t -> Tables.action option
(** Control-plane read of the L3 action this switch holds for an
    address (no TCAM/L2 consultation); lets path predictors see whether
    a destination is routed with ECMP. *)

val handle_ingress : t -> now:int -> in_port:int -> Frame.t -> verdict
(** Runs the whole pipeline on one arriving frame. The TCPU executes the
    frame's TPP (if any) after the forwarding decision and before
    enqueueing, so [Link:QueueSize] reads the queue the packet is about
    to join — exactly the Figure 1 semantics. *)

val dequeue : t -> port:int -> Frame.t option
(** Strict-priority scheduling: removes the head-of-line frame of the
    highest-priority non-empty queue of [port] and updates transmit
    counters; [None] when all queues are empty. *)

val dequeue_or : t -> port:int -> default:Frame.t -> Frame.t
(** [dequeue] without the option box: returns [default] (compared
    physically by the caller) when all queues of [port] are empty. The
    simulator's per-transmission path uses this so a steady-state
    dequeue allocates nothing. *)

val queue_bytes : t -> port:int -> int
val queue_packets : t -> port:int -> int

val last_tcpu_result : t -> Tcpu.result option
(** Result of the most recent TPP execution on this switch, for tests
    and cycle accounting. *)

val set_tap :
  t -> (now:int -> in_port:int -> out_port:int -> Frame.t -> unit) option -> unit
(** Mirror point after the forwarding decision, used by the
    postcard-based debugger baseline (ndb, paper §2.3) to emit truncated
    per-hop packet copies. *)

val set_bin_tap :
  t ->
  (now:int -> in_port:int -> out_port:int -> queue_bytes:int ->
   version:int -> frame_id:int -> flow_hash:int -> wire_bytes:int ->
   entry:int -> unit)
  option ->
  unit
(** The same mirror point, scalar edition: fires once per frame that
    reaches an egress queue (before the tail-drop check, like
    {!set_tap}) with every field of a binary telemetry postcard as an
    immediate int — no [Frame.t] escapes, so the streaming-telemetry
    sink can encode hop cards without allocating. [queue_bytes] is the
    depth of the queue the frame is joining, before the frame itself
    is counted. Independent of {!set_tap}; both may be installed. *)
