(** TCPU program compilation (the "Packet Transactions" move): lower an
    instruction array once into a flat array of monomorphic micro-op
    closures, then run those for every packet carrying the same program.

    The paper's workloads stamp one tiny program into millions of
    packets; interpreting the AST per hop re-pays operand decoding,
    region dispatch and a [Result] allocation per instruction every
    time. Compilation pays those costs once per distinct program:

    - addressing modes and the switch-address region dispatch
      ({!Tpp_isa.Vaddr.classify}) are resolved at compile time;
    - per-program constants (static offsets, alignment of literal
      packet offsets, binop selection) are hoisted into the closures;
    - faults are signalled by sentinel ints in a mutable execution
      context, so the hot loop allocates nothing.

    Compiled programs are architecturally indistinguishable from the
    interpreter ({!Tcpu} keeps it as the reference backend): same
    register writes, same fault kinds at the same instruction, same
    CEXEC/CSTORE and stack semantics. A QCheck differential test holds
    the two backends equal on random programs and states.

    Everything that varies per execution — switch state, packet
    metadata, packet memory and its length, the hop base — flows
    through the execution context, so TPPs that share instruction bytes
    share compiled code even when their memory layouts differ. *)

(** Execution faults (also re-exported as {!Tcpu.fault}). *)
type fault =
  | Mmu_fault of Mmu.fault
  | Packet_oob of int        (** packet-memory access out of bounds *)
  | Misaligned of int
  | Immediate_write          (** an immediate used as a destination *)
  | Stack_overflow
  | Stack_underflow
  | Bad_operand of string    (** e.g. a CSTORE/CEXEC pool operand that is
                                 not packet memory *)

val fault_message : fault -> string

type t
(** A compiled program: one closure per instruction. *)

val length : t -> int
(** Number of micro-ops (= source instructions). *)

val compile : Tpp_isa.Instr.t array -> t
(** Lowers a program, bypassing the cache (tests use this directly). *)

val run :
  t ->
  State.t ->
  now:int ->
  tpp:Tpp_isa.Tpp.t ->
  meta:Tpp_isa.Meta.t ->
  int * bool * fault option
(** [run c state ~now ~tpp ~meta] executes the compiled program against
    [tpp]'s packet memory and the switch state, returning
    [(executed, stopped_by_cexec, fault)] with the interpreter's exact
    semantics. Post-processing (hop bump, fault flag, exec/cycle
    accounting) is the caller's job — {!Tcpu.execute} does it for both
    backends. *)

type Tpp_isa.Tpp.compiled += Compiled of t
(** The constructor {!Tcpu} stores in a TPP's shared compiled-handle
    cell, so every copy of a template hits compiled code directly. *)

val lookup : Tpp_isa.Tpp.t -> t
(** The process-wide cache: returns the compiled form of the TPP's
    program, compiling it if this is the first time any domain has seen
    these instruction bytes ({!Tpp_isa.Tpp.program_key}). Lock-free and
    domain-safe: the cache is an immutable map behind an [Atomic.t]
    with CAS insertion, so concurrent shards may race to compile but a
    key permanently maps to one compiled program. *)

type cache_stats = { programs : int; hits : int; misses : int }
(** Process-wide totals: distinct programs compiled, and {!lookup}
    outcomes. (Per-switch counters live in {!State}; both are
    observability only — the hit/miss split depends on shard layout.) *)

val cache_stats : unit -> cache_stats

val clear_cache : unit -> unit
(** Empties the cache and zeroes its counters (test/bench isolation).
    Already-linked TPP handles keep working; new lookups recompile. *)
