module Frame = Tpp_isa.Frame
module Tpp = Tpp_isa.Tpp
module Meta = Tpp_isa.Meta
module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4
module Ethernet = Tpp_packet.Ethernet
module Ring = Tpp_util.Ring

type scheduler = Strict | Wrr of int array

(* Round-robin progress of a WRR port. *)
type sched_state = {
  mutable discipline : scheduler;
  mutable rr_queue : int;       (* queue currently being served *)
  mutable rr_remaining : int;   (* packets it may still send this turn *)
}

type verdict = Queued of int list | Dropped of string

type t = {
  switch_state : State.t;
  allocator : Alloc.t;
  l2 : Tables.L2.t;
  l3 : Tables.L3.t;
  tcam : Tables.Tcam.t;
  mutable sched : sched_state array;
      (* [ [||] ] until the first dequeue or [set_scheduler]: idle
         switches in a million-host fabric never pay for per-port
         scheduler records. *)
  mutable strip_tpp : bool array;
      (* [ [||] ] until some port enables stripping; empty = no port
         strips, checked with one length test on the ingress path. *)
  mutable queued_one : verdict array;
      (* [Queued [ p ]] per port, preallocated (lazily, on the first
         routed frame): the unicast fast path returns these instead of
         consing a fresh list each hop. *)
  mutable tcpu_enabled : bool;
  mutable last_tcpu : Tcpu.result option;
  mutable tap : (now:int -> in_port:int -> out_port:int -> Frame.t -> unit) option;
  mutable bin_tap :
    (now:int -> in_port:int -> out_port:int -> queue_bytes:int ->
     version:int -> frame_id:int -> flow_hash:int -> wire_bytes:int ->
     entry:int -> unit)
    option;
  mutable classify_queue : Frame.t -> int;
  mutable trim_keep : int;
      (* NDP packet trimming: when >= 0 and a data queue overflows, the
         frame's UDP payload is cut to this many bytes and the header
         enqueued in the port's top-priority queue instead of dropped.
         -1 = trimming disabled (the default). *)
  mutable ecmp_salt : int;
      (* XORed into the flow hash before [Tables.select_path]. 0 (the
         default) keys every switch identically, which polarises ECMP:
         the flows a switch received *because* they hashed to it then
         all agree on the next hash too, funnelling onto one uplink. A
         distinct per-switch salt decorrelates the per-hop picks. *)
}

(* Default classifier: DSCP selects the queue, scaled to however many
   queues the port has (higher DSCP -> higher-priority queue). *)
let dscp_classifier (frame : Frame.t) =
  if Frame.has_ip frame then Frame.ip_dscp frame else 0

let create ~id ~num_ports ?queue_limit ?(tcpu_enabled = true) () =
  let switch_state = State.create ~switch_id:id ~num_ports ?queue_limit () in
  {
    switch_state;
    allocator = Alloc.for_state switch_state;
    l2 = Tables.L2.create ();
    l3 = Tables.L3.create ();
    tcam = Tables.Tcam.create ();
    sched = [||];
    strip_tpp = [||];
    queued_one = [||];
    tcpu_enabled;
    last_tcpu = None;
    tap = None;
    bin_tap = None;
    classify_queue = dscp_classifier;
    trim_keep = -1;
    ecmp_salt = 0;
  }

let set_tap t tap = t.tap <- tap
let set_bin_tap t tap = t.bin_tap <- tap

let set_queue_classifier t f = t.classify_queue <- f

let configure_queues t ~port ~count = State.configure_queues t.switch_state ~port ~count

let num_queues t ~port = Array.length (State.port t.switch_state port).State.Port.queues

let id t = t.switch_state.State.switch_id
let num_ports t = t.switch_state.State.num_ports
let state t = t.switch_state
let alloc t = t.allocator

let[@inline never] materialize_sched t =
  let s =
    Array.init (num_ports t) (fun _ ->
        { discipline = Strict; rr_queue = 0; rr_remaining = 0 })
  in
  t.sched <- s;
  s

let[@inline] sched_array t =
  if Array.length t.sched = 0 then materialize_sched t else t.sched

let[@inline never] materialize_queued_one t =
  let q = Array.init (num_ports t) (fun p -> Queued [ p ]) in
  t.queued_one <- q;
  q

(* Topology wiring goes through the capacities side array so connecting
   a link never materializes the per-port register records. *)
let set_port_capacity t ~port ~bps = State.set_capacity t.switch_state ~port ~bps
let set_queue_limit t ~port ~bytes =
  let p = State.port t.switch_state port in
  p.State.Port.queue_limit <- bytes;
  Array.iter (fun q -> q.State.Subqueue.q_limit <- bytes) p.State.Port.queues

let set_ecn_threshold t ~port threshold =
  (State.port t.switch_state port).State.Port.ecn_threshold <- threshold
let set_tcpu_enabled t enabled = t.tcpu_enabled <- enabled

let set_trim_keep t ~keep = t.trim_keep <- (if keep < 0 then -1 else keep)
let set_ecmp_salt t salt = t.ecmp_salt <- salt
let ecmp_salt t = t.ecmp_salt
let trim_keep t = t.trim_keep

let set_subqueue_limit t ~port ~queue ~bytes =
  let p = State.port t.switch_state port in
  if queue < 0 || queue >= Array.length p.State.Port.queues then
    invalid_arg "Switch.set_subqueue_limit: queue";
  p.State.Port.queues.(queue).State.Subqueue.q_limit <- bytes

let trims t = t.switch_state.State.trims
let port_trims t ~port = (State.port t.switch_state port).State.Port.trims

let set_strip_tpp t ~port strip =
  if port < 0 || port >= num_ports t then invalid_arg "Switch.set_strip_tpp: port";
  if Array.length t.strip_tpp = 0 then
    t.strip_tpp <- Array.make (num_ports t) false;
  t.strip_tpp.(port) <- strip

let install_l2 t mac ~port ~entry_id ~version =
  Tables.L2.install t.l2 mac
    { Tables.action = Tables.Forward port; entry_id; version }

let install_route t prefix ~port ~entry_id ~version =
  Tables.L3.install t.l3 prefix
    { Tables.action = Tables.Forward port; entry_id; version }

let install_multipath_route t prefix ~ports ~entry_id ~version =
  match ports with
  | [] -> invalid_arg "Switch.install_multipath_route: no ports"
  | [ port ] -> install_route t prefix ~port ~entry_id ~version
  | ports ->
    Tables.L3.install t.l3 prefix
      { Tables.action = Tables.Multipath (Array.of_list ports); entry_id; version }

let install_connected_route t prefix ~connected ~entry_id ~version =
  Tables.L3.install t.l3 prefix
    { Tables.action = Tables.Connected connected; entry_id; version }

let l3_size t = Tables.L3.size t.l3

let install_tcam t rule entry = Tables.Tcam.install t.tcam rule entry

let remove_tcam t ~entry_id = Tables.Tcam.remove_id t.tcam entry_id

let set_version t v = t.switch_state.State.version <- v

let route_action t addr =
  Option.map (fun e -> e.Tables.action) (Tables.L3.lookup t.l3 addr)

(* TCAM stage of the forwarding lookup (the flexible match stage of
   Figure 3). Split out because the common case — no rules installed —
   must not box the optional match fields. *)
let tcam_lookup t ~in_port (frame : Frame.t) =
  if Tables.Tcam.is_empty t.tcam then None
  else begin
    let has_ip = Frame.has_ip frame in
    let src_ip = if has_ip then Some (Frame.ip_src frame) else None in
    let dst_ip = if has_ip then Some (Frame.ip_dst frame) else None in
    let proto = if has_ip then Some (Frame.ip_proto frame) else None in
    let dst_port =
      if Frame.has_udp frame then Some (Frame.udp_dst_port frame) else None
    in
    Tables.Tcam.lookup t.tcam ~src_ip ~dst_ip ~proto ~in_port ~dst_port
  end

let fill_meta t ~now ~in_port ~out_port ~entry_id ~version ~table_hit (frame : Frame.t) =
  let meta = frame.Frame.meta in
  Meta.reset meta;
  meta.Meta.in_port <- in_port;
  meta.Meta.out_port <- out_port;
  meta.Meta.matched_entry <- entry_id;
  meta.Meta.matched_version <- version;
  meta.Meta.table_hit <- table_hit;
  meta.Meta.arrival_ns <- now;
  meta.Meta.hop_count <-
    (match frame.Frame.tpp with Some tpp -> tpp.Tpp.hop | None -> 0);
  ignore t

(* TCPU + enqueue on one output port. Returns true when queued. *)
let process_and_enqueue t ~now (frame : Frame.t) ~out_port =
  let st = t.switch_state in
  let port = State.port st out_port in
  (* Queue selection happens before the TCPU so [Queue:*] reads resolve
     against the queue the packet will actually join. Higher queue index
     = higher priority; the classifier's value is scaled to the port. *)
  let nq = Array.length port.State.Port.queues in
  let queue_id = max 0 (min (nq - 1) (t.classify_queue frame * nq / 64)) in
  frame.Frame.meta.Meta.queue_id <- queue_id;
  let sub = port.State.Port.queues.(queue_id) in
  (if t.tcpu_enabled then
     match Tcpu.execute st ~now ~frame with
     | Some result -> t.last_tcpu <- Some result
     | None -> ());
  let wire = Frame.wire_size frame in
  (* Offered load on this link, drops included: what RCP's y(t) measures. *)
  port.State.Port.window_rx_bytes <- port.State.Port.window_rx_bytes + wire;
  port.State.Port.offered_bytes <- port.State.Port.offered_bytes + wire;
  (match t.tap with
  | Some tap ->
    tap ~now ~in_port:frame.Frame.meta.Meta.in_port ~out_port frame
  | None -> ());
  (* The scalar twin of [tap]: every argument is an immediate int, so
     a telemetry sink can encode a binary postcard with no boxing on
     the per-hop fast path. [queue_bytes] is the occupancy of the
     queue the frame is about to join — the Figure 1 semantics. *)
  (match t.bin_tap with
  | Some tap ->
    let meta = frame.Frame.meta in
    tap ~now ~in_port:meta.Meta.in_port ~out_port
      ~queue_bytes:sub.State.Subqueue.q_bytes
      ~version:meta.Meta.matched_version ~frame_id:frame.Frame.id
      ~flow_hash:(Frame.flow_hash frame) ~wire_bytes:wire
      ~entry:meta.Meta.matched_entry
  | None -> ());
  if sub.State.Subqueue.q_bytes + wire > sub.State.Subqueue.q_limit then begin
    (* NDP trim-instead-of-drop: a data frame that would tail-drop is
       cut to [trim_keep] payload bytes in place (one length patch +
       incremental checksum, no re-serialize, no allocation) and joins
       the top-priority queue, re-marked DSCP 63 so downstream
       classifiers keep it there. Control frames already in the top
       queue, and frames with nothing left to cut, tail-drop as
       before. *)
    let top_qi = nq - 1 in
    if
      t.trim_keep >= 0 && queue_id < top_qi && Frame.has_udp frame
      && Frame.payload_len frame > t.trim_keep
    then begin
      Frame.trim frame ~keep:t.trim_keep;
      Frame.set_ip_dscp frame 63;
      frame.Frame.meta.Meta.queue_id <- top_qi;
      let top = port.State.Port.queues.(top_qi) in
      let twire = Frame.wire_size frame in
      if top.State.Subqueue.q_bytes + twire > top.State.Subqueue.q_limit
      then begin
        top.State.Subqueue.q_dropped <- top.State.Subqueue.q_dropped + twire;
        port.State.Port.drops <- port.State.Port.drops + 1;
        st.State.drops <- st.State.drops + 1;
        false
      end
      else begin
        port.State.Port.trims <- port.State.Port.trims + 1;
        st.State.trims <- st.State.trims + 1;
        Ring.push top.State.Subqueue.frames frame;
        top.State.Subqueue.q_bytes <- top.State.Subqueue.q_bytes + twire;
        top.State.Subqueue.q_enqueued <- top.State.Subqueue.q_enqueued + twire;
        port.State.Port.queue_bytes <- port.State.Port.queue_bytes + twire;
        true
      end
    end
    else begin
      sub.State.Subqueue.q_dropped <- sub.State.Subqueue.q_dropped + wire;
      port.State.Port.drops <- port.State.Port.drops + 1;
      st.State.drops <- st.State.drops + 1;
      false
    end
  end
  else begin
    (* Fixed-function ECN (paper §4): mark CE when the queue the packet
       joins already sits above the threshold. In-place patch; the
       incremental checksum update keeps the IPv4 header valid. *)
    (match port.State.Port.ecn_threshold with
    | Some threshold
      when Frame.has_ip frame && sub.State.Subqueue.q_bytes >= threshold ->
      Frame.set_ip_ecn frame Ipv4.Header.ecn_ce
    | _ -> ());
    Ring.push sub.State.Subqueue.frames frame;
    sub.State.Subqueue.q_bytes <- sub.State.Subqueue.q_bytes + wire;
    sub.State.Subqueue.q_enqueued <- sub.State.Subqueue.q_enqueued + wire;
    port.State.Port.queue_bytes <- port.State.Port.queue_bytes + wire;
    true
  end

(* Forward along a table hit. A plain function (not a closure inside
   [handle_ingress]) so the per-hop fast path allocates only its
   verdict: the hit entry and the table stage arrive as separate
   arguments, never packed into a tuple. *)
let route t ~now ~in_port frame ~out_port ~entry_id ~version ~table_hit =
  let st = t.switch_state in
  if out_port < 0 || out_port >= num_ports t then Dropped "route to invalid port"
  else begin
    (* Routed (non-L2) hops decrement the TTL; expiry protects the
       network from forwarding loops. The decrement patches the
       wire image directly (no header record is rebuilt). *)
    let expired =
      if table_hit >= 2 && Frame.has_ip frame then begin
        let ttl = Frame.ip_ttl frame in
        if ttl <= 1 then true
        else begin
          Frame.set_ip_ttl frame (ttl - 1);
          false
        end
      end
      else false
    in
    if expired then begin
      st.State.drops <- st.State.drops + 1;
      Dropped "TTL expired"
    end
    else begin
      fill_meta t ~now ~in_port ~out_port ~entry_id ~version ~table_hit frame;
      if process_and_enqueue t ~now frame ~out_port then begin
        let queued_one =
          if Array.length t.queued_one = 0 then materialize_queued_one t
          else t.queued_one
        in
        Array.unsafe_get queued_one out_port
      end
      else Dropped "queue full"
    end
  end

let route_entry t ~now ~in_port frame (e : Tables.entry) ~table_hit =
  match e.Tables.action with
  | Tables.Drop -> Dropped "table drop rule"
  | Tables.Forward p ->
    route t ~now ~in_port frame ~out_port:p ~entry_id:e.Tables.entry_id
      ~version:e.Tables.version ~table_hit
  | Tables.Multipath ports ->
    route t ~now ~in_port frame
      ~out_port:
        (Tables.select_path ports ~key:(Frame.flow_hash frame lxor t.ecmp_salt))
      ~entry_id:e.Tables.entry_id ~version:e.Tables.version ~table_hit
  | Tables.Connected c ->
    if not (Frame.has_ip frame) then Dropped "connected route on non-IP frame"
    else
      let p = Tables.connected_port_i c (Frame.ip_dst frame) in
      if p < 0 then Dropped "no connected host"
      else
        route t ~now ~in_port frame ~out_port:p ~entry_id:e.Tables.entry_id
          ~version:e.Tables.version ~table_hit

let handle_ingress t ~now ~in_port frame =
  let st = t.switch_state in
  if in_port < 0 || in_port >= num_ports t then Dropped "invalid ingress port"
  else begin
    let frame =
      if
        Array.length t.strip_tpp > 0
        && t.strip_tpp.(in_port)
        && Option.is_some frame.Frame.tpp
      then Frame.with_tpp frame None
      else frame
    in
    let wire = Frame.wire_size frame in
    let p_in = State.port st in_port in
    p_in.State.Port.rx_bytes <- p_in.State.Port.rx_bytes + wire;
    p_in.State.Port.rx_pkts <- p_in.State.Port.rx_pkts + 1;
    st.State.packets_seen <- st.State.packets_seen + 1;
    st.State.bytes_seen <- st.State.bytes_seen + wire;
    (* Lookup priority: TCAM overrides, then L3 for IP traffic, then
       exact L2, else flood. *)
    match tcam_lookup t ~in_port frame with
    | Some e -> route_entry t ~now ~in_port frame e ~table_hit:3
    | None -> (
      match
        if Frame.has_ip frame then Tables.L3.lookup t.l3 (Frame.ip_dst frame)
        else None
      with
      | Some e -> route_entry t ~now ~in_port frame e ~table_hit:2
      | None -> (
        match Tables.L2.lookup t.l2 (Frame.eth_dst frame) with
        | Some e -> route_entry t ~now ~in_port frame e ~table_hit:1
        | None ->
          (* Unknown destination: flood out of every other port. *)
          let queued = ref [] in
          for out_port = 0 to num_ports t - 1 do
            if out_port <> in_port then begin
              let copy = if !queued = [] then frame else Frame.clone frame in
              fill_meta t ~now ~in_port ~out_port ~entry_id:0 ~version:0
                ~table_hit:0 copy;
              if process_and_enqueue t ~now copy ~out_port then
                queued := out_port :: !queued
            end
          done;
          if !queued = [] then Dropped "flood found no open port"
          else Queued (List.rev !queued)))
  end

let set_scheduler t ~port discipline =
  (match discipline with
  | Wrr weights ->
    if Array.length weights = 0 || Array.for_all (fun w -> w <= 0) weights then
      invalid_arg "Switch.set_scheduler: WRR needs a positive weight"
  | Strict -> ());
  let s = (sched_array t).(port) in
  s.discipline <- discipline;
  s.rr_queue <- 0;
  s.rr_remaining <- 0

(* Sentinel threaded through the unboxed dequeue chain: "this port has
   nothing to send", compared physically, never transmitted. Callers of
   {!dequeue_or} substitute their own default at the boundary. *)
let nothing = Frame.placeholder ()

let take_from port qi =
  let queues = port.State.Port.queues in
  let frame = Ring.take_or queues.(qi).State.Subqueue.frames ~default:nothing in
  if frame != nothing then begin
    let wire = Frame.wire_size frame in
    queues.(qi).State.Subqueue.q_bytes <- queues.(qi).State.Subqueue.q_bytes - wire;
    port.State.Port.queue_bytes <- port.State.Port.queue_bytes - wire;
    port.State.Port.tx_bytes <- port.State.Port.tx_bytes + wire;
    port.State.Port.tx_pkts <- port.State.Port.tx_pkts + 1
  end;
  frame

(* Strict: serve the highest-index non-empty queue. WRR: keep serving
   the current queue until its per-turn packet budget (its weight) runs
   out or it empties, then move to the next queue with weight.

   Both loops are top-level recursive functions, not closures inside
   [dequeue]: a closure would be allocated on every call, and [dequeue]
   runs once per transmitted frame on the dataplane hot path. For the
   same reason the chain carries the bare sentinel, not an option. *)
let rec strict_scan port qi =
  if qi < 0 then nothing
  else
    let f = take_from port qi in
    if f != nothing then f else strict_scan port (qi - 1)

let rec wrr_serve s port weights n visited =
  if visited > n then nothing
  else if s.rr_remaining > 0 then begin
    let f = take_from port s.rr_queue in
    if f != nothing then begin
      s.rr_remaining <- s.rr_remaining - 1;
      f
    end
    else begin
      s.rr_remaining <- 0;
      wrr_serve s port weights n visited
    end
  end
  else begin
    s.rr_queue <- (s.rr_queue + 1) mod n;
    s.rr_remaining <- weights.(s.rr_queue);
    wrr_serve s port weights n (visited + 1)
  end

let dequeue_core t i =
  let port = State.port t.switch_state i in
  let queues = port.State.Port.queues in
  let n = Array.length queues in
  let sched = sched_array t in
  match sched.(i).discipline with
  | Strict -> strict_scan port (n - 1)
  | Wrr weights when Array.length weights <> n ->
    invalid_arg "Switch.dequeue: WRR weights do not match the queue count"
  | Wrr weights -> wrr_serve sched.(i) port weights n 0

let dequeue_or t ~port:i ~default =
  let f = dequeue_core t i in
  if f == nothing then default else f

let dequeue t ~port:i =
  let f = dequeue_core t i in
  if f == nothing then None else Some f

let queue_bytes t ~port:i = (State.port t.switch_state i).State.Port.queue_bytes
let queue_packets t ~port:i = State.Port.total_packets (State.port t.switch_state i)

let last_tcpu_result t = t.last_tcpu
