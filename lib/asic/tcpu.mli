(** The tiny CPU (paper §3.3): executes a packet's TPP against the
    switch's memory-mapped state, in the dataplane, between the
    forwarding lookup and the egress queue.

    The execution model mirrors the paper's 5-stage RISC pipeline:
    instructions complete at one per clock cycle after a 4-cycle fill,
    so an n-instruction program costs [4 + n] cycles — the number
    {!result.cycles} reports and experiment E7 compares against the
    300-cycle cut-through budget of a 1 GHz ASIC.

    Faults (bad address, write to read-only state, packet-memory
    overrun) stop execution and set the TPP's fault flag; the packet is
    still forwarded, so end-hosts observe the fault instead of losing
    the packet. A failed [CEXEC] check is not a fault: it merely skips
    the rest of the program (paper §3.2.3).

    Two backends share these semantics exactly. The default [Compiled]
    backend runs the program's cached micro-op form ({!Compile}),
    compiling on first sight of the instruction bytes; [Interpreter] is
    the original AST walker, kept as the reference oracle. *)

type fault = Compile.fault =
  | Mmu_fault of Mmu.fault
  | Packet_oob of int        (** packet-memory access out of bounds *)
  | Misaligned of int
  | Immediate_write          (** an immediate used as a destination *)
  | Stack_overflow
  | Stack_underflow
  | Bad_operand of string   (** e.g. a CSTORE/CEXEC pool operand that is
                                not packet memory *)

val fault_message : fault -> string

type result = {
  executed : int;            (** instructions that ran (incl. a failed CEXEC) *)
  cycles : int;              (** pipeline cycles: 4 + executed *)
  stopped_by_cexec : bool;
  fault : fault option;
}

type backend = Compiled | Interpreter

val set_default_backend : backend -> unit
(** Process-wide default for {!execute} calls that don't pass
    [?backend]; starts as [Compiled]. The bench's interpreter baseline
    runs flip this. *)

val default_backend : unit -> backend

val execute : ?backend:backend -> State.t -> now:int -> frame:Tpp_isa.Frame.t -> result option
(** Runs the frame's TPP, mutating its packet memory / stack pointer /
    hop counter and any SRAM it stores to, and bumps the switch's
    TPP counters. [None] when the frame carries no TPP (the TCPU
    ignores non-TPP packets). The frame's metadata must already be
    filled in by the forwarding lookup.

    The [Compiled] backend also counts a per-switch compile-cache hit
    (TPP already linked to compiled code) or miss in
    {!State.t.tpp_compile_hits} / [tpp_compile_misses]. *)

val cycle_budget : int
(** Cycles available to a minimum-size packet under 300 ns cut-through
    latency at 1 GHz (paper §3.3 "Overheads"): 300. *)

val cycles_for : int -> int
(** [cycles_for n] is the cycle cost of an [n]-instruction program. *)
