module Vaddr = Tpp_isa.Vaddr

type region = { task : string; first : int; count : int }

type t = { state : State.t; mutable taken : region list }

let for_state state = { state; taken = [] }

let overlaps a b = a.first < b.first + b.count && b.first < a.first + a.count

let total t = ignore t; Vaddr.sram_words

(* First-fit over the gaps between existing regions. *)
let find_gap t ~count =
  let sorted = List.sort (fun a b -> Int.compare a.first b.first) t.taken in
  let rec scan cursor = function
    | [] -> if cursor + count <= total t then Some cursor else None
    | r :: rest ->
      if cursor + count <= r.first then Some cursor else scan (r.first + r.count) rest
  in
  scan 0 sorted

let claim t region =
  if List.exists (overlaps region) t.taken then
    Error "internal allocator overlap"
  else begin
    t.taken <- region :: t.taken;
    Ok ()
  end

let alloc_words t ~task ~count =
  if count <= 0 then Error "alloc_words: count must be positive"
  else
    match find_gap t ~count with
    | None -> Error (Printf.sprintf "SRAM exhausted: no room for %d words" count)
    | Some first -> (
      match claim t { task; first; count } with
      | Ok () -> Ok first
      | Error e -> Error e)

let alloc_link_slot t ~task =
  let nports = t.state.State.num_ports in
  (* Slot [s] owns words [s*nports, (s+1)*nports). Find the lowest slot
     whose backing words are all free. *)
  let rec try_slot s =
    if s >= Vaddr.link_sram_slots || ((s + 1) * nports) > total t then
      Error "SRAM exhausted: no free per-link slot"
    else begin
      let region = { task; first = s * nports; count = nports } in
      if List.exists (overlaps region) t.taken then try_slot (s + 1)
      else
        match claim t region with
        | Ok () -> Ok s
        | Error e -> Error e
    end
  in
  try_slot 0

let regions t =
  t.taken
  |> List.sort (fun a b -> Int.compare a.first b.first)
  |> List.map (fun r -> (r.task, r.first, r.count))

let free_words t = total t - List.fold_left (fun acc r -> acc + r.count) 0 t.taken
