module Tpp = Tpp_isa.Tpp
module Instr = Tpp_isa.Instr
module Vaddr = Tpp_isa.Vaddr
module Meta = Tpp_isa.Meta

type fault =
  | Mmu_fault of Mmu.fault
  | Packet_oob of int
  | Misaligned of int
  | Immediate_write
  | Stack_overflow
  | Stack_underflow
  | Bad_operand of string

let fault_message = function
  | Mmu_fault f -> Mmu.fault_message f
  | Packet_oob off -> Printf.sprintf "packet memory access at %d out of bounds" off
  | Misaligned off -> Printf.sprintf "misaligned packet memory access at %d" off
  | Immediate_write -> "immediate operand used as destination"
  | Stack_overflow -> "stack overflow (packet memory exhausted)"
  | Stack_underflow -> "stack underflow"
  | Bad_operand what -> "bad operand: " ^ what

(* Per-execution context. Everything that varies between executions of
   the same program — the switch, the packet, its memory layout — flows
   through here, which is what lets one compiled program serve every TPP
   with the same instruction bytes.

   Faults are signalled without allocating: a micro-op that faults
   records the fault as two ints ([f_kind]/[f_detail]) and the [fault]
   value is only constructed on the (rare) faulting exit. [f_kind] is -1
   while no fault has occurred; since execution stops at the first
   fault, the field transitions at most once per run. *)
type ectx = {
  state : State.t;
  meta : Meta.t;
  tpp : Tpp.t;
  memory : bytes;  (* backing buffer of packet memory *)
  mem_off : int;   (* window start: flat frames alias the wire image *)
  now : int;
  mem_len : int;
  hop_base : int;  (* base + hop * perhop_len, fixed for the whole run *)
  mutable f_kind : int;
  mutable f_detail : int;
}

(* Encoded fault kinds (values of [f_kind]). *)
let k_packet_oob = 0
let k_misaligned = 1
let k_immediate_write = 2
let k_stack_overflow = 3
let k_stack_underflow = 4
let k_bad_operand = 5
let k_bad_address = 6
let k_read_only = 7
let k_port_oor = 8

let fault_of c =
  match c.f_kind with
  | 0 -> Packet_oob c.f_detail
  | 1 -> Misaligned c.f_detail
  | 2 -> Immediate_write
  | 3 -> Stack_overflow
  | 4 -> Stack_underflow
  | 5 -> Bad_operand "pool operand must be packet memory"
  | 6 -> Mmu_fault (Mmu.Bad_address c.f_detail)
  | 7 -> Mmu_fault (Mmu.Read_only c.f_detail)
  | _ -> Mmu_fault (Mmu.Port_out_of_range c.f_detail)

(* Micro-op status codes. *)
let st_continue = 0
let st_halt = 1
let st_cexec = 2
let st_fault = 3

type uop = ectx -> int

type t = { uops : uop array }

let length t = Array.length t.uops

(* Raw word access; bounds/alignment are checked by the callers, so
   these compile to a plain load/store (same big-endian layout as
   [Buf.get_u32i]/[set_u32i]). *)
let get32 m off = Int32.to_int (Bytes.get_int32_be m off) land 0xFFFF_FFFF
let set32 m off v = Bytes.set_int32_be m off (Int32.of_int v)

(* Packet-memory word access relative to the context's window. When the
   TPP is embedded in a flat frame this writes the wire image in place. *)
let[@inline] mget c off = get32 c.memory (c.mem_off + off)
let[@inline] mset c off v = set32 c.memory (c.mem_off + off) v

(* Runtime-checked packet-memory word read: bounds before alignment,
   exactly like the interpreter's [check_pkt]. Negative offsets fall to
   the bounds check, so [land 3] and [mod 4] agree on the rest. *)
let read_mem c off =
  if off < 0 || off + 4 > c.mem_len then begin
    c.f_kind <- k_packet_oob;
    c.f_detail <- off;
    0
  end
  else if off land 3 <> 0 then begin
    c.f_kind <- k_misaligned;
    c.f_detail <- off;
    0
  end
  else mget c off

let write_mem c off v =
  if off < 0 || off + 4 > c.mem_len then begin
    c.f_kind <- k_packet_oob;
    c.f_detail <- off;
    false
  end
  else if off land 3 <> 0 then begin
    c.f_kind <- k_misaligned;
    c.f_detail <- off;
    false
  end
  else begin
    mset c off v;
    true
  end

(* Operand lowering: the addressing mode — and for switch addresses the
   whole region dispatch — is resolved here, once per program, so the
   returned closure is monomorphic straight-line code. Readers return
   the value and leave [f_kind] untouched, or record a fault; callers
   test [c.f_kind >= 0] after each read. *)

let bad_address a : uop =
 fun c ->
  c.f_kind <- k_bad_address;
  c.f_detail <- a;
  0

let compile_read (op : Instr.operand) : ectx -> int =
  match op with
  | Instr.Imm v -> fun _ -> v
  | Instr.Pkt off ->
    if off >= 0 && off land 3 = 0 then fun c ->
      (* only the bounds depend on the packet; alignment is static *)
      if off + 4 > c.mem_len then begin
        c.f_kind <- k_packet_oob;
        c.f_detail <- off;
        0
      end
      else mget c off
    else fun c ->
      (* statically a fault, but which fault depends on [mem_len] *)
      read_mem c off
  | Instr.Hop idx -> fun c -> read_mem c (c.hop_base + (4 * idx))
  | Instr.Sw a -> (
    match Vaddr.classify a with
    | Error _ -> bad_address a
    | Ok (Vaddr.Switch s) -> fun c -> State.switch_stat c.state ~now:c.now s
    | Ok (Vaddr.Link s) ->
      fun c ->
        let port = c.meta.Meta.out_port in
        if port < 0 || port >= c.state.State.num_ports then begin
          c.f_kind <- k_port_oor;
          c.f_detail <- port;
          0
        end
        else State.port_stat c.state ~port s
    | Ok (Vaddr.Queue s) ->
      fun c ->
        let port = c.meta.Meta.out_port in
        if port < 0 || port >= c.state.State.num_ports then begin
          c.f_kind <- k_port_oor;
          c.f_detail <- port;
          0
        end
        else begin
          match State.queue_stat c.state ~port ~queue:c.meta.Meta.queue_id s with
          | Some v -> v
          | None ->
            c.f_kind <- k_bad_address;
            c.f_detail <- a;
            0
        end
    | Ok (Vaddr.Link_sram slot) ->
      fun c -> (
        match State.link_sram_index c.state ~slot ~port:c.meta.Meta.out_port with
        | Some idx -> (State.sram_array c.state).(idx)
        | None ->
          c.f_kind <- k_bad_address;
          c.f_detail <- a;
          0)
    | Ok (Vaddr.Port (port, s)) ->
      fun c ->
        if port >= c.state.State.num_ports then begin
          c.f_kind <- k_port_oor;
          c.f_detail <- port;
          0
        end
        else State.port_stat c.state ~port s
    | Ok (Vaddr.Meta m) -> fun c -> Meta.get c.meta m
    | Ok (Vaddr.Sram w) ->
      fun c -> (
        match State.sram_get c.state w with
        | Some v -> v
        | None ->
          c.f_kind <- k_bad_address;
          c.f_detail <- a;
          0))

let compile_write (op : Instr.operand) : ectx -> int -> bool =
  match op with
  | Instr.Imm _ ->
    fun c _ ->
      c.f_kind <- k_immediate_write;
      false
  | Instr.Pkt off ->
    if off >= 0 && off land 3 = 0 then fun c v ->
      if off + 4 > c.mem_len then begin
        c.f_kind <- k_packet_oob;
        c.f_detail <- off;
        false
      end
      else begin
        mset c off v;
        true
      end
    else fun c v -> write_mem c off v
  | Instr.Hop idx -> fun c v -> write_mem c (c.hop_base + (4 * idx)) v
  | Instr.Sw a -> (
    match Vaddr.classify a with
    | Error _ ->
      fun c _ ->
        c.f_kind <- k_bad_address;
        c.f_detail <- a;
        false
    | Ok (Vaddr.Link_sram slot) ->
      fun c v -> (
        match State.link_sram_index c.state ~slot ~port:c.meta.Meta.out_port with
        | Some idx ->
          (State.sram_array c.state).(idx) <- v land 0xFFFF_FFFF;
          true
        | None ->
          c.f_kind <- k_bad_address;
          c.f_detail <- a;
          false)
    | Ok (Vaddr.Sram w) ->
      fun c v ->
        if State.sram_set c.state w v then true
        else begin
          c.f_kind <- k_bad_address;
          c.f_detail <- a;
          false
        end
    | Ok (Vaddr.Switch _ | Vaddr.Link _ | Vaddr.Queue _ | Vaddr.Port _ | Vaddr.Meta _)
      ->
      fun c _ ->
        c.f_kind <- k_read_only;
        c.f_detail <- a;
        false)

(* Reads whose lowered form can never set [f_kind]: immediates, switch
   registers, packet metadata and statically-ranged SRAM words. Their
   callers skip the post-read fault check entirely. *)
let read_never_faults = function
  | Instr.Imm _ -> true
  | Instr.Sw a -> (
    match Vaddr.classify a with
    | Ok (Vaddr.Switch _ | Vaddr.Meta _ | Vaddr.Sram _) -> true
    | Ok (Vaddr.Link _ | Vaddr.Queue _ | Vaddr.Link_sram _ | Vaddr.Port _)
    | Error _ ->
      false)
  | Instr.Pkt _ | Instr.Hop _ -> false

(* A statically known, in-principle-valid packet offset: non-negative
   and word aligned, so only the (per-packet) bounds check remains. *)
let static_pkt = function
  | Instr.Pkt off when off >= 0 && off land 3 = 0 -> Some off
  | _ -> None

let oob c off =
  c.f_kind <- k_packet_oob;
  c.f_detail <- off;
  st_fault

(* CSTORE/CEXEC pool operands must name packet memory; that property is
   static, so a switch/immediate pool compiles to a constant fault. The
   offset itself never faults — [read_mem] validates it. *)
let compile_pool_offset (op : Instr.operand) : (ectx -> int) option =
  match op with
  | Instr.Pkt off -> Some (fun _ -> off)
  | Instr.Hop idx -> Some (fun c -> c.hop_base + (4 * idx))
  | Instr.Sw _ | Instr.Imm _ -> None

let bad_pool : uop =
 fun c ->
  c.f_kind <- k_bad_operand;
  st_fault

let compile_instr (instr : Instr.t) : uop =
  match instr with
  | Instr.Nop -> fun _ -> st_continue
  | Instr.Halt -> fun _ -> st_halt
  | Instr.Push src ->
    let read = compile_read src in
    fun c ->
      let v = read c in
      if c.f_kind >= 0 then st_fault
      else begin
        let sp = c.tpp.Tpp.sp in
        if sp + 4 > c.mem_len then begin
          c.f_kind <- k_stack_overflow;
          st_fault
        end
        else if write_mem c sp v then begin
          c.tpp.Tpp.sp <- sp + 4;
          st_continue
        end
        else st_fault
      end
  | Instr.Pop dst ->
    let write = compile_write dst in
    fun c ->
      let sp = c.tpp.Tpp.sp - 4 in
      if sp < c.tpp.Tpp.base then begin
        c.f_kind <- k_stack_underflow;
        st_fault
      end
      else begin
        let v = read_mem c sp in
        if c.f_kind >= 0 then st_fault
        else if write c v then begin
          c.tpp.Tpp.sp <- sp;
          st_continue
        end
        else st_fault
      end
  | Instr.Load (src, dst) | Instr.Store (dst, src) | Instr.Mov (dst, src) -> (
    (* The dominant data-movement shape writes a static packet slot:
       fuse the source read and the destination store into one closure
       (one bounds test, no indirect calls beyond a non-trivial read).
       The interpreter reads the source before touching the
       destination, so fault order is source first. *)
    match static_pkt dst with
    | Some doff -> (
      match src with
      | Instr.Imm v ->
        fun c ->
          if doff + 4 > c.mem_len then oob c doff
          else begin
            mset c doff v;
            st_continue
          end
      | _ -> (
        match static_pkt src with
        | Some soff ->
          fun c ->
            if soff + 4 > c.mem_len then oob c soff
            else if doff + 4 > c.mem_len then oob c doff
            else begin
              mset c doff (mget c soff);
              st_continue
            end
        | None ->
          let read = compile_read src in
          if read_never_faults src then fun c ->
            let v = read c in
            if doff + 4 > c.mem_len then oob c doff
            else begin
              mset c doff v;
              st_continue
            end
          else fun c ->
            let v = read c in
            if c.f_kind >= 0 then st_fault
            else if doff + 4 > c.mem_len then oob c doff
            else begin
              mset c doff v;
              st_continue
            end))
    | None ->
      let read = compile_read src in
      let write = compile_write dst in
      if read_never_faults src then fun c ->
        if write c (read c) then st_continue else st_fault
      else fun c ->
        let v = read c in
        if c.f_kind >= 0 then st_fault
        else if write c v then st_continue
        else st_fault)
  | Instr.Binop (op, dst, src) -> (
    let apply =
      match op with
      | Instr.Add -> fun a b -> (a + b) land 0xFFFF_FFFF
      | Instr.Sub -> fun a b -> (a - b) land 0xFFFF_FFFF
      | Instr.And -> ( land )
      | Instr.Or -> ( lor )
      | Instr.Min -> min
      | Instr.Max -> max
    in
    (* A static packet destination needs a single bounds test covering
       both its read and its write (same word), and the read-modify-
       write inlines completely for immediate / static-packet sources.
       The interpreter's order is dst read, src read, dst write. *)
    match static_pkt dst with
    | Some doff -> (
      match src with
      | Instr.Imm b ->
        fun c ->
          if doff + 4 > c.mem_len then oob c doff
          else begin
            mset c doff (apply (mget c doff) b);
            st_continue
          end
      | _ -> (
        match static_pkt src with
        | Some soff ->
          fun c ->
            if doff + 4 > c.mem_len then oob c doff
            else if soff + 4 > c.mem_len then oob c soff
            else begin
              mset c doff (apply (mget c doff) (mget c soff));
              st_continue
            end
        | None ->
          let read_b = compile_read src in
          if read_never_faults src then fun c ->
            if doff + 4 > c.mem_len then oob c doff
            else begin
              let a = mget c doff in
              mset c doff (apply a (read_b c));
              st_continue
            end
          else fun c ->
            if doff + 4 > c.mem_len then oob c doff
            else begin
              let a = mget c doff in
              let b = read_b c in
              if c.f_kind >= 0 then st_fault
              else begin
                mset c doff (apply a b);
                st_continue
              end
            end))
    | None ->
      let read_a = compile_read dst in
      let read_b = compile_read src in
      let write = compile_write dst in
      fun c ->
        let a = read_a c in
        if c.f_kind >= 0 then st_fault
        else begin
          let b = read_b c in
          if c.f_kind >= 0 then st_fault
          else if write c (apply a b) then st_continue
          else st_fault
        end)
  | Instr.Cstore (dst, pool) -> (
    match compile_pool_offset pool with
    | None -> bad_pool
    | Some pool_off ->
      let read_dst = compile_read dst in
      let write_dst = compile_write dst in
      fun c ->
        let p = pool_off c in
        let cond = read_mem c p in
        if c.f_kind >= 0 then st_fault
        else begin
          let replacement = read_mem c (p + 4) in
          if c.f_kind >= 0 then st_fault
          else begin
            let old = read_dst c in
            if c.f_kind >= 0 then st_fault
            else if old = cond && not (write_dst c replacement) then st_fault
            else begin
              (* [p] was validated by the [cond] read, so the pool
                 write-back cannot fault. *)
              mset c p old;
              st_continue
            end
          end
        end)
  | Instr.Cexec (reg, pool) -> (
    match compile_pool_offset pool with
    | None -> bad_pool
    | Some pool_off -> (
      let read_reg = compile_read reg in
      match pool with
      | Instr.Pkt p when p >= 0 && p land 3 = 0 && read_never_faults reg ->
        (* The assembler's sugar always produces this shape: a static
           aligned pool and a register guard. Both pool words check with
           two compares (alignment of [p + 4] follows from [p]'s). *)
        fun c ->
          if p + 4 > c.mem_len then oob c p
          else if p + 8 > c.mem_len then oob c (p + 4)
          else begin
            let mask = mget c p in
            let expected = mget c (p + 4) in
            if read_reg c land mask = expected then st_continue else st_cexec
          end
      | _ ->
        fun c ->
          let p = pool_off c in
          let mask = read_mem c p in
          if c.f_kind >= 0 then st_fault
          else begin
            let expected = read_mem c (p + 4) in
            if c.f_kind >= 0 then st_fault
            else begin
              let v = read_reg c in
              if c.f_kind >= 0 then st_fault
              else if v land mask = expected then st_continue
              else st_cexec
            end
          end))

let compile (program : Instr.t array) : t =
  { uops = Array.map compile_instr program }

let run t state ~now ~(tpp : Tpp.t) ~(meta : Meta.t) =
  let c =
    {
      state;
      meta;
      tpp;
      memory = tpp.Tpp.memory;
      mem_off = tpp.Tpp.mem_off;
      now;
      mem_len = tpp.Tpp.mem_len;
      hop_base = tpp.Tpp.base + (tpp.Tpp.hop * tpp.Tpp.perhop_len);
      f_kind = -1;
      f_detail = 0;
    }
  in
  let uops = t.uops in
  let len = Array.length uops in
  let rec go i =
    if i >= len then (i, false, None)
    else begin
      let st = (Array.unsafe_get uops i) c in
      if st = st_continue then go (i + 1)
      else if st = st_halt then (i + 1, false, None)
      else if st = st_cexec then (i + 1, true, None)
      else (i + 1, false, Some (fault_of c))
    end
  in
  go 0

(* ---- Process-wide program cache ---------------------------------- *)

type Tpp.compiled += Compiled of t

module Smap = Map.Make (String)

(* Lock-free: the map is immutable, the [Atomic.t] holds the current
   version, inserts CAS-loop. Two domains racing to compile the same
   program both succeed; the loser adopts the winner's entry, so a key
   maps to exactly one compiled program for the life of the process. *)
let cache : t Smap.t Atomic.t = Atomic.make Smap.empty
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0

type cache_stats = { programs : int; hits : int; misses : int }

let cache_stats () =
  {
    programs = Smap.cardinal (Atomic.get cache);
    hits = Atomic.get cache_hits;
    misses = Atomic.get cache_misses;
  }

let clear_cache () =
  Atomic.set cache Smap.empty;
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

let lookup (tpp : Tpp.t) : t =
  let key = Tpp.program_key tpp in
  match Smap.find_opt key (Atomic.get cache) with
  | Some c ->
    Atomic.incr cache_hits;
    c
  | None ->
    Atomic.incr cache_misses;
    let compiled = compile tpp.Tpp.program in
    let rec insert () =
      let m = Atomic.get cache in
      match Smap.find_opt key m with
      | Some existing -> existing
      | None ->
        if Atomic.compare_and_set cache m (Smap.add key compiled m) then compiled
        else insert ()
    in
    insert ()
