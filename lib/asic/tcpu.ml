module Tpp = Tpp_isa.Tpp
module Instr = Tpp_isa.Instr
module Frame = Tpp_isa.Frame

type fault = Compile.fault =
  | Mmu_fault of Mmu.fault
  | Packet_oob of int
  | Misaligned of int
  | Immediate_write
  | Stack_overflow
  | Stack_underflow
  | Bad_operand of string

let fault_message = Compile.fault_message

type result = {
  executed : int;
  cycles : int;
  stopped_by_cexec : bool;
  fault : fault option;
}

type backend = Compiled | Interpreter

let default = Atomic.make Compiled
let set_default_backend b = Atomic.set default b
let default_backend () = Atomic.get default

let pipeline_fill = 4
let cycles_for n = pipeline_fill + n
let cycle_budget = 300

let mask32 v = v land 0xFFFF_FFFF

(* ---- Reference backend: the original AST interpreter. Kept verbatim
   as the semantic oracle for the compiled path (QCheck differential
   test) and selectable via [~backend:Interpreter]. ---- *)

type exec_ctx = {
  state : State.t;
  now : int;
  tpp : Tpp.t;
  meta : Tpp_isa.Meta.t;
  mem_len : int;   (* hoisted: constant across the whole execution *)
  hop_base : int;  (* base + hop * perhop_len, fixed until the hop bump *)
}

let check_pkt ctx off =
  if off < 0 || off + 4 > ctx.mem_len then Error (Packet_oob off)
  else if off mod 4 <> 0 then Error (Misaligned off)
  else Ok off

let hop_offset ctx idx = ctx.hop_base + (4 * idx)

let read_pkt ctx off =
  match check_pkt ctx off with
  | Ok off -> Ok (Tpp.mem_get ctx.tpp off)
  | Error e -> Error e

let write_pkt ctx off v =
  match check_pkt ctx off with
  | Ok off ->
    Tpp.mem_set ctx.tpp off v;
    Ok ()
  | Error e -> Error e

let read_operand ctx = function
  | Instr.Sw a -> (
    match Mmu.read ctx.state ~meta:ctx.meta ~now:ctx.now a with
    | Ok v -> Ok v
    | Error f -> Error (Mmu_fault f))
  | Instr.Pkt off -> read_pkt ctx off
  | Instr.Imm v -> Ok v
  | Instr.Hop idx -> read_pkt ctx (hop_offset ctx idx)

let write_operand ctx op v =
  match op with
  | Instr.Sw a -> (
    match Mmu.write ctx.state ~meta:ctx.meta a v with
    | Ok () -> Ok ()
    | Error f -> Error (Mmu_fault f))
  | Instr.Pkt off -> write_pkt ctx off v
  | Instr.Hop idx -> write_pkt ctx (hop_offset ctx idx) v
  | Instr.Imm _ -> Error Immediate_write

(* CSTORE/CEXEC take their wide immediates from a two-word block in
   packet memory; the operand must therefore name packet memory. *)
let pool_offset ctx = function
  | Instr.Pkt off -> Ok off
  | Instr.Hop idx -> Ok (hop_offset ctx idx)
  | Instr.Sw _ | Instr.Imm _ -> Error (Bad_operand "pool operand must be packet memory")

let apply_binop op a b =
  match op with
  | Instr.Add -> mask32 (a + b)
  | Instr.Sub -> mask32 (a - b)
  | Instr.And -> a land b
  | Instr.Or -> a lor b
  | Instr.Min -> min a b
  | Instr.Max -> max a b

let ( let* ) = Result.bind

(* One instruction. [Ok true] = continue, [Ok false] = stop cleanly. *)
let step ctx instr =
  match instr with
  | Instr.Nop -> Ok true
  | Instr.Halt -> Ok false
  | Instr.Push src ->
    let* v = read_operand ctx src in
    let sp = ctx.tpp.Tpp.sp in
    if sp + 4 > ctx.mem_len then Error Stack_overflow
    else begin
      let* () = write_pkt ctx sp v in
      ctx.tpp.Tpp.sp <- sp + 4;
      Ok true
    end
  | Instr.Pop dst ->
    let sp = ctx.tpp.Tpp.sp - 4 in
    if sp < ctx.tpp.Tpp.base then Error Stack_underflow
    else begin
      let* v = read_pkt ctx sp in
      let* () = write_operand ctx dst v in
      ctx.tpp.Tpp.sp <- sp;
      Ok true
    end
  | Instr.Load (src, dst) ->
    let* v = read_operand ctx src in
    let* () = write_operand ctx dst v in
    Ok true
  | Instr.Store (dst, src) | Instr.Mov (dst, src) ->
    let* v = read_operand ctx src in
    let* () = write_operand ctx dst v in
    Ok true
  | Instr.Binop (op, dst, src) ->
    let* a = read_operand ctx dst in
    let* b = read_operand ctx src in
    let* () = write_operand ctx dst (apply_binop op a b) in
    Ok true
  | Instr.Cstore (dst, pool) ->
    let* pool = pool_offset ctx pool in
    let* cond = read_pkt ctx pool in
    let* replacement = read_pkt ctx (pool + 4) in
    let* old = read_operand ctx dst in
    let* () = if old = cond then write_operand ctx dst replacement else Ok () in
    let* () = write_pkt ctx pool old in
    Ok true
  | Instr.Cexec (reg, pool) ->
    let* pool = pool_offset ctx pool in
    let* mask = read_pkt ctx pool in
    let* expected = read_pkt ctx (pool + 4) in
    let* v = read_operand ctx reg in
    Ok (v land mask = expected)

let run_interpreter state ~now ~tpp ~meta =
  let ctx =
    { state; now; tpp; meta;
      mem_len = tpp.Tpp.mem_len;
      hop_base = tpp.Tpp.base + (tpp.Tpp.hop * tpp.Tpp.perhop_len) }
  in
  let program = tpp.Tpp.program in
  let len = Array.length program in
  let rec run i cexec_stop =
    if i >= len then (i, cexec_stop, None)
    else
      match step ctx program.(i) with
      | Ok true -> run (i + 1) false
      | Ok false ->
        let stopped_by_cexec =
          match program.(i) with Instr.Cexec _ -> true | _ -> false
        in
        (i + 1, stopped_by_cexec, None)
      | Error fault -> (i + 1, false, Some fault)
  in
  run 0 false

(* ---- Compiled backend: link the TPP's shared handle to the cached
   compiled program, compiling on first sight of the bytes. ---- *)

let run_compiled state ~now ~tpp ~meta =
  let compiled =
    match Tpp.compiled_handle tpp with
    | Compile.Compiled c ->
      (* The template family is already linked: zero lookups. *)
      state.State.tpp_compile_hits <- state.State.tpp_compile_hits + 1;
      c
    | _ ->
      state.State.tpp_compile_misses <- state.State.tpp_compile_misses + 1;
      let c = Compile.lookup tpp in
      Tpp.set_compiled_handle tpp (Compile.Compiled c);
      c
  in
  Compile.run compiled state ~now ~tpp ~meta

let execute ?backend state ~now ~frame =
  match frame.Frame.tpp with
  | None -> None
  | Some tpp when tpp.Tpp.faulted ->
    (* A faulted TPP is inert for the rest of its journey. *)
    Some { executed = 0; cycles = 0; stopped_by_cexec = false; fault = None }
  | Some tpp ->
    let meta = frame.Frame.meta in
    let backend = match backend with Some b -> b | None -> Atomic.get default in
    let executed, stopped_by_cexec, fault =
      match backend with
      | Compiled -> run_compiled state ~now ~tpp ~meta
      | Interpreter -> run_interpreter state ~now ~tpp ~meta
    in
    tpp.Tpp.hop <- (tpp.Tpp.hop + 1) land 0xFFFF;
    (match fault with
    | Some _ ->
      tpp.Tpp.faulted <- true;
      state.State.tpp_faults <- state.State.tpp_faults + 1
    | None -> ());
    let cycles = cycles_for executed in
    state.State.tpp_execs <- state.State.tpp_execs + 1;
    state.State.tpp_cycles <- state.State.tpp_cycles + cycles;
    Some { executed; cycles; stopped_by_cexec; fault }
