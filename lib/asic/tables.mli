(** The forwarding tables of the ASIC pipeline (paper Figure 3): an L2
    exact-match table, an L3 longest-prefix-match table, and a TCAM.

    Every entry carries an [entry_id] and a [version] stamp — the state
    ndb-style debugging needs (paper §2.3): a TPP reading
    [PacketMetadata:MatchedEntryID] learns exactly which rule forwarded
    the packet, and [MatchedVersion] detects control/dataplane drift. *)

module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4

type connected = { c_base : int; c_shift : int; c_port_base : int; c_count : int }
(** A "connected subnet" route: the destination address encodes the
    egress port as [c_port_base + ((dst - c_base) >> c_shift)], valid
    while the index stays within [c_count]. Installed under a covering
    prefix, one entry replaces a consecutive block of per-host /32s
    (shift 0) or per-subnet prefixes (shift 8/16) — the workhorse of
    aggregated million-host FIBs. *)

type action =
  | Forward of int
  | Multipath of int array
      (** equal-cost ports; the pipeline picks by flow hash (ECMP) *)
  | Drop
  | Connected of connected

val select_path : int array -> key:int -> int
(** The ECMP selector: [ports.(key mod length)]. One definition, used
    by both the dataplane and the control plane's path predictor so
    they can never disagree. Raises [Invalid_argument] on empty. *)

val connected_port : connected -> Tpp_packet.Ipv4.Addr.t -> int option
(** Resolves a {!Connected} action for a destination address; [None]
    when the address falls outside the block (the pipeline drops). One
    definition shared by the dataplane and path predictors. *)

val connected_port_i : connected -> Tpp_packet.Ipv4.Addr.t -> int
(** [connected_port] without the option box: -1 when the address falls
    outside the block. The forwarding path uses this so a Connected
    hop allocates nothing. *)

type entry = { action : action; entry_id : int; version : int }

(** Exact-match on destination MAC. *)
module L2 : sig
  type t

  val create : unit -> t
  val install : t -> Mac.t -> entry -> unit
  val remove : t -> Mac.t -> unit
  val lookup : t -> Mac.t -> entry option
  val size : t -> int
end

(** Longest-prefix match on destination IPv4 address (binary trie). *)
module L3 : sig
  type t

  val create : unit -> t
  val install : t -> Ipv4.Prefix.t -> entry -> unit
  val remove : t -> Ipv4.Prefix.t -> unit
  val lookup : t -> Ipv4.Addr.t -> entry option
  (** The entry of the longest installed prefix containing the address. *)

  val size : t -> int
  val entries : t -> (Ipv4.Prefix.t * entry) list
end

(** Ternary matching with priorities; highest priority wins, ties broken
    by lowest entry id (insertion determinism). *)
module Tcam : sig
  type rule = {
    priority : int;
    src_ip : (Ipv4.Addr.t * int) option;  (** value, mask *)
    dst_ip : (Ipv4.Addr.t * int) option;
    proto : int option;
    in_port : int option;
    dst_port : int option;                (** L4 destination port *)
  }

  val any : rule
  (** Matches everything at priority 0. *)

  type t

  val create : unit -> t

  val is_empty : t -> bool
  (** Cheap emptiness test; the forwarding pipeline uses it to skip
      building the optional match fields when no rules are installed. *)

  val install : t -> rule -> entry -> unit
  val remove_id : t -> int -> unit
  (** Removes the entry with the given [entry_id]. *)

  val lookup :
    t ->
    src_ip:Ipv4.Addr.t option ->
    dst_ip:Ipv4.Addr.t option ->
    proto:int option ->
    in_port:int ->
    dst_port:int option ->
    entry option

  val size : t -> int
  val entries : t -> (rule * entry) list
end
