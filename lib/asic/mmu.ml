module Vaddr = Tpp_isa.Vaddr
module Meta = Tpp_isa.Meta

type fault = Bad_address of int | Read_only of int | Port_out_of_range of int

let fault_message = function
  | Bad_address a -> Printf.sprintf "bad address 0x%03x" a
  | Read_only a -> Printf.sprintf "write to read-only address 0x%03x" a
  | Port_out_of_range p -> Printf.sprintf "port %d out of range" p

let read state ~meta ~now addr =
  match Vaddr.classify addr with
  | Error _ -> Error (Bad_address addr)
  | Ok region -> (
    match region with
    | Vaddr.Switch s -> Ok (State.switch_stat state ~now s)
    | Vaddr.Link s ->
      let port = meta.Meta.out_port in
      if port < 0 || port >= state.State.num_ports then Error (Port_out_of_range port)
      else Ok (State.port_stat state ~port s)
    | Vaddr.Queue s -> (
      let port = meta.Meta.out_port in
      if port < 0 || port >= state.State.num_ports then Error (Port_out_of_range port)
      else
        match State.queue_stat state ~port ~queue:meta.Meta.queue_id s with
        | Some v -> Ok v
        | None -> Error (Bad_address addr))
    | Vaddr.Link_sram slot -> (
      match State.link_sram_index state ~slot ~port:meta.Meta.out_port with
      | Some idx -> Ok (State.sram_array state).(idx)
      | None -> Error (Bad_address addr))
    | Vaddr.Port (port, s) ->
      if port >= state.State.num_ports then Error (Port_out_of_range port)
      else Ok (State.port_stat state ~port s)
    | Vaddr.Meta m -> Ok (Meta.get meta m)
    | Vaddr.Sram w -> (
      match State.sram_get state w with
      | Some v -> Ok v
      | None -> Error (Bad_address addr)))

let write state ~meta addr v =
  match Vaddr.classify addr with
  | Error _ -> Error (Bad_address addr)
  | Ok region -> (
    match region with
    | Vaddr.Link_sram slot -> (
      match State.link_sram_index state ~slot ~port:meta.Meta.out_port with
      | Some idx ->
        (State.sram_array state).(idx) <- v land 0xFFFF_FFFF;
        Ok ()
      | None -> Error (Bad_address addr))
    | Vaddr.Sram w -> if State.sram_set state w v then Ok () else Error (Bad_address addr)
    | Vaddr.Switch _ | Vaddr.Link _ | Vaddr.Queue _ | Vaddr.Port _ | Vaddr.Meta _ ->
      Error (Read_only addr))

let read_absolute state ~now addr =
  match Vaddr.classify addr with
  | Error _ -> Error (Bad_address addr)
  | Ok (Vaddr.Link _ | Vaddr.Queue _ | Vaddr.Link_sram _ | Vaddr.Meta _) ->
    Error (Bad_address addr)
  | Ok _ ->
    let meta = Meta.create () in
    read state ~meta ~now addr
