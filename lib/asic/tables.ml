module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4

type action = Forward of int | Multipath of int array | Drop

let select_path ports ~key =
  let n = Array.length ports in
  if n = 0 then invalid_arg "Tables.select_path: no ports";
  ports.(key mod n)

type entry = { action : action; entry_id : int; version : int }

module L2 = struct
  type t = (Mac.t, entry) Hashtbl.t

  let create () = Hashtbl.create 64
  let install t mac e = Hashtbl.replace t mac e
  let remove t mac = Hashtbl.remove t mac
  let lookup t mac = Hashtbl.find_opt t mac
  let size t = Hashtbl.length t
end

module L3 = struct
  (* A binary trie on address bits, most significant bit first. An entry
     sits at the depth equal to its prefix length; lookup remembers the
     deepest entry seen on the way down. *)
  type node = {
    mutable zero : node option;
    mutable one : node option;
    mutable value : entry option;
  }

  type t = { root : node; mutable count : int }

  let new_node () = { zero = None; one = None; value = None }

  let create () = { root = new_node (); count = 0 }

  let bit addr i = (Ipv4.Addr.to_int addr lsr (31 - i)) land 1

  let descend node addr i ~create:make =
    let next = if bit addr i = 0 then node.zero else node.one in
    match next with
    | Some n -> Some n
    | None ->
      if not make then None
      else begin
        let n = new_node () in
        if bit addr i = 0 then node.zero <- Some n else node.one <- Some n;
        Some n
      end

  let install t prefix e =
    let addr = Ipv4.Prefix.addr prefix in
    let len = Ipv4.Prefix.length prefix in
    let rec go node i =
      if i = len then begin
        if Option.is_none node.value then t.count <- t.count + 1;
        node.value <- Some e
      end
      else
        match descend node addr i ~create:true with
        | Some n -> go n (i + 1)
        | None -> assert false
    in
    go t.root 0

  let remove t prefix =
    let addr = Ipv4.Prefix.addr prefix in
    let len = Ipv4.Prefix.length prefix in
    let rec go node i =
      if i = len then begin
        if Option.is_some node.value then t.count <- t.count - 1;
        node.value <- None
      end
      else
        match descend node addr i ~create:false with
        | Some n -> go n (i + 1)
        | None -> ()
    in
    go t.root 0

  let lookup t addr =
    (* Forwarding-path descent: every [Some] returned here is a block
       that already exists (the node's own [value]/child fields), so a
       lookup allocates nothing — this runs once per switch hop. *)
    let rec go node i best =
      let best = match node.value with Some _ as v -> v | None -> best in
      if i >= 32 then best
      else
        let next = if bit addr i = 0 then node.zero else node.one in
        match next with
        | Some n -> go n (i + 1) best
        | None -> best
    in
    go t.root 0 None

  let size t = t.count

  let entries t =
    let rec walk node acc_bits depth acc =
      let acc =
        match node.value with
        | Some e ->
          let addr = Ipv4.Addr.of_int (acc_bits lsl (32 - depth)) in
          (Ipv4.Prefix.make addr depth, e) :: acc
        | None -> acc
      in
      let acc =
        match node.zero with
        | Some n -> walk n (acc_bits lsl 1) (depth + 1) acc
        | None -> acc
      in
      match node.one with
      | Some n -> walk n ((acc_bits lsl 1) lor 1) (depth + 1) acc
      | None -> acc
    in
    (* Depth 0 shift of 32 would be undefined behaviour on the
       accumulator; special-case the root. *)
    let acc =
      match t.root.value with
      | Some e -> [ (Ipv4.Prefix.make (Ipv4.Addr.of_int 0) 0, e) ]
      | None -> []
    in
    let acc =
      match t.root.zero with Some n -> walk n 0 1 acc | None -> acc
    in
    match t.root.one with Some n -> walk n 1 1 acc | None -> acc
end

module Tcam = struct
  type rule = {
    priority : int;
    src_ip : (Ipv4.Addr.t * int) option;
    dst_ip : (Ipv4.Addr.t * int) option;
    proto : int option;
    in_port : int option;
    dst_port : int option;
  }

  let any =
    { priority = 0; src_ip = None; dst_ip = None; proto = None; in_port = None;
      dst_port = None }

  type t = { mutable rules : (rule * entry) list }

  let create () = { rules = [] }

  let is_empty t = t.rules = []

  let order (ra, ea) (rb, eb) =
    match Int.compare rb.priority ra.priority with
    | 0 -> Int.compare ea.entry_id eb.entry_id
    | c -> c

  let install t rule e = t.rules <- List.sort order ((rule, e) :: t.rules)

  let remove_id t id =
    t.rules <- List.filter (fun (_, e) -> e.entry_id <> id) t.rules

  let field_matches masked value = function
    | None -> true
    | Some expected -> ( match value with None -> false | Some v -> masked expected v)

  let ip_matches (want, mask) got =
    Ipv4.Addr.to_int got land mask = Ipv4.Addr.to_int want land mask

  let lookup t ~src_ip ~dst_ip ~proto ~in_port ~dst_port =
    let matches (r, _) =
      field_matches ip_matches src_ip r.src_ip
      && field_matches ip_matches dst_ip r.dst_ip
      && field_matches (fun a b -> a = b) proto r.proto
      && (match r.in_port with None -> true | Some p -> p = in_port)
      && field_matches (fun a b -> a = b) dst_port r.dst_port
    in
    match List.find_opt matches t.rules with
    | Some (_, e) -> Some e
    | None -> None

  let size t = List.length t.rules
  let entries t = t.rules
end
