module Mac = Tpp_packet.Mac
module Ipv4 = Tpp_packet.Ipv4

(* A "connected subnet" route: the destination address itself encodes
   the egress port as [port_base + ((dst - base) >> shift)]. One entry
   replaces a block of consecutive per-host /32s (shift 0: an edge
   switch's attached hosts) or per-subnet prefixes (shift 8/16: a
   spine's leaf ports, a core's pod ports) — the workhorse of the
   aggregated million-host FIBs. *)
type connected = { c_base : int; c_shift : int; c_port_base : int; c_count : int }

type action =
  | Forward of int
  | Multipath of int array
  | Drop
  | Connected of connected

let select_path ports ~key =
  let n = Array.length ports in
  if n = 0 then invalid_arg "Tables.select_path: no ports";
  ports.(key mod n)

let connected_port { c_base; c_shift; c_port_base; c_count } dst =
  let idx = (Ipv4.Addr.to_int dst - c_base) asr c_shift in
  if idx < 0 || idx >= c_count then None else Some (c_port_base + idx)

(* Unboxed variant for the forwarding path: -1 for "not covered"
   instead of a fresh [Some] per hop. *)
let connected_port_i { c_base; c_shift; c_port_base; c_count } dst =
  let idx = (Ipv4.Addr.to_int dst - c_base) asr c_shift in
  if idx < 0 || idx >= c_count then -1 else c_port_base + idx

type entry = { action : action; entry_id : int; version : int }

module L2 = struct
  type t = (Mac.t, entry) Hashtbl.t

  let create () = Hashtbl.create 64
  let install t mac e = Hashtbl.replace t mac e
  let remove t mac = Hashtbl.remove t mac
  let lookup t mac = Hashtbl.find_opt t mac
  let size t = Hashtbl.length t
end

module L3 = struct
  (* A binary trie on address bits, most significant bit first. An entry
     sits at the depth equal to its prefix length; lookup remembers the
     deepest entry seen on the way down. *)
  type node = {
    mutable zero : node option;
    mutable one : node option;
    mutable value : entry option;
  }

  type t = {
    root : node;
    mutable count : int;
    (* Small-table fast path — which is every switch in an
       aggregated-FIB fabric (1-3 prefix routes). The same entries,
       flattened to (mask, prefix, boxed entry) triples sorted longest
       prefix first: lookup is then a couple of masked compares over
       adjacent cache lines instead of a prefix-length pointer chase
       down the trie, which is what keeps per-hop routing cheap once a
       large fabric's working set falls out of L2. The [Some] cells are
       prebuilt at install time so the hot path still allocates
       nothing. Disabled ([flat_n] = -1) past [flat_max] entries; the
       trie stays the ground truth either way. *)
    mutable flat_n : int;
    mutable flat_mask : int array;
    mutable flat_prefix : int array;
    mutable flat_entry : entry option array;
  }

  let flat_max = 8

  let new_node () = { zero = None; one = None; value = None }

  let create () =
    { root = new_node (); count = 0; flat_n = 0; flat_mask = [||];
      flat_prefix = [||]; flat_entry = [||] }

  let bit addr i = (Ipv4.Addr.to_int addr lsr (31 - i)) land 1

  let descend node addr i ~create:make =
    let next = if bit addr i = 0 then node.zero else node.one in
    match next with
    | Some n -> Some n
    | None ->
      if not make then None
      else begin
        let n = new_node () in
        if bit addr i = 0 then node.zero <- Some n else node.one <- Some n;
        Some n
      end

  let entries t =
    let rec walk node acc_bits depth acc =
      let acc =
        match node.value with
        | Some e ->
          let addr = Ipv4.Addr.of_int (acc_bits lsl (32 - depth)) in
          (Ipv4.Prefix.make addr depth, e) :: acc
        | None -> acc
      in
      let acc =
        match node.zero with
        | Some n -> walk n (acc_bits lsl 1) (depth + 1) acc
        | None -> acc
      in
      match node.one with
      | Some n -> walk n ((acc_bits lsl 1) lor 1) (depth + 1) acc
      | None -> acc
    in
    (* Depth 0 shift of 32 would be undefined behaviour on the
       accumulator; special-case the root. *)
    let acc =
      match t.root.value with
      | Some e -> [ (Ipv4.Prefix.make (Ipv4.Addr.of_int 0) 0, e) ]
      | None -> []
    in
    let acc =
      match t.root.zero with Some n -> walk n 0 1 acc | None -> acc
    in
    match t.root.one with Some n -> walk n 1 1 acc | None -> acc

  (* Control-plane cost only: called once per install/remove. *)
  let rebuild_flat t =
    if t.count > flat_max then begin
      t.flat_n <- -1;
      t.flat_mask <- [||];
      t.flat_prefix <- [||];
      t.flat_entry <- [||]
    end
    else begin
      let es =
        entries t
        |> List.sort (fun (p, _) (q, _) ->
               Int.compare (Ipv4.Prefix.length q) (Ipv4.Prefix.length p))
      in
      let n = List.length es in
      let mask = Array.make n 0 and prefix = Array.make n 0 in
      List.iteri
        (fun i (p, _) ->
          let len = Ipv4.Prefix.length p in
          let m = if len = 0 then 0 else 0xFFFFFFFF lxor ((1 lsl (32 - len)) - 1) in
          mask.(i) <- m;
          prefix.(i) <- Ipv4.Addr.to_int (Ipv4.Prefix.addr p) land m)
        es;
      t.flat_mask <- mask;
      t.flat_prefix <- prefix;
      t.flat_entry <- Array.of_list (List.map (fun (_, e) -> Some e) es);
      t.flat_n <- n
    end

  let install t prefix e =
    let addr = Ipv4.Prefix.addr prefix in
    let len = Ipv4.Prefix.length prefix in
    let rec go node i =
      if i = len then begin
        if Option.is_none node.value then t.count <- t.count + 1;
        node.value <- Some e
      end
      else
        match descend node addr i ~create:true with
        | Some n -> go n (i + 1)
        | None -> assert false
    in
    go t.root 0;
    rebuild_flat t

  let remove t prefix =
    let addr = Ipv4.Prefix.addr prefix in
    let len = Ipv4.Prefix.length prefix in
    let rec go node i =
      if i = len then begin
        if Option.is_some node.value then t.count <- t.count - 1;
        node.value <- None
      end
      else
        match descend node addr i ~create:false with
        | Some n -> go n (i + 1)
        | None -> ()
    in
    go t.root 0;
    rebuild_flat t

  (* Both halves of [lookup] are top-level recursive functions, not
     closures inside it: a local [let rec] that captures the table
     state allocates its closure on every call, which is exactly the
     per-hop cost the flat path exists to avoid. *)
  let rec flat_scan mask prefix entry n a i =
    if i >= n then None
    else if a land Array.unsafe_get mask i = Array.unsafe_get prefix i then
      Array.unsafe_get entry i
    else flat_scan mask prefix entry n a (i + 1)

  let rec trie_scan node addr i best =
    let best = match node.value with Some _ as v -> v | None -> best in
    if i >= 32 then best
    else
      let next = if bit addr i = 0 then node.zero else node.one in
      match next with
      | Some n -> trie_scan n addr (i + 1) best
      | None -> best

  let lookup t addr =
    (* Forwarding path, run once per switch hop; allocation-free in
       both branches (the flat [Some] cells are prebuilt, and every
       [Some] the trie descent returns is an existing block). *)
    if t.flat_n >= 0 then
      flat_scan t.flat_mask t.flat_prefix t.flat_entry t.flat_n
        (Ipv4.Addr.to_int addr) 0
    else trie_scan t.root addr 0 None

  let size t = t.count
end

module Tcam = struct
  type rule = {
    priority : int;
    src_ip : (Ipv4.Addr.t * int) option;
    dst_ip : (Ipv4.Addr.t * int) option;
    proto : int option;
    in_port : int option;
    dst_port : int option;
  }

  let any =
    { priority = 0; src_ip = None; dst_ip = None; proto = None; in_port = None;
      dst_port = None }

  type t = { mutable rules : (rule * entry) list }

  let create () = { rules = [] }

  let is_empty t = t.rules = []

  let order (ra, ea) (rb, eb) =
    match Int.compare rb.priority ra.priority with
    | 0 -> Int.compare ea.entry_id eb.entry_id
    | c -> c

  let install t rule e = t.rules <- List.sort order ((rule, e) :: t.rules)

  let remove_id t id =
    t.rules <- List.filter (fun (_, e) -> e.entry_id <> id) t.rules

  let field_matches masked value = function
    | None -> true
    | Some expected -> ( match value with None -> false | Some v -> masked expected v)

  let ip_matches (want, mask) got =
    Ipv4.Addr.to_int got land mask = Ipv4.Addr.to_int want land mask

  let lookup t ~src_ip ~dst_ip ~proto ~in_port ~dst_port =
    let matches (r, _) =
      field_matches ip_matches src_ip r.src_ip
      && field_matches ip_matches dst_ip r.dst_ip
      && field_matches (fun a b -> a = b) proto r.proto
      && (match r.in_port with None -> true | Some p -> p = in_port)
      && field_matches (fun a b -> a = b) dst_port r.dst_port
    in
    match List.find_opt matches t.rules with
    | Some (_, e) -> Some e
    | None -> None

  let size t = List.length t.rules
  let entries t = t.rules
end
