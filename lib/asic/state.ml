module Vaddr = Tpp_isa.Vaddr
module Frame = Tpp_isa.Frame
module Ring = Tpp_util.Ring

let mask32 v = v land 0xFFFF_FFFF

module Subqueue = struct
  type t = {
    mutable q_bytes : int;
    mutable q_enqueued : int;
    mutable q_dropped : int;
    mutable q_limit : int;
    frames : Frame.t Ring.t;
        (* ring, not [Queue.t]: enqueue/dequeue allocate nothing once
           the ring has grown to the port's working set *)
  }

  let create ~limit =
    { q_bytes = 0; q_enqueued = 0; q_dropped = 0; q_limit = limit;
      frames = Ring.create ~dummy:(Frame.placeholder ()) () }

  let packets t = Ring.length t.frames
end

module Port = struct
  type t = {
    mutable rx_bytes : int;
    mutable rx_pkts : int;
    mutable tx_bytes : int;
    mutable tx_pkts : int;
    mutable drops : int;
    mutable trims : int;  (* frames trimmed to header instead of dropped *)
    mutable capacity_bps : int;
    mutable window_rx_bytes : int;
    mutable offered_bytes : int;
    mutable util_ppm : int;
    mutable queue_bytes : int;
    mutable queue_limit : int;
    mutable ecn_threshold : int option;
    mutable queue_bytes_avg : float;
    mutable queues : Subqueue.t array;
  }

  let create ~queue_limit =
    {
      rx_bytes = 0;
      rx_pkts = 0;
      tx_bytes = 0;
      tx_pkts = 0;
      drops = 0;
      trims = 0;
      capacity_bps = 1_000_000_000;
      window_rx_bytes = 0;
      offered_bytes = 0;
      util_ppm = 0;
      queue_bytes = 0;
      queue_limit;
      ecn_threshold = None;
      queue_bytes_avg = 0.0;
      queues = [| Subqueue.create ~limit:queue_limit |];
    }

  let total_packets t =
    Array.fold_left (fun acc q -> acc + Subqueue.packets q) 0 t.queues
end

(* [sram] and [ports] materialize on first touch: an idle switch in a
   million-host fabric pays for neither its 1920-word SRAM nor its
   per-port register records until traffic (or a TPP) reaches it. An
   empty [sram] reads as all-zero and an empty [ports] as all-idle, so
   laziness is invisible to observers. [capacities] is the one per-port
   datum set during topology construction (Net.connect), kept as a flat
   int array so wiring a link never materializes the port records. *)
type t = {
  switch_id : int;
  num_ports : int;
  queue_limit : int;
  mutable version : int;
  mutable packets_seen : int;
  mutable bytes_seen : int;
  mutable drops : int;
  mutable trims : int;
  mutable tpp_execs : int;
  mutable tpp_faults : int;
  mutable tpp_cycles : int;
  mutable tpp_compile_hits : int;
  mutable tpp_compile_misses : int;
  mutable sram : int array;
  mutable ports : Port.t array;
  mutable capacities : int array;
}

let default_capacity_bps = 1_000_000_000

let create ~switch_id ~num_ports ?(queue_limit = 150_000) () =
  if num_ports <= 0 then invalid_arg "State.create: num_ports";
  {
    switch_id;
    num_ports;
    queue_limit;
    version = 0;
    packets_seen = 0;
    bytes_seen = 0;
    drops = 0;
    trims = 0;
    tpp_execs = 0;
    tpp_faults = 0;
    tpp_cycles = 0;
    tpp_compile_hits = 0;
    tpp_compile_misses = 0;
    sram = [||];
    ports = [||];
    capacities = Array.make num_ports default_capacity_bps;
  }

let[@inline never] materialize_ports t =
  let ports =
    Array.init t.num_ports (fun i ->
        let p = Port.create ~queue_limit:t.queue_limit in
        p.Port.capacity_bps <- t.capacities.(i);
        p)
  in
  t.ports <- ports;
  ports

let[@inline] ports_array t =
  if Array.length t.ports = 0 then materialize_ports t else t.ports

let[@inline never] materialize_sram t =
  let sram = Array.make Vaddr.sram_words 0 in
  t.sram <- sram;
  sram

let[@inline] sram_array t =
  if Array.length t.sram = 0 then materialize_sram t else t.sram

let ports_materialized t = Array.length t.ports > 0

let port t i =
  if i < 0 || i >= t.num_ports then invalid_arg "State.port: out of range";
  (ports_array t).(i)

let set_capacity t ~port:i ~bps =
  if i < 0 || i >= t.num_ports then invalid_arg "State.set_capacity: out of range";
  t.capacities.(i) <- bps;
  if Array.length t.ports > 0 then t.ports.(i).Port.capacity_bps <- bps

let capacity t ~port:i =
  if i < 0 || i >= t.num_ports then invalid_arg "State.capacity: out of range";
  t.capacities.(i)

let port_stat t ~port:i stat =
  let p = port t i in
  let open Vaddr.Port_stat in
  match stat with
  | Queue_bytes -> mask32 p.Port.queue_bytes
  | Queue_pkts -> Port.total_packets p
  | Rx_bytes -> mask32 p.Port.rx_bytes
  | Tx_bytes -> mask32 p.Port.tx_bytes
  | Rx_util -> p.Port.util_ppm
  | Drops -> mask32 p.Port.drops
  | Queue_bytes_avg -> mask32 (int_of_float p.Port.queue_bytes_avg)
  | Capacity_kbps -> mask32 (p.Port.capacity_bps / 1000)
  | Tx_pkts -> mask32 p.Port.tx_pkts
  | Rx_pkts -> mask32 p.Port.rx_pkts
  | Queue_limit -> mask32 p.Port.queue_limit

let queue_stat t ~port:i ~queue stat =
  let p = port t i in
  if queue < 0 || queue >= Array.length p.Port.queues then None
  else begin
    let q = p.Port.queues.(queue) in
    let open Vaddr.Queue_stat in
    Some
      (match stat with
      | Q_bytes -> mask32 q.Subqueue.q_bytes
      | Q_pkts -> Subqueue.packets q
      | Q_enqueued -> mask32 q.Subqueue.q_enqueued
      | Q_dropped -> mask32 q.Subqueue.q_dropped
      | Q_limit -> mask32 q.Subqueue.q_limit
      | Q_id -> queue)
  end

let configure_queues t ~port:i ~count =
  if count <= 0 then invalid_arg "State.configure_queues: count";
  let p = port t i in
  p.Port.queues <- Array.init count (fun _ -> Subqueue.create ~limit:p.Port.queue_limit);
  p.Port.queue_bytes <- 0

let force_queue_depth t ~port:i ~bytes =
  let p = port t i in
  p.Port.queues.(0).Subqueue.q_bytes <- bytes;
  p.Port.queue_bytes <- bytes

let switch_stat t ~now stat =
  let open Vaddr.Switch_stat in
  match stat with
  | Switch_id -> t.switch_id
  | Version -> mask32 t.version
  | Packets_seen -> mask32 t.packets_seen
  | Bytes_seen -> mask32 t.bytes_seen
  | Drops -> mask32 t.drops
  | Num_ports -> t.num_ports
  | Tpp_execs -> mask32 t.tpp_execs
  | Tpp_faults -> mask32 t.tpp_faults
  | Clock_ns -> mask32 now
  | Tpp_compile_hits -> mask32 t.tpp_compile_hits
  | Tpp_compile_misses -> mask32 t.tpp_compile_misses

let sram_get t i =
  if i < 0 || i >= Vaddr.sram_words then None
  else if Array.length t.sram = 0 then Some 0
  else Some t.sram.(i)

let sram_set t i v =
  if i < 0 || i >= Vaddr.sram_words then false
  else begin
    (sram_array t).(i) <- mask32 v;
    true
  end

let link_sram_index t ~slot ~port =
  if slot < 0 || slot >= Vaddr.link_sram_slots || port < 0 || port >= t.num_ports then
    None
  else begin
    let idx = (slot * t.num_ports) + port in
    if idx >= Vaddr.sram_words then None else Some idx
  end

(* Queue-average smoothing factor: light smoothing so the register tracks
   micro-burst timescales rather than hiding them. *)
let qavg_alpha = 0.25

let update_utilization t ~window_ns =
  if window_ns <= 0 then invalid_arg "State.update_utilization: window";
  (* An unmaterialized port array means no frame ever crossed this
     switch: every register the update would touch is still zero and the
     EWMA of zero is zero, so skipping is observationally identical. *)
  if Array.length t.ports > 0 then
    Array.iter
      (fun p ->
        let bits = float_of_int p.Port.window_rx_bytes *. 8.0 in
        let seconds = float_of_int window_ns /. 1e9 in
        let cap = float_of_int p.Port.capacity_bps in
        let util = if cap <= 0.0 then 0.0 else bits /. (seconds *. cap) in
        p.Port.util_ppm <- int_of_float (util *. 1e6);
        p.Port.window_rx_bytes <- 0;
        p.Port.queue_bytes_avg <-
          p.Port.queue_bytes_avg
          +. (qavg_alpha *. (float_of_int p.Port.queue_bytes -. p.Port.queue_bytes_avg)))
      t.ports
