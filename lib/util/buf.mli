(** Bounds-checked big-endian binary readers and writers.

    The packet serialisation code uses these instead of raw [Bytes]
    accesses so that malformed input raises a single well-defined
    exception instead of corrupting memory or succeeding silently. *)

exception Out_of_bounds of string
(** Raised by any read or write that would fall outside the buffer. *)

(** Sequential writer with automatic growth. *)
module Writer : sig
  type t

  val create : ?capacity:int -> unit -> t

  val length : t -> int
  (** Number of bytes written so far. *)

  val u8 : t -> int -> unit
  val u16 : t -> int -> unit
  val u32 : t -> int32 -> unit

  val u32i : t -> int -> unit
  (** [u32i w v] writes the low 32 bits of the native int [v]. *)

  val bytes : t -> bytes -> unit

  val bytes_sub : t -> bytes -> pos:int -> len:int -> unit
  (** [bytes_sub w b ~pos ~len] appends [len] bytes of [b] starting at
      [pos] without an intermediate copy. *)

  val string : t -> string -> unit

  val zeros : t -> int -> unit
  (** [zeros w n] appends [n] zero bytes. *)

  val contents : t -> bytes
  (** Copy of everything written so far. *)

  val reset : t -> unit
  (** Forgets everything written, keeping the backing storage, so one
      writer can serialise many packets without allocating. *)

  val buffer : t -> bytes
  (** The underlying backing storage (no copy). Only the first
      {!length} bytes are meaningful, and any write to the writer may
      invalidate it — read-only, immediate-use views only (e.g. a
      {!Reader.of_bytes} [~len:(length w)] over it). *)
end

(** Sequential reader over an immutable byte window. *)
module Reader : sig
  type t

  val of_bytes : ?pos:int -> ?len:int -> bytes -> t
  val of_string : string -> t

  val pos : t -> int
  (** Offset of the next byte to be read, relative to the window start. *)

  val remaining : t -> int

  val u8 : t -> int
  val u16 : t -> int
  val u32 : t -> int32

  val u32i : t -> int
  (** Reads 4 bytes as a non-negative native int. *)

  val bytes : t -> int -> bytes
  val skip : t -> int -> unit
end

val get_u32i : bytes -> int -> int
(** [get_u32i b off] reads a big-endian 32-bit word at byte offset [off]
    as a non-negative int. Raises {!Out_of_bounds} when out of range. *)

val set_u32i : bytes -> int -> int -> unit
(** [set_u32i b off v] writes the low 32 bits of [v] big-endian at byte
    offset [off]. Raises {!Out_of_bounds} when out of range. *)
