type graph = {
  n : int;
  adj : (int * int) array array;
  weight : int array;
}

let make_graph ~n ~edges ~weight =
  if Array.length weight <> n then invalid_arg "Partition.make_graph: weight length";
  let deg = Array.make n 0 in
  List.iter
    (fun (u, v, _) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Partition.make_graph: vertex out of range";
      if u <> v then begin
        deg.(u) <- deg.(u) + 1;
        deg.(v) <- deg.(v) + 1
      end)
    edges;
  let adj = Array.init n (fun v -> Array.make deg.(v) (0, 0)) in
  let fill = Array.make n 0 in
  List.iter
    (fun (u, v, w) ->
      if u <> v then begin
        adj.(u).(fill.(u)) <- (v, w);
        fill.(u) <- fill.(u) + 1;
        adj.(v).(fill.(v)) <- (u, w);
        fill.(v) <- fill.(v) + 1
      end)
    edges;
  { n; adj; weight }

let cut_weight g assign =
  let cut = ref 0 in
  for v = 0 to g.n - 1 do
    Array.iter
      (fun (u, w) -> if u > v && assign.(v) <> assign.(u) then cut := !cut + w)
      g.adj.(v)
  done;
  !cut

(* Hop-distance BFS from [src]; [dist] is overwritten. *)
let bfs g src dist =
  Array.fill dist 0 g.n max_int;
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun (v, _) ->
        if dist.(v) = max_int then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v q
        end)
      g.adj.(u)
  done

(* Farthest-point seeds: vertex 0, then repeatedly the vertex with the
   largest hop distance to any chosen seed (unreachable counts as
   infinitely far, which spreads seeds across components). *)
let pick_seeds g parts =
  let seeds = Array.make parts 0 in
  let mind = Array.make g.n max_int in
  let dist = Array.make g.n max_int in
  let taken = Array.make g.n false in
  let absorb s =
    taken.(s) <- true;
    bfs g s dist;
    for v = 0 to g.n - 1 do
      if dist.(v) < mind.(v) then mind.(v) <- dist.(v)
    done
  in
  absorb 0;
  for s = 1 to parts - 1 do
    let best = ref (-1) in
    for v = g.n - 1 downto 0 do
      if (not taken.(v)) && (!best = -1 || mind.(v) >= mind.(!best)) then best := v
    done;
    (* downto scan + [>=] makes the winner the lowest-indexed maximum *)
    seeds.(s) <- !best;
    absorb !best
  done;
  seeds

(* Sum of edge weights from [v] into part [p] under [assign]. *)
let gain g assign v p =
  Array.fold_left
    (fun acc (u, w) -> if assign.(u) = p then acc + w else acc)
    0 g.adj.(v)

let partition g ~parts =
  if parts < 1 then invalid_arg "Partition.partition: parts must be >= 1";
  let n = g.n in
  if n = 0 then [||]
  else if parts = 1 then Array.make n 0
  else if parts >= n then Array.init n (fun i -> i)
  else begin
    let assign = Array.make n (-1) in
    let part_weight = Array.make parts 0 in
    let part_size = Array.make parts 0 in
    let place v p =
      assign.(v) <- p;
      part_weight.(p) <- part_weight.(p) + g.weight.(v);
      part_size.(p) <- part_size.(p) + 1
    in
    let seeds = pick_seeds g parts in
    Array.iteri (fun p s -> place s p) seeds;
    (* Region growing: repeatedly give the lightest part the unassigned
       vertex most connected to it; a part with no frontier defers to
       the next-lightest, and stranded vertices (other components) go to
       the lightest part outright. *)
    let unassigned = ref (n - parts) in
    let order = Array.init parts (fun p -> p) in
    while !unassigned > 0 do
      Array.sort
        (fun a b ->
          let c = compare part_weight.(a) part_weight.(b) in
          if c <> 0 then c else compare a b)
        order;
      let placed = ref false in
      let oi = ref 0 in
      while (not !placed) && !oi < parts do
        let p = order.(!oi) in
        let best = ref (-1) and best_gain = ref 0 in
        for v = n - 1 downto 0 do
          if assign.(v) = -1 then begin
            let gv = gain g assign v p in
            if gv > 0 && gv >= !best_gain then begin
              best := v;
              best_gain := gv
            end
          end
        done;
        if !best >= 0 then begin
          place !best p;
          decr unassigned;
          placed := true
        end
        else incr oi
      done;
      if not !placed then begin
        (* No part touches any unassigned vertex: disconnected leftover. *)
        let v = ref 0 in
        while assign.(!v) <> -1 do incr v done;
        place !v order.(0);
        decr unassigned
      end
    done;
    (* Boundary refinement: move a vertex to the neighboring part it is
       most connected to when that strictly reduces the cut and keeps
       parts balanced and non-empty. *)
    let total = Array.fold_left ( + ) 0 g.weight in
    let max_vw = Array.fold_left max 1 g.weight in
    let cap = (total + parts - 1) / parts + max_vw in
    let improved = ref true in
    let passes = ref 0 in
    while !improved && !passes < 10 do
      improved := false;
      incr passes;
      for v = 0 to n - 1 do
        let cp = assign.(v) in
        if part_size.(cp) > 1 then begin
          let here = gain g assign v cp in
          let best_p = ref cp and best_g = ref here in
          Array.iter
            (fun (u, _) ->
              let q = assign.(u) in
              if q <> cp && q <> !best_p then begin
                let gq = gain g assign v q in
                if
                  gq > !best_g
                  && part_weight.(q) + g.weight.(v) <= cap
                then begin
                  best_p := q;
                  best_g := gq
                end
              end)
            g.adj.(v);
          if !best_p <> cp then begin
            part_weight.(cp) <- part_weight.(cp) - g.weight.(v);
            part_size.(cp) <- part_size.(cp) - 1;
            place v !best_p;
            improved := true
          end
        end
      done
    done;
    assign
  end
