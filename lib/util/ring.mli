(** Growable circular FIFO: [Queue.t] semantics without the per-push
    cons. The backing array doubles when full and is never shrunk, so a
    queue that has reached its working set enqueues and dequeues with
    zero allocation. [dummy] fills vacated slots so dequeued elements
    are not pinned against the GC. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit
(** Append at the tail; amortized O(1), allocates only when growing. *)

val take_opt : 'a t -> 'a option
(** Remove and return the head, oldest first. *)

val take_or : 'a t -> default:'a -> 'a
(** [take_opt] without the option box: returns [default] when empty.
    Callers on per-frame hot paths pass a sentinel they compare
    physically, so a steady-state dequeue allocates nothing. *)

val peek_opt : 'a t -> 'a option

val clear : 'a t -> unit
(** Empties the ring and overwrites every slot with [dummy]. *)

val iter : ('a -> unit) -> 'a t -> unit
(** [iter f t] applies [f] head-to-tail (FIFO order). *)
