(** Deterministic pseudo-random numbers (splitmix64).

    Every workload generator takes an explicit [Rng.t] so that each
    experiment is reproducible from its seed, independent of any global
    state. *)

type t

val create : seed:int -> t

val split : t -> t
(** A new generator whose stream is independent of the parent's. The
    child's state is the parent's full 64-bit output, so split streams
    are identical on every platform. *)

val of_state : int64 -> t
(** A generator with an explicit 64-bit state; lets derived streams
    (e.g. one per network wire) be keyed deterministically. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, by
    rejection sampling, not [mod]-reduced. [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample; used for Poisson arrivals. *)

val pareto : t -> shape:float -> scale:float -> float
(** Heavy-tailed sample; used for flow-size distributions. *)

val bits64 : t -> int64
