exception Out_of_bounds of string

let out_of_bounds what = raise (Out_of_bounds what)

let get_u32i b off =
  if off < 0 || off + 4 > Bytes.length b then out_of_bounds "get_u32i";
  Int32.to_int (Bytes.get_int32_be b off) land 0xFFFF_FFFF

let set_u32i b off v =
  if off < 0 || off + 4 > Bytes.length b then out_of_bounds "set_u32i";
  Bytes.set_int32_be b off (Int32.of_int (v land 0xFFFF_FFFF))

module Writer = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create ?(capacity = 64) () =
    let capacity = max capacity 8 in
    { buf = Bytes.create capacity; len = 0 }

  let length t = t.len

  let ensure t n =
    let needed = t.len + n in
    if needed > Bytes.length t.buf then begin
      let capacity =
        let rec grow c = if c >= needed then c else grow (c * 2) in
        grow (Bytes.length t.buf * 2)
      in
      let buf = Bytes.create capacity in
      Bytes.blit t.buf 0 buf 0 t.len;
      t.buf <- buf
    end

  let u8 t v =
    ensure t 1;
    Bytes.set_uint8 t.buf t.len (v land 0xFF);
    t.len <- t.len + 1

  let u16 t v =
    ensure t 2;
    Bytes.set_uint16_be t.buf t.len (v land 0xFFFF);
    t.len <- t.len + 2

  let u32 t v =
    ensure t 4;
    Bytes.set_int32_be t.buf t.len v;
    t.len <- t.len + 4

  let u32i t v = u32 t (Int32.of_int (v land 0xFFFF_FFFF))

  let bytes t b =
    let n = Bytes.length b in
    ensure t n;
    Bytes.blit b 0 t.buf t.len n;
    t.len <- t.len + n

  let bytes_sub t b ~pos ~len =
    if pos < 0 || len < 0 || pos + len > Bytes.length b then
      out_of_bounds "Writer.bytes_sub";
    ensure t len;
    Bytes.blit b pos t.buf t.len len;
    t.len <- t.len + len

  let string t s =
    let n = String.length s in
    ensure t n;
    Bytes.blit_string s 0 t.buf t.len n;
    t.len <- t.len + n

  let zeros t n =
    ensure t n;
    Bytes.fill t.buf t.len n '\000';
    t.len <- t.len + n

  let contents t = Bytes.sub t.buf 0 t.len

  let reset t = t.len <- 0

  let buffer t = t.buf
end

module Reader = struct
  type t = { buf : bytes; base : int; limit : int; mutable cur : int }

  let of_bytes ?(pos = 0) ?len buf =
    let len = match len with Some l -> l | None -> Bytes.length buf - pos in
    if pos < 0 || len < 0 || pos + len > Bytes.length buf then
      out_of_bounds "Reader.of_bytes";
    { buf; base = pos; limit = pos + len; cur = pos }

  let of_string s = of_bytes (Bytes.of_string s)

  let pos t = t.cur - t.base
  let remaining t = t.limit - t.cur

  let need t n what = if t.cur + n > t.limit then out_of_bounds what

  let u8 t =
    need t 1 "Reader.u8";
    let v = Bytes.get_uint8 t.buf t.cur in
    t.cur <- t.cur + 1;
    v

  let u16 t =
    need t 2 "Reader.u16";
    let v = Bytes.get_uint16_be t.buf t.cur in
    t.cur <- t.cur + 2;
    v

  let u32 t =
    need t 4 "Reader.u32";
    let v = Bytes.get_int32_be t.buf t.cur in
    t.cur <- t.cur + 4;
    v

  let u32i t = Int32.to_int (u32 t) land 0xFFFF_FFFF

  let bytes t n =
    need t n "Reader.bytes";
    let b = Bytes.sub t.buf t.cur n in
    t.cur <- t.cur + n;
    b

  let skip t n =
    need t n "Reader.skip";
    t.cur <- t.cur + n
end
