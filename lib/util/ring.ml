(* Growable circular FIFO over a plain array. Unlike [Queue.t] (a linked
   list that conses a block per [push]), steady-state enqueue/dequeue
   touches only the preallocated array: the dataplane's per-hop queue
   operations allocate nothing once a ring has grown to its working set.
   Vacated slots are overwritten with [dummy] so the ring never pins a
   dequeued element against the GC. *)

type 'a t = {
  mutable buf : 'a array;
  mutable head : int;  (* index of the oldest element *)
  mutable len : int;
  dummy : 'a;
}

let create ?(capacity = 16) ~dummy () =
  let capacity = max capacity 1 in
  { buf = Array.make capacity dummy; head = 0; len = 0; dummy }

let length t = t.len
let is_empty t = t.len = 0

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) t.dummy in
  let tail_run = min t.len (cap - t.head) in
  Array.blit t.buf t.head buf 0 tail_run;
  Array.blit t.buf 0 buf tail_run (t.len - tail_run);
  t.buf <- buf;
  t.head <- 0

let push t x =
  if t.len = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  let slot = t.head + t.len in
  let slot = if slot >= cap then slot - cap else slot in
  Array.unsafe_set t.buf slot x;
  t.len <- t.len + 1

let take_opt t =
  if t.len = 0 then None
  else begin
    let x = Array.unsafe_get t.buf t.head in
    Array.unsafe_set t.buf t.head t.dummy;
    t.head <- (if t.head + 1 = Array.length t.buf then 0 else t.head + 1);
    t.len <- t.len - 1;
    Some x
  end

let take_or t ~default =
  if t.len = 0 then default
  else begin
    let x = Array.unsafe_get t.buf t.head in
    Array.unsafe_set t.buf t.head t.dummy;
    t.head <- (if t.head + 1 = Array.length t.buf then 0 else t.head + 1);
    t.len <- t.len - 1;
    x
  end

let peek_opt t = if t.len = 0 then None else Some (Array.unsafe_get t.buf t.head)

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) t.dummy;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = Array.length t.buf in
  for i = 0 to t.len - 1 do
    let slot = t.head + i in
    let slot = if slot >= cap then slot - cap else slot in
    f (Array.unsafe_get t.buf slot)
  done
