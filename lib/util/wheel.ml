(* Hierarchical timing wheel.

   Twelve levels of 32 slots each, so level L spans bits [5L, 5L+5) of
   the absolute nanosecond timestamp: level 0 resolves single
   nanoseconds, level 11 slots are ~36 simulated seconds wide, and the
   twelve levels together cover bits 0..59. Entries whose timestamp
   differs from the cursor above bit 59 (e.g. [max_int] sentinels) go
   to a heap-backed overflow and pop from there — they never migrate
   back into the wheel.

   Placement is digit-based, not delta-based: an entry lives at the
   highest level where its base-32 digit of *absolute* time differs
   from the cursor's. That makes the slot a pure function of
   (timestamp, cursor prefix), so entries with equal timestamps always
   share one slot — appended in push order — no matter when they were
   pushed relative to cursor movement. A delta-based wheel does not
   have this property (a later push of the same timestamp can land
   nearer the cursor and overtake an earlier one through a cascade),
   and losing it would break the engine's same-timestamp determinism.

   Everything is slab-allocated and intrusive: an entry is a stride-8
   window of one interleaved int array — (time, emit, tie, seq,
   payload, next) live in consecutive cells, so touching an entry costs
   one cache line instead of the six a parallel-arrays layout pays once
   the slab falls out of L2 (at million-host scale it always does). The
   [f_next] cell threads both the free list and the per-slot FIFOs,
   each level keeps a 32-bit occupancy bitmap in one OCaml int, and the
   overflow heap carries slab base offsets. Push, pop and cascade
   therefore allocate nothing.

   Ordering contract (same as {!Heap}): pop in nondecreasing priority;
   among equal priorities, by emission stamp, then canonical tie key,
   then global insertion sequence — across wheel levels, cascades, and
   the overflow. The tie key makes same-(time, stamp) order
   content-addressed rather than push-order-dependent (the engine
   packs event kind, node and port into it), which is what lets a
   sharded run that adopts events from other shards reproduce the
   sequential pop order exactly. Because a later push may carry a
   smaller tie key — or, in sharded runs, a backdated stamp — a slot's
   FIFO is not sorted by the full key, so peek and pop select the
   (emit, tie, seq) minimum by scanning the one slot that holds the
   current timestamp. Slots hold the handful of events sharing one
   nanosecond, so the scan is short; the memoised minimum below keeps
   it to one scan per peek-then-pop pair. *)

let bits = 5
let slots = 1 lsl bits
let slot_mask = slots - 1
let levels = 12
let horizon_bits = bits * levels

(* Interleaved-slab layout: an entry is identified by its base offset
   [s] (a multiple of [stride]); field [f] of entry [s] is
   [slab.(s + f)]. Stride 8 keeps one entry inside a 64-byte line and
   makes the base-offset arithmetic a shift. *)
let stride = 8
let f_time = 0
let f_emit = 1
let f_tie = 2
let f_seq = 3
let f_pay = 4
let f_next = 5

type t = {
  (* entry slab; the [f_next] cell threads both the free list and the
     slot FIFOs *)
  mutable slab : int array;
  mutable free : int;  (* slab free-list head (base offset), -1 = full *)
  (* levels * slots intrusive FIFOs + per-level occupancy bitmaps *)
  heads : int array;
  tails : int array;
  occ : int array;
  mutable cursor : int;  (* all wheel-resident entries have time >= cursor *)
  mutable wlen : int;    (* entries resident in the wheel levels *)
  overflow : int Heap.t; (* slab indices of beyond-horizon entries *)
  mutable next_seq : int;
  (* memoised minimum: pushes can only invalidate it downward, and a pop
     consumes it, so the engine's peek-then-pop costs one scan total *)
  mutable cache_where : int;  (* -1 stale | 0 wheel | 1 overflow *)
  mutable cache_time : int;
  mutable cache_emit : int;
  mutable cache_tie : int;
}

let create () =
  {
    slab = [||];
    free = -1;
    heads = Array.make (levels * slots) (-1);
    tails = Array.make (levels * slots) (-1);
    occ = Array.make levels 0;
    cursor = 0;
    wlen = 0;
    overflow = Heap.create ();
    next_seq = 0;
    cache_where = -1;
    cache_time = 0;
    cache_emit = 0;
    cache_tie = 0;
  }

let length t = t.wlen + Heap.length t.overflow
let is_empty t = t.wlen = 0 && Heap.is_empty t.overflow
let cursor t = t.cursor

(* Lowest-set-bit index of a nonzero 32-bit mask, de Bruijn multiply. *)
let debruijn = 0x077CB531

let lsb_table =
  let tbl = Array.make 32 0 in
  for i = 0 to 31 do
    tbl.((((1 lsl i) * debruijn) land 0xFFFFFFFF) lsr 27) <- i
  done;
  tbl

let[@inline] lowest_bit m =
  Array.unsafe_get lsb_table ((((m land -m) * debruijn) land 0xFFFFFFFF) lsr 27)

let grow t =
  let old = Array.length t.slab in
  let cap = if old = 0 then 64 * stride else 2 * old in
  let b = Array.make cap 0 in
  Array.blit t.slab 0 b 0 old;
  (* Chain the new entries (base offsets old, old+stride, ...) onto the
     free list in address order. *)
  let nxt = ref t.free in
  let s = ref (cap - stride) in
  while !s >= old do
    b.(!s + f_next) <- !nxt;
    nxt := !s;
    s := !s - stride
  done;
  t.slab <- b;
  t.free <- old

let alloc t =
  if t.free < 0 then grow t;
  let s = t.free in
  t.free <- Array.unsafe_get t.slab (s + f_next);
  s

let[@inline] free_entry t s =
  t.slab.(s + f_next) <- t.free;
  t.free <- s

(* (emit, tie, seq) of entry [a] orders before entry [b]'s. Only
   consulted among equal timestamps. *)
let[@inline] key_before t a b =
  let sl = t.slab in
  let ea = Array.unsafe_get sl (a + f_emit)
  and eb = Array.unsafe_get sl (b + f_emit) in
  ea < eb
  || (ea = eb
      &&
      let ta = Array.unsafe_get sl (a + f_tie)
      and tb = Array.unsafe_get sl (b + f_tie) in
      ta < tb
      || (ta = tb
          && Array.unsafe_get sl (a + f_seq) < Array.unsafe_get sl (b + f_seq)))

(* Files entry [s] at the highest level where its time digit differs
   from the cursor's (level 0 when all digits agree, i.e. time=cursor),
   or into the overflow heap beyond the horizon. Pure in (time, cursor),
   which is the determinism argument: equal times always share a slot. *)
let place t s =
  let tm = Array.unsafe_get t.slab (s + f_time) in
  let d = tm lxor t.cursor in
  if d lsr horizon_bits <> 0 then
    Heap.push_keyed t.overflow ~prio:tm ~emitted:t.slab.(s + f_emit)
      ~tie:t.slab.(s + f_tie) s
  else begin
    let lvl = ref 0 in
    let x = ref (d lsr bits) in
    while !x <> 0 do
      incr lvl;
      x := !x lsr bits
    done;
    let lvl = !lvl in
    let digit = (tm lsr (lvl * bits)) land slot_mask in
    let idx = (lvl * slots) + digit in
    t.slab.(s + f_next) <- -1;
    let tl = t.tails.(idx) in
    if tl < 0 then t.heads.(idx) <- s else t.slab.(tl + f_next) <- s;
    t.tails.(idx) <- s;
    t.occ.(lvl) <- t.occ.(lvl) lor (1 lsl digit);
    t.wlen <- t.wlen + 1
  end

(* Required-label variants: applying the optional [~emitted] would box
   the stamp in [Some] at every call site, costing the engine one minor
   allocation per event. *)
let push_keyed t ~prio ~emitted ~tie payload =
  if prio < t.cursor then
    invalid_arg "Wheel.push: priority below the cursor (scheduling in the past)";
  let s = alloc t in
  let sl = t.slab in
  sl.(s + f_time) <- prio;
  sl.(s + f_emit) <- emitted;
  sl.(s + f_tie) <- tie;
  sl.(s + f_seq) <- t.next_seq;
  t.next_seq <- t.next_seq + 1;
  sl.(s + f_pay) <- payload;
  place t s;
  (* A push at or after the cached minimum's (time, emit, tie) can
     never displace it (an equal key loses the sequence tie-break to
     the older entry). *)
  if
    t.cache_where >= 0
    && (prio < t.cache_time
        || (prio = t.cache_time
            && (emitted < t.cache_emit
                || (emitted = t.cache_emit && tie < t.cache_tie))))
  then t.cache_where <- -1

let push_stamped t ~prio ~emitted payload =
  push_keyed t ~prio ~emitted ~tie:0 payload

let push ?(emitted = 0) t ~prio payload = push_stamped t ~prio ~emitted payload

(* (emit, tie, seq)-minimal entry of one slot's FIFO. *)
let slot_min t idx =
  let s = ref t.heads.(idx) in
  let best = ref (-1) in
  while !s >= 0 do
    let sv = !s in
    if !best < 0 || key_before t sv !best then best := sv;
    s := t.slab.(sv + f_next)
  done;
  !best

(* Slab index of the earliest wheel-resident entry, -1 when none.
   Non-mutating: the cursor moves only in [pop], because advancing it
   here would put later same-clock pushes "in the wheel's past".
   Level 0 slots are exact timestamps, so the first occupied slot at or
   after the cursor's digit holds the minimum — selected by the
   (emit, tie, seq) scan, since a slot FIFO is push-ordered, not
   key-ordered. A coarser level's first occupied slot (strictly after
   the cursor's digit — the cursor's own slot was cascaded when the
   cursor entered it) bounds every later slot and level, but mixes
   timestamps, so its FIFO is scanned for the (time, emit, tie, seq)
   minimum. *)
let wheel_min t =
  if t.wlen = 0 then -1
  else begin
    let d0 = t.cursor land slot_mask in
    let m0 = t.occ.(0) land (-1 lsl d0) in
    if m0 <> 0 then slot_min t (lowest_bit m0)
    else begin
      let res = ref (-1) in
      let lvl = ref 1 in
      while !res < 0 && !lvl < levels do
        let l = !lvl in
        let dl = (t.cursor lsr (l * bits)) land slot_mask in
        let ml = t.occ.(l) land (-1 lsl (dl + 1)) in
        (if ml <> 0 then begin
           let s = ref t.heads.((l * slots) + lowest_bit ml) in
           let best = ref (-1) in
           while !s >= 0 do
             let sv = !s in
             (if !best < 0 then best := sv
              else
                let bt = t.slab.(!best + f_time)
                and st = t.slab.(sv + f_time) in
                if st < bt || (st = bt && key_before t sv !best) then
                  best := sv);
             s := t.slab.(sv + f_next)
           done;
           res := !best
         end);
        incr lvl
      done;
      !res
    end
  end

(* pre: not empty. Decides wheel vs overflow by (time, emit, tie, seq). *)
let refresh t =
  let sl = t.slab in
  let wi = wheel_min t in
  if Heap.is_empty t.overflow then begin
    t.cache_where <- 0;
    t.cache_time <- sl.(wi + f_time);
    t.cache_emit <- sl.(wi + f_emit);
    t.cache_tie <- sl.(wi + f_tie)
  end
  else begin
    let oi = Heap.peek_value_or t.overflow ~default:(-1) in
    let ot = sl.(oi + f_time) in
    if wi < 0 then begin
      t.cache_where <- 1;
      t.cache_time <- ot;
      t.cache_emit <- sl.(oi + f_emit);
      t.cache_tie <- sl.(oi + f_tie)
    end
    else begin
      let wt = sl.(wi + f_time) in
      if ot < wt || (ot = wt && key_before t oi wi) then begin
        t.cache_where <- 1;
        t.cache_time <- ot;
        t.cache_emit <- sl.(oi + f_emit);
        t.cache_tie <- sl.(oi + f_tie)
      end
      else begin
        t.cache_where <- 0;
        t.cache_time <- wt;
        t.cache_emit <- sl.(wi + f_emit);
        t.cache_tie <- sl.(wi + f_tie)
      end
    end
  end

let peek_prio_or t ~default =
  if is_empty t then default
  else begin
    if t.cache_where < 0 then refresh t;
    t.cache_time
  end

let peek_prio t = if is_empty t then None else Some (peek_prio_or t ~default:0)

(* Moves the cursor to [tm] (the current minimum), cascading — top level
   first — the one slot per changed level that has rotated under the
   cursor. Re-placement happens against the new cursor, so cascaded
   entries land strictly below their old level, in FIFO order. Slots
   between the old and new digits need no visit: they could only hold
   entries earlier than the minimum, so they are empty. *)
let advance t tm =
  if tm <> t.cursor then begin
    let old = t.cursor in
    t.cursor <- tm;
    for lvl = levels - 1 downto 1 do
      if tm lsr (lvl * bits) <> old lsr (lvl * bits) then begin
        let digit = (tm lsr (lvl * bits)) land slot_mask in
        let idx = (lvl * slots) + digit in
        let s = ref t.heads.(idx) in
        if !s >= 0 then begin
          t.heads.(idx) <- -1;
          t.tails.(idx) <- -1;
          t.occ.(lvl) <- t.occ.(lvl) land lnot (1 lsl digit);
          while !s >= 0 do
            let nxt = t.slab.(!s + f_next) in
            t.wlen <- t.wlen - 1;
            place t !s;
            s := nxt
          done
        end
      end
    done
  end

(* Unlinks and returns the (emit, tie, seq)-minimal entry of slot [idx]
   (level 0). *)
let unlink_min t idx =
  let best = ref t.heads.(idx) in
  let best_prev = ref (-1) in
  let prev = ref t.heads.(idx) in
  let s = ref t.slab.(t.heads.(idx) + f_next) in
  while !s >= 0 do
    let sv = !s in
    if key_before t sv !best then begin
      best := sv;
      best_prev := !prev
    end;
    prev := sv;
    s := t.slab.(sv + f_next)
  done;
  let b = !best in
  let nxt = t.slab.(b + f_next) in
  if !best_prev < 0 then t.heads.(idx) <- nxt
  else t.slab.(!best_prev + f_next) <- nxt;
  if nxt < 0 then t.tails.(idx) <- (if !best_prev < 0 then -1 else !best_prev);
  if t.heads.(idx) < 0 then t.occ.(0) <- t.occ.(0) land lnot (1 lsl idx);
  t.wlen <- t.wlen - 1;
  b

(* pre: not empty. Unlinks and returns the slab index of the minimum. *)
let pop_slab t =
  if t.cache_where < 0 then refresh t;
  let s =
    if t.cache_where = 1 then Heap.pop_value t.overflow ~default:(-1)
    else begin
      let tm = t.cache_time in
      advance t tm;
      (* After the cascade every entry at time [tm] sits in the level-0
         slot of its digit; the scan picks the (emit, tie, seq)
         minimum. *)
      unlink_min t (tm land slot_mask)
    end
  in
  t.cache_where <- -1;
  s

let pop_value t ~default =
  if is_empty t then default
  else begin
    let s = pop_slab t in
    let v = t.slab.(s + f_pay) in
    free_entry t s;
    v
  end

let pop t =
  if is_empty t then None
  else begin
    let s = pop_slab t in
    let prio = t.slab.(s + f_time) and v = t.slab.(s + f_pay) in
    free_entry t s;
    Some (prio, v)
  end

let clear t =
  (* Release the slab like {!Heap.clear} releases its arrays. *)
  t.slab <- [||];
  t.free <- -1;
  Array.fill t.heads 0 (Array.length t.heads) (-1);
  Array.fill t.tails 0 (Array.length t.tails) (-1);
  Array.fill t.occ 0 levels 0;
  t.cursor <- 0;
  t.wlen <- 0;
  t.next_seq <- 0;
  Heap.clear t.overflow;
  t.cache_where <- -1
