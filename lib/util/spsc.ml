(* Vyukov-style unbounded SPSC queue over a singly linked list with a
   stub node. The producer owns [tail] (plain field), the consumer owns
   [head] (plain field); the only shared location is each node's [next],
   which is atomic. Publishing a node with [Atomic.set] releases the
   plain [value] write that precedes it, and the consumer's [Atomic.get]
   acquires it, so no value is ever read before it is fully written. *)

type 'a node = {
  mutable value : 'a option;  (* cleared on pop so the GC can reclaim *)
  next : 'a node option Atomic.t;
}

type 'a t = {
  mutable head : 'a node;  (* consumer-owned: the last consumed (stub) node *)
  mutable tail : 'a node;  (* producer-owned: the last appended node *)
}

let create () =
  let stub = { value = None; next = Atomic.make None } in
  { head = stub; tail = stub }

let push t v =
  let n = { value = Some v; next = Atomic.make None } in
  Atomic.set t.tail.next (Some n);
  t.tail <- n

let pop t =
  match Atomic.get t.head.next with
  | None -> None
  | Some n ->
    let v = n.value in
    n.value <- None;
    t.head <- n;
    v

let drain t =
  let rec go acc =
    match pop t with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []
