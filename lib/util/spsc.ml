(* Bounded lock-free SPSC ring. The producer owns [tail], the consumer
   owns [head]; both are atomics so each side's plain slot writes are
   published to the other (an [Atomic.set] releases the writes that
   precede it, and the other side's [Atomic.get] acquires them):

     - producer: read [head] (acquire: the consumer's slot-clearing
       write is visible, so the slot really is vacant), plain-write the
       slot, release-store [tail];
     - consumer: read [tail] (acquire: the producer's slot write is
       visible), plain-read the slot, clear it, release-store [head].

   Indices increase monotonically and are masked into the slot array
   (capacity is rounded up to a power of two), so full/empty tests are
   plain subtractions with no wraparound ambiguity. Slots are cleared
   to [None] on pop so consumed values are not pinned against the GC.

   Unlike the previous unbounded linked-list queue this ring allocates
   nothing but one [Some] cell per push: the parallel simulator pushes
   a handful of boundary chunks per synchronization window through it,
   not one node per frame. *)

type 'a t = {
  slots : 'a option array;
  mask : int;
  head : int Atomic.t;  (* consumer-owned: next index to pop *)
  tail : int Atomic.t;  (* producer-owned: next index to fill *)
}

exception Full

let create ?(capacity = 8) () =
  if capacity < 1 then invalid_arg "Spsc.create: capacity must be >= 1";
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap None;
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
  }

let capacity t = t.mask + 1

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head)

let try_push t v =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- Some v;
    Atomic.set t.tail (tail + 1);
    true
  end

let push t v = if not (try_push t v) then raise Full

let pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None
  else begin
    let i = head land t.mask in
    let v = t.slots.(i) in
    t.slots.(i) <- None;
    Atomic.set t.head (head + 1);
    v
  end

let drain t =
  let rec go acc =
    match pop t with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []
