type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* The child takes the parent's full 64-bit output as its state: no
   round-trip through [int] (which would drop the top bit and make the
   stream depend on the platform's word size). *)
let split t = { state = bits64 t }

let of_state state = { state }

(* Uniform in [0, bound) by rejection sampling over a 62-bit draw,
   which covers [0, max_int] exactly (native ints are 63-bit, so 2^62
   itself is not representable — all arithmetic below stays in
   [0, max_int]). Draws past the largest multiple of [bound] are
   discarded, so every residue is equally likely. The rejection zone is
   [r = 2^62 mod bound] values wide — a ~bound/2^62 sliver for any sane
   bound, so a redraw is astronomically rare and the stream position is
   in practice identical to the old (modulo-biased) implementation. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = ((max_int mod bound) + 1) mod bound in (* 2^62 mod bound *)
  let rec draw () =
    let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    (* v >= 2^62 - r, without forming 2^62. *)
    if r > 0 && v > max_int - r then draw () else v mod bound
  in
  draw ()

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  (* 53 random bits scaled into [0,1). *)
  v /. 9007199254740992.0 *. bound

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pareto t ~shape ~scale =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  scale /. (u ** (1.0 /. shape))
