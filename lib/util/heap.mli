(** Stable binary min-heap.

    The event queue of the discrete-event simulator. Entries with equal
    priority pop in insertion order, which makes simulations with
    simultaneous events deterministic.

    Internally a structure-of-arrays layout: (priority, sequence) keys
    live in unboxed int arrays, so push/pop allocate nothing, and popped
    slots are overwritten with a sentinel so completed values can be
    collected (the heap never pins values it no longer holds). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> prio:int -> 'a -> unit

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum-priority entry (ties: FIFO). *)

val pop_value : 'a t -> default:'a -> 'a
(** Allocation-free {!pop}: removes the minimum entry and returns its
    value, or [default] when the heap is empty. *)

val peek_prio : 'a t -> int option

val peek_prio_or : 'a t -> default:int -> int
(** Allocation-free {!peek_prio}: [default] when the heap is empty. *)

val clear : 'a t -> unit
(** Empties the heap and releases the backing storage, so previously
    queued values become collectable immediately. *)
