(** Stable binary min-heap.

    The event queue of the discrete-event simulator. Ordering is
    lexicographic (priority, emission stamp, tie key, insertion
    sequence): entries with equal priority pop by earlier [emitted]
    stamp first, then by smaller [tie] key, then in insertion order.
    [emitted] and [tie] default to 0, so callers that never pass them
    get plain FIFO among equal priorities — which makes simulations
    with simultaneous events deterministic.

    The stamp exists for the sharded simulator: an event adopted from
    another shard is pushed long after the local events it must
    interleave with, so insertion order alone cannot reproduce the
    sequential schedule. Stamping every push with the simulation clock
    (and adopted events with their original emission time) makes the
    sub-priority order a pure function of the stamp rather than of
    push timing. The tie key finishes the job: events that collide on
    both time and stamp (arrival-clocked protocols quantise emissions
    to shared serialization lattices) order by a content-derived key —
    the engine packs (event kind, node, port) into it — so their pop
    order is independent of push order too. Insertion sequence remains
    only as a last resort for truly identical keys, which the engine
    guarantees belong to commuting events.

    Internally a structure-of-arrays layout: (priority, emit, tie,
    sequence) keys live in unboxed int arrays, so push/pop allocate
    nothing, and popped slots are overwritten with a sentinel so
    completed values can be collected (the heap never pins values it no
    longer holds). *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : ?emitted:int -> 'a t -> prio:int -> 'a -> unit
(** [push ?emitted t ~prio v] inserts [v]. [emitted] (default 0) is the
    sub-priority stamp; among equal priorities, smaller stamps pop
    first, and equal stamps pop in insertion order. *)

val push_stamped : 'a t -> prio:int -> emitted:int -> 'a -> unit
(** {!push} with a required stamp (tie key 0). Allocation-free:
    applying the optional [~emitted] boxes the stamp in [Some] at the
    call site, so hot paths that always stamp use this instead. *)

val push_keyed : 'a t -> prio:int -> emitted:int -> tie:int -> 'a -> unit
(** {!push_stamped} with the full key: among equal (prio, emitted),
    smaller [tie] pops first. The engine derives [tie] from event
    content so same-instant pop order is push-order-independent. *)

val pop : 'a t -> (int * 'a) option
(** Removes and returns the minimum entry (ties: emission stamp, then
    FIFO). *)

val pop_value : 'a t -> default:'a -> 'a
(** Allocation-free {!pop}: removes the minimum entry and returns its
    value, or [default] when the heap is empty. *)

val peek_prio : 'a t -> int option

val peek_value_or : 'a t -> default:'a -> 'a
(** Value of the minimum entry without removing it, or [default] when
    the heap is empty. Allocation-free for immediate values ({!Wheel}
    uses it to tie-break its overflow against the wheel levels). *)

val peek_prio_or : 'a t -> default:int -> int
(** Allocation-free {!peek_prio}: [default] when the heap is empty. *)

val peek_emit_or : 'a t -> default:int -> int
(** Emission stamp of the minimum entry, or [default] when empty. *)

val clear : 'a t -> unit
(** Empties the heap and releases the backing storage, so previously
    queued values become collectable immediately. *)
