type t = {
  mutable arr : float array;
  mutable len : int;
  mutable sum : float;
  mutable sumsq : float;
  mutable mn : float;
  mutable mx : float;
}

let create () =
  { arr = [||]; len = 0; sum = 0.0; sumsq = 0.0; mn = infinity; mx = neg_infinity }

let add t x =
  if t.len >= Array.length t.arr then begin
    let arr = Array.make (max 16 (2 * Array.length t.arr)) 0.0 in
    Array.blit t.arr 0 arr 0 t.len;
    t.arr <- arr
  end;
  t.arr.(t.len) <- x;
  t.len <- t.len + 1;
  t.sum <- t.sum +. x;
  t.sumsq <- t.sumsq +. (x *. x);
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x

let count t = t.len
let mean t = if t.len = 0 then 0.0 else t.sum /. float_of_int t.len

(* An empty series has no extrema: returning 0.0 would fabricate a
   sample (and silently skew "min latency" style reports), so these
   answer [nan], which poisons any arithmetic built on top of them. *)
let min t = if t.len = 0 then nan else t.mn
let max t = if t.len = 0 then nan else t.mx

let stddev t =
  if t.len < 2 then 0.0
  else begin
    let n = float_of_int t.len in
    let var = (t.sumsq -. (t.sum *. t.sum /. n)) /. (n -. 1.0) in
    if var < 0.0 then 0.0 else sqrt var
  end

let percentile t p =
  if t.len = 0 then nan
  else begin
    let sorted = Array.sub t.arr 0 t.len in
    Array.sort Float.compare sorted;
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.len - 1) (rank - 1)) in
    sorted.(idx)
  end

let samples t = Array.sub t.arr 0 t.len
