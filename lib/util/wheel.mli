(** Hierarchical timing wheel over int priorities and int payloads.

    The fast event queue of the discrete-event engine: O(1) push and
    near-O(1) pop against the binary heap's O(log n), with the same
    ordering contract as {!Heap} — pop in nondecreasing priority; among
    equal priorities, by emission stamp, then canonical tie key, then a
    global insertion sequence — across levels, cascades, and the
    overflow heap, so simulations built on it stay bit-for-bit
    deterministic whether events were pushed locally or adopted from
    another shard. Peek and pop select the key minimum by scanning the
    one slot holding the current timestamp (a handful of same-ns
    events); the memoised minimum keeps that to one scan per
    peek-then-pop pair.

    Twelve levels of 32 slots cover bits 0..59 of the absolute
    nanosecond timestamp (ns resolution near the cursor, ~36 s slots at
    the top); entries beyond that horizon wait in a stable-heap overflow
    and pop from there. Placement is digit-based (the highest base-32
    digit where the time differs from the cursor), which makes an
    entry's slot a pure function of (time, cursor prefix) — the property
    that preserves same-timestamp FIFO order across cursor movement.
    Internals are structure-of-arrays with intrusive slot FIFOs and
    per-level occupancy bitmaps: push, pop and cascade allocate
    nothing.

    Priorities must be nondecreasing with respect to pops: pushing below
    the last popped priority (the cursor) raises [Invalid_argument] —
    exactly the discipline {!Tpp_sim.Engine} already enforces. *)

type t

val create : unit -> t

val length : t -> int
val is_empty : t -> bool

val push : ?emitted:int -> t -> prio:int -> int -> unit
(** Adds an entry. [emitted] (default 0) is the sub-priority stamp:
    among equal priorities, smaller stamps pop first, and equal stamps
    pop in insertion order. Raises [Invalid_argument] when [prio] is
    below the cursor (the priority of the most recent wheel pop). *)

val push_stamped : t -> prio:int -> emitted:int -> int -> unit
(** {!push} with a required stamp (tie key 0). Allocation-free:
    applying the optional [~emitted] boxes the stamp in [Some] at the
    call site, so hot paths that always stamp use this instead. *)

val push_keyed : t -> prio:int -> emitted:int -> tie:int -> int -> unit
(** {!push_stamped} with the full key: among equal (prio, emitted),
    smaller [tie] pops first. The engine derives [tie] from event
    content — (kind, node, port) — so same-instant pop order is
    push-order-independent, the property sharded runs rely on. *)

val pop : t -> (int * int) option
(** Removes and returns the minimum [(prio, payload)] entry (ties:
    emission stamp, then tie key, then FIFO). *)

val pop_value : t -> default:int -> int
(** Allocation-free {!pop}: removes the minimum entry and returns its
    payload, or [default] when the wheel is empty. *)

val peek_prio : t -> int option

val peek_prio_or : t -> default:int -> int
(** Allocation-free {!peek_prio}: [default] when the wheel is empty.
    Peeking never moves the cursor. *)

val cursor : t -> int
(** The wheel's time position (0 initially): advanced by pops served
    from the wheel levels, and the floor for new pushes. Pops served
    from the overflow heap do not move it. Exposed for tests. *)

val clear : t -> unit
(** Empties the wheel and releases the entry slab, so previously queued
    payloads' slots are reclaimed. Resets the cursor to 0. *)

(** {2 Geometry constants} (exposed for tests and docs) *)

val bits : int
(** Bits per level: log2 of the slots per level (5). *)

val levels : int
(** Number of wheel levels (12). *)

val horizon_bits : int
(** [bits * levels] (60): entries whose time differs from the cursor at
    or above this bit live in the overflow heap. *)
