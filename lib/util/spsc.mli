(** Lock-free single-producer / single-consumer bounded ring.

    The inter-shard channel of the parallel simulator: exactly one
    domain may push and exactly one domain may pop. Cross-domain
    visibility is established through the head/tail atomics, so a value
    pushed before a synchronising event (e.g. a barrier) is guaranteed
    poppable after it. FIFO order is preserved.

    The ring is bounded by construction: the simulator's boundary
    protocol keeps at most one chunk in flight per channel per window,
    so a small fixed capacity suffices and a {!Full} push signals a
    protocol violation rather than backpressure. *)

type 'a t

exception Full

val create : ?capacity:int -> unit -> 'a t
(** [capacity] (default 8) is rounded up to a power of two. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Elements currently queued; exact when called from either endpoint,
    a snapshot otherwise. *)

val try_push : 'a t -> 'a -> bool
(** Producer side only. [false] when the ring is full. *)

val push : 'a t -> 'a -> unit
(** Producer side only. Raises {!Full} when the ring is full. *)

val pop : 'a t -> 'a option
(** Consumer side only. [None] when the ring is (momentarily) empty. *)

val drain : 'a t -> 'a list
(** Consumer side only: pops everything currently visible, in FIFO
    order. *)
