(** Lock-free single-producer / single-consumer unbounded queue.

    The inter-shard frame channel of the parallel simulator: exactly one
    domain may push and exactly one domain may pop. Cross-domain
    visibility is established through one atomic link per node, so a
    value pushed before a synchronising event (e.g. a barrier) is
    guaranteed poppable after it. FIFO order is preserved. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> 'a -> unit
(** Producer side only. Never blocks; the queue grows as needed. *)

val pop : 'a t -> 'a option
(** Consumer side only. [None] when the queue is (momentarily) empty. *)

val drain : 'a t -> 'a list
(** Consumer side only: pops everything currently visible, in FIFO
    order. *)
