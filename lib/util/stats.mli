(** Scalar sample statistics and percentiles.

    Experiments accumulate per-packet measurements (queueing delay,
    queue occupancy, rates) here and report means / percentiles. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int
val mean : t -> float
val stddev : t -> float

val min : t -> float
val max : t -> float
(** Extrema of the samples seen so far. [nan] when the series is empty:
    an empty series has no minimum, and 0.0 would silently fabricate
    one. Callers that want a sentinel must supply their own. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]; nearest-rank on a sorted
    copy of the samples. [nan] when empty (see {!min}). *)

val samples : t -> float array
(** Copy of all samples, in insertion order. *)
