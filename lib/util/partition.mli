(** Deterministic balanced graph partitioning (edge-cut minimizing).

    Splits a small weighted graph into [parts] groups of roughly equal
    vertex weight while keeping as few edges as possible between groups.
    Used by the parallel simulator to shard a topology across domains:
    vertices are switches (hosts are contracted into their ToR switch by
    the caller), edge weight is link count, vertex weight approximates
    event load.

    The algorithm is greedy region growing from spread-out seeds
    followed by boundary refinement. It is fully deterministic: ties
    break toward the lowest index, so the same graph always yields the
    same partition. Sizes here are hundreds of vertices, not millions —
    simplicity and determinism beat asymptotics. *)

type graph = {
  n : int;
  adj : (int * int) array array;
      (** [adj.(v)] lists [(neighbor, edge_weight)]; both directions of
          every edge must be present. *)
  weight : int array;  (** per-vertex load estimate, length [n] *)
}

val make_graph : n:int -> edges:(int * int * int) list -> weight:int array -> graph
(** Builds the adjacency representation from an undirected edge list
    [(u, v, w)]. Self-loops are ignored; parallel edges accumulate. *)

val partition : graph -> parts:int -> int array
(** [partition g ~parts] assigns every vertex a part in
    [0 .. parts-1]. With [parts >= n] each vertex gets its own part
    (higher parts stay empty). Raises [Invalid_argument] when
    [parts < 1]. *)

val cut_weight : graph -> int array -> int
(** Total weight of edges whose endpoints land in different parts. *)
