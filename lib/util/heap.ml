(* Structure-of-arrays binary min-heap.

   Keys live in four parallel int arrays — priority, emission stamp,
   canonical tie key, insertion sequence — so push/pop never allocate
   an entry record and comparisons touch unboxed ints only. Values are
   stored as [Obj.t] internally: that lets a vacated slot be
   overwritten with a unit sentinel, so popped values (event closures,
   and the frames they capture) become garbage the moment they leave
   the heap instead of being pinned by the backing array.

   Ordering is lexicographic (prio, emitted, tie, seq). [emitted] and
   [tie] default to 0, making the order plain (prio, insertion) — FIFO
   among equal priorities — for callers that never pass them. Callers
   that stamp every push (the simulation engine stamps its clock, and
   backdates entries adopted from another shard to their original
   emission time) get sub-priority ordering that is a pure function of
   the stamps, not of when the entry happened to be pushed. The [tie]
   key makes same-(prio, emitted) order content-addressed: the engine
   packs (event kind, node, port) into it, so two events that collide
   on both time and emission stamp still pop in an order independent
   of push order — the property the sharded simulator needs to
   reproduce the sequential schedule exactly. *)

type 'a t = {
  mutable prios : int array;
  mutable emits : int array;
  mutable ties : int array;
  mutable seqs : int array;
  mutable values : Obj.t array;
  mutable len : int;
  mutable next_seq : int;
}

let hole = Obj.repr ()

let create () =
  { prios = [||]; emits = [||]; ties = [||]; seqs = [||]; values = [||];
    len = 0; next_seq = 0 }

let length t = t.len
let is_empty t = t.len = 0

(* Entry [i] orders before the (prio, emit, tie, seq) key when its
   priority is smaller, then by earlier emission stamp, then smaller
   tie key, then insertion order. *)
let before t i prio emit tie seq =
  t.prios.(i) < prio
  || (t.prios.(i) = prio
      && (t.emits.(i) < emit
          || (t.emits.(i) = emit
              && (t.ties.(i) < tie
                  || (t.ties.(i) = tie && t.seqs.(i) < seq)))))

let ensure t =
  if t.len >= Array.length t.prios then begin
    let cap = max 8 (2 * Array.length t.prios) in
    let prios = Array.make cap 0 in
    let emits = Array.make cap 0 in
    let ties = Array.make cap 0 in
    let seqs = Array.make cap 0 in
    let values = Array.make cap hole in
    Array.blit t.prios 0 prios 0 t.len;
    Array.blit t.emits 0 emits 0 t.len;
    Array.blit t.ties 0 ties 0 t.len;
    Array.blit t.seqs 0 seqs 0 t.len;
    Array.blit t.values 0 values 0 t.len;
    t.prios <- prios;
    t.emits <- emits;
    t.ties <- ties;
    t.seqs <- seqs;
    t.values <- values
  end

(* The required-label variants exist because applying an optional
   argument as [~emitted:e] boxes it in [Some] at every call site —
   one minor allocation per push, which the engine's hot path cannot
   afford. *)
let push_keyed t ~prio ~emitted ~tie value =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  ensure t;
  (* Sift the hole up from the end, then drop the new entry in. *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if before t parent prio emitted tie seq then continue := false
    else begin
      t.prios.(!i) <- t.prios.(parent);
      t.emits.(!i) <- t.emits.(parent);
      t.ties.(!i) <- t.ties.(parent);
      t.seqs.(!i) <- t.seqs.(parent);
      t.values.(!i) <- t.values.(parent);
      i := parent
    end
  done;
  t.prios.(!i) <- prio;
  t.emits.(!i) <- emitted;
  t.ties.(!i) <- tie;
  t.seqs.(!i) <- seq;
  t.values.(!i) <- Obj.repr value

let push_stamped t ~prio ~emitted value =
  push_keyed t ~prio ~emitted ~tie:0 value

let push ?(emitted = 0) t ~prio value = push_stamped t ~prio ~emitted value

(* Removes the root, re-heapifies, and clears the vacated slot. *)
let remove_top t =
  let last = t.len - 1 in
  t.len <- last;
  if last > 0 then begin
    (* Sift the former last entry down from the root. *)
    let prio = t.prios.(last) and emit = t.emits.(last) in
    let tie = t.ties.(last) and seq = t.seqs.(last) in
    let v = t.values.(last) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      let sp = ref prio and se = ref emit in
      let st = ref tie and ss = ref seq in
      if l < last && before t l !sp !se !st !ss then begin
        smallest := l;
        sp := t.prios.(l);
        se := t.emits.(l);
        st := t.ties.(l);
        ss := t.seqs.(l)
      end;
      if r < last && before t r !sp !se !st !ss then smallest := r;
      if !smallest = !i then continue := false
      else begin
        t.prios.(!i) <- t.prios.(!smallest);
        t.emits.(!i) <- t.emits.(!smallest);
        t.ties.(!i) <- t.ties.(!smallest);
        t.seqs.(!i) <- t.seqs.(!smallest);
        t.values.(!i) <- t.values.(!smallest);
        i := !smallest
      end
    done;
    t.prios.(!i) <- prio;
    t.emits.(!i) <- emit;
    t.ties.(!i) <- tie;
    t.seqs.(!i) <- seq;
    t.values.(!i) <- v
  end;
  t.values.(last) <- hole

let pop t =
  if t.len = 0 then None
  else begin
    let prio = t.prios.(0) in
    let value : 'a = Obj.obj t.values.(0) in
    remove_top t;
    Some (prio, value)
  end

let pop_value t ~default =
  if t.len = 0 then default
  else begin
    let value : 'a = Obj.obj t.values.(0) in
    remove_top t;
    value
  end

let peek_prio t = if t.len = 0 then None else Some t.prios.(0)

let peek_value_or t ~default =
  if t.len = 0 then default
  else begin
    let value : 'a = Obj.obj t.values.(0) in
    value
  end

let peek_prio_or t ~default = if t.len = 0 then default else t.prios.(0)

let peek_emit_or t ~default = if t.len = 0 then default else t.emits.(0)

let clear t =
  (* Drop the backing arrays entirely: a cleared heap must not keep the
     previously queued values (or anything they capture) alive. *)
  t.prios <- [||];
  t.emits <- [||];
  t.ties <- [||];
  t.seqs <- [||];
  t.values <- [||];
  t.len <- 0;
  t.next_seq <- 0
