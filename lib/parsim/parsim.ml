module Time_ns = Tpp_util.Time_ns
module Spsc = Tpp_util.Spsc
module Partition = Tpp_util.Partition
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Frame = Tpp_isa.Frame

(* Stands in for "no cross-shard links": large enough that every window
   reaches the horizon in one round, small enough that window arithmetic
   (min + lookahead) cannot overflow for any plausible horizon. *)
let infinite_lookahead = max_int / 4

module Plan = struct
  type t = {
    shards : int;
    owner : int array;
    lookahead : Time_ns.span;
    cut_links : int;
    shard_weight : int array;
  }

  let make net ~shards =
    if shards < 1 then invalid_arg "Parsim.Plan.make: shards must be >= 1";
    let n = Net.node_count net in
    let owner = Array.make n 0 in
    let switch_ids = List.map fst (Net.switches net) in
    (* Vertices are switches; a switchless net partitions hosts directly. *)
    let verts = match switch_ids with [] -> List.init n Fun.id | ids -> ids in
    let nv = List.length verts in
    let vidx = Array.make n (-1) in
    List.iteri (fun i id -> vidx.(id) <- i) verts;
    let weight = Array.make nv 1 in
    (* Pin each host to the switch behind its (single) access link; its
       traffic load lands on that vertex so the balance accounts for it. *)
    let anchor = Array.make n (-1) in
    List.iter
      (fun h ->
        let id = h.Net.node_id in
        if vidx.(id) < 0 then
          match Net.neighbors net id with
          | (_, peer, _) :: _ when vidx.(peer) >= 0 ->
            anchor.(id) <- peer;
            weight.(vidx.(peer)) <- weight.(vidx.(peer)) + 2
          | _ -> ())
      (Net.hosts net);
    let edges = ref [] in
    List.iter
      (fun v ->
        List.iter
          (fun (_, peer, _) ->
            if vidx.(peer) >= 0 && peer > v then
              edges := (vidx.(v), vidx.(peer), 1) :: !edges)
          (Net.neighbors net v))
      verts;
    let g = Partition.make_graph ~n:nv ~edges:!edges ~weight in
    let assign = Partition.partition g ~parts:shards in
    List.iter (fun v -> owner.(v) <- assign.(vidx.(v))) verts;
    for id = 0 to n - 1 do
      if vidx.(id) < 0 then
        owner.(id) <- (if anchor.(id) >= 0 then owner.(anchor.(id)) else 0)
    done;
    (* Lookahead and cut size over every link in the full node graph
       (host links never cross: hosts inherit their switch's shard). *)
    let lookahead = ref infinite_lookahead in
    let cut = ref 0 in
    for id = 0 to n - 1 do
      List.iter
        (fun (port, peer, _) ->
          if peer > id && owner.(id) <> owner.(peer) then begin
            incr cut;
            let d = Net.link_delay net (id, port) in
            if d < !lookahead then lookahead := d
          end)
        (Net.neighbors net id)
    done;
    if !lookahead <= 0 then
      invalid_arg "Parsim.Plan.make: zero-delay link crosses shards (no lookahead)";
    let shard_weight = Array.make shards 0 in
    List.iter
      (fun v ->
        let s = assign.(vidx.(v)) in
        shard_weight.(s) <- shard_weight.(s) + weight.(vidx.(v)))
      verts;
    { shards; owner; lookahead = !lookahead; cut_links = !cut; shard_weight }
end

(* Reusable phase-counting barrier, hybrid spin-then-block. When every
   shard can hold a core, a short spin on the phase word catches the
   release without a condvar round-trip (microseconds matter: a window
   is two barriers and fine-grained topologies run thousands of
   windows). On an oversubscribed machine spinning only steals cycles
   from the shard still working, so waiters go straight to the
   condvar and yield. *)
module Barrier = struct
  exception Poisoned

  type t = {
    m : Mutex.t;
    c : Condition.t;
    total : int;
    mutable waiting : int;  (* guarded by [m] *)
    phase : int Atomic.t;
    poisoned : bool Atomic.t;
    spin : int;  (* iterations to spin before blocking; 0 when oversubscribed *)
  }

  let create total =
    {
      m = Mutex.create ();
      c = Condition.create ();
      total;
      waiting = 0;
      phase = Atomic.make 0;
      poisoned = Atomic.make false;
      spin = (if Domain.recommended_domain_count () >= total then 2048 else 0);
    }

  let await b =
    if Atomic.get b.poisoned then raise Poisoned;
    let ph = Atomic.get b.phase in
    Mutex.lock b.m;
    b.waiting <- b.waiting + 1;
    if b.waiting = b.total then begin
      b.waiting <- 0;
      Atomic.incr b.phase;
      Condition.broadcast b.c;
      Mutex.unlock b.m
    end
    else begin
      Mutex.unlock b.m;
      let spins = ref 0 in
      while
        Atomic.get b.phase = ph
        && (not (Atomic.get b.poisoned))
        && !spins < b.spin
      do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.phase = ph && not (Atomic.get b.poisoned) then begin
        Mutex.lock b.m;
        (* Re-check under the lock: the releaser broadcasts while
           holding it, so a waiter can never miss the wakeup. *)
        while Atomic.get b.phase = ph && not (Atomic.get b.poisoned) do
          Condition.wait b.c b.m
        done;
        Mutex.unlock b.m
      end
    end;
    if Atomic.get b.poisoned then raise Poisoned

  (* Unblocks every current and future waiter; called when a shard dies
     so the others do not deadlock at the next barrier. *)
  let poison b =
    Mutex.lock b.m;
    Atomic.set b.poisoned true;
    Condition.broadcast b.c;
    Mutex.unlock b.m
end

type stats = {
  shards : int;
  events : int;
  delivered : int;
  rounds : int;
  messages : int;
  cut_links : int;
  lookahead : Time_ns.span;
  shard_events : int array;
}

(* One frame in flight between shards. [emitted] is the emitting
   shard's clock at transmission end: the receiver backdates the
   delivery's tie-break stamp to it, so an adopted frame orders against
   same-nanosecond local arrivals exactly as in the sequential run
   (where its push happened at emission time, not at inbox-drain time).
   [seq] is the producer-side emission counter: with the producing
   shard's index it gives any remaining ties a total, run-independent
   merge order. *)
type msg = {
  arrival : Time_ns.t;
  emitted : Time_ns.t;
  src_shard : int;
  seq : int;
  dst : int * int;
  frame : Frame.t;
}

let compare_msg a b =
  let c = compare a.arrival b.arrival in
  if c <> 0 then c
  else
    let c = compare a.emitted b.emitted in
    if c <> 0 then c
    else
      let c = compare a.src_shard b.src_shard in
      if c <> 0 then c else compare a.seq b.seq

let run ?scheduler ~shards ~until ~build ~setup ~collect () =
  if shards < 1 then invalid_arg "Parsim.run: shards must be >= 1";
  if until < 0 then invalid_arg "Parsim.run: until";
  let plan = Plan.make (build (Engine.create ?scheduler ())) ~shards in
  let owner = plan.Plan.owner in
  let lookahead = plan.Plan.lookahead in
  (* chans.(src).(dst): single producer (src domain), single consumer. *)
  let chans =
    Array.init shards (fun _ -> Array.init shards (fun _ -> Spsc.create ()))
  in
  (* Earliest pending event per shard, republished every round. Written
     before and read after a barrier, so plain visibility would suffice;
     atomics keep the invariant obvious. *)
  let mins = Array.init shards (fun _ -> Atomic.make 0) in
  let barrier = Barrier.create shards in
  let shard_body my () =
    let eng = Engine.create ?scheduler () in
    let net = build eng in
    let seq = ref 0 in
    let emitted = ref 0 in
    Net.set_sharding net ~owner ~shard:my
      ~emit:(fun ~arrival ~emitted:stamp ~dst frame ->
        incr seq;
        incr emitted;
        Spsc.push
          chans.(my).(Array.unsafe_get owner (fst dst))
          { arrival; emitted = stamp; src_shard = my; seq = !seq; dst; frame });
    let owns id = Array.unsafe_get owner id = my in
    setup ~shard:my ~owns net;
    let rounds = ref 0 in
    let running = ref true in
    while !running do
      (* Inbox drain: everything emitted before the previous barrier is
         visible now. Merge simultaneous arrivals deterministically so
         heap insertion order (the tie-break) is run-independent. *)
      let inbox = ref [] in
      for src = 0 to shards - 1 do
        if src <> my then
          List.iter
            (fun m -> inbox := m :: !inbox)
            (Spsc.drain chans.(src).(my))
      done;
      List.iter
        (fun m ->
          Net.schedule_delivery ~emitted:m.emitted net ~arrival:m.arrival
            ~dst:m.dst m.frame)
        (List.sort compare_msg !inbox);
      let local_min =
        match Engine.next_event_time eng with Some tm -> tm | None -> max_int
      in
      Atomic.set mins.(my) local_min;
      Barrier.await barrier;
      (* Every shard folds the same published values: identical window. *)
      let gmin =
        Array.fold_left (fun acc a -> min acc (Atomic.get a)) max_int mins
      in
      if gmin > until then begin
        (* Nothing left inside the horizon anywhere (inboxes are empty:
           drained above, and the barrier made all emissions visible).
           Advance the clock to the horizon, as the sequential engine
           does, and stop — all shards take this branch together. *)
        Engine.run eng ~until;
        running := false
      end
      else begin
        incr rounds;
        (* Safe window [gmin, gmin + lookahead): any frame a shard emits
           while executing it arrives at >= gmin + lookahead, i.e. never
           inside a window anyone is still executing. Timestamps are
           integer ns, so "events < gmin + lookahead" is exactly
           "run ~until:(gmin + lookahead - 1)". *)
        let win_end =
          if gmin > until - lookahead then until else gmin + lookahead - 1
        in
        Engine.run eng ~until:win_end;
        (* Emissions of this round must be globally visible before any
           shard drains its inbox for the next one. *)
        Barrier.await barrier
      end
    done;
    let collected = collect ~shard:my ~owns net in
    ( Engine.events_processed eng,
      Net.frames_delivered net,
      !emitted,
      !rounds,
      collected )
  in
  let domains =
    Array.init shards (fun i ->
        Domain.spawn (fun () ->
            try shard_body i ()
            with e ->
              Barrier.poison barrier;
              raise e))
  in
  let outcomes =
    Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains
  in
  Array.iter
    (function
      | Error Barrier.Poisoned -> ()  (* secondary casualty; real error below *)
      | Error e -> raise e
      | Ok _ -> ())
    outcomes;
  let results =
    Array.map
      (function
        | Ok r -> r
        | Error _ -> raise Barrier.Poisoned)
      outcomes
  in
  let shard_events = Array.map (fun (e, _, _, _, _) -> e) results in
  let stats =
    {
      shards;
      events = Array.fold_left (fun a (e, _, _, _, _) -> a + e) 0 results;
      delivered = Array.fold_left (fun a (_, d, _, _, _) -> a + d) 0 results;
      rounds = (match results.(0) with _, _, _, r, _ -> r);
      messages = Array.fold_left (fun a (_, _, m, _, _) -> a + m) 0 results;
      cut_links = plan.Plan.cut_links;
      lookahead;
      shard_events;
    }
  in
  (stats, Array.map (fun (_, _, _, _, c) -> c) results)
