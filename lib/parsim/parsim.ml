module Time_ns = Tpp_util.Time_ns
module Spsc = Tpp_util.Spsc
module Partition = Tpp_util.Partition
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Frame = Tpp_isa.Frame
module Meta = Tpp_isa.Meta

(* Stands in for "no cross-shard links": large enough that every window
   reaches the horizon in one round, small enough that window arithmetic
   (saturating min + lookahead) cannot overflow for any plausible
   horizon. *)
let infinite_lookahead = max_int / 4

(* [sat_add t d] for window arithmetic: [t] can be [max_int] (idle
   shard), so a plain add would wrap. *)
let[@inline] sat_add t d = if t >= max_int - d then max_int else t + d

module Plan = struct
  type t = {
    shards : int;
    owner : int array;
    lookahead : Time_ns.span;
    shard_lookahead : Time_ns.span array;
    cut_links : int;
    shard_weight : int array;
  }

  let make net ~shards =
    if shards < 1 then invalid_arg "Parsim.Plan.make: shards must be >= 1";
    let n = Net.node_count net in
    let owner = Array.make n 0 in
    let switch_ids = List.map fst (Net.switches net) in
    (* Vertices are switches; a switchless net partitions hosts directly. *)
    let verts = match switch_ids with [] -> List.init n Fun.id | ids -> ids in
    let nv = List.length verts in
    let vidx = Array.make n (-1) in
    List.iteri (fun i id -> vidx.(id) <- i) verts;
    let weight = Array.make nv 1 in
    (* Pin each host to the switch behind its (single) access link; its
       traffic load lands on that vertex so the balance accounts for it. *)
    let anchor = Array.make n (-1) in
    List.iter
      (fun h ->
        let id = h.Net.node_id in
        if vidx.(id) < 0 then
          Net.iter_ports net id (fun ~port:_ ~peer ~peer_port:_ ->
              if anchor.(id) < 0 && vidx.(peer) >= 0 then begin
                anchor.(id) <- peer;
                weight.(vidx.(peer)) <- weight.(vidx.(peer)) + 2
              end))
      (Net.hosts net);
    let edges = ref [] in
    List.iter
      (fun v ->
        Net.iter_ports net v (fun ~port:_ ~peer ~peer_port:_ ->
            if vidx.(peer) >= 0 && peer > v then
              edges := (vidx.(v), vidx.(peer), 1) :: !edges))
      verts;
    let g = Partition.make_graph ~n:nv ~edges:!edges ~weight in
    let assign = Partition.partition g ~parts:shards in
    List.iter (fun v -> owner.(v) <- assign.(vidx.(v))) verts;
    for id = 0 to n - 1 do
      if vidx.(id) < 0 then
        owner.(id) <- (if anchor.(id) >= 0 then owner.(anchor.(id)) else 0)
    done;
    (* Lookahead over every directed cut link: [shard_lookahead.(s)] is
       the smallest propagation delay of a link leaving shard [s], i.e.
       the earliest any emission of [s] can land on another shard. The
       global [lookahead] (the min over shards) remains the static
       conservative bound; the adaptive window rule in [run] uses the
       per-shard values. Host links never cross: hosts inherit their
       switch's shard. *)
    let lookahead = ref infinite_lookahead in
    let shard_lookahead = Array.make shards infinite_lookahead in
    let cut = ref 0 in
    Net.iter_links net (fun ~node:id ~port:_ ~peer ~peer_port:_ ~bps:_ ~delay:d ->
        if owner.(id) <> owner.(peer) then begin
          if peer > id then incr cut;
          if d < !lookahead then lookahead := d;
          let s = owner.(id) in
          if d < shard_lookahead.(s) then shard_lookahead.(s) <- d
        end);
    if !lookahead <= 0 then
      invalid_arg "Parsim.Plan.make: zero-delay link crosses shards (no lookahead)";
    let shard_weight = Array.make shards 0 in
    List.iter
      (fun v ->
        let s = assign.(vidx.(v)) in
        shard_weight.(s) <- shard_weight.(s) + weight.(vidx.(v)))
      verts;
    {
      shards;
      owner;
      lookahead = !lookahead;
      shard_lookahead;
      cut_links = !cut;
      shard_weight;
    }
end

(* Reusable phase-counting barrier, hybrid spin-then-block. When every
   shard can hold a core, a short spin on the phase word catches the
   release without a condvar round-trip (microseconds matter: a window
   is two barriers and fine-grained topologies run thousands of
   windows). On an oversubscribed machine spinning only steals cycles
   from the shard still working, so waiters go straight to the
   condvar and yield.

   The spin-vs-block decision is taken once at [create], not per
   [await] cohort, and that is safe: it depends only on
   [Domain.recommended_domain_count ()] — a static property of the
   machine, constant for the process lifetime — and on [total], fixed
   at creation. No later [await] could ever decide differently, so
   re-evaluating per cohort would buy nothing and cost an extra load
   on every pass. [?spin] overrides the heuristic (tests use it to
   force the spin path on machines where the default would be 0). *)
module Barrier = struct
  exception Poisoned

  type t = {
    m : Mutex.t;
    c : Condition.t;
    total : int;
    mutable waiting : int;  (* guarded by [m] *)
    phase : int Atomic.t;
    poisoned : bool Atomic.t;
    spin : int;  (* iterations to spin before blocking; 0 when oversubscribed *)
  }

  let create ?spin total =
    {
      m = Mutex.create ();
      c = Condition.create ();
      total;
      waiting = 0;
      phase = Atomic.make 0;
      poisoned = Atomic.make false;
      spin =
        (match spin with
        | Some s -> s
        | None ->
          if Domain.recommended_domain_count () >= total then 2048 else 0);
    }

  let await b =
    if Atomic.get b.poisoned then raise Poisoned;
    let ph = Atomic.get b.phase in
    Mutex.lock b.m;
    b.waiting <- b.waiting + 1;
    if b.waiting = b.total then begin
      b.waiting <- 0;
      Atomic.incr b.phase;
      Condition.broadcast b.c;
      Mutex.unlock b.m
    end
    else begin
      Mutex.unlock b.m;
      let spins = ref 0 in
      while
        Atomic.get b.phase = ph
        && (not (Atomic.get b.poisoned))
        && !spins < b.spin
      do
        incr spins;
        Domain.cpu_relax ()
      done;
      if Atomic.get b.phase = ph && not (Atomic.get b.poisoned) then begin
        Mutex.lock b.m;
        (* Re-check under the lock: the releaser broadcasts while
           holding it, so a waiter can never miss the wakeup. *)
        while Atomic.get b.phase = ph && not (Atomic.get b.poisoned) do
          Condition.wait b.c b.m
        done;
        Mutex.unlock b.m
      end
    end;
    if Atomic.get b.poisoned then raise Poisoned

  (* Unblocks every current and future waiter — spinners observe the
     flag on their next iteration, blockers are broadcast awake; called
     when a shard dies so the others do not deadlock at the next
     barrier. *)
  let poison b =
    Mutex.lock b.m;
    Atomic.set b.poisoned true;
    Condition.broadcast b.c;
    Mutex.unlock b.m
end

(* The canonical merge order of cross-boundary messages: (arrival,
   emission stamp, producing shard, producer sequence number). The
   first two reproduce the sequential engine's primary tie-break
   (every delivery is backdated to its emission time); the last two
   give any remaining ties a total, run-independent order — (src, seq)
   pairs are unique. Messages still tied after (arrival, emitted) are
   deliveries to *distinct* (node, port) destinations — one link
   cannot complete two frames in the same nanosecond — so the engine's
   content-derived tie key orders them identically to the sequential
   run no matter which order this merge inserts them; the (src, seq)
   tail only pins the insertion sequence itself. *)
let compare_msg (a_arr, a_emit, a_src, a_seq) (b_arr, b_emit, b_src, b_seq) =
  let c = compare (a_arr : int) b_arr in
  if c <> 0 then c
  else
    let c = compare (a_emit : int) b_emit in
    if c <> 0 then c
    else
      let c = compare (a_src : int) b_src in
      if c <> 0 then c else compare (a_seq : int) b_seq

(* Flat boundary chunks: all the frames one shard emits toward another
   during one window, batched into a single reusable byte buffer. One
   record per message — fixed 48-byte header, then the frame's wire
   image:

     offset  field        size
        0    arrival      8  (absolute ns)
        8    emitted      8  (emitter clock at transmission end)
       16    seq          8  (producer emission counter)
       24    frame id     8  (tracing identity survives the boundary)
       32    dst node     4
       36    dst port     4
       40    hop count    4  (the one Meta field that crosses switches)
       44    wire length  4
       48    wire bytes   ...

   The producer appends with [Frame.blit_wire] (then recycles its
   frame locally); the consumer decodes in place and materializes each
   frame from its own pool. The chunk itself travels through a bounded
   {!Spsc} ring and is returned through a second ring for reuse, so a
   steady-state boundary crossing allocates nothing on either side. *)
module Boundary = struct
  let header_bytes = 48

  type chunk = {
    mutable cbuf : bytes;
    mutable clen : int;  (* bytes used *)
    mutable count : int;  (* messages encoded *)
  }

  let chunk ?(capacity = 4096) () =
    { cbuf = Bytes.create (max 64 capacity); clen = 0; count = 0 }

  let count c = c.count
  let byte_size c = c.clen

  let reset c =
    c.clen <- 0;
    c.count <- 0

  let ensure c extra =
    let need = c.clen + extra in
    if Bytes.length c.cbuf < need then begin
      let cap = ref (Bytes.length c.cbuf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit c.cbuf 0 b 0 c.clen;
      c.cbuf <- b
    end

  let append c ~arrival ~emitted ~seq ~dst frame =
    let wire = frame.Frame.len in
    ensure c (header_bytes + wire);
    let b = c.cbuf and o = c.clen in
    Bytes.set_int64_be b o (Int64.of_int arrival);
    Bytes.set_int64_be b (o + 8) (Int64.of_int emitted);
    Bytes.set_int64_be b (o + 16) (Int64.of_int seq);
    Bytes.set_int64_be b (o + 24) (Int64.of_int frame.Frame.id);
    Bytes.set_int32_be b (o + 32) (Int32.of_int (fst dst));
    Bytes.set_int32_be b (o + 36) (Int32.of_int (snd dst));
    Bytes.set_int32_be b (o + 40) (Int32.of_int frame.Frame.meta.Meta.hop_count);
    Bytes.set_int32_be b (o + 44) (Int32.of_int wire);
    let n = Frame.blit_wire frame b ~pos:(o + header_bytes) in
    c.clen <- o + header_bytes + n;
    c.count <- c.count + 1

  let decode c ~pool f =
    let b = c.cbuf in
    let o = ref 0 in
    for _ = 1 to c.count do
      let off = !o in
      let arrival = Int64.to_int (Bytes.get_int64_be b off) in
      let emitted = Int64.to_int (Bytes.get_int64_be b (off + 8)) in
      let seq = Int64.to_int (Bytes.get_int64_be b (off + 16)) in
      let id = Int64.to_int (Bytes.get_int64_be b (off + 24)) in
      let dst_node = Int32.to_int (Bytes.get_int32_be b (off + 32)) in
      let dst_port = Int32.to_int (Bytes.get_int32_be b (off + 36)) in
      let hop_count = Int32.to_int (Bytes.get_int32_be b (off + 40)) in
      let wire = Int32.to_int (Bytes.get_int32_be b (off + 44)) in
      let frame =
        Frame.materialize ~pool ~id ~hop_count b ~pos:(off + header_bytes)
          ~len:wire
      in
      f ~arrival ~emitted ~seq ~dst_node ~dst_port frame;
      o := off + header_bytes + wire
    done
end

(* Preallocated structure-of-arrays scratch for the per-round inbox
   merge: decoded messages land in parallel columns, a permutation
   array is sorted in place by {!compare_msg}'s key, and the messages
   are scheduled in that order. Replaces consing a list per round and
   [List.sort]ing it — the steady-state merge allocates nothing. *)
module Inbox = struct
  type t = {
    mutable arrival : int array;
    mutable emitted : int array;
    mutable src : int array;
    mutable seq : int array;
    mutable dst_node : int array;
    mutable dst_port : int array;
    mutable frames : Frame.t array;
    mutable order : int array;  (* sorted permutation of [0, n) *)
    mutable n : int;
    dummy : Frame.t;  (* slot filler so cleared frames are unpinned *)
  }

  let create () =
    let dummy = Frame.placeholder () in
    {
      arrival = [||];
      emitted = [||];
      src = [||];
      seq = [||];
      dst_node = [||];
      dst_port = [||];
      frames = [||];
      order = [||];
      n = 0;
      dummy;
    }

  let length t = t.n

  let grow t =
    let cap = max 16 (2 * Array.length t.arrival) in
    let gi a =
      let b = Array.make cap 0 in
      Array.blit a 0 b 0 t.n;
      b
    in
    t.arrival <- gi t.arrival;
    t.emitted <- gi t.emitted;
    t.src <- gi t.src;
    t.seq <- gi t.seq;
    t.dst_node <- gi t.dst_node;
    t.dst_port <- gi t.dst_port;
    let fr = Array.make cap t.dummy in
    Array.blit t.frames 0 fr 0 t.n;
    t.frames <- fr;
    t.order <- Array.make cap 0

  let add t ~arrival ~emitted ~src_shard ~seq ~dst_node ~dst_port frame =
    if t.n = Array.length t.arrival then grow t;
    let i = t.n in
    t.arrival.(i) <- arrival;
    t.emitted.(i) <- emitted;
    t.src.(i) <- src_shard;
    t.seq.(i) <- seq;
    t.dst_node.(i) <- dst_node;
    t.dst_port.(i) <- dst_port;
    t.frames.(i) <- frame;
    t.n <- i + 1

  (* Strict (arrival, emitted, src, seq) order between row indices;
     total because (src, seq) pairs are unique. *)
  let[@inline] less t i j =
    let c = compare t.arrival.(i) t.arrival.(j) in
    if c <> 0 then c < 0
    else
      let c = compare t.emitted.(i) t.emitted.(j) in
      if c <> 0 then c < 0
      else
        let c = compare t.src.(i) t.src.(j) in
        if c <> 0 then c < 0 else t.seq.(i) < t.seq.(j)

  (* In-place quicksort of the permutation, insertion sort below a
     small threshold, middle-element pivot. The comparison is a total
     order, so the result is unique — determinism does not depend on
     the sort being stable. *)
  let sort t =
    let o = t.order in
    for i = 0 to t.n - 1 do
      o.(i) <- i
    done;
    let rec qsort lo hi =
      if hi - lo < 12 then
        for i = lo + 1 to hi do
          let v = o.(i) in
          let j = ref (i - 1) in
          while !j >= lo && less t v o.(!j) do
            o.(!j + 1) <- o.(!j);
            decr j
          done;
          o.(!j + 1) <- v
        done
      else begin
        let pivot = o.((lo + hi) / 2) in
        let i = ref lo and j = ref hi in
        while !i <= !j do
          while less t o.(!i) pivot do
            incr i
          done;
          while less t pivot o.(!j) do
            decr j
          done;
          if !i <= !j then begin
            let tmp = o.(!i) in
            o.(!i) <- o.(!j);
            o.(!j) <- tmp;
            incr i;
            decr j
          end
        done;
        qsort lo !j;
        qsort !i hi
      end
    in
    if t.n > 1 then qsort 0 (t.n - 1)

  let iter_sorted t f =
    for k = 0 to t.n - 1 do
      let i = t.order.(k) in
      f ~arrival:t.arrival.(i) ~emitted:t.emitted.(i) ~src_shard:t.src.(i)
        ~seq:t.seq.(i) ~dst_node:t.dst_node.(i) ~dst_port:t.dst_port.(i)
        t.frames.(i)
    done

  let clear t =
    for i = 0 to t.n - 1 do
      t.frames.(i) <- t.dummy
    done;
    t.n <- 0
end

type stats = {
  shards : int;
  events : int;
  delivered : int;
  rounds : int;
  messages : int;
  chunks : int;
  cut_links : int;
  lookahead : Time_ns.span;
  shard_events : int array;
  boundary_outstanding : int;
}

(* One directed inter-shard channel. [pending] carries published
   chunks producer -> consumer (at most one per window by protocol, so
   a [Spsc.Full] is a bug, not backpressure); [free] returns decoded
   chunks for reuse (best-effort: a chunk that finds the return ring
   full is simply dropped to the GC). [open_chunk] is producer-local
   state: the chunk accumulating this window's emissions. *)
type chan = {
  pending : Boundary.chunk Spsc.t;
  free : Boundary.chunk Spsc.t;
  mutable open_chunk : Boundary.chunk option;
}

let run ?scheduler ~shards ~until ~build ~setup ~collect () =
  if shards < 1 then invalid_arg "Parsim.run: shards must be >= 1";
  if until < 0 then invalid_arg "Parsim.run: until";
  let plan = Plan.make (build (Engine.create ?scheduler ())) ~shards in
  let owner = plan.Plan.owner in
  let shard_lookahead = plan.Plan.shard_lookahead in
  (* chans.(src).(dst): single producer (src domain), single consumer. *)
  let chans =
    Array.init shards (fun _ ->
        Array.init shards (fun _ ->
            {
              pending = Spsc.create ~capacity:4 ();
              free = Spsc.create ~capacity:4 ();
              open_chunk = None;
            }))
  in
  (* Earliest pending event per shard, republished every round. Written
     before and read after a barrier, so plain visibility would suffice;
     atomics keep the invariant obvious. *)
  let mins = Array.init shards (fun _ -> Atomic.make 0) in
  let barrier = Barrier.create shards in
  let shard_body my () =
    let eng = Engine.create ?scheduler () in
    let net = build eng in
    (* Frames arriving over a boundary are rebuilt from this shard's
       own pool, so they recycle on delivery/drop like local traffic —
       the receiver-side half of the cross-domain leak fix. *)
    let bpool = Frame.Pool.create () in
    let inbox = Inbox.create () in
    let out = chans.(my) in
    let seq = ref 0 in
    let emitted = ref 0 in
    let chunks_sent = ref 0 in
    Net.set_sharding net ~owner ~shard:my
      ~emit:(fun ~arrival ~emitted:stamp ~dst frame ->
        incr seq;
        incr emitted;
        let ch = out.(Array.unsafe_get owner (fst dst)) in
        let c =
          match ch.open_chunk with
          | Some c -> c
          | None ->
            let c =
              match Spsc.pop ch.free with
              | Some c ->
                Boundary.reset c;
                c
              | None -> Boundary.chunk ()
            in
            ch.open_chunk <- Some c;
            c
        in
        Boundary.append c ~arrival ~emitted:stamp ~seq:!seq ~dst frame);
    let publish_open_chunks () =
      for dst = 0 to shards - 1 do
        let ch = out.(dst) in
        match ch.open_chunk with
        | None -> ()
        | Some c ->
          ch.open_chunk <- None;
          incr chunks_sent;
          Spsc.push ch.pending c
      done
    in
    let owns id = Array.unsafe_get owner id = my in
    setup ~shard:my ~owns net;
    let rounds = ref 0 in
    let running = ref true in
    (* Hoisted decode callback: [cur_src] names the channel being
       drained so one closure serves every chunk. *)
    let cur_src = ref 0 in
    let on_msg ~arrival ~emitted ~seq ~dst_node ~dst_port frame =
      Inbox.add inbox ~arrival ~emitted ~src_shard:!cur_src ~seq ~dst_node
        ~dst_port frame
    in
    while !running do
      (* Inbox drain: every chunk published before the previous barrier
         is visible now. Decode in place, then merge simultaneous
         arrivals deterministically so heap insertion order (the
         tie-break) is run-independent. *)
      for src = 0 to shards - 1 do
        if src <> my then begin
          let ch = chans.(src).(my) in
          cur_src := src;
          let rec drain () =
            match Spsc.pop ch.pending with
            | None -> ()
            | Some c ->
              Boundary.decode c ~pool:bpool on_msg;
              Boundary.reset c;
              ignore (Spsc.try_push ch.free c : bool);
              drain ()
          in
          drain ()
        end
      done;
      Inbox.sort inbox;
      Inbox.iter_sorted inbox
        (fun ~arrival ~emitted ~src_shard:_ ~seq:_ ~dst_node ~dst_port frame ->
          Net.schedule_delivery ~emitted net ~arrival ~dst:(dst_node, dst_port)
            frame);
      Inbox.clear inbox;
      let local_min =
        match Engine.next_event_time eng with Some tm -> tm | None -> max_int
      in
      Atomic.set mins.(my) local_min;
      Barrier.await barrier;
      (* Every shard folds the same published values: identical window. *)
      let gmin =
        Array.fold_left (fun acc a -> min acc (Atomic.get a)) max_int mins
      in
      if gmin > until then begin
        (* Nothing left inside the horizon anywhere (inboxes are empty:
           drained above, and the barrier made all emissions visible).
           Advance the clock to the horizon, as the sequential engine
           does, and stop — all shards take this branch together. *)
        Engine.run eng ~until;
        running := false
      end
      else begin
        incr rounds;
        (* Adaptive window: shard [i]'s earliest possible emission into
           another shard lands at [mins.(i) + shard_lookahead.(i)] or
           later (transmissions complete at >= its earliest pending
           event; fault hooks never shorten a propagation delay), so
           every event strictly before

             W = min_i (mins.(i) + shard_lookahead.(i))

           is safe to execute. Idle shards (min = max_int) and shards
           with no outgoing cut links drop out of the minimum via the
           saturating add — when all do, the window runs straight to
           the horizon. W >= gmin + global lookahead, so this is never
           narrower than the static rule; it strictly widens windows
           whenever the busiest shard is not also the one about to
           deliver a boundary frame. Timestamps are integer ns, so
           "events < W" is exactly "run ~until:(W - 1)". *)
        let w = ref max_int in
        for i = 0 to shards - 1 do
          let wi = sat_add (Atomic.get mins.(i)) shard_lookahead.(i) in
          if wi < !w then w := wi
        done;
        let win_end = if !w - 1 > until then until else !w - 1 in
        Engine.run eng ~until:win_end;
        (* Chunks of this round must be globally visible before any
           shard drains its inbox for the next one. *)
        publish_open_chunks ();
        Barrier.await barrier
      end
    done;
    let collected = collect ~shard:my ~owns net in
    ( Engine.events_processed eng,
      Net.frames_delivered net,
      !emitted,
      !rounds,
      !chunks_sent,
      Frame.Pool.outstanding bpool,
      collected )
  in
  let domains =
    Array.init shards (fun i ->
        Domain.spawn (fun () ->
            try shard_body i ()
            with e ->
              Barrier.poison barrier;
              raise e))
  in
  let outcomes =
    Array.map (fun d -> try Ok (Domain.join d) with e -> Error e) domains
  in
  Array.iter
    (function
      | Error Barrier.Poisoned -> ()  (* secondary casualty; real error below *)
      | Error e -> raise e
      | Ok _ -> ())
    outcomes;
  let results =
    Array.map
      (function
        | Ok r -> r
        | Error _ -> raise Barrier.Poisoned)
      outcomes
  in
  let shard_events = Array.map (fun (e, _, _, _, _, _, _) -> e) results in
  let stats =
    {
      shards;
      events = Array.fold_left (fun a (e, _, _, _, _, _, _) -> a + e) 0 results;
      delivered =
        Array.fold_left (fun a (_, d, _, _, _, _, _) -> a + d) 0 results;
      rounds = (match results.(0) with _, _, _, r, _, _, _ -> r);
      messages =
        Array.fold_left (fun a (_, _, m, _, _, _, _) -> a + m) 0 results;
      chunks = Array.fold_left (fun a (_, _, _, _, c, _, _) -> a + c) 0 results;
      cut_links = plan.Plan.cut_links;
      lookahead = plan.Plan.lookahead;
      shard_events;
      boundary_outstanding =
        Array.fold_left (fun a (_, _, _, _, _, o, _) -> a + o) 0 results;
    }
  in
  (stats, Array.map (fun (_, _, _, _, _, _, c) -> c) results)
