(** Conservative parallel discrete-event simulation over OCaml domains.

    Shards a topology across domains and synchronizes them with
    link-propagation-delay lookahead (barrier-window / YAWNS): each
    round every shard publishes the timestamp of its earliest pending
    event, all agree on the windows's end

    {[ W = min over shards i of (min_event_time i + lookahead i) ]}

    where [lookahead i] is the smallest propagation delay of any link
    {e leaving} shard [i] across the cut, and every shard then safely
    executes its events in [\[gmin, W)]. Because a transmission
    completing on shard [i] cannot land on another shard before
    [min_event_time i + lookahead i >= W], no shard ever receives an
    event in its past — the classic conservative-PDES invariant, with
    the window widened per round to the earliest {e possible} boundary
    arrival rather than the static worst case (quiet channels stop
    throttling the window).

    Frames cross a boundary as flat batched {!Boundary} chunks: the
    emitting shard blits each frame's wire image (plus arrival /
    emission stamps, sequence number, destination, id, hop count) into
    a reusable per-channel buffer and publishes it once per window
    through a bounded {!Tpp_util.Spsc} ring; the receiving shard
    decodes in place, merges with an in-place {!Inbox} sort, and
    materializes frames from its own {!Tpp_isa.Frame.Pool} — so
    boundary traffic allocates nothing per message in steady state and
    pooled frames recycle on both sides of the cut.

    {2 Determinism}

    Each shard replays exactly the event sequence the sequential engine
    would execute for its nodes: all events of a given node run on its
    owning shard in nondecreasing time order, and simultaneous
    cross-boundary arrivals are merged in the fixed {!compare_msg}
    order — (arrival, emission stamp, source shard, source sequence) —
    with deliveries backdated to their emission stamps, so the merge
    result is independent of which window a message happens to be
    drained in (adaptive and static windows schedule identically).
    Runs are therefore bit-identical across repetitions for a given
    shard count, and event, delivery and drop counts — plus final
    switch register state — match the sequential engine whenever
    same-instant events at a node commute (always true for uniform
    frame sizes; see DESIGN.md §8 for the full argument). *)

module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Frame = Tpp_isa.Frame

(** Topology-sharding plan: which shard owns which node, and the
    conservative lookahead the cut admits. *)
module Plan : sig
  type t = {
    shards : int;
    owner : int array;  (** node id -> owning shard *)
    lookahead : Time_ns.span;
        (** minimum propagation delay over cut links (static bound);
            effectively infinite when no link crosses shards *)
    shard_lookahead : Time_ns.span array;
        (** per-shard minimum delay over links {e leaving} that shard
            across the cut — the adaptive window rule's per-shard
            bound; effectively infinite for shards with no outgoing
            cut links *)
    cut_links : int;  (** full-duplex links crossing shard boundaries *)
    shard_weight : int array;  (** load estimate per shard (balance) *)
  }

  val make : Net.t -> shards:int -> t
  (** Partitions a built topology with {!Tpp_util.Partition}: vertices
      are switches (edge-cut minimized, weights biased by attached host
      count) and every host is pinned to the shard of the switch it
      attaches to, so host links never cross shards. Raises
      [Invalid_argument] when a cut link has zero propagation delay
      (a conservative engine cannot make progress without lookahead). *)
end

(** Reusable phase-counting barrier, hybrid spin-then-block; poisoning
    releases every current and future waiter (spinners observe the
    poison flag mid-spin). Exposed for the test suite. *)
module Barrier : sig
  exception Poisoned

  type t

  val create : ?spin:int -> int -> t
  (** [create n] makes a barrier for [n] participants. The spin-before-
      block iteration count is decided here, once: it depends only on
      [Domain.recommended_domain_count ()] (constant for the process
      lifetime) and [n], so no per-[await] re-evaluation could ever
      reach a different answer. [?spin] overrides the heuristic —
      tests use it to force the spin path on small machines. *)

  val await : t -> unit
  (** Blocks until all [n] participants arrive, or raises {!Poisoned}. *)

  val poison : t -> unit
  (** Releases every current and future waiter with {!Poisoned}. *)
end

val compare_msg : int * int * int * int -> int * int * int * int -> int
(** The canonical merge order of cross-boundary messages, as
    [(arrival, emitted, src_shard, seq)] tuples: lexicographic, and
    total because (src_shard, seq) pairs are unique. *)

(** Flat boundary chunks: all frames one shard emits toward another in
    one window, batched as fixed 48-byte records + wire images in a
    single reusable buffer. Exposed for the codec property tests. *)
module Boundary : sig
  type chunk

  val header_bytes : int

  val chunk : ?capacity:int -> unit -> chunk
  (** A fresh empty chunk; the buffer doubles as needed. *)

  val count : chunk -> int
  val byte_size : chunk -> int

  val reset : chunk -> unit
  (** Forget the contents (the buffer is retained for reuse). *)

  val append :
    chunk ->
    arrival:Time_ns.t ->
    emitted:Time_ns.t ->
    seq:int ->
    dst:int * int ->
    Frame.t ->
    unit
  (** Encode one message: stamps + destination + the frame's wire image
      (via {!Frame.blit_wire} — flushes TPP header state; raises like
      {!Frame.serialize} on unencodable programs). The frame itself is
      not retained: the caller may recycle it immediately. *)

  val decode :
    chunk ->
    pool:Frame.Pool.t ->
    (arrival:Time_ns.t ->
    emitted:Time_ns.t ->
    seq:int ->
    dst_node:int ->
    dst_port:int ->
    Frame.t ->
    unit) ->
    unit
  (** Decode every record in encode order, materializing each frame
      from [pool] ({!Frame.materialize}: original id and hop count are
      preserved). *)
end

(** Preallocated structure-of-arrays scratch for the per-round inbox
    merge: add in any order, {!Inbox.sort} the permutation in place by
    {!compare_msg}'s key, iterate in merge order. Steady state
    allocates nothing. Exposed for the merge-order property tests. *)
module Inbox : sig
  type t

  val create : unit -> t
  val length : t -> int

  val add :
    t ->
    arrival:Time_ns.t ->
    emitted:Time_ns.t ->
    src_shard:int ->
    seq:int ->
    dst_node:int ->
    dst_port:int ->
    Frame.t ->
    unit

  val sort : t -> unit
  (** In-place sort by the {!compare_msg} key; the order is total, so
      the result is unique regardless of insertion order. *)

  val iter_sorted :
    t ->
    (arrival:Time_ns.t ->
    emitted:Time_ns.t ->
    src_shard:int ->
    seq:int ->
    dst_node:int ->
    dst_port:int ->
    Frame.t ->
    unit) ->
    unit

  val clear : t -> unit
  (** Empties the inbox and unpins the frame slots (capacity kept). *)
end

type stats = {
  shards : int;
  events : int;  (** total events executed, all shards *)
  delivered : int;  (** frames handed to host receive callbacks *)
  rounds : int;  (** synchronization windows executed *)
  messages : int;  (** frames that crossed a shard boundary *)
  chunks : int;  (** boundary chunks published (>= 1 message each) *)
  cut_links : int;
  lookahead : Time_ns.span;  (** static (global-min) lookahead *)
  shard_events : int array;  (** per-shard event counts (balance) *)
  boundary_outstanding : int;
      (** frames still out of the per-shard boundary pools at collect
          time: 0 whenever every cross-shard frame was delivered or
          dropped inside the horizon *)
}

val run :
  ?scheduler:Engine.scheduler ->
  shards:int ->
  until:Time_ns.t ->
  build:(Engine.t -> Net.t) ->
  setup:(shard:int -> owns:(int -> bool) -> Net.t -> unit) ->
  collect:(shard:int -> owns:(int -> bool) -> Net.t -> 'a) ->
  unit ->
  stats * 'a array
(** [run ~shards ~until ~build ~setup ~collect ()] executes a sharded
    simulation to time [until] and returns aggregate statistics plus
    one [collect] result per shard. [scheduler] selects every shard
    engine's event queue (default [`Wheel], as {!Engine.create}).

    [build] must deterministically construct the {e same} topology on
    any engine — each shard calls it once on its own domain to get a
    structurally identical replica (node ids are dense and assigned in
    registration order, so replicas agree), and it is called once more
    up front to compute the partition. [setup] then injects workload:
    it must schedule traffic only for hosts where [owns host.node_id]
    is true, and must not capture mutable state shared across shards.
    [collect] runs after the simulation on each shard's domain —
    harvest per-shard results (delivered counts, owned-switch register
    state) there rather than touching foreign replicas.

    With [shards = 1] the behavior (and every counter) is identical to
    building and running the net sequentially. *)
