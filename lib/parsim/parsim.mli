(** Conservative parallel discrete-event simulation over OCaml domains.

    Shards a topology across domains and synchronizes them with
    link-propagation-delay lookahead (barrier-window / YAWNS): each
    round every shard publishes the timestamp of its earliest pending
    event, all agree on the global minimum [m], and every shard then
    safely executes its events in the window [\[m, m + lookahead)],
    where [lookahead] is the smallest propagation delay of any link
    crossing a shard boundary. A frame transmitted across a boundary
    travels through a lock-free SPSC channel ({!Tpp_util.Spsc}) carrying
    its absolute arrival time, and is scheduled by the owning shard when
    it drains its inbox at the next round barrier. Because any frame
    emitted inside a window arrives no earlier than the window's end,
    no shard ever receives an event in its past — the classic
    conservative-PDES invariant.

    {2 Determinism}

    Each shard replays exactly the event sequence the sequential engine
    would execute for its nodes: all events of a given node run on its
    owning shard in nondecreasing time order, and simultaneous
    cross-boundary arrivals are merged in a fixed
    (timestamp, source shard, source sequence) order. Runs are therefore
    bit-identical across repetitions for a given shard count, and event,
    delivery and drop counts — plus final switch register state —
    match the sequential engine whenever same-instant events at a node
    commute (always true for uniform frame sizes; see DESIGN.md §8 for
    the full argument). *)

module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net

(** Topology-sharding plan: which shard owns which node, and the
    conservative lookahead the cut admits. *)
module Plan : sig
  type t = {
    shards : int;
    owner : int array;  (** node id -> owning shard *)
    lookahead : Time_ns.span;
        (** minimum propagation delay over cut links; effectively
            infinite when no link crosses shards *)
    cut_links : int;  (** full-duplex links crossing shard boundaries *)
    shard_weight : int array;  (** load estimate per shard (balance) *)
  }

  val make : Net.t -> shards:int -> t
  (** Partitions a built topology with {!Tpp_util.Partition}: vertices
      are switches (edge-cut minimized, weights biased by attached host
      count) and every host is pinned to the shard of the switch it
      attaches to, so host links never cross shards. Raises
      [Invalid_argument] when a cut link has zero propagation delay
      (a conservative engine cannot make progress without lookahead). *)
end

type stats = {
  shards : int;
  events : int;  (** total events executed, all shards *)
  delivered : int;  (** frames handed to host receive callbacks *)
  rounds : int;  (** synchronization windows executed *)
  messages : int;  (** frames that crossed a shard boundary *)
  cut_links : int;
  lookahead : Time_ns.span;
  shard_events : int array;  (** per-shard event counts (balance) *)
}

val run :
  ?scheduler:Engine.scheduler ->
  shards:int ->
  until:Time_ns.t ->
  build:(Engine.t -> Net.t) ->
  setup:(shard:int -> owns:(int -> bool) -> Net.t -> unit) ->
  collect:(shard:int -> owns:(int -> bool) -> Net.t -> 'a) ->
  unit ->
  stats * 'a array
(** [run ~shards ~until ~build ~setup ~collect ()] executes a sharded
    simulation to time [until] and returns aggregate statistics plus
    one [collect] result per shard. [scheduler] selects every shard
    engine's event queue (default [`Wheel], as {!Engine.create}).

    [build] must deterministically construct the {e same} topology on
    any engine — each shard calls it once on its own domain to get a
    structurally identical replica (node ids are dense and assigned in
    registration order, so replicas agree), and it is called once more
    up front to compute the partition. [setup] then injects workload:
    it must schedule traffic only for hosts where [owns host.node_id]
    is true, and must not capture mutable state shared across shards.
    [collect] runs after the simulation on each shard's domain —
    harvest per-shard results (delivered counts, owned-switch register
    state) there rather than touching foreign replicas.

    With [shards = 1] the behavior (and every counter) is identical to
    building and running the net sequentially. *)
