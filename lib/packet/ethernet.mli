(** Ethernet II header. *)

type t = { dst : Mac.t; src : Mac.t; ethertype : int }

val size : int
(** 14 bytes. *)

val ethertype_ipv4 : int
val ethertype_tpp : int
(** The experimental ethertype that identifies a TPP frame (the paper's
    "uniquely identifiable header"). *)

val write : Tpp_util.Buf.Writer.t -> t -> unit
val read : Tpp_util.Buf.Reader.t -> t

val pp : Format.formatter -> t -> unit

(** Reads and patches a serialized header at a byte offset inside a
    larger buffer, without materializing the record. Byte-compatible
    with {!write}/{!read} (checked by the differential test suite). *)
module Flat : sig
  val dst : bytes -> off:int -> Mac.t
  val src : bytes -> off:int -> Mac.t
  val ethertype : bytes -> off:int -> int
  val set_ethertype : bytes -> off:int -> int -> unit

  val write_fields :
    bytes -> off:int -> dst:Mac.t -> src:Mac.t -> ethertype:int -> unit
  (** {!write_into} from scalars: builds no header record. *)

  val write_into : bytes -> off:int -> t -> unit
  (** Writes the full 14-byte header at [off]. *)
end
