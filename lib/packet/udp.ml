module Buf = Tpp_util.Buf

type t = { src_port : int; dst_port : int }

let size = 8

let write w t ~payload_len =
  Buf.Writer.u16 w t.src_port;
  Buf.Writer.u16 w t.dst_port;
  Buf.Writer.u16 w (size + payload_len);
  Buf.Writer.u16 w 0

let read r =
  let src_port = Buf.Reader.u16 r in
  let dst_port = Buf.Reader.u16 r in
  let len = Buf.Reader.u16 r in
  let _checksum = Buf.Reader.u16 r in
  if len < size then invalid_arg "Udp.read: length";
  ({ src_port; dst_port }, len - size)

let pp fmt t = Format.fprintf fmt "udp %d -> %d" t.src_port t.dst_port

(* Offset-based view of a serialized header inside a larger buffer;
   byte-compatible with the record codec above. *)
module Flat = struct
  let src_port b ~off = Bytes.get_uint16_be b off
  let dst_port b ~off = Bytes.get_uint16_be b (off + 2)
  let len b ~off = Bytes.get_uint16_be b (off + 4)

  (* For packet trimming: the UDP checksum is transmitted as zero
     (see [write_fields]), so a length rewrite needs no checksum fix. *)
  let set_len b ~off v = Bytes.set_uint16_be b (off + 4) (v land 0xFFFF)

  (* Scalar variant of [write_into]: the hot construction path builds
     no header record. *)
  let write_fields b ~off ~src_port ~dst_port ~payload_len =
    Bytes.set_uint16_be b off (src_port land 0xFFFF);
    Bytes.set_uint16_be b (off + 2) (dst_port land 0xFFFF);
    Bytes.set_uint16_be b (off + 4) (size + payload_len);
    Bytes.set_uint16_be b (off + 6) 0

  let write_into b ~off t ~payload_len =
    write_fields b ~off ~src_port:t.src_port ~dst_port:t.dst_port ~payload_len
end
