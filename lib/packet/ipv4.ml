module Buf = Tpp_util.Buf

let proto_udp = 17

let checksum b ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length b then
    invalid_arg "Ipv4.checksum: range";
  let sum = ref 0 in
  let i = ref pos in
  let stop = pos + len in
  while !i + 1 < stop do
    sum := !sum + Bytes.get_uint16_be b !i;
    i := !i + 2
  done;
  if !i < stop then sum := !sum + (Bytes.get_uint8 b !i lsl 8);
  let rec fold s = if s > 0xFFFF then fold ((s land 0xFFFF) + (s lsr 16)) else s in
  lnot (fold !sum) land 0xFFFF

module Addr = struct
  type t = int

  let of_int x = x land 0xFFFF_FFFF
  let to_int t = t

  let of_string s =
    let parts = String.split_on_char '.' s in
    if List.length parts <> 4 then invalid_arg "Ipv4.Addr.of_string: need 4 octets";
    let octet p =
      match int_of_string_opt p with
      | Some v when v >= 0 && v <= 255 -> v
      | _ -> invalid_arg "Ipv4.Addr.of_string: bad octet"
    in
    List.fold_left (fun acc p -> (acc lsl 8) lor octet p) 0 parts

  let to_string t =
    Printf.sprintf "%d.%d.%d.%d" ((t lsr 24) land 0xFF) ((t lsr 16) land 0xFF)
      ((t lsr 8) land 0xFF) (t land 0xFF)

  let of_host_id i = of_int (0x0A_00_00_00 lor (i land 0xFFFF))

  let equal = Int.equal
  let compare = Int.compare
  let pp fmt t = Format.pp_print_string fmt (to_string t)
end

module Prefix = struct
  type t = { prefix_addr : Addr.t; prefix_len : int }

  let net_mask len = if len = 0 then 0 else 0xFFFF_FFFF lsl (32 - len) land 0xFFFF_FFFF

  let make a len =
    if len < 0 || len > 32 then invalid_arg "Ipv4.Prefix.make: length";
    { prefix_addr = Addr.of_int (Addr.to_int a land net_mask len); prefix_len = len }

  let of_string s =
    match String.index_opt s '/' with
    | None -> invalid_arg "Ipv4.Prefix.of_string: missing /len"
    | Some i ->
      let a = Addr.of_string (String.sub s 0 i) in
      let len =
        match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
        | Some l -> l
        | None -> invalid_arg "Ipv4.Prefix.of_string: bad length"
      in
      make a len

  let addr t = t.prefix_addr
  let length t = t.prefix_len

  let matches t a =
    Addr.to_int a land net_mask t.prefix_len = Addr.to_int t.prefix_addr

  let host a = make a 32

  let equal a b = Addr.equal a.prefix_addr b.prefix_addr && a.prefix_len = b.prefix_len

  let pp fmt t = Format.fprintf fmt "%a/%d" Addr.pp t.prefix_addr t.prefix_len
end

module Header = struct
  type t = {
    src : Addr.t;
    dst : Addr.t;
    proto : int;
    ttl : int;
    dscp : int;
    ecn : int;
    ident : int;
  }

  let ecn_ce = 3

  let size = 20

  let write w t ~payload_len =
    let b = Bytes.make size '\000' in
    Bytes.set_uint8 b 0 0x45;
    Bytes.set_uint8 b 1 (((t.dscp land 0x3F) lsl 2) lor (t.ecn land 0x3));
    Bytes.set_uint16_be b 2 (size + payload_len);
    Bytes.set_uint16_be b 4 (t.ident land 0xFFFF);
    Bytes.set_uint16_be b 6 0x4000 (* DF, no fragments *);
    Bytes.set_uint8 b 8 (t.ttl land 0xFF);
    Bytes.set_uint8 b 9 (t.proto land 0xFF);
    Buf.set_u32i b 12 (Addr.to_int t.src);
    Buf.set_u32i b 16 (Addr.to_int t.dst);
    Bytes.set_uint16_be b 10 (checksum b ~pos:0 ~len:size);
    Buf.Writer.bytes w b

  let read r =
    let b = Buf.Reader.bytes r size in
    let vihl = Bytes.get_uint8 b 0 in
    if vihl <> 0x45 then invalid_arg "Ipv4.Header.read: version/IHL";
    if checksum b ~pos:0 ~len:size <> 0 then invalid_arg "Ipv4.Header.read: checksum";
    let total = Bytes.get_uint16_be b 2 in
    if total < size then invalid_arg "Ipv4.Header.read: total length";
    let t =
      {
        src = Addr.of_int (Buf.get_u32i b 12);
        dst = Addr.of_int (Buf.get_u32i b 16);
        proto = Bytes.get_uint8 b 9;
        ttl = Bytes.get_uint8 b 8;
        dscp = Bytes.get_uint8 b 1 lsr 2;
        ecn = Bytes.get_uint8 b 1 land 0x3;
        ident = Bytes.get_uint16_be b 4;
      }
    in
    (t, total - size)

  let pp fmt t =
    Format.fprintf fmt "%a -> %a proto=%d ttl=%d" Addr.pp t.src Addr.pp t.dst t.proto
      t.ttl

  (* Offset-based view of a serialized header inside a larger buffer;
     setters patch the field and fix the checksum incrementally
     (RFC 1624 eqn. 3), so a per-hop TTL rewrite touches 6 bytes
     instead of re-serializing the header. The record codec above is
     the differential oracle. *)
  module Flat = struct
    (* Byte offsets of the fields within the 20-byte header. *)
    let off_tos = 1
    let off_ident = 4
    let off_ttl = 8
    let off_proto = 9
    let off_checksum = 10
    let off_src = 12
    let off_dst = 16

    (* Replaces the 16-bit word at [woff] (which must be even, so the
       word is one of the checksum's summands) and updates the checksum:
       HC' = ~(~HC + ~m + m'). The two folds absorb every possible
       carry. Matches a full recompute exactly, including on the
       all-zeros/all-ones checksum representations, because the header
       writer only ever produces the canonical form. *)
    let patch_u16 b ~off ~woff v =
      let v = v land 0xFFFF in
      let old = Bytes.get_uint16_be b (off + woff) in
      Bytes.set_uint16_be b (off + woff) v;
      let hc = Bytes.get_uint16_be b (off + off_checksum) in
      let sum = (lnot hc land 0xFFFF) + (lnot old land 0xFFFF) + v in
      let sum = (sum land 0xFFFF) + (sum lsr 16) in
      let sum = (sum land 0xFFFF) + (sum lsr 16) in
      Bytes.set_uint16_be b (off + off_checksum) (lnot sum land 0xFFFF)

    let ttl b ~off = Bytes.get_uint8 b (off + off_ttl)
    let proto b ~off = Bytes.get_uint8 b (off + off_proto)
    let dscp b ~off = Bytes.get_uint8 b (off + off_tos) lsr 2
    let ecn b ~off = Bytes.get_uint8 b (off + off_tos) land 0x3
    let ident b ~off = Bytes.get_uint16_be b (off + off_ident)
    let src b ~off = Addr.of_int (Buf.get_u32i b (off + off_src))
    let dst b ~off = Addr.of_int (Buf.get_u32i b (off + off_dst))
    let total_len b ~off = Bytes.get_uint16_be b (off + 2)

    let set_ttl b ~off v =
      let word = ((v land 0xFF) lsl 8) lor proto b ~off in
      patch_u16 b ~off ~woff:off_ttl word

    let set_tos b ~off tos =
      let word = (Bytes.get_uint8 b off lsl 8) lor (tos land 0xFF) in
      patch_u16 b ~off ~woff:0 word

    let set_ecn b ~off v =
      set_tos b ~off ((dscp b ~off lsl 2) lor (v land 0x3))

    let set_dscp b ~off v =
      set_tos b ~off (((v land 0x3F) lsl 2) lor ecn b ~off)

    let set_ident b ~off v = patch_u16 b ~off ~woff:off_ident v

    (* For NDP-style packet trimming: the total length is word 1 of the
       checksum, so shrinking the datagram in place is one incremental
       patch — no re-serialize. *)
    let set_total_len b ~off v = patch_u16 b ~off ~woff:2 v

    (* Full header write straight into [b] at [off]; byte-identical to
       {!write} but with no intermediate buffer. The scalar variant is
       the hot construction path: no header record is built. *)
    let write_fields b ~off ~src ~dst ~proto ~ttl ~dscp ~ecn ~ident
        ~payload_len =
      Bytes.set_uint8 b off 0x45;
      Bytes.set_uint8 b (off + off_tos) (((dscp land 0x3F) lsl 2) lor (ecn land 0x3));
      Bytes.set_uint16_be b (off + 2) (size + payload_len);
      Bytes.set_uint16_be b (off + off_ident) (ident land 0xFFFF);
      Bytes.set_uint16_be b (off + 6) 0x4000 (* DF, no fragments *);
      Bytes.set_uint8 b (off + off_ttl) (ttl land 0xFF);
      Bytes.set_uint8 b (off + off_proto) (proto land 0xFF);
      Bytes.set_uint16_be b (off + off_checksum) 0;
      Buf.set_u32i b (off + off_src) (Addr.to_int src);
      Buf.set_u32i b (off + off_dst) (Addr.to_int dst);
      Bytes.set_uint16_be b (off + off_checksum) (checksum b ~pos:off ~len:size)

    let write_into b ~off t ~payload_len =
      write_fields b ~off ~src:t.src ~dst:t.dst ~proto:t.proto ~ttl:t.ttl
        ~dscp:t.dscp ~ecn:t.ecn ~ident:t.ident ~payload_len

    let to_header b ~off =
      {
        src = src b ~off;
        dst = dst b ~off;
        proto = proto b ~off;
        ttl = ttl b ~off;
        dscp = dscp b ~off;
        ecn = ecn b ~off;
        ident = ident b ~off;
      }
  end
end
