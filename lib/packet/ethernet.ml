module Buf = Tpp_util.Buf

type t = { dst : Mac.t; src : Mac.t; ethertype : int }

let size = 14

let ethertype_ipv4 = 0x0800

(* 0x88B5 is the IEEE "local experimental ethertype 1", the honest choice
   for a research encapsulation. *)
let ethertype_tpp = 0x88B5

let write_mac w m =
  let v = Mac.to_int m in
  Buf.Writer.u16 w (v lsr 32);
  Buf.Writer.u32i w (v land 0xFFFF_FFFF)

let read_mac r =
  let hi = Buf.Reader.u16 r in
  let lo = Buf.Reader.u32i r in
  Mac.of_int ((hi lsl 32) lor lo)

let write w t =
  write_mac w t.dst;
  write_mac w t.src;
  Buf.Writer.u16 w t.ethertype

let read r =
  let dst = read_mac r in
  let src = read_mac r in
  let ethertype = Buf.Reader.u16 r in
  { dst; src; ethertype }

let pp fmt t =
  Format.fprintf fmt "%a -> %a type=0x%04x" Mac.pp t.src Mac.pp t.dst t.ethertype

(* Offset-based view of a serialized header inside a larger buffer. The
   record codec above stays the differential oracle: the QCheck suite
   checks both spell identical bytes. *)
module Flat = struct
  let get_mac b off =
    Mac.of_int
      ((Bytes.get_uint16_be b off lsl 32)
      lor (Int32.to_int (Bytes.get_int32_be b (off + 2)) land 0xFFFF_FFFF))

  let set_mac b off m =
    let v = Mac.to_int m in
    Bytes.set_uint16_be b off (v lsr 32);
    Bytes.set_int32_be b (off + 2) (Int32.of_int (v land 0xFFFF_FFFF))

  let dst b ~off = get_mac b off
  let src b ~off = get_mac b (off + 6)
  let ethertype b ~off = Bytes.get_uint16_be b (off + 12)
  let set_ethertype b ~off v = Bytes.set_uint16_be b (off + 12) (v land 0xFFFF)

  (* Scalar variant of [write_into]: the hot construction path builds
     no header record. *)
  let write_fields b ~off ~dst ~src ~ethertype =
    set_mac b off dst;
    set_mac b (off + 6) src;
    Bytes.set_uint16_be b (off + 12) (ethertype land 0xFFFF)

  let write_into b ~off t =
    write_fields b ~off ~dst:t.dst ~src:t.src ~ethertype:t.ethertype
end
