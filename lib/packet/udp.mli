(** UDP header. *)

type t = { src_port : int; dst_port : int }

val size : int
(** 8 bytes. *)

val write : Tpp_util.Buf.Writer.t -> t -> payload_len:int -> unit
(** Serialises the header. The checksum field is written as 0 (legal for
    UDP over IPv4); integrity in the simulator comes from the IPv4
    header checksum and bounds-checked parsing. *)

val read : Tpp_util.Buf.Reader.t -> t * int
(** Returns the header and the payload length it declares. *)

val pp : Format.formatter -> t -> unit

(** Reads a serialized header at a byte offset inside a larger buffer;
    byte-compatible with {!write}/{!read}. *)
module Flat : sig
  val src_port : bytes -> off:int -> int
  val dst_port : bytes -> off:int -> int
  val len : bytes -> off:int -> int

  val set_len : bytes -> off:int -> int -> unit
  (** Rewrites the UDP length (header + payload). The checksum is
      transmitted as zero, so no fix-up is needed — used by packet
      trimming. *)

  val write_fields :
    bytes -> off:int -> src_port:int -> dst_port:int -> payload_len:int -> unit
  (** {!write_into} from scalars: builds no header record. *)

  val write_into : bytes -> off:int -> t -> payload_len:int -> unit
  (** Writes the full 8-byte header at [off]. *)
end
