(** IPv4 addresses, prefixes, and the IPv4 header. *)

module Addr : sig
  type t = private int
  (** Stored in the low 32 bits of a native int. *)

  val of_int : int -> t
  val to_int : t -> int
  val of_string : string -> t
  (** Parses dotted-quad notation. Raises [Invalid_argument]. *)

  val to_string : t -> string
  val of_host_id : int -> t
  (** [10.0.x.y] address for simulated host [i]. *)

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val pp : Format.formatter -> t -> unit
end

module Prefix : sig
  type t
  (** An address prefix [addr/len] for longest-prefix-match routing. *)

  val make : Addr.t -> int -> t
  (** [make a len]: host bits of [a] below [len] are zeroed. Raises
      [Invalid_argument] unless [0 <= len <= 32]. *)

  val of_string : string -> t
  (** Parses ["10.0.0.0/8"]. *)

  val addr : t -> Addr.t
  val length : t -> int
  val matches : t -> Addr.t -> bool
  val host : Addr.t -> t
  (** The /32 prefix containing exactly this address. *)

  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end

(** Parsed IPv4 header (no options). *)
module Header : sig
  type t = {
    src : Addr.t;
    dst : Addr.t;
    proto : int;       (** 17 = UDP. *)
    ttl : int;
    dscp : int;
    ecn : int;         (** low 2 ToS bits; {!ecn_ce} = congestion experienced *)
    ident : int;
  }

  val ecn_ce : int
  (** The Congestion Experienced codepoint (3). *)

  val size : int
  (** On-wire size in bytes (20, no options). *)

  val write : Tpp_util.Buf.Writer.t -> t -> payload_len:int -> unit
  (** Serialises the header including a correct checksum. *)

  val read : Tpp_util.Buf.Reader.t -> t * int
  (** Parses a header, verifying version, IHL and checksum; returns the
      header and the payload length it declares. Raises
      [Invalid_argument] on malformed input. *)

  val pp : Format.formatter -> t -> unit

  (** Reads and patches a serialized header at a byte offset inside a
      larger buffer. Setters fix the checksum incrementally (RFC 1624),
      so a per-hop TTL or ECN rewrite costs a few byte stores instead
      of a re-serialization; the record codec above is the differential
      oracle the QCheck suite compares against. *)
  module Flat : sig
    val ttl : bytes -> off:int -> int
    val proto : bytes -> off:int -> int
    val dscp : bytes -> off:int -> int
    val ecn : bytes -> off:int -> int
    val ident : bytes -> off:int -> int
    val src : bytes -> off:int -> Addr.t
    val dst : bytes -> off:int -> Addr.t
    val total_len : bytes -> off:int -> int

    val set_ttl : bytes -> off:int -> int -> unit
    val set_ecn : bytes -> off:int -> int -> unit
    val set_dscp : bytes -> off:int -> int -> unit
    val set_ident : bytes -> off:int -> int -> unit

    val set_total_len : bytes -> off:int -> int -> unit
    (** Patches the total length with an incremental checksum fix
        (RFC 1624) — the packet-trimming primitive. *)

    val write_fields :
      bytes ->
      off:int ->
      src:Addr.t ->
      dst:Addr.t ->
      proto:int ->
      ttl:int ->
      dscp:int ->
      ecn:int ->
      ident:int ->
      payload_len:int ->
      unit
    (** {!write_into} from scalars: builds no header record. *)

    val write_into : bytes -> off:int -> t -> payload_len:int -> unit
    (** Writes the full 20-byte header (checksum included) at [off];
        byte-identical to {!write}. *)

    val to_header : bytes -> off:int -> t
    (** Materializes the record view (no validation). *)
  end
end

val checksum : bytes -> pos:int -> len:int -> int
(** RFC 1071 Internet checksum over a byte range. *)

val proto_udp : int
