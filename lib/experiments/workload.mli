(** Deterministic heavy-tailed workload generation.

    One place to draw the traffic every experiment, bench and transport
    comparison runs: Poisson flow arrivals at a target load with
    flow sizes from a heavy-tailed {!mix} (the canonical "websearch" /
    "datamining" datacenter CDFs, a parametric Pareto, or fixed-size),
    plus N:1 incast bursts. Everything is a pure function of its seed —
    same seed, same flows, on every platform and shard layout.

    The low-level draw primitives ({!exp_gap}, {!sample_bytes}) are the
    exact draws {!Fct} has always made, so schedules built through them
    are bit-identical to the historical ones. *)

module Time_ns = Tpp_util.Time_ns
module Rng = Tpp_util.Rng

(** Flow-size distribution. *)
type mix =
  | Websearch
      (** The DCTCP web-search trace shape: mostly tens-of-KB request
          flows with a top decile running to tens of MB. *)
  | Datamining
      (** The VL2 data-mining trace shape: ~80% of flows under 10 KB,
          with rare multi-hundred-MB shuffles carrying most bytes. *)
  | Pareto of { shape : float; mean_bytes : float }
      (** Parametric Pareto with the given mean ([shape] > 1). *)
  | Fixed of int  (** Every flow the same size (incast-style). *)

val validate : mix -> unit
(** Raises [Invalid_argument] for a mix with no finite mean
    (Pareto shape <= 1, non-positive sizes). *)

val mean_bytes : mix -> float
(** The analytic mean flow size of the mix — exact for the
    linear-interpolation sampler, so load targeting needs no
    calibration runs. *)

val exp_gap : Rng.t -> rate:float -> float
(** One exponential inter-arrival gap (seconds) at [rate] arrivals/sec:
    a single [Rng.exponential] draw. *)

val sample_bytes : Rng.t -> mix -> int
(** One flow-size draw: a single uniform variate through the mix's
    inverse CDF ([Pareto]: a single [Rng.pareto] draw with the scale
    derived from the mean — draw-compatible with {!Fct}). May return 0
    for the empirical mixes' smallest flows; clamp at the call site. *)

val pareto_scale : shape:float -> mean_bytes:float -> float
(** The Pareto scale parameter giving the requested mean. *)

val arrival_rate : load:float -> link_bps:int -> mix:mix -> float
(** Per-host arrivals/sec such that each host offers [load] of its
    [link_bps] access link: [load * bps / (8 * mean_bytes)]. *)

(** {2 Flow plans} *)

type flow = {
  at : Time_ns.t;  (** arrival time *)
  src : int;       (** source host index *)
  dst : int;       (** destination host index *)
  size : int;      (** bytes *)
}

val poisson :
  ?seed:int ->
  ?dst_of:(int -> int) ->
  hosts:int ->
  mix:mix ->
  load:float ->
  link_bps:int ->
  window:Time_ns.span ->
  unit ->
  flow array
(** Independent Poisson arrivals from every host over [\[0, window)],
    sorted by (time, src, dst, size). Each host draws from its own
    seeded splitmix64 stream keyed by (seed, host), so host [h]'s flows
    do not change when the fabric grows. [dst_of] picks each source's
    destination (default: the host halfway across, [(src + hosts/2) mod
    hosts]); it must return a valid host distinct from the source.
    [seed] defaults to 11. *)

val incast : at:Time_ns.t -> dst:int -> senders:int list -> bytes:int -> flow array
(** All [senders] (minus [dst] if present) fire [bytes] at [dst] in the
    same nanosecond — the synchronized-read burst that motivates
    trimming transports and queue-visibility TPPs. *)

val merge : flow array -> flow array -> flow array
(** Sorted union of two plans. *)

val total_bytes : flow array -> int

val compare_flow : flow -> flow -> int
(** The (time, src, dst, size) order {!poisson} and {!merge} sort by. *)
