module Time_ns = Tpp_util.Time_ns
module Stats = Tpp_util.Stats
module Rng = Tpp_util.Rng
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Flow = Tpp_endhost.Flow
module Rcp_star = Tpp_endhost.Rcp_star
module Aimd = Tpp_rcp.Aimd

module Frame = Tpp_isa.Frame
module Fault = Tpp_sim.Fault
module Parsim = Tpp_parsim.Parsim
module Tcp = Tpp_rcp.Tcp
module Dctcp = Tpp_rcp.Dctcp
module Ndp = Tpp_rcp.Ndp
module Tpp_lb = Tpp_rcp.Tpp_lb

type controller = Rcp_star_ctl | Aimd_ctl | Tcp_ctl

type params = {
  core_bps : int;
  edge_bps : int;
  link_delay_ns : int;
  pairs : int;
  arrivals_per_sec : float;
  mean_flow_bytes : float;
  pareto_shape : float;
  payload_bytes : int;
  duration : int;
  seed : int;
  short_threshold_bytes : int;
}

let default =
  {
    core_bps = 10_000_000;
    edge_bps = 100_000_000;
    link_delay_ns = Time_ns.ms 5;
    pairs = 4;
    arrivals_per_sec = 8.0;
    mean_flow_bytes = 60_000.0;
    pareto_shape = 1.5;
    payload_bytes = 1000;
    duration = Time_ns.sec 30;
    seed = 7;
    short_threshold_bytes = 50_000;
  }

type result = {
  started : int;
  completed : int;
  short_fct : Stats.t;
  long_fct : Stats.t;
  all_fct : Stats.t;
  bottleneck_drops : int;
}

type pair = { src_stack : Stack.t; dst_stack : Stack.t; dst_host : Net.host }

(* A Pareto shape at or below 1 has no finite mean: the derived [scale]
   goes non-positive and [Rng.pareto] then yields zero/negative sizes
   that [int_of_float] would silently truncate. Reject loudly. *)
let validate_workload ~arrivals_per_sec ~mean_flow_bytes ~pareto_shape =
  if pareto_shape <= 1.0 then invalid_arg "Fct: pareto_shape must be > 1.0";
  if mean_flow_bytes <= 0.0 then invalid_arg "Fct: mean_flow_bytes must be positive";
  if arrivals_per_sec <= 0.0 then invalid_arg "Fct: arrivals_per_sec must be positive"

(* Pre-draws the whole arrival schedule so both controllers run exactly
   the same workload. The [Workload] primitives make the very draws this
   function always made, so schedules are bit-identical across the
   refactor. *)
let schedule p =
  validate_workload ~arrivals_per_sec:p.arrivals_per_sec
    ~mean_flow_bytes:p.mean_flow_bytes ~pareto_shape:p.pareto_shape;
  let rng = Rng.create ~seed:p.seed in
  let mix =
    Workload.Pareto { shape = p.pareto_shape; mean_bytes = p.mean_flow_bytes }
  in
  let rec go now acc =
    let now = now +. Workload.exp_gap rng ~rate:p.arrivals_per_sec in
    if Time_ns.of_sec_f now >= p.duration then List.rev acc
    else begin
      let size = max p.payload_bytes (Workload.sample_bytes rng mix) in
      go now ((Time_ns.of_sec_f now, size) :: acc)
    end
  in
  go 0.0 []

let run controller p =
  let eng = Engine.create () in
  let bell =
    Topology.dumbbell eng ~pairs:p.pairs ~core_bps:p.core_bps ~edge_bps:p.edge_bps
      ~delay:p.link_delay_ns ()
  in
  let net = bell.Topology.d_net in
  let slot =
    match controller with
    | Rcp_star_ctl -> (
      match Rcp_star.setup_network net with
      | Ok s -> Some s
      | Error e -> invalid_arg ("Fct.run: " ^ e))
    | Aimd_ctl | Tcp_ctl -> None
  in
  (match slot with
  | Some _ ->
    Net.start_utilization_updates net ~period:10_000_000 ~until:p.duration
  | None -> ());
  let pairs =
    Array.init p.pairs (fun i ->
        let src_stack = Stack.create net bell.Topology.senders.(i) in
        let dst_host = bell.Topology.receivers.(i) in
        let dst_stack = Stack.create net dst_host in
        Probe.install_echo dst_stack;
        { src_stack; dst_stack; dst_host })
  in
  let short_fct = Stats.create () in
  let long_fct = Stats.create () in
  let all_fct = Stats.create () in
  let started = ref 0 in
  let completed = ref 0 in
  let record ~now ~at ~size =
    incr completed;
    let fct = Time_ns.to_sec_f (now - at) in
    Stats.add all_fct fct;
    if size <= p.short_threshold_bytes then Stats.add short_fct fct
    else Stats.add long_fct fct
  in
  let launch idx (at, size) =
    let pair = pairs.(idx mod p.pairs) in
    let port = 10_000 + idx in
    match controller with
    | Tcp_ctl ->
      Engine.at eng at (fun () ->
          incr started;
          let _rx = Tcp.Receiver.attach pair.dst_stack ~port in
          ignore
            (Tcp.Transfer.start ~src:pair.src_stack ~dst:pair.dst_host ~port
               ~total_bytes:size
               ~on_complete:(fun ~now -> record ~now ~at ~size)
               ()))
    | Rcp_star_ctl | Aimd_ctl ->
    Engine.at eng at (fun () ->
        incr started;
        let initial_rate = max 100_000 (p.core_bps / 10) in
        let flow =
          Flow.transfer ~src:pair.src_stack ~dst:pair.dst_host ~dst_port:port
            ~payload_bytes:p.payload_bytes ~rate_bps:initial_rate
            ~total_bytes:size
        in
        let finished = ref false in
        let stop_ctl = ref (fun () -> ()) in
        let sink = ref None in
        let tap ~now =
          match !sink with
          | Some s when (not !finished) && Flow.Sink.rx_payload_bytes s >= size ->
            finished := true;
            record ~now ~at ~size;
            Flow.stop flow;
            !stop_ctl ()
          | _ -> ()
        in
        sink := Some (Flow.Sink.attach ~tap pair.dst_stack ~port);
        (match (controller, slot) with
        | Rcp_star_ctl, Some slot ->
          (* A 3-hop path: small packet memory; 25 ms probe period keeps
             aggregate probe load under ~5% of the bottleneck. *)
          let config =
            { (Rcp_star.default_config ~slot) with
              Rcp_star.period_ns = Time_ns.ms 25;
              rtt_ns = Time_ns.ms 40;
              max_hops = 4 }
          in
          let ctl = Rcp_star.create pair.src_stack config ~flow ~dst:pair.dst_host in
          Rcp_star.start ctl ();
          stop_ctl := fun () -> Rcp_star.stop ctl
        | (Aimd_ctl | Tcp_ctl), _ | Rcp_star_ctl, None ->
          let config = Aimd.default_config ~max_rate_bps:p.core_bps in
          let ctl = Aimd.create pair.src_stack config ~flow ~report_port:port in
          let receiver =
            Aimd.Receiver.attach pair.dst_stack ~sink:(Option.get !sink)
              ~report_to:(Stack.host pair.src_stack) ~report_port:port
              ~period:config.Aimd.report_period_ns
          in
          Aimd.start ctl;
          stop_ctl :=
            fun () ->
              Aimd.stop ctl;
              Aimd.Receiver.stop receiver);
        Flow.start flow ())
  in
  List.iteri launch (schedule p);
  Engine.run eng ~until:p.duration;
  let bottleneck = Net.switch net bell.Topology.left_switch in
  {
    started = !started;
    completed = !completed;
    short_fct;
    long_fct;
    all_fct;
    bottleneck_drops =
      State.port_stat (Switch.state bottleneck) ~port:0
        Tpp_isa.Vaddr.Port_stat.Drops;
  }

(* ------------------------------------------------------------------ *)
(* Five-way transport testbed on a fat-tree fabric.

   The same pre-drawn Poisson/Pareto workload crosses a k-ary fat-tree
   under each of five transports — RCP* (TPP-driven), TCP Reno, DCTCP,
   NDP (pull/trim, receiver-driven) and TPP-LB (AIMD rate control plus
   CONGA-style flowlet steering from TPP path probes) — and the runner
   works unchanged under conservative sharding ([Parsim]), so sequential
   and [--shards 4] runs must produce bit-identical outcomes. *)

type transport = Rcp_star_t | Tcp_t | Dctcp_t | Ndp_t | Tpp_lb_t

let transport_name = function
  | Rcp_star_t -> "rcp_star"
  | Tcp_t -> "tcp"
  | Dctcp_t -> "dctcp"
  | Ndp_t -> "ndp"
  | Tpp_lb_t -> "tpp_lb"

let all_transports = [ Rcp_star_t; Tcp_t; Dctcp_t; Ndp_t; Tpp_lb_t ]

type fabric_params = {
  fk : int;
  f_bps : int;
  f_delay_ns : int;
  f_load : float;
  f_mean_bytes : float;
  f_shape : float;
  f_payload : int;
  f_duration : int;
  f_seed : int;
  f_short_bytes : int;
  f_chaos_drop : float;
  f_max_bytes : int;
}

let fabric_default =
  {
    fk = 4;
    f_bps = 200_000_000;
    f_delay_ns = Time_ns.us 5;
    f_load = 0.6;
    f_mean_bytes = 30_000.0;
    f_shape = 1.6;
    f_payload = 1000;
    f_duration = Time_ns.ms 300;
    f_seed = 11;
    f_short_bytes = 20_000;
    f_chaos_drop = 0.0;
    f_max_bytes = max_int;
  }

type fabric_outcome = {
  fo_transport : transport;
  fo_shards : int;
  fo_started : int;
  fo_completed : int;
  fo_samples : (int * int) list;  (* (flow bytes, fct ns), sorted *)
  fo_drops : int;   (* switch-port drops, owned switches summed *)
  fo_trims : int;   (* trim-to-header events (NDP runs) *)
  fo_events : int;  (* engine events, all shards *)
  fo_ok : bool;     (* transport invariants held (NDP state machine) *)
}

let fingerprint o =
  o.fo_started :: o.fo_completed :: o.fo_drops :: o.fo_trims
  :: List.concat_map (fun (a, b) -> [ a; b ]) o.fo_samples

type fct_summary = {
  fs_n : int;
  fs_mean_ns : float;
  fs_p50_ns : int;
  fs_p99_ns : int;
}

let summarize samples =
  let fcts = List.sort Int.compare (List.map snd samples) in
  let n = List.length fcts in
  if n = 0 then { fs_n = 0; fs_mean_ns = 0.0; fs_p50_ns = 0; fs_p99_ns = 0 }
  else begin
    let arr = Array.of_list fcts in
    let pct q =
      arr.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))
    in
    let sum = Array.fold_left (fun a v -> a +. float_of_int v) 0.0 arr in
    {
      fs_n = n;
      fs_mean_ns = sum /. float_of_int n;
      fs_p50_ns = pct 0.5;
      fs_p99_ns = pct 0.99;
    }
  end

let short_samples o ~threshold =
  List.filter (fun (size, _) -> size <= threshold) o.fo_samples

(* The workload is drawn once, before any engine exists, so every
   transport (and every shard replica) sees the same flows. Sizes are
   rounded up to whole packets so completion detection can distinguish
   full-size data packets from tiny control datagrams sharing a port. *)
let fabric_schedule p ~hosts:n =
  validate_workload ~arrivals_per_sec:1.0 ~mean_flow_bytes:p.f_mean_bytes
    ~pareto_shape:p.f_shape;
  let rng = Rng.create ~seed:p.f_seed in
  let mix = Workload.Pareto { shape = p.f_shape; mean_bytes = p.f_mean_bytes } in
  let per_host =
    Workload.arrival_rate ~load:p.f_load ~link_bps:p.f_bps ~mix
  in
  (* Stop arrivals at 70% of the horizon so the tail can drain. *)
  let window = Time_ns.to_sec_f p.f_duration *. 0.7 in
  let flows = ref [] in
  for i = 0 to n - 1 do
    let rec go now =
      let now = now +. Workload.exp_gap rng ~rate:per_host in
      if now < window then begin
        let size = max p.f_payload (Workload.sample_bytes rng mix) in
        (* [f_max_bytes] truncates the Pareto tail for runs whose gate
           is completion (chaos recovery): an unbounded draw can exceed
           what any transport can finish inside the drain window, which
           would conflate scheduling with loss. *)
        let size = min size p.f_max_bytes in
        let size = (size + p.f_payload - 1) / p.f_payload * p.f_payload in
        flows := (Time_ns.of_sec_f now, i, size) :: !flows;
        go now
      end
    in
    go 0.0
  done;
  List.sort compare !flows

let sorted_hosts net =
  Array.of_list
    (List.sort
       (fun a b -> Int.compare a.Net.node_id b.Net.node_id)
       (Net.hosts net))

let fabric_run ?(shards = 1) transport p =
  let n = p.fk * p.fk * p.fk / 4 in
  let sched = fabric_schedule p ~hosts:n in
  let init_rate = max 100_000 (p.f_bps / 10) in
  let ctl_period = Time_ns.us 200 in
  let ndp_config =
    {
      Ndp.default_config with
      Ndp.payload_bytes = p.f_payload;
      (* generous stall timer: trims (not stalls) drive loss recovery,
         so this only matters for outright chaos drops — and a jumpy
         timer floods the control plane with stale NACKs *)
      rtx_timeout_ns = Time_ns.ms 2;
      nack_burst = 4;
      (* one pull per data-packet serialization time on the access link
         (42 wire-header bytes + NDP header + payload), with a 35%
         margin so queues drain and new messages' sprays fit in the
         headroom the pacer leaves *)
      pull_gap_ns =
        (42 + Ndp.header_bytes + p.f_payload) * 8 * 1_000_000_000 / p.f_bps
        * 135 / 100;
    }
  in
  let build eng =
    (Topology.fat_tree eng ~k:p.fk ~bps:p.f_bps ~delay:p.f_delay_ns ())
      .Topology.f_net
  in
  (* Per-shard mutable outcome state, each slot touched only by its own
     shard's domain (the [collect] read happens there too). *)
  let started = Array.make shards 0 in
  let samples = Array.make shards [] in
  let ndp_eps : Ndp.t array option array = Array.make shards None in
  let setup ~shard ~owns net =
    let eng = Net.engine net in
    let hosts = sorted_hosts net in
    let stacks = Array.map (Stack.create net) hosts in
    (* Fabric-wide switch configuration is engine-free and applied on
       every replica, exactly as a sequential run would. *)
    (match transport with
    | Ndp_t -> Ndp.enable_network net ndp_config
    | Dctcp_t ->
      List.iter
        (fun (_, sw) ->
          for port = 0 to Switch.num_ports sw - 1 do
            Switch.set_ecn_threshold sw ~port (Some 15_000)
          done)
        (Net.switches net)
    | Rcp_star_t | Tcp_t | Tpp_lb_t -> ());
    if p.f_chaos_drop > 0.0 then begin
      let f = Fault.create ~seed:(p.f_seed + 31) in
      (* The loss episode covers the whole arrival window but ends with
         it: the drain tail is clean. Stall detection alone costs up to
         2x the rtx timeout, so a drop landing within a few ms of the
         horizon is unrecoverable by construction — with loss active to
         the last nanosecond, "every started flow completes" would be
         unachievable for any transport rather than a recovery gate. *)
      let chaos_until =
        Time_ns.of_sec_f (Time_ns.to_sec_f p.f_duration *. 0.7)
      in
      Array.iter
        (fun h ->
          Fault.lossy f ~from_:0 ~until_:chaos_until ~drop:p.f_chaos_drop
            (h.Net.node_id, 0))
        hosts;
      Fault.attach f net
    end;
    let slot =
      match transport with
      | Rcp_star_t -> (
        Array.iter Probe.install_echo stacks;
        Net.start_utilization_updates net ~period:(Time_ns.us 100)
          ~until:p.f_duration;
        match Rcp_star.setup_network net with
        | Ok s -> s
        | Error e -> invalid_arg ("Fct.fabric_run: " ^ e))
      | _ -> -1
    in
    let eps =
      match transport with
      | Ndp_t ->
        let eps =
          Array.map (fun st -> Ndp.create ~config:ndp_config st ~port:9000) stacks
        in
        Array.iter
          (fun ep ->
            Ndp.set_on_complete ep (fun ~now ~src:_ ~bytes ~start_ns ->
                samples.(shard) <- (bytes, now - start_ns) :: samples.(shard)))
          eps;
        ndp_eps.(shard) <- Some eps;
        eps
      | _ -> [||]
    in
    let record size fct = samples.(shard) <- (size, fct) :: samples.(shard) in
    let launch idx (at, src_i, size) =
      let src_h = hosts.(src_i) in
      let dst_i = (src_i + (n / 2)) mod n in
      let dst_h = hosts.(dst_i) in
      let data_port = 10_000 + (4 * idx) in
      let report_port = data_port + 1 in
      let send_done () =
        Stack.send_udp stacks.(dst_i) ~dst:src_h ~src_port:report_port
          ~dst_port:report_port ~payload:(Bytes.make 4 '\000') ()
      in
      match transport with
      | Ndp_t ->
        if owns src_h.Net.node_id then
          Engine.at eng at (fun () ->
              started.(shard) <- started.(shard) + 1;
              ignore (Ndp.send eps.(src_i) ~dst:dst_h ~bytes:size))
      | Tcp_t ->
        if owns dst_h.Net.node_id then
          Engine.at eng at (fun () ->
              ignore (Tcp.Receiver.attach stacks.(dst_i) ~port:data_port));
        if owns src_h.Net.node_id then
          Engine.at eng at (fun () ->
              started.(shard) <- started.(shard) + 1;
              ignore
                (Tcp.Transfer.start ~src:stacks.(src_i) ~dst:dst_h
                   ~port:data_port ~total_bytes:size
                   ~on_complete:(fun ~now -> record size (now - at))
                   ()))
      | Rcp_star_t | Dctcp_t | Tpp_lb_t ->
        if owns src_h.Net.node_id then
          Engine.at eng at (fun () ->
              started.(shard) <- started.(shard) + 1;
              let flow =
                Flow.transfer ~src:stacks.(src_i) ~dst:dst_h
                  ~dst_port:data_port ~payload_bytes:p.f_payload
                  ~rate_bps:init_rate ~total_bytes:size
              in
              let stop_ctl =
                match transport with
                | Rcp_star_t ->
                  let config =
                    { (Rcp_star.default_config ~slot) with
                      Rcp_star.period_ns = ctl_period;
                      rtt_ns = ctl_period;
                      max_hops = 8 }
                  in
                  let ctl =
                    Rcp_star.create stacks.(src_i) config ~flow ~dst:dst_h
                  in
                  Rcp_star.start ctl ();
                  fun () -> Rcp_star.stop ctl
                | Dctcp_t ->
                  let config =
                    { (Dctcp.default_config ~max_rate_bps:p.f_bps) with
                      Dctcp.report_period_ns = ctl_period;
                      rtt_ns = ctl_period;
                      initial_rate_bps = init_rate }
                  in
                  let ctl = Dctcp.create stacks.(src_i) config ~flow ~report_port in
                  Dctcp.start ctl;
                  fun () -> Dctcp.stop ctl
                | Tpp_lb_t | Tcp_t | Ndp_t ->
                  let config =
                    { (Aimd.default_config ~max_rate_bps:p.f_bps) with
                      Aimd.report_period_ns = ctl_period;
                      rtt_ns = ctl_period;
                      initial_rate_bps = init_rate }
                  in
                  let ctl = Aimd.create stacks.(src_i) config ~flow ~report_port in
                  let lb =
                    Tpp_lb.create
                      ~config:
                        { Tpp_lb.default_config with
                          Tpp_lb.probe_period_ns = ctl_period;
                          flowlet_gap_ns = Time_ns.us 100 }
                      stacks.(src_i) ~flow ~dst:dst_h
                  in
                  Aimd.start ctl;
                  Tpp_lb.start lb ();
                  fun () ->
                    Aimd.stop ctl;
                    Tpp_lb.stop lb
              in
              (* The receiver signals completion with a 4-byte datagram
                 (too short for any report parser); registered after the
                 controller so [on_udp_add] stacks onto its handler. *)
              let stopped = ref false in
              Stack.on_udp_add stacks.(src_i) ~port:report_port
                (fun ~now:_ frame ->
                  if Frame.payload_len frame = 4 && not !stopped then begin
                    stopped := true;
                    Flow.stop flow;
                    stop_ctl ()
                  end);
              Flow.start flow ());
        if owns dst_h.Net.node_id then
          Engine.at eng at (fun () ->
              match transport with
              | Tpp_lb_t ->
                (* Probes share the data port, so completion counts only
                   full-size data payloads through an added handler; the
                   sink still feeds the loss reports. *)
                let sink = Flow.Sink.attach stacks.(dst_i) ~port:data_port in
                Probe.install_echo_on_port stacks.(dst_i) ~port:data_port;
                let recv =
                  Aimd.Receiver.attach stacks.(dst_i) ~sink ~report_to:src_h
                    ~report_port ~period:ctl_period
                in
                let got = ref 0 in
                let finished = ref false in
                Stack.on_udp_add stacks.(dst_i) ~port:data_port
                  (fun ~now frame ->
                    let pl = Frame.payload_len frame in
                    if pl >= p.f_payload && not !finished then begin
                      got := !got + pl;
                      if !got >= size then begin
                        finished := true;
                        record size (now - at);
                        Aimd.Receiver.stop recv;
                        send_done ()
                      end
                    end)
              | Rcp_star_t | Dctcp_t ->
                let finished = ref false in
                let sink = ref None in
                let stop_rx = ref (fun () -> ()) in
                let tap ~now =
                  match !sink with
                  | Some s
                    when (not !finished)
                         && Flow.Sink.rx_payload_bytes s >= size ->
                    finished := true;
                    record size (now - at);
                    !stop_rx ();
                    send_done ()
                  | _ -> ()
                in
                sink := Some (Flow.Sink.attach ~tap stacks.(dst_i) ~port:data_port);
                if transport = Dctcp_t then begin
                  let recv =
                    Dctcp.Receiver.attach stacks.(dst_i)
                      ~sink:(Option.get !sink) ~report_to:src_h ~report_port
                      ~period:ctl_period
                  in
                  stop_rx := fun () -> Dctcp.Receiver.stop recv
                end
              | Tcp_t | Ndp_t -> ())
    in
    List.iteri launch sched
  in
  let collect ~shard ~owns net =
    let drops = ref 0 in
    let trims = ref 0 in
    List.iter
      (fun (id, sw) ->
        if owns id then begin
          trims := !trims + Switch.trims sw;
          for port = 0 to Switch.num_ports sw - 1 do
            drops :=
              !drops
              + State.port_stat (Switch.state sw) ~port
                  Tpp_isa.Vaddr.Port_stat.Drops
          done
        end)
      (Net.switches net)
    ;
    let ok =
      match ndp_eps.(shard) with
      | None -> true
      | Some eps ->
        let hosts = sorted_hosts net in
        let ok = ref true in
        Array.iteri
          (fun i ep ->
            if owns hosts.(i).Net.node_id then
              ok := !ok && Ndp.invariants_ok ep && Ndp.fold_rx_credit ep)
          eps;
        !ok
    in
    ( started.(shard),
      samples.(shard),
      !drops,
      !trims,
      Engine.events_processed (Net.engine net),
      ok )
  in
  let _stats, per_shard =
    Parsim.run ~shards ~until:p.f_duration ~build ~setup ~collect ()
  in
  let fo_started = Array.fold_left (fun a (s, _, _, _, _, _) -> a + s) 0 per_shard in
  let all_samples =
    Array.fold_left (fun a (_, s, _, _, _, _) -> List.rev_append s a) [] per_shard
  in
  {
    fo_transport = transport;
    fo_shards = shards;
    fo_started;
    fo_completed = List.length all_samples;
    fo_samples = List.sort compare all_samples;
    fo_drops = Array.fold_left (fun a (_, _, d, _, _, _) -> a + d) 0 per_shard;
    fo_trims = Array.fold_left (fun a (_, _, _, t, _, _) -> a + t) 0 per_shard;
    fo_events = Array.fold_left (fun a (_, _, _, _, e, _) -> a + e) 0 per_shard;
    fo_ok = Array.for_all (fun (_, _, _, _, _, ok) -> ok) per_shard;
  }
