(** E14 — streaming-telemetry reaction latency.

    The full control loop of the telemetry subsystem, timed in
    simulated RTTs: a fat-tree fabric under probe traffic has one
    aggregation->core link turn lossy; switch binary postcards, fault
    cards and probe retry/failure cards stream through a {!Tpp_telemetry.Sink}
    into a {!Tpp_telemetry.Collector}; a {!Tpp_telemetry.React}
    controller window-steps over the collector (with
    {!Tpp_ndb.Faultfind} suspects as corroboration) and drains the sick
    link out of every ECMP group. The paper's claim under test: with
    in-band telemetry the fault->detect->reroute loop closes at RTT
    timescales, not control-protocol timescales. *)

type result = {
  hosts : int;
  rtt_ms : float;  (** measured healthy probe RTT *)
  failed_link : int * int;  (** (node, port) of the lossy egress *)
  cards : int;  (** binary postcards accepted by the sink *)
  cards_dropped : int;  (** lost to sink overflow *)
  fault_cards : int;  (** Fault_event cards collected *)
  probe_retries : int;
  probe_failures : int;
  detect_ms : float;
      (** fault onset -> first fault evidence in a collector window *)
  react_ms : float;  (** fault onset -> drain installed *)
  detect_rtts : float;
  react_rtts : float;
  drained : (int * int) list;
  failed_hops_after_drain : int;
      (** hop cards on the drained link after the drain settled — the
          reroute witness; ~0 when flows hashed away as installed *)
  failures_after_drain : int;
      (** reliable-probe failures after the drain settled *)
}

val run : ?seed:int -> ?drop:float -> unit -> result
(** Defaults: [seed] 4242, [drop] 0.5 (loss probability on the failed
    link). Deterministic per seed. *)
