module Time_ns = Tpp_util.Time_ns
module Stats = Tpp_util.Stats
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Frame = Tpp_isa.Frame
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Flow = Tpp_endhost.Flow
module Sweep = Tpp_endhost.Sweep
module Trace = Tpp_ndb.Trace
module Verify = Tpp_ndb.Verify

type result = {
  switches_total : int;
  switches_observed : int;
  traced : int;
  verified : int;
  path_length_counts : (int * int) list;
  hotspot_expected : int;
  hotspot_found : int;
  hotspot_mean_queue : float;
  runner_up_mean_queue : float;
}

let mbps x = x * 1_000_000
let duration = Time_ns.sec 3
let hotspot_host = 13
let hotspot_sources = [ 1; 5; 9 ]
let flow_rate = mbps 40
let link_bps = mbps 100

let run () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:link_bps ~delay:(Time_ns.us 20) () in
  let net = ft.Topology.f_net in
  let hosts = ft.Topology.f_hosts in
  let n = Array.length hosts in
  let stacks = Array.map (Stack.create net) hosts in
  Array.iter Probe.install_echo stacks;
  (* The hotspot: three flows from other pods converge on one host's
     100 Mb/s access link at 40 Mb/s each. *)
  List.iter
    (fun src_idx ->
      let _sink = Flow.Sink.attach stacks.(hotspot_host) ~port:9000 in
      let flow =
        Flow.cbr ~src:stacks.(src_idx) ~dst:hosts.(hotspot_host) ~dst_port:9000
          ~payload_bytes:1000 ~rate_bps:flow_rate
      in
      Flow.start flow ())
    hotspot_sources;
  (* Fabric-wide sweep: every host probes its peer one pod over. *)
  let circuits =
    List.init n (fun i ->
        { Sweep.src = stacks.(i); dst = hosts.((i + 4) mod n) })
  in
  let sweep = Sweep.create ~circuits ~period:(Time_ns.ms 20) in
  Sweep.start sweep ~at:(Time_ns.ms 100) ();
  (* Path tracing: deterministic sample of host pairs. *)
  let rng = Tpp_util.Rng.create ~seed:99 in
  let traces = ref [] in
  let host_of_ip ip =
    let rec find i =
      if i >= n then None
      else if Tpp_packet.Ipv4.Addr.equal hosts.(i).Net.ip ip then Some i
      else find (i + 1)
    in
    find 0
  in
  Array.iteri
    (fun i stack ->
      Stack.on_udp stack ~port:9100 (fun ~now:_ frame ->
          match (frame.Frame.tpp, Frame.has_ip frame) with
          | Some tpp, true -> (
            match host_of_ip (Frame.ip_src frame) with
            | Some src -> traces := (src, i, Trace.parse tpp) :: !traces
            | None -> ())
          | _ -> ()))
    stacks;
  let pairs =
    List.init 30 (fun _ ->
        let src = Tpp_util.Rng.int rng n in
        let dst = (src + 1 + Tpp_util.Rng.int rng (n - 1)) mod n in
        (src, dst))
  in
  List.iteri
    (fun k (src, dst) ->
      Engine.at eng (Time_ns.ms (200 + (10 * k))) (fun () ->
          let frame =
            Frame.udp_frame ~src_mac:hosts.(src).Net.mac ~dst_mac:hosts.(dst).Net.mac
              ~src_ip:hosts.(src).Net.ip ~dst_ip:hosts.(dst).Net.ip ~src_port:9100
              ~dst_port:9100 ~payload:(Bytes.create 64) ()
          in
          Net.host_send net hosts.(src) (Trace.attach frame ~max_hops:6)))
    pairs;
  Engine.run eng ~until:duration;
  (* Verify every trace against the control plane's intent. *)
  let expected_of =
    let cache = Hashtbl.create 32 in
    fun src dst ->
      match Hashtbl.find_opt cache (src, dst) with
      | Some p -> p
      | None ->
        (* Traced packets use UDP 9100/9100; with ECMP the path is a
           function of the 5-tuple, so the predictor must use it too. *)
        let p =
          Verify.control_path ~src_port:9100 ~dst_port:9100 net ~src:hosts.(src)
            ~dst:hosts.(dst)
        in
        Hashtbl.replace cache (src, dst) p;
        p
  in
  let traced = List.length !traces in
  let verified =
    List.length
      (List.filter
         (fun (src, dst, trace) ->
           Verify.check ~expected:(expected_of src dst) ~expected_version:1 ~trace = [])
         !traces)
  in
  let path_length_counts =
    List.fold_left
      (fun acc (_, _, trace) ->
        let len = List.length trace in
        let cur = match List.assoc_opt len acc with Some c -> c | None -> 0 in
        (len, cur + 1) :: List.remove_assoc len acc)
      [] !traces
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (* Hotspot localisation from sweep data. *)
  let views = Sweep.views sweep in
  let ranked =
    List.sort
      (fun a b -> Float.compare (Stats.mean b.Sweep.queue) (Stats.mean a.Sweep.queue))
      views
  in
  let hotspot_found, hotspot_mean_queue, runner_up_mean_queue =
    match ranked with
    | a :: b :: _ -> (a.Sweep.v_switch_id, Stats.mean a.Sweep.queue, Stats.mean b.Sweep.queue)
    | [ a ] -> (a.Sweep.v_switch_id, Stats.mean a.Sweep.queue, 0.0)
    | [] -> (-1, 0.0, 0.0)
  in
  (* Predict the congestion point analytically: sum the offered rate
     over every (switch, egress port) the three flows' control routes
     cross; the first link offered more than its capacity is where the
     standing queue must form. With ECMP the answer depends on how the
     flows hash, which control_route reproduces exactly. *)
  let offered = Hashtbl.create 16 in
  List.iter
    (fun src_idx ->
      List.iter
        (fun link ->
          let cur = match Hashtbl.find_opt offered link with Some v -> v | None -> 0 in
          Hashtbl.replace offered link (cur + flow_rate))
        (Verify.control_route ~src_port:9000 ~dst_port:9000 net ~src:hosts.(src_idx)
           ~dst:hosts.(hotspot_host)))
    hotspot_sources;
  let hotspot_expected =
    Hashtbl.fold
      (fun (swid, _) rate best -> if rate > link_bps then swid else best)
      offered (-1)
  in
  {
    switches_total = List.length (Net.switches net);
    switches_observed = List.length views;
    traced;
    verified;
    path_length_counts;
    hotspot_expected;
    hotspot_found;
    hotspot_mean_queue;
    runner_up_mean_queue;
  }
