module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Fault = Tpp_sim.Fault
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Programs = Tpp_isa.Programs
module Faultfind = Tpp_ndb.Faultfind
module Sink = Tpp_telemetry.Sink
module Collector = Tpp_telemetry.Collector
module React = Tpp_telemetry.React
module Emit = Tpp_telemetry.Emit

type result = {
  hosts : int;
  rtt_ms : float;
  failed_link : int * int;
  cards : int;
  cards_dropped : int;
  fault_cards : int;
  probe_retries : int;
  probe_failures : int;
  detect_ms : float;
  react_ms : float;
  detect_rtts : float;
  react_rtts : float;
  drained : (int * int) list;
  failed_hops_after_drain : int;
  failures_after_drain : int;
}

let fail_at = Time_ns.sec 1
let duration = Time_ns.sec 2
let probe_period = Time_ns.ms 10
let timeout = Time_ns.ms 50
let control_period = Time_ns.ms 1

let probe_tpp () =
  match Programs.build ~max_hops:10 Programs.record_route with
  | Ok tpp -> tpp
  | Error e -> invalid_arg ("Telemetry_exp: probe tpp: " ^ e)

let run ?(seed = 4242) ?(drop = 0.5) () =
  let eng = Engine.create () in
  let ft =
    Topology.fat_tree eng ~k:4 ~bps:100_000_000 ~delay:(Time_ns.us 20) ()
  in
  let net = ft.Topology.f_net in
  let hosts = ft.Topology.f_hosts in
  let n = Array.length hosts in
  let stacks = Array.map (Stack.create net) hosts in
  Array.iter Probe.install_echo stacks;
  (* Probe mesh: the same cross-pod circuits the fault finder uses. *)
  let circuits = List.init n (fun i -> (stacks.(i), hosts.((i + 4) mod n))) in
  let finder = Faultfind.create ~circuits ~period:probe_period ~timeout () in
  Faultfind.start finder ~at:(Time_ns.ms 10) ();
  (* Telemetry plumbing: switch taps, fault cards, reliable-probe
     cards, all into one sink. *)
  let sink = Sink.create () in
  Emit.tap_switches sink net;
  let collector = Collector.create () in
  let react = React.create net in
  let reliable = Probe.Reliable.create ~timeout:(Time_ns.ms 20) stacks.(0) in
  Emit.probe_events sink ~node:hosts.(0).Net.node_id reliable;
  (* Ground truth: circuit 0's aggregation->core hop turns lossy. *)
  let node_of_switch_id swid =
    match
      List.find_opt (fun (_, sw) -> Switch.id sw = swid) (Net.switches net)
    with
    | Some (node, _) -> node
    | None -> invalid_arg "Telemetry_exp.run: unknown switch id"
  in
  let failed_link =
    match Faultfind.links_of_circuit finder 0 with
    | _ :: (l : Faultfind.link) :: _ ->
      (node_of_switch_id l.Faultfind.from_switch, l.Faultfind.egress_port)
    | _ -> invalid_arg "Telemetry_exp.run: circuit 0 shorter than expected"
  in
  let fault = Fault.create ~seed in
  Fault.lossy fault ~from_:fail_at ~until_:duration ~drop failed_link;
  Fault.attach fault net;
  Emit.fault_events sink fault;
  (* Measure the healthy RTT with one reliable probe up front. *)
  let rtt = ref 0 in
  Engine.at eng (Time_ns.ms 5) (fun () ->
      let sent = Engine.now eng in
      ignore
        (Probe.Reliable.send reliable ~dst:hosts.(4) ~tpp:(probe_tpp ())
           ~on_reply:(fun ~now _ -> if !rtt = 0 then rtt := now - sent)
           ()));
  (* Steady reliable probing across the sick path: its retries and
     failures become end-host telemetry. *)
  Engine.every eng ~start:(Time_ns.ms 20) ~period:(Time_ns.ms 5)
    ~until:duration (fun () ->
      ignore (Probe.Reliable.send reliable ~dst:hosts.(4) ~tpp:(probe_tpp ()) ()));
  (* The control loop: drain the sink into the collector each window,
     corroborate with the probe mesh's suspects, react. *)
  let detect_at = ref None in
  let react_at = ref None in
  let failures_at_drain = ref 0 in
  let failed_hops_at_settle = ref 0 in
  let settle = ref None in
  Engine.every eng ~start:(Time_ns.ms 2) ~period:control_period
    ~until:duration (fun () ->
      let now = Engine.now eng in
      Collector.absorb collector sink;
      if !detect_at = None && Collector.fault_events collector > 0 then
        detect_at := Some now;
      let suspects =
        List.map
          (fun (l : Faultfind.link) ->
            (node_of_switch_id l.Faultfind.from_switch, l.Faultfind.egress_port))
          (Faultfind.suspects finder ~now)
      in
      let actions = React.step ~suspects react collector in
      if
        !react_at = None
        && List.exists (function React.Drained _ -> true | _ -> false) actions
      then begin
        react_at := Some now;
        failures_at_drain := Collector.probe_failures collector;
        (* Give in-flight frames one RTT to clear, then baseline the
           drained link's hop count: cards after this are misrouted. *)
        let settle_at = now + max !rtt (Time_ns.ms 1) in
        Engine.at eng settle_at (fun () ->
            Collector.absorb collector sink;
            settle := Some settle_at;
            failed_hops_at_settle :=
              Collector.link_hops collector ~switch:(fst failed_link)
                ~port:(snd failed_link))
      end);
  Engine.run eng ~until:duration;
  Collector.absorb collector sink;
  let ms_since_fail = function
    | Some t -> Time_ns.to_ms_f (t - fail_at)
    | None -> Float.infinity
  in
  let rtt_f = float_of_int (max !rtt 1) in
  let rtts = function
    | Some t -> float_of_int (t - fail_at) /. rtt_f
    | None -> Float.infinity
  in
  let failed_hops_after_drain =
    match !settle with
    | None -> 0
    | Some _ ->
      Collector.link_hops collector ~switch:(fst failed_link)
        ~port:(snd failed_link)
      - !failed_hops_at_settle
  in
  {
    hosts = n;
    rtt_ms = Time_ns.to_ms_f !rtt;
    failed_link;
    cards = Sink.emitted sink;
    cards_dropped = Sink.dropped sink;
    fault_cards = Collector.fault_events collector;
    probe_retries = Collector.probe_retries collector;
    probe_failures = Collector.probe_failures collector;
    detect_ms = ms_since_fail !detect_at;
    react_ms = ms_since_fail !react_at;
    detect_rtts = rtts !detect_at;
    react_rtts = rtts !react_at;
    drained = React.drained react;
    failed_hops_after_drain;
    failures_after_drain =
      (match !react_at with
      | None -> Collector.probe_failures collector
      | Some _ -> Collector.probe_failures collector - !failures_at_drain);
  }
