module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Frame = Tpp_isa.Frame
module Trace = Tpp_ndb.Trace
module Verify = Tpp_ndb.Verify
module Controller = Tpp_control.Controller

type result = {
  total : int;
  pure_old : int;
  pure_new : int;
  mixed : int;
  mixed_during_window : int;
  example_mixture : int list;
  old_version : int;
  new_version : int;
}

let packet_interval = Time_ns.ms 2
let packets = 300
let update_at = Time_ns.ms 200
let stage_gap = Time_ns.ms 25

let run () =
  let eng = Engine.create () in
  let dia =
    Topology.diamond eng ~hosts_per_side:1 ~bps:100_000_000 ~delay:(Time_ns.us 500) ()
  in
  let net = dia.Topology.m_net in
  let controller = Controller.create net in
  let old_version = Controller.version controller in
  let src = dia.Topology.src_hosts.(0) in
  let dst = dia.Topology.dst_hosts.(0) in
  let received = ref [] in
  dst.Net.receive <- (fun ~now:_ frame ->
      match frame.Frame.tpp with
      | Some tpp ->
        (* sent time rides in the payload's first word (ms). *)
        let sent_ms =
          if Frame.payload_len frame >= 4 then Frame.payload_u32 frame 0 else 0
        in
        received := (sent_ms, Trace.parse tpp) :: !received
      | None -> ());
  for i = 1 to packets do
    let at = i * packet_interval in
    Engine.at eng at (fun () ->
        let payload = Bytes.create 4 in
        Tpp_util.Buf.set_u32i payload 0 (at / 1_000_000);
        let frame =
          Frame.udp_frame ~src_mac:src.Net.mac ~dst_mac:dst.Net.mac
            ~src_ip:src.Net.ip ~dst_ip:dst.Net.ip ~src_port:9100 ~dst_port:9100
            ~payload ()
        in
        Net.host_send net src (Trace.attach frame ~max_hops:6))
  done;
  Engine.at eng update_at (fun () ->
      Controller.staged_route_update controller ~gap:stage_gap);
  Engine.run eng ~until:(packets * packet_interval + Time_ns.ms 100);
  let new_version = Controller.version controller in
  let window_start_ms = update_at / 1_000_000 in
  let window_end_ms =
    (update_at + (stage_gap * List.length (Net.switches net))) / 1_000_000
  in
  let classify (pure_old, pure_new, mixed, in_window, example) (sent_ms, trace) =
    match Verify.versions trace with
    | [ v ] when v = old_version -> (pure_old + 1, pure_new, mixed, in_window, example)
    | [ v ] when v = new_version -> (pure_old, pure_new + 1, mixed, in_window, example)
    | vs ->
      let in_window =
        if sent_ms >= window_start_ms && sent_ms <= window_end_ms then in_window + 1
        else in_window
      in
      let example = if example = [] then vs else example in
      (pure_old, pure_new, mixed + 1, in_window, example)
  in
  let pure_old, pure_new, mixed, mixed_during_window, example_mixture =
    List.fold_left classify (0, 0, 0, 0, []) !received
  in
  {
    total = List.length !received;
    pure_old;
    pure_new;
    mixed;
    mixed_during_window;
    example_mixture;
    old_version;
    new_version;
  }
