(** Experiment E13 (extension): end-host fault localisation at RTT
    timescales.

    The paper's first sentence promises "low-latency visibility" for
    "fault diagnosis". Here a fleet of 16 probe circuits covers a k=4
    ECMP fat-tree; at t = 1 s one aggregation-to-core link goes dark.
    Within a couple of probe periods some circuits stop echoing, and
    intersecting their predicted link sets (minus every healthy
    circuit's links) pins down the failed link — no switch support
    beyond the TPP echo, no control-plane liveness protocol. *)

type result = {
  circuits : int;
  failed_link : Tpp_ndb.Faultfind.link;   (** ground truth *)
  failing_circuits : int;                 (** circuits that lost echoes *)
  detection_ms : float;                   (** failure -> first circuit flagged *)
  suspects : Tpp_ndb.Faultfind.link list;
  true_link_in_suspects : bool;
}

val run : unit -> result

(** {2 Scenario matrix}

    The same detector against the deterministic fault injector
    ({!Tpp_sim.Fault}): a permanent kill, a flapping link (15 ms dark
    every 30 ms), two simultaneous failures on distinct cables, and a
    40%-lossy link. Localisation must place every true cable in the
    suspect set in all four. *)

type scenario = Permanent | Flap | Dual_failure | Lossy_link

val scenario_name : scenario -> string

type scenario_result = {
  sc_scenario : scenario;
  sc_circuits : int;
  sc_true_links : Tpp_ndb.Faultfind.link list;  (** ground truth *)
  sc_degraded_circuits : int;
  sc_detection_ms : float;  (** fault start -> first circuit degraded *)
  sc_suspects : Tpp_ndb.Faultfind.link list;
  sc_localised : bool;  (** every true cable is in the suspect set *)
  sc_fault_stats : Tpp_sim.Fault.stats;
}

val run_scenario : ?seed:int -> scenario -> scenario_result

val run_matrix : ?seed:int -> unit -> scenario_result list
(** All four scenarios, in declaration order. *)
