module Time_ns = Tpp_util.Time_ns
module Rng = Tpp_util.Rng

type mix =
  | Websearch
  | Datamining
  | Pareto of { shape : float; mean_bytes : float }
  | Fixed of int

(* Empirical flow-size CDFs as (cumulative probability, bytes) knots;
   sampling interpolates linearly between knots, so each draw costs one
   uniform variate. The shapes follow the two canonical datacenter
   workloads: "websearch" (the DCTCP web-search trace: most flows are
   tens of KB, the top decile runs to tens of MB) and "datamining" (the
   VL2 trace: ~80% of flows under 10 KB while a sliver of multi-hundred-
   MB shuffles carries most bytes — a far heavier tail). *)
let websearch_cdf =
  [|
    (0.00, 1_000.);
    (0.15, 10_000.);
    (0.20, 20_000.);
    (0.30, 30_000.);
    (0.40, 50_000.);
    (0.53, 80_000.);
    (0.60, 200_000.);
    (0.70, 1_000_000.);
    (0.80, 2_000_000.);
    (0.90, 5_000_000.);
    (0.97, 10_000_000.);
    (1.00, 30_000_000.);
  |]

let datamining_cdf =
  [|
    (0.00, 100.);
    (0.50, 300.);
    (0.60, 1_000.);
    (0.70, 2_000.);
    (0.80, 10_000.);
    (0.90, 100_000.);
    (0.95, 1_000_000.);
    (0.99, 10_000_000.);
    (1.00, 300_000_000.);
  |]

let validate = function
  | Websearch | Datamining -> ()
  | Pareto { shape; mean_bytes } ->
    (* Shape <= 1 has no finite mean: the derived scale goes
       non-positive and draws silently truncate to garbage. *)
    if shape <= 1.0 then invalid_arg "Workload: pareto shape must be > 1.0";
    if mean_bytes <= 0.0 then invalid_arg "Workload: mean_bytes must be positive"
  | Fixed n -> if n <= 0 then invalid_arg "Workload: fixed size must be positive"

(* Exact for the linear-interpolated sampler: over each knot interval
   the size is linear in the uniform draw, so its conditional mean is
   the midpoint and the mixture weights are the probability masses. *)
let cdf_mean cdf =
  let m = ref 0.0 in
  for i = 1 to Array.length cdf - 1 do
    let p0, b0 = cdf.(i - 1) and p1, b1 = cdf.(i) in
    m := !m +. ((p1 -. p0) *. (b0 +. b1) /. 2.0)
  done;
  !m

let mean_bytes = function
  | Websearch -> cdf_mean websearch_cdf
  | Datamining -> cdf_mean datamining_cdf
  | Pareto { mean_bytes; _ } -> mean_bytes
  | Fixed n -> float_of_int n

(* The scale giving a Pareto(shape) the requested mean — the same
   derivation [Fct] has always used, kept draw-for-draw compatible. *)
let pareto_scale ~shape ~mean_bytes = mean_bytes *. (shape -. 1.0) /. shape

let sample_cdf rng cdf =
  let u = Rng.float rng 1.0 in
  let n = Array.length cdf in
  let rec seg i =
    if i >= n - 1 then n - 1
    else
      let p, _ = cdf.(i) in
      if u <= p then i else seg (i + 1)
  in
  let i = seg 1 in
  let p0, b0 = cdf.(i - 1) and p1, b1 = cdf.(i) in
  let frac = if p1 > p0 then (u -. p0) /. (p1 -. p0) else 0.0 in
  int_of_float (b0 +. (frac *. (b1 -. b0)))

let sample_bytes rng = function
  | Websearch -> sample_cdf rng websearch_cdf
  | Datamining -> sample_cdf rng datamining_cdf
  | Pareto { shape; mean_bytes } ->
    int_of_float (Rng.pareto rng ~shape ~scale:(pareto_scale ~shape ~mean_bytes))
  | Fixed n ->
    ignore (Rng.float rng 1.0);
    (* burn one draw so mixes are position-compatible *)
    n

let exp_gap rng ~rate = Rng.exponential rng ~mean:(1.0 /. rate)

let arrival_rate ~load ~link_bps ~mix =
  if not (load > 0.0) then invalid_arg "Workload: load must be positive";
  if link_bps <= 0 then invalid_arg "Workload: link_bps must be positive";
  load *. float_of_int link_bps /. (8.0 *. mean_bytes mix)

(* ------------------------------------------------------------------ *)

type flow = { at : Time_ns.t; src : int; dst : int; size : int }

let compare_flow a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Int.compare a.src b.src in
    if c <> 0 then c
    else
      let c = Int.compare a.dst b.dst in
      if c <> 0 then c else Int.compare a.size b.size

(* Stream for one source host: the base seed mixed through splitmix64
   with the host index folded in — the [Fault.wire_rng] recipe. Purely a
   function of (seed, host): host h's flows are identical whatever the
   fabric size or how many other hosts the plan covers. *)
let host_rng ~seed i =
  let r = Rng.create ~seed in
  let mixed = Rng.bits64 r in
  let keyed = Int64.logxor mixed (Int64.of_int (((i + 1) * 1_000_003) + 1)) in
  Rng.of_state (Rng.bits64 (Rng.of_state keyed))

let default_dst ~hosts src = (src + (hosts / 2)) mod hosts

let poisson ?(seed = 11) ?dst_of ~hosts ~mix ~load ~link_bps ~window () =
  validate mix;
  if hosts < 2 then invalid_arg "Workload.poisson: need at least 2 hosts";
  if window <= 0 then invalid_arg "Workload.poisson: empty window";
  let rate = arrival_rate ~load ~link_bps ~mix in
  let dst_of = match dst_of with Some f -> f | None -> default_dst ~hosts in
  let horizon = Time_ns.to_sec_f window in
  let flows = ref [] in
  let count = ref 0 in
  for src = 0 to hosts - 1 do
    let rng = host_rng ~seed src in
    let rec go now =
      let now = now +. exp_gap rng ~rate in
      if now < horizon then begin
        let size = max 1 (sample_bytes rng mix) in
        let dst = dst_of src in
        if dst < 0 || dst >= hosts || dst = src then
          invalid_arg "Workload.poisson: dst_of out of range";
        flows := { at = Time_ns.of_sec_f now; src; dst; size } :: !flows;
        incr count;
        go now
      end
    in
    go 0.0
  done;
  let arr = Array.of_list !flows in
  Array.sort compare_flow arr;
  arr

(* N:1 incast: [senders] all fire [bytes] at [dst] in the same
   nanosecond — the synchronized-read pattern that motivates both
   trimming transports and the paper's queue-visibility TPPs. *)
let incast ~at ~dst ~senders ~bytes =
  if bytes <= 0 then invalid_arg "Workload.incast: bytes must be positive";
  let arr =
    Array.of_list
      (List.filter_map
         (fun src ->
           if src = dst then None else Some { at; src; dst; size = bytes })
         senders)
  in
  Array.sort compare_flow arr;
  arr

let merge a b =
  let out = Array.append a b in
  Array.sort compare_flow out;
  out

let total_bytes flows = Array.fold_left (fun acc f -> acc + f.size) 0 flows
