(** Experiment E9 (extension): flow completion times.

    The paper motivates RCP with flows "finishing quickly"; this
    experiment quantifies it on the workload the introduction implies:
    Poisson flow arrivals with heavy-tailed (Pareto) sizes crossing a
    shared bottleneck, driven either by RCP* (TPPs) or by a TCP-like
    AIMD controller that needs no dataplane support. Short flows are
    where the difference shows: AIMD spends their whole lifetime
    probing for bandwidth, while RCP* starts at the network's advertised
    fair rate within one control period. *)

type controller =
  | Rcp_star_ctl  (** TPP-driven RCP (paper §2.2) *)
  | Aimd_ctl      (** rate-based AIMD on loss reports *)
  | Tcp_ctl       (** the real thing: Reno-style reliable transport *)

type params = {
  core_bps : int;
  edge_bps : int;
  link_delay_ns : int;
  pairs : int;                (** sender/receiver host pairs *)
  arrivals_per_sec : float;
  mean_flow_bytes : float;
  pareto_shape : float;
  payload_bytes : int;
  duration : int;
  seed : int;
  short_threshold_bytes : int;
}

val default : params

type result = {
  started : int;
  completed : int;
  short_fct : Tpp_util.Stats.t;   (** seconds *)
  long_fct : Tpp_util.Stats.t;
  all_fct : Tpp_util.Stats.t;
  bottleneck_drops : int;
}

val run : controller -> params -> result

(** {2 Five-way transport testbed}

    The same pre-drawn Poisson/Pareto workload crosses a k-ary fat-tree
    under five transports; the runner is built on {!Tpp_parsim.Parsim},
    so sequential ([shards = 1]) and sharded runs of the same
    configuration must produce bit-identical {!fingerprint}s. *)

type transport =
  | Rcp_star_t  (** TPP-driven RCP (paper §2.2) *)
  | Tcp_t       (** Reno-style reliable transport *)
  | Dctcp_t     (** ECN-fraction rate control *)
  | Ndp_t       (** receiver-driven pull/trim transport *)
  | Tpp_lb_t    (** AIMD + CONGA-style flowlet steering from TPP probes *)

val transport_name : transport -> string
val all_transports : transport list

type fabric_params = {
  fk : int;              (** fat-tree arity (k even) *)
  f_bps : int;           (** every link's rate *)
  f_delay_ns : int;      (** every link's propagation delay *)
  f_load : float;        (** offered load as a fraction of access bandwidth *)
  f_mean_bytes : float;
  f_shape : float;       (** Pareto shape (> 1) *)
  f_payload : int;       (** data bytes per packet *)
  f_duration : int;
  f_seed : int;
  f_short_bytes : int;   (** "short flow" threshold for reporting *)
  f_chaos_drop : float;  (** drop probability on every access link; 0 = clean *)
  f_max_bytes : int;
      (** flow-size cap applied to the Pareto draw ([max_int] = none):
          completion-gated runs bound sizes so every started flow can
          finish inside the drain window *)
}

val fabric_default : fabric_params

type fabric_outcome = {
  fo_transport : transport;
  fo_shards : int;
  fo_started : int;
  fo_completed : int;
  fo_samples : (int * int) list;
      (** (flow bytes, flow completion time ns), sorted *)
  fo_drops : int;   (** switch-port drops summed over owned switches *)
  fo_trims : int;   (** trim-to-header events (nonzero only for NDP) *)
  fo_events : int;  (** engine events over all shards (not identity-stable) *)
  fo_ok : bool;     (** transport invariants held (NDP state machine) *)
}

val fabric_run : ?shards:int -> transport -> fabric_params -> fabric_outcome
(** Runs the workload under one transport. [shards = 1] (default) is the
    sequential baseline; any sharding of the same parameters must agree
    on {!fingerprint}. *)

val fingerprint : fabric_outcome -> int list
(** Identity-stable digest: started, completed, drops, trims and the
    flattened sorted samples — everything except wall-clock artifacts
    like event counts. *)

type fct_summary = {
  fs_n : int;
  fs_mean_ns : float;
  fs_p50_ns : int;
  fs_p99_ns : int;
}

val summarize : (int * int) list -> fct_summary

val short_samples : fabric_outcome -> threshold:int -> (int * int) list
