module Time_ns = Tpp_util.Time_ns
module Engine = Tpp_sim.Engine
module Net = Tpp_sim.Net
module Fault = Tpp_sim.Fault
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Faultfind = Tpp_ndb.Faultfind

type result = {
  circuits : int;
  failed_link : Faultfind.link;
  failing_circuits : int;
  detection_ms : float;
  suspects : Faultfind.link list;
  true_link_in_suspects : bool;
}

let fail_at = Time_ns.sec 1
let probe_period = Time_ns.ms 10
let timeout = Time_ns.ms 50
let duration = Time_ns.sec 2

let run () =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:100_000_000 ~delay:(Time_ns.us 20) () in
  let net = ft.Topology.f_net in
  let hosts = ft.Topology.f_hosts in
  let n = Array.length hosts in
  let stacks = Array.map (Stack.create net) hosts in
  Array.iter Probe.install_echo stacks;
  let circuits =
    List.init n (fun i -> (stacks.(i), hosts.((i + 4) mod n)))
  in
  let finder = Faultfind.create ~circuits ~period:probe_period ~timeout () in
  Faultfind.start finder ~at:(Time_ns.ms 10) ();
  (* Ground truth: kill the aggregation->core hop of circuit 0's route.
     Map its switch id back to the node that owns the egress port. *)
  let failed_link =
    match Faultfind.links_of_circuit finder 0 with
    | _ :: (agg_to_core : Faultfind.link) :: _ -> agg_to_core
    | _ -> invalid_arg "Faults.run: circuit 0 shorter than expected"
  in
  let node_of_switch_id swid =
    match
      List.find_opt (fun (_, sw) -> Switch.id sw = swid) (Net.switches net)
    with
    | Some (node, _) -> node
    | None -> invalid_arg "Faults.run: unknown switch id"
  in
  Engine.at eng fail_at (fun () ->
      Net.set_link_up net
        (node_of_switch_id failed_link.Faultfind.from_switch,
         failed_link.Faultfind.egress_port)
        false);
  (* Sample for the detection latency. *)
  let detected_at = ref None in
  Engine.every eng ~period:(Time_ns.ms 5) ~until:duration (fun () ->
      let now = Engine.now eng in
      if now > fail_at && !detected_at = None then
        if List.exists not (Faultfind.healthy finder ~now) then
          detected_at := Some now);
  Engine.run eng ~until:duration;
  let now = Engine.now eng in
  let failing = List.filter not (Faultfind.healthy finder ~now) in
  let suspects = Faultfind.suspects finder ~now in
  {
    circuits = n;
    failed_link;
    failing_circuits = List.length failing;
    detection_ms =
      (match !detected_at with
      | Some t -> Time_ns.to_ms_f (t - fail_at)
      | None -> Float.infinity);
    suspects;
    true_link_in_suspects =
      List.exists (Faultfind.same_cable finder failed_link) suspects;
  }

(* -- scenario matrix ------------------------------------------------ *)

type scenario = Permanent | Flap | Dual_failure | Lossy_link

let scenario_name = function
  | Permanent -> "permanent"
  | Flap -> "flap"
  | Dual_failure -> "dual-failure"
  | Lossy_link -> "lossy-link"

type scenario_result = {
  sc_scenario : scenario;
  sc_circuits : int;
  sc_true_links : Faultfind.link list;
  sc_degraded_circuits : int;
  sc_detection_ms : float;
  sc_suspects : Faultfind.link list;
  sc_localised : bool;
  sc_fault_stats : Fault.stats;
}

let run_scenario ?(seed = 42) scenario =
  let eng = Engine.create () in
  let ft = Topology.fat_tree eng ~k:4 ~bps:100_000_000 ~delay:(Time_ns.us 20) () in
  let net = ft.Topology.f_net in
  let hosts = ft.Topology.f_hosts in
  let n = Array.length hosts in
  let stacks = Array.map (Stack.create net) hosts in
  Array.iter Probe.install_echo stacks;
  let circuits = List.init n (fun i -> (stacks.(i), hosts.((i + 4) mod n))) in
  let finder = Faultfind.create ~circuits ~period:probe_period ~timeout () in
  Faultfind.start finder ~at:(Time_ns.ms 10) ();
  let node_of_switch_id swid =
    match
      List.find_opt (fun (_, sw) -> Switch.id sw = swid) (Net.switches net)
    with
    | Some (node, _) -> node
    | None -> invalid_arg "Faults.run_scenario: unknown switch id"
  in
  let agg_to_core circuit =
    match Faultfind.links_of_circuit finder circuit with
    | _ :: (l : Faultfind.link) :: _ -> l
    | _ -> invalid_arg "Faults.run_scenario: circuit shorter than expected"
  in
  let endpoint (l : Faultfind.link) =
    (node_of_switch_id l.Faultfind.from_switch, l.Faultfind.egress_port)
  in
  let primary = agg_to_core 0 in
  let true_links =
    match scenario with
    | Permanent | Flap | Lossy_link -> [ primary ]
    | Dual_failure ->
      (* A second simultaneous failure on a different physical cable,
         taken from another circuit's aggregation->core hop. *)
      let rec second i =
        if i >= n then invalid_arg "Faults.run_scenario: no second distinct cable"
        else
          let l = agg_to_core i in
          if Faultfind.same_cable finder primary l then second (i + 1) else l
      in
      [ primary; second 1 ]
  in
  let fault = Fault.create ~seed in
  let until_ = duration in
  List.iter
    (fun l ->
      let ends = endpoint l in
      match scenario with
      | Permanent | Dual_failure -> Fault.link_down fault ~at:fail_at ends
      | Flap ->
        Fault.flap fault ~from_:fail_at ~until_ ~period:(Time_ns.ms 30)
          ~down_for:(Time_ns.ms 15) ends
      | Lossy_link -> Fault.lossy fault ~from_:fail_at ~until_ ~drop:0.4 ends)
    true_links;
  Fault.attach fault net;
  let detected_at = ref None in
  Engine.every eng ~period:(Time_ns.ms 5) ~until:duration (fun () ->
      let now = Engine.now eng in
      if now > fail_at && !detected_at = None then
        if List.exists Fun.id (Faultfind.degraded finder ~now) then
          detected_at := Some now);
  Engine.run eng ~until:duration;
  let now = Engine.now eng in
  let degraded = List.filter Fun.id (Faultfind.degraded finder ~now) in
  let suspects = Faultfind.suspects finder ~now in
  {
    sc_scenario = scenario;
    sc_circuits = n;
    sc_true_links = true_links;
    sc_degraded_circuits = List.length degraded;
    sc_detection_ms =
      (match !detected_at with
      | Some t -> Time_ns.to_ms_f (t - fail_at)
      | None -> Float.infinity);
    sc_suspects = suspects;
    sc_localised =
      List.for_all
        (fun l -> List.exists (Faultfind.same_cable finder l) suspects)
        true_links;
    sc_fault_stats = Fault.stats fault;
  }

let run_matrix ?seed () =
  List.map (run_scenario ?seed) [ Permanent; Flap; Dual_failure; Lossy_link ]
