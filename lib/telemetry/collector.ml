type link_state = {
  mutable l_hops : int;
  mutable l_bytes : int;
  mutable l_faults : int;
  depth_ewma : Sketch.Ewma.t;
  depth_digest : Sketch.Tdigest.t;
  fault_ewma : Sketch.Ewma.t;
}

type t = {
  digest_delta : float;
  depth_alpha : float;
  fault_alpha : float;
  mutable cards : int;
  mutable hops : int;
  mutable probe_retries : int;
  mutable probe_failures : int;
  mutable fault_events : int;
  by_switch : (int, int ref) Hashtbl.t;
  by_link : (int, link_state) Hashtbl.t;  (* key = switch * 65536 + port *)
  flows : Sketch.Cms.t;
}

let link_key ~switch ~port = (switch * 65536) + port
let key_switch k = k / 65536
let key_port k = k mod 65536

let create ?(cms_width = 2048) ?(cms_depth = 4) ?(digest_delta = 100.0)
    ?(depth_alpha = 0.2) ?(fault_alpha = 0.1) () =
  {
    digest_delta;
    depth_alpha;
    fault_alpha;
    cards = 0;
    hops = 0;
    probe_retries = 0;
    probe_failures = 0;
    fault_events = 0;
    by_switch = Hashtbl.create 64;
    by_link = Hashtbl.create 256;
    flows = Sketch.Cms.create ~width:cms_width ~depth:cms_depth ();
  }

(* Hashtbl.find + exception rather than find_opt: the option would be
   a fresh allocation per card on the absorb path. *)
let link_state t key =
  match Hashtbl.find t.by_link key with
  | ls -> ls
  | exception Not_found ->
    let ls =
      {
        l_hops = 0;
        l_bytes = 0;
        l_faults = 0;
        depth_ewma = Sketch.Ewma.create ~alpha:t.depth_alpha ();
        depth_digest = Sketch.Tdigest.create ~delta:t.digest_delta ();
        fault_ewma = Sketch.Ewma.create ~alpha:t.fault_alpha ();
      }
    in
    Hashtbl.add t.by_link key ls;
    ls

let absorb_card t buf ~off =
  t.cards <- t.cards + 1;
  let kind = Wire.kind buf ~off in
  let node = Wire.node buf ~off in
  if kind = Wire.kind_code Wire.Hop then begin
    t.hops <- t.hops + 1;
    (match Hashtbl.find t.by_switch node with
    | r -> incr r
    | exception Not_found -> Hashtbl.add t.by_switch node (ref 1));
    let wire_bytes = Wire.wire_bytes buf ~off in
    Sketch.Cms.add t.flows ~key:(Wire.flow_hash buf ~off) wire_bytes;
    let ls = link_state t (link_key ~switch:node ~port:(Wire.out_port buf ~off)) in
    ls.l_hops <- ls.l_hops + 1;
    ls.l_bytes <- ls.l_bytes + wire_bytes;
    let depth = float_of_int (Wire.value buf ~off) in
    Sketch.Ewma.observe ls.depth_ewma depth;
    Sketch.Tdigest.add ls.depth_digest depth;
    Sketch.Ewma.observe ls.fault_ewma 0.0
  end
  else if kind = Wire.kind_code Wire.Probe_retry then
    t.probe_retries <- t.probe_retries + 1
  else if kind = Wire.kind_code Wire.Probe_failure then
    t.probe_failures <- t.probe_failures + 1
  else if kind = Wire.kind_code Wire.Fault_event then begin
    t.fault_events <- t.fault_events + 1;
    let ls = link_state t (link_key ~switch:node ~port:(Wire.out_port buf ~off)) in
    ls.l_faults <- ls.l_faults + 1;
    Sketch.Ewma.observe ls.fault_ewma 1.0
  end

let absorb t sink = Sink.drain sink (absorb_card t)

let cards t = t.cards
let hops t = t.hops
let probe_retries t = t.probe_retries
let probe_failures t = t.probe_failures
let fault_events t = t.fault_events

let switch_hops t ~switch =
  match Hashtbl.find_opt t.by_switch switch with
  | Some r -> !r
  | None -> 0

let flow_bytes t ~flow_hash = Sketch.Cms.estimate t.flows ~key:flow_hash
let cms t = t.flows

let links t =
  Hashtbl.fold (fun k _ acc -> (key_switch k, key_port k) :: acc) t.by_link []
  |> List.sort compare

let with_link t ~switch ~port ~default f =
  match Hashtbl.find_opt t.by_link (link_key ~switch ~port) with
  | Some ls -> f ls
  | None -> default

let link_hops t ~switch ~port =
  with_link t ~switch ~port ~default:0 (fun ls -> ls.l_hops)

let link_bytes t ~switch ~port =
  with_link t ~switch ~port ~default:0 (fun ls -> ls.l_bytes)

let link_faults t ~switch ~port =
  with_link t ~switch ~port ~default:0 (fun ls -> ls.l_faults)

let link_depth_ewma t ~switch ~port =
  with_link t ~switch ~port ~default:0.0 (fun ls ->
      Sketch.Ewma.value ls.depth_ewma)

let link_depth_quantile t ~switch ~port ~q =
  with_link t ~switch ~port ~default:Float.nan (fun ls ->
      Sketch.Tdigest.quantile ls.depth_digest q)

let link_fault_ewma t ~switch ~port =
  with_link t ~switch ~port ~default:0.0 (fun ls ->
      Sketch.Ewma.value ls.fault_ewma)

let hottest_link t ?(exclude = []) () =
  Hashtbl.fold
    (fun k ls best ->
      let sw = key_switch k and port = key_port k in
      if List.mem (sw, port) exclude then best
      else
        match best with
        | Some (bsw, bport, bbytes)
          when bbytes > ls.l_bytes
               || (bbytes = ls.l_bytes && (bsw, bport) < (sw, port)) ->
          best
        | _ -> Some (sw, port, ls.l_bytes))
    t.by_link None

let merge ~into src =
  into.cards <- into.cards + src.cards;
  into.hops <- into.hops + src.hops;
  into.probe_retries <- into.probe_retries + src.probe_retries;
  into.probe_failures <- into.probe_failures + src.probe_failures;
  into.fault_events <- into.fault_events + src.fault_events;
  Hashtbl.iter
    (fun sw r ->
      match Hashtbl.find_opt into.by_switch sw with
      | Some r' -> r' := !r' + !r
      | None -> Hashtbl.add into.by_switch sw (ref !r))
    src.by_switch;
  Hashtbl.iter
    (fun k ls ->
      let dst = link_state into k in
      dst.l_hops <- dst.l_hops + ls.l_hops;
      dst.l_bytes <- dst.l_bytes + ls.l_bytes;
      dst.l_faults <- dst.l_faults + ls.l_faults;
      (* EWMAs cannot be merged exactly; carry the heavier side's view
         weighted by observation count so trends survive a merge. *)
      let carry dst_e src_e =
        let n = Sketch.Ewma.count src_e in
        if n > 0 && n >= Sketch.Ewma.count dst_e then
          Sketch.Ewma.observe dst_e (Sketch.Ewma.value src_e)
      in
      carry dst.depth_ewma ls.depth_ewma;
      carry dst.fault_ewma ls.fault_ewma;
      Sketch.Tdigest.merge ~into:dst.depth_digest ls.depth_digest)
    src.by_link;
  Sketch.Cms.merge ~into:into.flows src.flows

(* Same mixer as the sketches; see sketch.ml. *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  (z lxor (z lsr 31)) land max_int

let fingerprint t =
  (* Order-independent: commutative-sum the per-switch and per-link
     contributions, then mix with scalar counters and the CMS. *)
  let sw = ref 0 in
  Hashtbl.iter (fun id r -> sw := !sw + mix ((id * 0x1000003) lxor !r)) t.by_switch;
  let li = ref 0 in
  Hashtbl.iter
    (fun k ls ->
      li :=
        !li
        + mix (k lxor mix (ls.l_hops lxor mix (ls.l_bytes lxor ls.l_faults))))
    t.by_link;
  let h = mix (t.cards lxor mix (t.hops lxor mix !sw)) in
  let h = mix (h lxor mix !li) in
  let h =
    mix
      (h
      lxor mix
             (t.probe_retries
             lxor mix (t.probe_failures lxor t.fault_events)))
  in
  mix (h lxor Sketch.Cms.fingerprint t.flows)
