(* Fixed 40-byte big-endian postcard records, written and read in place.
   See wire.mli for the layout. Every store is a plain byte store of an
   immediate int — no Int32/Int64 boxing — so encoding a card from the
   switch hot path allocates nothing, and neither does decoding one in
   the collector. *)

let bytes_per_card = 40

type kind = Hop | Probe_retry | Probe_failure | Fault_event

let kind_code = function
  | Hop -> 0
  | Probe_retry -> 1
  | Probe_failure -> 2
  | Fault_event -> 3

let kind_of_code = function
  | 0 -> Some Hop
  | 1 -> Some Probe_retry
  | 2 -> Some Probe_failure
  | 3 -> Some Fault_event
  | _ -> None

let u16 = 0xFFFF
let u32 = 0xFFFF_FFFF

let set_u8 buf off v = Bytes.unsafe_set buf off (Char.unsafe_chr (v land 0xFF))

let set_u16 buf off v =
  set_u8 buf off (v lsr 8);
  set_u8 buf (off + 1) v

let set_u32 buf off v =
  set_u16 buf off (v lsr 16);
  set_u16 buf (off + 2) v

(* The top byte carries bits 56..62 of the (63-bit) int; values round-
   trip exactly for every non-negative OCaml int. *)
let set_u64 buf off v =
  set_u32 buf off (v lsr 32);
  set_u32 buf (off + 4) v

let get_u8 buf off = Char.code (Bytes.unsafe_get buf off)
let get_u16 buf off = (get_u8 buf off lsl 8) lor get_u8 buf (off + 1)
let get_u32 buf off = (get_u16 buf off lsl 16) lor get_u16 buf (off + 2)
let get_u64 buf off = (get_u32 buf off lsl 32) lor get_u32 buf (off + 4)

let write buf ~off ~kind ~in_port ~out_port ~node ~value ~version ~subject
    ~time_ns ~flow_hash ~wire_bytes ~entry =
  set_u8 buf off kind;
  set_u8 buf (off + 1) in_port;
  set_u16 buf (off + 2) (out_port land u16);
  set_u32 buf (off + 4) (node land u32);
  set_u32 buf (off + 8) (value land u32);
  set_u32 buf (off + 12) (version land u32);
  set_u64 buf (off + 16) subject;
  set_u64 buf (off + 24) time_ns;
  set_u32 buf (off + 32) (flow_hash land u32);
  set_u16 buf (off + 36) (min wire_bytes u16);
  set_u16 buf (off + 38) (min entry u16)

let kind buf ~off = get_u8 buf off
let in_port buf ~off = get_u8 buf (off + 1)
let out_port buf ~off = get_u16 buf (off + 2)
let node buf ~off = get_u32 buf (off + 4)
let value buf ~off = get_u32 buf (off + 8)
let version buf ~off = get_u32 buf (off + 12)
let subject buf ~off = get_u64 buf (off + 16)
let time_ns buf ~off = get_u64 buf (off + 24)
let flow_hash buf ~off = get_u32 buf (off + 32)
let wire_bytes buf ~off = get_u16 buf (off + 36)
let entry buf ~off = get_u16 buf (off + 38)
