(** The telemetry collector: decodes binary postcards in place and
    folds them into constant-memory per-link and per-flow state.

    One {!absorb} call drains a {!Sink} and updates, per card:

    - total and per-kind counters;
    - per-switch hop counts;
    - a {!Sketch.Cms} of bytes per flow hash (heavy-hitter detection);
    - per-link ((switch, out port)) hop/byte counters, a depth
      {!Sketch.Ewma} and a depth {!Sketch.Tdigest};
    - per-link fault {!Sketch.Ewma} driven by [Fault_event] cards;
    - per-node probe retry/failure counts from end-host cards.

    Everything a query returns is derived from bounded state: the
    sketches are fixed-size and the per-link tables are bounded by the
    number of physical links. {!fingerprint} hashes only
    order-independent state (counters and the CMS), so a sequential
    run and a sharded run over the same traffic agree bit-exactly. *)

type t

val create :
  ?cms_width:int ->
  ?cms_depth:int ->
  ?digest_delta:float ->
  ?depth_alpha:float ->
  ?fault_alpha:float ->
  unit ->
  t

val absorb : t -> Sink.t -> unit
(** Drains the sink, decoding every pending card in place. *)

val absorb_card : t -> bytes -> off:int -> unit
(** Folds in one card directly (the [Sink.drain] callback). *)

(** {2 Counters} *)

val cards : t -> int
val hops : t -> int
val probe_retries : t -> int
val probe_failures : t -> int
val fault_events : t -> int
val switch_hops : t -> switch:int -> int

(** {2 Flows} *)

val flow_bytes : t -> flow_hash:int -> int
(** CMS estimate of bytes carried by the flow; never underestimates. *)

val cms : t -> Sketch.Cms.t

(** {2 Links} — a link is a switch egress: [(switch id, out port)]. *)

val links : t -> (int * int) list
(** Every link that has appeared on a hop or fault card, sorted. *)

val link_hops : t -> switch:int -> port:int -> int
val link_bytes : t -> switch:int -> port:int -> int

val link_faults : t -> switch:int -> port:int -> int
(** [Fault_event] cards attributed to this link. *)

val link_depth_ewma : t -> switch:int -> port:int -> float
(** EWMA of queue depth (bytes) observed at enqueue on this link. *)

val link_depth_quantile : t -> switch:int -> port:int -> q:float -> float
(** t-digest quantile of the same depth series; [nan] if unseen. *)

val link_fault_ewma : t -> switch:int -> port:int -> float
(** EWMA over hop observations: 1.0 for each [Fault_event] on the
    link, 0.0 for each clean hop. Approximates the link's loss rate
    and decays as clean traffic resumes. *)

val hottest_link : t -> ?exclude:(int * int) list -> unit -> (int * int * int) option
(** [(switch, port, bytes)] of the busiest link by byte count,
    excluding [exclude]; ties break toward the smaller id pair. *)

(** {2 Sharding} *)

val merge : into:t -> t -> unit
(** Sums counters, merges sketches and per-link state. Merging shard
    collectors must yield the same {!fingerprint} as one sequential
    collector over the same cards. *)

val fingerprint : t -> int
(** Order-independent digest: counters, per-switch and per-link
    counts, and the CMS cells. Excludes EWMAs and digests (those are
    order-sensitive by nature). *)
