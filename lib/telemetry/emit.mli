(** Wiring from the instrumented layers into a {!Sink}.

    Three producers exist: the switch dataplane (binary hop cards via
    {!Tpp_asic.Switch.set_bin_tap}), the end-host reliable prober
    (retry/failure evidence via {!Tpp_endhost.Probe.Reliable.set_observer}),
    and the fault-injection layer ({!Tpp_sim.Fault.set_observer}). Each
    installer below points one of them at a sink; postcards from all
    three interleave in emission order and are told apart by their
    {!Wire.kind}. *)

module Net = Tpp_sim.Net

val tap_switches : Sink.t -> Net.t -> unit
(** Installs a binary tap on every switch of the net: one [Hop] card
    per frame reaching an egress queue. Replaces any previous binary
    tap (the ndb [Frame.t] tap is untouched). *)

val untap_switches : Net.t -> unit

val probe_events : Sink.t -> node:int -> Tpp_endhost.Probe.Reliable.t -> unit
(** [Probe_retry] / [Probe_failure] cards from this prober, stamped
    with the probing host's [node] id; [subject] is the probe seq,
    [value] the transmissions so far. *)

val fault_events : Sink.t -> Tpp_sim.Fault.t -> unit
(** One [Fault_event] card per injection: [node]/[out_port] name the
    transmitting endpoint of the affected wire, [value] is the
    {!fault_cause_code}, [subject] the lost frame's id. *)

val fault_cause_code : Tpp_sim.Fault.cause -> int
(** Stable small-int encoding of the injection cause carried in a
    [Fault_event] card's [value] field. *)
