(** The postcard ingest buffer between the dataplane and the collector.

    Producers (switch taps, end-host emitters) append fixed-size
    {!Wire} cards into the current chunk with plain byte stores; full
    chunks rotate onto a {!Tpp_util.Ring} of pending chunks, and the
    collector drains them in place, recycling each chunk back to a free
    list. Steady state allocates nothing: the same [max_chunks] byte
    buffers circulate forever.

    Memory is bounded by construction: at most [max_chunks] chunks ever
    exist. When a producer outruns the collector and every chunk is
    full, the {e oldest} pending chunk is overwritten (its cards are
    counted in {!dropped}) — the newest telemetry wins, exactly what a
    reacting controller wants. *)

type t

val create : ?cards_per_chunk:int -> ?max_chunks:int -> unit -> t
(** [cards_per_chunk] (default 1024) cards per chunk; [max_chunks]
    (default 64) bounds total chunks alive, pending and free. At least
    2 chunks. *)

val emit :
  t ->
  kind:int ->
  in_port:int ->
  out_port:int ->
  node:int ->
  value:int ->
  version:int ->
  subject:int ->
  time_ns:int ->
  flow_hash:int ->
  wire_bytes:int ->
  entry:int ->
  unit
(** Appends one card. Allocation-free once the chunk pool has grown to
    its working set. *)

val emit_hop :
  t ->
  now:int ->
  switch_id:int ->
  in_port:int ->
  out_port:int ->
  queue_bytes:int ->
  version:int ->
  frame_id:int ->
  flow_hash:int ->
  wire_bytes:int ->
  entry:int ->
  unit
(** {!emit} specialised to the switch hot path (kind {!Wire.Hop}). *)

val drain : t -> (bytes -> off:int -> unit) -> unit
(** Flushes the current chunk and calls the decoder once per pending
    card, oldest chunk first, then recycles every chunk. The callback
    must not retain [bytes] — the buffer is reused. *)

val pending : t -> int
(** Cards buffered and not yet drained. *)

val emitted : t -> int
(** Cards ever accepted (drops excluded). *)

val dropped : t -> int
(** Cards lost to chunk-pool exhaustion (collector too slow). *)

val chunks_alive : t -> int
(** Chunks currently allocated; never exceeds [max_chunks]. *)

val card_bytes_alive : t -> int
(** Total buffer bytes held — the bounded-memory witness. *)
