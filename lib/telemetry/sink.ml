module Ring = Tpp_util.Ring

type chunk = { buf : bytes; mutable len : int }
(* [len] is the fill level in bytes; always a multiple of
   [Wire.bytes_per_card]. *)

type t = {
  chunk_bytes : int;
  max_chunks : int;
  mutable cur : chunk;
  pending_q : chunk Ring.t;  (* full (or flushed) chunks, oldest first *)
  free : chunk Ring.t;       (* drained chunks awaiting reuse *)
  mutable chunks_alive : int;
  mutable emitted : int;
  mutable dropped : int;
}

let dummy_chunk = { buf = Bytes.empty; len = 0 }

let create ?(cards_per_chunk = 1024) ?(max_chunks = 64) () =
  if cards_per_chunk < 1 then invalid_arg "Sink.create: cards_per_chunk";
  let max_chunks = max 2 max_chunks in
  let chunk_bytes = cards_per_chunk * Wire.bytes_per_card in
  {
    chunk_bytes;
    max_chunks;
    cur = { buf = Bytes.create chunk_bytes; len = 0 };
    pending_q = Ring.create ~capacity:max_chunks ~dummy:dummy_chunk ();
    free = Ring.create ~capacity:max_chunks ~dummy:dummy_chunk ();
    chunks_alive = 1;
    emitted = 0;
    dropped = 0;
  }

(* The current chunk is full: park it on the pending ring and install an
   empty one. Reuse a drained chunk when one is free; allocate while
   under the bound; past the bound, cannibalise the oldest pending chunk
   — its cards are lost (counted), memory stays put. *)
let rotate t =
  Ring.push t.pending_q t.cur;
  let next =
    match Ring.take_opt t.free with
    | Some c -> c
    | None ->
      if t.chunks_alive < t.max_chunks then begin
        t.chunks_alive <- t.chunks_alive + 1;
        { buf = Bytes.create t.chunk_bytes; len = 0 }
      end
      else begin
        match Ring.take_opt t.pending_q with
        | Some oldest ->
          t.dropped <- t.dropped + (oldest.len / Wire.bytes_per_card);
          oldest.len <- 0;
          oldest
        | None -> assert false (* we just pushed cur *)
      end
  in
  next.len <- 0;
  t.cur <- next

let emit t ~kind ~in_port ~out_port ~node ~value ~version ~subject ~time_ns
    ~flow_hash ~wire_bytes ~entry =
  if t.cur.len + Wire.bytes_per_card > t.chunk_bytes then rotate t;
  let c = t.cur in
  Wire.write c.buf ~off:c.len ~kind ~in_port ~out_port ~node ~value ~version
    ~subject ~time_ns ~flow_hash ~wire_bytes ~entry;
  c.len <- c.len + Wire.bytes_per_card;
  t.emitted <- t.emitted + 1

let emit_hop t ~now ~switch_id ~in_port ~out_port ~queue_bytes ~version
    ~frame_id ~flow_hash ~wire_bytes ~entry =
  emit t ~kind:0 ~in_port ~out_port ~node:switch_id ~value:queue_bytes
    ~version ~subject:frame_id ~time_ns:now ~flow_hash ~wire_bytes ~entry

let drain t f =
  (* Flush the partial chunk so a window sees everything emitted before
     it; chunk order on the ring is emission order. *)
  if t.cur.len > 0 then rotate t;
  let rec loop () =
    match Ring.take_opt t.pending_q with
    | None -> ()
    | Some c ->
      let n = c.len in
      let off = ref 0 in
      while !off < n do
        f c.buf ~off:!off;
        off := !off + Wire.bytes_per_card
      done;
      c.len <- 0;
      Ring.push t.free c;
      loop ()
  in
  loop ()

let pending t =
  let cards = ref (t.cur.len / Wire.bytes_per_card) in
  Ring.iter (fun c -> cards := !cards + (c.len / Wire.bytes_per_card))
    t.pending_q;
  !cards

let emitted t = t.emitted
let dropped t = t.dropped
let chunks_alive t = t.chunks_alive
let card_bytes_alive t = t.chunks_alive * t.chunk_bytes
