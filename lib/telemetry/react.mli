(** The reacting controller: closes the loop from collector windows to
    installed switch state (paper §3.2 — the controller answers a
    congested / failing fabric with new forwarding state, at RTT
    timescales rather than control-protocol timescales).

    Two reactions, both expressed as route rewrites stamped with a
    bumped table version (so the ndb/TPP tracers can watch the update
    propagate) plus a TPP-modelled SRAM flag on the touched switch:

    - {e drain}: a link whose fault EWMA crosses the threshold — or
      that end-host probing ({!Tpp_ndb.Faultfind}) already names a
      suspect — is taken out of every ECMP group that has an
      alternative, so flows hash away from the dying cable;
    - {e reweight}: the byte-hottest link (by CMS-backed link
      accounting) gets its ECMP share cut to one slot while its
      siblings get two, shifting ~2/3 of new flow hashes elsewhere.

    Reactions are idempotent per link: a drained or reweighted link is
    remembered and not re-installed every window. *)

module Net = Tpp_sim.Net

type action =
  | Drained of { switch : int; port : int }
  | Reweighted of { switch : int; port : int }
      (** [port] is the de-weighted (hot) egress. *)

type t

val create :
  ?fault_threshold:float ->
  ?min_fault_events:int ->
  ?hot_ratio:float ->
  ?version:int ->
  Net.t ->
  t
(** [fault_threshold] (default 0.25): drain when a link's
    {!Collector.link_fault_ewma} reaches it; [min_fault_events]
    (default 3) fault cards before the EWMA is trusted; [hot_ratio]
    (default 4.0): reweight when the hottest link carries at least
    that multiple of the mean per-link bytes. [version] (default 1)
    is the table version the routes were installed at; rewrites bump
    from there. Allocates one SRAM word per switch (task ["react"])
    as the drain flag a TPP would write. *)

val step : ?suspects:(int * int) list -> t -> Collector.t -> action list
(** One control round against the collector's current view: drains
    every corroborated suspect (a suspect acts only once it has
    appeared in two consecutive rounds {e and} the collector holds at
    least one fault card for that link — young probe evidence
    over-names cables) and every over-threshold faulty link, then
    considers one reweight. Returns the actions taken {e this} round
    (empty when the fabric looks healthy). *)

val drain : t -> switch:int -> port:int -> unit
(** Removes ([switch], [port]) from every ECMP group on [switch] that
    still has another live port; destinations reachable only through
    the drained port keep their route. Sets the switch's drain-flag
    SRAM word. Idempotent. *)

val reweight_away : t -> switch:int -> port:int -> unit
(** Rewrites every multipath group on [switch] containing [port] to
    [2 * siblings + 1 * port] slots. Idempotent per link. *)

val version : t -> int
(** Current table version; bumps on every rewrite. *)

val drained : t -> (int * int) list
val actions : t -> action list
(** Everything done so far, oldest first. *)
