module Net = Tpp_sim.Net
module Fault = Tpp_sim.Fault
module Switch = Tpp_asic.Switch
module Reliable = Tpp_endhost.Probe.Reliable

let tap_switches sink net =
  List.iter
    (fun (node, sw) ->
      (* Hop cards carry the net node id (what Topology/React address
         switches by), not the ASIC's own id. *)
      let switch_id = node in
      Switch.set_bin_tap sw
        (Some
           (fun ~now ~in_port ~out_port ~queue_bytes ~version ~frame_id
                ~flow_hash ~wire_bytes ~entry ->
             Sink.emit_hop sink ~now ~switch_id ~in_port ~out_port
               ~queue_bytes ~version ~frame_id ~flow_hash ~wire_bytes ~entry)))
    (Net.switches net)

let untap_switches net =
  List.iter (fun (_, sw) -> Switch.set_bin_tap sw None) (Net.switches net)

let probe_events sink ~node reliable =
  Reliable.set_observer reliable
    (Some
       (fun ~now ~event ~seq ~attempts ->
         let kind =
           match event with
           | Reliable.Retry -> Wire.kind_code Wire.Probe_retry
           | Reliable.Failure -> Wire.kind_code Wire.Probe_failure
         in
         Sink.emit sink ~kind ~in_port:0 ~out_port:0 ~node ~value:attempts
           ~version:0 ~subject:seq ~time_ns:now ~flow_hash:0 ~wire_bytes:0
           ~entry:0))

let fault_cause_code : Fault.cause -> int = function
  | Fault.Lost_down -> 0
  | Fault.Random_drop -> 1
  | Fault.Corrupt_header -> 2
  | Fault.Corrupt_fcs -> 3
  | Fault.Frozen_arrival -> 4
  | Fault.Restart -> 5

let fault_events sink fault =
  Fault.set_observer fault
    (Some
       (fun ~now ~cause ~node ~port ~frame_id ->
         Sink.emit sink
           ~kind:(Wire.kind_code Wire.Fault_event)
           ~in_port:0 ~out_port:port ~node
           ~value:(fault_cause_code cause) ~version:0 ~subject:frame_id
           ~time_ns:now ~flow_hash:0 ~wire_bytes:0 ~entry:0))
