(** Constant-memory streaming summaries over the postcard stream.

    Exact per-flow and per-link accounting over a fabric is unbounded;
    the collector instead keeps three classic sketches, each with a
    proven error bound the tests check against an exact
    {!Tpp_util.Stats} oracle:

    - {!Cms}: count-min heavy hitters — point estimates never
      underestimate and overestimate by at most [e/width * total] with
      probability [1 - e^-depth];
    - {!Tdigest}: mergeable quantiles (Dunning's merging digest) for
      per-link latency / queue-depth percentiles;
    - {!Ewma}: exponentially weighted moving averages for per-link
      loss and depth trend detection. *)

(** Count-min sketch over int keys. [depth] rows of [width] counters;
    each update adds to one counter per row, a query takes the row
    minimum. Merging is elementwise counter addition, so a merge of
    shard sketches is {e bit-identical} to the single-stream sketch of
    the concatenated input, in any order — which is what lets the
    sharded telemetry fingerprint stay exact. *)
module Cms : sig
  type t

  val create : ?width:int -> ?depth:int -> unit -> t
  (** Defaults: width 2048, depth 4. Width is rounded up to a power of
      two. *)

  val width : t -> int
  val depth : t -> int

  val epsilon : t -> float
  (** [e /. width]: the overestimate of any point query is at most
      [epsilon * total] with probability [1 - e^-depth]. *)

  val add : t -> key:int -> int -> unit
  (** Adds [n] (>= 0) to [key]'s count. Allocation-free. *)

  val estimate : t -> key:int -> int
  (** Never below the true count; above it by at most
      [epsilon * total] w.h.p. *)

  val total : t -> int
  (** Sum of all added counts. *)

  val merge : into:t -> t -> unit
  (** Elementwise sum; both sketches must share [width] and [depth]. *)

  val equal : t -> t -> bool
  val fingerprint : t -> int
  (** Order-independent digest of the cell array, for the sequential
      vs sharded identity check. *)

  val heavy_hitters : t -> candidates:int list -> threshold:int -> (int * int) list
  (** [(key, estimate)] for every candidate at or above [threshold],
      heaviest first. CMS cannot enumerate keys; callers supply the
      candidate set (e.g. links seen this window). *)
end

(** Dunning's merging t-digest: quantiles in O(delta) memory with rank
    error concentrated at the median and vanishing at the tails. Unlike
    {!Cms}, compression depends on arrival order, so a merged digest is
    only {e rank-close} to the single-stream digest — the property
    tests check both against the exact {!Tpp_util.Stats.percentile}
    oracle instead of for bit equality. *)
module Tdigest : sig
  type t

  val create : ?delta:float -> unit -> t
  (** Compression parameter (default 100.0, must be >= 10): at most
      about [2 * delta] centroids are retained. *)

  val add : t -> float -> unit
  val count : t -> int

  val quantile : t -> float -> float
  (** [quantile t q] with [q] in [\[0, 1\]]; [nan] when empty. *)

  val merge : into:t -> t -> unit
  (** Absorbs [t]'s centroids as weighted samples; [t] is unchanged. *)

  val centroids : t -> int
  (** Centroids currently held — the constant-memory witness. *)
end

(** Exponentially weighted moving average; the per-link loss and depth
    trend estimator the controller thresholds on. *)
module Ewma : sig
  type t

  val create : ?alpha:float -> unit -> t
  (** Smoothing factor (default 0.2) in (0, 1]; higher reacts faster. *)

  val observe : t -> float -> unit
  (** First observation initialises the average to the sample. *)

  val value : t -> float
  (** Current average; 0.0 before any observation. *)

  val count : t -> int
end
