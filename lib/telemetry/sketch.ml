(* splitmix64-style finalizer over OCaml's native int: the canonical
   multipliers truncated to 62 bits (the originals don't fit a 63-bit
   int). Good avalanche, pure int arithmetic, no allocation; the
   result is always non-negative. *)
let mix z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  (z lxor (z lsr 31)) land max_int

module Cms = struct
  type t = {
    width : int;  (* power of two *)
    depth : int;
    mask : int;
    salts : int array;  (* per-row hash salt, fixed by row index *)
    cells : int array;  (* depth * width, row-major *)
    mutable total : int;
  }

  let rec pow2_above n acc = if acc >= n then acc else pow2_above n (acc * 2)

  let create ?(width = 2048) ?(depth = 4) () =
    if width < 2 then invalid_arg "Cms.create: width";
    if depth < 1 then invalid_arg "Cms.create: depth";
    let width = pow2_above width 2 in
    {
      width;
      depth;
      mask = width - 1;
      salts = Array.init depth (fun i -> mix ((i + 1) * 0x1e3779b97f4a7c15));
      cells = Array.make (depth * width) 0;
      total = 0;
    }

  let width t = t.width
  let depth t = t.depth
  let epsilon t = Float.exp 1.0 /. float_of_int t.width
  let slot t row key = (row * t.width) + (mix (key lxor t.salts.(row)) land t.mask)

  let add t ~key n =
    if n < 0 then invalid_arg "Cms.add: negative count";
    for row = 0 to t.depth - 1 do
      let i = slot t row key in
      Array.unsafe_set t.cells i (Array.unsafe_get t.cells i + n)
    done;
    t.total <- t.total + n

  let estimate t ~key =
    let est = ref max_int in
    for row = 0 to t.depth - 1 do
      let c = Array.unsafe_get t.cells (slot t row key) in
      if c < !est then est := c
    done;
    !est

  let total t = t.total

  let merge ~into src =
    if into.width <> src.width || into.depth <> src.depth then
      invalid_arg "Cms.merge: dimension mismatch";
    for i = 0 to Array.length into.cells - 1 do
      into.cells.(i) <- into.cells.(i) + src.cells.(i)
    done;
    into.total <- into.total + src.total

  let equal a b =
    a.width = b.width && a.depth = b.depth && a.total = b.total
    && a.cells = b.cells

  let fingerprint t =
    let h = ref (mix (t.width lxor (t.depth * 0x1000003))) in
    Array.iter (fun c -> h := mix (!h lxor c)) t.cells;
    mix (!h lxor t.total)

  let heavy_hitters t ~candidates ~threshold =
    List.filter_map
      (fun key ->
        let e = estimate t ~key in
        if e >= threshold then Some (key, e) else None)
      candidates
    |> List.sort (fun (ka, a) (kb, b) ->
           match Int.compare b a with 0 -> Int.compare ka kb | c -> c)
end

module Tdigest = struct
  (* The digest is on the collector's per-card path, so the whole
     add -> flush -> compress cycle runs without allocating: scratch
     arrays are preallocated, the sort compares unboxed loads (a
     comparator closure would box two floats per comparison), and the
     compress accumulators live in a scratch float array (stores into
     float arrays are unboxed where a float ref would box on every
     assignment). *)
  type t = {
    delta : float;
    means : float array;  (* first [n] slots live, sorted *)
    weights : float array;
    mutable n : int;  (* live centroids *)
    buf : float array;  (* unsorted incoming samples *)
    mutable buf_len : int;
    mutable total : float;  (* compressed weight, excludes buffer *)
    mutable count : int;  (* all samples ever added *)
    sx : float array;  (* scratch: merged means, |means| + |buf| slots *)
    sw : float array;  (* scratch: merged weights *)
    st : float array;  (* scratch: compress accumulator cells *)
  }

  let pi = 4.0 *. Float.atan 1.0

  (* The k1 scale function — k(q) = delta/(2 pi) * asin (2q - 1) —
     gives each cluster a k-size budget of 1, concentrating resolution
     at the tails. [compress] inlines it rather than calling a helper:
     a float-argument call boxes per point. *)

  let create ?(delta = 100.0) () =
    if delta < 10.0 then invalid_arg "Tdigest.create: delta";
    let cap = int_of_float (2.0 *. delta) + 8 in
    (* A buffer several times the centroid cap amortises each compress
       over more samples; still constant memory. *)
    let buf_cap = 4 * cap in
    {
      delta;
      means = Array.make cap 0.0;
      weights = Array.make cap 0.0;
      n = 0;
      buf = Array.make buf_cap 0.0;
      buf_len = 0;
      total = 0.0;
      count = 0;
      sx = Array.make (cap + buf_cap) 0.0;
      sw = Array.make (cap + buf_cap) 0.0;
      st = Array.make 5 0.0;
    }

  (* In-place ascending sort of a.(lo..hi): median-of-three quicksort
     with an insertion-sort tail, all comparisons on unboxed loads. *)
  let rec sort_range (a : float array) lo hi =
    if hi - lo < 16 then
      for i = lo + 1 to hi do
        let x = a.(i) in
        let j = ref i in
        while !j > lo && a.(!j - 1) > x do
          a.(!j) <- a.(!j - 1);
          decr j
        done;
        a.(!j) <- x
      done
    else begin
      let swap i j =
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      in
      let mid = lo + ((hi - lo) / 2) in
      if a.(mid) < a.(lo) then swap mid lo;
      if a.(hi) < a.(lo) then swap hi lo;
      if a.(hi) < a.(mid) then swap hi mid;
      (* a.(lo) <= pivot <= a.(hi): both ends are scan sentinels. *)
      swap mid (hi - 1);
      let pivot = a.(hi - 1) in
      let i = ref lo and j = ref (hi - 1) in
      let partitioning = ref true in
      while !partitioning do
        incr i;
        while a.(!i) < pivot do incr i done;
        decr j;
        while a.(!j) > pivot do decr j done;
        if !i >= !j then partitioning := false else swap !i !j
      done;
      swap !i (hi - 1);
      sort_range a lo (!i - 1);
      sort_range a (!i + 1) hi
    end

  (* One merging pass under the k1 budget over sx/sw.(0..m-1) (sorted,
     weighted points), writing the new centroids back into t. *)
  let compress t m =
    if m > 0 then begin
      let st = t.st in
      (* st.(0) cur_mean, st.(1) cur_w, st.(2) w_before, st.(3) k_lo,
         st.(4) weight total (a float ref would box per iteration) *)
      st.(0) <- t.sx.(0);
      st.(1) <- t.sw.(0);
      st.(2) <- 0.0;
      st.(3) <- -.t.delta /. 4.0 (* k_scale delta 0 *);
      st.(4) <- 0.0;
      for p = 0 to m - 1 do
        st.(4) <- st.(4) +. t.sw.(p)
      done;
      let total = st.(4) in
      let kf = t.delta /. (2.0 *. pi) in
      (* k_scale inlined: calling it would box two floats per point *)
      let out = ref 0 in
      for p = 1 to m - 1 do
        let q = (st.(2) +. st.(1) +. t.sw.(p)) /. total in
        let q = if q > 1.0 then 1.0 else if q < 0.0 then 0.0 else q in
        if (kf *. Float.asin ((2.0 *. q) -. 1.0)) -. st.(3) <= 1.0 then begin
          (* fold point p into the current centroid *)
          let w' = st.(1) +. t.sw.(p) in
          st.(0) <- st.(0) +. ((t.sx.(p) -. st.(0)) *. t.sw.(p) /. w');
          st.(1) <- w'
        end
        else begin
          t.means.(!out) <- st.(0);
          t.weights.(!out) <- st.(1);
          incr out;
          st.(2) <- st.(2) +. st.(1);
          let qb = st.(2) /. total in
          let qb = if qb > 1.0 then 1.0 else if qb < 0.0 then 0.0 else qb in
          st.(3) <- kf *. Float.asin ((2.0 *. qb) -. 1.0);
          st.(0) <- t.sx.(p);
          st.(1) <- t.sw.(p)
        end
      done;
      t.means.(!out) <- st.(0);
      t.weights.(!out) <- st.(1);
      t.n <- !out + 1;
      t.total <- total
    end

  let flush t =
    if t.buf_len > 0 then begin
      let bn = t.buf_len in
      sort_range t.buf 0 (bn - 1);
      (* merge the sorted centroid run with the sorted buffer (unit
         weights) into the scratch runs *)
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < t.n || !j < bn do
        if !j >= bn || (!i < t.n && t.means.(!i) <= t.buf.(!j)) then begin
          t.sx.(!k) <- t.means.(!i);
          t.sw.(!k) <- t.weights.(!i);
          incr i
        end
        else begin
          t.sx.(!k) <- t.buf.(!j);
          t.sw.(!k) <- 1.0;
          incr j
        end;
        incr k
      done;
      t.buf_len <- 0;
      compress t !k
    end

  let add t x =
    if t.buf_len = Array.length t.buf then flush t;
    t.buf.(t.buf_len) <- x;
    t.buf_len <- t.buf_len + 1;
    t.count <- t.count + 1

  let count t = t.count

  let quantile t q =
    if q < 0.0 || q > 1.0 then invalid_arg "Tdigest.quantile";
    flush t;
    if t.n = 0 then Float.nan
    else if t.n = 1 then t.means.(0)
    else begin
      let target = q *. t.total in
      (* centroid i's mass is centered at cum(i-1) + w_i/2; walk the
         midpoints and interpolate between neighbours. *)
      let rec walk i cum prev_mid prev_mean =
        if i >= t.n then t.means.(t.n - 1)
        else
          let mid = cum +. (t.weights.(i) /. 2.0) in
          if target <= mid then
            if i = 0 || mid = prev_mid then t.means.(i)
            else
              prev_mean
              +. ((t.means.(i) -. prev_mean) *. (target -. prev_mid)
                  /. (mid -. prev_mid))
          else walk (i + 1) (cum +. t.weights.(i)) mid t.means.(i)
      in
      walk 0 0.0 0.0 t.means.(0)
    end

  let merge ~into src =
    flush src;
    if src.n > 0 then begin
      flush into;
      (* merge the two sorted centroid runs into scratch, recompress *)
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < into.n || !j < src.n do
        if
          !j >= src.n
          || (!i < into.n && into.means.(!i) <= src.means.(!j))
        then begin
          into.sx.(!k) <- into.means.(!i);
          into.sw.(!k) <- into.weights.(!i);
          incr i
        end
        else begin
          into.sx.(!k) <- src.means.(!j);
          into.sw.(!k) <- src.weights.(!j);
          incr j
        end;
        incr k
      done;
      compress into !k;
      into.count <- into.count + src.count
    end

  let centroids t =
    flush t;
    t.n
end

module Ewma = struct
  (* All-float record: OCaml stores it flat, so [observe]'s writes are
     unboxed stores — a mixed int/float record would box a fresh float
     on every observation. The count is exact as a float far beyond
     any observation volume here (2^53). *)
  type t = { alpha : float; mutable v : float; mutable n : float }

  let create ?(alpha = 0.2) () =
    if alpha <= 0.0 || alpha > 1.0 then invalid_arg "Ewma.create: alpha";
    { alpha; v = 0.0; n = 0.0 }

  let observe t x =
    if t.n = 0.0 then t.v <- x
    else t.v <- (t.alpha *. x) +. ((1.0 -. t.alpha) *. t.v);
    t.n <- t.n +. 1.0

  let value t = t.v
  let count t = int_of_float t.n
end
