(** The binary postcard wire format.

    One postcard is a fixed {!bytes_per_card}-byte big-endian record —
    the compact replacement for {!Tpp_ndb.Postcard}'s boxed record list
    (which remains the differential-testing oracle). Every field is an
    immediate int, so a postcard is written into a preallocated chunk
    with plain byte stores: the hot path allocates nothing.

    Layout (offsets in bytes):

    {v
    0   u8   kind
    1   u8   in_port
    2   u16  out_port
    4   u32  node        switch id (hop) / host node id (end-host)
    8   u32  value       queue depth in bytes (hop) / counter value
    12  u32  version     matched table version (hop) / 0
    16  u64  subject     frame id (hop) / probe seq or cause (end-host)
    24  u64  time_ns
    32  u32  flow_hash   5-tuple flow hash (hop) / 0
    36  u16  wire_bytes  frame wire size (hop) / 0
    38  u16  entry       matched entry id, saturated to 16 bits
    v}

    Decoding is in place: accessors read straight out of a chunk at a
    card offset; no record is ever materialized. *)

val bytes_per_card : int
(** 40. *)

(** What a postcard reports. End-host kinds carry counter evidence
    (satellite probes, fault injection) so the controller sees more
    than switch-side queue depths. *)
type kind =
  | Hop  (** a frame crossed a switch: the ndb postcard, in binary *)
  | Probe_retry  (** an end-host reliable probe retransmitted *)
  | Probe_failure  (** a probe abandoned after all retries *)
  | Fault_event  (** the fault layer dropped/corrupted/froze a frame *)

val kind_code : kind -> int
val kind_of_code : int -> kind option

(** {2 Encoding} — writes one card at [off] in [buf]; the caller
    guarantees [off + bytes_per_card <= Bytes.length buf]. *)

val write :
  bytes ->
  off:int ->
  kind:int ->
  in_port:int ->
  out_port:int ->
  node:int ->
  value:int ->
  version:int ->
  subject:int ->
  time_ns:int ->
  flow_hash:int ->
  wire_bytes:int ->
  entry:int ->
  unit

(** {2 In-place decoding} — field reads at a card offset. *)

val kind : bytes -> off:int -> int
val in_port : bytes -> off:int -> int
val out_port : bytes -> off:int -> int
val node : bytes -> off:int -> int
val value : bytes -> off:int -> int
val version : bytes -> off:int -> int
val subject : bytes -> off:int -> int
val time_ns : bytes -> off:int -> int
val flow_hash : bytes -> off:int -> int
val wire_bytes : bytes -> off:int -> int
val entry : bytes -> off:int -> int
