module Net = Tpp_sim.Net
module Topology = Tpp_sim.Topology
module Switch = Tpp_asic.Switch
module State = Tpp_asic.State
module Alloc = Tpp_asic.Alloc

type action =
  | Drained of { switch : int; port : int }
  | Reweighted of { switch : int; port : int }

type t = {
  net : Net.t;
  fault_threshold : float;
  min_fault_events : int;
  hot_ratio : float;
  mutable version : int;
  mutable entry_id : int;  (* fresh ids, disjoint from install_routes' *)
  mutable drained_links : (int * int) list;
  mutable reweighted_links : (int * int) list;
  mutable prev_suspects : (int * int) list;
  mutable actions_rev : action list;
  drain_flag : (int, int) Hashtbl.t;  (* switch id -> SRAM word address *)
}

let create ?(fault_threshold = 0.25) ?(min_fault_events = 3)
    ?(hot_ratio = 4.0) ?(version = 1) net =
  let drain_flag = Hashtbl.create 16 in
  List.iter
    (fun (sid, sw) ->
      match Alloc.alloc_words (Switch.alloc sw) ~task:"react" ~count:1 with
      | Ok addr ->
        ignore (State.sram_set (Switch.state sw) addr 0);
        Hashtbl.add drain_flag sid addr
      | Error _ -> ())
    (Net.switches net);
  {
    net;
    fault_threshold;
    min_fault_events;
    hot_ratio;
    version;
    entry_id = 0x4000_0000;
    drained_links = [];
    reweighted_links = [];
    prev_suspects = [];
    actions_rev = [];
    drain_flag;
  }

let fresh_entry t =
  t.entry_id <- t.entry_id + 1;
  t.entry_id

(* Rewrite every destination's group on [switch] through [remap], which
   maps the BFS candidate ports to the ports (with multiplicity) to
   install; an unchanged or empty result leaves the entry alone. *)
let rewrite_groups t ~switch remap =
  t.version <- t.version + 1;
  List.iter
    (fun dest ->
      List.iter
        (fun (sid, ports) ->
          if sid = switch then
            match remap ports with
            | [] -> ()
            | new_ports when new_ports <> ports ->
              Topology.install_dest_on_switch t.net ~dest ~ecmp:true
                ~version:t.version ~entry_id:(fresh_entry t) sid new_ports
            | _ -> ())
        (Topology.next_hop_ports t.net ~dest))
    (Net.hosts t.net);
  Switch.set_version (Net.switch t.net switch) t.version

let set_drain_flag t ~switch =
  match Hashtbl.find_opt t.drain_flag switch with
  | None -> ()
  | Some addr ->
    let sw = Net.switch t.net switch in
    let prev = Option.value ~default:0 (State.sram_get (Switch.state sw) addr) in
    ignore (State.sram_set (Switch.state sw) addr (prev + 1))

let drain t ~switch ~port =
  if not (List.mem (switch, port) t.drained_links) then begin
    t.drained_links <- (switch, port) :: t.drained_links;
    rewrite_groups t ~switch (fun ports ->
        let kept =
          List.filter (fun p -> not (List.mem (switch, p) t.drained_links)) ports
        in
        if kept = [] then [] else kept);
    set_drain_flag t ~switch;
    t.actions_rev <- Drained { switch; port } :: t.actions_rev
  end

let reweight_away t ~switch ~port =
  if
    (not (List.mem (switch, port) t.reweighted_links))
    && not (List.mem (switch, port) t.drained_links)
  then begin
    t.reweighted_links <- (switch, port) :: t.reweighted_links;
    rewrite_groups t ~switch (fun ports ->
        if List.mem port ports && List.length ports > 1 then begin
          let siblings = List.filter (fun p -> p <> port) ports in
          siblings @ siblings @ [ port ]
        end
        else ports);
    t.actions_rev <- Reweighted { switch; port } :: t.actions_rev
  end

let step ?(suspects = []) t col =
  let before = t.actions_rev in
  (* Drain: Faultfind suspects name candidate cables, but greedy cover
     over-names while circuit evidence is young, so a suspect must (a)
     survive two consecutive rounds and (b) be corroborated by at
     least one fault card on that very link before it is acted on.
     Telemetry fault EWMAs catch lossy links the probe mesh missed. *)
  List.iter
    (fun (sw, port) ->
      if
        List.mem (sw, port) t.prev_suspects
        && Collector.link_faults col ~switch:sw ~port > 0
      then drain t ~switch:sw ~port)
    suspects;
  t.prev_suspects <- suspects;
  List.iter
    (fun (sw, port) ->
      if
        Collector.link_fault_ewma col ~switch:sw ~port >= t.fault_threshold
        && Collector.link_faults col ~switch:sw ~port >= t.min_fault_events
      then drain t ~switch:sw ~port)
    (Collector.links col);
  (* Reweight: at most one per round, hottest link first. *)
  (match
     Collector.hottest_link col
       ~exclude:(t.drained_links @ t.reweighted_links)
       ()
   with
  | None -> ()
  | Some (sw, port, bytes) ->
    let links = Collector.links col in
    let n = List.length links in
    if n >= 2 then begin
      let total =
        List.fold_left
          (fun acc (s, p) -> acc + Collector.link_bytes col ~switch:s ~port:p)
          0 links
      in
      let mean = float_of_int total /. float_of_int n in
      if float_of_int bytes >= t.hot_ratio *. mean then
        reweight_away t ~switch:sw ~port
    end);
  (* Actions taken this round, oldest first. *)
  let rec fresh acc l = if l == before then acc else
      match l with [] -> acc | a :: rest -> fresh (a :: acc) rest
  in
  fresh [] t.actions_rev

let version t = t.version
let drained t = List.rev t.drained_links
let actions t = List.rev t.actions_rev
