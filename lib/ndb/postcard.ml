module Net = Tpp_sim.Net
module Switch = Tpp_asic.Switch
module Frame = Tpp_isa.Frame
module Meta = Tpp_isa.Meta

type postcard = {
  time_ns : int;
  switch_id : int;
  frame_id : int;
  matched_entry : int;
  matched_version : int;
  in_port : int;
  out_port : int;
}

let postcard_bytes = 64

type t = {
  net : Net.t;
  by_frame : (int, postcard list) Hashtbl.t;
      (* frame id -> its postcards, newest first. Indexed at insert so
         path reassembly is O(path length), not O(total postcards). *)
  mutable count : int;
}

let deploy net =
  let t = { net; by_frame = Hashtbl.create 256; count = 0 } in
  List.iter
    (fun (_, sw) ->
      let swid = Switch.id sw in
      Switch.set_tap sw
        (Some
           (fun ~now ~in_port ~out_port frame ->
             let meta = frame.Frame.meta in
             let card =
               {
                 time_ns = now;
                 switch_id = swid;
                 frame_id = frame.Frame.id;
                 matched_entry = meta.Meta.matched_entry;
                 matched_version = meta.Meta.matched_version;
                 in_port;
                 out_port;
               }
             in
             let prev =
               Option.value ~default:[]
                 (Hashtbl.find_opt t.by_frame card.frame_id)
             in
             Hashtbl.replace t.by_frame card.frame_id (card :: prev);
             t.count <- t.count + 1)))
    (Net.switches net);
  t

let undeploy t =
  List.iter (fun (_, sw) -> Switch.set_tap sw None) (Net.switches t.net)

let postcards t = t.count
let overhead_bytes t = t.count * postcard_bytes

let path_of t ~frame_id =
  match Hashtbl.find_opt t.by_frame frame_id with
  | None -> []
  | Some cards ->
    List.sort (fun a b -> Int.compare a.time_ns b.time_ns) cards

let distinct_frames t = Hashtbl.length t.by_frame
