(** The postcard-based debugger baseline: the original ndb (paper
    §2.3, [8]).

    ndb modifies flow entries so each switch emits a truncated copy of
    every packet ("postcard") tagged with the matched entry's version
    and the ports, and a collector reassembles the copies into a
    per-packet path. Functionally it observes the same state as the
    TPP tracer; the cost is one extra ~64-byte packet per packet per
    hop, which experiment E6 quantifies against the TPP's in-band
    bytes. Postcards here are delivered to the collector out-of-band
    (they do not consume simulated link capacity), which only
    {e under}-counts the baseline's true cost. *)

module Net = Tpp_sim.Net

type postcard = {
  time_ns : int;
  switch_id : int;
  frame_id : int;
  matched_entry : int;
  matched_version : int;
  in_port : int;
  out_port : int;
}

val postcard_bytes : int
(** Wire size of one postcard: a minimum 64-byte Ethernet frame. *)

type t

val deploy : Net.t -> t
(** Taps every switch in the network. *)

val undeploy : t -> unit

val postcards : t -> int
val overhead_bytes : t -> int

val path_of : t -> frame_id:int -> postcard list
(** All postcards for one packet, in time order — the reassembled path.
    Cards are indexed by frame id at insert, so this is O(path length),
    not O(total postcards collected). *)

val distinct_frames : t -> int
