module Net = Tpp_sim.Net
module Switch = Tpp_asic.Switch

let control_route ?(proto = 17) ?(src_port = 0) ?(dst_port = 0) net ~src ~dst =
  (* BFS from the destination, then walk from the source applying
     exactly the choice rule of Topology.install_routes: lowest port
     without ECMP, flow-hash selection among equal-cost ports with it.
     Running the same hash here is what makes the prediction exact. *)
  let n = Net.node_count net in
  let dist = Array.make n max_int in
  dist.(dst.Net.node_id) <- 0;
  let q = Queue.create () in
  Queue.push dst.Net.node_id q;
  let rec bfs () =
    match Queue.take_opt q with
    | None -> ()
    | Some u ->
      List.iter
        (fun (_, v, _) ->
          if dist.(v) = max_int then begin
            dist.(v) <- dist.(u) + 1;
            Queue.push v q
          end)
        (Net.neighbors net u);
      bfs ()
  in
  bfs ();
  let hash =
    Tpp_isa.Frame.flow_hash_values
      ~src:(Tpp_packet.Ipv4.Addr.to_int src.Net.ip)
      ~dst:(Tpp_packet.Ipv4.Addr.to_int dst.Net.ip)
      ~proto ~src_port ~dst_port
  in
  let switch_ids = List.map (fun (id, sw) -> (id, Switch.id sw)) (Net.switches net) in
  let rec walk node acc =
    if node = dst.Net.node_id then List.rev acc
    else begin
      let candidates =
        List.filter_map
          (fun (port, peer, _) ->
            if dist.(peer) < max_int && dist.(peer) = dist.(node) - 1 then
              Some (port, peer)
            else None)
          (Net.neighbors net node)
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      match candidates with
      | [] -> List.rev acc
      | [ (port, peer) ] -> step node port peer acc
      | many ->
        (* Consult the switch's installed entry to know whether the
           control plane deployed ECMP here. *)
        let use_ecmp, salt =
          match List.assoc_opt node switch_ids with
          | None -> (false, 0)
          | Some _ -> (
            let sw = Net.switch net node in
            match Switch.route_action sw dst.Net.ip with
            | Some (Tpp_asic.Tables.Multipath _) -> (true, Switch.ecmp_salt sw)
            | _ -> (false, 0))
        in
        let port, peer =
          if use_ecmp then
            let ports = Array.of_list (List.map fst many) in
            let chosen =
              Tpp_asic.Tables.select_path ports ~key:(hash lxor salt)
            in
            List.find (fun (p, _) -> p = chosen) many
          else List.hd many
        in
        step node port peer acc
    end
  and step node port peer acc =
    let acc =
      match List.assoc_opt node switch_ids with
      | Some swid -> (swid, port) :: acc
      | None -> acc
    in
    walk peer acc
  in
  if dist.(src.Net.node_id) = max_int then [] else walk src.Net.node_id []

let control_path ?proto ?src_port ?dst_port net ~src ~dst =
  List.map fst (control_route ?proto ?src_port ?dst_port net ~src ~dst)

type mismatch =
  | Wrong_switch of { hop : int; expected : int; got : int }
  | Path_too_short of { expected : int list; got : int list }
  | Path_too_long of { expected : int list; got : int list }
  | Stale_version of { switch_id : int; expected : int; got : int }

let check ~expected ~expected_version ~trace =
  let got = List.map (fun h -> h.Trace.switch_id) trace in
  let rec compare_hops i exp obs acc =
    match (exp, obs) with
    | [], [] -> List.rev acc
    | [], _ :: _ -> List.rev (Path_too_long { expected; got } :: acc)
    | _ :: _, [] -> List.rev (Path_too_short { expected; got } :: acc)
    | e :: exp', o :: obs' ->
      let acc =
        if e <> o then Wrong_switch { hop = i; expected = e; got = o } :: acc else acc
      in
      compare_hops (i + 1) exp' obs' acc
  in
  let path_issues = compare_hops 0 expected got [] in
  let version_issues =
    List.filter_map
      (fun h ->
        if h.Trace.matched_version <> expected_version && h.Trace.matched_version <> 0
        then
          Some
            (Stale_version
               { switch_id = h.Trace.switch_id; expected = expected_version;
                 got = h.Trace.matched_version })
        else None)
      trace
  in
  path_issues @ version_issues

let versions trace =
  trace
  |> List.map (fun h -> h.Trace.matched_version)
  |> List.sort_uniq Int.compare

let pp_mismatch fmt = function
  | Wrong_switch { hop; expected; got } ->
    Format.fprintf fmt "hop %d: expected sw%d, packet went through sw%d" hop expected got
  | Path_too_short { expected; got } ->
    Format.fprintf fmt "path too short: expected %d hops, saw %d" (List.length expected)
      (List.length got)
  | Path_too_long { expected; got } ->
    Format.fprintf fmt "path too long: expected %d hops, saw %d" (List.length expected)
      (List.length got)
  | Stale_version { switch_id; expected; got } ->
    Format.fprintf fmt "sw%d matched a stale entry (version %d, control plane at %d)"
      switch_id got expected
