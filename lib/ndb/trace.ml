module Tpp = Tpp_isa.Tpp
module Asm = Tpp_isa.Asm
module Frame = Tpp_isa.Frame
module Ethernet = Tpp_packet.Ethernet

type hop = {
  switch_id : int;
  matched_entry : int;
  matched_version : int;
  in_port : int;
  out_port : int;
}

let source =
  "LOAD [Switch:SwitchID], [Packet:Hop[0]]\n\
   LOAD [PacketMetadata:MatchedEntryID], [Packet:Hop[1]]\n\
   LOAD [PacketMetadata:MatchedVersion], [Packet:Hop[2]]\n\
   LOAD [PacketMetadata:InputPort], [Packet:Hop[3]]\n\
   LOAD [PacketMetadata:OutputPort], [Packet:Hop[4]]\n"

let words_per_hop = 5

let make ~max_hops =
  match
    Asm.to_tpp ~addr_mode:Tpp.Hop_addressed ~perhop_len:(4 * words_per_hop)
      ~mem_len:(4 * words_per_hop * max_hops)
      source
  with
  | Ok tpp -> tpp
  | Error e -> invalid_arg ("Trace.make: " ^ e)

let attach frame ~max_hops =
  match frame.Frame.tpp with
  | Some _ -> invalid_arg "Trace.attach: frame already carries a TPP"
  | None ->
    let tpp = make ~max_hops in
    tpp.Tpp.inner_ethertype <-
      (if Frame.has_ip frame then Ethernet.ethertype_ipv4 else 0);
    Frame.with_tpp frame (Some tpp)

let parse tpp =
  let capacity =
    let usable = Tpp.mem_len tpp - tpp.Tpp.base in
    if tpp.Tpp.perhop_len <= 0 then 0 else usable / tpp.Tpp.perhop_len
  in
  let hops = min tpp.Tpp.hop capacity in
  let rec collect i acc =
    if i >= hops then List.rev acc
    else begin
      match Tpp.hop_block tpp ~hop:i with
      | [ switch_id; matched_entry; matched_version; in_port; out_port ]
        when switch_id <> 0 ->
        collect (i + 1)
          ({ switch_id; matched_entry; matched_version; in_port; out_port } :: acc)
      | _ -> List.rev acc
    end
  in
  collect 0 []

let pp_hop fmt h =
  Format.fprintf fmt "sw%d entry=%d v%d in=%d out=%d" h.switch_id h.matched_entry
    h.matched_version h.in_port h.out_port
