(** TPP-based link-failure localisation — the "fault diagnosis" task of
    the paper's opening sentence.

    A fleet of probe circuits covers the fabric. When a link dies,
    probes crossing it stop echoing within a probe period or two, while
    other circuits stay healthy; intersecting the failing circuits'
    (control-predicted, hash-exact) link sets and subtracting every
    healthy circuit's links leaves a small suspect set — usually the
    failed link itself. All of it from end-hosts, at RTT timescales, an
    order of magnitude before any control-plane liveness protocol would
    have noticed. *)

module Net = Tpp_sim.Net
module Stack = Tpp_endhost.Stack

type link = { from_switch : int; egress_port : int }
(** A link named by one of its switch-side endpoints. Localisation works
    on physical cables: the two directions of a cable are the same
    fault, and a circuit is exposed to a cable if {e either} its probe
    path or its echo's return path crosses it. *)

type t

val create :
  ?window:int ->
  ?loss_threshold:float ->
  circuits:(Stack.t * Net.host) list ->
  period:int ->
  timeout:int ->
  unit ->
  t
(** Probes every circuit each [period]; a circuit with no echo for
    [timeout] ns counts as failing. Destinations need
    {!Tpp_endhost.Probe.install_echo}. Forward and return routes are
    predicted per circuit with the respective packets' own 5-tuples
    (hash-exact under ECMP).

    Each circuit also keeps the outcome of its last [window] (default
    8) probe rounds; a circuit losing at least [loss_threshold]
    (default 0.25) of its matured rounds counts as {e degraded} even
    while occasional echoes keep it nominally alive — this is what
    catches flapping and lossy links. *)

val start : t -> ?at:int -> unit -> unit
val stop : t -> unit

val healthy : t -> now:int -> bool list
(** Per circuit, in creation order. Circuits that have not yet had a
    chance to answer (young or just started) count as healthy. *)

val degraded : t -> now:int -> bool list
(** Per circuit: hard-failing ({!healthy} false) {e or} lossy — echo
    loss over the matured round window at or above the threshold, with
    at least half a window of evidence. Flap- and loss-tolerant
    superset of [not healthy]. *)

val loss_ratios : t -> now:int -> float list
(** Per circuit: echo loss over matured rounds of the history window
    (0.0 while no round has matured). *)

val suspects : t -> now:int -> link list
(** One representative endpoint per suspect cable. The suspect set is a
    greedy minimal cover of the degraded circuits by cables that touch
    no clean circuit, keeping every cable tied at a step's best
    coverage (probes cannot distinguish cables hurting the same
    circuits). A single failure yields the classic intersection; two
    simultaneous failures yield (typically) one cable per failure.
    Empty when nothing is degraded. *)

val links_of_circuit : t -> int -> link list
(** The control-predicted {e forward} path of a circuit, for reporting
    and for choosing which link an experiment fails. *)

val same_cable : t -> link -> link -> bool
(** Whether two endpoint names denote the same physical cable. *)

val pp_link : Format.formatter -> link -> unit
