module Net = Tpp_sim.Net
module Engine = Tpp_sim.Engine
module Stack = Tpp_endhost.Stack
module Probe = Tpp_endhost.Probe
module Switch = Tpp_asic.Switch
module Programs = Tpp_isa.Programs

type link = { from_switch : int; egress_port : int }

(* A physical cable, canonically named by its two (node, port) ends. *)
type cable = (int * int) * (int * int)

type circuit = {
  src : Stack.t;
  dst : Net.host;
  forward : link list;
  cables : cable list;  (* forward + echo-return exposure, deduped *)
  mutable last_probe : int;
  mutable last_reply : int;
  (* Circular history of the last [window] probe rounds, so a flapping
     link — which answers often enough to look "alive" to a pure
     last-echo check — still shows up as a lossy circuit. Slot
     [round mod window] holds (round stamp, send time, echoed?). *)
  hist_round : int array;
  hist_sent : int array;
  hist_ok : bool array;
  (* Lifetime totals, folded in as history slots are recycled (a slot
     is [window] periods old by then, past its timeout, so its verdict
     is final). The veto in [circuit_spotless] needs more memory than
     the window: under a probabilistic fault a crossing circuit dodges
     a whole window of probes disturbingly often, but almost never its
     entire lifetime. *)
  mutable total_mature : int;
  mutable total_lost : int;
}

type t = {
  net : Net.t;
  circuits : circuit array;
  period : int;
  timeout : int;
  window : int;
  loss_threshold : float;
  seq_base : int;
  probe : Tpp_isa.Tpp.t;
  mutable running : bool;
  mutable epoch : int;
  mutable round : int;
}

let seq_block = 1 lsl 20
let next_uid = ref 0

let node_of_switch_id net swid =
  match List.find_opt (fun (_, sw) -> Switch.id sw = swid) (Net.switches net) with
  | Some (node, _) -> Some node
  | None -> None

let cable_of net { from_switch; egress_port } =
  match node_of_switch_id net from_switch with
  | None -> None
  | Some node ->
    List.find_map
      (fun (port, peer, peer_port) ->
        if port = egress_port then
          Some (min (node, port) (peer, peer_port), max (node, port) (peer, peer_port))
        else None)
      (Net.neighbors net node)

let route_links net ~src ~dst ~src_port ~dst_port =
  Verify.control_route ~src_port ~dst_port net ~src ~dst
  |> List.map (fun (from_switch, egress_port) -> { from_switch; egress_port })

let create ?(window = 8) ?(loss_threshold = 0.25) ~circuits ~period ~timeout () =
  if circuits = [] then invalid_arg "Faultfind.create: no circuits";
  if period <= 0 || timeout <= period then
    invalid_arg "Faultfind.create: need timeout > period > 0";
  if window < 1 then invalid_arg "Faultfind.create: window must be >= 1";
  if not (loss_threshold > 0.0 && loss_threshold <= 1.0) then
    invalid_arg "Faultfind.create: loss_threshold must be in (0, 1]";
  incr next_uid;
  let probe =
    match Programs.build ~max_hops:10 Programs.record_route with
    | Ok tpp -> tpp
    | Error e -> invalid_arg ("Faultfind.create: " ^ e)
  in
  let net = Stack.net (fst (List.hd circuits)) in
  let circuit_of (src, dst) =
    let forward =
      route_links net ~src:(Stack.host src) ~dst ~src_port:Probe.request_port
        ~dst_port:Probe.request_port
    in
    (* The echo returns dst -> src with ports (request_port, reply_port). *)
    let return_path =
      route_links net ~src:dst ~dst:(Stack.host src) ~src_port:Probe.request_port
        ~dst_port:Probe.reply_port
    in
    let cables =
      List.filter_map (cable_of net) (forward @ return_path)
      |> List.sort_uniq compare
    in
    {
      src;
      dst;
      forward;
      cables;
      last_probe = min_int;
      last_reply = min_int;
      hist_round = Array.make window (-1);
      hist_sent = Array.make window 0;
      hist_ok = Array.make window false;
      total_mature = 0;
      total_lost = 0;
    }
  in
  let circuits = Array.of_list (List.map circuit_of circuits) in
  let t =
    {
      net;
      circuits;
      period;
      timeout;
      window;
      loss_threshold;
      seq_base = !next_uid * seq_block;
      probe;
      running = false;
      epoch = 0;
      round = 0;
    }
  in
  (* Replies are matched to circuits by sequence number. *)
  let n = Array.length circuits in
  let sources =
    Array.fold_left
      (fun acc c -> if List.memq c.src acc then acc else c.src :: acc)
      [] circuits
  in
  List.iter
    (fun stack ->
      Probe.install_reply_handler stack (fun ~now ~seq _tpp ->
          if seq >= t.seq_base && seq < t.seq_base + seq_block then begin
            let idx = (seq - t.seq_base) mod n in
            let c = t.circuits.(idx) in
            if c.src == stack then begin
              c.last_reply <- now;
              (* The sequence number encodes which round this echo
                 answers; credit that round's history slot if it has
                 not been recycled. *)
              let round = (seq - t.seq_base) / n in
              let slot = round mod t.window in
              if c.hist_round.(slot) = round then c.hist_ok.(slot) <- true
            end
          end))
    sources;
  t

let engine t = Net.engine (Stack.net t.circuits.(0).src)

let rec tick t epoch () =
  if t.running && t.epoch = epoch then begin
    let n = Array.length t.circuits in
    let now = Engine.now (engine t) in
    Array.iteri
      (fun i c ->
        c.last_probe <- now;
        let slot = t.round mod t.window in
        if c.hist_round.(slot) >= 0 && c.hist_sent.(slot) + t.timeout <= now
        then begin
          c.total_mature <- c.total_mature + 1;
          if not c.hist_ok.(slot) then c.total_lost <- c.total_lost + 1
        end;
        c.hist_round.(slot) <- t.round;
        c.hist_sent.(slot) <- now;
        c.hist_ok.(slot) <- false;
        Probe.send c.src ~dst:c.dst ~tpp:t.probe
          ~seq:(t.seq_base + (t.round * n) + i))
      t.circuits;
    t.round <- t.round + 1;
    Engine.after (engine t) t.period (tick t epoch)
  end

let start t ?at () =
  if not t.running then begin
    t.running <- true;
    t.epoch <- t.epoch + 1;
    let eng = engine t in
    let begin_at =
      match at with Some time -> max time (Engine.now eng) | None -> Engine.now eng
    in
    (* Grant every circuit a grace reply at start so nothing counts as
       failing before it had a chance to answer. *)
    Array.iter (fun c -> c.last_reply <- max c.last_reply begin_at) t.circuits;
    Engine.at eng begin_at (tick t t.epoch)
  end

let stop t =
  t.running <- false;
  t.epoch <- t.epoch + 1

let circuit_healthy t ~now c =
  (* Healthy unless probing started and no echo arrived within the
     timeout (the start itself counts as a grace reply). *)
  c.last_probe = min_int || now - c.last_reply < t.timeout

let healthy t ~now =
  Array.to_list (Array.map (circuit_healthy t ~now) t.circuits)

(* Echo loss over the mature slice of the round window: a round counts
   only once its timeout has expired, so in-flight probes are not
   misread as losses. Only the oldest [window - timeout/period] slots
   can ever be mature — newer rounds are still awaiting their echo. *)
let window_counts t ~now c =
  let mature = ref 0 and lost = ref 0 in
  for slot = 0 to t.window - 1 do
    if c.hist_round.(slot) >= 0 && c.hist_sent.(slot) + t.timeout <= now then begin
      incr mature;
      if not c.hist_ok.(slot) then incr lost
    end
  done;
  (!mature, !lost)

let circuit_loss t ~now c =
  let mature, lost = window_counts t ~now c in
  if mature = 0 then 0.0 else float_of_int lost /. float_of_int mature

let circuit_degraded t ~now c =
  (not (circuit_healthy t ~now c))
  ||
  (* Demand a few timed-out rounds of evidence before declaring a lossy
     circuit, so one unlucky round at startup does not trip the
     detector. Capped at the window size, and deliberately well below
     it: with timeout ~ several periods, most slots in the window are
     still in flight and can never mature. *)
  let mature, lost = window_counts t ~now c in
  mature >= min 3 t.window
  && float_of_int lost /. float_of_int mature >= t.loss_threshold

(* A circuit vouches for its cables only when it has real evidence and
   has never lost a probe: under a probabilistic fault a circuit
   crossing the bad cable dodges a whole window of probes surprisingly
   often (0.6^4 ~ 13% at 40% loss), and one momentarily clean window
   must not veto the true suspect — hence the lifetime totals, not just
   the recent window. *)
let circuit_spotless t ~now c =
  circuit_healthy t ~now c
  &&
  let mature, lost = window_counts t ~now c in
  mature + c.total_mature > 0 && lost = 0 && c.total_lost = 0

let degraded t ~now =
  Array.to_list (Array.map (circuit_degraded t ~now) t.circuits)

let loss_ratios t ~now =
  Array.to_list (Array.map (circuit_loss t ~now) t.circuits)

(* Renders a cable back as a link endpoint, preferring a switch side. *)
let link_of_cable t ((node_a, port_a), (node_b, port_b)) =
  let switch_id node =
    List.find_map
      (fun (n, sw) -> if n = node then Some (Switch.id sw) else None)
      (Net.switches t.net)
  in
  match (switch_id node_a, switch_id node_b) with
  | Some swid, _ -> Some { from_switch = swid; egress_port = port_a }
  | None, Some swid -> Some { from_switch = swid; egress_port = port_b }
  | None, None -> None

(* Localisation as minimal set cover: find the smallest set of cables
   that explains every degraded circuit, never touching a spotless one.
   Greedy, keeping {e every} cable tied at the step's best coverage —
   probes cannot tell cables that hurt the same circuits apart, so all
   of them are suspects. With a single hard failure this reduces
   exactly to the old rule (cables on every failing circuit and no
   healthy one); with two simultaneous failures no cable covers all
   failing circuits and plain intersection collapses to the empty set,
   while the cover peels them off one failure per step. *)
let suspects t ~now =
  let affected =
    Array.to_list t.circuits |> List.filter (circuit_degraded t ~now)
  in
  match affected with
  | [] -> []
  | _ ->
    let spotless =
      Array.to_list t.circuits |> List.filter (circuit_spotless t ~now)
    in
    let mem cable c = List.mem cable c.cables in
    let candidates =
      List.concat_map (fun c -> c.cables) affected
      |> List.sort_uniq compare
      |> List.filter (fun cable -> not (List.exists (mem cable) spotless))
    in
    let rec cover uncovered chosen =
      if uncovered = [] then chosen
      else begin
        let coverage cable = List.length (List.filter (mem cable) uncovered) in
        let best =
          List.fold_left (fun acc cable -> max acc (coverage cable)) 0 candidates
        in
        if best = 0 then chosen (* inexplicable circuits: report what we have *)
        else begin
          let picked =
            List.filter
              (fun cable -> coverage cable = best && not (List.mem cable chosen))
              candidates
          in
          if picked = [] then chosen
          else begin
            let uncovered' =
              List.filter
                (fun c -> not (List.exists (fun cable -> mem cable c) picked))
                uncovered
            in
            cover uncovered' (chosen @ picked)
          end
        end
      end
    in
    cover affected [] |> List.sort_uniq compare |> List.filter_map (link_of_cable t)

let links_of_circuit t i = t.circuits.(i).forward

let same_cable t a b =
  match (cable_of t.net a, cable_of t.net b) with
  | Some ca, Some cb -> ca = cb
  | _ -> false

let pp_link fmt l = Format.fprintf fmt "sw%d.port%d" l.from_switch l.egress_port
