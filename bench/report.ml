(* Console reporting helpers shared by the experiment harness. *)

let section id title =
  Printf.printf "\n%s\n%s — %s\n%s\n"
    (String.make 78 '=') id title (String.make 78 '=')

let sub title = Printf.printf "\n-- %s --\n" title

let kv key value = Printf.printf "  %-42s %s\n" key value

let kvi key value = kv key (string_of_int value)

let kvf key value = kv key (Printf.sprintf "%.3f" value)

(* Renders time series as an ASCII chart so `dune exec bench/main.exe`
   shows the figure, not just its numbers. Series are drawn with
   distinct glyphs; collisions show the later series' glyph. *)
let plot ?(width = 70) ?(height = 14) ~y_label series =
  let series =
    List.map (fun s -> (Tpp_util.Series.name s, Tpp_util.Series.points s)) series
  in
  let all_points = List.concat_map (fun (_, pts) -> Array.to_list pts) series in
  if all_points <> [] then begin
    let t_max = List.fold_left (fun a (t, _) -> max a t) 0 all_points in
    let v_max = List.fold_left (fun a (_, v) -> Float.max a v) 0.0 all_points in
    let v_max = if v_max <= 0.0 then 1.0 else v_max *. 1.05 in
    let grid = Array.make_matrix height width ' ' in
    let glyphs = [| '*'; '+'; 'o'; 'x' |] in
    List.iteri
      (fun si (_, points) ->
        Array.iter
          (fun (t, v) ->
            if t >= 0 && t <= t_max then begin
              let x = if t_max = 0 then 0 else t * (width - 1) / t_max in
              let y = int_of_float (v /. v_max *. float_of_int (height - 1)) in
              let y = max 0 (min (height - 1) y) in
              grid.(height - 1 - y).(x) <- glyphs.(si mod Array.length glyphs)
            end)
          points)
      series;
    Printf.printf "\n  %s\n" y_label;
    Array.iteri
      (fun row line ->
        let v = v_max *. float_of_int (height - 1 - row) /. float_of_int (height - 1) in
        Printf.printf "  %6.2f |%s|\n" v (String.init width (Array.get line)))
      grid;
    Printf.printf "  %6s +%s+\n" "" (String.make width '-');
    Printf.printf "  %6s 0%*s\n" ""
      (width - 1)
      (Printf.sprintf "%.1fs" (Tpp_util.Time_ns.to_sec_f t_max));
    List.iteri
      (fun si (name, _) ->
        Printf.printf "  %c = %s\n" glyphs.(si mod Array.length glyphs) name)
      series
  end

(* Optional CSV export, enabled with --csv. *)
let csv_dir : string option ref = ref None

let write_csv ~name ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
    let path = Filename.concat dir (name ^ ".csv") in
    let oc = open_out path in
    output_string oc (header ^ "\n");
    List.iter (fun row -> output_string oc (row ^ "\n")) rows;
    close_out oc;
    Printf.printf "  (wrote %s)\n" path

let csv_of_series series =
  Tpp_util.Series.points series |> Array.to_list
  |> List.map (fun (t, v) ->
         Printf.sprintf "%.6f,%.6f" (Tpp_util.Time_ns.to_sec_f t) v)

(* --- BENCH_*.json summary table -------------------------------------- *)

(* Minimal field extraction — the bench files are flat-ish JSON written
   by bench/perf.ml itself, so a first-occurrence key scan is exact
   enough (top-level fields precede any subobject) and avoids a JSON
   dependency. Returns the number following ["key": ], or None. *)
let json_number text key =
  let needle = Printf.sprintf "\"%s\":" key in
  match
    let nl = String.length needle and tl = String.length text in
    let rec find i =
      if i + nl > tl then None
      else if String.sub text i nl = needle then Some (i + nl)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start ->
    let tl = String.length text in
    let s = ref start in
    while !s < tl && (text.[!s] = ' ' || text.[!s] = '\n') do incr s done;
    let e = ref !s in
    while
      !e < tl
      && (match text.[!e] with '0' .. '9' | '-' | '.' | 'e' | '+' -> true
          | _ -> false)
    do
      incr e
    done;
    if !e = !s then None else float_of_string_opt (String.sub text !s (!e - !s))

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

(* One row per BENCH_*.json in the working directory: throughput plus
   the GC provenance columns ("-" for files written before the engine
   work added them). *)
let benches () =
  let files =
    Sys.readdir "." |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "BENCH_"
           && Filename.check_suffix f ".json")
    |> List.sort compare
  in
  if files = [] then print_endline "no BENCH_*.json files in the working directory"
  else begin
    sub "bench results (BENCH_*.json)";
    Printf.printf "  %-14s %10s %14s %12s %8s %9s %12s %8s %10s %8s\n" "file"
      "events" "events/sec" "minor w/ev" "trend" "shard x" "shard w/ev" "hosts"
      "bytes/host" "fib/sw";
    let prev_minor = ref nan in
    List.iter
      (fun f ->
        let text = read_file f in
        let num keys =
          match List.find_map (json_number text) keys with
          | Some v -> v
          | None -> nan
        in
        let cell fmt v = if Float.is_nan v then "-" else Printf.sprintf fmt v in
        (* BENCH_4 names its totals chaos_*, and BENCH_7 (telemetry)
           counts postcards instead of engine events — its row is the
           ingest microbench (cards, cards/sec, minor words/card),
           which is listed first in the file so the first-occurrence
           scan picks it over the fabric section. *)
        let minor = num [ "minor_words_per_event"; "minor_words_per_card" ] in
        (* Trend: this file's allocation rate relative to the previous
           bench that reported one — the column that shows the
           flattening work paying off (x1.00 = flat, below = better). *)
        let trend =
          if Float.is_nan minor || Float.is_nan !prev_minor then "-"
          else if !prev_minor = 0.0 then (if minor = 0.0 then "x1.00" else "up")
          else Printf.sprintf "x%.2f" (minor /. !prev_minor)
        in
        if not (Float.is_nan minor) then prev_minor := minor;
        (* Sharded columns: the sharded-vs-sequential wall-clock ratio
           and the sharded run's allocation rate, so a BENCH_2 (or
           BENCH_6 sharded-path) regression is visible in the trend
           output without opening the file. *)
        (* Scale columns (BENCH_9): fabric size, build memory per host
           and aggregated-FIB entries per switch — "-" for the benches
           that predate million-host fabrics. *)
        Printf.printf "  %-14s %10s %14s %12s %8s %9s %12s %8s %10s %8s\n" f
          (cell "%.0f" (num [ "cards"; "events"; "chaos_events" ]))
          (cell "%.3e"
             (num [ "events_per_sec"; "chaos_events_per_sec"; "cards_per_sec" ]))
          (cell "%.3f" minor) trend
          (cell "x%.2f" (num [ "speedup_vs_sequential" ]))
          (cell "%.3f" (num [ "sharded_minor_words_per_event" ]))
          (cell "%.0f" (num [ "hosts" ]))
          (cell "%.1f" (num [ "bytes_per_host" ]))
          (cell "%.1f" (num [ "fib_entries_per_switch" ])))
      files;
    if List.mem "BENCH_7.json" files then
      print_endline
        "  (BENCH_7 counts telemetry postcards: cards, cards/sec, minor \
         words/card)"
  end

(* Paper-vs-measured rows collected for the experiment summary. *)
let expectations : (string * string * string * bool) list ref = ref []

let expect ~what ~paper ~measured ok =
  expectations := (what, paper, measured, ok) :: !expectations;
  Printf.printf "  %-42s paper: %-18s measured: %-18s [%s]\n" what paper measured
    (if ok then "ok" else "DIVERGES")

let summary () =
  let all = List.rev !expectations in
  if all = [] then 0
  else begin
    section "SUMMARY" "paper vs measured";
    let ok = List.length (List.filter (fun (_, _, _, ok) -> ok) all) in
    List.iter
      (fun (what, paper, measured, ok) ->
        Printf.printf "  [%s] %-40s paper: %-18s measured: %s\n"
          (if ok then "ok" else "!!") what paper measured)
      all;
    Printf.printf "\n  %d/%d expectations hold\n" ok (List.length all);
    List.length all - ok
  end
