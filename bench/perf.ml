(* Packet-rate benchmark: the dataplane fast-path gate.

   Drives a many-switch ECMP fat-tree with TPP-tagged UDP flows and
   reports end-to-end event and packet throughput of the simulator
   itself (wall-clock, not simulated time). Writes a machine-readable
   BENCH_<n>.json so successive PRs have a trajectory to beat.

     dune exec bench/perf.exe                 sequential engine -> BENCH_1.json
     dune exec bench/perf.exe -- --shards 4   parallel (tpp_parsim) -> BENCH_2.json
     dune exec bench/perf.exe -- --k 4        smaller fabric
     dune exec bench/perf.exe -- --smoke      quick CI check: sequential and
                                              2-shard runs must agree exactly
     dune exec bench/perf.exe -- --out b.json custom output path
*)

open Tpp

let collect_program =
  "PUSH [Switch:SwitchID]\n\
   PUSH [Link:QueueSize]\n\
   PUSH [Link:RxUtilization]\n\
   PUSH [Link:CapacityKbps]\n\
   PUSH [Link:Drops]\n"

type config = {
  k : int;                    (* fat-tree arity *)
  packets_per_host : int;
  payload_bytes : int;
  gap_ns : int;               (* inter-departure time per host *)
  wire_check : Net.wire_check;
  shards : int;               (* 0 = plain sequential engine *)
  smoke : bool;
  out : string option;
}

let default =
  { k = 8; packets_per_host = 1500; payload_bytes = 1000; gap_ns = 6_000;
    wire_check = `Cached; shards = 0; smoke = false; out = None }

let horizon = Time_ns.sec 10

let build cfg eng =
  let ft =
    Topology.fat_tree eng ~wire_check:cfg.wire_check ~ecmp:true ~k:cfg.k
      ~bps:10_000_000_000 ~delay:(Time_ns.us 1) ()
  in
  ft.Topology.f_net

(* Identical traffic whether the net is the whole fabric or one shard:
   each host streams to a partner in the opposite half, so flows cross
   edge, aggregation and core layers and exercise ECMP. *)
let setup_traffic cfg ~owns net =
  let hosts = Array.of_list (Net.hosts net) in
  let n = Array.length hosts in
  let eng = Net.engine net in
  let tpp_template = Result.get_ok (Asm.to_tpp ~mem_len:64 collect_program) in
  let payload = Bytes.create cfg.payload_bytes in
  let send src =
    let dst = hosts.((src + (n / 2)) mod n) in
    let s = hosts.(src) in
    let frame =
      Frame.udp_frame ~src_mac:s.Net.mac ~dst_mac:dst.Net.mac ~src_ip:s.Net.ip
        ~dst_ip:dst.Net.ip ~src_port:(1000 + src) ~dst_port:7
        ~tpp:(Prog.copy tpp_template) ~payload ()
    in
    Net.host_send net s frame
  in
  for src = 0 to n - 1 do
    if owns hosts.(src).Net.node_id then
      for j = 0 to cfg.packets_per_host - 1 do
        (* Offset hosts against each other so departures are not all
           simultaneous (keeps the event heap realistically mixed). *)
        let t = (j * cfg.gap_ns) + (src * 7) + 1 in
        Engine.at eng t (fun () -> send src)
      done
  done

type outcome = {
  events : int;
  delivered : int;
  wall : float;
  rounds : int;       (* parallel only *)
  messages : int;     (* frames that crossed a shard boundary *)
  cut_links : int;
  lookahead_ns : int;
}

let run_sequential cfg =
  let eng = Engine.create () in
  let net = build cfg eng in
  setup_traffic cfg ~owns:(fun _ -> true) net;
  let t0 = Unix.gettimeofday () in
  Engine.run eng ~until:horizon;
  let wall = Unix.gettimeofday () -. t0 in
  { events = Engine.events_processed eng; delivered = Net.frames_delivered net;
    wall; rounds = 0; messages = 0; cut_links = 0; lookahead_ns = 0 }

(* Wall time includes partitioning and per-shard topology construction —
   the price of entry a real parallel run pays. *)
let run_parallel cfg ~shards =
  let t0 = Unix.gettimeofday () in
  let stats, _ =
    Parsim.run ~shards ~until:horizon ~build:(build cfg)
      ~setup:(fun ~shard:_ ~owns net -> setup_traffic cfg ~owns net)
      ~collect:(fun ~shard:_ ~owns:_ _ -> ())
      ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  { events = stats.Parsim.events; delivered = stats.Parsim.delivered; wall;
    rounds = stats.Parsim.rounds; messages = stats.Parsim.messages;
    cut_links = stats.Parsim.cut_links;
    lookahead_ns = stats.Parsim.lookahead }

let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    ignore (Unix.close_process_in ic);
    if line = "" then "unknown" else line
  with _ -> "unknown"

let wire_check_name = function
  | `Always -> "always"
  | `Cached -> "cached"
  | `Off -> "off"

let workload_of cfg =
  Printf.sprintf
    "fat-tree k=%d (ECMP), %d hosts x %d TPP-tagged UDP packets, %dB \
     payload, wire_check=%s"
    cfg.k
    (cfg.k * cfg.k * cfg.k / 4)
    cfg.packets_per_host cfg.payload_bytes
    (wire_check_name cfg.wire_check)

let write_json cfg ~out r =
  let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
  let oc = open_out out in
  Printf.fprintf oc
    "{\n\
    \  \"bench\": %d,\n\
    \  \"workload\": \"%s\",\n\
    \  \"shards\": %d,\n\
    \  \"git_commit\": \"%s\",\n\
    \  \"ocaml\": \"%s\",\n\
    \  \"cores\": %d,\n\
    \  \"events\": %d,\n\
    \  \"packets_sent\": %d,\n\
    \  \"packets_delivered\": %d,\n\
    \  \"rounds\": %d,\n\
    \  \"boundary_messages\": %d,\n\
    \  \"cut_links\": %d,\n\
    \  \"lookahead_ns\": %d,\n\
    \  \"wall_s\": %.6f,\n\
    \  \"events_per_sec\": %.1f,\n\
    \  \"packets_per_sec\": %.1f\n\
     }\n"
    (if cfg.shards > 0 then 2 else 1)
    (workload_of cfg) cfg.shards (git_commit ()) Sys.ocaml_version
    (Domain.recommended_domain_count ())
    r.events sent r.delivered r.rounds r.messages r.cut_links r.lookahead_ns
    r.wall
    (float_of_int r.events /. r.wall)
    (float_of_int r.delivered /. r.wall);
  close_out oc;
  Printf.printf "perf: wrote %s\n%!" out

(* A fast cross-check for CI: the sequential engine and a 2-shard
   parallel run of a small fabric must agree on every count. *)
let smoke cfg =
  let cfg = { cfg with k = 4; packets_per_host = 200 } in
  Printf.printf "perf(smoke): %s\n%!" (workload_of cfg);
  let s = run_sequential cfg in
  let p = run_parallel cfg ~shards:2 in
  Printf.printf
    "perf(smoke): sequential %d events / %d delivered (%.3fs), 2-shard %d \
     events / %d delivered (%.3fs, %d rounds)\n%!"
    s.events s.delivered s.wall p.events p.delivered p.wall p.rounds;
  if s.events <> p.events || s.delivered <> p.delivered then begin
    Printf.eprintf "perf(smoke): FAIL — parallel run diverged from sequential\n";
    exit 1
  end;
  Printf.printf "perf(smoke): OK — parallel run identical to sequential\n%!"

let () =
  let cfg = ref default in
  let rec parse = function
    | [] -> ()
    | "--perf" :: rest | "--" :: rest -> parse rest
    | "--k" :: v :: rest ->
      cfg := { !cfg with k = int_of_string v };
      parse rest
    | "--packets" :: v :: rest ->
      cfg := { !cfg with packets_per_host = int_of_string v };
      parse rest
    | "--shards" :: v :: rest ->
      let s = int_of_string v in
      if s < 0 then begin
        Printf.eprintf "perf: --shards expects a non-negative count\n";
        exit 2
      end;
      cfg := { !cfg with shards = s };
      parse rest
    | "--smoke" :: rest ->
      cfg := { !cfg with smoke = true };
      parse rest
    | "--out" :: v :: rest ->
      cfg := { !cfg with out = Some v };
      parse rest
    | "--wire-check" :: v :: rest ->
      let wc =
        match v with
        | "always" -> `Always
        | "cached" -> `Cached
        | "off" -> `Off
        | _ ->
          Printf.eprintf "perf: --wire-check expects always|cached|off\n";
          exit 2
      in
      cfg := { !cfg with wire_check = wc };
      parse rest
    | a :: _ ->
      Printf.eprintf "perf: unknown argument %S\n" a;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let cfg = !cfg in
  if cfg.smoke then smoke cfg
  else begin
    let sent = cfg.k * cfg.k * cfg.k / 4 * cfg.packets_per_host in
    Printf.printf "perf: %s\n%!" (workload_of cfg);
    let r =
      if cfg.shards > 0 then begin
        Printf.printf "perf: parallel, %d shards on %d core(s)\n%!" cfg.shards
          (Domain.recommended_domain_count ());
        run_parallel cfg ~shards:cfg.shards
      end
      else run_sequential cfg
    in
    if cfg.shards > 0 then
      Printf.printf
        "perf: %d rounds, %d boundary frames over %d cut links, lookahead \
         %dns\n%!"
        r.rounds r.messages r.cut_links r.lookahead_ns;
    Printf.printf
      "perf: %d events, %d/%d packets delivered in %.3fs wall\n\
       perf: %.3e events/sec, %.3e packets/sec\n%!"
      r.events r.delivered sent r.wall
      (float_of_int r.events /. r.wall)
      (float_of_int r.delivered /. r.wall);
    let out =
      match cfg.out with
      | Some o -> o
      | None -> if cfg.shards > 0 then "BENCH_2.json" else "BENCH_1.json"
    in
    write_json cfg ~out r
  end
